(* Section 2.3 — a real-world JSON service with all three frequent
   problems: missing data ("value": null), inconsistently encoded
   primitives (numbers as string literals), and a heterogeneous top-level
   collection (a metadata record next to the data array).

   The provider infers a heterogeneous collection with multiplicities:
   exactly one record and exactly one array, exposed as the members
   Record and Array (the paper's WorldBank type). *)

open Fsdata_provider
open Fsdata_runtime

let () =
  let sample = Samples.read "worldbank.json" in
  let wb = Result.get_ok (Provide.provide_json ~root_name:"WorldBank" sample) in
  let root = Typed.parse wb sample in

  let pages = Typed.(get_int (member (member root "Record") "Pages")) in
  Printf.printf "total pages: %d\n" pages;

  List.iter
    (fun item ->
      let date = Typed.(get_int (member item "Date")) in
      match Typed.get_option (Typed.member item "Value") with
      | Some v -> Printf.printf "  %d: debt %.5f%% of GDP\n" date (Typed.get_float v)
      | None -> Printf.printf "  %d: no data\n" date)
    (Typed.get_list (Typed.member root "Array"));

  print_newline ();
  print_endline (Signature.to_string ~root_name:"WorldBank" wb)
