(* Locating the vendored sample documents under examples/data, whether the
   example is run from the project root, from a subdirectory, or straight
   out of _build. *)

let rec search_up dir name =
  let candidate = Filename.concat dir (Filename.concat "examples/data" name) in
  if Sys.file_exists candidate then Some candidate
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else search_up parent name

let path name =
  let roots =
    [ Sys.getcwd (); Filename.dirname Sys.executable_name ]
  in
  match List.find_map (fun root -> search_up root name) roots with
  | Some p -> p
  | None -> failwith (Printf.sprintf "sample file %s not found" name)

let read name =
  let ic = open_in_bin (path name) in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text
