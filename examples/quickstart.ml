(* Quickstart — the paper's opening example (Section 1).

   The hand-written version needs three levels of pattern matching to dig
   the temperature out of the OpenWeatherMap response; with the provider
   the same program is two lines:

     type W = JsonProvider<"http://api.owm.org/?q=NYC">
     printfn "Lovely %f!" (W.GetSample().Main.Temp)

   Here the sample is the vendored Appendix A response, and the provider
   call happens at program start instead of compile time. *)

open Fsdata_provider
open Fsdata_runtime

let () =
  let sample = Samples.read "weather.json" in

  (* -------- the weakly typed version from the introduction -------- *)
  let module Dv = Fsdata_data.Data_value in
  (match Fsdata_data.Json.parse sample with
  | Dv.Record (_, root) -> (
      match List.assoc_opt "main" root with
      | Some (Dv.Record (_, main)) -> (
          match List.assoc_opt "temp" main with
          | Some (Dv.Int n) -> Printf.printf "Lovely %f! (hand-written)\n" (float_of_int n)
          | Some (Dv.Float n) -> Printf.printf "Lovely %f! (hand-written)\n" n
          | _ -> failwith "Incorrect format")
      | _ -> failwith "Incorrect format")
  | _ -> failwith "Incorrect format");

  (* -------- the provided version -------- *)
  let w = Result.get_ok (Provide.provide_json ~root_name:"Weather" sample) in
  Printf.printf "Lovely %f!\n"
    Typed.(get_float (member (member (parse w sample) "Main") "Temp"));

  (* What the provider generated (the paper prints these F# signatures): *)
  print_newline ();
  print_endline (Signature.to_string ~root_name:"W" w)
