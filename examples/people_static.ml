(* Statically typed access through the *generated* module (see
   codegen_demo.ml and examples/generated/people_j.ml): here the field
   accesses are ordinary OCaml record fields, checked by the OCaml
   compiler — the closest OCaml equivalent of the F# experience where the
   compiler checks `item.Name` against the provided type. *)

module People = Fsdata_examples_generated.People_j

let data =
  {|[ { "name":"Jane", "age":33 },
      { "name":"Dan", "age":50 },
      { "name":"Newborn" } ]|}

let () =
  List.iter
    (fun (item : People.person) ->
      Printf.printf "%s " item.name;
      Option.iter (Printf.printf "(%f) ") item.age)
    (People.parse data);
  print_newline ()
