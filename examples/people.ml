(* Section 2.1 — people.json.

   The paper's F#:

     type People = JsonProvider<"people.json">
     for item in People.Parse(data) do
       printf "%s " item.Name
       Option.iter (printf "(%f)") item.Age

   The field Name is available on every sample record and is a string; Age
   is missing on one record, so it is provided as an optional float (25
   and 3.5 join as float). We then parse *different* data of the same
   shape, exactly as the paper does. *)

open Fsdata_provider
open Fsdata_runtime

let data =
  {|[ { "name":"Jane", "age":33 },
      { "name":"Dan", "age":50, "city":"Cambridge" },
      { "name":"Newborn" } ]|}

let () =
  let sample = Samples.read "people.json" in
  let people = Result.get_ok (Provide.provide_json ~root_name:"People" sample) in

  let items = Typed.get_list (Typed.parse people data) in
  List.iter
    (fun item ->
      Printf.printf "%s " (Typed.get_string (Typed.member item "Name"));
      match Typed.get_option (Typed.member item "Age") with
      | Some age -> Printf.printf "(%f) " (Typed.get_float age)
      | None -> ())
    items;
  print_newline ();

  (* The provided type, as displayed in the paper. *)
  print_endline (Signature.to_string ~root_name:"People" people)
