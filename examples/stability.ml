(* Section 6.5 — stability of inference (Remark 1).

   "When a program fails on some input, the input can be added as another
   sample. This makes some fields optional and the code can be updated
   accordingly."

   We start from people.json, run a program that reads Age directly, then
   add a new sample in which age is missing more often and value shapes
   evolve (int -> float). The provided type changes in exactly the ways
   Remark 1 enumerates, and the program is repaired with the local rewrite
   (1): wrapping the access in an option match. *)

open Fsdata_provider
open Fsdata_runtime
module Infer = Fsdata_core.Infer
module Shape = Fsdata_core.Shape

let sample1 = {|[ { "name":"Jan", "age":25 } ]|}
let sample2 = {|[ { "name":"Tomas" }, { "name":"Alexander", "age":3.5 } ]|}

let () =
  let shape1 = Result.get_ok (Infer.of_json sample1) in
  let shape12 = Result.get_ok (Infer.of_json_samples [ sample1; sample2 ]) in
  Format.printf "shape from sample 1:      %a@." Shape.pp shape1;
  Format.printf "shape from samples 1+2:   %a@." Shape.pp shape12;

  (* Program against the first provided type: item.Age is an int. *)
  let p1 = Provide.provide ~format:`Json shape1 in
  let item = List.hd (Typed.get_list (Typed.parse p1 sample1)) in
  Printf.printf "with sample 1 only:       age = %d\n"
    (Typed.get_int (Typed.member item "Age"));

  (* After adding sample 2 the same access needs the Remark 1 rewrites:
     rule (1) unwraps the new option, rule (3) converts the new float. *)
  let p2 = Provide.provide ~format:`Json shape12 in
  let item = List.hd (Typed.get_list (Typed.parse p2 sample1)) in
  (match Typed.get_option (Typed.member item "Age") with
  | Some age ->
      Printf.printf "with samples 1+2:         age = %d (via int(e))\n"
        (int_of_float (Typed.get_float age))
  | None -> print_endline "with samples 1+2:         age missing");

  print_newline ();
  print_endline (Signature.to_string ~root_name:"People" p2)
