(* The HTML provider (the paper's footnote 10): "the same mechanism has
   later been used by the HTML type provider, which provides similarly
   easy access to data in HTML tables and lists."

   A scraped page is tag soup — unquoted attributes, unclosed elements,
   scripts containing fake markup. The lenient parser extracts the real
   <table>s and the Section 6.2 CSV inference types their columns. *)

module Csv = Fsdata_data.Csv
open Fsdata_provider
open Fsdata_runtime

let page =
  {|<html><body>
      <h1>Station data</h1>
      <p>As scraped from the report page
      <table id="stations">
        <tr><th>Station</th><th>Elevation</th><th>Active</th><th>Since</th></tr>
        <tr><td>Praha-Libus</td><td>303</td><td>1</td><td>1970-01-01</td></tr>
        <tr><td>Kosetice</td><td>534</td><td>0</td><td>1988-05-01</td></tr>
        <tr><td>Lysa hora</td><td>1322</td><td>1</td><td>1897-07-01</td></tr>
      </table>
    </body></html>|}

let () =
  match Provide.provide_html page with
  | Error e -> failwith e
  | Ok tables ->
      List.iter
        (fun (name, p, table) ->
          Printf.printf "== %s ==\n" name;
          let rows =
            Typed.get_list (Typed.load p (Csv.to_data ~convert_primitives:true table))
          in
          List.iter
            (fun row ->
              Printf.printf "%-12s %5dm  active=%b  since %s\n"
                Typed.(get_string (member row "Station"))
                Typed.(get_int (member row "Elevation"))
                Typed.(get_bool (member row "Active"))
                (Fsdata_data.Date.to_iso8601
                   Typed.(get_date (member row "Since"))))
            rows;
          print_newline ();
          print_endline (Signature.to_string ~root_name:name p))
        tables
