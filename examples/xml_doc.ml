(* Section 2.2 — the open-world XML document format.

   The paper's F#:

     type Document = XmlProvider<"sample.xml">
     let root = Document.Load("pldi/another.xml")
     for elem in root.Doc do
       Option.iter (printf " - %s") elem.Heading

   The sample shows <heading>, <p> and <image> elements, so the provider
   infers a labelled top and gives every element optional Heading / P /
   Image members. The document we then load contains a <table> element the
   sample never showed — the open-world case: all three members return
   None for it and the loop just skips it, no failure. *)

open Fsdata_provider
open Fsdata_runtime

let () =
  let sample = Samples.read "sample.xml" in
  let doc = Result.get_ok (Provide.provide_xml sample) in

  let root = Typed.parse doc (Samples.read "another.xml") in
  List.iter
    (fun elem ->
      match Typed.get_option (Typed.member elem "Heading") with
      | Some h -> Printf.printf " - %s\n" (Typed.get_string h)
      | None -> ())
    (Typed.get_list (Typed.member root "Doc"));

  print_newline ();
  print_endline (Signature.to_string ~root_name:"Document" doc)
