(* A realistic API feed: GitHub-style events.

   This is the kind of service the paper's introduction motivates — a
   JSON endpoint with no schema, deep nesting, heterogeneous payloads
   (push / watch / issues events carry different fields), nulls and ISO
   timestamps. One sample gives typed access to all of it; the payload
   fields that only some events carry come back as options, and the
   created_at strings are recognized as dates. *)

open Fsdata_provider
open Fsdata_runtime

let () =
  let sample = Samples.read "events.json" in
  let p = Result.get_ok (Provide.provide_json ~root_name:"Events" sample) in

  let events = Typed.get_list (Typed.parse p sample) in
  Printf.printf "%d events\n\n" (List.length events);

  List.iter
    (fun ev ->
      let typ = Typed.(get_string (member ev "Type")) in
      let login = Typed.(get_string (member (member ev "Actor") "Login")) in
      let repo = Typed.(get_string (member (member ev "Repo") "Name")) in
      let date = Typed.(get_date (member ev "CreatedAt")) in
      Printf.printf "%s  %-12s %-12s %s\n"
        (Fsdata_data.Date.to_iso8601 date)
        typ login repo;
      let payload = Typed.member ev "Payload" in
      (* push events: list the commit messages. A collection field that is
         missing from other samples stays a plain list — null reads as the
         empty collection (Section 3.1), no option wrapper needed. *)
      List.iter
        (fun c ->
          Printf.printf "    - %s\n" Typed.(get_string (member c "Message")))
        (Typed.get_list (Typed.member payload "Commits"));
      (* issue events: the title and labels *)
      match Typed.get_option (Typed.member payload "Issue") with
      | Some issue ->
          let labels =
            List.map
              (fun l -> Typed.(get_string (member l "Name")))
              (Typed.get_list (Typed.member issue "Labels"))
          in
          Printf.printf "    #%d %s [%s]\n"
            Typed.(get_int (member issue "Number"))
            Typed.(get_string (member issue "Title"))
            (String.concat ", " labels)
      | None -> ())
    events;

  print_newline ();
  print_endline (Signature.to_string ~root_name:"Events" p)
