(* Generated from people.json by fsdata codegen — do not edit. *)

[@@@warning "-39"] (* converter blocks are emitted with let rec *)

module Ops = Fsdata_runtime.Ops
module Shape = Fsdata_core.Shape

let _ = Shape.Bottom (* silence unused-module warnings in tiny schemas *)

type person = {
  name : string;
  age : float option;
}

let rec person_of_data (d : Fsdata_data.Data_value.t) : person =
  {
    name = ((fun v_1 -> Ops.conv_string (v_1))) (Ops.conv_field ~record:"\226\128\162" ~field:"name" (d));
    age = ((fun v_1 -> Ops.conv_null ((fun v_2 -> Ops.conv_float (v_2))) (v_1))) (Ops.conv_field ~record:"\226\128\162" ~field:"age" (d));
  }

type t = person list

let of_data (d : Fsdata_data.Data_value.t) : t =
  ((fun v_0 -> Ops.conv_elements ((fun v_1 -> person_of_data (v_1))) (v_0))) d

let parse (text : string) : t =
  of_data (Fsdata_data.Primitive.normalize (Fsdata_data.Json.parse text))

let load (path : string) : t =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse text
