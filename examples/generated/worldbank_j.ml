(* Generated from worldbank.json by fsdata codegen — do not edit. *)

[@@@warning "-39"] (* converter blocks are emitted with let rec *)

module Ops = Fsdata_runtime.Ops
module Shape = Fsdata_core.Shape

let _ = Shape.Bottom (* silence unused-module warnings in tiny schemas *)

type record = {
  pages : int;
}

and item = {
  indicator : string;
  date : int;
  value : float option;
}

and worldBank = {
  record : record;
  array : item list;
}

let rec record_of_data (d : Fsdata_data.Data_value.t) : record =
  {
    pages = ((fun v_1 -> Ops.conv_int (v_1))) (Ops.conv_field ~record:"\226\128\162" ~field:"pages" (d));
  }

and item_of_data (d : Fsdata_data.Data_value.t) : item =
  {
    indicator = ((fun v_1 -> Ops.conv_string (v_1))) (Ops.conv_field ~record:"\226\128\162" ~field:"indicator" (d));
    date = ((fun v_1 -> Ops.conv_int (v_1))) (Ops.conv_field ~record:"\226\128\162" ~field:"date" (d));
    value = ((fun v_1 -> Ops.conv_null ((fun v_2 -> Ops.conv_float (v_2))) (v_1))) (Ops.conv_field ~record:"\226\128\162" ~field:"value" (d));
  }

and worldBank_of_data (d : Fsdata_data.Data_value.t) : worldBank =
  {
    record = Ops.select_single (Shape.record "\226\128\162" [("pages", Shape.Primitive Shape.Int)]) ((fun v_1 -> record_of_data (v_1))) (d);
    array = Ops.select_single (Shape.hetero [(Shape.record "\226\128\162" [("indicator", Shape.Primitive Shape.String); ("date", Shape.Primitive Shape.Int); ("value", Shape.nullable (Shape.Primitive Shape.Float))], Fsdata_core.Multiplicity.Multiple)]) ((fun v_1 -> Ops.conv_elements ((fun v_2 -> item_of_data (v_2))) (v_1))) (d);
  }

type t = worldBank

let of_data (d : Fsdata_data.Data_value.t) : t =
  ((fun v_0 -> worldBank_of_data (v_0))) d

let parse (text : string) : t =
  of_data (Fsdata_data.Primitive.normalize (Fsdata_data.Json.parse text))

let load (path : string) : t =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse text
