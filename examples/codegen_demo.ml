(* The static half of the type-provider substitution: generate an OCaml
   module from a sample (what `fsdata codegen` does on the command line).

   Prints the module generated for people.json; the same text is committed
   as examples/generated/people_j.ml and compiled as part of this project,
   so the generated code is known to type-check — the OCaml analogue of
   the F# compiler accepting the provided types. *)

open Fsdata_provider
module Codegen = Fsdata_codegen.Codegen

let () =
  let sample = Samples.read "people.json" in
  let p = Result.get_ok (Provide.provide_json ~root_name:"People" sample) in
  print_string
    (Codegen.generate
       ~module_comment:
         "Generated from people.json by fsdata codegen — do not edit." p)
