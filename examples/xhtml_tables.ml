(* Global XML inference (Section 6.2).

   "The XML type provider also includes an option to use global inference.
   In that case, the inference from values unifies the shapes of all
   records with the same name. This is useful because, for example, in
   XHTML all <table> elements will be treated as values of the same type."

   The document below nests one table directly under <body> and another
   inside a <div>; with global inference both are the same Table class,
   and <div> may contain <div> recursively — a shape local inference
   cannot express at all. *)

module G = Fsdata_core.Xml_global
module Provide = Fsdata_provider.Provide
module Typed = Fsdata_runtime.Typed

let page =
  {|<html>
      <body>
        <table border="1"><row>spring</row><row>summer</row></table>
        <div>
          <div>
            <table><row>autumn</row></table>
          </div>
        </div>
      </body>
    </html>|}

let () =
  (* the inferred per-element signatures *)
  (match G.of_strings [ page ] with
  | Ok g -> Format.printf "%a@.@." G.pp g
  | Error e -> failwith e);

  let p = Result.get_ok (Provide.provide_xml_global [ page ]) in
  let root = Typed.parse p page in
  let body = Typed.member root "Body" in

  let print_table label t =
    let rows =
      List.map
        (fun r -> Typed.get_string (Typed.member r "Value"))
        (Typed.get_list (Typed.member t "Rows"))
    in
    Printf.printf "%s: [%s]%s\n" label
      (String.concat "; " rows)
      (match Typed.get_option (Typed.member t "Border") with
      | Some _ -> " (with border)"
      | None -> "")
  in
  print_table "table under <body>" (Typed.member body "Table");

  (* walk the recursive divs to the nested table; the self-reference and
     the table are optional, since not every <div> in the sample has them *)
  let div1 = Typed.member body "Div" in
  let div2 = Option.get (Typed.get_option (Typed.member div1 "Div")) in
  print_table "table inside <div><div>"
    (Option.get (Typed.get_option (Typed.member div2 "Table")))
