(* Section 6.2 — reading CSV data.

   CSV literals carry no types, so the shapes of primitive values are
   inferred: Ozone mixes 41 and 36.3 and becomes float; Temp has a #N/A
   cell and becomes an optional int; Date mixes formats ("3 kveten" is not
   a recognized date) and falls back to string; Autofilled contains only
   0 and 1 — the bit shape — and is provided as bool. *)

open Fsdata_provider
open Fsdata_runtime

let () =
  let sample = Samples.read "ozone.csv" in
  let csv = Result.get_ok (Provide.provide_csv sample) in

  List.iter
    (fun row ->
      let ozone = Typed.(get_float (member row "Ozone")) in
      let temp =
        match Typed.get_option (Typed.member row "Temp") with
        | Some t -> string_of_int (Typed.get_int t)
        | None -> "n/a"
      in
      let autofilled = Typed.(get_bool (member row "Autofilled")) in
      Printf.printf "ozone %5.1f  temp %3s  autofilled %b\n" ozone temp autofilled)
    (Typed.get_list (Typed.parse csv sample));

  print_newline ();
  print_endline (Signature.to_string ~root_name:"Observations" csv)
