(* Deterministic synthetic workloads for the benchmark harness.

   The sealed environment has no live services (DESIGN.md substitution
   rule), so the corpora the paper's library would meet in the wild are
   modelled synthetically: wide/deep JSON documents with controlled field
   optionality and value heterogeneity, CSV tables, and XML trees. A tiny
   deterministic PRNG keeps runs reproducible. *)

module Dv = Fsdata_data.Data_value

(* xorshift64* — deterministic, dependency-free *)
type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (if seed = 0 then 88172645463325252 else seed) }

let next r =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

let pick r n = next r mod n

(* A people-like array: n records, [optional_every] records miss the age
   field, [float_every] records carry a float age (drives nullable/float
   inference exactly like Section 2.1). *)
let people_array ?(optional_every = 3) ?(float_every = 5) n =
  let r = rng 42 in
  Dv.List
    (List.init n (fun i ->
         let base = [ ("name", Dv.String (Printf.sprintf "person%d" i)) ] in
         let fields =
           if i mod optional_every = 1 then base
           else if i mod float_every = 2 then
             base @ [ ("age", Dv.Float (float_of_int (pick r 90) +. 0.5)) ]
           else base @ [ ("age", Dv.Int (pick r 90)) ]
         in
         Dv.Record (Dv.json_record_name, fields)))

(* A record with [width] primitive fields. *)
let wide_record width =
  let r = rng 7 in
  Dv.Record
    ( Dv.json_record_name,
      List.init width (fun i ->
          ( Printf.sprintf "field%d" i,
            match i mod 4 with
            | 0 -> Dv.Int (pick r 1000)
            | 1 -> Dv.Float (float_of_int (pick r 1000) /. 10.)
            | 2 -> Dv.String (Printf.sprintf "value%d" (pick r 100))
            | _ -> Dv.Bool (pick r 2 = 0) )) )

(* A nested record chain of the given depth, ending in an int. *)
let rec deep_record depth =
  if depth = 0 then Dv.Int 1
  else Dv.Record (Dv.json_record_name, [ ("nested", deep_record (depth - 1)) ])

(* A heterogeneous collection in the World Bank style: one metadata
   record and one data array of n rows. *)
let worldbank_like n =
  let r = rng 9 in
  Dv.List
    [
      Dv.Record (Dv.json_record_name, [ ("pages", Dv.Int (1 + pick r 50)) ]);
      Dv.List
        (List.init n (fun i ->
             Dv.Record
               ( Dv.json_record_name,
                 [
                   ("indicator", Dv.String "GC.DOD.TOTL.GD.ZS");
                   ("date", Dv.String (string_of_int (1990 + (i mod 30))));
                   ( "value",
                     if pick r 4 = 0 then Dv.Null
                     else Dv.String (Printf.sprintf "%d.%04d" (pick r 100) (pick r 10000))
                   );
                 ] )));
    ]

(* A collection mixing tag families — ints, strings, records of two
   distinct field sets, null, and nested lists — so inference builds a
   labelled top with multiplicities (Section 6.4) and csh saturates
   primitive labels across entries. *)
let mixed_tags_array n =
  let r = rng 13 in
  Dv.List
    (List.init n (fun i ->
         match pick r 6 with
         | 0 -> Dv.Int (pick r 1000)
         | 1 -> Dv.String (Printf.sprintf "label%d" (pick r 50))
         | 2 ->
             Dv.Record
               ( Dv.json_record_name,
                 [
                   ("city", Dv.String (Printf.sprintf "city%d" (pick r 20)));
                   ("population", Dv.Int (pick r 1_000_000));
                   (* bit-string / record / bool across elements: the
                      record forces a labelled top for this field, and
                      the bit label then joins into bool when it meets
                      it there (csh.top_label_saturations) *)
                   ( "mixed",
                     match i mod 3 with
                     | 0 -> Dv.String "0"
                     | 1 -> Dv.Record ("point", [ ("x", Dv.Int (pick r 9)) ])
                     | _ -> Dv.Bool (pick r 2 = 0) );
                 ] )
         | 3 ->
             Dv.Record
               ( "country",
                 [
                   ("name", Dv.String (Printf.sprintf "country%d" i));
                   ("gdp", Dv.Float (float_of_int (pick r 5000) /. 10.));
                 ] )
         | 4 -> Dv.Null
         | _ -> Dv.List (List.init (pick r 3) (fun j -> Dv.Int j))))

let json_text d = Fsdata_data.Json.to_string d

(* A stream of worldbank-style documents (§2.3 / §6.4): each document is
   the [metadata record; data array] heterogeneous pair, rows_per_doc
   rows each. Exercises nested lists and labelled-top merging across
   documents — the shape every doc contributes is a 2-entry top. *)
let hetero_corpus_text ?(rows_per_doc = 20) n =
  let buf = Buffer.create (n * rows_per_doc * 32) in
  for i = 0 to n - 1 do
    (* vary the row count so per-document shapes differ in multiplicity
       and the cross-document csh merges stay non-trivial *)
    Buffer.add_string buf (json_text (worldbank_like (rows_per_doc + (i mod 7))));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* CSV text with n rows over the ozone-style columns. *)
let csv_text n =
  let r = rng 3 in
  let buf = Buffer.create (n * 24) in
  Buffer.add_string buf "Ozone,Temp,Date,Autofilled\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%d.%d,%s,%04d-%02d-%02d,%d\n" (pick r 100) (pick r 10)
         (if pick r 10 = 0 then "#N/A" else string_of_int (50 + pick r 40))
         (1990 + (i mod 30))
         (1 + (i mod 12))
         (1 + (i mod 28))
         (pick r 2))
  done;
  Buffer.contents buf

(* XML text with n children drawn from three element kinds (the open-world
   document format of Section 2.2). *)
let xml_text n =
  let r = rng 5 in
  let buf = Buffer.create (n * 32) in
  Buffer.add_string buf "<doc>";
  for i = 0 to n - 1 do
    match pick r 3 with
    | 0 -> Buffer.add_string buf (Printf.sprintf "<heading>Section %d</heading>" i)
    | 1 -> Buffer.add_string buf (Printf.sprintf "<p>Paragraph number %d with text.</p>" i)
    | _ -> Buffer.add_string buf (Printf.sprintf "<image source=\"img%d.png\"/>" i)
  done;
  Buffer.add_string buf "</doc>";
  Buffer.contents buf

(* k samples of the same people-ish shape, for multi-sample csh folding. *)
let sample_set k n = List.init k (fun i -> people_array ~optional_every:(2 + i) n)

(* A corpus of n standalone sample documents for the parallel
   multi-sample inference benchmarks: event-like records whose field
   sets and literal kinds vary from document to document, so per-chunk
   folds meet genuine optionality/nullability merges rather than
   collapsing after the first few samples. *)
let sample_doc r i =
  let base =
    [
      ("id", Dv.Int i);
      ("kind", Dv.String (Printf.sprintf "kind%d" (i mod 7)));
    ]
  in
  let fields =
    match pick r 5 with
    | 0 -> base
    | 1 -> base @ [ ("value", Dv.Float (float_of_int (pick r 1000) /. 10.)) ]
    | 2 -> base @ [ ("value", Dv.Int (pick r 1000)); ("flag", Dv.Bool true) ]
    | 3 ->
        base
        @ [
            ("when", Dv.String (Printf.sprintf "%04d-%02d-%02d" (1990 + (i mod 30))
                                  (1 + (i mod 12)) (1 + (i mod 28))));
            ("note", Dv.Null);
          ]
    | _ ->
        base
        @ [
            ( "tags",
              Dv.List
                (List.init (pick r 3) (fun j ->
                     Dv.String (Printf.sprintf "t%d" j))) );
          ]
  in
  Dv.Record (Dv.json_record_name, fields)

let sample_corpus n =
  let r = rng 11 in
  List.init n (fun i -> sample_doc r i)

(* The same corpus as whitespace-separated JSON text, for the streaming
   parse+infer pipeline. *)
let corpus_text n =
  let r = rng 11 in
  let buf = Buffer.create (n * 48) in
  for i = 0 to n - 1 do
    Buffer.add_string buf (json_text (sample_doc r i));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* The same corpus with every [stride]-th document corrupted by blanking
   its first field separator. The corrupt document stays brace-balanced,
   so the recovering parser resynchronizes at its own closing brace and
   one fault costs exactly one sample. *)
let faulty_corpus_text ?(stride = 50) n =
  let r = rng 11 in
  let buf = Buffer.create (n * 48) in
  for i = 0 to n - 1 do
    let line = json_text (sample_doc r i) in
    let line =
      if i mod stride <> 0 then line
      else
        match String.index_opt line ':' with
        | Some j -> String.mapi (fun k c -> if k = j then ' ' else c) line
        | None -> line
    in
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* A corpus for the query-pushdown benchmarks (B14): every document
   carries the three fields queries touch plus a [payload] record an
   order of magnitude bigger than the rest — exactly the bytes a
   pruned compiled decoder skips at the lexer level while the generic
   reference evaluator must still parse them. *)
let query_corpus_text ?(payload_fields = 30) n =
  let r = rng 23 in
  let buf = Buffer.create (n * 768) in
  for i = 0 to n - 1 do
    let payload =
      Dv.Record
        ( Dv.json_record_name,
          List.init payload_fields (fun j ->
              ( Printf.sprintf "p%02d" j,
                Dv.String (Printf.sprintf "%016x" (pick r 1_000_000_000)) )) )
    in
    let d =
      Dv.Record
        ( Dv.json_record_name,
          [
            ("name", Dv.String (Printf.sprintf "user%d" i));
            ("age", Dv.Int (18 + pick r 60));
            ("active", Dv.Bool (pick r 2 = 0));
            ("payload", payload);
          ] )
    in
    Buffer.add_string buf (json_text d);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
