(* Soak test: run the relative-safety pipeline (Lemma 2's deep walk over
   provided members) against large volumes of random sample sets — the
   long-haul version of the property tests in test/test_safety.ml.

   Usage: soak.exe [iterations] [seed]   (defaults: 50_000, 2016)

   Exits non-zero and prints the offending samples on the first violation.
   Useful before releases: the quick property runs cover hundreds of
   cases; this covers hundreds of thousands. *)

module Dv = Fsdata_data.Data_value
module Infer = Fsdata_core.Infer
module Provide = Fsdata_provider.Provide
open Fsdata_foo.Syntax
module Fast = Fsdata_foo.Eval_fast
open QCheck2

(* a compact copy of the test-suite data generator *)
let field_names = [ "a"; "b"; "c"; "name"; "age"; "value"; "temp" ]
let record_names = [ Dv.json_record_name; "item"; "row"; "node" ]

let gen_data : Dv.t Gen.t =
  let open Gen in
  let gen_fields gen_value =
    let* mask = list_size (return (List.length field_names)) bool in
    let names =
      List.filteri (fun i _ -> List.nth mask i) field_names
      |> List.filteri (fun i _ -> i < 4)
    in
    let rec build acc = function
      | [] -> return (List.rev acc)
      | n :: rest ->
          let* v = gen_value in
          build ((n, v) :: acc) rest
    in
    build [] names
  in
  sized
  @@ fix (fun self size ->
         let primitive =
           oneof
             [
               return Dv.Null;
               (bool >|= fun b -> Dv.Bool b);
               (int_range (-1000) 1000 >|= fun i -> Dv.Int i);
               (float_range (-1e6) 1e6 >|= fun f -> Dv.Float f);
               (oneofl
                  [ ""; "x"; "2012-05-01"; "0"; "1"; "35.14"; "true"; "#N/A";
                    "May 3"; "text" ]
               >|= fun s -> Dv.String s);
             ]
         in
         if size <= 1 then primitive
         else
           frequency
             [
               (3, primitive);
               ( 2,
                 let* items = list_size (int_range 0 4) (self (size / 2)) in
                 return (Dv.List items) );
               ( 2,
                 let* name = oneofl record_names in
                 let* fields = gen_fields (self (size / 2)) in
                 return (Dv.Record (name, fields)) );
             ])

let rec walk classes (v : Fast.value) (t : ty) : (unit, string) result =
  match t with
  | TInt | TFloat | TBool | TString | TDate | TData | TArrow _ -> Ok ()
  | TOption t' -> (
      match v with
      | Fast.VNone -> Ok ()
      | Fast.VSome v' -> walk classes v' t'
      | _ -> Error "option expected")
  | TList t' ->
      let rec go = function
        | Fast.VNil -> Ok ()
        | Fast.VCons (x, rest) -> (
            match walk classes x t' with Ok () -> go rest | e -> e)
        | _ -> Error "list expected"
      in
      go v
  | TClass c -> (
      match find_class classes c with
      | None -> Error ("unknown class " ^ c)
      | Some cls ->
          List.fold_left
            (fun acc (m : member_def) ->
              match acc with
              | Error _ -> acc
              | Ok () -> (
                  match Fast.member classes v m.member_name with
                  | mv -> walk classes mv m.member_ty
                  | exception Fast.Stuck reason ->
                      Error (Printf.sprintf "%s.%s stuck: %s" c m.member_name reason)
                  | exception Fast.Foo_exn ->
                      Error (Printf.sprintf "%s.%s raised" c m.member_name)))
            (Ok ()) cls.members)

let check_samples samples =
  let shape = Infer.shape_of_samples ~mode:`Practical samples in
  let p = Provide.provide ~format:`Json shape in
  List.find_map
    (fun input ->
      let input = Fsdata_data.Primitive.normalize input in
      match Fast.eval p.Provide.classes [] (Provide.apply p input) with
      | v -> (
          match walk p.Provide.classes v p.Provide.root_ty with
          | Ok () -> None
          | Error e -> Some (input, e))
      | exception Fast.Stuck reason -> Some (input, "conversion stuck: " ^ reason)
      | exception Fast.Foo_exn -> Some (input, "conversion raised"))
    samples

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 50_000
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2016
  in
  let rand = Random.State.make [| seed |] in
  let gen = Gen.(list_size (int_range 1 4) gen_data) in
  let start = Unix.gettimeofday () in
  for i = 1 to iterations do
    let samples = Gen.generate1 ~rand gen in
    (match check_samples samples with
    | None -> ()
    | Some (input, error) ->
        Printf.printf "VIOLATION at iteration %d\n" i;
        List.iter (fun d -> Printf.printf "sample: %s\n" (Dv.to_string d)) samples;
        Printf.printf "input: %s\nerror: %s\n" (Dv.to_string input) error;
        exit 1);
    if i mod 10_000 = 0 then
      Printf.printf "  %d iterations, %.1f s, no violations\n%!" i
        (Unix.gettimeofday () -. start)
  done;
  Printf.printf "soak: %d sample sets walked, no safety violations (%.1f s)\n"
    iterations
    (Unix.gettimeofday () -. start)
