(* Fresh-process benchmark driver.

   OCaml 5.1 never compacts the major heap, so benchmark groups sharing
   one process contaminate each other: whichever group runs later pays
   allocation-rate and cache costs for heap growth it did not cause
   (EXPERIMENTS.md B9 records a fictitious +140% measured that way).
   Interleaving repeats inside a group — what the obs group does — only
   cancels drift within the group. This driver kills the remaining
   cross-group drift by running every group in its own main.exe process,
   so each starts from a pristine heap.

   Usage: driver.exe [--smoke] [group ...]   (default: every group)

   Exit status is the first failing group's, so smoke assertions keep
   their teeth under `dune runtest`. *)

(* Must track bench/main.ml's group table; an unknown name fails the run
   (main.exe exits 1 listing what is available). *)
let default_groups =
  [
    "fig1"; "fig2"; "loc"; "infer"; "parse"; "access"; "shape"; "provider";
    "par"; "faults"; "obs"; "hetero"; "serve"; "compile"; "loadgen";
    "registry";
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, names = List.partition (fun a -> a = "--smoke") args in
  let names = if names = [] then default_groups else names in
  let main =
    Filename.concat (Filename.dirname Sys.executable_name) "main.exe"
  in
  if not (Sys.file_exists main) then begin
    Printf.eprintf "driver: %s not found (build bench/main.exe first)\n" main;
    exit 1
  end;
  List.iter
    (fun group ->
      let argv = Array.of_list ((main :: flags) @ [ group ]) in
      let pid =
        Unix.create_process main argv Unix.stdin Unix.stdout Unix.stderr
      in
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED code ->
          Printf.eprintf "driver: group %s exited with %d\n" group code;
          exit code
      | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
          Printf.eprintf "driver: group %s killed by signal %d\n" group s;
          exit 1)
    names
