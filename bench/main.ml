(* Benchmark harness — regenerates every experiment of the evaluation
   index in DESIGN.md (the paper has no empirical tables; its "evaluation"
   is the formal development plus the practicality claims of Sections 1,
   2 and 6, each of which maps to a group below):

   fig1   the preferred-shape relation over the Figure 1 diagram
   fig2   the csh join table (Figures 2 and 4), as executable output
   loc    Section 1's conciseness claim: hand-written vs provided access
   infer  inference scalability: S(d) and multi-sample csh folding (B2)
   parse  parser throughput for JSON / XML / CSV (B3)
   access provided-access overhead: raw match vs generated code vs the
          Foo-interpreted provider (B4)
   shape  hasShape / validation cost (B5)
   par    sequential vs parallel (domain-chunked) multi-sample inference

   Usage: main.exe [--smoke] [group ...] — no arguments runs everything.
   --smoke shrinks the corpora and iteration counts so the run fits a CI
   budget (it is wired into `dune runtest` for the par group). *)

open Bechamel
open Toolkit
module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Infer = Fsdata_core.Infer
module Csh = Fsdata_core.Csh
module P = Fsdata_core.Preference
module Provide = Fsdata_provider.Provide
module Typed = Fsdata_runtime.Typed
module Ops = Fsdata_runtime.Ops

(* ----- tiny driver around bechamel ----- *)

let run_group name tests =
  let tests = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let pretty ns =
    if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
    else Printf.sprintf "%8.2f ns" ns
  in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-58s %s/run\n%!" name (pretty est)
      | _ -> Printf.printf "  %-58s (no estimate)\n%!" name)
    rows

let stage = Staged.stage

(* ----- fig1: the preferred-shape relation table ----- *)

let fig1 () =
  print_endline "== fig1: the preferred shape relation (Figure 1) ==";
  print_endline
    "   rows \xe2\x8a\x91 columns; the matrix reproduces the diagram's edges\n\
    \   (plus transitive closure), bit/date from Section 6.2 included.";
  let shapes =
    [
      ("bot", Shape.Bottom);
      ("bit0", Shape.Primitive Shape.Bit0);
      ("bit", Shape.Primitive Shape.Bit);
      ("int", Shape.Primitive Shape.Int);
      ("float", Shape.Primitive Shape.Float);
      ("bool", Shape.Primitive Shape.Bool);
      ("date", Shape.Primitive Shape.Date);
      ("string", Shape.Primitive Shape.String);
      ("rec", Shape.record "p" [ ("x", Shape.Primitive Shape.Int) ]);
      ("null", Shape.Null);
      ("int?", Shape.Nullable (Shape.Primitive Shape.Int));
      ("float?", Shape.Nullable (Shape.Primitive Shape.Float));
      ("rec?", Shape.Nullable (Shape.record "p" [ ("x", Shape.Primitive Shape.Int) ]));
      ("[int]", Shape.collection (Shape.Primitive Shape.Int));
      ("any", Shape.any);
    ]
  in
  Printf.printf "  %8s" "";
  List.iter (fun (n, _) -> Printf.printf "%7s" n) shapes;
  print_newline ();
  List.iter
    (fun (rn, rs) ->
      Printf.printf "  %8s" rn;
      List.iter
        (fun (_, cs) -> Printf.printf "%7s" (if P.is_preferred rs cs then "x" else "."))
        shapes;
      print_newline ())
    shapes;
  print_newline ()

(* ----- fig2: the csh join table ----- *)

let fig2 () =
  print_endline "== fig2: common preferred shapes (Figures 2 and 4) ==";
  let s = Shape.to_string in
  let cases =
    [
      (Shape.Primitive Shape.Int, Shape.Primitive Shape.Float);
      (Shape.Primitive Shape.Bit0, Shape.Primitive Shape.Bit1);
      (Shape.Primitive Shape.Bit, Shape.Primitive Shape.Bool);
      (Shape.Primitive Shape.Date, Shape.Primitive Shape.String);
      (Shape.Null, Shape.Primitive Shape.Int);
      (Shape.Bottom, Shape.Primitive Shape.String);
      (Shape.Primitive Shape.Int, Shape.Primitive Shape.Bool);
      ( Shape.record "p" [ ("x", Shape.Primitive Shape.Int) ],
        Shape.record "p" [ ("y", Shape.Primitive Shape.Bool) ] );
      (Shape.collection (Shape.Primitive Shape.Int), Shape.collection Shape.Null);
      ( Shape.top [ Shape.Primitive Shape.Int; Shape.Primitive Shape.Bool ],
        Shape.Primitive Shape.Float );
      (Shape.top [ Shape.Primitive Shape.Int ], Shape.record "p" []);
    ]
  in
  List.iter
    (fun (a, b) ->
      Printf.printf "  csh(%s, %s) = %s\n" (s a) (s b) (s (Csh.csh a b)))
    cases;
  print_newline ()

(* ----- loc: Section 1's conciseness claim ----- *)

let weather_sample =
  {|{ "coord": {"lon": 14.42, "lat": 50.09},
     "main": { "temp": 5, "pressure": 1010, "humidity": 100 },
     "name": "Prague", "cod": 200 }|}

let hand_written_temp doc =
  (* the Section 1 triple pattern match, 9 lines of matching logic *)
  match doc with
  | Dv.Record (_, root) -> (
      match List.assoc_opt "main" root with
      | Some (Dv.Record (_, main)) -> (
          match List.assoc_opt "temp" main with
          | Some (Dv.Int n) -> float_of_int n
          | Some (Dv.Float n) -> n
          | _ -> failwith "Incorrect format")
      | _ -> failwith "Incorrect format")
  | _ -> failwith "Incorrect format"

let loc () =
  print_endline "== loc: Section 1, hand-written vs provided (B1) ==";
  print_endline
    "   code size: hand-written matcher = 9 lines of matching logic;\n\
    \   provided access = 2 lines (provider invocation + member access).\n\
    \   Run-time cost of each alternative on the same document:";
  let doc = Fsdata_data.Primitive.normalize (Fsdata_data.Json.parse weather_sample) in
  let p = Result.get_ok (Provide.provide_json ~root_name:"W" weather_sample) in
  let w = Typed.load p doc in
  let generated_temp doc =
    (* generated-code style: Ops composition, what fsdata codegen emits *)
    Ops.conv_float
      (Ops.conv_field ~record:Dv.json_record_name ~field:"temp"
         (Ops.conv_field ~record:Dv.json_record_name ~field:"main" doc))
  in
  run_group "loc"
    [
      Test.make ~name:"hand-written match" (stage (fun () -> hand_written_temp doc));
      Test.make ~name:"generated code (static Ops)"
        (stage (fun () -> generated_temp doc));
      Test.make ~name:"typed runtime (Foo interpreter)"
        (stage (fun () -> Typed.(get_float (member (member w "Main") "Temp"))));
      Test.make ~name:"provider invocation (compile-time analogue)"
        (stage (fun () -> Provide.provide_json ~root_name:"W" weather_sample));
    ];
  print_newline ()

(* ----- infer: inference scalability (B2) ----- *)

let infer () =
  print_endline "== infer: shape inference scalability (B2) ==";
  let sizes = [ 10; 100; 1000 ] in
  let tests_rows =
    List.map
      (fun n ->
        let d = Workloads.people_array n in
        Test.make ~name:(Printf.sprintf "S(people array), n=%4d" n)
          (stage (fun () -> Infer.shape_of_value ~mode:`Practical d)))
      sizes
  in
  let tests_width =
    List.map
      (fun w ->
        let d = Workloads.wide_record w in
        Test.make ~name:(Printf.sprintf "S(wide record), width=%4d" w)
          (stage (fun () -> Infer.shape_of_value ~mode:`Practical d)))
      [ 10; 100; 1000 ]
  in
  let tests_depth =
    List.map
      (fun dep ->
        let d = Workloads.deep_record dep in
        Test.make ~name:(Printf.sprintf "S(deep record), depth=%4d" dep)
          (stage (fun () -> Infer.shape_of_value ~mode:`Practical d)))
      [ 10; 100; 1000 ]
  in
  let tests_samples =
    List.map
      (fun k ->
        let samples = Workloads.sample_set k 50 in
        Test.make ~name:(Printf.sprintf "csh fold over %2d samples of 50 rows" k)
          (stage (fun () -> Infer.shape_of_samples ~mode:`Practical samples)))
      [ 2; 8; 32 ]
  in
  let hetero =
    let d = Workloads.worldbank_like 200 in
    [
      Test.make ~name:"S(worldbank-like), 200 rows, hetero"
        (stage (fun () -> Infer.shape_of_value ~mode:`Practical d));
      Test.make ~name:"S(worldbank-like), 200 rows, paper mode"
        (stage (fun () -> Infer.shape_of_value ~mode:`Paper d));
    ]
  in
  run_group "infer" (tests_rows @ tests_width @ tests_depth @ tests_samples @ hetero);
  print_newline ()

(* ----- parse: parser throughput (B3) ----- *)

let parse () =
  print_endline "== parse: parser throughput (B3) ==";
  let sizes = [ 10; 100; 1000 ] in
  let json_tests =
    List.map
      (fun n ->
        let text = Workloads.json_text (Workloads.people_array n) in
        Test.make
          ~name:
            (Printf.sprintf "JSON parse, %4d records (%6d B)" n (String.length text))
          (stage (fun () -> Fsdata_data.Json.parse text)))
      sizes
  in
  let xml_tests =
    List.map
      (fun n ->
        let text = Workloads.xml_text n in
        Test.make
          ~name:
            (Printf.sprintf "XML parse, %4d elements (%6d B)" n (String.length text))
          (stage (fun () -> Fsdata_data.Xml.parse text)))
      sizes
  in
  let csv_tests =
    List.map
      (fun n ->
        let text = Workloads.csv_text n in
        Test.make
          ~name:(Printf.sprintf "CSV parse, %4d rows (%6d B)" n (String.length text))
          (stage (fun () -> Fsdata_data.Csv.parse text)))
      sizes
  in
  let print_tests =
    let d = Workloads.people_array 100 in
    [
      Test.make ~name:"JSON print, 100 records"
        (stage (fun () -> Fsdata_data.Json.to_string d));
    ]
  in
  run_group "parse" (json_tests @ xml_tests @ csv_tests @ print_tests);
  print_newline ()

(* ----- access: provided-access overhead (B4) ----- *)

let access () =
  print_endline "== access: provided access overhead (B4) ==";
  let n = 100 in
  let data = Workloads.people_array n in
  let text = Workloads.json_text data in
  let p = Result.get_ok (Provide.provide_json text) in
  let v = Typed.load p data in
  let raw_sum doc =
    match doc with
    | Dv.List items ->
        List.fold_left
          (fun acc item ->
            match item with
            | Dv.Record (_, fields) -> (
                match List.assoc_opt "age" fields with
                | Some (Dv.Int a) -> acc +. float_of_int a
                | Some (Dv.Float a) -> acc +. a
                | _ -> acc)
            | _ -> acc)
          0. items
    | _ -> 0.
  in
  let ops_sum doc =
    List.fold_left
      (fun acc item ->
        match
          Ops.conv_null Ops.conv_float
            (Ops.conv_field ~record:Dv.json_record_name ~field:"age" item)
        with
        | Some a -> acc +. a
        | None -> acc)
      0.
      (Ops.conv_elements (fun d -> d) doc)
  in
  let typed_sum root =
    List.fold_left
      (fun acc item ->
        match Typed.get_option (Typed.member item "Age") with
        | Some a -> acc +. Typed.get_float a
        | None -> acc)
      0. (Typed.get_list root)
  in
  (* the big-step evaluator over the same provided classes *)
  let module Fast = Fsdata_foo.Eval_fast in
  let fast_root = Fast.eval p.Provide.classes [] (Provide.apply p data) in
  let fast_sum root =
    let rec go acc = function
      | Fast.VNil -> acc
      | Fast.VCons (item, rest) ->
          let acc =
            match Fast.member p.Provide.classes item "Age" with
            | Fast.VSome (Fast.VData (Dv.Float a)) -> acc +. a
            | Fast.VSome (Fast.VData (Dv.Int a)) -> acc +. float_of_int a
            | _ -> acc
          in
          go acc rest
      | _ -> acc
    in
    go 0. root
  in
  run_group "access"
    [
      Test.make ~name:(Printf.sprintf "raw pattern match, %d rows" n)
        (stage (fun () -> raw_sum data));
      Test.make ~name:(Printf.sprintf "generated code (Ops), %d rows" n)
        (stage (fun () -> ops_sum data));
      Test.make ~name:(Printf.sprintf "big-step Foo evaluator, %d rows" n)
        (stage (fun () -> fast_sum fast_root));
      Test.make ~name:(Printf.sprintf "small-step Foo interpreter, %d rows" n)
        (stage (fun () -> typed_sum v));
    ];
  print_newline ()

(* ----- shape: hasShape / validation cost (B5) ----- *)

let shape_bench () =
  print_endline "== shape: runtime shape tests (B5) ==";
  let tests =
    List.concat_map
      (fun n ->
        let d = Workloads.people_array n in
        let s = Infer.shape_of_value ~mode:`Practical d in
        [
          Test.make ~name:(Printf.sprintf "hasShape(S(d), d), %4d rows" n)
            (stage (fun () -> Fsdata_core.Shape_check.has_shape s d));
          Test.make ~name:(Printf.sprintf "is_preferred(S(d), S(d)), %4d rows" n)
            (stage (fun () -> P.is_preferred s s));
        ])
      [ 10; 100; 1000 ]
  in
  let top =
    Shape.top
      [ Shape.Primitive Shape.Int; Shape.record "p" [ ("x", Shape.Primitive Shape.Int) ] ]
  in
  let hit = Dv.Record ("p", [ ("x", Dv.Int 1) ]) in
  let miss = Dv.String "unknown" in
  let tests =
    tests
    @ [
        Test.make ~name:"labelled-top test, matching record"
          (stage (fun () -> Fsdata_core.Shape_check.has_shape top hit));
        Test.make ~name:"labelled-top test, unknown value"
          (stage (fun () -> Fsdata_core.Shape_check.has_shape top miss));
      ]
  in
  run_group "shape" tests;
  print_newline ()

(* ----- par: sequential vs parallel multi-sample inference ----- *)

let smoke = ref false

(* Wall-clock timing (best of [repeats]) rather than bechamel: a single
   10k-100k-sample inference run is far above bechamel's per-run
   granularity, and the quantity of interest is the seq/par ratio. *)
let time_best ~repeats f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

(* Run [f] once with tracing on and print where the time went, using the
   inclusive per-name totals of {!Fsdata_obs.Trace.aggregate}. Restores
   the previous enabled states and clears the buffers afterwards, so the
   breakdown never contaminates a timed measurement. *)
let stage_breakdown label f =
  let module T = Fsdata_obs.Trace in
  let was_t = T.enabled () and was_m = Fsdata_obs.Metrics.enabled () in
  T.reset ();
  T.set_enabled true;
  let r = f () in
  T.set_enabled was_t;
  Printf.printf "  stage breakdown, %s (inclusive):\n%!" label;
  List.iter
    (fun (name, count, total_ns) ->
      Printf.printf "    %-14s %6d span%s %10.2f ms\n%!" name count
        (if count = 1 then " " else "s")
        (Int64.to_float total_ns /. 1e6))
    (T.aggregate ());
  T.reset ();
  Fsdata_obs.Metrics.set_enabled was_m;
  r

let par_bench () =
  let module Par = Fsdata_core.Par_infer in
  print_endline "== par: sequential vs parallel multi-sample inference ==";
  Printf.printf "   recommended domain count: %d%s\n%!" (Par.recommended_jobs ())
    (if !smoke then "  (smoke mode: reduced corpus and iterations)" else "");
  let sizes = if !smoke then [ 2_000 ] else [ 10_000; 100_000 ] in
  let repeats = if !smoke then 1 else 3 in
  let jobs_list =
    List.sort_uniq compare [ 2; 4; Par.recommended_jobs () ]
    |> List.filter (fun j -> j > 1)
  in
  List.iter
    (fun n ->
      let samples = Workloads.sample_corpus n in
      let row label t = function
        | None -> Printf.printf "  %6d samples: %-26s %8.1f ms\n%!" n label (t *. 1e3)
        | Some (t_seq, agree) ->
            Printf.printf "  %6d samples: %-26s %8.1f ms  %5.2fx speedup, agree=%b\n%!"
              n label (t *. 1e3) (t_seq /. t) agree
      in
      let seq_shape, t_seq =
        time_best ~repeats (fun () ->
            Infer.shape_of_samples ~mode:`Practical samples)
      in
      row "infer sequential fold" t_seq None;
      List.iter
        (fun jobs ->
          let par_shape, t_par =
            time_best ~repeats (fun () ->
                Par.shape_of_samples ~mode:`Practical ~jobs samples)
          in
          row
            (Printf.sprintf "infer --jobs %d" jobs)
            t_par
            (Some (t_seq, Shape.equal seq_shape par_shape)))
        jobs_list;
      (* streaming: chunked parse fused with per-chunk inference. Both
         granularities are measured: the historical fixed 512-document
         chunks, and the adaptive default that targets a corpus-sized
         slice of bytes per chunk (EXPERIMENTS.md B7) — the fix for the
         regime where tiny chunks made --jobs > 1 slower than the
         sequential fold. *)
      let text = Workloads.corpus_text n in
      let seq_stream, t_seq_stream =
        time_best ~repeats (fun () -> Infer.of_json text)
      in
      row "parse+infer sequential" t_seq_stream None;
      let stream_row label result t =
        row label t
          (Some
             ( t_seq_stream,
               match (seq_stream, result) with
               | Ok a, Ok b -> Shape.equal a b
               | _ -> false ))
      in
      List.iter
        (fun jobs ->
          let fixed, t_fixed =
            time_best ~repeats (fun () -> Par.of_json ~jobs ~chunk_size:512 text)
          in
          stream_row
            (Printf.sprintf "parse+infer -j %d, 512/chunk" jobs)
            fixed t_fixed;
          let adaptive, t_adaptive =
            time_best ~repeats (fun () -> Par.of_json ~jobs text)
          in
          stream_row
            (Printf.sprintf "parse+infer -j %d, adaptive" jobs)
            adaptive t_adaptive;
          if !smoke then begin
            let agree =
              match (seq_stream, fixed, adaptive) with
              | Ok a, Ok b, Ok c -> Shape.equal a b && Shape.equal a c
              | _ -> false
            in
            if not agree then begin
              Printf.eprintf
                "par: smoke assertion failed: fixed/adaptive chunking \
                 disagrees with the sequential fold (jobs %d)\n"
                jobs;
              exit 1
            end
          end)
        jobs_list;
      match jobs_list with
      | [] -> ()
      | jobs :: _ ->
          ignore
            (stage_breakdown
               (Printf.sprintf "parse+infer --jobs %d, %d docs, adaptive" jobs n)
               (fun () -> Par.of_json ~jobs text)))
    sizes;
  print_newline ()

(* ----- faults: diagnostics overhead and recovering ingestion ----- *)

(* Two questions, mirroring the robustness work:
   1. What does threading structured diagnostics through the pipeline
      cost when nothing goes wrong? (target: <= 3% on the clean path —
      the tolerant driver with budget 0 vs the strict driver)
   2. What does a corrupt document cost under a budget? (resync +
      quarantine vs the same corpus cleaned)
   In smoke mode the timings are incidental: the run asserts the
   agreement facts (clean-path shape identity, exact quarantine counts)
   and exits non-zero on violation, so `dune runtest` pins them. *)
let faults_bench () =
  let module Par = Fsdata_core.Par_infer in
  let module Diagnostic = Fsdata_data.Diagnostic in
  print_endline "== faults: diagnostics overhead and recovering ingestion ==";
  let n = if !smoke then 2_000 else 50_000 in
  let stride = 50 in
  let repeats = if !smoke then 1 else 3 in
  let clean = Workloads.corpus_text n in
  let faulty = Workloads.faulty_corpus_text ~stride n in
  let expected_faults = (n + stride - 1) / stride in
  let fail msg =
    Printf.eprintf "faults: smoke assertion failed: %s\n" msg;
    exit 1
  in
  (* 1. the clean path: strict vs tolerant with the strict budget *)
  let strict_shape, t_strict =
    time_best ~repeats (fun () -> Infer.of_json clean)
  in
  let tol_report, t_tol =
    time_best ~repeats (fun () ->
        Infer.of_json_tolerant ~budget:Diagnostic.Strict clean)
  in
  Printf.printf "  %6d docs: strict streaming infer        %8.1f ms\n%!" n
    (t_strict *. 1e3);
  Printf.printf "  %6d docs: tolerant, budget 0, clean     %8.1f ms  overhead %+5.1f%%\n%!"
    n (t_tol *. 1e3)
    ((t_tol -. t_strict) /. t_strict *. 100.);
  let clean_agree =
    match (strict_shape, tol_report) with
    | Ok s, Ok r -> Shape.equal s r.Fsdata_core.Infer.shape && r.quarantined = []
    | _ -> false
  in
  Printf.printf "                clean-path agreement: %b\n%!" clean_agree;
  if !smoke && not clean_agree then
    fail "tolerant(budget 0) disagrees with strict on a clean corpus";
  (* 2. a corrupt corpus under budget: resync + quarantine, seq and par *)
  let budget = Diagnostic.Percent 5.0 in
  let check label = function
    | Error e -> if !smoke then fail (label ^ ": " ^ e) else ()
    | Ok (r : Fsdata_core.Infer.report) ->
        if !smoke && List.length r.quarantined <> expected_faults then
          fail
            (Printf.sprintf "%s: quarantined %d, expected %d" label
               (List.length r.quarantined) expected_faults)
  in
  let rep_seq, t_seq =
    time_best ~repeats (fun () -> Infer.of_json_tolerant ~budget faulty)
  in
  check "sequential recovering" rep_seq;
  Printf.printf
    "  %6d docs: tolerant, %d faults, seq     %8.1f ms  (%d quarantined)\n%!" n
    expected_faults (t_seq *. 1e3)
    (match rep_seq with Ok r -> List.length r.quarantined | Error _ -> -1);
  List.iter
    (fun jobs ->
      let rep_par, t_par =
        time_best ~repeats (fun () ->
            Par.of_json_tolerant ~jobs ~chunk_size:512 ~budget faulty)
      in
      check (Printf.sprintf "parallel recovering (jobs %d)" jobs) rep_par;
      let agree =
        match (rep_seq, rep_par) with
        | Ok a, Ok b ->
            Shape.equal a.Fsdata_core.Infer.shape b.Fsdata_core.Infer.shape
            && List.map (fun q -> q.Fsdata_core.Infer.q_index) a.quarantined
               = List.map (fun q -> q.Fsdata_core.Infer.q_index) b.quarantined
        | _ -> false
      in
      if !smoke && not agree then
        fail (Printf.sprintf "parallel (jobs %d) disagrees with sequential" jobs);
      Printf.printf
        "  %6d docs: tolerant, %d faults, -j %-2d   %8.1f ms  %5.2fx speedup, agree=%b\n%!"
        n expected_faults jobs (t_par *. 1e3) (t_seq /. t_par) agree)
    (if !smoke then [ 2; 7 ] else [ 2; 4; Par.recommended_jobs () ]);
  ignore
    (stage_breakdown
       (Printf.sprintf "tolerant parse+infer -j 2, %d docs, %d faults" n
          expected_faults)
       (fun () ->
         Par.of_json_tolerant ~jobs:2 ~chunk_size:512 ~budget faulty));
  print_newline ()

(* ----- obs: observability overhead (B9) ----- *)

(* Two measurements, backing the zero-cost-when-disabled claim:
   1. micro: the per-call-site price of an instrument that is compiled
      in but switched off — one atomic load and a branch — via bechamel;
   2. macro: the same streaming parse+infer pipeline timed with
      observability disabled, with metrics on, and with trace+metrics
      on. In smoke mode the run additionally asserts that enabling
      observability does not change the inferred shape. *)
let obs_bench () =
  let module T = Fsdata_obs.Trace in
  let module M = Fsdata_obs.Metrics in
  print_endline "== obs: observability overhead (B9) ==";
  T.set_enabled false;
  M.set_enabled false;
  let n = if !smoke then 2_000 else 50_000 in
  let repeats = if !smoke then 1 else 5 in
  let text = Workloads.corpus_text n in
  (* The three configurations are measured interleaved, round-robin,
     taking the best repeat per configuration. The OCaml 5.1 major heap
     never shrinks between runs (no compaction), so measuring the
     configurations one after the other bills whichever runs later for
     heap drift that has nothing to do with instrumentation — sequential
     ordering here once reported a fictitious +140% for counters that
     cost nanoseconds. *)
  let configs =
    [|
      ("observability off", false, false);
      ("metrics on", true, false);
      ("trace + metrics on", true, true);
    |]
  in
  let k = Array.length configs in
  let best = Array.make k infinity in
  let shapes = Array.make k None in
  for rep = 0 to repeats - 1 do
    (* rotate the starting configuration per round so heap drift within
       a round doesn't always land on the same configuration *)
    for j = 0 to k - 1 do
      let i = (j + rep) mod k in
      let _, metrics_on, trace_on = configs.(i) in
      M.set_enabled metrics_on;
      T.set_enabled trace_on;
      M.reset ();
      T.reset ();
      let t0 = Unix.gettimeofday () in
      let r = Infer.of_json text in
      let dt = Unix.gettimeofday () -. t0 in
      M.set_enabled false;
      T.set_enabled false;
      M.reset ();
      T.reset ();
      shapes.(i) <- Some r;
      if dt < best.(i) then best.(i) <- dt
    done
  done;
  Array.iteri
    (fun i (label, _, _) ->
      Printf.printf "  %6d docs: parse+infer, %-22s %8.1f ms\n%!" n label
        (best.(i) *. 1e3))
    configs;
  let t_off = best.(0) and t_m = best.(1) and t_tm = best.(2) in
  Printf.printf
    "                metrics overhead %+5.1f%%, trace+metrics %+5.1f%%\n%!"
    ((t_m -. t_off) /. t_off *. 100.)
    ((t_tm -. t_off) /. t_off *. 100.);
  let agree =
    match (shapes.(0), shapes.(1), shapes.(2)) with
    | Some (Ok a), Some (Ok b), Some (Ok c) ->
        Shape.equal a b && Shape.equal b c
    | _ -> false
  in
  Printf.printf "                shapes unchanged by observability: %b\n%!" agree;
  if !smoke && not agree then begin
    Printf.eprintf "obs: enabling observability changed the inferred shape\n";
    exit 1
  end;
  (* The bechamel micro group runs last: its stabilization loop bloats
     the major heap, which would otherwise contaminate the macro
     numbers above. *)
  let c = M.counter "bench.obs_probe" in
  run_group "obs"
    [
      Test.make ~name:"baseline closure (no instrument)" (stage (fun () -> 42));
      Test.make ~name:"with_span, disabled"
        (stage (fun () -> T.with_span "bench.noop" (fun () -> 42)));
      Test.make ~name:"counter incr, disabled" (stage (fun () -> M.incr c));
    ];
  print_newline ()

(* ----- hetero: §6.4 heterogeneous collections ----- *)

(* How much do labelled tops with multiplicities cost, and how often
   does csh saturate primitive labels when collections genuinely mix
   tag families? Three workloads: the worldbank nested pair (§2.3), a
   six-way mixed-tag collection, and a stream of worldbank-style
   documents through the parallel driver (smoke asserts seq ≡ par on
   it). The csh.merges / csh.top_label_saturations counters are read
   around one inference of each document to report saturation rates. *)
let hetero_bench () =
  let module Par = Fsdata_core.Par_infer in
  let module M = Fsdata_obs.Metrics in
  print_endline "== hetero: heterogeneous collections (Section 6.4) ==";
  let rows = if !smoke then 500 else 20_000 in
  let wb = Workloads.worldbank_like rows in
  let mixed = Workloads.mixed_tags_array rows in
  (* counter deltas around a single practical-mode inference *)
  let merges = M.counter "csh.merges" in
  let saturations = M.counter "csh.top_label_saturations" in
  let count_one label d =
    let was = M.enabled () in
    M.set_enabled true;
    let m0 = M.value merges and s0 = M.value saturations in
    let shape = Infer.shape_of_value ~mode:`Practical d in
    let dm = M.value merges - m0 and ds = M.value saturations - s0 in
    M.set_enabled was;
    Printf.printf "  %-28s %7d csh merges, %5d top-label saturations\n%!"
      label dm ds;
    (shape, ds)
  in
  let _, _ = count_one (Printf.sprintf "worldbank, %d rows" rows) wb in
  let mixed_shape, mixed_sat =
    count_one (Printf.sprintf "mixed tags, %d elements" rows) mixed
  in
  if !smoke then begin
    let printed = Shape.to_string mixed_shape in
    (* the six tag families must each land in their own entry of one
       heterogeneous collection, and joining int into the existing
       labels must have saturated at least once *)
    let is_hetero_collection =
      match mixed_shape with
      | Shape.Collection entries -> List.length entries >= 3
      | _ -> false
    in
    if not is_hetero_collection then begin
      Printf.eprintf
        "hetero: smoke assertion failed: mixed-tag collection did not \
         infer to a heterogeneous collection (got %s)\n"
        printed;
      exit 1
    end;
    if mixed_sat <= 0 then begin
      Printf.eprintf
        "hetero: smoke assertion failed: no top-label saturations on the \
         mixed-tag collection\n";
      exit 1
    end
  end;
  (* a worldbank-style document stream through the parallel driver *)
  let docs = if !smoke then 50 else 2_000 in
  let text = Workloads.hetero_corpus_text docs in
  let repeats = if !smoke then 1 else 3 in
  let seq, t_seq = time_best ~repeats (fun () -> Infer.of_json text) in
  Printf.printf "  %6d worldbank docs: parse+infer sequential %8.1f ms\n%!"
    docs (t_seq *. 1e3);
  let par, t_par =
    time_best ~repeats (fun () -> Par.of_json ~jobs:2 text)
  in
  let agree =
    match (seq, par) with Ok a, Ok b -> Shape.equal a b | _ -> false
  in
  Printf.printf
    "  %6d worldbank docs: parse+infer -j 2       %8.1f ms  agree=%b\n%!"
    docs (t_par *. 1e3) agree;
  if !smoke && not agree then begin
    Printf.eprintf
      "hetero: smoke assertion failed: parallel inference disagrees with \
       sequential on the worldbank stream\n";
    exit 1
  end;
  (* timing: practical (multiplicities) vs paper mode on the same data *)
  run_group "hetero"
    [
      Test.make ~name:(Printf.sprintf "S(worldbank), %d rows, hetero" rows)
        (stage (fun () -> Infer.shape_of_value ~mode:`Practical wb));
      Test.make ~name:(Printf.sprintf "S(worldbank), %d rows, paper" rows)
        (stage (fun () -> Infer.shape_of_value ~mode:`Paper wb));
      Test.make ~name:(Printf.sprintf "S(mixed tags), %d elements" rows)
        (stage (fun () -> Infer.shape_of_value ~mode:`Practical mixed));
      Test.make ~name:"hasShape over the mixed top"
        (stage
           (let s = Infer.shape_of_value ~mode:`Practical mixed in
            fun () -> Fsdata_core.Shape_check.has_shape s mixed));
    ];
  print_newline ()

(* ----- serve: the /infer response cache ----- *)

(* The acceptance criterion for the serving subsystem: a repeated corpus
   must be answered from the digest-keyed LRU at least 10x faster than
   the initial parse+infer, with a byte-identical body. Measured at the
   handler level ({!Fsdata_serve.Server.handle} on a synthetic request),
   so the number isolates cache lookup + digest from socket noise. *)
let serve_bench () =
  let module Server = Fsdata_serve.Server in
  let module Http = Fsdata_serve.Http in
  let module M = Fsdata_obs.Metrics in
  print_endline "== serve: /infer response cache ==";
  let was = M.enabled () in
  M.set_enabled true;
  let n = if !smoke then 2_000 else 50_000 in
  let repeats = if !smoke then 3 else 5 in
  let body = Workloads.corpus_text n in
  let req =
    {
      Http.meth = "POST";
      path = "/infer";
      query = [ ("format", "json") ];
      version = `Http_1_1;
      headers = [];
      body;
    }
  in
  let cache_header resp =
    List.assoc_opt "x-fsdata-cache" resp.Http.resp_headers
  in
  (* cold: a fresh server per repeat, so every run is a miss *)
  let miss_resp, t_miss =
    time_best ~repeats (fun () ->
        let t = Server.create Server.default_config in
        Server.handle t req)
  in
  (* warm: one server, first request populates, the rest hit *)
  let t = Server.create Server.default_config in
  let first = Server.handle t req in
  let hit_resp, t_hit = time_best ~repeats (fun () -> Server.handle t req) in
  let identical = miss_resp.Http.resp_body = hit_resp.Http.resp_body in
  let speedup = t_miss /. t_hit in
  Printf.printf
    "  %6d docs (%d KiB): miss %8.1f ms   hit %8.3f ms   %6.0fx speedup\n%!"
    n
    (String.length body / 1024)
    (t_miss *. 1e3) (t_hit *. 1e3) speedup;
  Printf.printf
    "                cache headers: first=%s repeat=%s; bodies identical: %b\n%!"
    (Option.value ~default:"?" (cache_header first))
    (Option.value ~default:"?" (cache_header hit_resp))
    identical;
  M.set_enabled was;
  let fail msg =
    Printf.eprintf "serve: smoke assertion failed: %s\n" msg;
    exit 1
  in
  if !smoke then begin
    if not identical then fail "hit body differs from miss body";
    if cache_header miss_resp <> Some "miss" then fail "expected a miss header";
    if cache_header hit_resp <> Some "hit" then fail "expected a hit header";
    if miss_resp.Http.status <> 200 || hit_resp.Http.status <> 200 then
      fail "expected 200s";
    (* the acceptance bar is 10x; assert half of it so CI noise on the
       shared container can't flake the build *)
    if speedup < 5. then
      fail (Printf.sprintf "cache speedup %.1fx below the 5x smoke bar" speedup)
  end;
  print_newline ()

(* ----- provider: the "compile-time" pipeline costs ----- *)

let provider_bench () =
  print_endline "== provider: provision, codegen and schema export ==";
  let shapes =
    List.map
      (fun w ->
        let d = Workloads.wide_record w in
        (w, Infer.shape_of_value ~mode:`Practical d))
      [ 10; 100; 1000 ]
  in
  let provide_tests =
    List.map
      (fun (w, s) ->
        Test.make ~name:(Printf.sprintf "provide, %4d-field record" w)
          (stage (fun () -> Provide.provide s)))
      shapes
  in
  let codegen_tests =
    List.map
      (fun (w, s) ->
        let p = Provide.provide s in
        Test.make ~name:(Printf.sprintf "codegen, %4d-field record" w)
          (stage (fun () -> Fsdata_codegen.Codegen.generate p)))
      shapes
  in
  let schema_tests =
    List.map
      (fun (w, s) ->
        Test.make ~name:(Printf.sprintf "json-schema export, %4d fields" w)
          (stage (fun () -> Fsdata_codegen.Json_schema.to_string s)))
      shapes
  in
  let parser_tests =
    let p =
      Provide.provide
        (Infer.shape_of_value ~mode:`Practical (Workloads.worldbank_like 10))
    in
    let printed =
      String.concat "\n"
        (List.map (Fmt.str "%a" Fsdata_foo.Syntax.pp_class) p.Provide.classes)
    in
    [
      Test.make ~name:"parse provided classes back (Foo parser)"
        (stage (fun () -> Fsdata_foo.Parser.parse_classes printed));
      Test.make ~name:"shape notation round-trip"
        (stage (fun () ->
             Fsdata_core.Shape_parser.parse (Shape.to_string p.Provide.shape)));
    ]
  in
  run_group "provider" (provide_tests @ codegen_tests @ schema_tests @ parser_tests);
  print_newline ()

(* ----- B12: shape-compiled parsing vs generic parse+convert ----- *)

let compile_bench () =
  let module Sc = Fsdata_core.Shape_compile in
  let module Json = Fsdata_data.Json in
  let module Prim = Fsdata_data.Primitive in
  print_endline "== compile: shape-specialized parsing (B12) ==";
  let n = if !smoke then 2_000 else 50_000 in
  let repeats = if !smoke then 3 else 5 in
  let text = Workloads.corpus_text n in
  let shape =
    Shape.hcons (Infer.shape_of_samples ~mode:`Practical (Json.parse_many text))
  in
  (* the interpreted reference pipeline: parse to Data_value, normalize
     string literals, convert through the shape *)
  let generic () =
    List.map (fun d -> Sc.convert shape (Prim.normalize d)) (Json.parse_many text)
  in
  let compiled = Sc.compile shape in
  let direct () = Sc.parse_corpus compiled text in
  let generic_vals, t_gen = time_best ~repeats generic in
  let (compiled_vals, stats), t_comp = time_best ~repeats direct in
  let mib = float_of_int (String.length text) /. (1024. *. 1024.) in
  let speedup = t_gen /. t_comp in
  Printf.printf
    "  %6d docs (%.1f MiB): generic %8.1f ms (%6.1f MiB/s)   compiled %8.1f \
     ms (%6.1f MiB/s)   %.1fx speedup\n\
     %!"
    n mib (t_gen *. 1e3) (mib /. t_gen) (t_comp *. 1e3) (mib /. t_comp) speedup;
  let identical =
    List.length generic_vals = List.length compiled_vals
    && List.for_all2 Sc.equal_tvalue generic_vals compiled_vals
  in
  let render vs =
    String.concat "\n" (List.map (fun v -> Json.to_string (Sc.to_data v)) vs)
  in
  let bytes_identical = render generic_vals = render compiled_vals in
  Printf.printf
    "                direct %d, fallback %d, skipped %d; values identical: %b; \
     rendered bytes identical: %b\n\
     %!"
    stats.Sc.direct stats.Sc.fallback stats.Sc.skipped identical bytes_identical;
  let fail msg =
    Printf.eprintf "compile: smoke assertion failed: %s\n" msg;
    exit 1
  in
  if !smoke then begin
    if not identical then fail "compiled values differ from generic convert";
    if not bytes_identical then fail "rendered bodies differ";
    if stats.Sc.direct <> n then
      fail
        (Printf.sprintf "expected %d direct decodes, got %d (fallback %d)" n
           stats.Sc.direct stats.Sc.fallback);
    if stats.Sc.skipped <> 0 then fail "clean corpus reported skipped docs";
    (* the acceptance bar is 5x; pin a 2x floor so CI noise on the shared
       container can't flake the build *)
    if speedup < 2. then
      fail (Printf.sprintf "compiled speedup %.1fx below the 2x smoke floor" speedup)
  end;
  print_newline ()

(* ----- loadgen: keep-alive load against a live server ----- *)

(* Socket-level load generation (B11's serving-path companion): boot a
   real server on an ephemeral port, then drive it with [conns]
   concurrent keep-alive connections, each issuing [reqs] requests — a
   pinned mix of cache hits, per-connection unique corpora (forced
   inference) and health checks. Reports throughput and the status mix;
   in smoke mode additionally asserts that this light load produces not
   a single 5xx — the server must never shed or fail under load it can
   trivially absorb. *)
let loadgen_bench () =
  let module Server = Fsdata_serve.Server in
  print_endline "== loadgen: keep-alive load against a live server ==";
  let conns = if !smoke then 4 else 16 in
  let reqs = if !smoke then 25 else 400 in
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~stop
          ~on_ready:(fun p -> Atomic.set port p)
          {
            Server.default_config with
            Server.port = 0;
            Server.host = "127.0.0.1";
            Server.workers = 4;
          })
  in
  while Atomic.get port = 0 do
    Unix.sleepf 0.005
  done;
  let port = Atomic.get port in
  let hot = Workloads.corpus_text 50 in
  let post body =
    Printf.sprintf "POST /infer HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
      (String.length body) body
  in
  let healthz = "GET /healthz HTTP/1.1\r\n\r\n" in
  let send_all fd s =
    let len = String.length s in
    let pos = ref 0 in
    while !pos < len do
      match Unix.write_substring fd s !pos (len - !pos) with
      | n -> pos := !pos + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let find_sub sub s =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  (* read one keep-alive response: headers to the blank line, then
     content-length body bytes; returns the status *)
  let recv_status fd buf bytes =
    Buffer.clear buf;
    let read_more () =
      match Unix.read fd bytes 0 (Bytes.length bytes) with
      | 0 -> failwith "loadgen: server closed a keep-alive connection"
      | n -> Buffer.add_subbytes buf bytes 0 n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    let rec header_end () =
      match find_sub "\r\n\r\n" (Buffer.contents buf) with
      | Some i -> i
      | None ->
          read_more ();
          header_end ()
    in
    let hdr_end = header_end () in
    let head = String.lowercase_ascii (String.sub (Buffer.contents buf) 0 hdr_end) in
    let status =
      match String.split_on_char ' ' head with
      | _ :: code :: _ -> int_of_string (String.trim code)
      | _ -> failwith "loadgen: malformed status line"
    in
    let clen =
      match find_sub "content-length:" head with
      | None -> 0
      | Some i ->
          let rest = String.sub head (i + 15) (String.length head - i - 15) in
          int_of_string (String.trim (List.hd (String.split_on_char '\r' rest)))
    in
    let total = hdr_end + 4 + clen in
    while Buffer.length buf < total do
      read_more ()
    done;
    status
  in
  let client id =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let buf = Buffer.create 65536 in
    let bytes = Bytes.create 65536 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let counts = [| 0; 0; 0 |] in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    for i = 1 to reqs do
      let raw =
        match i mod 4 with
        | 0 -> healthz
        | 1 -> post (Printf.sprintf "{\"conn\": %d, \"req\": %d}\n" id i)
        | _ -> post hot
      in
      send_all fd raw;
      let status = recv_status fd buf bytes in
      let bucket =
        if status < 300 then 0 else if status < 500 then 1 else 2
      in
      counts.(bucket) <- counts.(bucket) + 1
    done;
    counts
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.init conns (fun id -> Domain.spawn (fun () -> client id)) in
  let totals = [| 0; 0; 0 |] in
  List.iter
    (fun d ->
      let c = Domain.join d in
      Array.iteri (fun i n -> totals.(i) <- totals.(i) + n) c)
    domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Domain.join srv;
  let total = totals.(0) + totals.(1) + totals.(2) in
  Printf.printf
    "  %2d conns x %4d reqs: %6d answered in %6.2f s (%7.0f req/s)   2xx %d   \
     4xx %d   5xx %d\n\
     %!"
    conns reqs total elapsed
    (float_of_int total /. elapsed)
    totals.(0) totals.(1) totals.(2);
  let fail msg =
    Printf.eprintf "loadgen: smoke assertion failed: %s\n" msg;
    exit 1
  in
  if !smoke then begin
    if total <> conns * reqs then
      fail
        (Printf.sprintf "expected %d responses, got %d" (conns * reqs) total);
    if totals.(2) <> 0 then
      fail (Printf.sprintf "%d 5xx responses under a light pinned load" totals.(2));
    if totals.(1) <> 0 then
      fail (Printf.sprintf "%d unexpected 4xx responses" totals.(1))
  end;
  print_newline ()

(* ----- registry: incremental inference vs re-inferring the corpus ----- *)

(* The registry's claim is O(merge) per push: folding a delta into the
   accumulated shape costs one csh, independent of how many documents
   the stream has seen. The baseline it replaces re-infers the whole
   corpus on every arrival — quadratic in stream length. Also measured:
   the WAL tax under both fsync policies, and recovery (replay) time
   against WAL length. In smoke mode the run asserts that the
   incremental fold equals re-inference of the full corpus and that a
   close/reopen recovers the stream byte-identically. *)
let registry_bench () =
  let module R = Fsdata_registry.Registry in
  let module Csh = Fsdata_core.Csh in
  print_endline "== registry: incremental shape accumulation ==";
  let n = if !smoke then 200 else 2_000 in
  let repeats = if !smoke then 1 else 3 in
  let fail msg =
    Printf.eprintf "registry: smoke assertion failed: %s\n" msg;
    exit 1
  in
  (* per-document deltas: a stable core plus a rotating field, so the
     shape grows for a while and then saturates — the live-stream
     profile the registry is built for *)
  let deltas =
    List.init n (fun i ->
        Fsdata_core.Shape_parser.parse
          (Printf.sprintf "{name: string, v: int, f%d: nullable float}"
             (i mod 17)))
  in
  let temp_dir () =
    let path = Filename.temp_file "fsdata-bench-registry" "" in
    Sys.remove path;
    path
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  let push_all t = List.fold_left (fun _ d -> R.push t ~stream:"s" d) (R.push t ~stream:"s" (List.hd deltas)) (List.tl deltas) in
  (* incremental, in memory: the pure O(merge) fold *)
  let mem_state, t_mem =
    time_best ~repeats (fun () -> push_all (R.open_ ~dir:None ()))
  in
  Printf.printf "  %6d pushes: incremental, in-memory %10.1f ms  (%6.2f us/push)\n%!"
    n (t_mem *. 1e3)
    (t_mem /. float_of_int n *. 1e6);
  (* the re-infer baseline: every arrival re-folds the whole prefix *)
  let base_shape, t_base =
    time_best ~repeats (fun () ->
        let seen = ref [] in
        let last = ref Fsdata_core.Shape.Bottom in
        List.iter
          (fun d ->
            seen := d :: !seen;
            last :=
              List.fold_left Csh.csh Fsdata_core.Shape.Bottom (List.rev !seen))
          deltas;
        !last)
  in
  Printf.printf
    "  %6d pushes: re-infer corpus baseline %10.1f ms  (%6.2f us/push, %5.1fx)\n%!"
    n (t_base *. 1e3)
    (t_base /. float_of_int n *. 1e6)
    (t_base /. t_mem);
  if !smoke && not (Shape.equal mem_state.R.shape base_shape) then
    fail "incremental fold differs from re-inferring the corpus";
  (* the WAL tax, both fsync policies (fewer pushes under `Always: each
     one is a real fsync) *)
  List.iter
    (fun (label, fsync, m) ->
      let dir = temp_dir () in
      let t = R.open_ ~fsync ~snapshot_every:max_int ~dir:(Some dir) () in
      let _, dt =
        time_best ~repeats:1 (fun () ->
            List.iteri
              (fun i d -> if i < m then ignore (R.push t ~stream:"s" d))
              deltas)
      in
      R.close t;
      rm_rf dir;
      Printf.printf "  %6d pushes: durable, fsync %-6s %12.1f ms  (%6.2f us/push)\n%!"
        m label (dt *. 1e3)
        (dt /. float_of_int m *. 1e6))
    [ ("never", `Never, n); ("always", `Always, min n (if !smoke then 50 else 500)) ];
  (* recovery: replay time against WAL length, and the round-trip pin *)
  let lengths = if !smoke then [ n ] else [ 1_000; 10_000 ] in
  List.iter
    (fun len ->
      let dir = temp_dir () in
      let t = R.open_ ~fsync:`Never ~snapshot_every:max_int ~dir:(Some dir) () in
      let live = ref None in
      for i = 0 to len - 1 do
        live := Some (R.push t ~stream:"s" (List.nth deltas (i mod n)))
      done;
      R.close t;
      let t2, t_recover =
        time_best ~repeats:1 (fun () ->
            R.open_ ~fsync:`Never ~snapshot_every:max_int ~dir:(Some dir) ())
      in
      Printf.printf "  %6d-record WAL: recovery (replay) %10.1f ms\n%!" len
        (t_recover *. 1e3);
      (match (R.find t2 "s", !live) with
      | Some recovered, Some live ->
          if !smoke then begin
            if
              Shape.to_string recovered.R.shape <> Shape.to_string live.R.shape
            then fail "recovered shape not byte-identical to the live one";
            if recovered.R.version <> live.R.version then
              fail "recovered version differs from the live one"
          end
      | _ -> if !smoke then fail "stream lost across close/reopen");
      R.close t2;
      rm_rf dir)
    lengths;
  print_newline ()

(* ----- query: typed pushdown, reference vs compiled (B14) ----- *)

(* The two query engines over a corpus whose documents are mostly
   payload the query never touches: the reference engine parses every
   byte generically, the compiled engine decodes against the pruned σ
   and skips the payload at the lexer level. Smoke asserts
   byte-identical rows and stats, rejection of an ill-typed query
   before any corpus work, early stop under [take], and eval_fast at
   least matching eval. *)
let query_bench () =
  let module Q = Fsdata_query in
  print_endline "== query: typed pushdown, eval vs eval_fast ==";
  let fail msg =
    Printf.eprintf "query: smoke assertion failed: %s\n" msg;
    exit 1
  in
  let n = if !smoke then 500 else 20_000 in
  let repeats = 3 in
  let text = Workloads.query_corpus_text n in
  let sigma =
    match Infer.of_json text with Ok s -> s | Error e -> fail e
  in
  let parse q =
    match Q.Parser.parse_result q with Ok q -> q | Error e -> fail e
  in
  let check q =
    match Q.Check.check sigma (parse q) with
    | Ok c -> c
    | Error e -> fail (Format.asprintf "%a" Q.Check.pp_error e)
  in
  let render (r : Q.Value.result) =
    String.concat "\n" (List.map Q.Value.render r.Q.Value.rows)
  in
  let checked = check "where .age >= 40 | select .name, .age" in
  let ref_r, t_ref = time_best ~repeats (fun () -> Q.Eval.eval checked text) in
  let plan = Q.Eval_fast.compile checked in
  let fast_r, t_fast =
    time_best ~repeats (fun () -> Q.Eval_fast.eval plan text)
  in
  let identical =
    render ref_r = render fast_r && ref_r.Q.Value.stats = fast_r.Q.Value.stats
  in
  Printf.printf
    "  %6d docs (%d KiB): eval %8.1f ms   eval_fast %8.1f ms   %5.1fx  \
     rows=%d identical=%b\n\
     %!"
    n
    (String.length text / 1024)
    (t_ref *. 1e3) (t_fast *. 1e3) (t_ref /. t_fast)
    (List.length ref_r.Q.Value.rows)
    identical;
  (* take pushdown: the scan must stop once the bound is met *)
  let ct = check "where .age >= 40 | select .name | take 5" in
  let tr = Q.Eval.eval ct text in
  let tf = Q.Eval_fast.eval (Q.Eval_fast.compile ct) text in
  Printf.printf "  take 5: scanned %d/%d docs (early stop), engines agree=%b\n%!"
    tr.Q.Value.stats.Q.Value.scanned n
    (render tr = render tf && tr.Q.Value.stats = tf.Q.Value.stats);
  if !smoke then begin
    if not identical then fail "eval and eval_fast disagree";
    (match Q.Check.check sigma (parse "where .nope == 1") with
    | Ok _ -> fail "ill-typed query was accepted"
    | Error _ -> ());
    if render tr <> render tf || tr.Q.Value.stats <> tf.Q.Value.stats then
      fail "take: engines disagree";
    if tr.Q.Value.stats.Q.Value.scanned >= n then
      fail "take did not stop the scan early";
    if t_fast > t_ref then
      fail
        (Printf.sprintf "eval_fast (%.2f ms) slower than eval (%.2f ms)"
           (t_fast *. 1e3) (t_ref *. 1e3))
  end;
  print_newline ()

(* ----- B15: schema evolution — push->notify latency, /migrate ----- *)

(* Two costs of the evolution service: how fast a parked long-poll
   watcher learns about a version bump (Registry.push -> listener ->
   Notify wake, the same path /watch rides), and /migrate throughput as
   the submitted program grows. Smoke asserts every watcher saw exactly
   the bumped version, that rewriting under a nullable-field growth is
   the identity on the program text, and that repeated migrations are
   byte-identical (the rewriter renumbers its fresh binders). *)
let evolve_bench () =
  let module Registry = Fsdata_registry.Registry in
  let module Notify = Fsdata_evolve.Notify in
  let module Service = Fsdata_evolve.Service in
  let module Syntax = Fsdata_foo.Syntax in
  print_endline "== evolve: push->notify latency, /migrate throughput (B15) ==";
  let fail msg =
    Printf.eprintf "evolve: smoke assertion failed: %s\n" msg;
    exit 1
  in
  let sh = Fsdata_core.Shape_parser.parse in
  (* push->notify: park a waiter, bump the stream, measure the wake *)
  let rounds = if !smoke then 25 else 500 in
  let reg = Registry.open_ ~dir:None () in
  let notify = Notify.create ~capacity:4 in
  Registry.set_listener reg (fun st -> Notify.notify notify st.Registry.name);
  let field k = Printf.sprintf "f%d: int" k in
  let shape_upto k =
    sh ("{" ^ String.concat ", " (List.init (k + 1) field) ^ "}")
  in
  ignore (Registry.push reg ~stream:"s" (shape_upto 0));
  let latencies = Array.make rounds 0. in
  for i = 1 to rounds do
    let want = i + 1 in
    let waiter =
      Domain.spawn (fun () ->
          let r =
            Notify.wait notify ~key:"s" ~seconds:10. ~poll:(fun () ->
                match Registry.find reg "s" with
                | Some st when st.Registry.version >= want ->
                    Some st.Registry.version
                | _ -> None)
          in
          (r, Unix.gettimeofday ()))
    in
    let rec parked tries =
      if Notify.waiting notify = 0 && tries < 10_000 then begin
        Unix.sleepf 0.0002;
        parked (tries + 1)
      end
    in
    parked 0;
    let t0 = Unix.gettimeofday () in
    ignore (Registry.push reg ~stream:"s" (shape_upto i));
    (match Domain.join waiter with
    | `Ready v, t1 ->
        if v <> want then
          fail (Printf.sprintf "watcher saw v%d, expected v%d" v want);
        latencies.(i - 1) <- t1 -. t0
    | (`Timeout | `Capacity), _ -> fail "parked watcher was not woken")
  done;
  Array.sort compare latencies;
  let mean = Array.fold_left ( +. ) 0. latencies /. float_of_int rounds in
  let pct p = latencies.(min (rounds - 1) (rounds * p / 100)) in
  Printf.printf
    "  push->notify over %4d bumps: mean %7.1f us   p50 %7.1f us   p99 \
     %7.1f us\n\
     %!"
    rounds (mean *. 1e6)
    (pct 50 *. 1e6)
    (pct 99 *. 1e6);
  (* /migrate throughput vs program size over a two-version stream *)
  let mreg = Registry.open_ ~dir:None () in
  ignore (Registry.push mreg ~stream:"people" (sh "{name: string}"));
  ignore
    (Registry.push mreg ~stream:"people" (sh "{name: string, age: int}"));
  let program_of_depth k =
    let rec go k acc =
      if k = 0 then acc
      else go (k - 1) ("if y.Name = y.Name then y.Name else (" ^ acc ^ ")")
    in
    go k "y.Name"
  in
  let repeats = if !smoke then 1 else 3 in
  let sizes = if !smoke then [ 1; 16 ] else [ 1; 16; 128; 1024 ] in
  List.iter
    (fun depth ->
      let program = program_of_depth depth in
      let iters = if !smoke then 50 else 500 in
      let results = ref [] in
      let (), dt =
        time_best ~repeats (fun () ->
            results := [];
            for _ = 1 to iters do
              results :=
                Service.migrate mreg ~stream:"people" ~since:1 ~program
                :: !results
            done)
      in
      let out =
        match !results with
        | Ok r :: _ -> Syntax.expr_to_string r.Service.program
        | Error e :: _ ->
            fail (Format.asprintf "migrate failed: %a" Service.pp_error e)
        | [] -> fail "no migration ran"
      in
      if !smoke then begin
        let canonical =
          Syntax.expr_to_string (Fsdata_foo.Parser.parse_expr program)
        in
        if out <> canonical then
          fail "nullable-growth rewrite was not the identity";
        List.iter
          (fun r ->
            match r with
            | Ok r ->
                if Syntax.expr_to_string r.Service.program <> out then
                  fail "repeated migrations are not byte-identical"
            | Error _ -> fail "a repeat migration failed")
          !results
      end;
      Printf.printf
        "  migrate %7d-byte program: %8.1f us/req  (%7.0f req/s)\n%!"
        (String.length program)
        (dt /. float_of_int iters *. 1e6)
        (float_of_int iters /. dt))
    sizes;
  print_newline ()

let groups =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("loc", loc);
    ("infer", infer);
    ("parse", parse);
    ("access", access);
    ("shape", shape_bench);
    ("provider", provider_bench);
    ("par", par_bench);
    ("faults", faults_bench);
    ("obs", obs_bench);
    ("hetero", hetero_bench);
    ("serve", serve_bench);
    ("compile", compile_bench);
    ("loadgen", loadgen_bench);
    ("registry", registry_bench);
    ("query", query_bench);
    ("evolve", evolve_bench);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, names = List.partition (fun a -> a = "--smoke") args in
  if flags <> [] then smoke := true;
  let requested =
    match names with [] -> List.map fst groups | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name groups with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown bench group %s (available: %s)\n" name
            (String.concat ", " (List.map fst groups));
          exit 1)
    requested
