(* Fault-injection corpus generator for the robustness suite.

   Starting from a clean generated corpus, a chosen subset of documents
   is corrupted with faults that are unparseable *by construction*, and
   the corpus remembers which indices were hit — so properties can state
   the quarantine contract exactly: tolerant inference over the faulty
   corpus must equal strict inference over the clean subset, and the
   quarantined indices must be precisely the corrupted ones. *)

module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json
module Xml = Fsdata_data.Xml
open QCheck2

(* ----- JSON faults ----- *)

type fault =
  | Truncated  (** drop the closing brace: unterminated document *)
  | Invalid_utf8  (** prepend bytes that are not valid JSON (or UTF-8) *)
  | Unbalanced  (** append a stray closing bracket: trailing content *)
  | Garbage  (** blank the first field separator: balanced but invalid *)

let fault_name = function
  | Truncated -> "truncated"
  | Invalid_utf8 -> "invalid-utf8"
  | Unbalanced -> "unbalanced"
  | Garbage -> "garbage"

let all_faults = [ Truncated; Invalid_utf8; Unbalanced; Garbage ]

(* Faults that are safe to inject mid-stream: the corrupt text still ends
   at its own closing brace, so [Json.fold_many]'s resynchronization
   skips exactly the corrupted document. (A truncated document would
   swallow its successor; a stray trailing ']' would be skipped as a
   document of its own.) *)
let stream_safe_faults = [ Invalid_utf8; Garbage ]

(* Wrap every corpus document in a one-field object so its text starts
   with '{' and ends with '}' — the precondition for the corruptions
   above to guarantee a parse failure. *)
let doc_text v = Json.to_string (Dv.Record (Dv.json_record_name, [ ("v", v) ]))

let corrupt fault text =
  match fault with
  | Truncated -> String.sub text 0 (String.length text - 1)
  | Invalid_utf8 -> "\xff\xfe" ^ text
  | Unbalanced -> text ^ "]"
  | Garbage -> (
      (* the first ':' is the wrapper's field separator, before any
         value text, so blanking it never touches a string literal *)
      match String.index_opt text ':' with
      | Some i -> String.mapi (fun j c -> if j = i then ' ' else c) text
      | None -> "{\"bad\" 0}")

(* ----- XML faults ----- *)

type xml_fault =
  | Xml_truncated  (** drop the final '>': unterminated tag *)
  | Xml_unclosed  (** wrap in an opening tag that is never closed *)
  | Xml_invalid_utf8

let all_xml_faults = [ Xml_truncated; Xml_unclosed; Xml_invalid_utf8 ]

let corrupt_xml fault text =
  match fault with
  | Xml_truncated -> String.sub text 0 (String.rindex text '>')
  | Xml_unclosed -> "<unclosed>" ^ text
  | Xml_invalid_utf8 -> "\xff\xfe" ^ text

(* ----- Corpora ----- *)

type corpus = {
  texts : string list;  (** the corpus as ingested, faults included *)
  clean : string list;  (** the documents left untouched, in order *)
  faulty : int list;  (** global indices of corrupted documents, ascending *)
}

let print_corpus c =
  Printf.sprintf "faulty=[%s]\n%s"
    (String.concat "," (List.map string_of_int c.faulty))
    (String.concat "\n" c.texts)

let gen_list gens =
  List.fold_right
    (fun g acc -> Gen.map2 (fun x xs -> x :: xs) g acc)
    gens (Gen.return [])

(* Mark roughly a third of the documents with a fault drawn from
   [faults]; build the corrupted corpus, the clean subset, and the list
   of corrupted indices. *)
let mark_and_corrupt ~faults ~corrupt_with texts =
  let open Gen in
  let* marks =
    gen_list
      (List.map
         (fun t ->
           let* f =
             frequency
               [ (2, return None); (1, map Option.some (oneofl faults)) ]
           in
           return (t, f))
         texts)
  in
  let texts =
    List.map (fun (t, f) -> Option.fold ~none:t ~some:(fun f -> corrupt_with f t) f) marks
  in
  let clean = List.filter_map (fun (t, f) -> if f = None then Some t else None) marks in
  let faulty =
    List.mapi (fun i (_, f) -> if f = None then None else Some i) marks
    |> List.filter_map Fun.id
  in
  return { texts; clean; faulty }

let gen_corpus ?(faults = all_faults) () : corpus Gen.t =
  let open Gen in
  let* docs = list_size (int_range 1 14) Generators.gen_data in
  mark_and_corrupt ~faults ~corrupt_with:corrupt (List.map doc_text docs)

let gen_xml_corpus ?(faults = all_xml_faults) () : corpus Gen.t =
  let open Gen in
  let* docs = list_size (int_range 1 10) Generators.gen_xml_tree in
  mark_and_corrupt ~faults ~corrupt_with:corrupt_xml
    (List.map Xml.to_string docs)

(* ----- Ragged CSV ----- *)

(* A rectangular CSV source with extra cells appended to the rows whose
   0-based data-row indices appear in [ragged]. *)
let ragged_csv ~headers ~rows ~ragged =
  let line cells = String.concat "," cells in
  let body =
    List.mapi
      (fun i cells ->
        if List.mem i ragged then line (cells @ [ "extra" ]) else line cells)
      rows
  in
  String.concat "\n" (line headers :: body) ^ "\n"

(* ----- Parseable deviations (compiled-parser fallback) ----- *)

(* Byte-for-byte diagnostic equality: the parity properties for the
   compiled parsers assert that the fallback/quarantine reports carry
   *identical* fields to the interpreted path, not merely the same
   indices. *)
let diag_equal (a : Fsdata_data.Diagnostic.t) (b : Fsdata_data.Diagnostic.t) =
  a.format = b.format && a.line = b.line && a.column = b.column
  && a.index = b.index && a.severity = b.severity
  && String.equal a.message b.message

(* A corruption that keeps the document *parseable*: the wrapper's value
   is swapped for a marker record no clean subset infers. A decoder
   compiled from the clean subset's shape must treat such a document as
   data — falling back to the generic path with a conformance
   diagnostic — never as a fault eating into the error budget. *)
let miscast _text = {|{"v": {"deviant": [1, "two", null]}}|}

type mixed_corpus = {
  m_texts : string list;  (** the corpus as ingested *)
  m_clean : string list;  (** untouched documents, in order *)
  m_deviant : int list;  (** parseable but value swapped: fallback *)
  m_malformed : int list;  (** unparseable (stream-safe): quarantine *)
}

let print_mixed_corpus m =
  Printf.sprintf "deviant=[%s] malformed=[%s]\n%s"
    (String.concat "," (List.map string_of_int m.m_deviant))
    (String.concat "," (List.map string_of_int m.m_malformed))
    (String.concat "\n" m.m_texts)

(* Like [mark_and_corrupt], but with three outcomes per document; the
   malformed ones use the stream-safe faults so resynchronization skips
   exactly the corrupted document. *)
let gen_mixed_corpus () : mixed_corpus Gen.t =
  let open Gen in
  let* docs = list_size (int_range 1 14) Generators.gen_data in
  let texts = List.map doc_text docs in
  let* marks =
    gen_list
      (List.map
         (fun t ->
           let* m =
             frequency
               [
                 (3, return `Clean);
                 (1, return `Deviant);
                 (1, map (fun f -> `Malformed f) (oneofl stream_safe_faults));
               ]
           in
           return (t, m))
         texts)
  in
  let m_texts =
    List.map
      (fun (t, m) ->
        match m with
        | `Clean -> t
        | `Deviant -> miscast t
        | `Malformed f -> corrupt f t)
      marks
  in
  let m_clean =
    List.filter_map (fun (t, m) -> if m = `Clean then Some t else None) marks
  in
  let indices_of p =
    List.mapi (fun i (_, m) -> if p m then Some i else None) marks
    |> List.filter_map Fun.id
  in
  return
    {
      m_texts;
      m_clean;
      m_deviant = indices_of (fun m -> m = `Deviant);
      m_malformed = indices_of (function `Malformed _ -> true | _ -> false);
    }
