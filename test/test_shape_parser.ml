(* The shape-notation parser: golden cases and the print/parse round-trip
   property over the full (practical) shape algebra obtained by
   inference. *)

module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module SP = Fsdata_core.Shape_parser
module Infer = Fsdata_core.Infer
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let parses src expected () =
  match SP.parse_result src with
  | Ok s -> check shape_testable src expected s
  | Error e -> Alcotest.fail e

let rejects src () =
  match SP.parse_result src with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "%S parsed to %a" src Shape.pp s

let int_ = Shape.Primitive Shape.Int

let test_golden () =
  List.iter
    (fun (src, expected) ->
      match SP.parse_result src with
      | Ok s -> check shape_testable src expected s
      | Error e -> Alcotest.fail e)
    [
      ("int", int_);
      (" float ", Shape.Primitive Shape.Float);
      ("null", Shape.Null);
      ("bot", Shape.Bottom);
      ("_|_", Shape.Bottom);
      ("\xe2\x8a\xa5", Shape.Bottom);
      ("nullable int", Shape.Nullable int_);
      ("any", Shape.any);
      ("any<int, bool>", Shape.top [ int_; Shape.Primitive Shape.Bool ]);
      ( "any\xe2\x9f\xa8int, bool\xe2\x9f\xa9",
        Shape.top [ int_; Shape.Primitive Shape.Bool ] );
      ("[int]", Shape.collection int_);
      ("[\xe2\x8a\xa5]", Shape.collection Shape.Bottom);
      ("[]", Shape.collection Shape.Bottom);
      ( "[int, 1 | string, *]",
        Shape.hetero
          [ (int_, Mult.Single); (Shape.Primitive Shape.String, Mult.Multiple) ] );
      ( "[int, 1?]",
        Shape.hetero [ (int_, Mult.Optional_single) ] );
      ("p {x: int}", Shape.record "p" [ ("x", int_) ]);
      ("p {}", Shape.record "p" []);
      ( "{name: string}",
        Shape.record Fsdata_data.Data_value.json_record_name
          [ ("name", Shape.Primitive Shape.String) ] );
      ( "\xe2\x80\xa2 {name: string}",
        Shape.record Fsdata_data.Data_value.json_record_name
          [ ("name", Shape.Primitive Shape.String) ] );
      ( "doc {\xe2\x80\xa2: [heading {\xe2\x80\xa2: string}]}",
        Shape.record "doc"
          [
            ( Fsdata_data.Data_value.body_field,
              Shape.collection
                (Shape.record "heading"
                   [ (Fsdata_data.Data_value.body_field, Shape.Primitive Shape.String) ]) );
          ] );
    ]

let test_rejects () =
  List.iter
    (fun src -> rejects src ())
    [
      ""; "intx"; "nullable null"; "nullable [int]"; "[int"; "p {x}";
      "p {x: }"; "any<"; "int ]"; "[int, 2]"; "p {x: int, x: int}";
    ]

let test_nested_example () =
  parses "[\xe2\x80\xa2 {pages: int}, 1 | [\xe2\x80\xa2 {value: nullable float}], 1]"
    (Shape.hetero
       [
         ( Shape.record Fsdata_data.Data_value.json_record_name
             [ ("pages", int_) ],
           Mult.Single );
         ( Shape.collection
             (Shape.record Fsdata_data.Data_value.json_record_name
                [ ("value", Shape.Nullable (Shape.Primitive Shape.Float)) ]),
           Mult.Single );
       ])
    ()

let prop_roundtrip_core =
  QCheck2.Test.make ~name:"parse (to_string s) = s (core shapes)" ~count:400
    ~print:print_shape gen_core_shape (fun s ->
      match SP.parse_result (Shape.to_string s) with
      | Ok s' -> Shape.equal s s'
      | Error _ -> false)

let prop_roundtrip_inferred =
  QCheck2.Test.make
    ~name:"parse (to_string (S d)) = S d (practical shapes)" ~count:400
    ~print:print_data gen_data (fun d ->
      let s = Infer.shape_of_value ~mode:`Practical d in
      match SP.parse_result (Shape.to_string s) with
      | Ok s' -> Shape.equal s s'
      | Error _ -> false)

let suite =
  [
    tc "golden cases" `Quick test_golden;
    tc "rejected inputs" `Quick test_rejects;
    tc "nested worldbank-style shape" `Quick test_nested_example;
    QCheck_alcotest.to_alcotest prop_roundtrip_core;
    QCheck_alcotest.to_alcotest prop_roundtrip_inferred;
  ]
