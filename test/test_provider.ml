(* The type provider mapping (Figure 8), including the paper's Examples 1
   and 2, the provided classes' well-typedness, and the signature printer. *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module Infer = Fsdata_core.Infer
module Provide = Fsdata_provider.Provide
module Signature = Fsdata_provider.Signature
open Fsdata_foo.Syntax
module TC = Fsdata_foo.Typecheck
module Eval = Fsdata_foo.Eval
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let int_sh = Shape.Primitive Shape.Int
let float_sh = Shape.Primitive Shape.Float
let bool_sh = Shape.Primitive Shape.Bool
let string_sh = Shape.Primitive Shape.String
let ty_t = Alcotest.testable pp_ty ty_equal

let well_typed (p : Provide.t) =
  (match TC.check_classes p.classes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "provided classes ill-typed: %a" TC.pp_error e);
  match TC.synth p.classes [] p.conv with
  | Ok (TArrow (TData, t)) when ty_equal t p.root_ty -> ()
  | Ok t ->
      Alcotest.failf "conversion has type %a, expected Data -> %a" pp_ty t
        pp_ty p.root_ty
  | Error e -> Alcotest.failf "conversion ill-typed: %a" TC.pp_error e

(* ⟦σ⟧ for primitives inserts the right conversion. *)
let test_primitives () =
  let cases =
    [
      (int_sh, TInt); (float_sh, TFloat); (bool_sh, TBool); (string_sh, TString);
      (Shape.Primitive Shape.Bit, TBool);
      (Shape.Primitive Shape.Bit0, TInt);
      (Shape.Primitive Shape.Bit1, TInt);
      (Shape.Primitive Shape.Date, TDate);
    ]
  in
  List.iter
    (fun (shape, expected) ->
      let p = Provide.provide shape in
      check ty_t (Shape.to_string shape) expected p.Provide.root_ty;
      well_typed p)
    cases

(* ⟦⊥⟧ = ⟦null⟧: an opaque class. *)
let test_bottom_null () =
  List.iter
    (fun shape ->
      let p = Provide.provide shape in
      (match p.Provide.root_ty with
      | TClass c ->
          let cls = Option.get (find_class p.Provide.classes c) in
          check Alcotest.int "no members" 0 (List.length cls.members)
      | t -> Alcotest.failf "expected a class, got %a" pp_ty t);
      well_typed p)
    [ Shape.Bottom; Shape.Null ]

(* Example 1 of the paper: Person {Age: option int, Name: string}. *)
let test_example_1 () =
  let shape =
    Shape.record "Person" [ ("Age", Shape.Nullable int_sh); ("Name", string_sh) ]
  in
  let p = Provide.provide shape in
  well_typed p;
  let cls =
    match p.Provide.root_ty with
    | TClass c -> Option.get (find_class p.Provide.classes c)
    | _ -> Alcotest.fail "expected a class"
  in
  let age = Option.get (find_member cls "Age") in
  let name = Option.get (find_member cls "Name") in
  check ty_t "Age : option int" (TOption TInt) age.member_ty;
  check ty_t "Name : string" TString name.member_ty;
  (* The member bodies follow the example exactly: convField with a
     convNull/convPrim continuation. *)
  (match age.member_body with
  | EOp
      (ConvField
         ("Person", "Age", EVar _, ELam (_, TData, EOp (ConvNull (EVar _, ELam (_, TData, EOp (ConvPrim (Shape.Primitive Shape.Int, EVar _)))))))) ->
      ()
  | e -> Alcotest.failf "Age body shape unexpected: %a" pp_expr e);
  (match name.member_body with
  | EOp
      (ConvField
         ("Person", "Name", EVar _, ELam (_, TData, EOp (ConvPrim (Shape.Primitive Shape.String, EVar _))))) ->
      ()
  | e -> Alcotest.failf "Name body shape unexpected: %a" pp_expr e);
  (* Runtime behaviour from the example: a person without Age gives None;
     a person without Name gets stuck. *)
  let person fields = Dv.Record ("Person", fields) in
  (match Eval.eval p.Provide.classes (EMember (Provide.apply p (person [ ("Name", Dv.String "Tomas") ]), "Age")) with
  | Eval.Value (ENone _) -> ()
  | o -> Alcotest.failf "Age on missing field: %a" Eval.pp_outcome o);
  match Eval.eval p.Provide.classes (EMember (Provide.apply p (person [ ("Age", Dv.Int 25) ]), "Name")) with
  | Eval.Stuck _ -> ()
  | o -> Alcotest.failf "Name on missing field should be stuck: %a" Eval.pp_outcome o

(* Example 2: [any⟨Person {...}, string⟩] — a list of a labelled-top class
   with option members guarded by hasShape. *)
let test_example_2 () =
  let person = Shape.record "Person" [ ("Name", string_sh) ] in
  let shape = Shape.collection (Shape.top [ person; string_sh ]) in
  let p = Provide.provide shape in
  well_typed p;
  let cls_name =
    match p.Provide.root_ty with
    | TList (TClass c) -> c
    | t -> Alcotest.failf "expected list of class, got %a" pp_ty t
  in
  let cls = Option.get (find_class p.Provide.classes cls_name) in
  let mem_person = Option.get (find_member cls "Person") in
  let mem_string = Option.get (find_member cls "String") in
  (match mem_person.member_ty with
  | TOption (TClass _) -> ()
  | t -> Alcotest.failf "Person member: %a" pp_ty t);
  check ty_t "String member" (TOption TString) mem_string.member_ty;
  (* body: if hasShape(σ, x) then Some (e x) else None *)
  (match mem_string.member_body with
  | EIf (EOp (HasShape (Shape.Primitive Shape.String, EVar _)), ESome _, ENone _) -> ()
  | e -> Alcotest.failf "String body unexpected: %a" pp_expr e);
  (* runtime: a string element answers String = Some, Person = None *)
  let data = Dv.List [ Dv.String "hi"; Dv.Record ("Person", [ ("Name", Dv.String "T") ]) ] in
  let root = Provide.apply p data in
  let first = EMatchList (root, "h", "t", EVar "h", EExn) in
  (match Eval.eval p.Provide.classes (EMember (first, "String")) with
  | Eval.Value (ESome (EData (Dv.String "hi"))) -> ()
  | o -> Alcotest.failf "String member: %a" Eval.pp_outcome o);
  match Eval.eval p.Provide.classes (EMember (first, "Person")) with
  | Eval.Value (ENone _) -> ()
  | o -> Alcotest.failf "Person member: %a" Eval.pp_outcome o

(* Nullable and collection shapes. *)
let test_nullable_collection () =
  let p = Provide.provide (Shape.Nullable int_sh) in
  check ty_t "nullable" (TOption TInt) p.Provide.root_ty;
  well_typed p;
  let p = Provide.provide (Shape.collection string_sh) in
  check ty_t "collection" (TList TString) p.Provide.root_ty;
  well_typed p;
  (* null elements make the element conversion optional *)
  let p =
    Provide.provide
      (Shape.hetero [ (int_sh, Mult.Multiple); (Shape.Null, Mult.Single) ])
  in
  check ty_t "collection with nulls" (TList (TOption TInt)) p.Provide.root_ty;
  well_typed p

(* Heterogeneous collections: member types follow multiplicities. *)
let test_hetero_members () =
  let shape =
    Shape.hetero
      [
        (Shape.record "a" [], Mult.Single);
        (int_sh, Mult.Optional_single);
        (string_sh, Mult.Multiple);
      ]
  in
  let p = Provide.provide shape in
  well_typed p;
  let cls =
    match p.Provide.root_ty with
    | TClass c -> Option.get (find_class p.Provide.classes c)
    | t -> Alcotest.failf "expected class, got %a" pp_ty t
  in
  check ty_t "record entry: direct" (TClass "A")
    (Option.get (find_member cls "A")).member_ty;
  check ty_t "optional entry" (TOption TInt)
    (Option.get (find_member cls "Number")).member_ty;
  check ty_t "repeated entry" (TList TString)
    (Option.get (find_member cls "String")).member_ty

(* Naming: member collisions get numeric suffixes; original names are
   used for the lookup. *)
let test_member_collisions () =
  let shape =
    Shape.record Dv.json_record_name
      [ ("my name", int_sh); ("my_name", string_sh); ("MyName", bool_sh) ]
  in
  let p = Provide.provide shape in
  well_typed p;
  let cls =
    match p.Provide.root_ty with
    | TClass c -> Option.get (find_class p.Provide.classes c)
    | _ -> Alcotest.fail "expected class"
  in
  let names = List.map (fun m -> m.member_name) cls.members in
  check
    (Alcotest.list Alcotest.string)
    "suffixed" [ "MyName"; "MyName2"; "MyName3" ] names;
  (* each member still reads its own original field *)
  let d = Dv.Record (Dv.json_record_name, [ ("my name", Dv.Int 1); ("my_name", Dv.String "s"); ("MyName", Dv.Bool true) ]) in
  match Eval.eval p.Provide.classes (EMember (Provide.apply p d, "MyName2")) with
  | Eval.Value (EData (Dv.String "s")) -> ()
  | o -> Alcotest.failf "MyName2: %a" Eval.pp_outcome o

(* XML shaping (Sections 2.2, 6.3): collapse, Value members, body members. *)
let test_xml_shaping () =
  (* Root {Id : int, Item : string} from Section 6.3 *)
  let p =
    Result.get_ok (Provide.provide_xml {|<root id="1"><item>Hello!</item></root>|})
  in
  well_typed p;
  let cls =
    match p.Provide.root_ty with
    | TClass c -> Option.get (find_class p.Provide.classes c)
    | _ -> Alcotest.fail "expected class"
  in
  check Alcotest.string "class name" "Root" cls.class_name;
  check ty_t "Id : int" TInt (Option.get (find_member cls "Id")).member_ty;
  check ty_t "Item : string (collapsed)" TString
    (Option.get (find_member cls "Item")).member_ty;
  (* primitive body becomes Value *)
  let p = Result.get_ok (Provide.provide_xml {|<count>42</count>|}) in
  well_typed p;
  let cls =
    match p.Provide.root_ty with
    | TClass c -> Option.get (find_class p.Provide.classes c)
    | _ -> Alcotest.fail "expected class"
  in
  check ty_t "Value : int" TInt (Option.get (find_member cls "Value")).member_ty;
  (* repeated single-kind children pluralize to a list member *)
  let p =
    Result.get_ok
      (Provide.provide_xml {|<list><item>a</item><item>b</item></list>|})
  in
  well_typed p;
  let cls =
    match p.Provide.root_ty with
    | TClass c -> Option.get (find_class p.Provide.classes c)
    | _ -> Alcotest.fail "expected class"
  in
  check ty_t "Items : string list" (TList TString)
    (Option.get (find_member cls "Items")).member_ty

(* Section 2.2: mixed children give an Element class with optional
   members; unknown elements answer None everywhere (open world). *)
let test_xml_open_world () =
  let sample =
    {|<doc><heading>A</heading><p>B</p><heading>C</heading><image source="i.png"/></doc>|}
  in
  let p = Result.get_ok (Provide.provide_xml sample) in
  well_typed p;
  let elem_cls = Option.get (find_class p.Provide.classes "Element") in
  check ty_t "Heading : option string" (TOption TString)
    (Option.get (find_member elem_cls "Heading")).member_ty;
  check ty_t "P : option string" (TOption TString)
    (Option.get (find_member elem_cls "P")).member_ty;
  (match (Option.get (find_member elem_cls "Image")).member_ty with
  | TOption (TClass _) -> ()
  | t -> Alcotest.failf "Image member: %a" pp_ty t);
  (* run against a document with an unknown <table> element *)
  let input = {|<doc><table rows="3"/><heading>H</heading></doc>|} in
  let data =
    Fsdata_data.Xml.to_data (Fsdata_data.Xml.parse input)
  in
  let root = Provide.apply p data in
  let elems = EMember (root, "Doc") in
  let first = EMatchList (elems, "h", "t", EVar "h", EExn) in
  match Eval.eval p.Provide.classes (EMember (first, "Heading")) with
  | Eval.Value (ENone _) -> () (* first element is the unknown table *)
  | o -> Alcotest.failf "open world: %a" Eval.pp_outcome o

(* The signature printer reproduces the paper's People listing. *)
let test_signature_people () =
  let sample =
    {|[ { "name":"Jan", "age":25 },
        { "name":"Tomas" },
        { "name":"Alexander", "age":3.5 } ]|}
  in
  let p = Result.get_ok (Provide.provide_json ~root_name:"Entity" sample) in
  check Alcotest.string "paper listing"
    "type Entity =\n\
    \  member Name : string\n\
    \  member Age : option float\n\
     \n\
     type People =\n\
    \  member GetSample : unit -> Entity[]\n\
    \  member Parse : string -> Entity[]\n\
    \  member Load : string -> Entity[]"
    (Signature.to_string ~root_name:"People" p)

(* Any inferred shape provides well-typed classes (Figure 8 is total on
   inference output). *)
let prop_provided_well_typed =
  QCheck2.Test.make ~name:"provided classes always well-typed" ~count:300
    ~print:print_data gen_data (fun d ->
      let shape = Infer.shape_of_value ~mode:`Practical d in
      let p = Provide.provide shape in
      match TC.check_classes p.Provide.classes with
      | Ok () -> (
          match TC.synth p.Provide.classes [] p.Provide.conv with
          | Ok (TArrow (TData, t)) -> ty_equal t p.Provide.root_ty
          | _ -> false)
      | Error _ -> false)

let suite =
  [
    tc "primitives" `Quick test_primitives;
    tc "bottom and null are opaque classes" `Quick test_bottom_null;
    tc "Example 1 (Person)" `Quick test_example_1;
    tc "Example 2 (PersonOrString)" `Quick test_example_2;
    tc "nullable and collections" `Quick test_nullable_collection;
    tc "heterogeneous members by multiplicity" `Quick test_hetero_members;
    tc "member name collisions (Section 6.3)" `Quick test_member_collisions;
    tc "XML shaping (Section 6.3)" `Quick test_xml_shaping;
    tc "XML open world (Section 2.2)" `Quick test_xml_open_world;
    tc "signature printer (paper listing)" `Quick test_signature_people;
    QCheck_alcotest.to_alcotest prop_provided_well_typed;
  ]
