(* End-to-end integration tests over the vendored sample documents —
   the executable counterparts of the paper's worked examples (DESIGN.md
   experiments E1-E5). *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Infer = Fsdata_core.Infer
module Provide = Fsdata_provider.Provide
module Signature = Fsdata_provider.Signature
module Typed = Fsdata_runtime.Typed
module P = Fsdata_core.Preference

let tc = Alcotest.test_case
let check = Alcotest.check

let rec find_up name dir =
  let candidate = Filename.concat dir name in
  if Sys.file_exists candidate then candidate
  else
    let parent = Filename.dirname dir in
    if parent = dir then Alcotest.failf "cannot locate %s" name
    else find_up name parent

let read name =
  let path = find_up (Filename.concat "examples/data" name) (Sys.getcwd ()) in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* E1: the weather quickstart (Section 1, Appendix A). *)
let test_weather () =
  let sample = read "weather.json" in
  let p = Result.get_ok (Provide.provide_json ~root_name:"Weather" sample) in
  let w = Typed.parse p sample in
  check (Alcotest.float 1e-9) "Main.Temp" 5.0
    Typed.(get_float (member (member w "Main") "Temp"));
  check Alcotest.string "Name" "Prague" Typed.(get_string (member w "Name"));
  check Alcotest.string "Sys.Country" "CZ"
    Typed.(get_string (member (member w "Sys") "Country"));
  (* the weather array: one record with Main = "Clouds" *)
  let weather = Typed.get_list (Typed.member w "Weather") in
  check Alcotest.int "one weather entry" 1 (List.length weather);
  check Alcotest.string "icon stays a string" "03d"
    Typed.(get_string (member (List.hd weather) "Icon"))

(* E2: people.json with data of the same shape (Section 2.1). *)
let test_people () =
  let sample = read "people.json" in
  let p = Result.get_ok (Provide.provide_json sample) in
  let data = {|[ {"name":"Jane", "age": 33}, {"name":"Anon"} ]|} in
  let items = Typed.get_list (Typed.parse p data) in
  check Alcotest.int "two" 2 (List.length items);
  check
    (Alcotest.list (Alcotest.option (Alcotest.float 1e-9)))
    "ages"
    [ Some 33.; None ]
    (List.map
       (fun i -> Option.map Typed.get_float (Typed.get_option (Typed.member i "Age")))
       items)

(* E3: the open-world XML walk (Section 2.2) over another.xml, which
   contains a <table> element the sample never showed. *)
let test_xml_open_world () =
  let p = Result.get_ok (Provide.provide_xml (read "sample.xml")) in
  let root = Typed.parse p (read "another.xml") in
  let elems = Typed.get_list (Typed.member root "Doc") in
  check Alcotest.int "five elements" 5 (List.length elems);
  let headings =
    List.filter_map
      (fun e -> Option.map Typed.get_string (Typed.get_option (Typed.member e "Heading")))
      elems
  in
  check
    (Alcotest.list Alcotest.string)
    "headings"
    [ "Welcome to PLDI"; "Reproducing F# Data" ]
    headings;
  (* the unknown <table> answers None on every member *)
  let all_none =
    List.exists
      (fun e ->
        Typed.get_option (Typed.member e "Heading") = None
        && Typed.get_option (Typed.member e "P") = None
        && Typed.get_option (Typed.member e "Image") = None)
      elems
  in
  check Alcotest.bool "table element is invisible but harmless" true all_none

(* The check-subcommand semantics: another.xml conforms to sample.xml. *)
let test_check_conformance () =
  let sample_shape = Result.get_ok (Infer.of_xml (read "sample.xml")) in
  let input_shape = Result.get_ok (Infer.of_xml (read "another.xml")) in
  check Alcotest.bool "another.xml conforms" true
    (P.is_preferred input_shape sample_shape)

(* E4: the World Bank heterogeneous response (Section 2.3). *)
let test_worldbank () =
  let sample = read "worldbank.json" in
  let p = Result.get_ok (Provide.provide_json ~root_name:"WorldBank" sample) in
  let root = Typed.parse p sample in
  check Alcotest.int "pages" 5
    Typed.(get_int (member (member root "Record") "Pages"));
  let items = Typed.get_list (Typed.member root "Array") in
  check Alcotest.int "two items" 2 (List.length items);
  let values =
    List.map
      (fun i -> Option.map Typed.get_float (Typed.get_option (Typed.member i "Value")))
      items
  in
  check
    (Alcotest.list (Alcotest.option (Alcotest.float 1e-6)))
    "values (null and a string-encoded float)"
    [ None; Some 35.14229 ]
    values;
  check
    (Alcotest.list Alcotest.int)
    "dates are ints from string literals"
    [ 2012; 2010 ]
    (List.map (fun i -> Typed.get_int (Typed.member i "Date")) items)

(* E5: the ozone CSV (Section 6.2). *)
let test_ozone () =
  let sample = read "ozone.csv" in
  let p = Result.get_ok (Provide.provide_csv sample) in
  let rows = Typed.get_list (Typed.parse p sample) in
  check Alcotest.int "four rows" 4 (List.length rows);
  let temps =
    List.map
      (fun r -> Option.map Typed.get_int (Typed.get_option (Typed.member r "Temp")))
      rows
  in
  check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "Temp with #N/A" [ Some 67; Some 72; Some 74; None ] temps;
  let autofill = List.map (fun r -> Typed.get_bool (Typed.member r "Autofilled")) rows in
  check (Alcotest.list Alcotest.bool) "Autofilled as booleans"
    [ false; true; false; false ] autofill;
  (* Date column fell back to string because of "3 kveten" *)
  check Alcotest.string "date stays text" "3 kveten"
    (Typed.get_string (Typed.member (List.nth rows 2) "Date"))

(* Multi-sample provider invocation: merging weather samples with an
   impoverished variant makes fields optional but keeps the program
   running on both. *)
let test_multi_sample_weather () =
  let full = read "weather.json" in
  let minimal = {|{ "main": { "temp": 11 }, "name": "Nowhere" }|} in
  let shape = Result.get_ok (Infer.of_json_samples [ full; minimal ]) in
  let p = Provide.provide shape in
  List.iter
    (fun text ->
      let w = Typed.parse p text in
      let temp = Typed.(get_float (member (member w "Main") "Temp")) in
      check Alcotest.bool "temp readable" true (temp > 0.))
    [ full; minimal ]

let suite =
  [
    tc "E1: weather quickstart" `Quick test_weather;
    tc "E2: people" `Quick test_people;
    tc "E3: XML open world" `Quick test_xml_open_world;
    tc "E3b: conformance check" `Quick test_check_conformance;
    tc "E4: World Bank" `Quick test_worldbank;
    tc "E5: ozone CSV" `Quick test_ozone;
    tc "multi-sample merging" `Quick test_multi_sample_weather;
  ]

(* E8: the GitHub-events style feed (deep nesting, heterogeneous
   payloads, a real labelled top from hex color literals). *)
let test_events () =
  let sample = read "events.json" in
  let p = Result.get_ok (Provide.provide_json ~root_name:"Events" sample) in
  let events = Typed.get_list (Typed.parse p sample) in
  check Alcotest.int "three events" 3 (List.length events);
  let push = List.hd events in
  let commits =
    Typed.get_list (Typed.member (Typed.member push "Payload") "Commits")
  in
  check Alcotest.int "two commits" 2 (List.length commits);
  (* the watch event has an empty payload: commits is the empty list, the
     issue is None — no failures *)
  let watch = List.nth events 1 in
  check Alcotest.int "no commits" 0
    (List.length (Typed.get_list (Typed.member (Typed.member watch "Payload") "Commits")));
  check Alcotest.bool "no issue" true
    (Typed.get_option (Typed.member (Typed.member watch "Payload") "Issue") = None);
  (* labels: the color column is a labelled top (hex strings classify as
     int or string depending on digits) — both variants are accessible *)
  let issue =
    Option.get
      (Typed.get_option (Typed.member (Typed.member (List.nth events 2) "Payload") "Issue"))
  in
  let labels = Typed.get_list (Typed.member issue "Labels") in
  check Alcotest.int "two labels" 2 (List.length labels);
  let color l = Typed.member l "Color" in
  check Alcotest.bool "string-tagged color" true
    (Typed.get_option (Typed.member (color (List.hd labels)) "String") <> None);
  check Alcotest.bool "int-tagged color" true
    (Typed.get_option (Typed.member (color (List.nth labels 1)) "Number") <> None);
  (* created_at is provided as a date *)
  let d = Typed.(get_date (member (List.hd events) "CreatedAt")) in
  check Alcotest.string "timestamp parsed" "2016-05-10T07:36:14"
    (Fsdata_data.Date.to_iso8601 d)

let suite = suite @ [ tc "E8: GitHub-style events" `Quick test_events ]
