(* Preference-failure explanations: agreement with the relation, and
   pinpointing of the offending path. *)

module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module P = Fsdata_core.Preference
module E = Fsdata_core.Explain
module Infer = Fsdata_core.Infer
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let int_ = Shape.Primitive Shape.Int
let float_ = Shape.Primitive Shape.Float
let string_ = Shape.Primitive Shape.String

let test_empty_on_success () =
  check Alcotest.int "identical" 0 (List.length (E.explain int_ int_));
  check Alcotest.int "int into float" 0 (List.length (E.explain int_ float_));
  check Alcotest.int "anything into any" 0
    (List.length (E.explain (Shape.record "p" []) Shape.any))

let test_paths () =
  let consumer =
    Shape.collection
      (Shape.record "p" [ ("name", string_); ("age", Shape.Nullable int_) ])
  in
  let input =
    Shape.collection (Shape.record "p" [ ("name", int_); ("age", int_) ])
  in
  match E.explain input consumer with
  | [ m ] ->
      check Alcotest.string "path" "[].name" m.E.at;
      check shape_testable "input side" int_ m.E.input;
      check shape_testable "expected side" string_ m.E.expected
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms)

let test_missing_required_field () =
  let consumer = Shape.record "p" [ ("x", int_) ] in
  let input = Shape.record "p" [] in
  match E.explain input consumer with
  | [ m ] ->
      check Alcotest.string "path" ".x" m.E.at;
      check Alcotest.bool "mentions missing" true
        (Astring.String.is_infix ~affix:"missing" m.E.reason)
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms)

let test_multiple_reported () =
  let consumer = Shape.record "p" [ ("x", int_); ("y", string_) ] in
  let input = Shape.record "p" [ ("x", string_); ("y", int_) ] in
  check Alcotest.int "both fields reported" 2
    (List.length (E.explain input consumer))

let test_multiplicity () =
  let consumer =
    Shape.hetero [ (int_, Mult.Single); (string_, Mult.Single) ]
  in
  let input = Shape.hetero [ (int_, Mult.Multiple); (string_, Mult.Single) ] in
  match E.explain input consumer with
  | [ m ] ->
      check Alcotest.bool "mentions multiplicity" true
        (Astring.String.is_infix ~affix:"multiplicity" m.E.reason)
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms)

(* agreement: explain is empty exactly when the relation holds *)
let prop_agreement =
  QCheck2.Test.make ~name:"explain agrees with is_preferred" ~count:600
    ~print:(fun (a, b) -> print_shape a ^ " / " ^ print_shape b)
    QCheck2.Gen.(pair gen_core_shape gen_core_shape)
    (fun (a, b) -> P.is_preferred a b = (E.explain a b = []))

let prop_agreement_inferred =
  QCheck2.Test.make
    ~name:"explain agrees with is_preferred on inferred shapes" ~count:400
    ~print:(fun (a, b) -> print_data a ^ " / " ^ print_data b)
    QCheck2.Gen.(pair gen_data gen_data)
    (fun (a, b) ->
      let sa = Infer.shape_of_value ~mode:`Practical a in
      let sb = Infer.shape_of_value ~mode:`Practical b in
      P.is_preferred sa sb = (E.explain sa sb = []))

let suite =
  [
    tc "no mismatches on success" `Quick test_empty_on_success;
    tc "paths pinpoint the violation" `Quick test_paths;
    tc "missing required field" `Quick test_missing_required_field;
    tc "all independent violations reported" `Quick test_multiple_reported;
    tc "multiplicity violations" `Quick test_multiplicity;
    QCheck_alcotest.to_alcotest prop_agreement;
    QCheck_alcotest.to_alcotest prop_agreement_inferred;
  ]
