(* Small-step evaluation of the Foo calculus (Figure 6, Part II) and the
   dynamic data operations (Part I). Includes the paper's stuck-state
   examples: convPrim(bool, 42) is stuck, convFloat(float, 42) converts. *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
open Fsdata_foo.Syntax
module Eval = Fsdata_foo.Eval

let tc = Alcotest.test_case
let check = Alcotest.check

let int_sh = Shape.Primitive Shape.Int
let float_sh = Shape.Primitive Shape.Float
let bool_sh = Shape.Primitive Shape.Bool
let string_sh = Shape.Primitive Shape.String

let expr_t =
  Alcotest.testable pp_expr (fun a b -> Eval.eval [] (EEq (a, b)) = Eval.Value (bool_ true))

let eval ?(classes = []) e = Eval.eval classes e

let value ?classes name expected e =
  match eval ?classes e with
  | Eval.Value v -> check expr_t name expected v
  | o -> Alcotest.failf "%s: expected a value, got %a" name Eval.pp_outcome o

let stuck ?classes name e =
  match eval ?classes e with
  | Eval.Stuck _ -> ()
  | o -> Alcotest.failf "%s: expected stuck, got %a" name Eval.pp_outcome o

let exn_ ?classes name e =
  match eval ?classes e with
  | Eval.Exn -> ()
  | o -> Alcotest.failf "%s: expected exn, got %a" name Eval.pp_outcome o

(* ----- ML fragment ----- *)

let test_beta () =
  value "identity" (int_ 5) (EApp (lam "x" TInt (EVar "x"), int_ 5));
  value "const" (string_ "a")
    (EApp (EApp (lam "x" TString (lam "y" TInt (EVar "x")), string_ "a"), int_ 1));
  (* capture-avoiding substitution: (λx.λy.x) y ⇝ λy'.y *)
  (match
     eval (EApp (EApp (lam "x" TInt (lam "y" TInt (EVar "x")), EVar "y"), int_ 0))
   with
  | Eval.Stuck _ -> () (* free variable y is eventually stuck — fine *)
  | Eval.Value v ->
      Alcotest.failf "capture: unexpectedly produced %a" pp_expr v
  | _ -> ());
  let inner = EApp (lam "x" TInt (lam "y" TInt (EApp (EVar "f", EVar "x"))), EVar "y") in
  match Eval.step [] (EApp (lam "f" (TArrow (TInt, TInt)) inner, lam "z" TInt (EVar "z"))) with
  | `Step _ -> ()
  | _ -> Alcotest.fail "expected a step"

let test_subst_capture () =
  (* e[x ← y] under a binder named y must rename the binder *)
  (match subst "x" (EVar "y") (ELam ("y", TInt, EVar "x")) with
  | ELam (y', _, EVar "y") when y' <> "y" -> ()
  | e -> Alcotest.failf "capture-avoidance failed: %a" pp_expr e);
  (* no renaming needed when the binder differs *)
  (match subst "x" (int_ 1) (ELam ("z", TInt, EVar "x")) with
  | ELam ("z", _, EData (Dv.Int 1)) -> ()
  | e -> Alcotest.failf "unexpected: %a" pp_expr e);
  (* binder shadows: no substitution under same-named binder *)
  match subst "x" (int_ 1) (ELam ("x", TInt, EVar "x")) with
  | ELam ("x", _, EVar "x") -> ()
  | e -> Alcotest.failf "shadowing violated: %a" pp_expr e

let test_cond () =
  value "cond1" (int_ 1) (EIf (bool_ true, int_ 1, int_ 2));
  value "cond2" (int_ 2) (EIf (bool_ false, int_ 1, int_ 2));
  stuck "if on non-bool" (EIf (int_ 1, int_ 1, int_ 2))

let test_eq () =
  value "eq1" (bool_ true) (EEq (int_ 1, int_ 1));
  value "eq2" (bool_ false) (EEq (int_ 1, int_ 2));
  value "records compare structurally" (bool_ true)
    (EEq
       ( EData (Dv.Record ("p", [ ("a", Dv.Int 1); ("b", Dv.Int 2) ])),
         EData (Dv.Record ("p", [ ("b", Dv.Int 2); ("a", Dv.Int 1) ])) ));
  value "options" (bool_ true) (EEq (ESome (int_ 1), ESome (int_ 1)));
  value "none/some" (bool_ false) (EEq (ENone TInt, ESome (int_ 1)))

let test_match_option () =
  value "match Some" (int_ 5)
    (EMatchOption (ESome (int_ 5), "x", EVar "x", int_ 0));
  value "match None" (int_ 0)
    (EMatchOption (ENone TInt, "x", EVar "x", int_ 0));
  stuck "match non-option" (EMatchOption (int_ 1, "x", EVar "x", int_ 0))

let test_match_list () =
  value "match cons" (int_ 1)
    (EMatchList (ECons (int_ 1, ENil TInt), "h", "t", EVar "h", int_ 0));
  value "match nil" (int_ 0)
    (EMatchList (ENil TInt, "h", "t", EVar "h", int_ 0));
  value "tail" (bool_ true)
    (EMatchList
       ( ECons (int_ 1, ECons (int_ 2, ENil TInt)),
         "h", "t",
         EEq (EVar "t", ECons (int_ 2, ENil TInt)),
         bool_ false ))

let test_member () =
  let classes =
    [
      {
        class_name = "C";
        ctor_params = [ ("a", TInt); ("b", TString) ];
        members =
          [
            { member_name = "A"; member_ty = TInt; member_body = EVar "a" };
            { member_name = "B"; member_ty = TString; member_body = EVar "b" };
          ];
      };
    ]
  in
  value ~classes "member a" (int_ 7)
    (EMember (ENew ("C", [ int_ 7; string_ "s" ]), "A"));
  value ~classes "member b" (string_ "s")
    (EMember (ENew ("C", [ int_ 7; string_ "s" ]), "B"));
  stuck ~classes "unknown member" (EMember (ENew ("C", [ int_ 7; string_ "s" ]), "Z"));
  stuck "unknown class" (EMember (ENew ("D", []), "A"))

let test_exn_propagates () =
  (* C[exn] ⇝ exn for every evaluation context *)
  exn_ "in app function" (EApp (EExn, int_ 1));
  exn_ "in app argument" (EApp (lam "x" TInt (EVar "x"), EExn));
  exn_ "in if" (EIf (EExn, int_ 1, int_ 2));
  exn_ "in cons" (ECons (int_ 1, EExn));
  exn_ "in Some" (ESome EExn);
  exn_ "in member" (EMember (EExn, "A"));
  exn_ "in op" (EOp (ConvPrim (int_sh, EExn)));
  exn_ "in match" (EMatchOption (EExn, "x", EVar "x", int_ 0));
  exn_ "alone" EExn

(* ----- dynamic data operations (Figure 6, Part I) ----- *)

let test_conv_float () =
  (* the paper: convFloat(float, 42) turns 42 into 42.0 *)
  value "int to float" (float_ 42.) (EOp (ConvFloat (float_sh, int_ 42)));
  value "float unchanged" (float_ 1.5) (EOp (ConvFloat (float_sh, float_ 1.5)));
  stuck "on string" (EOp (ConvFloat (float_sh, string_ "x")));
  stuck "on null" (EOp (ConvFloat (float_sh, null)))

let test_conv_prim () =
  value "int" (int_ 42) (EOp (ConvPrim (int_sh, int_ 42)));
  value "string" (string_ "x") (EOp (ConvPrim (string_sh, string_ "x")));
  value "bool" (bool_ true) (EOp (ConvPrim (bool_sh, bool_ true)));
  (* the paper: convPrim(bool, 42) represents a stuck state *)
  stuck "convPrim(bool, 42)" (EOp (ConvPrim (bool_sh, int_ 42)));
  stuck "convPrim(int, 1.5)" (EOp (ConvPrim (int_sh, float_ 1.5)));
  stuck "convPrim(int, null)" (EOp (ConvPrim (int_sh, null)))

let test_conv_null () =
  let k = lam "x" TData (EOp (ConvPrim (int_sh, EVar "x"))) in
  value "null to None" (ENone TInt) (EOp (ConvNull (null, k)));
  value "value to Some" (ESome (int_ 5)) (EOp (ConvNull (int_ 5, k)));
  stuck "inner conversion can still be stuck" (EOp (ConvNull (string_ "x", k)))

let test_conv_field () =
  let record = EData (Dv.Record ("p", [ ("x", Dv.Int 5) ])) in
  let k = lam "v" TData (EOp (ConvPrim (int_sh, EVar "v"))) in
  value "present field" (int_ 5) (EOp (ConvField ("p", "x", record, k)));
  (* missing field passes null to the continuation *)
  value "missing field gives null"
    (ENone TInt)
    (EOp
       (ConvField
          ( "p", "y", record,
            lam "v" TData (EOp (ConvNull (EVar "v", k))) )));
  stuck "missing field then strict conversion is stuck"
    (EOp (ConvField ("p", "y", record, k)));
  stuck "wrong record name" (EOp (ConvField ("q", "x", record, k)));
  stuck "not a record" (EOp (ConvField ("p", "x", int_ 5, k)))

let test_conv_elements () =
  let k = lam "x" TData (EOp (ConvPrim (int_sh, EVar "x"))) in
  value "maps elements"
    (ECons (int_ 1, ECons (int_ 2, ENil TInt)))
    (EOp (ConvElements (EData (Dv.List [ Dv.Int 1; Dv.Int 2 ]), k)));
  value "null is the empty collection" (ENil TInt) (EOp (ConvElements (null, k)));
  value "empty list" (ENil TInt) (EOp (ConvElements (EData (Dv.List []), k)));
  stuck "element conversion can be stuck"
    (EOp (ConvElements (EData (Dv.List [ Dv.String "x" ]), k)));
  stuck "not a collection" (EOp (ConvElements (int_ 5, k)))

let test_has_shape_op () =
  value "matching" (bool_ true) (EOp (HasShape (int_sh, int_ 5)));
  value "mismatching" (bool_ false) (EOp (HasShape (bool_sh, int_ 5)))

let test_extensions () =
  value "convBool true" (bool_ true) (EOp (ConvBool (int_ 1)));
  value "convBool false" (bool_ false) (EOp (ConvBool (int_ 0)));
  value "convBool passthrough" (bool_ true) (EOp (ConvBool (bool_ true)));
  stuck "convBool 2" (EOp (ConvBool (int_ 2)));
  (match eval (EOp (ConvDate (string_ "2012-05-01"))) with
  | Eval.Value (EDate d) ->
      check Alcotest.string "convDate" "2012-05-01" (Fsdata_data.Date.to_iso8601 d)
  | o -> Alcotest.failf "convDate: %a" Eval.pp_outcome o);
  stuck "convDate non-date" (EOp (ConvDate (string_ "nope")));
  value "int(f)" (int_ 3) (EOp (IntOfFloat (float_ 3.7)));
  value "int(i)" (int_ 3) (EOp (IntOfFloat (int_ 3)));
  stuck "int(string)" (EOp (IntOfFloat (string_ "x")))

let test_conv_select () =
  let k = lam "x" TData (EOp (ConvPrim (int_sh, EVar "x"))) in
  (* ints away from 0/1, which conform to bool through the bit lattice *)
  let data = EData (Dv.List [ Dv.String "s"; Dv.Int 5; Dv.Int 7 ]) in
  value "single takes first match" (int_ 5)
    (EOp (ConvSelect (int_sh, Mult.Single, data, k)));
  value "optional present" (ESome (int_ 5))
    (EOp (ConvSelect (int_sh, Mult.Optional_single, data, k)));
  value "optional absent" (ENone TInt)
    (EOp (ConvSelect (bool_sh, Mult.Optional_single, data,
                      lam "x" TData (EOp (ConvPrim (bool_sh, EVar "x"))))));
  value "multiple collects" (ECons (int_ 5, ECons (int_ 7, ENil TInt)))
    (EOp (ConvSelect (int_sh, Mult.Multiple, data, k)));
  stuck "single with no match"
    (EOp (ConvSelect (bool_sh, Mult.Single, data, k)));
  value "null collection: optional" (ENone TInt)
    (EOp (ConvSelect (int_sh, Mult.Optional_single, null, k)));
  value "null collection: multiple" (ENil TInt)
    (EOp (ConvSelect (int_sh, Mult.Multiple, null, k)));
  stuck "null collection: single" (EOp (ConvSelect (int_sh, Mult.Single, null, k)))

let test_trace_and_fuel () =
  let e = EApp (lam "x" TInt (EVar "x"), EIf (bool_ true, int_ 1, int_ 2)) in
  let steps, outcome = Eval.trace [] e in
  check Alcotest.int "trace length" 3 (List.length steps);
  (match outcome with
  | Eval.Value _ -> ()
  | o -> Alcotest.failf "expected value, got %a" Eval.pp_outcome o);
  (* fuel exhaustion reports Timeout *)
  match Eval.eval ~fuel:1 [] (EApp (lam "x" TInt (EVar "x"), EIf (bool_ true, int_ 1, int_ 2))) with
  | Eval.Timeout -> ()
  | o -> Alcotest.failf "expected timeout, got %a" Eval.pp_outcome o

let test_eval_order_left_to_right () =
  (* constructor arguments evaluate left to right: the first stuck
     argument reports, even if a later one would raise exn *)
  match eval (ENew ("C", [ EOp (ConvPrim (bool_sh, int_ 42)); EExn ])) with
  | Eval.Stuck _ -> ()
  | o -> Alcotest.failf "expected stuck first, got %a" Eval.pp_outcome o

let suite =
  [
    tc "beta reduction and substitution" `Quick test_beta;
    tc "capture-avoiding substitution" `Quick test_subst_capture;
    tc "(cond1)/(cond2)" `Quick test_cond;
    tc "(eq1)/(eq2)" `Quick test_eq;
    tc "(match1)/(match2)" `Quick test_match_option;
    tc "(match3)/(match4)" `Quick test_match_list;
    tc "(member)" `Quick test_member;
    tc "exn propagation (Remark 1)" `Quick test_exn_propagates;
    tc "convFloat" `Quick test_conv_float;
    tc "convPrim (incl. paper's stuck example)" `Quick test_conv_prim;
    tc "convNull" `Quick test_conv_null;
    tc "convField" `Quick test_conv_field;
    tc "convElements" `Quick test_conv_elements;
    tc "hasShape" `Quick test_has_shape_op;
    tc "extensions: convBool, convDate, int(e)" `Quick test_extensions;
    tc "convSelect (Section 6.4)" `Quick test_conv_select;
    tc "trace and fuel" `Quick test_trace_and_fuel;
    tc "left-to-right evaluation" `Quick test_eval_order_left_to_right;
  ]
