(* Parallel chunked shape inference (Par_infer).

   The parallel path is a balanced csh tree reduction over per-chunk
   folds, so it computes the same shape as the sequential left fold of
   {!Infer.shape_of_samples} only because csh is an associative,
   commutative least upper bound (Lemma 1). The properties here pin that
   down over shapes that actually arise from data — where the
   labelled-top (Figure 4) and multiplicity (Section 6.4) extensions
   live, and where a merge-order bug would hide — and check the
   sequential ≡ parallel agreement directly for several job counts in
   all three inference modes. *)

module Shape = Fsdata_core.Shape
module Csh = Fsdata_core.Csh
module Infer = Fsdata_core.Infer
module Par = Fsdata_core.Par_infer
module Dv = Fsdata_data.Data_value
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let modes : (string * Infer.mode) list =
  [ ("paper", `Paper); ("practical", `Practical); ("xml", `Xml) ]

let shape_of mode d = Infer.shape_of_value ~mode d

(* ----- csh algebra properties, over inferred shapes ----- *)

let prop_associative (name, mode) =
  let cmode = Infer.csh_mode mode in
  QCheck2.Test.make
    ~name:(Printf.sprintf "csh associative on inferred shapes (%s)" name)
    ~count:1000
    ~print:(fun (a, b, c) ->
      String.concat " | " (List.map print_data [ a; b; c ]))
    QCheck2.Gen.(triple gen_data gen_data gen_data)
    (fun (a, b, c) ->
      let sa = shape_of mode a
      and sb = shape_of mode b
      and sc = shape_of mode c in
      let csh = Csh.csh ~mode:cmode in
      Shape.equal (csh (csh sa sb) sc) (csh sa (csh sb sc)))

let prop_commutative (name, mode) =
  let cmode = Infer.csh_mode mode in
  QCheck2.Test.make
    ~name:(Printf.sprintf "csh commutative on inferred shapes (%s)" name)
    ~count:1000
    ~print:(fun (a, b) -> String.concat " | " (List.map print_data [ a; b ]))
    QCheck2.Gen.(pair gen_data gen_data)
    (fun (a, b) ->
      let sa = shape_of mode a and sb = shape_of mode b in
      Shape.equal (Csh.csh ~mode:cmode sa sb) (Csh.csh ~mode:cmode sb sa))

let prop_idempotent (name, mode) =
  let cmode = Infer.csh_mode mode in
  QCheck2.Test.make
    ~name:(Printf.sprintf "csh idempotent on inferred shapes (%s)" name)
    ~count:1000
    ~print:(fun (a, b) -> String.concat " | " (List.map print_data [ a; b ]))
    QCheck2.Gen.(pair gen_data gen_data)
    (fun (a, b) ->
      (* Both a bare inferred shape and a csh-composite (which is where
         labelled tops and widened multiplicities appear). *)
      let sa = shape_of mode a in
      let sab = Csh.csh ~mode:cmode sa (shape_of mode b) in
      Shape.equal (Csh.csh ~mode:cmode sa sa) sa
      && Shape.equal (Csh.csh ~mode:cmode sab sab) sab)

(* ----- sequential ≡ parallel ----- *)

let prop_seq_eq_par (name, mode) =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "shape_of_samples ~jobs:k ≡ sequential fold (%s)" name)
    ~count:1000
    ~print:(fun ds -> String.concat " | " (List.map print_data ds))
    QCheck2.Gen.(list_size (int_range 0 12) gen_data)
    (fun ds ->
      let seq = Infer.shape_of_samples ~mode ds in
      List.for_all
        (fun k -> Shape.equal (Par.shape_of_samples ~mode ~jobs:k ds) seq)
        [ 1; 2; 7 ])

(* Shapes must come from the inference mode that matches the merge mode
   (as Infer.csh_mode pairs them in the pipeline): e.g. `Core collapses
   collection multiplicities to [Multiple] when it merges two
   collections, so feeding it `Practical-inferred shapes (which carry
   [Single]) breaks representation-level associativity through the (eq)
   short-circuit — a mix that never occurs in the pipeline. *)
let prop_csh_tree_eq_fold (name, imode, cmode) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "csh_tree ≡ left csh fold (%s)" name)
    ~count:1000
    ~print:(fun ds -> String.concat " | " (List.map print_data ds))
    QCheck2.Gen.(list_size (int_range 0 10) gen_data)
    (fun ds ->
      let shapes = List.map (Infer.shape_of_value ~mode:imode) ds in
      Shape.equal
        (Par.csh_tree ~mode:cmode shapes)
        (Csh.csh_all ~mode:cmode shapes))

(* ----- regressions ----- *)

let test_empty () =
  List.iter
    (fun (name, mode) ->
      check shape_testable
        (name ^ ": no samples infer bottom, sequentially")
        Shape.Bottom
        (Infer.shape_of_samples ~mode []);
      check shape_testable
        (name ^ ": no samples infer bottom, in parallel")
        Shape.Bottom
        (Par.shape_of_samples ~mode ~jobs:4 []))
    modes

let test_single_sample () =
  let d =
    Dv.Record
      (Dv.json_record_name, [ ("a", Dv.Int 1); ("b", Dv.List [ Dv.Null ]) ])
  in
  List.iter
    (fun (name, mode) ->
      check shape_testable
        (name ^ ": one sample, many jobs")
        (Infer.shape_of_samples ~mode [ d ])
        (Par.shape_of_samples ~mode ~jobs:4 [ d ]))
    modes

let test_more_jobs_than_samples () =
  let ds = [ Dv.Int 1; Dv.Float 2.5; Dv.Null ] in
  List.iter
    (fun (name, mode) ->
      check shape_testable
        (name ^ ": jobs exceed sample count")
        (Infer.shape_of_samples ~mode ds)
        (Par.shape_of_samples ~mode ~jobs:64 ds))
    modes

(* Every chunk infers a different labelled-top arm, so the tree merge
   exercises (top-merge) on every interior node rather than (eq). *)
let test_chunks_hit_distinct_top_arms () =
  let ds =
    [
      Dv.Int 3;
      Dv.Bool true;
      Dv.String "text";
      Dv.Record (Dv.json_record_name, [ ("a", Dv.Int 1) ]);
      Dv.List [ Dv.Int 1; Dv.Int 2 ];
    ]
  in
  List.iter
    (fun (name, mode) ->
      let seq = Infer.shape_of_samples ~mode ds in
      let par = Par.shape_of_samples ~mode ~jobs:5 ds in
      check shape_testable (name ^ ": five one-sample chunks") seq par;
      match par with
      | Shape.Top labels ->
          Alcotest.(check int)
            (name ^ ": all five arms present")
            5 (List.length labels)
      | s -> Alcotest.failf "%s: expected a labelled top, got %s" name
               (Shape.to_string s))
    modes

let test_chunk () =
  let c = Alcotest.(check (list (list int))) in
  c "chunk 1 is the whole list" [ [ 1; 2; 3 ] ] (Par.chunk 1 [ 1; 2; 3 ]);
  c "chunk of nothing is no chunks" [] (Par.chunk 4 []);
  c "remainder spreads over the first chunks"
    [ [ 1; 2; 3 ]; [ 4; 5 ] ]
    (Par.chunk 2 [ 1; 2; 3; 4; 5 ]);
  c "more jobs than elements: singleton chunks"
    [ [ 1 ]; [ 2 ] ]
    (Par.chunk 5 [ 1; 2 ]);
  let xs = List.init 97 Fun.id in
  Alcotest.(check (list int))
    "concatenating chunks restores the list" xs
    (List.concat (Par.chunk 7 xs));
  Alcotest.check_raises "zero jobs rejected"
    (Invalid_argument "Par_infer.chunk: k must be positive") (fun () ->
      ignore (Par.chunk 0 [ 1 ]))

let test_csh_tree_edges () =
  check shape_testable "empty tree is bottom" Shape.Bottom (Par.csh_tree []);
  let s = Shape.collection (Shape.Primitive Shape.Int) in
  check shape_testable "singleton tree is its shape" s (Par.csh_tree [ s ])

(* Parallel parsing reports the same (earliest) error as the sequential
   driver, even when a later chunk also fails. *)
let test_error_semantics () =
  let texts = [ "{\"a\": 1}"; "nope"; "{\"b\": 2}"; "]" ] in
  let result = Alcotest.(result shape_testable string) in
  let seq = Infer.of_json_samples texts in
  (match seq with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "sequential driver accepted bad corpus: %s"
              (Shape.to_string s));
  List.iter
    (fun jobs ->
      check result
        (Printf.sprintf "earliest parse error wins at jobs=%d" jobs)
        seq
        (Par.of_json_samples ~jobs texts))
    [ 1; 2; 4; 64 ];
  (* a good corpus round-trips identically *)
  let good = [ "{\"a\": 1}"; "{\"a\": null, \"b\": [1, 2]}"; "3.5" ] in
  check result "good corpus agrees with the sequential driver"
    (Infer.of_json_samples good)
    (Par.of_json_samples ~jobs:3 good)

(* Streaming entry point: chunked parse + parallel inference agrees with
   the all-at-once sequential driver, across chunk sizes that do and do
   not divide the document count. *)
let test_streaming_of_json () =
  let docs =
    List.init 53 (fun i ->
        match i mod 4 with
        | 0 -> Printf.sprintf "{\"id\": %d, \"v\": %d}" i i
        | 1 -> Printf.sprintf "{\"id\": %d, \"v\": %d.5}" i i
        | 2 -> Printf.sprintf "{\"id\": %d, \"note\": null}" i
        | _ -> Printf.sprintf "[%d, true]" i)
  in
  let src = String.concat "\n" docs in
  let seq = Infer.of_json_samples docs in
  let result = Alcotest.(result shape_testable string) in
  List.iter
    (fun (jobs, chunk_size) ->
      check result
        (Printf.sprintf "of_json jobs=%d chunk_size=%d" jobs chunk_size)
        seq
        (Par.of_json ~jobs ~chunk_size src))
    [ (1, 7); (2, 10); (4, 5); (4, 100) ];
  check result "empty stream is an error"
    (Error "no JSON sample documents found")
    (Par.of_json ~jobs:4 "  \n ")

let suite =
  [
    tc "no samples" `Quick test_empty;
    tc "single sample" `Quick test_single_sample;
    tc "more jobs than samples" `Quick test_more_jobs_than_samples;
    tc "distinct top arms per chunk" `Quick test_chunks_hit_distinct_top_arms;
    tc "chunking" `Quick test_chunk;
    tc "csh_tree edge cases" `Quick test_csh_tree_edges;
    tc "parse error semantics" `Quick test_error_semantics;
    tc "streaming of_json" `Quick test_streaming_of_json;
  ]
  @ List.map (fun m -> QCheck_alcotest.to_alcotest (prop_associative m)) modes
  @ List.map (fun m -> QCheck_alcotest.to_alcotest (prop_commutative m)) modes
  @ List.map (fun m -> QCheck_alcotest.to_alcotest (prop_idempotent m)) modes
  @ List.map (fun m -> QCheck_alcotest.to_alcotest (prop_seq_eq_par m)) modes
  @ List.map
      (fun m -> QCheck_alcotest.to_alcotest (prop_csh_tree_eq_fold m))
      [ ("core", `Paper, `Core); ("hetero", `Practical, `Hetero); ("xml", `Xml, `Xml) ]
