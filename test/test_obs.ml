(* Observability (Fsdata_obs): span nesting, merge-at-join attribution,
   counter monotonicity, export formats — and the property that turning
   the instruments on never changes what the pipeline computes.

   Every test restores the disabled state and clears the buffers on the
   way out: the registry is process-global and the rest of the suite
   must keep running uninstrumented. *)

module Trace = Fsdata_obs.Trace
module Metrics = Fsdata_obs.Metrics
module Shape = Fsdata_core.Shape
module Infer = Fsdata_core.Infer
module Par = Fsdata_core.Par_infer
module Json = Fsdata_data.Json
module Dv = Fsdata_data.Data_value
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

(* Run [f] with tracing (and metrics) enabled, then disable and return
   [f ()]'s result together with the recorded spans. *)
let traced f =
  Trace.reset ();
  Metrics.reset ();
  Trace.set_enabled true;
  Metrics.set_enabled true;
  let finish () =
    Trace.set_enabled false;
    Metrics.set_enabled false
  in
  match f () with
  | v ->
      finish ();
      let spans = Trace.spans () in
      Trace.reset ();
      (v, spans)
  | exception e ->
      finish ();
      Trace.reset ();
      raise e

let span_named name spans =
  match List.filter (fun (s : Trace.span) -> s.name = name) spans with
  | [ s ] -> s
  | [] -> Alcotest.failf "no span named %s" name
  | _ -> Alcotest.failf "several spans named %s" name

(* ----- span nesting ----- *)

let test_nesting () =
  let (), spans =
    traced (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () -> ());
            Trace.with_span "inner2" (fun () -> ())))
  in
  check Alcotest.int "three spans" 3 (List.length spans);
  let outer = span_named "outer" spans in
  let inner = span_named "inner" spans in
  let inner2 = span_named "inner2" spans in
  check Alcotest.int "outer is a root" (-1) outer.Trace.parent;
  check Alcotest.int "inner nests under outer" outer.Trace.id inner.Trace.parent;
  check Alcotest.int "inner2 nests under outer" outer.Trace.id
    inner2.Trace.parent;
  check Alcotest.bool "inner contained in outer"
    true
    (Int64.compare inner.Trace.start_ns outer.Trace.start_ns >= 0
    && Int64.compare
         (Int64.add inner.Trace.start_ns inner.Trace.dur_ns)
         (Int64.add outer.Trace.start_ns outer.Trace.dur_ns)
       <= 0)

let test_sibling_after_nested () =
  (* a span opened after a nested one closed is a sibling, not a child *)
  let (), spans =
    traced (fun () ->
        Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
        Trace.with_span "c" (fun () -> ()))
  in
  let a = span_named "a" spans and c = span_named "c" spans in
  check Alcotest.int "c is a root" (-1) c.Trace.parent;
  check Alcotest.int "a is a root" (-1) a.Trace.parent

let test_exception_span () =
  let exception Boom in
  let result =
    traced (fun () ->
        try
          Trace.with_span "raising" (fun () -> raise Boom)
        with Boom -> "caught")
  in
  let v, spans = result in
  check Alcotest.string "exception propagated" "caught" v;
  let s = span_named "raising" spans in
  check Alcotest.bool "span recorded despite raise" true
    (Int64.compare s.Trace.dur_ns 0L >= 0)

let test_args () =
  let (), spans =
    traced (fun () ->
        Trace.with_span ~args:[ ("k", "v") ] "annotated" (fun () -> ()))
  in
  let s = span_named "annotated" spans in
  check
    Alcotest.(list (pair string string))
    "args kept" [ ("k", "v") ] s.Trace.args

(* ----- merge at join: spans never lose their recording domain ----- *)

let test_merge_at_join () =
  let worker_ids, spans =
    traced (fun () ->
        Trace.with_span "parent" (fun () ->
            let ds =
              List.init 3 (fun i ->
                  Domain.spawn (fun () ->
                      Trace.with_span
                        (Printf.sprintf "worker%d" i)
                        (fun () -> (Domain.self () :> int))))
            in
            List.map Domain.join ds))
  in
  check Alcotest.int "four spans" 4 (List.length spans);
  let parent = span_named "parent" spans in
  List.iteri
    (fun i did ->
      let w = span_named (Printf.sprintf "worker%d" i) spans in
      check Alcotest.int
        (Printf.sprintf "worker%d attributed to its own domain" i)
        did w.Trace.domain;
      check Alcotest.bool
        (Printf.sprintf "worker%d not on the joining domain" i)
        true
        (w.Trace.domain <> parent.Trace.domain);
      (* a worker's first span is a root of its own timeline — never a
         child of a span on the spawning domain *)
      check Alcotest.int
        (Printf.sprintf "worker%d is a root in its domain" i)
        (-1) w.Trace.parent)
    worker_ids

(* ----- counters ----- *)

let test_counter_monotonic () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let c = Metrics.counter "test.monotonic" in
  let last = ref (Metrics.value c) in
  for i = 1 to 100 do
    if i mod 3 = 0 then Metrics.add c 2 else Metrics.incr c;
    let v = Metrics.value c in
    check Alcotest.bool "counter never decreases" true (v >= !last);
    last := v
  done;
  Metrics.set_enabled false;
  let frozen = Metrics.value c in
  Metrics.incr c;
  check Alcotest.int "disabled incr is a no-op" frozen (Metrics.value c);
  Metrics.reset ()

let test_counter_concurrent () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let c = Metrics.counter "test.concurrent" in
  let per_domain = 10_000 and domains = 4 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join ds;
  Metrics.set_enabled false;
  check Alcotest.int "no lost updates across domains" (per_domain * domains)
    (Metrics.value c);
  Metrics.reset ()

let test_histogram_export () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 1.0; 3.0; 2.0 ];
  Metrics.set_enabled false;
  let e = Metrics.export () in
  let get k = List.assoc ("test.hist." ^ k) e in
  check Alcotest.bool "count" true (get "count" = `Int 3);
  check Alcotest.bool "sum" true (get "sum" = `Float 6.0);
  check Alcotest.bool "min" true (get "min" = `Float 1.0);
  check Alcotest.bool "max" true (get "max" = `Float 3.0);
  check Alcotest.bool "mean" true (get "mean" = `Float 2.0);
  Metrics.reset ()

(* ----- export formats parse with our own parsers ----- *)

let test_metrics_json_parses () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Metrics.incr (Metrics.counter "test.json_export");
  Metrics.set_enabled false;
  let j = Metrics.to_json () in
  (match Json.parse j with
  | Dv.Record (_, fields) ->
      let keys = List.map fst fields in
      check Alcotest.bool "keys sorted" true
        (keys = List.sort String.compare keys);
      check Alcotest.bool "registered key present" true
        (List.mem "test.json_export" keys)
  | _ -> Alcotest.fail "metrics JSON is not an object");
  Metrics.reset ()

let test_trace_json_parses () =
  Trace.reset ();
  Trace.set_enabled true;
  Trace.with_span "outer" (fun () ->
      Trace.with_span ~args:[ ("n", "1") ] "inner \"quoted\"" (fun () -> ()));
  Trace.set_enabled false;
  let j = Trace.to_trace_event_json () in
  Trace.reset ();
  match Json.parse j with
  | Dv.Record (_, fields) -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Dv.List events) ->
          check Alcotest.int "one event per span" 2 (List.length events);
          List.iter
            (fun ev ->
              match ev with
              | Dv.Record (_, fs) ->
                  List.iter
                    (fun k ->
                      check Alcotest.bool
                        (Printf.sprintf "event has %s" k)
                        true
                        (List.mem_assoc k fs))
                    [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ]
              | _ -> Alcotest.fail "event is not an object")
            events
      | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "trace JSON is not an object"

(* ----- ingest counters reconcile ----- *)

let test_ingest_reconciliation () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let budget = Fsdata_data.Diagnostic.Count 5 in
  let texts =
    [
      "{\"a\": 1}"; "{\"a\":"; "{\"a\": 2}"; "nonsense{"; "{\"a\": 3}";
    ]
  in
  (match Infer.of_json_samples_tolerant ~budget texts with
  | Ok r ->
      check Alcotest.int "two quarantined" 2 (List.length r.Infer.quarantined)
  | Error e -> Alcotest.fail e);
  Metrics.set_enabled false;
  let v name = Metrics.value (Metrics.counter name) in
  check Alcotest.int "total = clean + quarantined"
    (v "ingest.samples_total")
    (v "ingest.samples_clean" + v "ingest.samples_quarantined");
  check Alcotest.int "total counts every sample" 5 (v "ingest.samples_total");
  check Alcotest.int "quarantined counts the faults" 2
    (v "ingest.samples_quarantined");
  Metrics.reset ()

(* ----- observability never changes the pipeline's answer ----- *)

let prop_tracing_preserves_shapes jobs =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "enabling observability never changes shapes (jobs %d)"
         jobs)
    ~count:100
    ~print:(fun ds -> String.concat " | " (List.map print_data ds))
    QCheck2.Gen.(list_size (int_range 1 12) gen_data)
    (fun ds ->
      let plain = Par.shape_of_samples ~mode:`Practical ~jobs ds in
      let observed, _spans =
        traced (fun () -> Par.shape_of_samples ~mode:`Practical ~jobs ds)
      in
      Shape.equal plain observed)

let suite =
  [
    tc "span nesting records parents" `Quick test_nesting;
    tc "siblings are not nested" `Quick test_sibling_after_nested;
    tc "span recorded when body raises" `Quick test_exception_span;
    tc "span args preserved" `Quick test_args;
    tc "spans keep their domain across join" `Quick test_merge_at_join;
    tc "counter monotonicity" `Quick test_counter_monotonic;
    tc "concurrent counter updates" `Quick test_counter_concurrent;
    tc "histogram export" `Quick test_histogram_export;
    tc "metrics JSON parses, keys sorted" `Quick test_metrics_json_parses;
    tc "trace JSON parses as trace_event" `Quick test_trace_json_parses;
    tc "ingest counters reconcile" `Quick test_ingest_reconciliation;
    QCheck_alcotest.to_alcotest (prop_tracing_preserves_shapes 1);
    QCheck_alcotest.to_alcotest (prop_tracing_preserves_shapes 7);
  ]
