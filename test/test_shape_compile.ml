(* Differential harness for shape-specialized parser compilation.

   The interpreted pipeline — [Json.parse] → [Primitive.normalize] →
   [Shape_compile.convert] guarded by [Shape_check.has_shape] — is the
   executable specification; the compiled decoders of
   {!Fsdata_core.Shape_compile} must be observationally identical to it:

   - a document decodes directly iff it (normalized) has the shape, and
     the direct result equals [convert] byte-for-byte once rendered;
   - a parseable non-conforming document falls back to the normalized
     generic value with exactly the [diagnose] diagnostic;
   - a malformed document raises / is quarantined with exactly the
     interpreted parser's diagnostic, and stream decoding resynchronizes
     at the same top-level boundaries as [Json.fold_many], so a
     mid-document mismatch never desynchronizes its successors.

   Corpora come from two directions: [Shape_gen] samples *of* the
   compiled shape (mostly-conforming, exercising the direct path) and
   independent (shape, document) pairs (mostly non-conforming,
   exercising fallback). Quarantine parity over fault-injected streams
   runs at jobs 1 and 7. *)

module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json
module Prim = Fsdata_data.Primitive
module Diagnostic = Fsdata_data.Diagnostic
module Shape = Fsdata_core.Shape
module Shape_check = Fsdata_core.Shape_check
module Shape_gen = Fsdata_core.Shape_gen
module Infer = Fsdata_core.Infer
module Par_infer = Fsdata_core.Par_infer
module Sc = Fsdata_core.Shape_compile
open Generators
open Fault_inject

let render tv = Json.to_string (Sc.to_data tv)
let tvalue = Alcotest.testable Sc.pp_tvalue Sc.equal_tvalue

(* [Sc.parse] on a malformed document must raise the interpreted
   parser's legacy exception with identical position and message. *)
let legacy_parity compiled t =
  match Sc.parse compiled t with
  | exception Json.Parse_error { line; column; message } -> (
      match Json.parse t with
      | exception Json.Parse_error { line = l'; column = c'; message = m' } ->
          line = l' && column = c' && String.equal message m'
      | _ -> false)
  | _ -> false

(* The specification of [Sc.parse] on a parseable document: direct iff
   the normalized value has the shape, fallback with the [diagnose]
   diagnostic otherwise. Returns [true] when the compiled outcome agrees
   field-by-field and byte-for-byte. *)
let outcome_agrees sigma compiled text =
  let n = Prim.normalize (Json.parse text) in
  match (Sc.parse compiled text, Sc.diagnose sigma n) with
  | Sc.Direct v, None ->
      let r = Sc.convert sigma n in
      Sc.equal_tvalue v r && String.equal (render v) (render r)
  | Sc.Fallback (v, d), Some d' ->
      Sc.equal_tvalue v (Sc.Vany n) && diag_equal d d'
  | Sc.Direct _, Some _ ->
      QCheck2.Test.fail_reportf "direct decode of a non-conforming document:\n%s"
        text
  | Sc.Fallback (_, d), None ->
      QCheck2.Test.fail_reportf "fallback on a conforming document (%s):\n%s"
        d.Diagnostic.message text

(* ----- Conforming corpora: shapes drive their own witnesses ----- *)

(* [Shape_gen] samples conform to the shape they were generated from, so
   after a JSON round-trip most documents take the direct path (record
   names and normalization corner cases send a few through fallback —
   which the differential check covers just as well). The corpus-level
   decode must agree with the per-document one, and the stats must
   account for every document. *)
let prop_corpus_differential =
  QCheck2.Test.make ~count:1000
    ~name:"compiled corpus ≡ generic parse+convert (byte-for-byte)"
    ~print:print_shape gen_core_shape
    (fun s ->
      let sigma = Shape.hcons s in
      match Shape_gen.samples ~count:3 sigma with
      | exception Invalid_argument _ -> true (* ⊥-shaped: no witness *)
      | docs ->
          let texts = List.map Json.to_string docs in
          let compiled = Sc.compile sigma in
          List.for_all (outcome_agrees sigma compiled) texts
          &&
          let fallbacks = ref [] in
          let vs, st =
            Sc.parse_corpus
              ~on_fallback:(fun d -> fallbacks := d :: !fallbacks)
              compiled
              (String.concat "\n" texts)
          in
          let per_doc = List.map (Sc.parse compiled) texts in
          let expected_fb =
            List.mapi
              (fun i o ->
                match o with
                | Sc.Direct _ -> None
                | Sc.Fallback (_, d) -> Some (Diagnostic.with_index i d))
              per_doc
            |> List.filter_map Fun.id
          in
          List.length vs = List.length texts
          && st.Sc.direct + st.Sc.fallback = List.length texts
          && st.Sc.skipped = 0
          && List.for_all2
               (fun v o ->
                 match o with
                 | Sc.Direct r | Sc.Fallback (r, _) -> Sc.equal_tvalue v r)
               vs per_doc
          && st.Sc.fallback = List.length expected_fb
          && List.for_all2 diag_equal (List.rev !fallbacks) expected_fb)

(* ----- Arbitrary (shape, document) pairs: the fallback path ----- *)

let prop_arbitrary_differential =
  QCheck2.Test.make ~count:1000
    ~name:"compiled ≡ generic on arbitrary (shape, document) pairs"
    ~print:(fun (s, d) -> print_shape s ^ "  ⊢?  " ^ print_data d)
    QCheck2.Gen.(pair gen_core_shape gen_data)
    (fun (s, d) ->
      let sigma = Shape.hcons s in
      outcome_agrees sigma (Sc.compile sigma) (Json.to_string d))

(* ----- The interpreted reference is internally coherent ----- *)

let prop_convert_iff_has_shape =
  QCheck2.Test.make ~count:1000
    ~name:"convert succeeds ⟺ hasShape ⟺ diagnose = None"
    ~print:(fun (s, d) -> print_shape s ^ "  ⊢?  " ^ print_data d)
    QCheck2.Gen.(pair gen_core_shape gen_data)
    (fun (s, d) ->
      let n = Prim.normalize d in
      let ok = Shape_check.has_shape s n in
      (match Sc.convert s n with
      | (_ : Sc.tvalue) -> ok
      | exception Sc.Mismatch -> not ok)
      && Option.is_none (Sc.diagnose s n) = ok)

(* ----- Quarantine parity on fault-injected streams (jobs 1 and 7) ----- *)

let prop_quarantine_parity =
  QCheck2.Test.make ~count:100
    ~name:"malformed docs quarantine ≡ fold_many / tolerant (jobs 1/7)"
    ~print:print_corpus
    (gen_corpus ~faults:stream_safe_faults ())
    (fun c ->
      let src = String.concat "\n" c.texts in
      let sigma =
        Shape.hcons (Infer.shape_of_samples (List.map Json.parse c.clean))
      in
      let compiled = Sc.compile sigma in
      (* interpreted reference: recovering fold_many *)
      let gen_errs = ref [] in
      let docs =
        Json.fold_many
          ~on_error:(fun d ~skipped -> gen_errs := (d, skipped) :: !gen_errs)
          (fun acc ds -> acc @ ds)
          [] src
      in
      let comp_errs = ref [] in
      let vs, st =
        Sc.parse_corpus
          ~on_error:(fun d ~skipped -> comp_errs := (d, skipped) :: !comp_errs)
          compiled src
      in
      let comp_errs = List.rev !comp_errs and gen_errs = List.rev !gen_errs in
      (* same skipped documents, same diagnostics, same raw text *)
      List.length comp_errs = List.length gen_errs
      && List.for_all2
           (fun (d1, s1) (d2, s2) -> diag_equal d1 d2 && String.equal s1 s2)
           comp_errs gen_errs
      && List.map (fun (d, _) -> d.Diagnostic.index) comp_errs
         = List.map Option.some c.faulty
      && st.Sc.skipped = List.length c.faulty
      (* survivors decode to the interpreted survivors' values, in order *)
      && List.length vs = List.length docs
      && List.for_all2
           (fun v d ->
             let n = Prim.normalize d in
             let r =
               match Sc.convert sigma n with
               | v -> v
               | exception Sc.Mismatch -> Sc.Vany n
             in
             Sc.equal_tvalue v r)
           vs docs
      (* a faulty sample raises exactly the interpreted parser's legacy
         exception when decoded standalone *)
      && List.for_all (fun i -> legacy_parity compiled (List.nth c.texts i)) c.faulty
      (* the budgeted tolerant drivers quarantine the same documents *)
      && (let budget =
            match c.faulty with
            | [] -> Diagnostic.Strict
            | l -> Diagnostic.Count (List.length l)
          in
          List.for_all
            (fun jobs ->
              match
                Par_infer.of_json_tolerant ~jobs ~chunk_size:3 ~budget src
              with
              | Error e -> QCheck2.Test.fail_reportf "tolerant failed: %s" e
              | Ok r ->
                  List.map (fun q -> q.Infer.q_index) r.Infer.quarantined
                  = c.faulty
                  && r.Infer.total = List.length c.texts)
            [ 1; 7 ]))

(* ----- Pinned corner cases ----- *)

let int_record = Shape.record Dv.json_record_name [ ("a", Shape.Primitive Shape.Int) ]

(* A mid-document *shape* mismatch aborts the compiled descent partway
   into the document; the driver must rewind, fall back, and leave the
   cursor at the document's end so the successors still decode directly
   — the same resynchronization discipline as [Json.Cursor]'s
   recovering mode. *)
let test_mid_document_mismatch_resyncs () =
  let compiled = Sc.compile (Shape.hcons int_record) in
  let fallbacks = ref [] in
  let vs, st =
    Sc.parse_corpus
      ~on_fallback:(fun d -> fallbacks := d :: !fallbacks)
      compiled
      "{\"a\": 1}\n{\"a\": [true, {\"deep\": 0}]}\n{\"a\": 3}"
  in
  Alcotest.(check int) "two direct" 2 st.Sc.direct;
  Alcotest.(check int) "one fallback" 1 st.Sc.fallback;
  Alcotest.(check int) "nothing skipped" 0 st.Sc.skipped;
  Alcotest.(check (list tvalue))
    "successor documents decode directly after the aborted descent"
    [
      Sc.Vrecord (Dv.json_record_name, [| ("a", Sc.Vint 1) |]);
      Sc.Vany (Json.parse "{\"a\": [true, {\"deep\": 0}]}");
      Sc.Vrecord (Dv.json_record_name, [| ("a", Sc.Vint 3) |]);
    ]
    vs;
  match !fallbacks with
  | [ d ] ->
      Alcotest.(check (option int)) "stream index" (Some 1) d.Diagnostic.index
  | fbs -> Alcotest.failf "expected one fallback, got %d" (List.length fbs)

(* A mid-document *parse* fault resynchronizes at the re-balancing
   brace, exactly like [Json.fold_many] — same skipped text, same
   diagnostic, and the following document survives. *)
let test_mid_document_fault_resyncs () =
  let src = "{\"a\": 1}\n{\"a\" 2}\n{\"a\": 3}" in
  let gen_errs = ref [] in
  let _ =
    Json.fold_many
      ~on_error:(fun d ~skipped -> gen_errs := (d, skipped) :: !gen_errs)
      (fun acc ds -> acc @ ds)
      [] src
  in
  let comp_errs = ref [] in
  let compiled = Sc.compile (Shape.hcons int_record) in
  let vs, st =
    Sc.parse_corpus
      ~on_error:(fun d ~skipped -> comp_errs := (d, skipped) :: !comp_errs)
      compiled src
  in
  Alcotest.(check (list tvalue))
    "clean documents survive"
    [
      Sc.Vrecord (Dv.json_record_name, [| ("a", Sc.Vint 1) |]);
      Sc.Vrecord (Dv.json_record_name, [| ("a", Sc.Vint 3) |]);
    ]
    vs;
  Alcotest.(check int) "one skipped" 1 st.Sc.skipped;
  match (!comp_errs, !gen_errs) with
  | [ (d, skipped) ], [ (d', skipped') ] ->
      Alcotest.(check string) "skipped text" "{\"a\" 2}" skipped;
      Alcotest.(check string) "same skipped text as fold_many" skipped' skipped;
      Alcotest.(check bool) "same diagnostic as fold_many" true
        (diag_equal d d')
  | _ -> Alcotest.fail "expected exactly one skip on each path"

let test_legacy_exception_parity () =
  let compiled = Sc.compile (Shape.hcons int_record) in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "same legacy exception on %s" t)
        true
        (legacy_parity compiled t))
    [
      "{\"a\" 2}" (* missing separator *);
      "{\"a\": 1" (* truncated *);
      "{\"a\": 1} {\"a\": 2}" (* trailing content *);
      "{\"a\": 01}" (* leading zero *);
      "\xff\xfe{\"a\": 1}" (* garbage prefix *);
    ]

let test_duplicate_keys_last_wins () =
  let compiled = Sc.compile (Shape.hcons int_record) in
  let t = "{\"a\": 1, \"a\": 2}" in
  match Sc.parse compiled t with
  | Sc.Direct v ->
      Alcotest.check tvalue "last binding wins, as in Json.parse"
        (Sc.convert int_record (Prim.normalize (Json.parse t)))
        v
  | Sc.Fallback _ -> Alcotest.fail "conforming document fell back"

let test_missing_optional_field_defaults () =
  let sigma =
    Shape.record Dv.json_record_name
      [
        ("a", Shape.Primitive Shape.Int);
        ("b", Shape.nullable (Shape.Primitive Shape.String));
        ("c", Shape.collection (Shape.Primitive Shape.Int));
      ]
  in
  match Sc.parse (Sc.compile (Shape.hcons sigma)) "{\"a\": 7, \"z\": [0]}" with
  | Sc.Direct v ->
      Alcotest.check tvalue "absent nullable/collection fields get defaults"
        (Sc.Vrecord
           ( Dv.json_record_name,
             [| ("a", Sc.Vint 7); ("b", Sc.Vnull); ("c", Sc.Vlist [||]) |] ))
        v
  | Sc.Fallback _ -> Alcotest.fail "conforming document fell back"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_corpus_differential;
    QCheck_alcotest.to_alcotest prop_arbitrary_differential;
    QCheck_alcotest.to_alcotest prop_convert_iff_has_shape;
    QCheck_alcotest.to_alcotest prop_quarantine_parity;
    Alcotest.test_case "mid-document mismatch resyncs" `Quick
      test_mid_document_mismatch_resyncs;
    Alcotest.test_case "mid-document fault resyncs like fold_many" `Quick
      test_mid_document_fault_resyncs;
    Alcotest.test_case "legacy exception parity" `Quick
      test_legacy_exception_parity;
    Alcotest.test_case "duplicate keys: last binding wins" `Quick
      test_duplicate_keys_last_wins;
    Alcotest.test_case "missing optional fields default" `Quick
      test_missing_optional_field_defaults;
  ]
