(* The developer-facing runtime (Typed) and the runtime ops, end-to-end on
   the paper's samples. *)

module Dv = Fsdata_data.Data_value
module Provide = Fsdata_provider.Provide
module Typed = Fsdata_runtime.Typed
module Ops = Fsdata_runtime.Ops

let tc = Alcotest.test_case
let check = Alcotest.check

let people_sample =
  {|[ { "name":"Jan", "age":25 },
      { "name":"Tomas" },
      { "name":"Alexander", "age":3.5 } ]|}

let people () = Result.get_ok (Provide.provide_json people_sample)

let test_people_end_to_end () =
  let p = people () in
  let items = Typed.get_list (Typed.parse p people_sample) in
  check Alcotest.int "three people" 3 (List.length items);
  let names =
    List.map (fun i -> Typed.get_string (Typed.member i "Name")) items
  in
  check (Alcotest.list Alcotest.string) "names" [ "Jan"; "Tomas"; "Alexander" ] names;
  let ages =
    List.map
      (fun i ->
        Option.map Typed.get_float (Typed.get_option (Typed.member i "Age")))
      items
  in
  check
    (Alcotest.list (Alcotest.option (Alcotest.float 1e-9)))
    "ages" [ Some 25.; None; Some 3.5 ] ages

let test_parse_different_data () =
  let p = people () in
  let items =
    Typed.get_list (Typed.parse p {|[ {"name":"New", "age": 1} ]|})
  in
  check Alcotest.int "one person" 1 (List.length items);
  check Alcotest.string "name" "New"
    (Typed.get_string (Typed.member (List.hd items) "Name"))

let test_conversion_errors () =
  let p = people () in
  (* name missing: the documented exception, not a crash *)
  (match Typed.get_list (Typed.parse p {|[ {"age": 3} ]|}) with
  | [ item ] -> (
      match Typed.get_string (Typed.member item "Name") with
      | exception Ops.Conversion_error _ -> ()
      | s -> Alcotest.failf "expected Conversion_error, got %S" s)
  | _ -> Alcotest.fail "expected one item");
  (* malformed input text *)
  (match Typed.parse p "{ not json" with
  | exception Ops.Conversion_error _ -> ()
  | _ -> Alcotest.fail "expected Conversion_error on bad JSON");
  (* wrong accessor *)
  let item = List.hd (Typed.get_list (Typed.parse p people_sample)) in
  match Typed.get_int (Typed.member item "Name") with
  | exception Ops.Conversion_error _ -> ()
  | _ -> Alcotest.fail "expected Conversion_error on get_int of a string"

let test_weather_path () =
  let sample =
    {|{ "main": { "temp": 5, "pressure": 1010 }, "name": "Prague" }|}
  in
  let p = Result.get_ok (Provide.provide_json ~root_name:"W" sample) in
  let w = Typed.parse p sample in
  check (Alcotest.float 1e-9) "temp" 5.0
    Typed.(get_float (member (member w "Main") "Temp"));
  check Alcotest.string "name" "Prague" Typed.(get_string (member w "Name"))

let test_underlying_escape_hatch () =
  let sample = {|{ "a": 1 }|} in
  let p = Result.get_ok (Provide.provide_json sample) in
  let v = Typed.parse p sample in
  match Typed.underlying v with
  | Some (Dv.Record (_, [ ("a", Dv.Int 1) ])) -> ()
  | _ -> Alcotest.fail "underlying data not accessible"

let test_csv_typed () =
  let csv = "A,B\n1,x\n0,y\n" in
  let p = Result.get_ok (Provide.provide_csv csv) in
  let rows = Typed.get_list (Typed.parse p csv) in
  check Alcotest.int "rows" 2 (List.length rows);
  (* A holds 0 and 1 only: provided as bool *)
  check Alcotest.bool "bit column" true
    (Typed.get_bool (Typed.member (List.hd rows) "A"))

let test_xml_typed () =
  let xml = {|<root id="7"><item>one</item><item>two</item></root>|} in
  let p = Result.get_ok (Provide.provide_xml xml) in
  let root = Typed.parse p xml in
  check Alcotest.int "id attribute" 7 (Typed.get_int (Typed.member root "Id"));
  check
    (Alcotest.list Alcotest.string)
    "items"
    [ "one"; "two" ]
    (List.map Typed.get_string (Typed.get_list (Typed.member root "Items")))

let test_date_accessor () =
  let csv = "When\n2012-05-01\n2013-06-02\n" in
  let p = Result.get_ok (Provide.provide_csv csv) in
  let rows = Typed.get_list (Typed.parse p csv) in
  let d = Typed.get_date (Typed.member (List.hd rows) "When") in
  check Alcotest.string "date parsed" "2012-05-01" (Fsdata_data.Date.to_iso8601 d)

(* Ops-level unit tests. *)
let test_ops_direct () =
  check Alcotest.int "conv_int" 5 (Ops.conv_int (Dv.Int 5));
  check (Alcotest.float 1e-9) "conv_float of int" 5. (Ops.conv_float (Dv.Int 5));
  check Alcotest.bool "conv_bit_bool 1" true (Ops.conv_bit_bool (Dv.Int 1));
  (match Ops.conv_int (Dv.String "5") with
  | exception Ops.Conversion_error _ -> ()
  | _ -> Alcotest.fail "conv_int should not coerce strings");
  check
    (Alcotest.list Alcotest.int)
    "conv_elements of null is empty" []
    (Ops.conv_elements Ops.conv_int Dv.Null);
  check (Alcotest.option Alcotest.int) "conv_null" None
    (Ops.conv_null Ops.conv_int Dv.Null);
  check Alcotest.int "select_single"
    1
    (Ops.select_single (Fsdata_core.Shape.Primitive Fsdata_core.Shape.Int)
       Ops.conv_int
       (Dv.List [ Dv.String "s"; Dv.Int 1 ]))

let suite =
  [
    tc "people end-to-end (Section 2.1)" `Quick test_people_end_to_end;
    tc "Parse on different data" `Quick test_parse_different_data;
    tc "conversion errors are the documented exception" `Quick
      test_conversion_errors;
    tc "weather path (Section 1)" `Quick test_weather_path;
    tc "underlying-data escape hatch (Section 6.3)" `Quick
      test_underlying_escape_hatch;
    tc "CSV typed access" `Quick test_csv_typed;
    tc "XML typed access" `Quick test_xml_typed;
    tc "date accessor" `Quick test_date_accessor;
    tc "runtime ops" `Quick test_ops_direct;
  ]

let test_path_helper () =
  let sample = {|{ "main": { "temp": 5 }, "name": "Prague" }|} in
  let p = Result.get_ok (Provide.provide_json sample) in
  let w = Typed.parse p sample in
  check (Alcotest.float 1e-9) "dotted path" 5.0
    (Typed.get_float (Typed.path w "Main.Temp"));
  check Alcotest.string "single segment" "Prague"
    (Typed.get_string (Typed.path w "Name"));
  match Typed.path w "Main.Nope" with
  | exception Ops.Conversion_error _ -> ()
  | _ -> Alcotest.fail "expected Conversion_error on a bad path"

let suite = suite @ [ tc "dotted path helper" `Quick test_path_helper ]
