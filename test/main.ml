let () =
  Alcotest.run "fsdata"
    [
      ("data_value", Test_data_value.suite);
      ("json", Test_json.suite);
      ("xml", Test_xml.suite);
      ("csv", Test_csv.suite);
      ("date", Test_date.suite);
      ("primitive", Test_primitive.suite);
      ("shape", Test_shape.suite);
      ("preference", Test_preference.suite);
      ("csh", Test_csh.suite);
      ("infer", Test_infer.suite);
      ("par_infer", Test_par_infer.suite);
      ("shape_check", Test_shape_check.suite);
      ("foo_eval", Test_foo_eval.suite);
      ("foo_typecheck", Test_foo_typecheck.suite);
      ("naming", Test_naming.suite);
      ("provider", Test_provider.suite);
      ("safety", Test_safety.suite);
      ("stability", Test_stability.suite);
      ("runtime", Test_runtime.suite);
      ("codegen", Test_codegen.suite);
      ("integration", Test_integration.suite);
      ("xml_global", Test_xml_global.suite);
      ("json_schema", Test_json_schema.suite);
      ("shape_parser", Test_shape_parser.suite);
      ("csv_schema", Test_csv_schema.suite);
      ("foo_parser", Test_foo_parser.suite);
      ("eval_fast", Test_eval_fast.suite);
      ("shape_gen", Test_shape_gen.suite);
      ("tag_mult", Test_tag_mult.suite);
      ("safety_xml", Test_safety_xml.suite);
      ("migrate", Test_migrate.suite);
      ("explain", Test_explain.suite);
      ("html", Test_html.suite);
      ("fault", Test_fault.suite);
    ]
