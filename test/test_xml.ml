(* XML parser and Section 6.2 data-mapping tests. *)

module Dv = Fsdata_data.Data_value
module Xml = Fsdata_data.Xml
open Generators

let check = Alcotest.check
let tc = Alcotest.test_case

let test_basic () =
  let t = Xml.parse {|<a x="1" y="two"><b/><c>text</c></a>|} in
  check Alcotest.string "name" "a" t.Xml.name;
  check
    Alcotest.(list (pair string string))
    "attributes"
    [ ("x", "1"); ("y", "two") ]
    t.Xml.attributes;
  check Alcotest.int "children" 2 (List.length t.Xml.children)

let test_entities () =
  let t = Xml.parse {|<a>&lt;b&gt; &amp; &quot;c&quot; &apos; &#65; &#x42;</a>|} in
  check Alcotest.string "decoded" {|<b> & "c" ' A B|} (Xml.text_content t)

let test_cdata () =
  let t = Xml.parse {|<a><![CDATA[raw <not> markup & stuff]]></a>|} in
  check Alcotest.string "cdata" "raw <not> markup & stuff" (Xml.text_content t)

let test_comments_pi_doctype () =
  let t =
    Xml.parse
      {|<?xml version="1.0"?>
<!DOCTYPE doc [ <!ELEMENT doc ANY> ]>
<!-- a comment -->
<doc><!-- inner --><a/>text<?pi data?></doc>
<!-- trailing -->|}
  in
  check Alcotest.string "root" "doc" t.Xml.name;
  check Alcotest.int "children: element + text" 2 (List.length t.Xml.children)

let test_attribute_entities () =
  let t = Xml.parse {|<a title="x &amp; y"/>|} in
  check Alcotest.(list (pair string string)) "attr" [ ("title", "x & y") ]
    t.Xml.attributes

let expect_error ?(contains = "") src () =
  match Xml.parse_result src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
      if contains <> "" && not (Astring.String.is_infix ~affix:contains msg)
      then Alcotest.failf "error %S does not mention %S" msg contains

(* ----- Section 6.2 mapping ----- *)

let test_to_data_paper_example () =
  (* <root id="1"><item>Hello!</item></root>
     becomes root {id ↦ 1, • ↦ [item {• ↦ "Hello!"}]} *)
  let t = Xml.parse {|<root id="1"><item>Hello!</item></root>|} in
  let expected =
    Dv.Record
      ( "root",
        [
          ("id", Dv.Int 1);
          ( Dv.body_field,
            Dv.List [ Dv.Record ("item", [ (Dv.body_field, Dv.String "Hello!") ]) ]
          );
        ] )
  in
  check data_testable "paper example" expected (Xml.to_data t)

let test_to_data_raw () =
  let t = Xml.parse {|<root id="1"/>|} in
  check data_testable "unconverted attributes stay strings"
    (Dv.Record ("root", [ ("id", Dv.String "1") ]))
    (Xml.to_data ~convert_primitives:false t)

let test_to_data_empty_body () =
  let t = Xml.parse {|<image source="xml.png" />|} in
  check data_testable "no body field for empty elements"
    (Dv.Record ("image", [ ("source", Dv.String "xml.png") ]))
    (Xml.to_data t)

let test_to_data_mixed_content () =
  (* Mixed-content text is not exposed through the data mapping
     (Section 6.3 keeps it behind the raw-XElement escape hatch). *)
  let t = Xml.parse {|<p>before <b>bold</b> after</p>|} in
  check data_testable "text next to elements is dropped"
    (Dv.Record
       ("p", [ (Dv.body_field, Dv.List [ Dv.Record ("b", [ (Dv.body_field, Dv.String "bold") ]) ]) ]))
    (Xml.to_data t);
  check Alcotest.string "but text_content still sees it" "before bold after"
    (Xml.text_content t)

let test_serialize_roundtrip () =
  let src = {|<doc a="1&amp;2"><x>hi &lt;there&gt;</x><y/><z>5</z></doc>|} in
  let t = Xml.parse src in
  let t2 = Xml.parse (Xml.to_string t) in
  check data_testable "parse . print . parse stable" (Xml.to_data t)
    (Xml.to_data t2)

let test_namespace_prefixes_kept () =
  let t = Xml.parse {|<ns:a xmlns:ns="urn:x" ns:attr="v"><ns:b/></ns:a>|} in
  check Alcotest.string "prefixed name kept" "ns:a" t.Xml.name

let suite =
  [
    tc "elements and attributes" `Quick test_basic;
    tc "entities" `Quick test_entities;
    tc "CDATA" `Quick test_cdata;
    tc "comments, PIs, DOCTYPE" `Quick test_comments_pi_doctype;
    tc "entities in attributes" `Quick test_attribute_entities;
    tc "error: mismatched tags" `Quick
      (expect_error "<a><b></a></b>" ~contains:"mismatched");
    tc "error: unterminated element" `Quick (expect_error "<a><b></b>");
    tc "error: duplicate attribute" `Quick
      (expect_error {|<a x="1" x="2"/>|} ~contains:"duplicate");
    tc "error: trailing content" `Quick (expect_error "<a/><b/>" ~contains:"trailing");
    tc "error: unknown entity" `Quick (expect_error "<a>&nope;</a>" ~contains:"entity");
    tc "error: '<' in attribute" `Quick (expect_error {|<a x="<"/>|});
    tc "error: no root" `Quick (expect_error "   ");
    tc "to_data: paper example (root/id/item)" `Quick test_to_data_paper_example;
    tc "to_data: unconverted mode" `Quick test_to_data_raw;
    tc "to_data: empty body omitted" `Quick test_to_data_empty_body;
    tc "to_data: mixed content dropped" `Quick test_to_data_mixed_content;
    tc "serialize round-trip" `Quick test_serialize_roundtrip;
    tc "namespace prefixes kept" `Quick test_namespace_prefixes_kept;
  ]

let test_depth_guard () =
  let buf = Buffer.create (20_002 * 3) in
  for _ = 1 to 10_001 do Buffer.add_string buf "<a>" done;
  for _ = 1 to 10_001 do Buffer.add_string buf "</a>" done;
  (match Xml.parse_result (Buffer.contents buf) with
  | Error msg ->
      check Alcotest.bool "mentions nesting" true
        (Astring.String.is_infix ~affix:"nested" msg)
  | Ok _ -> Alcotest.fail "expected depth error");
  let buf = Buffer.create (10_000 * 3) in
  for _ = 1 to 5_000 do Buffer.add_string buf "<a>" done;
  for _ = 1 to 5_000 do Buffer.add_string buf "</a>" done;
  match Xml.parse_result (Buffer.contents buf) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "5000 levels should parse: %s" e

let suite = suite @ [ tc "nesting depth guard" `Quick test_depth_guard ]
