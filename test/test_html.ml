(* The HTML substrate (footnote 10): tag-soup parsing, table extraction
   and the HTML provider over the Section 6.2 CSV machinery. *)

module Html = Fsdata_data.Html
module Xml = Fsdata_data.Xml
module Csv = Fsdata_data.Csv
module Provide = Fsdata_provider.Provide
module Typed = Fsdata_runtime.Typed

let tc = Alcotest.test_case
let check = Alcotest.check

let page =
  {|<!DOCTYPE html>
<html>
<head><title>Air quality</title>
<script>if (x < 3) { alert("<table>not a table</table>"); }</script>
<style>td { color: red }</style>
</head>
<body>
<h1>Readings &amp; stations</h1>
<p>Unclosed paragraph
<table id="readings">
  <caption>Daily readings</caption>
  <tr><th>Ozone</th><th>Temp</th><th>Date</th><th>Autofilled</th></tr>
  <tr><td>41</td><td>67</td><td>2012-05-01</td><td>0</td></tr>
  <tr><td>36.3</td><td>72</td><td>2012-05-02</td><td>1</td></tr>
  <tr><td>17.5</td><td>#N/A</td><td>2012-05-04</td><td>0</td></tr>
</table>
<table>
  <tr><td>plain</td><td>1</td></tr>
  <tr><td>rows</td><td>2</td></tr>
</table>
<br>
<img src=logo.png alt="unquoted attr">
</body>
</html>|}

let test_parse_soup () =
  let t = Html.parse page in
  check Alcotest.string "rooted at html" "html" t.Xml.name;
  (* the script's fake <table> was swallowed as raw text *)
  check Alcotest.int "exactly two real tables" 2
    (List.length (Html.tables t));
  (* unquoted attribute survived *)
  let imgs =
    let rec find (e : Xml.tree) =
      (if e.Xml.name = "img" then [ e ] else [])
      @ List.concat_map
          (function Xml.Element c -> find c | _ -> [])
          e.Xml.children
    in
    find t
  in
  check Alcotest.int "one img" 1 (List.length imgs);
  check
    (Alcotest.option Alcotest.string)
    "unquoted attribute value" (Some "logo.png")
    (List.assoc_opt "src" (List.hd imgs).Xml.attributes)

let test_tables () =
  match Html.tables_of_string page with
  | [ readings; anon ] ->
      check (Alcotest.option Alcotest.string) "id" (Some "readings")
        readings.Html.id;
      check (Alcotest.option Alcotest.string) "caption" (Some "Daily readings")
        readings.Html.caption;
      check
        (Alcotest.list Alcotest.string)
        "th headers"
        [ "Ozone"; "Temp"; "Date"; "Autofilled" ]
        readings.Html.table.Csv.headers;
      check Alcotest.int "three data rows" 3
        (List.length readings.Html.table.Csv.rows);
      (* headerless table: first row becomes the header *)
      check
        (Alcotest.list Alcotest.string)
        "first-row headers" [ "plain"; "1" ] anon.Html.table.Csv.headers;
      check Alcotest.int "one data row" 1 (List.length anon.Html.table.Csv.rows)
  | ts -> Alcotest.failf "expected two tables, got %d" (List.length ts)

let test_entities_and_recovery () =
  let t = Html.parse "<p>a &amp; b<div>nested</p>text</div>" in
  check Alcotest.bool "parses without failure" true (t.Xml.name = "body");
  let text = Xml.text_content t in
  check Alcotest.bool "entity decoded" true
    (Astring.String.is_infix ~affix:"a & b" text)

let test_provider () =
  match Provide.provide_html page with
  | Error e -> Alcotest.fail e
  | Ok [ (name, p, table); _ ] ->
      check Alcotest.string "provided name from id" "Readings" name;
      let rows =
        Typed.get_list (Typed.load p (Csv.to_data ~convert_primitives:true table))
      in
      check Alcotest.int "rows" 3 (List.length rows);
      (* the Section 6.2 inference applies: Temp is optional, Autofilled
         is bool, Date is a date *)
      let temps =
        List.map
          (fun r -> Option.map Typed.get_int (Typed.get_option (Typed.member r "Temp")))
          rows
      in
      check
        (Alcotest.list (Alcotest.option Alcotest.int))
        "optional temps" [ Some 67; Some 72; None ] temps;
      check Alcotest.bool "bool autofilled" true
        (Typed.get_bool (Typed.member (List.nth rows 1) "Autofilled"));
      check Alcotest.string "date recognized" "2012-05-01"
        (Fsdata_data.Date.to_iso8601
           (Typed.get_date (Typed.member (List.hd rows) "Date")))
  | Ok ts -> Alcotest.failf "expected two provided tables, got %d" (List.length ts)

let test_never_fails () =
  (* arbitrary garbage parses to something *)
  List.iter
    (fun s -> ignore (Html.parse s))
    [ ""; "<"; "<><>"; "</nope>"; "<a"; "a<b>c"; "&bogus;"; "<table><tr>" ]

let suite =
  [
    tc "tag-soup parsing" `Quick test_parse_soup;
    tc "table extraction" `Quick test_tables;
    tc "entities and recovery" `Quick test_entities_and_recovery;
    tc "HTML provider (footnote 10)" `Quick test_provider;
    tc "total on garbage" `Quick test_never_fails;
  ]
