(* Unit tests for the hand-rolled HTTP/1.1 request parser
   (lib/serve/http.ml), driven through in-memory string readers — the
   same code path the live server runs on sockets. *)

module Http = Fsdata_serve.Http

let check = Alcotest.check
let tc = Alcotest.test_case

let parse ?limits s = Http.read_request ?limits (Http.reader_of_string s)

let get_request ?limits s =
  match parse ?limits s with
  | Ok (Some r) -> r
  | Ok None -> Alcotest.fail "expected a request, got end of stream"
  | Error e -> Alcotest.failf "expected a request, got %d %s" e.status e.reason

let get_error ?limits s =
  match parse ?limits s with
  | Error e -> e
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_simple_get () =
  let r = get_request "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n" in
  check Alcotest.string "method" "GET" r.Http.meth;
  check Alcotest.string "path" "/healthz" r.Http.path;
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "no query" [] r.Http.query;
  check Alcotest.string "body" "" r.Http.body;
  check Alcotest.bool "1.1 is keep-alive by default" true (Http.keep_alive r);
  (* header names are lowercased, lookup is case-insensitive *)
  check (Alcotest.option Alcotest.string) "host header" (Some "localhost")
    (Http.header r "HOST")

let test_query_decoding () =
  let r =
    get_request "GET /infer?format=json&max-errors=5%25&note=a+b%41 HTTP/1.1\r\n\r\n"
  in
  check (Alcotest.option Alcotest.string) "plain" (Some "json")
    (Http.query_param r "format");
  check (Alcotest.option Alcotest.string) "percent escape" (Some "5%")
    (Http.query_param r "max-errors");
  check (Alcotest.option Alcotest.string) "+ is space, %41 is A" (Some "a bA")
    (Http.query_param r "note");
  check (Alcotest.option Alcotest.string) "absent param" None
    (Http.query_param r "jobs")

let test_percent_decode_malformed () =
  check Alcotest.string "bad hex kept verbatim" "%zz%4" (Http.percent_decode "%zz%4");
  check Alcotest.string "good escape" "A b" (Http.percent_decode "%41+b")

let test_post_body_and_pipelining () =
  let reader =
    Http.reader_of_string
      ("POST /infer HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello"
      ^ "GET /metrics HTTP/1.1\r\n\r\n")
  in
  (match Http.read_request reader with
  | Ok (Some r) ->
      check Alcotest.string "first body" "hello" r.Http.body;
      check Alcotest.string "first path" "/infer" r.Http.path
  | _ -> Alcotest.fail "first request");
  (match Http.read_request reader with
  | Ok (Some r) ->
      check Alcotest.string "second path after body" "/metrics" r.Http.path
  | _ -> Alcotest.fail "second pipelined request");
  match Http.read_request reader with
  | Ok None -> ()
  | _ -> Alcotest.fail "clean end of stream after the pipeline"

let test_bare_lf_lines () =
  let r = get_request "GET /x HTTP/1.1\nhost: y\n\n" in
  check Alcotest.string "path with bare LF" "/x" r.Http.path;
  check (Alcotest.option Alcotest.string) "header with bare LF" (Some "y")
    (Http.header r "host")

let test_keep_alive_semantics () =
  let ka s = Http.keep_alive (get_request s) in
  check Alcotest.bool "1.1 default" true (ka "GET / HTTP/1.1\r\n\r\n");
  check Alcotest.bool "1.1 close" false
    (ka "GET / HTTP/1.1\r\nConnection: Close\r\n\r\n");
  check Alcotest.bool "1.0 default" false (ka "GET / HTTP/1.0\r\n\r\n");
  check Alcotest.bool "1.0 opt-in" true
    (ka "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")

let test_malformed_request_line () =
  check Alcotest.int "garbage" 400 (get_error "GARBAGE\r\n\r\n").Http.status;
  check Alcotest.int "two tokens" 400 (get_error "GET /\r\n\r\n").Http.status;
  check Alcotest.int "empty method" 400
    (get_error " / HTTP/1.1\r\n\r\n").Http.status

let test_unknown_version () =
  check Alcotest.int "HTTP/2.0" 505 (get_error "GET / HTTP/2.0\r\n\r\n").Http.status

let test_oversized_request_line () =
  let limits = { Http.default_limits with Http.max_request_line = 32 } in
  let e = get_error ~limits ("GET /" ^ String.make 100 'a' ^ " HTTP/1.1\r\n\r\n") in
  check Alcotest.int "431" 431 e.Http.status

let test_oversized_header () =
  let limits = { Http.default_limits with Http.max_header_line = 32 } in
  let e =
    get_error ~limits
      ("GET / HTTP/1.1\r\nx: " ^ String.make 100 'v' ^ "\r\n\r\n")
  in
  check Alcotest.int "431" 431 e.Http.status

let test_too_many_headers () =
  let limits = { Http.default_limits with Http.max_header_count = 3 } in
  let headers =
    String.concat "" (List.init 5 (fun i -> Printf.sprintf "h%d: v\r\n" i))
  in
  let e = get_error ~limits ("GET / HTTP/1.1\r\n" ^ headers ^ "\r\n") in
  check Alcotest.int "431" 431 e.Http.status

let test_malformed_header () =
  check Alcotest.int "no colon" 400
    (get_error "GET / HTTP/1.1\r\nnocolon\r\n\r\n").Http.status;
  check Alcotest.int "space in name" 400
    (get_error "GET / HTTP/1.1\r\nbad name: v\r\n\r\n").Http.status

let test_truncated_body () =
  let e = get_error "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc" in
  check Alcotest.int "400 on short body" 400 e.Http.status;
  let e2 = get_error "GET / HTTP/1.1\r\nhost: x" in
  check Alcotest.int "400 on missing terminator" 400 e2.Http.status;
  let e3 = get_error "GET / HTTP/1.1\r\nhost: x\r\n" in
  check Alcotest.int "400 on missing blank line" 400 e3.Http.status

let test_content_length_validation () =
  check Alcotest.int "malformed" 400
    (get_error "POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n").Http.status;
  check Alcotest.int "negative" 400
    (get_error "POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n").Http.status;
  let limits = { Http.default_limits with Http.max_body = 4 } in
  check Alcotest.int "over limit" 413
    (get_error ~limits "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\n0123456789")
      .Http.status

let test_transfer_encoding_rejected () =
  let e =
    get_error "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
  in
  check Alcotest.int "501" 501 e.Http.status

let test_header_line_limit_boundary () =
  let limits = { Http.default_limits with Http.max_header_line = 32 } in
  let pad n = String.make n 'v' in
  (* "h: " + 28 value bytes + CR is exactly the 32-byte limit (the CR
     counts; only the LF is outside the measured line) *)
  let r = get_request ~limits ("GET / HTTP/1.1\r\nh: " ^ pad 28 ^ "\r\n\r\n") in
  check (Alcotest.option Alcotest.string) "a line at the limit parses"
    (Some (pad 28)) (Http.header r "h");
  let e0 = get_error ~limits ("GET / HTTP/1.1\r\nh: " ^ pad 29 ^ "\r\n\r\n") in
  check Alcotest.int "431 one byte over, terminated" 431 e0.Http.status;
  (* one byte over, never terminated: oversized, not truncated *)
  let e = get_error ~limits ("GET / HTTP/1.1\r\nh: " ^ pad 30) in
  check Alcotest.int "431 over the limit without CRLF" 431 e.Http.status;
  (* exactly at the limit but the stream ends with no terminator: a
     truncated request, not an oversized one *)
  let e2 = get_error ~limits ("GET / HTTP/1.1\r\nh: " ^ pad 29) in
  check Alcotest.int "400 at the limit without CRLF" 400 e2.Http.status

(* ----- read_request_stream: bodies left on the wire ----- *)

let test_stream_body_rest () =
  let r =
    Http.reader_of_string
      ("POST /infer HTTP/1.1\r\ncontent-length: 10\r\n\r\n0123456789"
      ^ "GET /healthz HTTP/1.1\r\n\r\n")
  in
  match Http.read_request_stream ~stream_over:4 r with
  | Ok (Some (req, Some rest)) ->
      check Alcotest.string "body left on the wire" "" req.Http.body;
      check Alcotest.int "declared bytes remaining" 10 (Http.body_remaining rest);
      let chunk = Http.read_body_chunk rest in
      check Alcotest.bool "first chunk is nonempty" true (String.length chunk > 0);
      let all = chunk ^ Http.read_body_all rest in
      check Alcotest.string "streamed body round-trips" "0123456789" all;
      check Alcotest.int "drained" 0 (Http.body_remaining rest);
      check Alcotest.string "chunks after the drain are empty" ""
        (Http.read_body_chunk rest);
      (* the connection is usable again once the body is consumed *)
      (match Http.read_request r with
      | Ok (Some nxt) ->
          check Alcotest.string "next pipelined request parses" "/healthz"
            nxt.Http.path
      | _ -> Alcotest.fail "expected a pipelined request after the body")
  | _ -> Alcotest.fail "expected a streamed body"

let test_stream_small_body_buffered () =
  let r = Http.reader_of_string "POST / HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc" in
  match Http.read_request_stream ~stream_over:4 r with
  | Ok (Some (req, None)) ->
      check Alcotest.string "at or under the threshold buffers" "abc" req.Http.body
  | _ -> Alcotest.fail "expected a buffered body"

let test_stream_reserve_admission () =
  let parse ~reserve s =
    Http.read_request_stream ~reserve (Http.reader_of_string s)
  in
  (* the declared length is offered to [reserve] before any body byte *)
  let offered = ref 0 in
  (match
     parse
       ~reserve:(fun n ->
         offered := n;
         true)
       "POST / HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc"
   with
  | Ok (Some (req, None)) ->
      check Alcotest.int "reserve saw the declared length" 3 !offered;
      check Alcotest.string "admitted body reads" "abc" req.Http.body
  | _ -> Alcotest.fail "expected an admitted request");
  (* refusal is a 503 before the body is touched *)
  (match
     parse ~reserve:(fun _ -> false)
       "POST / HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc"
   with
  | Error e ->
      check Alcotest.int "refused admission is 503" 503 e.Http.status;
      check Alcotest.bool "names the budget" true
        (Astring.String.is_infix ~affix:"budget" e.Http.reason)
  | _ -> Alcotest.fail "expected a 503");
  (* bodiless requests never consult the budget *)
  match parse ~reserve:(fun _ -> false) "GET / HTTP/1.1\r\n\r\n" with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "expected a bodiless request to pass"

let test_stream_truncated_body () =
  let r =
    Http.reader_of_string "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\n012345"
  in
  match Http.read_request_stream ~stream_over:4 r with
  | Ok (Some (_, Some rest)) -> (
      match Http.read_body_all rest with
      | _ -> Alcotest.fail "expected the truncation to surface"
      | exception Http.Bad e ->
          check Alcotest.int "peer closing mid-stream is a 400" 400 e.Http.status)
  | _ -> Alcotest.fail "expected a streamed body"

let test_end_of_stream () =
  (match parse "" with
  | Ok None -> ()
  | _ -> Alcotest.fail "empty stream is a clean end");
  match parse "\r\n" with
  | Ok None -> ()
  | _ -> Alcotest.fail "a stray blank line then EOF is a clean end"

let test_response_serialization () =
  let resp =
    Http.response ~headers:[ ("x-extra", "1") ] ~status:200 "{\"ok\":true}"
  in
  let wire = Http.serialize_response ~keep_alive:true resp in
  let expect =
    "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
     content-length: 11\r\nconnection: keep-alive\r\nx-extra: 1\r\n\r\n\
     {\"ok\":true}"
  in
  check Alcotest.string "wire bytes (no Date header)" expect wire;
  let closed = Http.serialize_response ~keep_alive:false resp in
  check Alcotest.bool "connection: close variant" true
    (Astring.String.is_infix ~affix:"connection: close\r\n" closed)

let suite =
  [
    tc "simple GET" `Quick test_simple_get;
    tc "query decoding" `Quick test_query_decoding;
    tc "percent-decode malformed escapes" `Quick test_percent_decode_malformed;
    tc "POST body and pipelining" `Quick test_post_body_and_pipelining;
    tc "bare LF line endings" `Quick test_bare_lf_lines;
    tc "keep-alive semantics" `Quick test_keep_alive_semantics;
    tc "malformed request line" `Quick test_malformed_request_line;
    tc "unknown protocol version" `Quick test_unknown_version;
    tc "oversized request line" `Quick test_oversized_request_line;
    tc "oversized header line" `Quick test_oversized_header;
    tc "too many headers" `Quick test_too_many_headers;
    tc "malformed header line" `Quick test_malformed_header;
    tc "truncated requests" `Quick test_truncated_body;
    tc "content-length validation" `Quick test_content_length_validation;
    tc "transfer-encoding rejected" `Quick test_transfer_encoding_rejected;
    tc "header line at the limit boundary" `Quick test_header_line_limit_boundary;
    tc "streamed body rest" `Quick test_stream_body_rest;
    tc "small bodies stay buffered" `Quick test_stream_small_body_buffered;
    tc "reserve hook gates admission" `Quick test_stream_reserve_admission;
    tc "truncated streamed body" `Quick test_stream_truncated_body;
    tc "clean end of stream" `Quick test_end_of_stream;
    tc "response serialization" `Quick test_response_serialization;
  ]
