(* Relative safety through the full XML pipeline: random XML samples,
   local and global provision, deep member walks on the sample itself and
   on same-shaped variants. Also Theorem 3 in practical mode over JSON. *)

module Dv = Fsdata_data.Data_value
module Xml = Fsdata_data.Xml
module Infer = Fsdata_core.Infer
module Provide = Fsdata_provider.Provide
open Fsdata_foo.Syntax
module Eval = Fsdata_foo.Eval
module Fast = Fsdata_foo.Eval_fast
open Generators

let tc = Alcotest.test_case

(* Deep walk using the big-step evaluator (faster; equivalence with the
   small-step machine is established in test_eval_fast.ml). *)
let rec walk classes (v : Fast.value) (t : ty) : (unit, string) result =
  match t with
  | TInt | TFloat | TBool | TString | TDate | TData | TArrow _ -> Ok ()
  | TOption t' -> (
      match v with
      | Fast.VNone -> Ok ()
      | Fast.VSome v' -> walk classes v' t'
      | _ -> Error "option expected")
  | TList t' ->
      let rec go = function
        | Fast.VNil -> Ok ()
        | Fast.VCons (x, rest) -> (
            match walk classes x t' with Ok () -> go rest | e -> e)
        | _ -> Error "list expected"
      in
      go v
  | TClass c -> (
      match find_class classes c with
      | None -> Error ("unknown class " ^ c)
      | Some cls ->
          List.fold_left
            (fun acc (m : member_def) ->
              match acc with
              | Error _ -> acc
              | Ok () -> (
                  match Fast.member classes v m.member_name with
                  | mv -> walk classes mv m.member_ty
                  | exception Fast.Stuck reason ->
                      Error (Printf.sprintf "%s.%s stuck: %s" c m.member_name reason)
                  | exception Fast.Foo_exn ->
                      Error (Printf.sprintf "%s.%s raised" c m.member_name)))
            (Ok ()) cls.members)

let walk_provided (p : Provide.t) data =
  match Fast.eval p.Provide.classes [] (Provide.apply p data) with
  | v -> walk p.Provide.classes v p.Provide.root_ty
  | exception Fast.Stuck reason -> Error ("conversion stuck: " ^ reason)
  | exception Fast.Foo_exn -> Error "conversion raised"

let prop_xml_local_safety =
  QCheck2.Test.make
    ~name:"XML pipeline (local): provided code total on the sample"
    ~count:250 ~print:print_xml gen_xml_tree (fun tree ->
      let text = Xml.to_string tree in
      match Provide.provide_xml text with
      | Error _ -> false
      | Ok p ->
          let runtime = Xml.to_data ~convert_primitives:true tree in
          walk_provided p runtime = Ok ())

let prop_xml_global_safety =
  QCheck2.Test.make
    ~name:"XML pipeline (global): provided code total on the sample"
    ~count:250 ~print:print_xml gen_xml_tree (fun tree ->
      let text = Xml.to_string tree in
      match Provide.provide_xml_global [ text ] with
      | Error _ -> false
      | Ok p ->
          let runtime = Xml.to_data ~convert_primitives:true tree in
          walk_provided p runtime = Ok ())

let prop_xml_multi_sample =
  QCheck2.Test.make
    ~name:"XML pipeline: merged samples each remain readable" ~count:150
    ~print:(fun ts -> String.concat "\n" (List.map print_xml ts))
    QCheck2.Gen.(list_size (int_range 1 3) gen_xml_tree)
    (fun trees ->
      (* same-named roots so the samples merge *)
      let trees =
        List.map (fun (t : Xml.tree) -> { t with Xml.name = "doc" }) trees
      in
      let texts = List.map Xml.to_string trees in
      match Infer.of_xml_samples texts with
      | Error _ -> false
      | Ok shape ->
          let p = Provide.provide ~format:`Xml shape in
          List.for_all
            (fun tree ->
              walk_provided p (Xml.to_data ~convert_primitives:true tree) = Ok ())
            trees)

(* CSV pipeline safety: every row of the sample is readable. *)
let gen_csv_text =
  let open QCheck2.Gen in
  let* cols = int_range 1 4 in
  let* rows = int_range 1 6 in
  let* cells = list_size (return (cols * rows)) gen_xml_literal in
  let header = String.concat "," (List.init cols (fun i -> Printf.sprintf "C%d" i)) in
  let body =
    List.init rows (fun r ->
        String.concat ","
          (List.init cols (fun c -> List.nth cells ((r * cols) + c))))
  in
  return (header ^ "\n" ^ String.concat "\n" body ^ "\n")

let prop_csv_safety =
  QCheck2.Test.make
    ~name:"CSV pipeline: provided code total on the sample" ~count:200
    ~print:(fun s -> s) gen_csv_text (fun text ->
      match Provide.provide_csv text with
      | Error _ -> false
      | Ok p -> (
          match Fsdata_data.Csv.parse_result text with
          | Error _ -> false
          | Ok table ->
              walk_provided p (Fsdata_data.Csv.to_data ~convert_primitives:true table)
              = Ok ()))

(* Theorem 3 in practical mode: the user-program generator from
   test_safety, but over practical shapes and normalized inputs. *)
let theorem3_practical_gen =
  let open QCheck2.Gen in
  let* samples = list_size (int_range 1 3) gen_data in
  let shape = Infer.shape_of_samples ~mode:`Practical samples in
  let p = Provide.provide ~format:`Json shape in
  let* program = Test_safety.gen_user_program p.Provide.classes p.Provide.root_ty in
  let* idx = int_range 0 (List.length samples - 1) in
  return (samples, List.nth samples idx, program)

let prop_theorem3_practical =
  QCheck2.Test.make
    ~name:"Theorem 3 (practical): user programs safe on normalized samples"
    ~count:250
    ~print:(fun (samples, input, program) ->
      Fmt.str "samples: %s@.input: %s@.program: %a"
        (String.concat " ; " (List.map print_data samples))
        (print_data input) pp_expr program)
    theorem3_practical_gen
    (fun (samples, input, program) ->
      let shape = Infer.shape_of_samples ~mode:`Practical samples in
      let p = Provide.provide ~format:`Json shape in
      let input = Fsdata_data.Primitive.normalize input in
      let whole = subst "y" (Provide.apply p input) program in
      match Eval.eval p.Provide.classes whole with
      | Eval.Value (EData (Dv.Bool _)) -> true
      | _ -> false)

(* a concrete end-to-end regression: provider + unknown elements *)
let test_xml_unknown_inputs_safe () =
  let sample = {|<doc><item id="1">x</item><meta kind="a"/></doc>|} in
  let p = Result.get_ok (Provide.provide_xml sample) in
  (* an input with unknown elements and missing attributes still walks *)
  let input = {|<doc><mystery deep="true"/><item id="2">y</item></doc>|} in
  let data = Xml.to_data ~convert_primitives:true (Xml.parse input) in
  match walk_provided p data with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suite =
  [
    QCheck_alcotest.to_alcotest prop_xml_local_safety;
    QCheck_alcotest.to_alcotest prop_xml_global_safety;
    QCheck_alcotest.to_alcotest prop_xml_multi_sample;
    QCheck_alcotest.to_alcotest prop_csv_safety;
    QCheck_alcotest.to_alcotest prop_theorem3_practical;
    tc "unknown XML inputs are safe" `Quick test_xml_unknown_inputs_safe;
  ]
