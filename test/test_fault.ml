(* The robustness suite: fault-tolerant ingestion under error budgets.

   The central contract, stated as properties over fault-injected corpora
   (see {!Fault_inject}): inference with at most [budget] malformed
   samples quarantined equals strict inference over the clean subset —
   same shape, same totals, and the quarantined indices are exactly the
   corrupted ones — sequentially, in parallel at several job counts, and
   streaming through [Json.fold_many]'s recovering mode. *)

module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json
module Csv = Fsdata_data.Csv
module Xml = Fsdata_data.Xml
module Diagnostic = Fsdata_data.Diagnostic
module Shape = Fsdata_core.Shape
module Infer = Fsdata_core.Infer
module Par_infer = Fsdata_core.Par_infer
module Ops = Fsdata_runtime.Ops
open Generators
open Fault_inject

let contains ~affix s = Astring.String.is_infix ~affix s

(* the job counts the acceptance criteria name: sequential, even split,
   and a count that does not divide typical corpus sizes *)
let jobs_grid = [ 1; 2; 7 ]

(* ----- The quarantine contract ----- *)

let report_matches (c : corpus) expect = function
  | Error e -> QCheck2.Test.fail_reportf "tolerant inference failed: %s" e
  | Ok (r : Infer.report) ->
      Shape.equal r.Infer.shape expect
      && r.Infer.total = List.length c.texts
      && List.map (fun q -> q.Infer.q_index) r.Infer.quarantined = c.faulty
      && List.for_all2
           (fun q i -> q.Infer.q_diagnostic.Diagnostic.index = Some i)
           r.Infer.quarantined c.faulty

let budget_for c =
  match List.length c.faulty with
  | 0 -> Diagnostic.Strict
  | k -> Diagnostic.Count k

let prop_samples_tolerant =
  QCheck2.Test.make ~count:100
    ~name:"k ≤ budget faults ≡ clean subset (samples, jobs 1/2/7)"
    ~print:print_corpus (gen_corpus ())
    (fun c ->
      let budget = budget_for c in
      let expect = Infer.shape_of_samples (List.map Json.parse c.clean) in
      report_matches c expect (Infer.of_json_samples_tolerant ~budget c.texts)
      && List.for_all
           (fun jobs ->
             report_matches c expect
               (Par_infer.of_json_samples_tolerant ~jobs ~budget c.texts))
           jobs_grid
      (* one fault over budget must fail the whole run *)
      && (c.faulty = []
         ||
         let tight = Diagnostic.Count (List.length c.faulty - 1) in
         Result.is_error (Infer.of_json_samples_tolerant ~budget:tight c.texts)
         && Result.is_error
              (Par_infer.of_json_samples_tolerant ~jobs:2 ~budget:tight c.texts)
         ))

let prop_stream_tolerant =
  QCheck2.Test.make ~count:100
    ~name:"k ≤ budget faults ≡ clean subset (streaming, jobs 1/2/7)"
    ~print:print_corpus
    (gen_corpus ~faults:stream_safe_faults ())
    (fun c ->
      let budget = budget_for c in
      let src = String.concat "\n" c.texts in
      let expect = Infer.shape_of_samples (List.map Json.parse c.clean) in
      report_matches c expect (Infer.of_json_tolerant ~budget src)
      && List.for_all
           (fun jobs ->
             report_matches c expect
               (Par_infer.of_json_tolerant ~jobs ~chunk_size:3 ~budget src))
           jobs_grid)

let prop_xml_tolerant =
  QCheck2.Test.make ~count:80
    ~name:"k ≤ budget faults ≡ clean subset (XML samples)"
    ~print:print_corpus (gen_xml_corpus ())
    (fun c ->
      let budget = budget_for c in
      let expect =
        Infer.shape_of_samples ~mode:`Xml
          (List.map
             (fun t -> Xml.to_data ~convert_primitives:false (Xml.parse t))
             c.clean)
      in
      report_matches c expect (Infer.of_xml_samples_tolerant ~budget c.texts)
      && report_matches c expect
           (Par_infer.of_xml_samples_tolerant ~jobs:2 ~budget c.texts))

(* ----- Compiled-parser parity under error budgets ----- *)

module Sc = Fsdata_core.Shape_compile
module Prim = Fsdata_data.Primitive

(* Mixed corpora separate the two failure currencies: an *unparseable*
   document is quarantined (eating into the error budget) identically on
   the compiled and interpreted paths, while a parseable-but-deviant
   document is data — the compiled decoder falls back to the generic
   path with a conformance diagnostic and must never touch the budget. *)
let prop_compiled_ingestion_parity =
  QCheck2.Test.make ~count:100
    ~name:"compiled ingestion ≡ interpreted under budgets (jobs 1/7)"
    ~print:print_mixed_corpus (gen_mixed_corpus ())
    (fun m ->
      let src = String.concat "\n" m.m_texts in
      let sigma =
        Shape.hcons (Infer.shape_of_samples (List.map Json.parse m.m_clean))
      in
      let compiled = Sc.compile sigma in
      (* interpreted reference: recovering fold_many *)
      let gen_errs = ref [] in
      let docs =
        Json.fold_many
          ~on_error:(fun d ~skipped -> gen_errs := (d, skipped) :: !gen_errs)
          (fun acc ds -> acc @ ds)
          [] src
      in
      let comp_errs = ref [] and fbs = ref [] in
      let vs, st =
        Sc.parse_corpus
          ~on_fallback:(fun d -> fbs := d :: !fbs)
          ~on_error:(fun d ~skipped -> comp_errs := (d, skipped) :: !comp_errs)
          compiled src
      in
      let comp_errs = List.rev !comp_errs
      and gen_errs = List.rev !gen_errs
      and fbs = List.rev !fbs in
      (* survivors, paired with their global stream indices *)
      let surviving =
        List.init (List.length m.m_texts) Fun.id
        |> List.filter (fun i -> not (List.mem i m.m_malformed))
        |> fun idx -> List.combine idx docs
      in
      let expected_fb =
        List.filter_map
          (fun (i, d) ->
            Option.map (Diagnostic.with_index i)
              (Sc.diagnose sigma (Prim.normalize d)))
          surviving
      in
      (* quarantine parity: same documents, same diagnostics, same text *)
      List.length comp_errs = List.length gen_errs
      && List.for_all2
           (fun (d1, s1) (d2, s2) -> diag_equal d1 d2 && String.equal s1 s2)
           comp_errs gen_errs
      && List.map (fun (d, _) -> d.Diagnostic.index) comp_errs
         = List.map Option.some m.m_malformed
      && st.Sc.skipped = List.length m.m_malformed
      (* survivor values equal the interpreted convert-or-fallback *)
      && List.length vs = List.length docs
      && List.for_all2
           (fun v (_, d) ->
             let n = Prim.normalize d in
             let r =
               match Sc.convert sigma n with
               | v -> v
               | exception Sc.Mismatch -> Sc.Vany n
             in
             Sc.equal_tvalue v r)
           vs surviving
      (* fallbacks carry exactly the strict path's diagnoses, and only
         deviant documents fall back (inference soundness keeps every
         clean document on the direct path) *)
      && st.Sc.fallback = List.length expected_fb
      && List.for_all2 diag_equal fbs expected_fb
      && List.for_all
           (fun (d : Diagnostic.t) ->
             match d.Diagnostic.index with
             | Some i -> List.mem i m.m_deviant
             | None -> false)
           fbs
      && st.Sc.direct = List.length docs - List.length expected_fb
      (* the budget counts malformed documents only: |malformed| absorbs
         the corpus at jobs 1 and 7, deviants notwithstanding; one less
         fails *)
      && (let budget =
            match m.m_malformed with
            | [] -> Diagnostic.Strict
            | l -> Diagnostic.Count (List.length l)
          in
          List.for_all
            (fun jobs ->
              match
                Par_infer.of_json_tolerant ~jobs ~chunk_size:3 ~budget src
              with
              | Error e ->
                  QCheck2.Test.fail_reportf "tolerant ingestion failed: %s" e
              | Ok r ->
                  List.map (fun q -> q.Infer.q_index) r.Infer.quarantined
                  = m.m_malformed
                  && r.Infer.total = List.length m.m_texts)
            [ 1; 7 ])
      && (m.m_malformed = []
         || Result.is_error
              (Par_infer.of_json_tolerant ~jobs:7 ~chunk_size:3
                 ~budget:(Diagnostic.Count (List.length m.m_malformed - 1))
                 src)))

(* ----- Per-sample isolation across domain chunks ----- *)

(* Poisoned samples at a chunk boundary: with jobs=2 over 8 samples the
   split is [0..3][4..7], so indices 3 and 4 poison the last sample of
   one chunk and the first of the next. Quarantine must name the global
   indices whatever the chunking. *)
let test_chunk_boundary_poison () =
  let texts =
    List.init 8 (fun i ->
        if i = 3 || i = 4 then "{\"v\": " else Printf.sprintf "{\"v\": %d}" i)
  in
  let clean = List.filter (fun t -> contains ~affix:"}" t) texts in
  let expect = Infer.shape_of_samples (List.map Json.parse clean) in
  List.iter
    (fun jobs ->
      match
        Par_infer.of_json_samples_tolerant ~jobs ~budget:(Diagnostic.Count 2)
          texts
      with
      | Error e -> Alcotest.failf "jobs=%d: %s" jobs e
      | Ok r ->
          Alcotest.(check (list int))
            (Printf.sprintf "global indices at jobs=%d" jobs)
            [ 3; 4 ]
            (List.map (fun q -> q.Infer.q_index) r.Infer.quarantined);
          List.iter
            (fun (q : Infer.quarantined) ->
              Alcotest.(check (option int))
                "diagnostic carries the global index" (Some q.Infer.q_index)
                q.Infer.q_diagnostic.Diagnostic.index)
            r.Infer.quarantined;
          Alcotest.check shape_testable
            (Printf.sprintf "clean-subset shape at jobs=%d" jobs)
            expect r.Infer.shape;
          Alcotest.(check int) "total counts every sample" 8 r.Infer.total)
    [ 1; 2; 4; 7; 8 ];
  (* the strict parallel driver reports the earliest fault as a result,
     never as an exception escaping Domain.join *)
  match Par_infer.of_json_samples ~jobs:4 texts with
  | Ok _ -> Alcotest.fail "strict driver accepted a poisoned corpus"
  | Error e ->
      let seq =
        match Infer.of_json_samples texts with
        | Error e -> e
        | Ok _ -> Alcotest.fail "sequential driver accepted a poisoned corpus"
      in
      Alcotest.(check string) "earliest-fault parity with sequential" seq e

(* The isolation boundary converts even non-parse exceptions into an
   indexed diagnostic — a crash in one worker's sample must surface as a
   quarantine naming that sample, not kill the run. *)
let test_worker_crash_attributed () =
  match
    Infer.shape_of_sample ~mode:`Practical ~format:Diagnostic.Json ~index:42
      ~parse:(fun _ -> failwith "boom") "{}"
  with
  | Ok _ -> Alcotest.fail "expected the crash to surface"
  | Error d ->
      Alcotest.(check (option int)) "global index" (Some 42) d.Diagnostic.index;
      Alcotest.(check bool) "names the exception" true
        (contains ~affix:"boom" d.Diagnostic.message);
      Alcotest.(check bool) "flagged as unexpected" true
        (contains ~affix:"unexpected error" d.Diagnostic.message)

(* ----- JSON resynchronization ----- *)

let parse_record s = Json.parse s

let test_fold_many_resync_structural () =
  (* the garbage document is balanced: recovery is the '}' that
     re-balances it, and only that document is lost *)
  let errs = ref [] in
  let docs =
    Json.fold_many ~chunk_size:2
      ~on_error:(fun d ~skipped -> errs := (d, skipped) :: !errs)
      (fun acc ds -> acc @ ds)
      []
      "{\"a\": 1}\n{\"a\" 2}\n{\"a\": 3}"
  in
  Alcotest.(check (list data_testable))
    "clean documents survive"
    [ parse_record "{\"a\": 1}"; parse_record "{\"a\": 3}" ]
    docs;
  match !errs with
  | [ (d, skipped) ] ->
      Alcotest.(check (option int)) "stream index" (Some 1) d.Diagnostic.index;
      Alcotest.(check string) "skipped text" "{\"a\" 2}" skipped
  | es -> Alcotest.failf "expected one skip, got %d" (List.length es)

let test_fold_many_resync_newline () =
  (* brackets never re-balance ('{' without '}'): recovery falls back to
     the next line starting with '{' *)
  let errs = ref [] in
  let docs =
    Json.fold_many
      ~on_error:(fun d ~skipped -> errs := (d, skipped) :: !errs)
      (fun acc ds -> acc @ ds)
      [] "{\"a\": tru\n{\"b\": 2}"
  in
  Alcotest.(check (list data_testable))
    "resumes at the next document opener"
    [ parse_record "{\"b\": 2}" ]
    docs;
  match !errs with
  | [ (d, skipped) ] ->
      Alcotest.(check (option int)) "stream index" (Some 0) d.Diagnostic.index;
      Alcotest.(check string) "skipped text" "{\"a\": tru" skipped
  | es -> Alcotest.failf "expected one skip, got %d" (List.length es)

let test_fold_many_truncated_tail () =
  let errs = ref [] in
  let docs =
    Json.fold_many
      ~on_error:(fun d ~skipped -> errs := (d, skipped) :: !errs)
      (fun acc ds -> acc @ ds)
      [] "{\"a\": 1}\n{\"b\":"
  in
  Alcotest.(check (list data_testable))
    "documents before the truncation survive"
    [ parse_record "{\"a\": 1}" ]
    docs;
  match !errs with
  | [ (d, skipped) ] ->
      Alcotest.(check (option int)) "stream index" (Some 1) d.Diagnostic.index;
      Alcotest.(check string) "skipped text" "{\"b\":" skipped
  | es -> Alcotest.failf "expected one skip, got %d" (List.length es)

let test_fold_many_strict_unchanged () =
  (* without [on_error] the first fault still raises the legacy
     exception, exactly as before *)
  match
    Json.fold_many (fun acc ds -> acc @ ds) [] "{\"a\": 1}\n{\"a\" 2}"
  with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Json.Parse_error { line; _ } ->
      Alcotest.(check int) "stream-global line" 2 line

let test_cursor_recovering () =
  let errs = ref [] in
  let cur =
    Json.Cursor.create
      ~on_error:(fun d ~skipped -> errs := (d, skipped) :: !errs)
      ()
  in
  (* the fault is fed split across fragments: its recovery boundary (the
     balancing '}') only arrives in the second feed, so judgement is
     held until then *)
  let d1 = Json.Cursor.feed cur "{\"a\": 1}\n{\"a\" 2" in
  Alcotest.(check (list data_testable))
    "first fragment yields the clean document"
    [ parse_record "{\"a\": 1}" ]
    d1;
  Alcotest.(check int) "fault held back until its boundary arrives" 0
    (List.length !errs);
  let d2 = Json.Cursor.feed cur "}\n{\"a\": 3}" in
  Alcotest.(check (list data_testable))
    "recovery resumes within the second fragment"
    [ parse_record "{\"a\": 3}" ]
    d2;
  let d3 = Json.Cursor.finish cur in
  Alcotest.(check (list data_testable)) "no retained tail" [] d3;
  match !errs with
  | [ (d, skipped) ] ->
      Alcotest.(check (option int)) "stream index" (Some 1) d.Diagnostic.index;
      Alcotest.(check string) "skipped text" "{\"a\" 2}" skipped
  | es -> Alcotest.failf "expected one skip, got %d" (List.length es)

let test_cursor_recovering_finish () =
  let errs = ref [] in
  let cur =
    Json.Cursor.create
      ~on_error:(fun d ~skipped -> errs := (d, skipped) :: !errs)
      ()
  in
  let d1 = Json.Cursor.feed cur "{\"a\": 1}\n{\"b\":" in
  let d2 = Json.Cursor.finish cur in
  Alcotest.(check (list data_testable))
    "clean document parsed"
    [ parse_record "{\"a\": 1}" ]
    (d1 @ d2);
  match !errs with
  | [ (d, _) ] ->
      Alcotest.(check (option int))
        "truncated tail reported at finish" (Some 1) d.Diagnostic.index
  | es -> Alcotest.failf "expected one skip, got %d" (List.length es)

(* ----- CSV column positions ----- *)

let test_csv_unterminated_quote_position () =
  match Csv.parse_diag "a,b\n\"x,y\n" with
  | Ok _ -> Alcotest.fail "expected a diagnostic"
  | Error d ->
      Alcotest.(check int) "line of the opening quote" 2 d.Diagnostic.line;
      Alcotest.(check int) "column of the opening quote" 1 d.Diagnostic.column;
      Alcotest.(check bool) "names the fault" true
        (contains ~affix:"unterminated" d.Diagnostic.message)

let test_csv_arity_position () =
  (* "1,2,3" against a two-column header: the first extra cell is "3",
     at column 5 *)
  (match Csv.parse_diag "a,b\n1,2,3\n" with
  | Ok _ -> Alcotest.fail "expected a diagnostic"
  | Error d ->
      Alcotest.(check int) "line" 2 d.Diagnostic.line;
      Alcotest.(check int) "column of the first extra cell" 5
        d.Diagnostic.column);
  (* a preceding quoted cell spanning lines 2-3 must not throw off the
     positions of the ragged row on line 4 *)
  match Csv.parse_diag "a,b\n\"x\ny\",2\n1,2,3\n" with
  | Ok _ -> Alcotest.fail "expected a diagnostic"
  | Error d ->
      Alcotest.(check int) "line after a multi-line quoted cell" 4
        d.Diagnostic.line;
      Alcotest.(check int) "column" 5 d.Diagnostic.column

let test_csv_legacy_exception () =
  (* the legacy line-only exception is preserved as a thin wrapper *)
  match Csv.parse "a,b\n1,2,3\n" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Csv.Parse_error { line; message } ->
      Alcotest.(check int) "line" 2 line;
      Alcotest.(check bool) "arity message" true
        (contains ~affix:"3 cells" message)

let test_csv_tolerant_quarantines_ragged () =
  let errs = ref [] in
  match
    Csv.parse_tolerant
      ~on_error:(fun d ~skipped -> errs := (d, skipped) :: !errs)
      "a,b\n1,2\n1,2,3,4\n3,4\n"
  with
  | Error d -> Alcotest.failf "unexpected fatal: %s" (Diagnostic.message_of d)
  | Ok table -> (
      Alcotest.(check (list (list string)))
        "ragged row dropped, clean rows kept"
        [ [ "1"; "2" ]; [ "3"; "4" ] ]
        table.Csv.rows;
      match !errs with
      | [ (d, skipped) ] ->
          Alcotest.(check (option int))
            "0-based data-row index" (Some 1) d.Diagnostic.index;
          Alcotest.(check string) "row re-serialized" "1,2,3,4" skipped;
          Alcotest.(check int) "column of first extra cell" 5
            d.Diagnostic.column
      | es -> Alcotest.failf "expected one skip, got %d" (List.length es))

let test_csv_tolerant_inference () =
  let faulty = ragged_csv ~headers:[ "a"; "b" ]
      ~rows:[ [ "1"; "2" ]; [ "5"; "6" ]; [ "3"; "4" ] ]
      ~ragged:[ 1 ]
  in
  let clean =
    ragged_csv ~headers:[ "a"; "b" ]
      ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ]
      ~ragged:[]
  in
  let expect =
    match Infer.of_csv clean with
    | Ok s -> s
    | Error e -> Alcotest.failf "clean CSV failed: %s" e
  in
  (match Infer.of_csv_tolerant ~budget:(Diagnostic.Count 1) faulty with
  | Error e -> Alcotest.failf "tolerant CSV failed: %s" e
  | Ok r ->
      Alcotest.check shape_testable "clean-subset shape" expect r.Infer.shape;
      Alcotest.(check int) "total counts the ragged row" 3 r.Infer.total;
      Alcotest.(check (list int))
        "quarantined data-row indices" [ 1 ]
        (List.map (fun q -> q.Infer.q_index) r.Infer.quarantined));
  (* a structural fault stays fatal whatever the budget *)
  match Infer.of_csv_tolerant ~budget:(Diagnostic.Count 99) "a,b\n\"x\n" with
  | Ok _ -> Alcotest.fail "unterminated quote must stay fatal"
  | Error e ->
      Alcotest.(check bool) "names the fault" true
        (contains ~affix:"unterminated" e)

(* ----- Error budgets ----- *)

let budget_testable =
  Alcotest.testable
    (fun ppf b -> Fmt.string ppf (Diagnostic.budget_to_string b))
    ( = )

let test_budget_parsing () =
  let ok s = Result.get_ok (Diagnostic.budget_of_string s) in
  Alcotest.check budget_testable "0 is strict" Diagnostic.Strict (ok "0");
  Alcotest.check budget_testable "count" (Diagnostic.Count 5) (ok "5");
  Alcotest.check budget_testable "percent" (Diagnostic.Percent 10.) (ok "10%");
  Alcotest.check budget_testable "fractional percent"
    (Diagnostic.Percent 2.5) (ok "2.5%");
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (Result.is_error (Diagnostic.budget_of_string s)))
    [ ""; "abc"; "-1"; "-3%"; "101%"; "5.5" ]

let test_budget_allows () =
  let allows b errors total = Diagnostic.allows b ~errors ~total in
  Alcotest.(check bool) "strict allows zero" true
    (allows Diagnostic.Strict 0 10);
  Alcotest.(check bool) "strict refuses one" false
    (allows Diagnostic.Strict 1 10);
  Alcotest.(check bool) "count at the limit" true
    (allows (Diagnostic.Count 2) 2 10);
  Alcotest.(check bool) "count above the limit" false
    (allows (Diagnostic.Count 2) 3 10);
  Alcotest.(check bool) "percent at the boundary" true
    (allows (Diagnostic.Percent 20.) 2 10);
  Alcotest.(check bool) "percent above the boundary" false
    (allows (Diagnostic.Percent 20.) 3 10)

let test_percent_budget_end_to_end () =
  let texts =
    List.init 10 (fun i ->
        if i = 2 || i = 7 then "{\"v\":" else Printf.sprintf "{\"v\": %d}" i)
  in
  (match
     Infer.of_json_samples_tolerant ~budget:(Diagnostic.Percent 20.) texts
   with
  | Ok r ->
      Alcotest.(check (list int))
        "both faults quarantined" [ 2; 7 ]
        (List.map (fun q -> q.Infer.q_index) r.Infer.quarantined)
  | Error e -> Alcotest.failf "20%% budget should absorb 2/10: %s" e);
  match Infer.of_json_samples_tolerant ~budget:(Diagnostic.Percent 10.) texts with
  | Ok _ -> Alcotest.fail "10% budget cannot absorb 2/10"
  | Error e ->
      Alcotest.(check bool) "budget message names the first fault" true
        (contains ~affix:"error budget exceeded" e
        && contains ~affix:"document 2" e)

let test_diagnostic_to_json () =
  let d =
    Diagnostic.make ~index:7 ~format:Diagnostic.Json ~line:3 ~column:10
      "unterminated string"
  in
  match Diagnostic.to_json d with
  | Dv.Record (_, fields) ->
      let assoc k = List.assoc k fields in
      Alcotest.check data_testable "format" (Dv.String "json") (assoc "format");
      Alcotest.check data_testable "index" (Dv.Int 7) (assoc "index");
      Alcotest.check data_testable "line" (Dv.Int 3) (assoc "line");
      Alcotest.check data_testable "column" (Dv.Int 10) (assoc "column");
      Alcotest.check data_testable "severity" (Dv.String "error")
        (assoc "severity");
      Alcotest.check data_testable "message"
        (Dv.String "unterminated string")
        (assoc "message")
  | d -> Alcotest.failf "expected a record, got %s" (Dv.to_string d)

(* ----- Structured conversion errors (runtime) ----- *)

let test_ops_structured_error () =
  match Ops.conv_int (Dv.String "x") with
  | _ -> Alcotest.fail "expected Conversion_error"
  | exception Ops.Conversion_error e ->
      Alcotest.(check string) "op" "convPrim(int)" e.Ops.op;
      Alcotest.(check string) "expected shape" "int" e.Ops.expected;
      Alcotest.(check bool) "actual value summarized" true
        (contains ~affix:"x" e.Ops.actual);
      Alcotest.(check (list string)) "no path outside accessors" [] e.Ops.path

let test_ops_with_path () =
  match
    Ops.with_path "Root"
      (fun () -> Ops.with_path "Temp" (fun () -> Ops.conv_int (Dv.String "x")))
  with
  | _ -> Alcotest.fail "expected Conversion_error"
  | exception Ops.Conversion_error e ->
      Alcotest.(check (list string))
        "access path outermost-first" [ "Root"; "Temp" ] e.Ops.path;
      Alcotest.(check bool) "message renders the path" true
        (contains ~affix:"at Root.Temp" (Ops.error_message e));
      Alcotest.(check bool) "message renders the expectation" true
        (contains ~affix:"expected int" (Ops.error_message e))

let test_ops_lenient () =
  Alcotest.(check (option int)) "int passes" (Some 3)
    (Ops.conv_int_opt (Dv.Int 3));
  Alcotest.(check (option int)) "mismatch is None" None
    (Ops.conv_int_opt (Dv.String "x"));
  Alcotest.(check (option string)) "string passes" (Some "hi")
    (Ops.conv_string_opt (Dv.String "hi"));
  Alcotest.(check (option bool)) "bit converts" (Some true)
    (Ops.conv_bit_bool_opt (Dv.Int 1));
  Alcotest.(check (option bool)) "non-bit is None" None
    (Ops.conv_bit_bool_opt (Dv.Int 2));
  Alcotest.(check bool) "date parses" true
    (Option.is_some (Ops.conv_date_opt (Dv.String "2012-05-01")));
  Alcotest.(check bool) "non-date is None" true
    (Option.is_none (Ops.conv_date_opt (Dv.Int 3)));
  let record = Dv.Record ("row", [ ("a", Dv.Int 1) ]) in
  Alcotest.(check (option data_testable))
    "field of a matching record" (Some (Dv.Int 1))
    (Ops.conv_field_opt ~record:"row" ~field:"a" record);
  Alcotest.(check (option data_testable))
    "missing field reads null" (Some Dv.Null)
    (Ops.conv_field_opt ~record:"row" ~field:"b" record);
  Alcotest.(check (option data_testable))
    "wrong record name is None" None
    (Ops.conv_field_opt ~record:"other" ~field:"a" record);
  Alcotest.(check (option (list int))) "elements map" (Some [ 1; 2 ])
    (Ops.conv_elements_opt Ops.conv_int (Dv.List [ Dv.Int 1; Dv.Int 2 ]));
  Alcotest.(check (option (list int))) "non-collection is None" None
    (Ops.conv_elements_opt Ops.conv_int (Dv.Int 1));
  let shape = Shape.Primitive Shape.Int in
  Alcotest.(check (option int)) "matching element selected" (Some 1)
    (Ops.select_single_opt shape Ops.conv_int
       (Dv.List [ Dv.String "no"; Dv.Int 1 ]));
  Alcotest.(check (option int)) "no match is None" None
    (Ops.select_single_opt shape Ops.conv_int (Dv.List [ Dv.String "no" ]))

let suite =
  [
    Alcotest.test_case "chunk-boundary poison (par)" `Quick
      test_chunk_boundary_poison;
    Alcotest.test_case "worker crash attributed" `Quick
      test_worker_crash_attributed;
    Alcotest.test_case "fold_many resync: structural" `Quick
      test_fold_many_resync_structural;
    Alcotest.test_case "fold_many resync: newline fallback" `Quick
      test_fold_many_resync_newline;
    Alcotest.test_case "fold_many resync: truncated tail" `Quick
      test_fold_many_truncated_tail;
    Alcotest.test_case "fold_many strict unchanged" `Quick
      test_fold_many_strict_unchanged;
    Alcotest.test_case "cursor: recovery across feeds" `Quick
      test_cursor_recovering;
    Alcotest.test_case "cursor: fault at finish" `Quick
      test_cursor_recovering_finish;
    Alcotest.test_case "csv: unterminated-quote position" `Quick
      test_csv_unterminated_quote_position;
    Alcotest.test_case "csv: arity position" `Quick test_csv_arity_position;
    Alcotest.test_case "csv: legacy exception" `Quick test_csv_legacy_exception;
    Alcotest.test_case "csv: tolerant parse quarantines ragged rows" `Quick
      test_csv_tolerant_quarantines_ragged;
    Alcotest.test_case "csv: tolerant inference" `Quick
      test_csv_tolerant_inference;
    Alcotest.test_case "budget parsing" `Quick test_budget_parsing;
    Alcotest.test_case "budget allows" `Quick test_budget_allows;
    Alcotest.test_case "percent budget end to end" `Quick
      test_percent_budget_end_to_end;
    Alcotest.test_case "diagnostic to_json" `Quick test_diagnostic_to_json;
    Alcotest.test_case "ops: structured error" `Quick test_ops_structured_error;
    Alcotest.test_case "ops: with_path attribution" `Quick test_ops_with_path;
    Alcotest.test_case "ops: lenient variants" `Quick test_ops_lenient;
    QCheck_alcotest.to_alcotest prop_samples_tolerant;
    QCheck_alcotest.to_alcotest prop_stream_tolerant;
    QCheck_alcotest.to_alcotest prop_xml_tolerant;
    QCheck_alcotest.to_alcotest prop_compiled_ingestion_parity;
  ]
