(* The preferred shape relation (Definition 1, Figure 1).

   Unit tests cover every rule of Definition 1 and every edge of the
   Figure 1 diagram; properties check the preorder laws and antisymmetry
   on the top-free fragment. *)

module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module P = Fsdata_core.Preference
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let int_ = Shape.Primitive Shape.Int
let float_ = Shape.Primitive Shape.Float
let bool_ = Shape.Primitive Shape.Bool
let string_ = Shape.Primitive Shape.String
let bit = Shape.Primitive Shape.Bit
let bit0 = Shape.Primitive Shape.Bit0
let bit1 = Shape.Primitive Shape.Bit1
let date = Shape.Primitive Shape.Date

let yes s1 s2 =
  if not (P.is_preferred s1 s2) then
    Alcotest.failf "expected %a \xe2\x8a\x91 %a" Shape.pp s1 Shape.pp s2

let no s1 s2 =
  if P.is_preferred s1 s2 then
    Alcotest.failf "expected %a \xe2\x8b\xa2 %a" Shape.pp s1 Shape.pp s2

(* Rule (1) and the Section 6.2 extensions. *)
let test_primitives () =
  yes int_ float_;
  no float_ int_;
  yes bit int_;
  yes bit bool_;
  yes bit float_ (* transitively through int *);
  yes bit0 bit;
  yes bit1 bit;
  yes bit0 int_;
  yes bit0 bool_;
  yes bit1 float_;
  no bit0 bit1;
  no bit string_;
  yes date string_;
  no string_ date;
  no int_ bool_;
  no bool_ int_;
  no string_ int_

(* Rule (2): null is preferred over all nullable shapes. *)
let test_null () =
  yes Shape.Null Shape.Null;
  yes Shape.Null (Shape.Nullable int_);
  yes Shape.Null (Shape.collection int_);
  yes Shape.Null Shape.any;
  no Shape.Null int_;
  no Shape.Null (Shape.record "p" [])

(* Rules (3) and (4). *)
let test_nullable () =
  yes int_ (Shape.Nullable int_);
  yes int_ (Shape.Nullable float_);
  yes (Shape.Nullable int_) (Shape.Nullable float_);
  no (Shape.Nullable int_) int_;
  no (Shape.Nullable float_) (Shape.Nullable int_);
  yes (Shape.record "p" []) (Shape.Nullable (Shape.record "p" []))

(* Rule (5): collection covariance. *)
let test_collections () =
  yes (Shape.collection int_) (Shape.collection float_);
  no (Shape.collection float_) (Shape.collection int_);
  yes (Shape.collection Shape.Bottom) (Shape.collection int_);
  no (Shape.collection int_) (Shape.collection Shape.Bottom);
  yes (Shape.collection Shape.Bottom) (Shape.collection Shape.Bottom);
  (* nullable elements *)
  yes (Shape.collection int_) (Shape.collection (Shape.Nullable int_));
  no (Shape.collection (Shape.Nullable int_)) (Shape.collection int_)

(* Rules (6) and (7), and Section 3.5: labels do not matter. *)
let test_bottom_top () =
  yes Shape.Bottom int_;
  yes Shape.Bottom Shape.Null;
  yes Shape.Bottom Shape.any;
  yes int_ Shape.any;
  yes Shape.any Shape.any;
  yes (Shape.top [ int_ ]) (Shape.top [ string_ ]);
  yes int_ (Shape.top [ string_ ]);
  no Shape.any int_

(* Rules (8) and (9) plus the null-field extension. *)
let test_records () =
  let p fields = Shape.record "p" fields in
  yes (p [ ("x", int_) ]) (p [ ("x", float_) ]);
  no (p [ ("x", float_) ]) (p [ ("x", int_) ]);
  (* width: input may have extra fields *)
  yes (p [ ("x", int_); ("y", string_) ]) (p [ ("x", int_) ]);
  no (p [ ("x", int_) ]) (p [ ("x", int_); ("y", string_) ]);
  (* null-field extension: a missing field is fine when nullable *)
  yes (p [ ("x", int_) ]) (p [ ("x", int_); ("y", Shape.Nullable string_) ]);
  yes (p [ ("x", int_) ]) (p [ ("x", int_); ("y", Shape.collection int_) ]);
  yes (p [ ("x", int_) ]) (p [ ("x", int_); ("y", Shape.Null) ]);
  (* different names are unrelated *)
  no (p [ ("x", int_) ]) (Shape.record "q" [ ("x", int_) ]);
  (* empty records *)
  yes (p []) (p []);
  yes (p [ ("x", int_) ]) (p [])

(* Heterogeneous collections (Section 6.4). *)
let test_hetero () =
  let h = Shape.hetero in
  let two = h [ (Shape.record "a" [], Mult.Single); (int_, Mult.Single) ] in
  (* exact match *)
  yes two two;
  (* multiplicity: 1 ⊑ 1? ⊑ * *)
  yes
    (h [ (Shape.record "a" [], Mult.Single); (int_, Mult.Single) ])
    (h [ (Shape.record "a" [], Mult.Optional_single); (int_, Mult.Multiple) ]);
  no
    (h [ (Shape.record "a" [], Mult.Multiple); (int_, Mult.Single) ])
    (h [ (Shape.record "a" [], Mult.Single); (int_, Mult.Single) ]);
  (* a missing tag is fine unless the consumer requires exactly one *)
  yes
    (h [ (int_, Mult.Single); (string_, Mult.Single) ])
    (h [ (int_, Mult.Single); (string_, Mult.Single); (bool_, Mult.Multiple) ]);
  no
    (h [ (int_, Mult.Single); (string_, Mult.Single) ])
    (h [ (int_, Mult.Single); (string_, Mult.Single); (bool_, Mult.Single) ]);
  (* extra input tags are invisible to the consumer *)
  yes
    (h [ (int_, Mult.Single); (string_, Mult.Single); (bool_, Mult.Single) ])
    (h [ (int_, Mult.Single); (string_, Mult.Single) ])

let test_mixed_kinds () =
  no int_ (Shape.record "p" []);
  no (Shape.record "p" []) int_;
  no (Shape.collection int_) int_;
  no int_ (Shape.collection int_);
  no (Shape.collection int_) (Shape.Nullable int_);
  no (Shape.Nullable int_) (Shape.collection int_)

(* Properties. *)

let prop_reflexive =
  QCheck2.Test.make ~name:"\xe2\x8a\x91 reflexive" ~count:300 ~print:print_shape
    gen_core_shape (fun s -> P.is_preferred s s)

let prop_transitive =
  QCheck2.Test.make ~name:"\xe2\x8a\x91 transitive" ~count:500
    ~print:(fun (a, b, c) ->
      String.concat " / " (List.map print_shape [ a; b; c ]))
    QCheck2.Gen.(triple gen_core_shape gen_core_shape gen_core_shape)
    (fun (a, b, c) ->
      (* implication: a ⊑ b ∧ b ⊑ c ⇒ a ⊑ c *)
      (not (P.is_preferred a b && P.is_preferred b c)) || P.is_preferred a c)

let rec top_free (s : Shape.t) =
  match s with
  | Shape.Top _ -> false
  | Shape.Bottom | Shape.Null | Shape.Primitive _ -> true
  | Shape.Nullable p -> top_free p
  | Shape.Record { fields; _ } -> List.for_all (fun (_, f) -> top_free f) fields
  | Shape.Collection entries ->
      List.for_all (fun (e : Shape.entry) -> top_free e.shape) entries

(* Mutual preference is *observational* equivalence: a record field whose
   shape admits null cannot be distinguished from an absent field (convField
   passes null either way, Figure 6), so the normal form erases such
   fields. On top-free core shapes, mutual preference implies equal normal
   forms. *)
let rec erase_null_fields (s : Shape.t) : Shape.t =
  match s with
  | Shape.Bottom | Shape.Null | Shape.Primitive _ -> s
  | Shape.Nullable p -> Shape.nullable (erase_null_fields p)
  | Shape.Record { name; fields } ->
      Shape.record name
        (List.filter_map
           (fun (n, f) ->
             let f = erase_null_fields f in
             match f with
             | Shape.Null | Shape.Nullable _ | Shape.Collection _ | Shape.Top _
               ->
                 None
             | _ -> Some (n, f))
           fields)
  | Shape.Collection entries ->
      Shape.Collection
        (List.map
           (fun (e : Shape.entry) -> { e with Shape.shape = erase_null_fields e.shape })
           entries)
  | Shape.Top labels -> Shape.Top (List.map erase_null_fields labels)

let prop_antisymmetric_top_free =
  QCheck2.Test.make
    ~name:"mutual \xe2\x8a\x91 = observational equivalence (top-free)"
    ~count:500
    ~print:(fun (a, b) -> print_shape a ^ " / " ^ print_shape b)
    QCheck2.Gen.(pair gen_core_shape gen_core_shape)
    (fun (a, b) ->
      (not (top_free a && top_free b))
      || (not (P.is_preferred a b && P.is_preferred b a))
      || Shape.equal (erase_null_fields a) (erase_null_fields b))

let prop_bottom_least =
  QCheck2.Test.make ~name:"\xe2\x8a\xa5 least" ~count:200 ~print:print_shape
    gen_core_shape (fun s -> P.is_preferred Shape.Bottom s)

let prop_any_greatest =
  QCheck2.Test.make ~name:"any greatest" ~count:200 ~print:print_shape
    gen_core_shape (fun s -> P.is_preferred s Shape.any)

let suite =
  [
    tc "primitives (rule 1 + Section 6.2)" `Quick test_primitives;
    tc "null (rule 2)" `Quick test_null;
    tc "nullable (rules 3, 4)" `Quick test_nullable;
    tc "collections (rule 5)" `Quick test_collections;
    tc "bottom and top (rules 6, 7)" `Quick test_bottom_top;
    tc "records (rules 8, 9 + null-field extension)" `Quick test_records;
    tc "heterogeneous collections (Section 6.4)" `Quick test_hetero;
    tc "unrelated kinds" `Quick test_mixed_kinds;
    QCheck_alcotest.to_alcotest prop_reflexive;
    QCheck_alcotest.to_alcotest prop_transitive;
    QCheck_alcotest.to_alcotest prop_antisymmetric_top_free;
    QCheck_alcotest.to_alcotest prop_bottom_least;
    QCheck_alcotest.to_alcotest prop_any_greatest;
  ]
