(* Remark 1, executed: automatic migration of user programs when samples
   are added. For random old samples, a random extra sample, and random
   well-typed user programs over the old provided type:

   - the migrated program type-checks against the new classes at the same
     type, and
   - it computes the same value as the original on the old inputs

   — which is precisely the statement of Remark 1. *)

module Dv = Fsdata_data.Data_value
module Infer = Fsdata_core.Infer
module Provide = Fsdata_provider.Provide
module Migrate = Fsdata_provider.Migrate
open Fsdata_foo.Syntax
module TC = Fsdata_foo.Typecheck
module Eval = Fsdata_foo.Eval
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let provide samples =
  Provide.provide ~format:`Json (Infer.shape_of_samples ~mode:`Paper samples)

(* ----- the three rules, unit-tested on the evolutions they repair ----- *)

let run p e =
  match Eval.eval p.Provide.classes e with
  | Eval.Value v -> v
  | o -> Alcotest.failf "expected a value, got %a" Eval.pp_outcome o

let migrate_ok ~old_provided ~new_provided e =
  match Migrate.migrate ~old_provided ~new_provided e with
  | Ok e' -> e'
  | Error err -> Alcotest.failf "migration failed: %a" Migrate.pp_error err

let test_rule1_option () =
  let d1 = Dv.Record ("p", [ ("x", Dv.Int 1) ]) in
  let d2 = Dv.Record ("p", []) in
  let old_provided = provide [ d1 ] in
  let new_provided = provide [ d1; d2 ] in
  let program = EEq (EMember (EVar "y", "X"), EMember (EVar "y", "X")) in
  let migrated = migrate_ok ~old_provided ~new_provided program in
  (* well-typed at bool against the new classes *)
  (match
     TC.check new_provided.Provide.classes
       [ ("y", new_provided.Provide.root_ty) ]
       migrated TBool
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "migrated program ill-typed: %a" TC.pp_error e);
  (* same value on the old input *)
  check Alcotest.bool "same result" true
    (run old_provided (subst "y" (Provide.apply old_provided d1) program)
    = run new_provided (subst "y" (Provide.apply new_provided d1) migrated))

let test_rule3_int_float () =
  let d1 = Dv.Record ("p", [ ("x", Dv.Int 25) ]) in
  let d2 = Dv.Record ("p", [ ("x", Dv.Float 3.5) ]) in
  let old_provided = provide [ d1 ] in
  let new_provided = provide [ d1; d2 ] in
  let program = EEq (EMember (EVar "y", "X"), EMember (EVar "y", "X")) in
  let migrated = migrate_ok ~old_provided ~new_provided program in
  check Alcotest.bool "same result" true
    (run old_provided (subst "y" (Provide.apply old_provided d1) program)
    = run new_provided (subst "y" (Provide.apply new_provided d1) migrated))

let test_rule2_top () =
  let d1 = Dv.List [ Dv.Record ("p", [ ("x", Dv.Int 1) ]) ] in
  let d2 = Dv.List [ Dv.Bool true ] in
  let old_provided = provide [ d1 ] in
  let new_provided = provide [ d1; d2 ] in
  (* the old program reads the first element's X member; after evolution
     elements are any⟨p, bool⟩ and the access must route through the
     label member *)
  let program =
    EMatchList
      ( EVar "y",
        "h", "t",
        EEq (EMember (EVar "h", "X"), EMember (EVar "h", "X")),
        EExn )
  in
  let migrated = migrate_ok ~old_provided ~new_provided program in
  (match
     TC.check new_provided.Provide.classes
       [ ("y", new_provided.Provide.root_ty) ]
       migrated TBool
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ill-typed: %a" TC.pp_error e);
  check Alcotest.bool "same result" true
    (run old_provided (subst "y" (Provide.apply old_provided d1) program)
    = run new_provided (subst "y" (Provide.apply new_provided d1) migrated))

let test_composed_evolution () =
  (* all three at once: a field becomes optional AND floats appear AND the
     collection becomes heterogeneous *)
  let d1 = Dv.List [ Dv.Record ("p", [ ("x", Dv.Int 1); ("n", Dv.Int 2) ]) ] in
  let d2 =
    Dv.List
      [ Dv.Record ("p", [ ("x", Dv.Float 1.5) ]); Dv.String "stray" ]
  in
  let old_provided = provide [ d1 ] in
  let new_provided = provide [ d1; d2 ] in
  let program =
    EMatchList
      ( EVar "y",
        "h", "t",
        EEq (EMember (EVar "h", "X"), EMember (EVar "h", "X")),
        EExn )
  in
  let migrated = migrate_ok ~old_provided ~new_provided program in
  check Alcotest.bool "same result" true
    (run old_provided (subst "y" (Provide.apply old_provided d1) program)
    = run new_provided (subst "y" (Provide.apply new_provided d1) migrated))

(* ----- Remark 1 as a property ----- *)

let remark1_gen =
  let open QCheck2.Gen in
  let* samples = list_size (int_range 1 3) gen_plain_data in
  let* extra = gen_plain_data in
  let old_provided = provide samples in
  let* program =
    Test_safety.gen_user_program old_provided.Provide.classes
      old_provided.Provide.root_ty
  in
  let* idx = int_range 0 (List.length samples - 1) in
  return (samples, extra, List.nth samples idx, program)

let print_remark1 (samples, extra, input, program) =
  Fmt.str "samples: %s@.extra: %s@.input: %s@.program: %a"
    (String.concat " ; " (List.map print_data samples))
    (print_data extra) (print_data input) pp_expr program

let prop_remark1 =
  QCheck2.Test.make
    ~name:
      "Remark 1: migrated programs type-check and agree on old inputs"
    ~count:300 ~print:print_remark1 remark1_gen
    (fun (samples, extra, input, program) ->
      let old_provided = provide samples in
      let new_provided = provide (samples @ [ extra ]) in
      match Migrate.migrate ~old_provided ~new_provided program with
      (* an explicit give-up is allowed (the rules are local; multi-hole
         contexts like comparing two lists whose elements evolved
         differently are outside them) — producing a wrong program is
         not. A separate aggregate test bounds how often this happens. *)
      | Error (Migrate.Unsupported _) -> true
      | Ok migrated -> (
          (* type preservation at bool *)
          (match
             TC.check new_provided.Provide.classes
               [ ("y", new_provided.Provide.root_ty) ]
               migrated TBool
           with
          | Ok () -> true
          | Error _ -> false)
          &&
          (* behavioural agreement on the old input: if the original
             computes a value, the migrated program computes the same
             value (Remark 1's e[x←e1 d] ⇝ v implies e'[x←e2 d] ⇝ v) *)
          let old_run =
            Eval.eval old_provided.Provide.classes
              (subst "y" (Provide.apply old_provided input) program)
          in
          let new_run =
            Eval.eval new_provided.Provide.classes
              (subst "y" (Provide.apply new_provided input) migrated)
          in
          match (old_run, new_run) with
          | Eval.Value (EData (Dv.Bool a)), Eval.Value (EData (Dv.Bool b)) ->
              a = b
          | _ -> false))

(* the migrator must succeed on the overwhelming majority of random
   evolutions — a migrator that always gives up would trivially satisfy
   the property above *)
let test_success_rate () =
  let rand = Random.State.make [| 2016 |] in
  let total = 300 in
  let ok = ref 0 in
  for _ = 1 to total do
    let samples, extra, _, program = QCheck2.Gen.generate1 ~rand remark1_gen in
    let old_provided = provide samples in
    let new_provided = provide (samples @ [ extra ]) in
    match Migrate.migrate ~old_provided ~new_provided program with
    | Ok _ -> incr ok
    | Error _ -> ()
  done;
  if !ok * 100 < total * 90 then
    Alcotest.failf "migration succeeded on only %d/%d cases" !ok total

let suite =
  [
    tc "rule 1: optional member" `Quick test_rule1_option;
    tc "success rate >= 90%" `Quick test_success_rate;
    tc "rule 3: int to float" `Quick test_rule3_int_float;
    tc "rule 2: labelled top" `Quick test_rule2_top;
    tc "composed evolution" `Quick test_composed_evolution;
    QCheck_alcotest.to_alcotest prop_remark1;
  ]
