(* Shape representation tests: constructors, invariants, printing. *)

module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module Tag = Fsdata_core.Tag
open Generators

let check = Alcotest.check
let tc = Alcotest.test_case

let int_ = Shape.Primitive Shape.Int
let float_ = Shape.Primitive Shape.Float
let bool_ = Shape.Primitive Shape.Bool
let string_ = Shape.Primitive Shape.String

let test_record_dup () =
  Alcotest.check_raises "duplicate fields"
    (Invalid_argument "Shape.record: duplicate field \"x\"") (fun () ->
      ignore (Shape.record "p" [ ("x", int_); ("x", float_) ]))

let test_nullable_ceiling () =
  (* ⌈−⌉ wraps only non-nullable shapes *)
  check shape_testable "primitive wrapped" (Shape.Nullable int_)
    (Shape.nullable int_);
  check shape_testable "record wrapped"
    (Shape.Nullable (Shape.record "p" []))
    (Shape.nullable (Shape.record "p" []));
  check shape_testable "nullable unchanged" (Shape.Nullable int_)
    (Shape.nullable (Shape.Nullable int_));
  check shape_testable "null unchanged" Shape.Null (Shape.nullable Shape.Null);
  check shape_testable "collection unchanged" (Shape.collection int_)
    (Shape.nullable (Shape.collection int_));
  check shape_testable "top unchanged" Shape.any (Shape.nullable Shape.any);
  check shape_testable "bottom unchanged" Shape.Bottom (Shape.nullable Shape.Bottom)

let test_strip_floor () =
  check shape_testable "unwraps" int_ (Shape.strip_nullable (Shape.Nullable int_));
  check shape_testable "identity elsewhere" Shape.any (Shape.strip_nullable Shape.any)

let test_collection_forms () =
  check shape_testable "collection Bottom = []" (Shape.Collection [])
    (Shape.collection Shape.Bottom);
  check (Alcotest.option shape_testable) "element of [int]" (Some int_)
    (Shape.collection_element (Shape.collection int_));
  check (Alcotest.option shape_testable) "element of [⊥]" (Some Shape.Bottom)
    (Shape.collection_element (Shape.collection Shape.Bottom));
  check (Alcotest.option shape_testable) "hetero has no single element" None
    (Shape.collection_element
       (Shape.hetero [ (int_, Mult.Single); (string_, Mult.Single) ]))

let test_hetero_invariants () =
  Alcotest.check_raises "duplicate tags"
    (Invalid_argument "Shape: duplicate tag number in labelled top or collection")
    (fun () -> ignore (Shape.hetero [ (int_, Mult.Single); (float_, Mult.Single) ]));
  Alcotest.check_raises "bottom entry"
    (Invalid_argument "Shape.hetero: bottom entry") (fun () ->
      ignore (Shape.hetero [ (Shape.Bottom, Mult.Single) ]))

let test_hetero_sorted () =
  (* entries are canonically ordered by tag, so construction order does
     not affect equality *)
  let a = Shape.hetero [ (int_, Mult.Single); (string_, Mult.Multiple) ] in
  let b = Shape.hetero [ (string_, Mult.Multiple); (int_, Mult.Single) ] in
  check shape_testable "order canonical" a b

let test_top_invariants () =
  Alcotest.check_raises "null label" (Invalid_argument "Shape.top: invalid label")
    (fun () -> ignore (Shape.top [ Shape.Null ]));
  Alcotest.check_raises "nested top" (Invalid_argument "Shape.top: invalid label")
    (fun () -> ignore (Shape.top [ Shape.any ]));
  Alcotest.check_raises "nullable label"
    (Invalid_argument "Shape.top: invalid label") (fun () ->
      ignore (Shape.top [ Shape.Nullable int_ ]));
  let a = Shape.top [ int_; bool_ ] in
  let b = Shape.top [ bool_; int_ ] in
  check shape_testable "labels canonical" a b

let test_tagof () =
  let t = Alcotest.testable Tag.pp Tag.equal in
  check t "int" Tag.Number (Shape.tagof int_);
  check t "bit" Tag.Number (Shape.tagof (Shape.Primitive Shape.Bit));
  check t "bool" Tag.Bool (Shape.tagof bool_);
  check t "string" Tag.String (Shape.tagof string_);
  check t "date" Tag.Date (Shape.tagof (Shape.Primitive Shape.Date));
  check t "record" (Tag.Record "p") (Shape.tagof (Shape.record "p" []));
  check t "collection" Tag.Collection (Shape.tagof (Shape.collection int_));
  check t "nullable" Tag.Nullable (Shape.tagof (Shape.Nullable int_));
  check t "top" Tag.Top (Shape.tagof Shape.any);
  check t "null" Tag.Null (Shape.tagof Shape.Null);
  Alcotest.check_raises "bottom has no tag"
    (Invalid_argument "Shape.tagof: bottom has no tag") (fun () ->
      ignore (Shape.tagof Shape.Bottom))

let test_equal_mod_field_order () =
  let a = Shape.record "p" [ ("x", int_); ("y", string_) ] in
  let b = Shape.record "p" [ ("y", string_); ("x", int_) ] in
  check shape_testable "field order irrelevant" a b

let test_pp () =
  check Alcotest.string "record"
    "p {x: int, y: nullable string}"
    (Shape.to_string (Shape.record "p" [ ("x", int_); ("y", Shape.Nullable string_) ]));
  check Alcotest.string "homogeneous collection" "[int]"
    (Shape.to_string (Shape.collection int_));
  check Alcotest.string "any" "any" (Shape.to_string Shape.any);
  check Alcotest.string "labelled top" "any\xe2\x9f\xa8bool, string\xe2\x9f\xa9"
    (Shape.to_string (Shape.top [ string_; bool_ ]));
  check Alcotest.string "hetero" "[int, 1 | string, *]"
    (Shape.to_string (Shape.hetero [ (string_, Mult.Multiple); (int_, Mult.Single) ]))

(* A structural deep copy that defeats all physical sharing, including
   string sharing — so [hcons] has real work to do on the copy. The raw
   constructors are safe here because the input is already canonical. *)
let rec copy_shape (s : Shape.t) : Shape.t =
  let copy_string x = String.init (String.length x) (String.get x) in
  match s with
  | Shape.Bottom -> Shape.Bottom
  | Shape.Null -> Shape.Null
  | Shape.Primitive p -> Shape.Primitive p
  | Shape.Record { name; fields } ->
      Shape.Record
        {
          name = copy_string name;
          fields = List.map (fun (f, s) -> (copy_string f, copy_shape s)) fields;
        }
  | Shape.Nullable s -> Shape.Nullable (copy_shape s)
  | Shape.Collection entries ->
      Shape.Collection
        (List.map
           (fun (e : Shape.entry) -> { e with Shape.shape = copy_shape e.Shape.shape })
           entries)
  | Shape.Top labels -> Shape.Top (List.map copy_shape labels)

let test_hcons_identity () =
  let s =
    Shape.record "p"
      [
        ("y", Shape.Nullable string_);
        ("x", Shape.collection int_);
        ("z", Shape.top [ bool_; int_ ]);
      ]
  in
  let a = Shape.hcons s and b = Shape.hcons (copy_shape s) in
  check Alcotest.bool "identical representations intern to one node" true
    (a == b);
  check shape_testable "hcons preserves the shape" s a;
  check Alcotest.string "record field order preserved" (Shape.to_string s)
    (Shape.to_string a);
  (* a distinct field order is a distinct representation: equal shapes,
     different interned nodes *)
  let r = Shape.record "p" [ ("x", int_); ("y", string_) ] in
  let r' = Shape.record "p" [ ("y", string_); ("x", int_) ] in
  check shape_testable "equal mod field order" r r';
  check Alcotest.bool "but separate nodes" false
    (Shape.hcons r == Shape.hcons r')

let test_hcons_table () =
  Shape.hcons_clear ();
  check Alcotest.int "empty after clear" 0 (Shape.hcons_size ());
  let s = Shape.hcons (Shape.collection (Shape.Nullable int_)) in
  let n = Shape.hcons_size () in
  check Alcotest.bool "interning populates the table" true (n > 0);
  ignore (Shape.hcons (Shape.collection (Shape.Nullable int_)));
  check Alcotest.int "re-interning adds nothing" n (Shape.hcons_size ());
  Shape.hcons_clear ();
  check Alcotest.int "clear drops the table" 0 (Shape.hcons_size ());
  (* existing shapes stay valid and can be re-interned *)
  check shape_testable "old node still usable"
    (Shape.collection (Shape.Nullable int_))
    (Shape.hcons s)

let prop_hcons_sound =
  QCheck2.Test.make ~name:"equal (hcons s) s && hcons s == hcons (copy s)"
    ~count:200 ~print:print_shape gen_core_shape (fun s ->
      let a = Shape.hcons s in
      Shape.equal a s && a == Shape.hcons (copy_shape s))

let prop_size_positive =
  QCheck2.Test.make ~name:"size >= 1" ~count:200 ~print:print_shape
    gen_core_shape (fun s -> Shape.size s >= 1)

let prop_equal_refl =
  QCheck2.Test.make ~name:"equal s s" ~count:200 ~print:print_shape
    gen_core_shape (fun s -> Shape.equal s s)

let suite =
  [
    tc "record: duplicate fields" `Quick test_record_dup;
    tc "nullable ceiling" `Quick test_nullable_ceiling;
    tc "strip (floor)" `Quick test_strip_floor;
    tc "collection forms" `Quick test_collection_forms;
    tc "hetero invariants" `Quick test_hetero_invariants;
    tc "hetero canonical order" `Quick test_hetero_sorted;
    tc "top invariants and order" `Quick test_top_invariants;
    tc "tagof" `Quick test_tagof;
    tc "equality mod field order" `Quick test_equal_mod_field_order;
    tc "printing" `Quick test_pp;
    tc "hash-consing identity" `Quick test_hcons_identity;
    tc "hash-consing table lifecycle" `Quick test_hcons_table;
    QCheck_alcotest.to_alcotest prop_hcons_sound;
    QCheck_alcotest.to_alcotest prop_size_positive;
    QCheck_alcotest.to_alcotest prop_equal_refl;
  ]
