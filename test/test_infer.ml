(* Shape inference from samples (Figure 3) and the format entry points.

   Covers every equation of S(·), the worked examples of Sections 1, 2.1,
   2.2, 2.3 and 6.2, multi-sample folding, and inference properties
   (specificity, permutation stability, csh consistency). *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module Infer = Fsdata_core.Infer
module Csh = Fsdata_core.Csh
module P = Fsdata_core.Preference
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let int_ = Shape.Primitive Shape.Int
let float_ = Shape.Primitive Shape.Float
let bool_ = Shape.Primitive Shape.Bool
let string_ = Shape.Primitive Shape.String
let s_paper = Infer.shape_of_value ~mode:`Paper
let s_prac = Infer.shape_of_value ~mode:`Practical
let eq name expected actual = check shape_testable name expected actual

(* Figure 3, primitive equations. *)
let test_s_primitives () =
  eq "S(i) = int" int_ (s_paper (Dv.Int 42));
  eq "S(f) = float" float_ (s_paper (Dv.Float 1.5));
  eq "S(true) = bool" bool_ (s_paper (Dv.Bool true));
  eq "S(false) = bool" bool_ (s_paper (Dv.Bool false));
  eq "S(s) = string" string_ (s_paper (Dv.String "2012"));
  eq "S(null) = null" Shape.Null (s_paper Dv.Null)

let test_s_practical_strings () =
  eq "practical: \"2012\" is int" int_ (s_prac (Dv.String "2012"));
  eq "practical: \"35.14\" is float" float_ (s_prac (Dv.String "35.14"));
  eq "practical: \"true\" is bool" bool_ (s_prac (Dv.String "true"));
  eq "practical: \"0\" is bit0" (Shape.Primitive Shape.Bit0) (s_prac (Dv.String "0"));
  eq "practical: \"1\" is bit1" (Shape.Primitive Shape.Bit1) (s_prac (Dv.String "1"));
  eq "practical: date string" (Shape.Primitive Shape.Date)
    (s_prac (Dv.String "2012-05-01"));
  eq "practical: missing marker is null" Shape.Null (s_prac (Dv.String "#N/A"));
  eq "practical: text is string" string_ (s_prac (Dv.String "hello"));
  eq "practical: ints stay int" int_ (s_prac (Dv.Int 1))

let test_s_records () =
  eq "record fields inferred"
    (Shape.record "p" [ ("x", int_); ("y", Shape.Null) ])
    (s_paper (Dv.Record ("p", [ ("x", Dv.Int 1); ("y", Dv.Null) ])))

let test_s_collections_paper () =
  eq "S([]) = [⊥]" (Shape.collection Shape.Bottom) (s_paper (Dv.List []));
  eq "S([1;2]) = [int]" (Shape.collection int_)
    (s_paper (Dv.List [ Dv.Int 1; Dv.Int 2 ]));
  eq "S([1;2.5]) = [float]" (Shape.collection float_)
    (s_paper (Dv.List [ Dv.Int 1; Dv.Float 2.5 ]));
  eq "S([1;null]) = [nullable int]"
    (Shape.collection (Shape.Nullable int_))
    (s_paper (Dv.List [ Dv.Int 1; Dv.Null ]));
  eq "S([1;true]) = [any⟨int,bool⟩]"
    (Shape.collection (Shape.top [ int_; bool_ ]))
    (s_paper (Dv.List [ Dv.Int 1; Dv.Bool true ]))

let test_s_collections_hetero () =
  eq "hetero: counts give multiplicities"
    (Shape.hetero [ (int_, Mult.Multiple); (string_, Mult.Single) ])
    (s_prac (Dv.List [ Dv.Int 1; Dv.String "xyz z"; Dv.Int 2 ]));
  eq "hetero: null elements get their own entry"
    (Shape.hetero [ (Shape.Null, Mult.Single); (int_, Mult.Single) ])
    (s_prac (Dv.List [ Dv.Int 1; Dv.Null ]));
  eq "hetero: same-tag shapes join"
    (Shape.collection float_)
    (s_prac (Dv.List [ Dv.Int 1; Dv.Float 2.5 ]))

let test_multi_sample () =
  let d1 = Dv.Record ("p", [ ("x", Dv.Int 1) ]) in
  let d2 = Dv.Record ("p", [ ("x", Dv.Float 2.5); ("y", Dv.Bool true) ]) in
  eq "S(d1,d2) folds csh"
    (Shape.record "p" [ ("x", float_); ("y", Shape.nullable bool_) ])
    (Infer.shape_of_samples ~mode:`Paper [ d1; d2 ]);
  eq "empty sample list is bottom" Shape.Bottom (Infer.shape_of_samples []);
  eq "single sample" (s_paper d1) (Infer.shape_of_samples ~mode:`Paper [ d1 ])

(* ----- the paper's worked examples ----- *)

let ok = function Ok s -> s | Error e -> Alcotest.fail e

let test_people_json () =
  let people =
    {|[ { "name":"Jan", "age":25 },
        { "name":"Tomas" },
        { "name":"Alexander", "age":3.5 } ]|}
  in
  eq "Section 2.1: name string, age optional float"
    (Shape.collection
       (Shape.record Dv.json_record_name
          [ ("name", string_); ("age", Shape.Nullable float_) ]))
    (ok (Infer.of_json people))

let test_worldbank_json () =
  let wb =
    {|[ { "pages": 5 },
        [ { "indicator": "GC.DOD.TOTL.GD.ZS", "date": "2012", "value": null },
          { "indicator": "GC.DOD.TOTL.GD.ZS", "date": "2010", "value": "35.14229" } ] ]|}
  in
  eq "Section 2.3: heterogeneous collection with multiplicities"
    (Shape.hetero
       [
         (Shape.record Dv.json_record_name [ ("pages", int_) ], Mult.Single);
         ( Shape.collection
             (Shape.record Dv.json_record_name
                [
                  ("indicator", string_);
                  ("date", int_);
                  ("value", Shape.Nullable float_);
                ]),
           Mult.Single );
       ])
    (ok (Infer.of_json wb))

let test_xml_doc () =
  let xml =
    {|<doc>
        <heading>Intro</heading>
        <p>Text</p>
        <heading>More</heading>
        <image source="xml.png"/>
      </doc>|}
  in
  let heading = Shape.record "heading" [ (Dv.body_field, string_) ] in
  let p = Shape.record "p" [ (Dv.body_field, string_) ] in
  let image = Shape.record "image" [ ("source", string_) ] in
  eq "Section 2.2: body is a collection of the labelled top"
    (Shape.record "doc"
       [
         ( Dv.body_field,
           Shape.hetero [ (Shape.top [ heading; image; p ], Mult.Multiple) ] );
       ])
    (ok (Infer.of_xml xml))

let test_xml_global_attr () =
  eq "Section 6.2: root {id ↦ 1, • ↦ [item]}"
    (Shape.record "root"
       [
         ("id", Shape.Primitive Shape.Bit1);
         ( Dv.body_field,
           Shape.hetero
             [ (Shape.record "item" [ (Dv.body_field, string_) ], Mult.Single) ]
         );
       ])
    (ok (Infer.of_xml {|<root id="1"><item>Hello!</item></root>|}))

let test_csv_ozone () =
  let csv =
    "Ozone, Temp, Date, Autofilled\n\
     41, 67, 2012-05-01, 0\n\
     36.3, 72, 2012-05-02, 1\n\
     12.1, 74, 3 kveten, 0\n\
     17.5, #N/A, 2012-05-04, 0\n"
  in
  eq "Section 6.2: ozone CSV"
    (Shape.collection
       (Shape.record Dv.csv_record_name
          [
            ("Ozone", float_);
            ("Temp", Shape.Nullable int_);
            ("Date", string_);
            ("Autofilled", Shape.Primitive Shape.Bit);
          ]))
    (ok (Infer.of_csv csv))

let test_format_errors () =
  (match Infer.of_json "{ bad" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad json accepted");
  (match Infer.of_xml "<a><b></a>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad xml accepted");
  match Infer.of_json "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty json accepted"

(* ----- properties ----- *)

let prop_sample_preferred =
  QCheck2.Test.make
    ~name:"S(di) \xe2\x8a\x91 S(d1..dn) (samples conform to the merged shape)"
    ~count:300
    ~print:(fun ds -> String.concat " ; " (List.map print_data ds))
    QCheck2.Gen.(list_size (int_range 1 4) gen_plain_data)
    (fun ds ->
      let merged = Infer.shape_of_samples ~mode:`Paper ds in
      List.for_all
        (fun d -> P.is_preferred (Infer.shape_of_value ~mode:`Paper d) merged)
        ds)

let prop_permutation_stable =
  QCheck2.Test.make ~name:"inference is order-independent" ~count:300
    ~print:(fun ds -> String.concat " ; " (List.map print_data ds))
    QCheck2.Gen.(list_size (int_range 1 4) gen_plain_data)
    (fun ds ->
      let s1 = Infer.shape_of_samples ~mode:`Paper ds in
      let s2 = Infer.shape_of_samples ~mode:`Paper (List.rev ds) in
      P.is_preferred s1 s2 && P.is_preferred s2 s1)

let prop_matches_fold =
  QCheck2.Test.make ~name:"shape_of_samples = csh fold" ~count:300
    ~print:(fun ds -> String.concat " ; " (List.map print_data ds))
    QCheck2.Gen.(list_size (int_range 1 4) gen_plain_data)
    (fun ds ->
      Shape.equal
        (Infer.shape_of_samples ~mode:`Paper ds)
        (Csh.csh_all ~mode:`Core
           (List.map (Infer.shape_of_value ~mode:`Paper) ds)))

let prop_has_shape_self =
  QCheck2.Test.make ~name:"d has shape S(d)" ~count:300 ~print:print_data
    gen_plain_data (fun d ->
      Fsdata_core.Shape_check.has_shape (Infer.shape_of_value ~mode:`Paper d) d)

let prop_practical_preferred_paper =
  QCheck2.Test.make
    ~name:"paper-mode shape bounds practical-mode shape on plain data"
    ~count:300 ~print:print_data gen_plain_data (fun d ->
      (* On data whose strings are plain text, the practical shape only
         refines collections; both agree on conformance of d itself. *)
      Fsdata_core.Shape_check.has_shape (Infer.shape_of_value ~mode:`Practical d) d)

let suite =
  [
    tc "S: primitives (Figure 3)" `Quick test_s_primitives;
    tc "S: practical string classification (Section 6.2)" `Quick
      test_s_practical_strings;
    tc "S: records" `Quick test_s_records;
    tc "S: collections, paper mode" `Quick test_s_collections_paper;
    tc "S: collections, heterogeneous" `Quick test_s_collections_hetero;
    tc "multi-sample folding" `Quick test_multi_sample;
    tc "Section 2.1: people.json" `Quick test_people_json;
    tc "Section 2.3: World Bank" `Quick test_worldbank_json;
    tc "Section 2.2: XML document" `Quick test_xml_doc;
    tc "Section 6.2: XML root/id/item" `Quick test_xml_global_attr;
    tc "Section 6.2: ozone CSV" `Quick test_csv_ozone;
    tc "malformed inputs are errors" `Quick test_format_errors;
    QCheck_alcotest.to_alcotest prop_sample_preferred;
    QCheck_alcotest.to_alcotest prop_permutation_stable;
    QCheck_alcotest.to_alcotest prop_matches_fold;
    QCheck_alcotest.to_alcotest prop_has_shape_self;
    QCheck_alcotest.to_alcotest prop_practical_preferred_paper;
  ]
