(* QCheck generators shared by the property-based suites.

   Two regimes matter for the paper's theorems:
   - arbitrary data values (parser round-trips, inference totality);
   - the *core algebra* of Section 3 (paper-mode shapes: int/float/bool/
     string primitives, homogeneous collections) on which Lemma 1 and
     Theorem 3 are stated and property-tested. *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
open QCheck2

let field_names = [ "a"; "b"; "c"; "name"; "age"; "value"; "temp" ]
let record_names = [ Dv.json_record_name; "item"; "row"; "node" ]

(* A random subset of the known field names, in a fixed order so records
   never have duplicate fields. *)
let gen_field_subset : string list Gen.t =
  let open Gen in
  let* mask = list_size (return (List.length field_names)) bool in
  return
    (List.filteri (fun i _ -> List.nth mask i) field_names
    |> fun l -> List.filteri (fun i _ -> i < 4) l)

let gen_fields gen_value =
  let open Gen in
  let* names = gen_field_subset in
  let rec build acc = function
    | [] -> return (List.rev acc)
    | n :: rest ->
        let* v = gen_value in
        build ((n, v) :: acc) rest
  in
  build [] names

let gen_string_literal =
  Gen.oneofl
    [ ""; "x"; "hello"; "2012-05-01"; "0"; "1"; "35.14"; "true"; "#N/A";
      "some text"; "May 3"; "GC.DOD" ]

let gen_data : Dv.t Gen.t =
  let open Gen in
  sized
  @@ fix (fun self size ->
         let primitive =
           oneof
             [
               return Dv.Null;
               (bool >|= fun b -> Dv.Bool b);
               (int_range (-1000) 1000 >|= fun i -> Dv.Int i);
               (float_range (-1e6) 1e6 >|= fun f -> Dv.Float f);
               (gen_string_literal >|= fun s -> Dv.String s);
             ]
         in
         if size <= 1 then primitive
         else
           frequency
             [
               (3, primitive);
               ( 2,
                 let* items = list_size (int_range 0 4) (self (size / 2)) in
                 return (Dv.List items) );
               ( 2,
                 let* name = oneofl record_names in
                 let* fields = gen_fields (self (size / 2)) in
                 return (Dv.Record (name, fields)) );
             ])

(* JSON-ish data whose strings classify as plain strings, so paper-mode
   and practical-mode inference mostly agree. *)
let gen_plain_data : Dv.t Gen.t =
  let open Gen in
  sized
  @@ fix (fun self size ->
         let primitive =
           oneof
             [
               return Dv.Null;
               (bool >|= fun b -> Dv.Bool b);
               (int_range (-1000) 1000 >|= fun i -> Dv.Int i);
               (float_range (-1e6) 1e6 >|= fun f -> Dv.Float f);
               (oneofl [ "x"; "hello"; "world" ] >|= fun s -> Dv.String s);
             ]
         in
         if size <= 1 then primitive
         else
           frequency
             [
               (3, primitive);
               ( 2,
                 let* items = list_size (int_range 0 4) (self (size / 2)) in
                 return (Dv.List items) );
               ( 2,
                 let* name = oneofl record_names in
                 let* fields = gen_fields (self (size / 2)) in
                 return (Dv.Record (name, fields)) );
             ])

(* Ground shapes of the core algebra, built with smart constructors so
   the representation invariants hold:
   - nullable only wraps primitives and records,
   - collections are homogeneous,
   - tops are label-free (labels are exercised by dedicated csh tests). *)
let gen_core_shape : Shape.t Gen.t =
  let open Gen in
  sized
  @@ fix (fun self size ->
         let leaf =
           oneofl
             [
               Shape.Bottom;
               Shape.Null;
               Shape.Primitive Shape.Int;
               Shape.Primitive Shape.Float;
               Shape.Primitive Shape.Bool;
               Shape.Primitive Shape.String;
               Shape.any;
             ]
         in
         if size <= 1 then leaf
         else
           frequency
             [
               (3, leaf);
               ( 2,
                 let* name = oneofl record_names in
                 let* fields = gen_fields (self (size / 2)) in
                 return (Shape.record name fields) );
               ( 1,
                 let* inner = self (size / 2) in
                 return (Shape.nullable (Shape.strip_nullable inner)) );
               ( 1,
                 let* elem = self (size / 2) in
                 return (Shape.collection (Shape.strip_nullable elem)) );
             ])

let print_data = Dv.to_string
let print_shape = Shape.to_string

(* Alcotest testables. *)
let data_testable = Alcotest.testable Dv.pp Dv.equal
let shape_testable = Alcotest.testable Shape.pp Shape.equal

(* Random XML trees for the XML-pipeline safety properties. Element and
   attribute names come from small pools so same-named elements recur
   (exercising unification); literal values cover the classification
   space (bits, numbers, dates, missing markers, text). *)
let xml_names = [ "doc"; "item"; "entry"; "meta" ]
let xml_attrs = [ "id"; "kind"; "when" ]

let gen_xml_literal =
  Gen.oneofl
    [ "0"; "1"; "42"; "3.5"; "true"; "2012-05-01"; "hello"; "#N/A"; "x y" ]

let gen_xml_tree : Fsdata_data.Xml.tree Gen.t =
  let open Gen in
  let gen_attr_set =
    let* mask = list_size (return (List.length xml_attrs)) bool in
    let names = List.filteri (fun i _ -> List.nth mask i) xml_attrs in
    let rec build acc = function
      | [] -> return (List.rev acc)
      | n :: rest ->
          let* v = gen_xml_literal in
          build ((n, v) :: acc) rest
    in
    build [] names
  in
  sized
  @@ fix (fun self size ->
         let* name = oneofl xml_names in
         let* attributes = gen_attr_set in
         let* children =
           if size <= 1 then
             (* leaf: empty or text body *)
             let* text = opt gen_xml_literal in
             return
               (match text with
               | None -> []
               | Some t -> [ Fsdata_data.Xml.Text t ])
           else
             let* n = int_range 0 3 in
             let* kids = list_size (return n) (self (size / 2)) in
             return (List.map (fun k -> Fsdata_data.Xml.Element k) kids)
         in
         return { Fsdata_data.Xml.name; attributes; children })

let print_xml t = Fsdata_data.Xml.to_string t
