(* Idiomatic naming (Section 6.3). *)

module N = Fsdata_provider.Naming

let tc = Alcotest.test_case
let check = Alcotest.check

let pascal_cases =
  [
    ("temp", "Temp");
    ("temp_min", "TempMin");
    ("user-id", "UserId");
    ("firstName", "FirstName");
    ("FirstName", "FirstName");
    ("first name", "FirstName");
    ("XMLFile", "XmlFile");
    ("a", "A");
    ("", "Value");
    ("\xe2\x80\xa2", "Value");
    ("2lines", "N2lines");
    ("foo.bar", "FooBar");
    ("HTTPServer2", "HttpServer2");
  ]

let test_pascal () =
  List.iter
    (fun (input, expected) ->
      check Alcotest.string (Printf.sprintf "pascal %S" input) expected
        (N.pascal_case input))
    pascal_cases

let test_singularize () =
  List.iter
    (fun (input, expected) ->
      check Alcotest.string input expected (N.singularize input))
    [
      ("items", "item"); ("entries", "entry"); ("boxes", "box");
      ("classes", "class"); ("people", "Person" |> String.lowercase_ascii);
      ("glass", "glass"); ("item", "item"); ("s", "s"); ("dishes", "dish");
    ]

let test_pluralize () =
  List.iter
    (fun (input, expected) ->
      check Alcotest.string input expected (N.pluralize input))
    [
      ("item", "items"); ("entry", "entries"); ("box", "boxes");
      ("class", "classes"); ("person", "people"); ("day", "days");
      ("dish", "dishes");
    ]

let test_fresh_pool () =
  let pool = N.create_pool () in
  check Alcotest.string "first" "Name" (N.fresh pool "Name");
  (* Section 6.3: "a number is appended to the end as in PascalCase2" *)
  check Alcotest.string "second" "Name2" (N.fresh pool "Name");
  check Alcotest.string "third" "Name3" (N.fresh pool "Name");
  check Alcotest.string "other names unaffected" "Other" (N.fresh pool "Other");
  check Alcotest.string "collision with suffixed" "Name4" (N.fresh pool "Name")

let suite =
  [
    tc "pascal_case" `Quick test_pascal;
    tc "singularize" `Quick test_singularize;
    tc "pluralize" `Quick test_pluralize;
    tc "fresh pool (PascalCase2 rule)" `Quick test_fresh_pool;
  ]
