(* Generating documents from shapes (the inverse of inference). *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module Gen = Fsdata_core.Shape_gen
module SC = Fsdata_core.Shape_check
module Infer = Fsdata_core.Infer
module P = Fsdata_core.Preference
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let test_witnesses () =
  let cases =
    [
      Shape.Null;
      Shape.Primitive Shape.Int;
      Shape.Primitive Shape.Date;
      Shape.Primitive Shape.Bit;
      Shape.Nullable (Shape.Primitive Shape.String);
      Shape.record "p" [ ("x", Shape.Primitive Shape.Int) ];
      Shape.collection (Shape.Primitive Shape.Bool);
      Shape.collection Shape.Bottom;
      Shape.hetero
        [ (Shape.Primitive Shape.Int, Mult.Single);
          (Shape.Primitive Shape.String, Mult.Multiple) ];
      Shape.any;
      Shape.top [ Shape.record "p" [] ];
    ]
  in
  List.iter
    (fun s ->
      List.iteri
        (fun seed d ->
          if not (SC.has_shape s d) then
            Alcotest.failf "sample %d of %a does not conform: %a" seed Shape.pp
              s Dv.pp d)
        (Gen.samples ~count:4 s))
    cases

let test_bottom_rejected () =
  Alcotest.check_raises "bottom has no witness"
    (Invalid_argument "Shape_gen.sample: bottom has no witness") (fun () ->
      ignore (Gen.sample Shape.Bottom))

let test_deterministic () =
  let s = Shape.record "p" [ ("x", Shape.Primitive Shape.Int) ] in
  check data_testable "same seed, same document" (Gen.sample ~seed:3 s)
    (Gen.sample ~seed:3 s)

(* no bare bottoms except as empty-collection elements *)
let rec bottom_free (s : Shape.t) =
  match s with
  | Shape.Bottom -> false
  | Shape.Null | Shape.Primitive _ -> true
  | Shape.Nullable p -> bottom_free p
  | Shape.Record { fields; _ } -> List.for_all (fun (_, f) -> bottom_free f) fields
  | Shape.Collection entries ->
      List.for_all (fun (e : Shape.entry) -> bottom_free e.shape) entries
  | Shape.Top labels -> List.for_all bottom_free labels

let prop_sample_conforms =
  QCheck2.Test.make ~name:"hasShape(s, sample s)" ~count:400 ~print:print_shape
    gen_core_shape (fun s ->
      (not (bottom_free s))
      || List.for_all (fun d -> SC.has_shape s d) (Gen.samples ~count:3 s))

let prop_sample_shape_preferred =
  QCheck2.Test.make ~name:"S(sample s) \xe2\x8a\x91 s (core shapes)" ~count:400
    ~print:print_shape gen_core_shape (fun s ->
      (not (bottom_free s))
      || List.for_all
           (fun d -> P.is_preferred (Infer.shape_of_value ~mode:`Paper d) s)
           (Gen.samples ~count:3 s))

(* round-trip through the provider: the sample of an inferred shape can be
   read back through the type provided from the original samples *)
let prop_sample_readable =
  QCheck2.Test.make ~name:"provided code accepts generated samples"
    ~count:150 ~print:print_data gen_plain_data (fun d ->
      let shape = Infer.shape_of_value ~mode:`Paper d in
      let p = Fsdata_provider.Provide.provide shape in
      let sample = Gen.sample shape in
      match
        Fsdata_foo.Eval.eval p.Fsdata_provider.Provide.classes
          (Fsdata_provider.Provide.apply p sample)
      with
      | Fsdata_foo.Eval.Value _ -> true
      | _ -> false)

let suite =
  [
    tc "witnesses conform" `Quick test_witnesses;
    tc "bottom rejected" `Quick test_bottom_rejected;
    tc "deterministic" `Quick test_deterministic;
    QCheck_alcotest.to_alcotest prop_sample_conforms;
    QCheck_alcotest.to_alcotest prop_sample_shape_preferred;
    QCheck_alcotest.to_alcotest prop_sample_readable;
  ]
