(* JSON parser and printer tests. *)

module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json
open Generators

let check = Alcotest.check
let tc = Alcotest.test_case
let parse = Json.parse

let obj fields = Dv.Record (Dv.json_record_name, fields)

let test_literals () =
  check data_testable "true" (Dv.Bool true) (parse "true");
  check data_testable "false" (Dv.Bool false) (parse "false");
  check data_testable "null" Dv.Null (parse "null");
  check data_testable "string" (Dv.String "hi") (parse {|"hi"|});
  check data_testable "empty object" (obj []) (parse "{}");
  check data_testable "empty array" (Dv.List []) (parse "[]")

let test_numbers () =
  check data_testable "int" (Dv.Int 42) (parse "42");
  check data_testable "negative int" (Dv.Int (-7)) (parse "-7");
  check data_testable "zero" (Dv.Int 0) (parse "0");
  check data_testable "float" (Dv.Float 3.5) (parse "3.5");
  check data_testable "exponent is float" (Dv.Float 100.) (parse "1e2");
  check data_testable "negative exponent" (Dv.Float 0.01) (parse "1e-2");
  check data_testable "capital exponent" (Dv.Float 120.) (parse "1.2E2");
  check data_testable "frac + exp" (Dv.Float 150.) (parse "1.5e2");
  (* int too large for a native int falls back to float *)
  check data_testable "huge int becomes float"
    (Dv.Float 1e100)
    (parse ("1" ^ String.make 100 '0'))

let test_strings () =
  check data_testable "escapes"
    (Dv.String "a\"b\\c/d\be\012f\ng\rh\ti")
    (parse {|"a\"b\\c\/d\be\ff\ng\rh\ti"|});
  check data_testable "unicode escape" (Dv.String "\xc3\xa9")
    (parse {|"\u00e9"|});
  check data_testable "ascii unicode escape" (Dv.String "A")
    (parse {|"\u0041"|});
  check data_testable "surrogate pair"
    (Dv.String "\xf0\x9d\x84\x9e")
    (parse {|"\ud834\udd1e"|});
  check data_testable "utf-8 passthrough" (Dv.String "caf\xc3\xa9")
    (parse "\"caf\xc3\xa9\"")

let test_nesting () =
  check data_testable "nested"
    (obj
       [
         ("a", Dv.List [ Dv.Int 1; obj [ ("b", Dv.Null) ] ]);
         ("c", Dv.String "x");
       ])
    (parse {|{ "a": [1, {"b": null}], "c": "x" }|})

let test_duplicate_keys_last_wins () =
  check data_testable "last binding wins" (obj [ ("a", Dv.Int 2) ])
    (parse {|{"a": 1, "a": 2}|})

let expect_error ?(contains = "") src () =
  match Json.parse_result src with
  | Ok d -> Alcotest.failf "expected a parse error, got %a" Dv.pp d
  | Error msg ->
      if contains <> "" && not (Astring.String.is_infix ~affix:contains msg)
      then Alcotest.failf "error %S does not mention %S" msg contains

let test_error_positions () =
  match Json.parse_result "{\n  \"a\": tru\n}" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg ->
      check Alcotest.bool "mentions line 2" true
        (Astring.String.is_infix ~affix:"line 2" msg)

let test_parse_many () =
  check (Alcotest.list data_testable) "three documents"
    [ Dv.Int 1; obj []; Dv.List [] ]
    (Json.parse_many "1 {} []");
  check (Alcotest.list data_testable) "empty input" [] (Json.parse_many "  ")

let test_print_compact () =
  check Alcotest.string "compact" {|{"a":[1,2.5,null,true,"x"]}|}
    (Json.to_string
       (obj [ ("a", Dv.List [ Dv.Int 1; Dv.Float 2.5; Dv.Null; Dv.Bool true; Dv.String "x" ]) ]))

let test_print_pretty () =
  check Alcotest.string "indented"
    "{\n  \"a\": [\n    1\n  ]\n}"
    (Json.to_string ~indent:2 (obj [ ("a", Dv.List [ Dv.Int 1 ]) ]))

let test_print_escapes () =
  check Alcotest.string "escaped" {|"a\"b\\c\nd\u0001"|}
    (Json.to_string (Dv.String "a\"b\\c\nd\001"))

(* Round-trip: print then parse gives back the value (XML-derived record
   names are not preserved by JSON printing, so rename records first). *)
let rec jsonify (d : Dv.t) : Dv.t =
  match d with
  | Dv.Record (_, fields) ->
      Dv.Record
        (Dv.json_record_name, List.map (fun (k, v) -> (k, jsonify v)) fields)
  | Dv.List ds -> Dv.List (List.map jsonify ds)
  | other -> other

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse (to_string d) = d" ~count:300
    ~print:print_data gen_data (fun d ->
      let d = jsonify d in
      Dv.equal d (parse (Json.to_string d)))

let prop_roundtrip_pretty =
  QCheck2.Test.make ~name:"parse (to_string ~indent d) = d" ~count:200
    ~print:print_data gen_data (fun d ->
      let d = jsonify d in
      Dv.equal d (parse (Json.to_string ~indent:2 d)))

let suite =
  [
    tc "literals" `Quick test_literals;
    tc "numbers" `Quick test_numbers;
    tc "string escapes" `Quick test_strings;
    tc "nesting" `Quick test_nesting;
    tc "duplicate keys: last wins" `Quick test_duplicate_keys_last_wins;
    tc "error: truncated literal" `Quick (expect_error "tru");
    tc "error: trailing content" `Quick (expect_error "1 2" ~contains:"trailing");
    tc "error: lone minus" `Quick (expect_error "-");
    tc "error: leading zero digits ok but 01 is trailing" `Quick
      (expect_error "01" ~contains:"trailing");
    tc "error: unterminated string" `Quick (expect_error {|"abc|});
    tc "error: unterminated array" `Quick (expect_error "[1, 2");
    tc "error: unterminated object" `Quick (expect_error {|{"a": 1|});
    tc "error: bad escape" `Quick (expect_error {|"\q"|});
    tc "error: lone surrogate" `Quick (expect_error {|"\ud834"|});
    tc "error: control char in string" `Quick (expect_error "\"a\x01b\"");
    tc "error: missing colon" `Quick (expect_error {|{"a" 1}|});
    tc "error: empty input" `Quick (expect_error "");
    tc "error positions" `Quick test_error_positions;
    tc "parse_many" `Quick test_parse_many;
    tc "print: compact" `Quick test_print_compact;
    tc "print: pretty" `Quick test_print_pretty;
    tc "print: escapes" `Quick test_print_escapes;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_pretty;
  ]

let test_depth_guard () =
  (* 10_001 nested arrays must raise a parse error, not overflow *)
  let deep = String.make 10_001 '[' ^ String.make 10_001 ']' in
  (match Json.parse_result deep with
  | Error msg ->
      check Alcotest.bool "mentions nesting" true
        (Astring.String.is_infix ~affix:"nesting" msg)
  | Ok _ -> Alcotest.fail "expected depth error");
  (* but deep-but-reasonable nesting parses fine *)
  let ok = String.make 5_000 '[' ^ "1" ^ String.make 5_000 ']' in
  match Json.parse_result ok with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "5000 levels should parse: %s" e

let suite = suite @ [ tc "nesting depth guard" `Quick test_depth_guard ]
