(* JSON parser and printer tests. *)

module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json
open Generators

let check = Alcotest.check
let tc = Alcotest.test_case
let parse = Json.parse

let obj fields = Dv.Record (Dv.json_record_name, fields)

let test_literals () =
  check data_testable "true" (Dv.Bool true) (parse "true");
  check data_testable "false" (Dv.Bool false) (parse "false");
  check data_testable "null" Dv.Null (parse "null");
  check data_testable "string" (Dv.String "hi") (parse {|"hi"|});
  check data_testable "empty object" (obj []) (parse "{}");
  check data_testable "empty array" (Dv.List []) (parse "[]")

let test_numbers () =
  check data_testable "int" (Dv.Int 42) (parse "42");
  check data_testable "negative int" (Dv.Int (-7)) (parse "-7");
  check data_testable "zero" (Dv.Int 0) (parse "0");
  check data_testable "float" (Dv.Float 3.5) (parse "3.5");
  check data_testable "exponent is float" (Dv.Float 100.) (parse "1e2");
  check data_testable "negative exponent" (Dv.Float 0.01) (parse "1e-2");
  check data_testable "capital exponent" (Dv.Float 120.) (parse "1.2E2");
  check data_testable "frac + exp" (Dv.Float 150.) (parse "1.5e2");
  (* int too large for a native int falls back to float *)
  check data_testable "huge int becomes float"
    (Dv.Float 1e100)
    (parse ("1" ^ String.make 100 '0'))

let test_strings () =
  check data_testable "escapes"
    (Dv.String "a\"b\\c/d\be\012f\ng\rh\ti")
    (parse {|"a\"b\\c\/d\be\ff\ng\rh\ti"|});
  check data_testable "unicode escape" (Dv.String "\xc3\xa9")
    (parse {|"\u00e9"|});
  check data_testable "ascii unicode escape" (Dv.String "A")
    (parse {|"\u0041"|});
  check data_testable "surrogate pair"
    (Dv.String "\xf0\x9d\x84\x9e")
    (parse {|"\ud834\udd1e"|});
  check data_testable "utf-8 passthrough" (Dv.String "caf\xc3\xa9")
    (parse "\"caf\xc3\xa9\"")

let test_nesting () =
  check data_testable "nested"
    (obj
       [
         ("a", Dv.List [ Dv.Int 1; obj [ ("b", Dv.Null) ] ]);
         ("c", Dv.String "x");
       ])
    (parse {|{ "a": [1, {"b": null}], "c": "x" }|})

let test_duplicate_keys_last_wins () =
  check data_testable "last binding wins" (obj [ ("a", Dv.Int 2) ])
    (parse {|{"a": 1, "a": 2}|})

let expect_error ?(contains = "") src () =
  match Json.parse_result src with
  | Ok d -> Alcotest.failf "expected a parse error, got %a" Dv.pp d
  | Error msg ->
      if contains <> "" && not (Astring.String.is_infix ~affix:contains msg)
      then Alcotest.failf "error %S does not mention %S" msg contains

let test_error_positions () =
  match Json.parse_result "{\n  \"a\": tru\n}" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg ->
      check Alcotest.bool "mentions line 2" true
        (Astring.String.is_infix ~affix:"line 2" msg)

let test_parse_many () =
  check (Alcotest.list data_testable) "three documents"
    [ Dv.Int 1; obj []; Dv.List [] ]
    (Json.parse_many "1 {} []");
  check (Alcotest.list data_testable) "empty input" [] (Json.parse_many "  ")

let test_fold_many () =
  (* chunks arrive in order, each at most chunk_size long, and
     concatenate to parse_many *)
  let src = "1 2 3 4 5 6 7" in
  let chunks =
    List.rev (Json.fold_many ~chunk_size:3 (fun acc c -> c :: acc) [] src)
  in
  Alcotest.(check (list int))
    "chunk sizes" [ 3; 3; 1 ]
    (List.map List.length chunks);
  check (Alcotest.list data_testable) "concatenation is parse_many"
    (Json.parse_many src) (List.concat chunks);
  Alcotest.check_raises "chunk_size 0 rejected"
    (Invalid_argument "Json.fold_many: chunk_size must be positive") (fun () ->
      ignore (Json.fold_many ~chunk_size:0 (fun () _ -> ()) () "1"))

(* Positions in Parse_error must be relative to the whole stream, not to
   the chunk being parsed — lock the exact line and column down. *)
let test_fold_many_error_offsets () =
  let src = "{\"a\": 1}\n{\"b\": 2}\n{\"c\": tru}" in
  match Json.fold_many ~chunk_size:1 (fun () _ -> ()) () src with
  | () -> Alcotest.fail "expected Parse_error"
  | exception Json.Parse_error { line; column; _ } ->
      Alcotest.(check (pair int int))
        "stream-global line and column" (3, 10) (line, column)

let test_cursor_basics () =
  let c = Json.Cursor.create () in
  check (Alcotest.list data_testable) "first fragment"
    [ Dv.Int 1; obj [] ]
    (Json.Cursor.feed c "1 {} [tru");
  check (Alcotest.list data_testable) "split document completes"
    [ Dv.List [ Dv.Bool true ] ]
    (Json.Cursor.feed c "e]");
  (* a number ending flush with the buffer could still grow: it must be
     retained, not emitted early *)
  check (Alcotest.list data_testable) "number held at fragment boundary" []
    (Json.Cursor.feed c "12");
  check (Alcotest.list data_testable) "…and continued by the next fragment"
    [ Dv.Int 1234 ]
    (Json.Cursor.feed c "34 ");
  check (Alcotest.list data_testable) "finish flushes a complete tail"
    [ Dv.Int 5 ]
    (let _ = Json.Cursor.feed c "5" in
     Json.Cursor.finish c)

let test_cursor_error_offsets () =
  (* error inside a later fragment: positions count from the start of the
     whole stream fed so far *)
  let c = Json.Cursor.create () in
  let feed s = ignore (Json.Cursor.feed c s) in
  feed "{\"a\":\n 1}\n{\"b\":";
  feed " 2}\n";
  (match Json.Cursor.feed c "{\"x\": tru}" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Json.Parse_error { line; column; _ } ->
      Alcotest.(check (pair int int))
        "error position spans fragments" (4, 10) (line, column));
  (* retained-prefix case: the error lands in text carried over from an
     earlier fragment, so the bol offset is negative internally *)
  let c = Json.Cursor.create () in
  ignore (Json.Cursor.feed c "12 {\"a\"");
  (match Json.Cursor.feed c ": x}" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Json.Parse_error { line; column; _ } ->
      Alcotest.(check (pair int int))
        "position inside retained text" (1, 10) (line, column));
  (* finish on an incomplete tail reports where the tail began *)
  let c = Json.Cursor.create () in
  ignore (Json.Cursor.feed c "1\n2\n[3,");
  match Json.Cursor.finish c with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Json.Parse_error { line; _ } ->
      Alcotest.(check int) "truncated tail line" 3 line

let test_print_compact () =
  check Alcotest.string "compact" {|{"a":[1,2.5,null,true,"x"]}|}
    (Json.to_string
       (obj [ ("a", Dv.List [ Dv.Int 1; Dv.Float 2.5; Dv.Null; Dv.Bool true; Dv.String "x" ]) ]))

let test_print_pretty () =
  check Alcotest.string "indented"
    "{\n  \"a\": [\n    1\n  ]\n}"
    (Json.to_string ~indent:2 (obj [ ("a", Dv.List [ Dv.Int 1 ]) ]))

let test_print_escapes () =
  check Alcotest.string "escaped" {|"a\"b\\c\nd\u0001"|}
    (Json.to_string (Dv.String "a\"b\\c\nd\001"))

(* Round-trip: print then parse gives back the value (XML-derived record
   names are not preserved by JSON printing, so rename records first). *)
let rec jsonify (d : Dv.t) : Dv.t =
  match d with
  | Dv.Record (_, fields) ->
      Dv.Record
        (Dv.json_record_name, List.map (fun (k, v) -> (k, jsonify v)) fields)
  | Dv.List ds -> Dv.List (List.map jsonify ds)
  | other -> other

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse (to_string d) = d" ~count:300
    ~print:print_data gen_data (fun d ->
      let d = jsonify d in
      Dv.equal d (parse (Json.to_string d)))

let prop_roundtrip_pretty =
  QCheck2.Test.make ~name:"parse (to_string ~indent d) = d" ~count:200
    ~print:print_data gen_data (fun d ->
      let d = jsonify d in
      Dv.equal d (parse (Json.to_string ~indent:2 d)))

let suite =
  [
    tc "literals" `Quick test_literals;
    tc "numbers" `Quick test_numbers;
    tc "string escapes" `Quick test_strings;
    tc "nesting" `Quick test_nesting;
    tc "duplicate keys: last wins" `Quick test_duplicate_keys_last_wins;
    tc "error: truncated literal" `Quick (expect_error "tru");
    tc "error: trailing content" `Quick (expect_error "1 2" ~contains:"trailing");
    tc "error: lone minus" `Quick (expect_error "-");
    tc "error: leading zero digits ok but 01 is trailing" `Quick
      (expect_error "01" ~contains:"trailing");
    tc "error: unterminated string" `Quick (expect_error {|"abc|});
    tc "error: unterminated array" `Quick (expect_error "[1, 2");
    tc "error: unterminated object" `Quick (expect_error {|{"a": 1|});
    tc "error: bad escape" `Quick (expect_error {|"\q"|});
    tc "error: lone surrogate" `Quick (expect_error {|"\ud834"|});
    tc "error: control char in string" `Quick (expect_error "\"a\x01b\"");
    tc "error: missing colon" `Quick (expect_error {|{"a" 1}|});
    tc "error: empty input" `Quick (expect_error "");
    tc "error positions" `Quick test_error_positions;
    tc "parse_many" `Quick test_parse_many;
    tc "fold_many" `Quick test_fold_many;
    tc "fold_many error offsets" `Quick test_fold_many_error_offsets;
    tc "cursor: incremental documents" `Quick test_cursor_basics;
    tc "cursor: stream-global error offsets" `Quick test_cursor_error_offsets;
    tc "print: compact" `Quick test_print_compact;
    tc "print: pretty" `Quick test_print_pretty;
    tc "print: escapes" `Quick test_print_escapes;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_pretty;
  ]

let test_depth_guard () =
  (* 10_001 nested arrays must raise a parse error, not overflow *)
  let deep = String.make 10_001 '[' ^ String.make 10_001 ']' in
  (match Json.parse_result deep with
  | Error msg ->
      check Alcotest.bool "mentions nesting" true
        (Astring.String.is_infix ~affix:"nesting" msg)
  | Ok _ -> Alcotest.fail "expected depth error");
  (* but deep-but-reasonable nesting parses fine *)
  let ok = String.make 5_000 '[' ^ "1" ^ String.make 5_000 ']' in
  match Json.parse_result ok with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "5000 levels should parse: %s" e

let suite = suite @ [ tc "nesting depth guard" `Quick test_depth_guard ]
