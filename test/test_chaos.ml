(* Chaos suite (ISSUE 7): the live server under hostile and degraded
   conditions. Each socket test boots a real server on an ephemeral
   port (Server.run ~stop ~on_ready in its own domain) and drives it
   over real connections — misbehaving clients, injected socket faults
   (Fault_net), killed workers — asserting the server answers
   correctly, sheds cleanly, and survives. Unit tests for the
   robustness primitives (Deadline, Supervisor, Fault_net) ride
   along. *)

module Server = Fsdata_serve.Server
module Http = Fsdata_serve.Http
module Deadline = Fsdata_serve.Deadline
module Supervisor = Fsdata_serve.Supervisor
module Fault_net = Fsdata_serve.Fault_net
module Metrics = Fsdata_obs.Metrics

let check = Alcotest.check
let tc = Alcotest.test_case
let is_infix affix s = Astring.String.is_infix ~affix s

(* Instrument registration is idempotent by name, so this reads the
   counters server.ml registered. *)
let counter_value name = Metrics.value (Metrics.counter name)

(* ----- unit tests: Deadline ----- *)

let test_deadline_basics () =
  check Alcotest.bool "never is not expired" false (Deadline.expired Deadline.never);
  check Alcotest.bool "after_ms 0 is already expired" true
    (Deadline.expired (Deadline.after_ms 0));
  check Alcotest.bool "negative budget is already expired" true
    (Deadline.expired (Deadline.after_ms (-5)));
  let far = Deadline.after_ms 60_000 in
  check Alcotest.bool "a future deadline is live" false (Deadline.expired far);
  check Alcotest.bool "min picks the earlier deadline" true
    (Deadline.expired (Deadline.min far (Deadline.after_ms 0)));
  check Alcotest.bool "min with never keeps the finite one live" false
    (Deadline.expired (Deadline.min Deadline.never far));
  check Alcotest.bool "never has infinite remaining" true
    (Deadline.remaining_seconds Deadline.never = infinity);
  check Alcotest.bool "a live deadline has positive remaining" true
    (Deadline.remaining_seconds far > 0.);
  check (Alcotest.float 0.0) "an expired deadline has zero remaining" 0.
    (Deadline.remaining_seconds (Deadline.after_ms 0));
  Deadline.check Deadline.never;
  (match Deadline.check (Deadline.after_ms 0) with
  | () -> Alcotest.fail "check on an expired deadline must raise"
  | exception Deadline.Expired -> ());
  check Alcotest.bool "cancel token fires once expired" true
    (Deadline.cancel (Deadline.after_ms 0) ());
  check Alcotest.bool "cancel token on never stays quiet" false
    (Deadline.cancel Deadline.never ())

(* ----- unit tests: Supervisor ----- *)

let test_supervisor_restarts () =
  let logged = ref [] in
  let calls = ref 0 in
  Supervisor.supervise ~name:"chaos-unit" ~base_backoff_ms:1 ~max_backoff_ms:4
    ~log:(fun c -> logged := c :: !logged)
    ~should_restart:(fun () -> true)
    (fun () ->
      incr calls;
      if !calls < 3 then failwith "boom");
  check Alcotest.int "restarted until a clean return" 3 !calls;
  check Alcotest.int "both crashes logged" 2 (List.length !logged);
  match Supervisor.last_crash () with
  | None -> Alcotest.fail "no crash recorded"
  | Some c ->
      check Alcotest.string "crash names the loop" "chaos-unit" c.Supervisor.name;
      check Alcotest.bool "crash keeps the message" true
        (is_infix "boom" c.Supervisor.message)

let test_supervisor_backoff_reset () =
  (* the ladder climbs 1→2→4→8 while crashes are instant, then resets to
     the base after a healthy run — and the backoff sleep itself must
     not count as healthy time, or a crash-looping worker at max backoff
     would reset the ladder forever *)
  let ladder = ref [] in
  let calls = ref 0 in
  Supervisor.supervise ~name:"chaos-backoff" ~base_backoff_ms:1
    ~max_backoff_ms:8
    ~healthy_after_ns:2_000_000L (* 2ms of real run time is "healthy" *)
    ~on_restart:(fun b -> ladder := b :: !ladder)
    ~log:(fun _ -> ())
    ~should_restart:(fun () -> true)
    (fun () ->
      incr calls;
      match !calls with
      | n when n <= 5 -> failwith "instant crash" (* climb: 1 2 4 8 8 *)
      | 6 ->
          Unix.sleepf 0.01;
          failwith "crash after a healthy run" (* next backoff resets *)
      | 7 -> failwith "instant again" (* restart from the base *)
      | _ -> ());
  check (Alcotest.list Alcotest.int) "the backoff ladder"
    [ 1; 2; 4; 8; 8; 8; 1 ]
    (List.rev !ladder)

let test_supervisor_respects_stop () =
  let calls = ref 0 in
  Supervisor.supervise ~name:"chaos-stop" ~base_backoff_ms:1
    ~log:(fun _ -> ())
    ~should_restart:(fun () -> false)
    (fun () ->
      incr calls;
      failwith "boom");
  check Alcotest.int "no restart once told to stop" 1 !calls

(* ----- unit tests: Fault_net ----- *)

let test_fault_net_shim () =
  let t = Fault_net.create () in
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
  @@ fun () ->
  let buf = Bytes.create 64 in
  ignore (Unix.write_substring w "hello world" 0 11);
  check Alcotest.int "None is a pass-through" 11
    (Fault_net.read None r buf 0 64);
  ignore (Unix.write_substring w "abcdef" 0 6);
  Fault_net.set_max_read t 2;
  check Alcotest.int "reads clamp to max_read" 2
    (Fault_net.read (Some t) r buf 0 64);
  Fault_net.set_max_read t 0;
  Fault_net.inject_read t [ Fault_net.Error Unix.ECONNRESET ];
  (match Fault_net.read (Some t) r buf 0 64 with
  | _ -> Alcotest.fail "expected the injected reset"
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ());
  check Alcotest.int "the queue drains: next read proceeds" 4
    (Fault_net.read (Some t) r buf 0 64);
  Fault_net.inject_write t [ Fault_net.Kill ];
  (match Fault_net.write_substring (Some t) w "x" 0 1 with
  | _ -> Alcotest.fail "expected the injected kill"
  | exception Fault_net.Worker_killed -> ());
  Fault_net.set_max_write t 3;
  check Alcotest.int "writes clamp to max_write" 3
    (Fault_net.write_substring (Some t) w "abcdef" 0 6);
  Fault_net.set_max_write t 0;
  let t0 = Unix.gettimeofday () in
  Fault_net.inject_read t [ Fault_net.Delay 0.05 ];
  ignore (Fault_net.read (Some t) r buf 0 64);
  check Alcotest.bool "delay stalls the call before proceeding" true
    (Unix.gettimeofday () -. t0 >= 0.04);
  check Alcotest.int "every consumed fault is counted" 3 (Fault_net.injected t)

(* ----- socket-test plumbing ----- *)

let rec nap s =
  try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> nap (s /. 2.)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let base_cfg =
  { Server.default_config with Server.workers = 2; Server.timeout_ms = 2_000 }

(* Boot a server on an ephemeral port in its own domain; the callback
   gets the port and the drain flag, and the server is always drained
   and joined afterwards. *)
let with_server ?(cfg = base_cfg) f =
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~stop
          ~on_ready:(fun p -> Atomic.set port p)
          { cfg with Server.port = 0; Server.host = "127.0.0.1" })
  in
  let give_up = Unix.gettimeofday () +. 10. in
  while Atomic.get port = 0 && Unix.gettimeofday () < give_up do
    nap 0.005
  done;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join srv)
    (fun () ->
      if Atomic.get port = 0 then Alcotest.fail "server did not come up";
      f ~port:(Atomic.get port) ~stop)

let rec connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () -> fd
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      close_quiet fd;
      nap 0.005;
      connect port
  | exception e ->
      close_quiet fd;
      raise e

let send_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let http_request ?(meth = "POST") ?(headers = []) ?(body = "") path =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  List.iter (fun (k, v) -> Buffer.add_string b (k ^ ": " ^ v ^ "\r\n")) headers;
  if body <> "" then
    Buffer.add_string b
      (Printf.sprintf "content-length: %d\r\n" (String.length body));
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b

type reply = { status : int; headers : (string * string) list; body : string }

(* Read one response off the socket: headers up to the blank line, then
   exactly content-length body bytes. Raises [Failure] if the peer
   closes first — which some chaos tests expect. *)
let recv_response fd =
  let buf = Buffer.create 1024 in
  let bytes = Bytes.create 4096 in
  let read_more () =
    match Unix.read fd bytes 0 (Bytes.length bytes) with
    | 0 -> false
    | n ->
        Buffer.add_subbytes buf bytes 0 n;
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
    (* a dropped connection may surface as a reset rather than EOF *)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false
  in
  let rec header_end () =
    match Astring.String.find_sub ~sub:"\r\n\r\n" (Buffer.contents buf) with
    | Some i -> i
    | None ->
        if read_more () then header_end ()
        else failwith "peer closed before response headers"
  in
  let hdr_end = header_end () in
  let head = String.sub (Buffer.contents buf) 0 hdr_end in
  let status, headers =
    match String.split_on_char '\n' head with
    | [] -> failwith "empty response"
    | first :: rest ->
        let status =
          match String.split_on_char ' ' (String.trim first) with
          | _ :: code :: _ -> int_of_string code
          | _ -> failwith "malformed status line"
        in
        let headers =
          List.filter_map
            (fun line ->
              let line = String.trim line in
              match String.index_opt line ':' with
              | None -> None
              | Some i ->
                  Some
                    ( String.lowercase_ascii (String.sub line 0 i),
                      String.trim
                        (String.sub line (i + 1) (String.length line - i - 1))
                    ))
            rest
        in
        (status, headers)
  in
  let clen =
    match List.assoc_opt "content-length" headers with
    | Some v -> int_of_string (String.trim v)
    | None -> 0
  in
  let total = hdr_end + 4 + clen in
  let rec fill () =
    if Buffer.length buf < total then
      if read_more () then fill () else failwith "peer closed mid-body"
  in
  fill ();
  { status; headers; body = String.sub (Buffer.contents buf) (hdr_end + 4) clen }

let corpus = "{\"name\": \"ada\", \"age\": 36}\n{\"name\": \"grace\"}\n"

(* The CLI-equivalent reference: the same corpus through Server.handle
   directly, no sockets. *)
let reference_body body =
  let t = Server.create Server.default_config in
  (Server.handle t
     {
       Http.meth = "POST";
       path = "/infer";
       query = [];
       version = `Http_1_1;
       headers = [];
       body;
     })
    .Http.resp_body

(* ----- healthy connections stay byte-identical to the CLI path ----- *)

let test_healthy_byte_identity () =
  let fault = Fault_net.create () in
  let cfg = { base_cfg with Server.fault = Some fault } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let expected = reference_body corpus in
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      let ask () =
        send_all fd (http_request ~body:corpus "/infer");
        recv_response fd
      in
      let r1 = ask () in
      check Alcotest.int "200 over the wire" 200 r1.status;
      check Alcotest.string "socket response ≡ handler path" expected r1.body;
      (* the server reading one byte at a time changes nothing *)
      Fault_net.set_max_read fault 1;
      let r2 = ask () in
      check Alcotest.string "byte-identical under short reads" expected r2.body;
      Fault_net.set_max_read fault 0;
      (* torn writes: the response still arrives complete *)
      Fault_net.set_max_write fault 3;
      let r3 = ask () in
      check Alcotest.string "byte-identical under torn writes" expected r3.body;
      Fault_net.set_max_write fault 0)

let test_slow_client_within_deadline () =
  with_server (fun ~port ~stop:_ ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      let raw = http_request ~body:corpus "/infer" in
      let n = String.length raw in
      let i = ref 0 in
      while !i < n do
        let k = min 16 (n - !i) in
        send_all fd (String.sub raw !i k);
        i := !i + k;
        nap 0.01
      done;
      check Alcotest.int "a slow but live client is served" 200
        (recv_response fd).status)

(* ----- deadlines: stalls answer 408/504 within twice the budget ----- *)

let test_stalled_header_times_out () =
  let cfg = { base_cfg with Server.timeout_ms = 400 } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      let t0 = Unix.gettimeofday () in
      send_all fd "POST /infer HTTP/1.1\r\ncontent-le";
      let r = recv_response fd in
      let elapsed = Unix.gettimeofday () -. t0 in
      check Alcotest.int "stalled header read answers 408" 408 r.status;
      check Alcotest.bool "within twice the deadline" true (elapsed < 0.8);
      check
        (Alcotest.option Alcotest.string)
        "the connection closes" (Some "close")
        (List.assoc_opt "connection" r.headers))

let test_stalled_body_times_out () =
  let cfg = { base_cfg with Server.timeout_ms = 400 } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      let t0 = Unix.gettimeofday () in
      send_all fd "POST /infer HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
      let r = recv_response fd in
      check Alcotest.int "stalled body read answers 408" 408 r.status;
      check Alcotest.bool "within twice the deadline" true
        (Unix.gettimeofday () -. t0 < 0.8))

let test_client_deadline_cut_off () =
  (* a long server timeout, tightened by X-Fsdata-Deadline-Ms: the
     trickled streamed body must be cut off by the client's 300ms, not
     the server's 10s *)
  let cfg =
    {
      base_cfg with
      Server.timeout_ms = 10_000;
      Server.stream_threshold = 1024;
    }
  in
  with_server ~cfg (fun ~port ~stop:_ ->
      let before = counter_value "serve.deadline_expired" in
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      let doc = "{\"x\": 1}\n" in
      let total = String.length doc * 1000 in
      let t0 = Unix.gettimeofday () in
      send_all fd
        (Printf.sprintf
           "POST /infer HTTP/1.1\r\n\
            x-fsdata-deadline-ms: 300\r\n\
            content-length: %d\r\n\
            \r\n"
           total);
      (* trickle documents past the deadline; the server hangs up on us
         mid-trickle, hence the try *)
      (try
         for _ = 1 to 1000 do
           send_all fd doc;
           nap 0.005
         done
       with Unix.Unix_error _ -> ());
      let r = recv_response fd in
      let elapsed = Unix.gettimeofday () -. t0 in
      check Alcotest.bool "cut off with the deadline status family" true
        (r.status = 408 || r.status = 504);
      check Alcotest.bool "within twice the client deadline" true
        (elapsed < 0.6 +. 0.2);
      check Alcotest.bool "serve.deadline_expired counted it" true
        (counter_value "serve.deadline_expired" > before))

let test_client_deadline_buffered_body () =
  (* same cut-off, but below the streaming threshold: the header must
     tighten the reader before the buffered body read, not only the
     handler *)
  let cfg = { base_cfg with Server.timeout_ms = 10_000 } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      let doc = "{\"x\": 1}\n" in
      let t0 = Unix.gettimeofday () in
      send_all fd
        (Printf.sprintf
           "POST /infer HTTP/1.1\r\n\
            x-fsdata-deadline-ms: 300\r\n\
            content-length: %d\r\n\
            \r\n"
           (String.length doc * 200));
      (try
         for _ = 1 to 200 do
           send_all fd doc;
           nap 0.01
         done
       with Unix.Unix_error _ -> ());
      let r = recv_response fd in
      check Alcotest.int "buffered body cut off with 408" 408 r.status;
      check Alcotest.bool "within twice the client deadline" true
        (Unix.gettimeofday () -. t0 < 0.8))

let test_partial_request_line_times_out () =
  (* a stall before the request line completes is still a started
     request: 408, not a silent close *)
  let cfg = { base_cfg with Server.timeout_ms = 400 } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      send_all fd "GET /hea";
      check Alcotest.int "partial request line answers 408" 408
        (recv_response fd).status)

let test_bad_deadline_header_rejected () =
  with_server (fun ~port ~stop:_ ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      send_all fd
        (http_request
           ~headers:[ ("x-fsdata-deadline-ms", "soonish") ]
           ~body:corpus "/infer");
      let r = recv_response fd in
      check Alcotest.int "400" 400 r.status;
      check Alcotest.bool "names the header" true
        (is_infix "X-Fsdata-Deadline-Ms" r.body);
      check
        (Alcotest.option Alcotest.string)
        "closes: the body may be unread" (Some "close")
        (List.assoc_opt "connection" r.headers))

(* ----- shedding: body budget and oversized bodies ----- *)

let test_body_budget_shed () =
  let cfg = { base_cfg with Server.max_inflight_bytes = 4096 } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let before = counter_value "serve.shed_total" in
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      send_all fd "POST /infer HTTP/1.1\r\ncontent-length: 8192\r\n\r\n";
      let r = recv_response fd in
      check Alcotest.int "over-budget body is shed with 503" 503 r.status;
      check
        (Alcotest.option Alcotest.string)
        "retry-after tells the client to back off" (Some "1")
        (List.assoc_opt "retry-after" r.headers);
      check Alcotest.bool "names the budget" true (is_infix "budget" r.body);
      check Alcotest.bool "serve.shed_total counted it" true
        (counter_value "serve.shed_total" > before);
      (* a request that fits is admitted as usual *)
      let fd2 = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd2) @@ fun () ->
      send_all fd2 (http_request ~body:corpus "/infer");
      check Alcotest.int "a fitting body is served" 200
        (recv_response fd2).status)

let test_oversized_body_413 () =
  let cfg = { base_cfg with Server.max_body = 1024 } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      send_all fd "POST /infer HTTP/1.1\r\ncontent-length: 4096\r\n\r\n";
      check Alcotest.int "over max_body answers 413" 413
        (recv_response fd).status)

let test_overloaded_healthz () =
  let cfg =
    {
      base_cfg with
      Server.max_inflight_bytes = 1000;
      Server.stream_threshold = 64;
      Server.timeout_ms = 5_000;
    }
  in
  with_server ~cfg (fun ~port ~stop:_ ->
      let a = connect port in
      Fun.protect ~finally:(fun () -> close_quiet a) @@ fun () ->
      (* declare a 900-byte body but send only part: the reservation is
         taken on the declared length and held while the worker waits *)
      send_all a "POST /infer HTTP/1.1\r\ncontent-length: 900\r\n\r\n";
      send_all a (String.make 100 ' ');
      nap 0.2;
      let b = connect port in
      Fun.protect ~finally:(fun () -> close_quiet b) @@ fun () ->
      send_all b (http_request ~meth:"GET" "/healthz");
      let r = recv_response b in
      check Alcotest.int "healthz degrades near the budget" 503 r.status;
      check Alcotest.bool "reports overloaded" true (is_infix "overloaded" r.body);
      check
        (Alcotest.option Alcotest.string)
        "with a retry-after" (Some "1")
        (List.assoc_opt "retry-after" r.headers);
      (* finish the body: the budget releases and health recovers *)
      send_all a (String.make 800 ' ');
      let ra = recv_response a in
      check Alcotest.bool "the streamed request still answers" true
        (ra.status = 200 || ra.status = 422);
      nap 0.05;
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_quiet c) @@ fun () ->
      send_all c (http_request ~meth:"GET" "/healthz");
      check Alcotest.int "healthy again after the release" 200
        (recv_response c).status)

(* ----- fault injection: the server outlives its connections ----- *)

let test_injected_faults_survive () =
  let fault = Fault_net.create () in
  let cfg = { base_cfg with Server.fault = Some fault } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let before = Fault_net.injected fault in
      (* a reset while reading: the connection dies, the server lives *)
      Fault_net.inject_read fault [ Fault_net.Error Unix.ECONNRESET ];
      let fd = connect port in
      send_all fd (http_request ~body:corpus "/infer");
      (match recv_response fd with
      | _ -> Alcotest.fail "expected the reset connection to drop"
      | exception Failure _ -> ());
      close_quiet fd;
      (* EPIPE while writing the response: same story *)
      Fault_net.inject_write fault [ Fault_net.Error Unix.EPIPE ];
      let fd = connect port in
      send_all fd (http_request ~body:corpus "/infer");
      (match recv_response fd with
      | _ -> Alcotest.fail "expected the broken-pipe connection to drop"
      | exception Failure _ -> ());
      close_quiet fd;
      (* EINTR is not a fault: retried transparently, the request answers *)
      Fault_net.inject_read fault [ Fault_net.Error Unix.EINTR ];
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      send_all fd (http_request ~body:corpus "/infer");
      check Alcotest.int "EINTR is retried, not fatal" 200
        (recv_response fd).status;
      check Alcotest.int "every injection was counted" (before + 3)
        (Fault_net.injected fault))

let test_early_close_survives () =
  with_server (fun ~port ~stop:_ ->
      (* five clients send a request and hang up without reading; the
         server's response writes hit closed sockets *)
      for _ = 1 to 5 do
        let fd = connect port in
        send_all fd (http_request ~body:corpus "/infer");
        close_quiet fd
      done;
      nap 0.1;
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      send_all fd (http_request ~meth:"GET" "/healthz");
      check Alcotest.int "still healthy after the rudeness" 200
        (recv_response fd).status)

let test_worker_kill_respawn () =
  let fault = Fault_net.create () in
  let cfg = { base_cfg with Server.fault = Some fault } in
  with_server ~cfg (fun ~port ~stop:_ ->
      let before = counter_value "serve.worker.crashes" in
      Fault_net.inject_read fault [ Fault_net.Kill ];
      let fd = connect port in
      send_all fd (http_request ~body:corpus "/infer");
      (match recv_response fd with
      | _ -> Alcotest.fail "expected the killed worker to drop the connection"
      | exception Failure _ -> ());
      close_quiet fd;
      nap 0.1 (* respawn backoff starts at 10ms *);
      check Alcotest.bool "serve.worker.crashes counted the kill" true
        (counter_value "serve.worker.crashes" > before);
      (match Supervisor.last_crash () with
      | None -> Alcotest.fail "no crash recorded"
      | Some c ->
          check Alcotest.bool "the crash names a worker" true
            (Astring.String.is_prefix ~affix:"worker-" c.Supervisor.name));
      (* the pool recovered: every subsequent request is served *)
      for _ = 1 to 4 do
        let fd = connect port in
        Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
        send_all fd (http_request ~body:corpus "/infer");
        check Alcotest.int "served after the respawn" 200
          (recv_response fd).status
      done)

(* ----- keep-alive discipline and drain ----- *)

let test_keep_alive_after_4xx () =
  with_server (fun ~port ~stop:_ ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      send_all fd (http_request ~meth:"GET" "/nope");
      let r404 = recv_response fd in
      check Alcotest.int "404" 404 r404.status;
      check
        (Alcotest.option Alcotest.string)
        "a handler 4xx keeps the connection" (Some "keep-alive")
        (List.assoc_opt "connection" r404.headers);
      send_all fd (http_request ~body:corpus "/infer?jobs=many");
      let r400 = recv_response fd in
      check Alcotest.int "400 on the same connection" 400 r400.status;
      send_all fd (http_request ~meth:"GET" "/healthz");
      check Alcotest.int "the connection interleaves on to a 200" 200
        (recv_response fd).status)

let test_drain_and_port_file () =
  let pf = Filename.temp_file "fsdata_chaos" ".port" in
  Sys.remove pf;
  let cfg = { base_cfg with Server.port_file = Some pf } in
  with_server ~cfg (fun ~port ~stop ->
      check Alcotest.bool "port file exists while serving" true
        (Sys.file_exists pf);
      let ic = open_in pf in
      let recorded = int_of_string (String.trim (input_line ic)) in
      close_in ic;
      check Alcotest.int "port file records the bound port" port recorded;
      let fd = connect port in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      send_all fd (http_request ~meth:"GET" "/healthz");
      check Alcotest.int "healthy before the drain" 200
        (recv_response fd).status;
      Atomic.set stop true;
      send_all fd (http_request ~meth:"GET" "/healthz");
      let r = recv_response fd in
      check Alcotest.int "healthz answers 503 during the drain" 503 r.status;
      check Alcotest.bool "and reports draining" true (is_infix "draining" r.body);
      check
        (Alcotest.option Alcotest.string)
        "drain responses close the connection" (Some "close")
        (List.assoc_opt "connection" r.headers));
  check Alcotest.bool "port file removed on exit" false (Sys.file_exists pf)

let test_signal_storm () =
  (* SIGUSR1 at a 2ms cadence interrupts select in the accept loop and
     reads in the workers; everything must retry and serve through it *)
  let old = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect ~finally:(fun () -> ignore (Sys.signal Sys.sigusr1 old))
  @@ fun () ->
  with_server (fun ~port ~stop:_ ->
      let pid = Unix.getpid () in
      let storming = Atomic.make true in
      let stormer =
        Domain.spawn (fun () ->
            while Atomic.get storming do
              Unix.kill pid Sys.sigusr1;
              nap 0.002
            done)
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set storming false;
          Domain.join stormer)
        (fun () ->
          for _ = 1 to 10 do
            let fd = connect port in
            Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
            send_all fd (http_request ~body:corpus "/infer");
            check Alcotest.int "served amid the signal storm" 200
              (recv_response fd).status
          done))

let suite =
  [
    tc "deadline: basics" `Quick test_deadline_basics;
    tc "supervisor: restarts until a clean return" `Quick
      test_supervisor_restarts;
    tc "supervisor: respects should_restart" `Quick test_supervisor_respects_stop;
    tc "supervisor: backoff ladder resets only after a healthy run" `Quick
      test_supervisor_backoff_reset;
    tc "fault_net: deterministic shim" `Quick test_fault_net_shim;
    tc "healthy responses byte-identical to the CLI path" `Quick
      test_healthy_byte_identity;
    tc "slow client inside the deadline is served" `Quick
      test_slow_client_within_deadline;
    tc "stalled header read times out" `Quick test_stalled_header_times_out;
    tc "stalled body read times out" `Quick test_stalled_body_times_out;
    tc "client deadline header cuts a trickled body off" `Quick
      test_client_deadline_cut_off;
    tc "client deadline cuts a buffered body too" `Quick
      test_client_deadline_buffered_body;
    tc "partial request line stall answers 408" `Quick
      test_partial_request_line_times_out;
    tc "bad deadline header is rejected" `Quick test_bad_deadline_header_rejected;
    tc "over-budget bodies are shed with retry-after" `Quick
      test_body_budget_shed;
    tc "oversized bodies answer 413" `Quick test_oversized_body_413;
    tc "healthz degrades to overloaded near the budget" `Quick
      test_overloaded_healthz;
    tc "injected socket faults drop one connection only" `Quick
      test_injected_faults_survive;
    tc "clients hanging up early are harmless" `Quick test_early_close_survives;
    tc "a killed worker is respawned" `Quick test_worker_kill_respawn;
    tc "keep-alive interleaves across 4xx responses" `Quick
      test_keep_alive_after_4xx;
    tc "drain: healthz 503, responses close, port file removed" `Quick
      test_drain_and_port_file;
    tc "signal storm: EINTR everywhere, served throughout" `Quick
      test_signal_storm;
  ]
