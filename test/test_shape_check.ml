(* The runtime shape test hasShape (Figure 6, Part I). *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module SC = Fsdata_core.Shape_check
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let int_ = Shape.Primitive Shape.Int
let float_ = Shape.Primitive Shape.Float
let bool_ = Shape.Primitive Shape.Bool
let string_ = Shape.Primitive Shape.String

let yes s d =
  if not (SC.has_shape s d) then
    Alcotest.failf "expected hasShape(%a, %a)" Shape.pp s Dv.pp d

let no s d =
  if SC.has_shape s d then
    Alcotest.failf "expected not hasShape(%a, %a)" Shape.pp s Dv.pp d

let test_primitives () =
  (* hasShape(string, s) / (int, i) / (bool, d) / (float, i or f) *)
  yes string_ (Dv.String "x");
  no string_ (Dv.Int 1);
  yes int_ (Dv.Int 1);
  no int_ (Dv.Float 1.0);
  yes bool_ (Dv.Bool true);
  yes bool_ (Dv.Bool false);
  (* 0/1 conforms to bool through the bit lattice; other ints do not *)
  yes bool_ (Dv.Int 1);
  yes bool_ (Dv.Int 0);
  no bool_ (Dv.Int 2);
  yes float_ (Dv.Int 1);
  yes float_ (Dv.Float 1.5);
  no float_ (Dv.String "1.5")

let test_extended_primitives () =
  yes (Shape.Primitive Shape.Bit) (Dv.Int 0);
  yes (Shape.Primitive Shape.Bit) (Dv.Int 1);
  no (Shape.Primitive Shape.Bit) (Dv.Int 2);
  no (Shape.Primitive Shape.Bit) (Dv.Bool true);
  yes (Shape.Primitive Shape.Bit0) (Dv.Int 0);
  no (Shape.Primitive Shape.Bit0) (Dv.Int 1);
  yes (Shape.Primitive Shape.Bit1) (Dv.Int 1);
  yes (Shape.Primitive Shape.Date) (Dv.String "2012-05-01");
  no (Shape.Primitive Shape.Date) (Dv.String "not a date")

let test_null_bottom_top () =
  yes Shape.Null Dv.Null;
  no Shape.Null (Dv.Int 1);
  no Shape.Bottom Dv.Null;
  no Shape.Bottom (Dv.Int 1);
  yes Shape.any (Dv.Int 1);
  yes Shape.any Dv.Null;
  yes (Shape.top [ int_ ]) (Dv.String "anything") (* labels do not restrict *)

let test_nullable () =
  yes (Shape.Nullable int_) Dv.Null;
  yes (Shape.Nullable int_) (Dv.Int 1);
  no (Shape.Nullable int_) (Dv.String "x")

let test_records () =
  let shape = Shape.record "p" [ ("x", int_); ("y", Shape.Nullable string_) ] in
  yes shape (Dv.Record ("p", [ ("x", Dv.Int 1); ("y", Dv.String "a") ]));
  (* nullable field may be null or missing (documented closure) *)
  yes shape (Dv.Record ("p", [ ("x", Dv.Int 1); ("y", Dv.Null) ]));
  yes shape (Dv.Record ("p", [ ("x", Dv.Int 1) ]));
  (* extra fields are fine; the record rule only checks the shape's fields *)
  yes shape (Dv.Record ("p", [ ("x", Dv.Int 1); ("z", Dv.Bool true) ]));
  (* but a non-nullable field must be present with the right shape *)
  no shape (Dv.Record ("p", [ ("y", Dv.String "a") ]));
  no shape (Dv.Record ("p", [ ("x", Dv.String "one") ]));
  (* name mismatch *)
  no shape (Dv.Record ("q", [ ("x", Dv.Int 1) ]));
  no shape (Dv.Int 1)

let test_collections_homogeneous () =
  let s = Shape.collection int_ in
  yes s (Dv.List [ Dv.Int 1; Dv.Int 2 ]);
  yes s (Dv.List []);
  (* hasShape([s], null) ⇝ true *)
  yes s Dv.Null;
  no s (Dv.List [ Dv.Int 1; Dv.String "x" ]);
  no s (Dv.Int 1)

let test_collections_hetero () =
  let s =
    Shape.hetero [ (Shape.record "a" [], Mult.Single); (int_, Mult.Multiple) ]
  in
  yes s (Dv.List [ Dv.Record ("a", []); Dv.Int 1 ]);
  (* elements with unknown tags are ignored (open world) *)
  yes s (Dv.List [ Dv.Record ("a", []); Dv.String "mystery" ]);
  (* null elements are ignored, but an exactly-once entry must be present:
     the Single-typed member would get stuck otherwise *)
  yes s (Dv.List [ Dv.Record ("a", []); Dv.Null ]);
  no s (Dv.List [ Dv.Null ]);
  no s (Dv.List [ Dv.Int 1 ]);
  (* a known tag with the wrong shape fails *)
  no
    (Shape.hetero
       [ (Shape.record "a" [ ("x", int_) ], Mult.Single); (int_, Mult.Multiple) ])
    (Dv.List [ Dv.Record ("a", [ ("x", Dv.String "bad") ]) ])

let test_tag_of_data () =
  let t = Alcotest.testable Fsdata_core.Tag.pp Fsdata_core.Tag.equal in
  check t "null" Fsdata_core.Tag.Null (SC.tag_of_data Dv.Null);
  check t "bool" Fsdata_core.Tag.Bool (SC.tag_of_data (Dv.Bool true));
  check t "int" Fsdata_core.Tag.Number (SC.tag_of_data (Dv.Int 1));
  check t "float" Fsdata_core.Tag.Number (SC.tag_of_data (Dv.Float 1.));
  check t "string" Fsdata_core.Tag.String (SC.tag_of_data (Dv.String "x"));
  check t "list" Fsdata_core.Tag.Collection (SC.tag_of_data (Dv.List []));
  check t "record" (Fsdata_core.Tag.Record "p") (SC.tag_of_data (Dv.Record ("p", [])))

(* has_shape is sound w.r.t. preference: if S(d) ⊑ s then hasShape(s, d). *)
let prop_preference_implies_has_shape =
  QCheck2.Test.make
    ~name:"S(d) \xe2\x8a\x91 s implies hasShape(s, d)" ~count:500
    ~print:(fun (d, s) -> print_data d ^ " / " ^ print_shape s)
    QCheck2.Gen.(pair gen_plain_data gen_core_shape)
    (fun (d, s) ->
      let sd = Fsdata_core.Infer.shape_of_value ~mode:`Paper d in
      (not (Fsdata_core.Preference.is_preferred sd s)) || SC.has_shape s d)

let suite =
  [
    tc "primitives" `Quick test_primitives;
    tc "bit and date (Section 6.2)" `Quick test_extended_primitives;
    tc "null, bottom, top" `Quick test_null_bottom_top;
    tc "nullable closure" `Quick test_nullable;
    tc "records (Figure 6 rule + closures)" `Quick test_records;
    tc "homogeneous collections" `Quick test_collections_homogeneous;
    tc "heterogeneous collections" `Quick test_collections_hetero;
    tc "tag_of_data" `Quick test_tag_of_data;
    QCheck_alcotest.to_alcotest prop_preference_implies_has_shape;
  ]
