(* Unit and property tests for the first-order data model (Section 3.4). *)

module Dv = Fsdata_data.Data_value
open Generators

let check = Alcotest.check
let tc = Alcotest.test_case

let rec_ name fields = Dv.Record (name, fields)

let test_equal_reordered () =
  let a = rec_ "p" [ ("x", Dv.Int 1); ("y", Dv.Int 2) ] in
  let b = rec_ "p" [ ("y", Dv.Int 2); ("x", Dv.Int 1) ] in
  check data_testable "fields can be freely reordered" a b

let test_unequal_name () =
  let a = rec_ "p" [ ("x", Dv.Int 1) ] in
  let b = rec_ "q" [ ("x", Dv.Int 1) ] in
  check Alcotest.bool "different record names differ" false (Dv.equal a b)

let test_unequal_value () =
  let a = rec_ "p" [ ("x", Dv.Int 1) ] in
  let b = rec_ "p" [ ("x", Dv.Int 2) ] in
  check Alcotest.bool "different field values differ" false (Dv.equal a b)

let test_int_float_distinct () =
  check Alcotest.bool "Int 1 <> Float 1." false
    (Dv.equal (Dv.Int 1) (Dv.Float 1.))

let test_record_dup_field () =
  Alcotest.check_raises "duplicate fields rejected"
    (Invalid_argument "Data_value.record: duplicate field \"x\"") (fun () ->
      ignore (Dv.record "p" [ ("x", Dv.Int 1); ("x", Dv.Int 2) ]))

let test_record_field () =
  let r = rec_ "p" [ ("x", Dv.Int 1) ] in
  check (Alcotest.option data_testable) "present" (Some (Dv.Int 1))
    (Dv.record_field "x" r);
  check (Alcotest.option data_testable) "absent" None (Dv.record_field "y" r);
  check (Alcotest.option data_testable) "not a record" None
    (Dv.record_field "x" (Dv.Int 1))

let test_size_depth () =
  let d = Dv.List [ Dv.Int 1; rec_ "p" [ ("x", Dv.Null) ] ] in
  check Alcotest.int "size" 4 (Dv.size d);
  check Alcotest.int "depth" 3 (Dv.depth d);
  check Alcotest.int "primitive size" 1 (Dv.size Dv.Null);
  check Alcotest.int "primitive depth" 1 (Dv.depth Dv.Null);
  check Alcotest.int "empty list size" 1 (Dv.size (Dv.List []));
  check Alcotest.int "empty record size" 1 (Dv.size (rec_ "p" []))

let test_is_primitive () =
  List.iter
    (fun (d, expected) ->
      check Alcotest.bool (Dv.to_string d) expected (Dv.is_primitive d))
    [
      (Dv.Null, true); (Dv.Bool true, true); (Dv.Int 0, true);
      (Dv.Float 1.5, true); (Dv.String "s", true);
      (Dv.List [], false); (rec_ "p" [], false);
    ]

let test_pp () =
  check Alcotest.string "record syntax"
    "p {x \xe2\x86\xa6 1, y \xe2\x86\xa6 null}"
    (Dv.to_string (rec_ "p" [ ("x", Dv.Int 1); ("y", Dv.Null) ]));
  check Alcotest.string "float keeps decimal point" "1.0"
    (Dv.to_string (Dv.Float 1.0));
  check Alcotest.string "list" "[1; 2]" (Dv.to_string (Dv.List [ Dv.Int 1; Dv.Int 2 ]))

(* Properties *)

let prop_compare_refl =
  QCheck2.Test.make ~name:"compare d d = 0" ~count:200 ~print:print_data
    gen_data (fun d -> Dv.compare d d = 0)

let prop_compare_antisym =
  QCheck2.Test.make ~name:"compare antisymmetric" ~count:200
    ~print:(fun (a, b) -> print_data a ^ " / " ^ print_data b)
    QCheck2.Gen.(pair gen_data gen_data)
    (fun (a, b) -> Int.compare (Dv.compare a b) (- Dv.compare b a) = 0)

let prop_equal_iff_compare =
  QCheck2.Test.make ~name:"equal iff compare = 0" ~count:200
    ~print:(fun (a, b) -> print_data a ^ " / " ^ print_data b)
    QCheck2.Gen.(pair gen_data gen_data)
    (fun (a, b) -> Dv.equal a b = (Dv.compare a b = 0))

let prop_shuffle_fields_equal =
  QCheck2.Test.make ~name:"record equality mod field order" ~count:200
    ~print:print_data gen_data (fun d ->
      let rec shuffle (d : Dv.t) : Dv.t =
        match d with
        | Dv.Record (n, fields) ->
            Dv.Record (n, List.rev_map (fun (k, v) -> (k, shuffle v)) fields)
        | Dv.List ds -> Dv.List (List.map shuffle ds)
        | other -> other
      in
      Dv.equal d (shuffle d))

let suite =
  [
    tc "equality: reordered fields" `Quick test_equal_reordered;
    tc "equality: record names" `Quick test_unequal_name;
    tc "equality: field values" `Quick test_unequal_value;
    tc "equality: int vs float" `Quick test_int_float_distinct;
    tc "record: duplicate fields rejected" `Quick test_record_dup_field;
    tc "record_field lookup" `Quick test_record_field;
    tc "size and depth" `Quick test_size_depth;
    tc "is_primitive" `Quick test_is_primitive;
    tc "printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_compare_refl;
    QCheck_alcotest.to_alcotest prop_compare_antisym;
    QCheck_alcotest.to_alcotest prop_equal_iff_compare;
    QCheck_alcotest.to_alcotest prop_shuffle_fields_equal;
  ]
