(* Date recognition tests (Section 6.2). *)

module Date = Fsdata_data.Date

let check = Alcotest.check
let tc = Alcotest.test_case

let accepts s () =
  match Date.of_string s with
  | Some _ -> ()
  | None -> Alcotest.failf "%S should parse as a date" s

let rejects s () =
  match Date.of_string s with
  | None -> ()
  | Some d -> Alcotest.failf "%S should not parse as a date (got %s)" s (Date.to_iso8601 d)

let parses s expected () =
  match Date.of_string s with
  | Some d -> check Alcotest.string s expected (Date.to_iso8601 d)
  | None -> Alcotest.failf "%S should parse" s

let test_make_validation () =
  check Alcotest.bool "valid" true (Date.make 2012 5 1 <> None);
  check Alcotest.bool "month 13" true (Date.make 2012 13 1 = None);
  check Alcotest.bool "day 32" true (Date.make 2012 1 32 = None);
  check Alcotest.bool "Feb 30" true (Date.make 2012 2 30 = None);
  check Alcotest.bool "Feb 29 leap" true (Date.make 2012 2 29 <> None);
  check Alcotest.bool "Feb 29 non-leap" true (Date.make 2013 2 29 = None);
  check Alcotest.bool "Feb 29 century" true (Date.make 1900 2 29 = None);
  check Alcotest.bool "Feb 29 400-year" true (Date.make 2000 2 29 <> None);
  check Alcotest.bool "hour 24" true (Date.make ~hour:24 2012 1 1 = None)

let test_compare () =
  let d1 = Option.get (Date.make 2012 5 1) in
  let d2 = Option.get (Date.make 2012 5 2) in
  check Alcotest.bool "ordering" true (Date.compare d1 d2 < 0);
  check Alcotest.bool "equal" true (Date.equal d1 d1)

let suite =
  [
    tc "ISO date" `Quick (parses "2012-05-01" "2012-05-01");
    tc "ISO with T time" `Quick (parses "2012-05-01T13:45:30" "2012-05-01T13:45:30");
    tc "ISO with space time" `Quick (parses "2012-05-01 13:45" "2012-05-01T13:45:00");
    tc "ISO with Z" `Quick (parses "2012-05-01T13:45:30Z" "2012-05-01T13:45:30");
    tc "ISO with offset" `Quick (parses "2012-05-01T13:45:30+02:00" "2012-05-01T13:45:30");
    tc "ISO fractional seconds" `Quick (parses "2012-05-01T13:45:30.123" "2012-05-01T13:45:30");
    tc "slashed ymd" `Quick (parses "2012/05/01" "2012-05-01");
    tc "slashed mdy" `Quick (parses "05/01/2012" "2012-05-01");
    tc "slashed dmy fallback" `Quick (parses "13/01/2012" "2012-01-13");
    tc "month name: May 3" `Quick (accepts "May 3");
    tc "month name: May 3, 2012" `Quick (parses "May 3, 2012" "2012-05-03");
    tc "month name: 3 May 2012" `Quick (parses "3 May 2012" "2012-05-03");
    tc "month name: 3 January" `Quick (accepts "3 January");
    tc "abbreviated month" `Quick (parses "Dec 25, 2015" "2015-12-25");
    tc "case-insensitive month" `Quick (accepts "may 3");
    tc "rejects: 3 kveten (Czech, Section 6.2)" `Quick (rejects "3 kveten");
    tc "rejects: bare number" `Quick (rejects "2012");
    tc "rejects: number pair" `Quick (rejects "5-1");
    tc "rejects: impossible date" `Quick (rejects "2012-13-45");
    tc "rejects: Feb 30" `Quick (rejects "2012-02-30");
    tc "rejects: random text" `Quick (rejects "scattered clouds");
    tc "rejects: empty" `Quick (rejects "");
    tc "rejects: bad time" `Quick (rejects "2012-05-01T25:99");
    tc "make validation" `Quick test_make_validation;
    tc "compare/equal" `Quick test_compare;
  ]
