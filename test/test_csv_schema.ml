(* Explicit CSV column schemas (the CsvProvider Schema parameter). *)

module Shape = Fsdata_core.Shape
module CS = Fsdata_core.Csv_schema
module Provide = Fsdata_provider.Provide
module Typed = Fsdata_runtime.Typed
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let csv = "Ozone,Temp,Date,Autofilled\n41,67,2012-05-01,0\n36.3,72,2012-05-02,1\n"

let test_parse () =
  (match CS.parse "Temp=float, Date=string?" with
  | Ok
      [
        ("Temp", Shape.Primitive Shape.Float);
        ("Date", Shape.Nullable (Shape.Primitive Shape.String));
      ] ->
      ()
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "empty schema" true (CS.parse "" = Ok []);
  (match CS.parse "Temp" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing = accepted");
  (match CS.parse "Temp=complex" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown type accepted");
  match CS.parse "A=int, a=float" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate (case-insensitive) accepted"

let test_override () =
  match CS.infer_csv ~schema:"Temp=float, Autofilled=int" csv with
  | Error e -> Alcotest.fail e
  | Ok shape ->
      check shape_testable "overridden"
        (Shape.collection
           (Shape.record Fsdata_data.Data_value.csv_record_name
              [
                ("Ozone", Shape.Primitive Shape.Float);
                ("Temp", Shape.Primitive Shape.Float);
                ("Date", Shape.Primitive Shape.Date);
                ("Autofilled", Shape.Primitive Shape.Int);
              ]))
        shape

let test_unknown_column () =
  match CS.infer_csv ~schema:"Nope=int" csv with
  | Error e ->
      check Alcotest.bool "names the column" true
        (Astring.String.is_infix ~affix:"Nope" e)
  | Ok _ -> Alcotest.fail "unknown column accepted"

let test_provider_with_schema () =
  (* force Temp to an optional float even though the sample has ints *)
  let p = Result.get_ok (Provide.provide_csv ~schema:"Temp=float?" csv) in
  let rows = Typed.get_list (Typed.parse p csv) in
  let temps =
    List.map
      (fun r ->
        Option.map Typed.get_float (Typed.get_option (Typed.member r "Temp")))
      rows
  in
  check
    (Alcotest.list (Alcotest.option (Alcotest.float 1e-9)))
    "temps as optional floats" [ Some 67.; Some 72. ] temps

let suite =
  [
    tc "schema parsing" `Quick test_parse;
    tc "overriding inferred columns" `Quick test_override;
    tc "unknown columns rejected" `Quick test_unknown_column;
    tc "provider with schema overrides" `Quick test_provider_with_schema;
  ]
