(* Storage-chaos tests for the durable registry (lib/registry), driven
   through the deterministic Fault_fs shim: injected I/O errors fail the
   push without corrupting state, a kill between any write and its fsync
   leaves at worst a torn tail that recovery truncates, and a kill at
   every injection point of a whole workload — the sweep at the bottom —
   recovers to exactly the last acknowledged version, byte-identically.
   The network twin is test_chaos.ml. *)

module Registry = Fsdata_registry.Registry
module Wal = Fsdata_registry.Wal
module Fault_fs = Fsdata_registry.Fault_fs
module Shape = Fsdata_core.Shape
module Shape_parser = Fsdata_core.Shape_parser

let check = Alcotest.check
let tc = Alcotest.test_case
let sh = Shape_parser.parse

let temp_dir () =
  let path = Filename.temp_file "fsdata-chaos-fs" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let find_exn t name =
  match Registry.find t name with
  | Some st -> st
  | None -> Alcotest.failf "stream %S not found" name

(* The states a stream can legitimately recover to: an observation of
   (version, shape text, pushes) taken at an acknowledged point. *)
let observe st =
  (st.Registry.version, Shape.to_string st.Registry.shape, st.Registry.pushes)

let check_state msg expected st = check
    (Alcotest.triple Alcotest.int Alcotest.string Alcotest.int)
    msg expected (observe st)

(* ----- the shim itself ----- *)

let test_shim_is_deterministic () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let fault = Fault_fs.create () in
  let fd =
    Unix.openfile (Filename.concat dir "f") [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Fault_fs.inject_write fault [ Fault_fs.Pass; Fault_fs.Error Unix.EIO ];
  check Alcotest.int "Pass lets the first write through" 5
    (Fault_fs.write_substring (Some fault) fd "hello" 0 5);
  (try
     ignore (Fault_fs.write_substring (Some fault) fd "boom" 0 4);
     Alcotest.fail "second write should have raised EIO"
   with Unix.Unix_error (Unix.EIO, _, _) -> ());
  check Alcotest.int "queue drained: third write passes" 2
    (Fault_fs.write_substring (Some fault) fd "ok" 0 2);
  check Alcotest.int "three ops observed" 3 (Fault_fs.ops fault);
  check Alcotest.int "one fault fired (Pass does not count)" 1
    (Fault_fs.injected fault);
  Unix.close fd

let test_short_writes_clamp () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let fault = Fault_fs.create () in
  Fault_fs.set_max_write fault 3;
  let fd =
    Unix.openfile (Filename.concat dir "f") [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  check Alcotest.int "write clamped" 3
    (Fault_fs.write_substring (Some fault) fd "0123456789" 0 10);
  Fault_fs.set_max_write fault 0;
  check Alcotest.int "clamp removed" 10
    (Fault_fs.write_substring (Some fault) fd "0123456789" 0 10);
  Unix.close fd

(* ----- failed appends leave the acknowledged state ----- *)

let failed_append_is_clean err () =
  with_dir @@ fun dir ->
  let fault = Fault_fs.create () in
  let t = Registry.open_ ~fault ~dir:(Some dir) () in
  let acked = observe (Registry.push t ~stream:"s" (sh "{a: int}")) in
  Fault_fs.inject_write fault [ Fault_fs.Error err ];
  (try
     ignore (Registry.push t ~stream:"s" (sh "{a: int, b: string}"));
     Alcotest.fail "push should have raised"
   with Unix.Unix_error (e, _, _) ->
     check Alcotest.string "the injected error surfaces"
       (Unix.error_message err) (Unix.error_message e));
  check_state "in-memory state unchanged by the failed push" acked
    (find_exn t "s");
  (* the stream is not wedged: a retry goes through *)
  let st = Registry.push t ~stream:"s" (sh "{a: int, b: string}") in
  check Alcotest.int "retry applies" 2 st.Registry.version;
  let acked = observe st in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check_state "recovery sees exactly the acknowledged pushes" acked
    (find_exn t2 "s");
  Registry.close t2

let test_eio_append = failed_append_is_clean Unix.EIO
let test_enospc_append = failed_append_is_clean Unix.ENOSPC

(* The nearly-full-disk shape of an append failure: a short write lands
   part of the frame, then the next write raises ENOSPC. The torn bytes
   must be rolled back before the push that retries — otherwise they
   sit between acked records and the next recovery truncates away
   everything after them, silently dropping acknowledged pushes. *)
let test_torn_append_rolled_back () =
  with_dir @@ fun dir ->
  let fault = Fault_fs.create () in
  let t = Registry.open_ ~fault ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  Fault_fs.set_max_write fault 4;
  Fault_fs.inject_write fault [ Fault_fs.Pass; Fault_fs.Error Unix.ENOSPC ];
  (try
     ignore (Registry.push t ~stream:"s" (sh "{a: int, b: string}"));
     Alcotest.fail "push should have raised ENOSPC"
   with Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  Fault_fs.set_max_write fault 0;
  (* the retry is acknowledged — it must survive recovery even though
     torn bytes briefly preceded it in the file *)
  let acked = observe (Registry.push t ~stream:"s" (sh "{a: int, b: string}")) in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check_state "acked retry recovered: no torn frame was left before it" acked
    (find_exn t2 "s");
  check Alcotest.int "both acked records replayed" 2 (Registry.wal_records t2);
  Registry.close t2

(* A frame whose write completed but whose fsync failed was never
   acknowledged; it too is rolled back, or its seq would collide with
   the acked retry that follows and replay would resurrect the failed
   delta instead. The deltas differ so the test can tell them apart. *)
let test_failed_fsync_rolls_back_frame () =
  with_dir @@ fun dir ->
  let fault = Fault_fs.create () in
  let t = Registry.open_ ~fault ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  Fault_fs.inject_fsync fault [ Fault_fs.Error Unix.EIO ];
  (try
     ignore (Registry.push t ~stream:"s" (sh "{b: bool}"));
     Alcotest.fail "push should have raised EIO"
   with Unix.Unix_error (Unix.EIO, _, _) -> ());
  let acked = observe (Registry.push t ~stream:"s" (sh "{c: string}")) in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check_state "recovery sees the acked pushes, not the unfsynced frame" acked
    (find_exn t2 "s");
  Registry.close t2

(* ----- kills around the write/fsync boundary ----- *)

let test_kill_between_write_and_fsync () =
  with_dir @@ fun dir ->
  let fault = Fault_fs.create () in
  let t = Registry.open_ ~fault ~dir:(Some dir) () in
  let acked = observe (Registry.push t ~stream:"s" (sh "{a: int}")) in
  Fault_fs.inject_fsync fault [ Fault_fs.Kill ];
  (try
     ignore (Registry.push t ~stream:"s" (sh "{a: int, b: string}"));
     Alcotest.fail "push should have crashed"
   with Fault_fs.Crash -> ());
  check_state "memory still at the last ack" acked (find_exn t "s");
  Registry.close t;
  (* the record was fully written before the kill: recovery may apply
     it — the unacked push is fully applied or absent, never torn *)
  let t2 = Registry.open_ ~dir:(Some dir) () in
  let recovered = find_exn t2 "s" in
  let applied =
    let merged = Fsdata_core.Csh.csh (sh "{a: int}") (sh "{a: int, b: string}") in
    (2, Shape.to_string merged, 2)
  in
  if observe recovered <> acked && observe recovered <> applied then
    Alcotest.failf "recovered to neither ack nor full application: %d %s"
      recovered.Registry.version
      (Shape.to_string recovered.Registry.shape);
  Registry.close t2

let test_kill_mid_record_write () =
  with_dir @@ fun dir ->
  let fault = Fault_fs.create () in
  let t = Registry.open_ ~fault ~dir:(Some dir) () in
  let acked = observe (Registry.push t ~stream:"s" (sh "{a: int}")) in
  (* tear the next record: 4 bytes land, then the process dies *)
  Fault_fs.set_max_write fault 4;
  Fault_fs.inject_write fault [ Fault_fs.Pass; Fault_fs.Kill ];
  (try
     ignore (Registry.push t ~stream:"s" (sh "{a: int, b: string}"));
     Alcotest.fail "push should have crashed"
   with Fault_fs.Crash -> ());
  Registry.close t;
  let t2 = Registry.open_ ~fsync:`Never ~dir:(Some dir) () in
  check_state "torn record absent: state is the last ack, byte-identical"
    acked (find_exn t2 "s");
  Registry.close t2

(* ----- torn and corrupted logs ----- *)

let test_torn_tail_never_parsed () =
  with_dir @@ fun dir ->
  let t = Registry.open_ ~dir:(Some dir) () in
  let acked = observe (Registry.push t ~stream:"s" (sh "{a: int}")) in
  Registry.close t;
  (* a torn frame header claiming more bytes than exist *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644
      (Filename.concat dir "wal.log")
  in
  output_string oc "\xff\xff\x00\x00half a record";
  close_out oc;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check_state "tail truncated, state intact" acked (find_exn t2 "s");
  Registry.close t2;
  (* and the repair is durable: a third open sees a clean log *)
  let t3 = Registry.open_ ~dir:(Some dir) () in
  check_state "clean after repair" acked (find_exn t3 "s");
  Registry.close t3

let test_checksum_failure_truncates () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.log" in
  let w, _ = Wal.open_ ~fsync:`Never path in
  Wal.append w "first";
  Wal.append w "second";
  Wal.close w;
  (* flip one payload byte of the second record: its CRC now fails *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (8 + 5 + 8) Unix.SEEK_SET);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd;
  let w, r = Wal.open_ ~fsync:`Never path in
  check (Alcotest.list Alcotest.string)
    "everything from the bad checksum on is gone, never parsed" [ "first" ]
    r.Wal.records;
  check Alcotest.bool "bytes were truncated" true (r.Wal.truncated_bytes > 0);
  Wal.close w

(* ----- crashes inside snapshot compaction ----- *)

let snapshot_crash_recovers ~inject () =
  with_dir @@ fun dir ->
  let fault = Fault_fs.create () in
  let t = Registry.open_ ~fault ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let acked = observe (Registry.push t ~stream:"s" (sh "{a: int, b: string}")) in
  inject fault;
  (try
     Registry.snapshot t;
     Alcotest.fail "snapshot should have crashed"
   with Fault_fs.Crash -> ());
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check_state "recovered to the acknowledged state" acked (find_exn t2 "s");
  (* no stale tmp file survives recovery *)
  check Alcotest.bool "snapshot.tmp cleaned up" false
    (Sys.file_exists (Filename.concat dir "snapshot.tmp"));
  Registry.close t2

let test_kill_writing_snapshot_tmp =
  snapshot_crash_recovers ~inject:(fun fault ->
      Fault_fs.inject_write fault [ Fault_fs.Kill ])

let test_kill_between_rename_and_truncate =
  (* the nasty window: snapshot.bin already holds everything, the WAL
     still holds the same records — seq dedup must keep replay from
     applying them twice *)
  snapshot_crash_recovers ~inject:(fun fault ->
      Fault_fs.inject_truncate fault [ Fault_fs.Kill ])

let test_enospc_during_snapshot_fails_softly () =
  with_dir @@ fun dir ->
  let fault = Fault_fs.create () in
  let t = Registry.open_ ~fault ~snapshot_every:2 ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  (* this push trips compaction; the snapshot write fails but the push
     itself was already durable in the WAL, so it must succeed *)
  Fault_fs.inject_write fault [ Fault_fs.Pass; Fault_fs.Error Unix.ENOSPC ];
  let st = Registry.push t ~stream:"s" (sh "{a: int, b: string}") in
  check Alcotest.int "push acknowledged despite snapshot failure" 2
    st.Registry.version;
  let acked = observe st in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check_state "WAL alone carries the state" acked (find_exn t2 "s");
  Registry.close t2

(* ----- the sweep: kill -9 at every injection point in turn ----- *)

(* One deterministic workload, killed at faultable operation k for
   every k until a run completes crash-free. After each kill the
   directory is reopened shim-free and the recovered stream must be
   byte-identical to a state the workload acknowledged (the in-flight
   push may additionally have landed: fully applied or absent). *)
let test_kill_sweep () =
  let deltas =
    [
      sh "{a: int}";
      sh "{a: int}";
      sh "{a: int, b: string}";
      sh "[{c: bool}]";
      sh "{a: float, d: [int]}";
    ]
  in
  let rec sweep k =
    if k > 200 then Alcotest.fail "sweep did not terminate"
    else
      let crashed =
        with_dir @@ fun dir ->
        let fault = Fault_fs.create () in
        Fault_fs.set_kill_after fault k;
        let t = Registry.open_ ~fault ~snapshot_every:2 ~dir:(Some dir) () in
        (* every acknowledged state, newest first; ⊥ is always legal *)
        let acked = ref [ (0, Shape.to_string Shape.Bottom, 0) ] in
        let in_flight = ref None in
        let outcome =
          try
            List.iter
              (fun d ->
                (* what full application of this push would look like *)
                let current = Registry.find t "s" in
                in_flight := Some (current, d);
                let st = Registry.push t ~stream:"s" d in
                acked := observe st :: !acked;
                in_flight := None)
              deltas;
            `Completed
          with Fault_fs.Crash -> `Crashed
        in
        Registry.close t;
        (match outcome with
        | `Completed -> ()
        | `Crashed ->
            let t2 = Registry.open_ ~dir:(Some dir) () in
            let recovered =
              match Registry.find t2 "s" with
              | Some st -> observe st
              | None -> (0, Shape.to_string Shape.Bottom, 0)
            in
            let last_ack = List.hd !acked in
            let applied =
              match !in_flight with
              | None -> []
              | Some (current, d) ->
                  (* replaying the torn-or-landed record over the last
                     ack is exactly what recovery may do *)
                  let base =
                    match current with
                    | Some st -> st
                    | None ->
                        {
                          Registry.name = "s";
                          version = 0;
                          seq = 0;
                          pushes = 0;
                          shape = Shape.Bottom;
                          history = [];
                          hooks = [];
                        }
                  in
                  let merged = Fsdata_core.Csh.csh base.Registry.shape d in
                  let grew = not (Shape.equal merged base.Registry.shape) in
                  [
                    ( (if grew then base.Registry.version + 1
                       else base.Registry.version),
                      Shape.to_string merged,
                      base.Registry.pushes + 1 );
                  ]
            in
            if not (List.mem recovered (last_ack :: applied)) then
              Alcotest.failf
                "kill at op %d: recovered (v%d, %s, %d pushes), last ack v%d"
                k
                (let v, _, _ = recovered in v)
                (let _, s, _ = recovered in s)
                (let _, _, p = recovered in p)
                (let v, _, _ = last_ack in v);
            Registry.close t2);
        outcome = `Crashed
      in
      if crashed then sweep (k + 1)
  in
  sweep 0

let suite =
  [
    tc "fault shim: deterministic queue order" `Quick test_shim_is_deterministic;
    tc "fault shim: short-write clamp" `Quick test_short_writes_clamp;
    tc "EIO on append: push fails clean" `Quick test_eio_append;
    tc "ENOSPC on append: push fails clean" `Quick test_enospc_append;
    tc "short write then ENOSPC: torn frame rolled back, acked retry survives"
      `Quick test_torn_append_rolled_back;
    tc "failed fsync: unacknowledged frame rolled back" `Quick
      test_failed_fsync_rolls_back_frame;
    tc "kill between write and fsync: applied or absent" `Quick
      test_kill_between_write_and_fsync;
    tc "kill mid-record: torn tail, last ack byte-identical" `Quick
      test_kill_mid_record_write;
    tc "torn tail is truncated, never parsed" `Quick test_torn_tail_never_parsed;
    tc "checksum failure marks the torn tail" `Quick
      test_checksum_failure_truncates;
    tc "kill writing snapshot.tmp: old state wins" `Quick
      test_kill_writing_snapshot_tmp;
    tc "kill between rename and WAL truncate: no double replay" `Quick
      test_kill_between_rename_and_truncate;
    tc "ENOSPC during compaction: push still acknowledged" `Quick
      test_enospc_during_snapshot_fails_softly;
    tc "sweep: kill -9 at every injected point recovers to last ack" `Quick
      test_kill_sweep;
  ]
