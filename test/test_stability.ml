(* Stability of inference (Section 6.5, Remark 1).

   Adding a sample changes the provided type only in ways repairable by
   three local rewrites: (1) unwrap a new option, (2) select a label of a
   new labelled top, (3) convert a float that used to be an int. We check
   each rewrite on the evolution it repairs, and the monotonicity facts
   behind the remark (labels are never removed; shapes only move up). *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Infer = Fsdata_core.Infer
module Csh = Fsdata_core.Csh
module P = Fsdata_core.Preference
module Provide = Fsdata_provider.Provide
open Fsdata_foo.Syntax
module Eval = Fsdata_foo.Eval
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let provide samples =
  Provide.provide ~format:`Json (Infer.shape_of_samples ~mode:`Paper samples)

let eval_value p e =
  match Eval.eval p.Provide.classes e with
  | Eval.Value v -> v
  | o -> Alcotest.failf "expected a value, got %a" Eval.pp_outcome o

(* Rewrite (1): C[e] to C[match e with Some v -> v | None -> exn]. *)
let test_rewrite_option () =
  let d1 = Dv.Record ("p", [ ("x", Dv.Int 1) ]) in
  let d2 = Dv.Record ("p", []) in
  (* before: x is an int member *)
  let p1 = provide [ d1 ] in
  let before = EMember (Provide.apply p1 d1, "X") in
  check Alcotest.bool "before: direct access" true
    (eval_value p1 before = int_ 1);
  (* after adding d2: X becomes option int; the rewritten program behaves
     identically on the old input *)
  let p2 = provide [ d1; d2 ] in
  let after =
    EMatchOption (EMember (Provide.apply p2 d1, "X"), "v", EVar "v", EExn)
  in
  check Alcotest.bool "after: rewritten access agrees" true
    (eval_value p2 after = int_ 1);
  (* and the None case surfaces as exn on the new input, as Remark 1 says *)
  match
    Eval.eval p2.Provide.classes
      (EMatchOption (EMember (Provide.apply p2 d2, "X"), "v", EVar "v", EExn))
  with
  | Eval.Exn -> ()
  | o -> Alcotest.failf "expected exn, got %a" Eval.pp_outcome o

(* Rewrite (3): C[e] to C[int(e)]. *)
let test_rewrite_int_of_float () =
  let d1 = Dv.Record ("p", [ ("x", Dv.Int 25) ]) in
  let d2 = Dv.Record ("p", [ ("x", Dv.Float 3.5) ]) in
  let p1 = provide [ d1 ] in
  check Alcotest.bool "before: int member" true
    (eval_value p1 (EMember (Provide.apply p1 d1, "X")) = int_ 25);
  let p2 = provide [ d1; d2 ] in
  let after = EOp (IntOfFloat (EMember (Provide.apply p2 d1, "X"))) in
  check Alcotest.bool "after: int(e) recovers the integer" true
    (eval_value p2 after = int_ 25)

(* Rewrite (2): C[e] to C[e.M] for the tag's member of a new top. *)
let test_rewrite_top_member () =
  let d1 = Dv.List [ Dv.Int 1 ] in
  let d2 = Dv.List [ Dv.Bool true ] in
  let p1 = provide [ d1 ] in
  let first root = EMatchList (root, "h", "t", EVar "h", EExn) in
  check Alcotest.bool "before: list of int" true
    (eval_value p1 (first (Provide.apply p1 d1)) = int_ 1);
  (* after: elements are any⟨int, bool⟩; the rewrite selects .Number *)
  let p2 = provide [ d1; d2 ] in
  let after =
    EMatchOption
      ( EMember (first (Provide.apply p2 d1), "Number"),
        "v", EVar "v", EExn )
  in
  check Alcotest.bool "after: .Number recovers the value" true
    (eval_value p2 after = int_ 1)

(* "None of the labels is ever removed": labels of the merged shape
   include the labels of each sample's shape. *)
let rec top_labels (s : Shape.t) : Shape.t list =
  match s with
  | Shape.Top labels -> labels @ List.concat_map top_labels labels
  | Shape.Record { fields; _ } -> List.concat_map (fun (_, f) -> top_labels f) fields
  | Shape.Nullable p -> top_labels p
  | Shape.Collection entries ->
      List.concat_map (fun (e : Shape.entry) -> top_labels e.shape) entries
  | _ -> []

let prop_labels_monotone =
  QCheck2.Test.make ~name:"adding a sample never loses top labels"
    ~count:300
    ~print:(fun (ds, d) ->
      String.concat " ; " (List.map print_data ds) ^ " + " ^ print_data d)
    QCheck2.Gen.(pair (list_size (int_range 1 3) gen_plain_data) gen_plain_data)
    (fun (ds, d) ->
      let before = Infer.shape_of_samples ~mode:`Paper ds in
      let after = Infer.shape_of_samples ~mode:`Paper (ds @ [ d ]) in
      let before_tags =
        List.map Shape.tagof (top_labels before) |> List.sort_uniq Fsdata_core.Tag.compare
      in
      let after_tags =
        List.map Shape.tagof (top_labels after) |> List.sort_uniq Fsdata_core.Tag.compare
      in
      List.for_all
        (fun t -> List.exists (Fsdata_core.Tag.equal t) after_tags)
        before_tags)

(* Shapes only evolve upward: S(d1..dn) ⊑ S(d1..dn+1). *)
let prop_shape_monotone =
  QCheck2.Test.make ~name:"adding a sample moves the shape up in \xe2\x8a\x91"
    ~count:300
    ~print:(fun (ds, d) ->
      String.concat " ; " (List.map print_data ds) ^ " + " ^ print_data d)
    QCheck2.Gen.(pair (list_size (int_range 1 3) gen_plain_data) gen_plain_data)
    (fun (ds, d) ->
      let before = Infer.shape_of_samples ~mode:`Paper ds in
      let after = Infer.shape_of_samples ~mode:`Paper (ds @ [ d ]) in
      P.is_preferred before after)

(* The Section 6.5 example flow: a program fails on an input; adding the
   input as a sample makes the field optional and the rewritten program
   works on both inputs. *)
let test_error_recovery_workflow () =
  let sample = Dv.Record ("p", [ ("x", Dv.Int 1) ]) in
  let failing_input = Dv.Record ("p", []) in
  let p1 = provide [ sample ] in
  (* the original program is stuck on the new input *)
  (match Eval.eval p1.Provide.classes (EMember (Provide.apply p1 failing_input, "X")) with
  | Eval.Stuck _ -> ()
  | o -> Alcotest.failf "expected stuck, got %a" Eval.pp_outcome o);
  (* add the input as a sample; use the variation of rewrite (1) with a
     default value *)
  let p2 = provide [ sample; failing_input ] in
  let read input =
    EMatchOption (EMember (Provide.apply p2 input, "X"), "v", EVar "v", int_ 0)
  in
  check Alcotest.bool "old input still reads" true (eval_value p2 (read sample) = int_ 1);
  check Alcotest.bool "new input reads the default" true
    (eval_value p2 (read failing_input) = int_ 0)

let suite =
  [
    tc "rewrite (1): option match" `Quick test_rewrite_option;
    tc "rewrite (3): int(e)" `Quick test_rewrite_int_of_float;
    tc "rewrite (2): top member selection" `Quick test_rewrite_top_member;
    tc "Section 6.5 error-recovery workflow" `Quick test_error_recovery_workflow;
    QCheck_alcotest.to_alcotest prop_labels_monotone;
    QCheck_alcotest.to_alcotest prop_shape_monotone;
  ]
