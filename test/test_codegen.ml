(* OCaml code generation: name mangling, shape literals, golden output,
   and agreement between the generated (statically compiled) module and
   the interpreted runtime. *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module Provide = Fsdata_provider.Provide
module Codegen = Fsdata_codegen.Codegen
module Typed = Fsdata_runtime.Typed
module People = Fsdata_examples_generated.People_j

let tc = Alcotest.test_case
let check = Alcotest.check

let test_ml_names () =
  check Alcotest.string "type name" "entity" (Codegen.ml_type_name "Entity");
  check Alcotest.string "keyword escape" "type_" (Codegen.ml_type_name "Type");
  check Alcotest.string "field" "tempMin" (Codegen.ml_field_name "TempMin");
  check Alcotest.string "keyword field" "class_" (Codegen.ml_field_name "Class")

let test_shape_literal () =
  check Alcotest.string "primitive" "Shape.Primitive Shape.Int"
    (Codegen.shape_literal (Shape.Primitive Shape.Int));
  check Alcotest.string "record"
    "Shape.record \"p\" [(\"x\", Shape.Primitive Shape.Int)]"
    (Codegen.shape_literal (Shape.record "p" [ ("x", Shape.Primitive Shape.Int) ]));
  check Alcotest.string "nullable" "Shape.nullable (Shape.Null)"
    (Codegen.shape_literal (Shape.Nullable Shape.Null) |> fun s -> s);
  check Alcotest.string "top"
    "Shape.top [Shape.Primitive Shape.Bool; Shape.Primitive Shape.String]"
    (Codegen.shape_literal (Shape.top [ Shape.Primitive Shape.String; Shape.Primitive Shape.Bool ]))

(* The committed examples/generated/people_j.ml must equal what codegen
   produces today — a regeneration-sync (golden) test. *)
let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rec find_up name dir =
  let candidate = Filename.concat dir name in
  if Sys.file_exists candidate then candidate
  else
    let parent = Filename.dirname dir in
    if parent = dir then Alcotest.failf "cannot locate %s" name
    else find_up name parent

let test_golden_people () =
  let sample = read_file (find_up "examples/data/people.json" (Sys.getcwd ())) in
  let committed =
    read_file (find_up "examples/generated/people_j.ml" (Sys.getcwd ()))
  in
  let p = Result.get_ok (Provide.provide_json ~root_name:"People" sample) in
  let generated =
    Codegen.generate
      ~module_comment:"Generated from people.json by fsdata codegen — do not edit."
      p
  in
  check Alcotest.string
    "committed generated module is in sync (regenerate with examples/codegen_demo.exe)"
    committed generated

(* The generated module and the interpreted runtime agree. *)
let test_generated_agrees_with_interpreter () =
  let sample = read_file (find_up "examples/data/people.json" (Sys.getcwd ())) in
  let p = Result.get_ok (Provide.provide_json ~root_name:"People" sample) in
  let interpreted =
    List.map
      (fun item ->
        ( Typed.get_string (Typed.member item "Name"),
          Option.map Typed.get_float (Typed.get_option (Typed.member item "Age")) ))
      (Typed.get_list (Typed.parse p sample))
  in
  let compiled =
    List.map (fun (x : People.person) -> (x.name, x.age)) (People.parse sample)
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.option (Alcotest.float 1e-9))))
    "same view of the data" interpreted compiled

let test_generated_module_errors () =
  match People.parse {|[ {"age": 1} ]|} with
  | exception Fsdata_runtime.Ops.Conversion_error _ -> ()
  | _ -> Alcotest.fail "expected Conversion_error from generated code"

(* Codegen is total on provider output for arbitrary inferred shapes. *)
let prop_codegen_total =
  QCheck2.Test.make ~name:"codegen total on inferred shapes" ~count:200
    ~print:Generators.print_data Generators.gen_data (fun d ->
      let shape = Fsdata_core.Infer.shape_of_value ~mode:`Practical d in
      let p = Provide.provide shape in
      String.length (Codegen.generate p) > 0)

let suite =
  [
    tc "OCaml name mangling" `Quick test_ml_names;
    tc "shape literals" `Quick test_shape_literal;
    tc "golden: committed people_j.ml in sync" `Quick test_golden_people;
    tc "generated module agrees with interpreter" `Quick
      test_generated_agrees_with_interpreter;
    tc "generated module raises the documented exception" `Quick
      test_generated_module_errors;
    QCheck_alcotest.to_alcotest prop_codegen_total;
  ]

(* The worldbank generated module exercises the heterogeneous-collection
   path (select_single + shape literals). *)
module WB = Fsdata_examples_generated.Worldbank_j

let test_worldbank_generated () =
  let sample = read_file (find_up "examples/data/worldbank.json" (Sys.getcwd ())) in
  let wb = WB.parse sample in
  Alcotest.(check int) "pages" 5 wb.WB.record.WB.pages;
  Alcotest.(check (list (option (float 1e-6))))
    "values" [ None; Some 35.14229 ]
    (List.map (fun (i : WB.item) -> i.WB.value) wb.WB.array);
  Alcotest.(check (list int))
    "dates" [ 2012; 2010 ]
    (List.map (fun (i : WB.item) -> i.WB.date) wb.WB.array)

let test_worldbank_golden () =
  let sample = read_file (find_up "examples/data/worldbank.json" (Sys.getcwd ())) in
  let committed = read_file (find_up "examples/generated/worldbank_j.ml" (Sys.getcwd ())) in
  let p = Result.get_ok (Provide.provide_json ~root_name:"WorldBank" sample) in
  let generated =
    Codegen.generate
      ~module_comment:"Generated from worldbank.json by fsdata codegen — do not edit."
      p
  in
  Alcotest.(check string) "worldbank_j.ml in sync" committed generated

let suite =
  suite
  @ [
      tc "generated worldbank module (hetero path)" `Quick test_worldbank_generated;
      tc "golden: committed worldbank_j.ml in sync" `Quick test_worldbank_golden;
    ]
