(* Docs link-and-anchor checker, run under [dune runtest].

   Scans every Markdown file at the repository root and under docs/ for
   inline links [text](target) and verifies that each relative target
   resolves to a file inside the repository, and that a #fragment names
   a real heading of the target file (GitHub slug rules). External
   schemes (http, https, mailto) are skipped. Fenced code blocks and
   inline code spans are not scanned — a link-shaped string inside an
   example is not a link. *)

let errors = ref 0

let fail file line fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "%s:%d: %s\n" file line msg)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lines_of s = String.split_on_char '\n' s

let is_fence line =
  let t = String.trim line in
  String.length t >= 3 && (String.sub t 0 3 = "```" || String.sub t 0 3 = "~~~")

(* Drop inline code spans: text between single backticks on one line.
   An unbalanced backtick drops the rest of the line, which errs on the
   side of not scanning. *)
let strip_code_spans line =
  let parts = String.split_on_char '`' line in
  let b = Buffer.create (String.length line) in
  List.iteri (fun i part -> if i mod 2 = 0 then Buffer.add_string b part) parts;
  Buffer.contents b

(* GitHub's heading-to-anchor slug: lowercase; keep alphanumerics,
   hyphens and underscores; spaces become hyphens; everything else is
   dropped. *)
let slug heading =
  let b = Buffer.create (String.length heading) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | 'a' .. 'z' | '0' .. '9' | '-' | '_' -> Buffer.add_char b c
      | ' ' -> Buffer.add_char b '-'
      | _ -> ())
    (String.trim heading);
  Buffer.contents b

let headings content =
  let fence = ref false in
  List.filter_map
    (fun line ->
      if is_fence line then (
        fence := not !fence;
        None)
      else if !fence then None
      else
        let n = String.length line in
        let rec hashes i = if i < n && line.[i] = '#' then hashes (i + 1) else i in
        let h = hashes 0 in
        if h > 0 && h <= 6 && h < n && line.[h] = ' ' then
          (* backticks in headings disappear from the slug's input *)
          let text =
            String.concat "" (String.split_on_char '`' (String.sub line h (n - h)))
          in
          Some (slug text)
        else None)
    (lines_of content)

let heading_cache : (string, string list) Hashtbl.t = Hashtbl.create 16

let headings_of path =
  match Hashtbl.find_opt heading_cache path with
  | Some hs -> hs
  | None ->
      let hs = headings (read_file path) in
      Hashtbl.add heading_cache path hs;
      hs

let is_external target =
  let has_prefix p =
    String.length target >= String.length p
    && String.sub target 0 (String.length p) = p
  in
  has_prefix "http://" || has_prefix "https://" || has_prefix "mailto:"

(* Extract the targets of [text](target) links from one scannable line. *)
let link_targets line =
  let n = String.length line in
  let rec go acc i =
    if i + 1 >= n then List.rev acc
    else if line.[i] = ']' && line.[i + 1] = '(' then (
      match String.index_from_opt line (i + 2) ')' with
      | None -> List.rev acc
      | Some j -> go (String.sub line (i + 2) (j - i - 2) :: acc) (j + 1))
    else go acc (i + 1)
  in
  go [] 0

let check_file root file =
  let content = read_file file in
  let dir = Filename.dirname file in
  let fence = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if is_fence line then fence := not !fence
      else if not !fence then
        let line = strip_code_spans line in
        List.iter
          (fun target ->
            if target = "" then fail file lineno "empty link target"
            else if not (is_external target) then
              let path, frag =
                match String.index_opt target '#' with
                | Some k ->
                    ( String.sub target 0 k,
                      Some (String.sub target (k + 1) (String.length target - k - 1))
                    )
                | None -> (target, None)
              in
              let resolved =
                if path = "" then file (* same-file #fragment *)
                else Filename.concat dir path
              in
              if path <> "" && Filename.is_relative path = false then
                fail file lineno "absolute link target %s" target
              else if not (Sys.file_exists resolved) then
                fail file lineno "broken link %s (no such file %s)" target
                  resolved
              else (
                (* keep resolved targets inside the repository *)
                let rec escapes acc = function
                  | [] -> false
                  | ".." :: rest -> acc = 0 || escapes (acc - 1) rest
                  | ("." | "") :: rest -> escapes acc rest
                  | _ :: rest -> escapes (acc + 1) rest
                in
                let rel =
                  (* resolved is ROOT/... ; strip the root prefix *)
                  let r = root ^ Filename.dir_sep in
                  if String.length resolved > String.length r
                     && String.sub resolved 0 (String.length r) = r
                  then String.sub resolved (String.length r)
                         (String.length resolved - String.length r)
                  else resolved
                in
                if escapes 0 (String.split_on_char '/' rel) then
                  fail file lineno "link %s escapes the repository" target;
                match frag with
                | None -> ()
                | Some f ->
                    if Filename.check_suffix resolved ".md" then
                      if not (List.mem f (headings_of resolved)) then
                        fail file lineno "broken anchor #%s (no such heading in %s)"
                          f resolved))
          (link_targets line))
    (lines_of content)

let md_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".md")
  |> List.map (Filename.concat dir)
  |> List.sort compare

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let files =
    md_files root
    @ (let docs = Filename.concat root "docs" in
       if Sys.file_exists docs && Sys.is_directory docs then md_files docs
       else [])
  in
  if files = [] then (
    prerr_endline "check_links: no markdown files found";
    exit 1);
  List.iter (check_file root) files;
  if !errors > 0 then (
    Printf.eprintf "check_links: %d broken link(s)\n" !errors;
    exit 1)
