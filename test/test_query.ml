(* Tests for the typed query layer (lib/query).

   Three contracts:

   - the concrete syntax round-trips: [Parser.parse (Syntax.to_string q)]
     is [q] for arbitrary queries (associativity, quoting, literal
     printing);
   - the checker implements the documented typing rules
     (docs/QUERY.md §Typing): pinned accept/reject cases with their
     diagnostics, plus the property that a query over a field σ does
     not have is rejected — before any corpus is involved, since
     [Check.check] never sees one;
   - the two engines agree: for ≥1000 shape-generated (σ, query,
     corpus) cases where the query is well-typed by construction,
     [Eval.eval] and [Eval_fast.eval] produce byte-identical rendered
     rows and identical stats, on corpora mixing conforming documents,
     arbitrary (mostly non-conforming) documents and a malformed one —
     and neither engine ever raises. *)

module Q = Fsdata_query
module Syntax = Q.Syntax
module Parser = Q.Parser
module Check = Q.Check
module Value = Q.Value
module Eval = Q.Eval
module Eval_fast = Q.Eval_fast
module Shape = Fsdata_core.Shape
module Shape_gen = Fsdata_core.Shape_gen
module Infer = Fsdata_core.Infer
module Json = Fsdata_data.Json
open Generators

let check = Alcotest.check
let tc = Alcotest.test_case

let parse_exn q =
  match Parser.parse_result q with
  | Ok q -> q
  | Error m -> Alcotest.fail m

let infer_exn src =
  match Infer.of_json src with
  | Ok s -> Shape.hcons s
  | Error m -> Alcotest.fail m

let render_rows (r : Value.result) =
  String.concat "\n" (List.map Value.render r.Value.rows)

(* ----- parser: pinned syntax ----- *)

let test_parser_pins () =
  let open Syntax in
  let p q = parse_exn q in
  check Alcotest.bool "count" true (p "count" = [ Count ]);
  check Alcotest.bool "take" true (p "take 10" = [ Take 10 ]);
  check Alcotest.bool "map root" true (p "map ." = [ Map [] ]);
  check Alcotest.bool "select two" true
    (p "select .name, .age" = [ Select [ [ "name" ]; [ "age" ] ] ]);
  check Alcotest.bool "quoted segment" true
    (p {|select ."odd name".x|} = [ Select [ [ "odd name"; "x" ] ] ]);
  check Alcotest.bool "precedence: and binds tighter than or" true
    (p "where .a == 1 and .b == 2 or not .c == 3"
    = [
        Where
          (Or
             ( And (Compare ([ "a" ], Eq, Lint 1), Compare ([ "b" ], Eq, Lint 2)),
               Not (Compare ([ "c" ], Eq, Lint 3)) ));
      ]);
  check Alcotest.bool "parens override" true
    (p "where .a == 1 and (.b == 2 or .c == 3)"
    = [
        Where
          (And
             ( Compare ([ "a" ], Eq, Lint 1),
               Or (Compare ([ "b" ], Eq, Lint 2), Compare ([ "c" ], Eq, Lint 3))
             ));
      ]);
  check Alcotest.bool "literals" true
    (p "where .a == null or .b != true or .c < 1.5 or .d >= \"x\""
    = [
        Where
          (Or
             ( Compare ([ "a" ], Eq, Lnull),
               Or
                 ( Compare ([ "b" ], Ne, Lbool true),
                   Or
                     ( Compare ([ "c" ], Lt, Lfloat 1.5),
                       Compare ([ "d" ], Ge, Lstring "x") ) ) ));
      ]);
  check Alcotest.bool "pipeline" true
    (p "where exists .a | select .a | take 3"
    = [ Where (Exists [ "a" ]); Select [ [ "a" ] ]; Take 3 ])

let test_parser_errors () =
  let rejects q =
    match Parser.parse_result q with
    | Ok _ -> Alcotest.failf "parsed: %s" q
    | Error m ->
        check Alcotest.bool "error mentions the offset" true
          (Astring.String.is_infix ~affix:"offset" m)
  in
  List.iter rejects
    [
      "";
      "where";
      "take";
      "take x";
      "where .a == ";
      "where .a <> 1";
      "select";
      "select .a,";
      "frobnicate .a";
      "where (.a == 1";
      "count extra";
      "where .a == 1 |";
      "where . == where";
    ]

(* ----- parser: printing round-trips ----- *)

let gen_path : Syntax.path QCheck2.Gen.t =
  let open QCheck2.Gen in
  let seg = oneofl [ "a"; "b"; "name"; "age"; "value"; "odd name"; "x-y" ] in
  list_size (int_range 0 3) seg

let gen_literal : Syntax.literal QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Syntax in
  oneof
    [
      return Lnull;
      map (fun b -> Lbool b) bool;
      map (fun n -> Lint n) (int_range (-1000) 1000);
      map (fun f -> Lfloat f) (float_range (-4.) 4.);
      map (fun s -> Lstring s) (oneofl [ ""; "x"; "two words"; "\"q\"" ]);
    ]

let gen_pred : Syntax.pred QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Syntax in
  sized @@ fix (fun self n ->
      let atom =
        oneof
          [
            map (fun p -> Exists p) gen_path;
            map3
              (fun p c l -> Compare (p, c, l))
              gen_path
              (oneofl [ Eq; Ne; Lt; Le; Gt; Ge ])
              gen_literal;
          ]
      in
      if n <= 0 then atom
      else
        oneof
          [
            atom;
            map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
            map (fun a -> Not a) (self (n - 1));
          ])

let gen_query : Syntax.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Syntax in
  let stage =
    oneof
      [
        map (fun p -> Where p) gen_pred;
        map (fun ps -> Select ps) (list_size (int_range 1 3) gen_path);
        map (fun p -> Map p) gen_path;
        map (fun n -> Take n) (int_range 0 100);
      ]
  in
  let* stages = list_size (int_range 0 3) stage in
  let* final = oneofl [ []; [ Count ] ] in
  match stages @ final with [] -> return [ Count ] | q -> return q

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"print ∘ parse is the identity"
    ~print:Syntax.to_string gen_query (fun q ->
      match Parser.parse_result (Syntax.to_string q) with
      | Ok q' -> q' = q
      | Error m ->
          QCheck2.Test.fail_reportf "printed query does not reparse: %s" m)

(* ----- checker: pinned accept/reject ----- *)

let people =
  "{\"name\": \"ada\", \"age\": 36, \"d\": \"2020-01-02\"}\n\
   {\"name\": \"grace\", \"d\": \"2021-03-04\"}\n"

let people_sigma = lazy (infer_exn people)

let accepts sigma q =
  match Check.check sigma (parse_exn q) with
  | Ok c -> c
  | Error e -> Alcotest.failf "rejected %s: %s" q (Fmt.str "%a" Check.pp_error e)

let rejects sigma q ~at ~expected =
  match Check.check sigma (parse_exn q) with
  | Ok _ -> Alcotest.failf "accepted: %s" q
  | Error e ->
      check Alcotest.string (q ^ ": at") at e.Check.at;
      check Alcotest.bool
        (q ^ ": expected mentions " ^ expected)
        true
        (Astring.String.is_infix ~affix:expected e.Check.expected)

let test_check_accepts () =
  let sigma = Lazy.force people_sigma in
  ignore (accepts sigma "where .name == \"ada\"");
  ignore (accepts sigma "where .age >= 30 | select .name, .age");
  (* age is nullable int: null comparisons and exists are well-typed *)
  ignore (accepts sigma "where .age == null");
  ignore (accepts sigma "where exists .age | count");
  ignore (accepts sigma "where .d >= \"2020-06-01\"");
  ignore (accepts sigma "map .name | take 1");
  (* output shapes *)
  let c = accepts sigma "count" in
  check shape_testable "count output is int" (Shape.Primitive Shape.Int)
    c.Check.output;
  let c = accepts sigma "select .age" in
  (match Shape.strip_nullable c.Check.output with
  | Shape.Record { fields = [ ("age", a) ]; _ } ->
      check shape_testable "selected nullable field stays nullable"
        (Shape.nullable (Shape.Primitive Shape.Int))
        a
  | s -> Alcotest.failf "unexpected select output %s" (Shape.to_string s));
  (* pruning: only touched fields survive *)
  let c = accepts sigma "where .age >= 30 | select .name" in
  match Shape.strip_nullable c.Check.pruned with
  | Shape.Record { fields; _ } ->
      check
        (Alcotest.list Alcotest.string)
        "pruned σ keeps exactly the touched fields" [ "name"; "age" ]
        (List.map fst fields)
  | s -> Alcotest.failf "unexpected pruned shape %s" (Shape.to_string s)

let test_check_rejects () =
  let sigma = Lazy.force people_sigma in
  rejects sigma "where .zip == 1" ~at:".zip" ~expected:"field 'zip'";
  rejects sigma "select .name.first" ~at:".name.first" ~expected:"field 'first'";
  rejects sigma "where .name < 3" ~at:".name" ~expected:"numeric";
  rejects sigma "where .name == null" ~at:".name" ~expected:"nullable";
  rejects sigma "where .age < null" ~at:".age" ~expected:"equality";
  rejects sigma "where .age == true" ~at:".age" ~expected:"boolean";
  rejects sigma "where .d == \"not-a-date\"" ~at:".d" ~expected:"date";
  rejects sigma "count | select .name" ~at:"." ~expected:"final";
  rejects sigma "select .name, .age.name" ~at:".age.name" ~expected:"repeats";
  (* the checker never touches a corpus: σ alone decides *)
  rejects (Shape.Primitive Shape.Int) "where .a == 1" ~at:".a"
    ~expected:"field 'a'"

(* ----- well-typed queries generated from σ ----- *)

(* Every path reachable through records (nullable positions are
   transparent, as in [Check.resolve]). *)
let rec leaf_paths ?(prefix = []) (s : Shape.t) :
    (Syntax.path * Shape.t) list =
  match s with
  | Shape.Nullable s' -> leaf_paths ~prefix s'
  | Shape.Record { fields; _ } ->
      List.concat_map
        (fun (f, sf) ->
          let p = prefix @ [ f ] in
          (p, sf) :: leaf_paths ~prefix:p sf)
        fields
  | _ -> []

(* A literal the checker accepts for the (stripped) shape at a path,
   with the cmp generator to draw from. *)
let literal_for (s : Shape.t) :
    (Syntax.cmp list * Syntax.literal) option =
  let open Syntax in
  let any = [ Eq; Ne; Lt; Le; Gt; Ge ] in
  match Shape.strip_nullable s with
  | Shape.Primitive (Shape.Int | Shape.Bit0 | Shape.Bit1) ->
      Some (any, Lint 1)
  | Shape.Primitive Shape.Float -> Some (any, Lfloat 0.5)
  | Shape.Primitive (Shape.Bool | Shape.Bit) -> Some ([ Eq; Ne ], Lbool true)
  | Shape.Primitive Shape.String -> Some (any, Lstring "sample")
  | Shape.Primitive Shape.Date -> Some (any, Lstring "2001-02-03")
  | _ -> None

let dedup_by_last paths =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun p ->
      match List.rev p with
      | [] -> false
      | name :: _ ->
          if Hashtbl.mem seen name then false
          else (
            Hashtbl.add seen name ();
            true))
    paths

(* Build a query that is well-typed against [sigma] by construction:
   an optional [where] over compatible atoms, an optional projection,
   an optional terminal. *)
let gen_wellformed_query sigma : Syntax.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Syntax in
  let paths = leaf_paths sigma in
  let atoms =
    List.filter_map
      (fun (p, s) ->
        match literal_for s with
        | Some (cmps, lit) -> Some (p, cmps, lit)
        | None -> None)
      paths
  in
  let gen_atom =
    match (atoms, paths) with
    | [], [] -> None
    | [], _ -> Some (map (fun (p, _) -> Exists p) (oneofl paths))
    | _ ->
        Some
          (oneof
             [
               map (fun (p, _) -> Exists p) (oneofl paths);
               (let* p, cmps, lit = oneofl atoms in
                let* c = oneofl cmps in
                return (Compare (p, c, lit)));
             ])
  in
  let gen_where =
    match gen_atom with
    | None -> return []
    | Some atom ->
        let* n = int_range 0 2 in
        if n = 0 then return []
        else
          let* a = atom in
          let* p =
            if n = 1 then return a
            else
              let* b = atom in
              oneofl [ And (a, b); Or (a, b); Not a ]
          in
          return [ Where p ]
  in
  let gen_project =
    match paths with
    | [] -> return []
    | _ ->
        let* k = int_range 0 2 in
        if k = 0 then return []
        else if k = 1 then
          let* p, _ = oneofl paths in
          return [ Map p ]
        else
          let* ps = list_size (int_range 1 3) (oneofl paths) in
          let ps = dedup_by_last (List.map fst ps) in
          if ps = [] then return [] else return [ Select ps ]
  in
  let gen_final =
    let* k = int_range 0 2 in
    if k = 0 then return []
    else if k = 1 then
      let* n = int_range 0 4 in
      return [ Take n ]
    else return [ Count ]
  in
  let* w = gen_where in
  let* p = gen_project in
  let* f = gen_final in
  match w @ p @ f with [] -> return [ Count ] | q -> return q

let gen_case =
  let open QCheck2.Gen in
  let* s = gen_core_shape in
  let sigma = Shape.hcons s in
  let* q = gen_wellformed_query sigma in
  let* noise = list_size (int_range 0 2) gen_data in
  return (sigma, q, noise)

let print_case (sigma, q, _) =
  Printf.sprintf "σ = %s\nquery = %s" (print_shape sigma)
    (Syntax.to_string q)

(* The differential contract: identical rendered rows and stats, on a
   corpus of conforming samples + arbitrary documents + one malformed
   line. Neither engine may raise. *)
let prop_engines_agree =
  QCheck2.Test.make ~count:1200
    ~name:"eval ≡ eval_fast on shape-generated corpora (byte-for-byte)"
    ~print:print_case gen_case (fun (sigma, q, noise) ->
      match Shape_gen.samples ~count:4 sigma with
      | exception Invalid_argument _ -> true (* ⊥-shaped: no witness *)
      | docs ->
          let conforming = List.map Json.to_string docs in
          let arbitrary = List.map Json.to_string noise in
          let corpus =
            String.concat "\n"
              (conforming @ [ "{\"unclosed\": " ] @ arbitrary)
          in
          match Check.check sigma q with
          | Error e ->
              QCheck2.Test.fail_reportf
                "generated query is ill-typed: %s"
                (Fmt.str "%a" Check.pp_error e)
          | Ok checked -> (
              let r1 = Eval.eval checked corpus in
              let r2 = Eval_fast.eval (Eval_fast.compile checked) corpus in
              let rows1 = render_rows r1 and rows2 = render_rows r2 in
              if rows1 <> rows2 then
                QCheck2.Test.fail_reportf "rows differ:\n%s\n--- vs ---\n%s"
                  rows1 rows2
              else
                match (r1.Value.stats, r2.Value.stats) with
                | s1, s2 when s1 = s2 -> true
                | s1, s2 ->
                    QCheck2.Test.fail_reportf
                      "stats differ: {scanned=%d;matched=%d;skipped=%d;\
                       malformed=%d} vs {scanned=%d;matched=%d;skipped=%d;\
                       malformed=%d}"
                      s1.Value.scanned s1.Value.matched s1.Value.skipped
                      s1.Value.malformed s2.Value.scanned s2.Value.matched
                      s2.Value.skipped s2.Value.malformed))

(* Ill-typed by construction: a path σ cannot resolve is always
   rejected — and [Check.check]'s signature makes the pre-execution
   claim structural, no corpus is in scope at all. *)
let prop_unknown_field_rejected =
  QCheck2.Test.make ~count:500 ~name:"unknown field is always rejected"
    ~print:print_shape gen_core_shape (fun s ->
      let sigma = Shape.hcons s in
      match
        Check.check sigma (parse_exn "where .zz_no_such_field == 1")
      with
      | Error _ -> true
      | Ok _ ->
          QCheck2.Test.fail_reportf "accepted a field σ does not have")

(* ----- evaluation semantics pins ----- *)

let test_eval_pins () =
  let corpus =
    "{\"name\": \"ada\", \"age\": 36}\n{\"name\": \"bob\", \"age\": 25}\n\
     {\"name\": \"grace\"}\n"
  in
  let sigma = infer_exn corpus in
  let run q =
    match Check.check sigma (parse_exn q) with
    | Error e -> Alcotest.failf "rejected: %s" (Fmt.str "%a" Check.pp_error e)
    | Ok c -> Eval.eval c corpus
  in
  let r = run "where .age >= 30 | select .name" in
  check Alcotest.string "filter+project" "{\"name\":\"ada\"}" (render_rows r);
  (* a missing nullable field projects as an explicit null *)
  let r = run "select .name, .age" in
  check Alcotest.string "missing nullable field renders as null"
    "{\"name\":\"ada\",\"age\":36}\n{\"name\":\"bob\",\"age\":25}\n\
     {\"name\":\"grace\",\"age\":null}"
    (render_rows r);
  let r = run "where .age == null | count" in
  check Alcotest.string "null filter + count" "1" (render_rows r);
  let r = run "map .name | take 2" in
  check Alcotest.string "map + take" "\"ada\"\n\"bob\"" (render_rows r);
  check Alcotest.int "take stops the scan early" 2 r.Value.stats.Value.scanned;
  (* malformed and non-conforming accounting *)
  let r = run "count" in
  check Alcotest.int "all scanned" 3 r.Value.stats.Value.scanned;
  check Alcotest.int "none skipped" 0 r.Value.stats.Value.skipped

let suite =
  [
    tc "parser: pinned syntax" `Quick test_parser_pins;
    tc "parser: pinned errors" `Quick test_parser_errors;
    tc "check: accepts and output shapes" `Quick test_check_accepts;
    tc "check: pinned rejections" `Quick test_check_rejects;
    tc "eval: pinned semantics" `Quick test_eval_pins;
    QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_engines_agree;
    QCheck_alcotest.to_alcotest prop_unknown_field_rejected;
  ]
