(* Type checking for the Foo calculus (Figure 7): positive and negative
   cases for every rule, plus class checking. *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
open Fsdata_foo.Syntax
module TC = Fsdata_foo.Typecheck

let tc = Alcotest.test_case
let check = Alcotest.check

let int_sh = Shape.Primitive Shape.Int
let float_sh = Shape.Primitive Shape.Float
let bool_sh = Shape.Primitive Shape.Bool
let string_sh = Shape.Primitive Shape.String

let ty_t = Alcotest.testable pp_ty ty_equal

let synth ?(classes = []) ?(gamma = []) e =
  match TC.synth classes gamma e with
  | Ok t -> t
  | Error err -> Alcotest.failf "synth failed: %a" TC.pp_error err

let no_synth ?(classes = []) ?(gamma = []) name e =
  match TC.synth classes gamma e with
  | Ok t -> Alcotest.failf "%s: expected type error, got %a" name pp_ty t
  | Error _ -> ()

let checks ?(classes = []) ?(gamma = []) e t =
  match TC.check classes gamma e t with
  | Ok () -> ()
  | Error err -> Alcotest.failf "check failed: %a" TC.pp_error err

let no_check ?(classes = []) ?(gamma = []) name e t =
  match TC.check classes gamma e t with
  | Ok () -> Alcotest.failf "%s: expected type error" name
  | Error _ -> ()

(* Data values: d : Data always, primitives also at their own type. *)
let test_data_typing () =
  check ty_t "i : int" TInt (synth (int_ 42));
  check ty_t "f : float" TFloat (synth (float_ 1.5));
  check ty_t "b : bool" TBool (synth (bool_ true));
  check ty_t "s : string" TString (synth (string_ "x"));
  check ty_t "null : Data" TData (synth null);
  check ty_t "record : Data" TData (synth (EData (Dv.Record ("p", []))));
  check ty_t "list : Data" TData (synth (EData (Dv.List [])));
  (* check-mode: primitives also have type Data *)
  checks (int_ 42) TData;
  checks (string_ "x") TData;
  no_check "int is not string" (int_ 42) TString;
  no_check "record is not int" (EData (Dv.Record ("p", []))) TInt

let test_functions () =
  check ty_t "lambda" (TArrow (TInt, TInt)) (synth (lam "x" TInt (EVar "x")));
  check ty_t "application" TInt (synth (EApp (lam "x" TInt (EVar "x"), int_ 1)));
  no_synth "wrong argument" (EApp (lam "x" TInt (EVar "x"), string_ "a"));
  no_synth "apply non-function" (EApp (int_ 1, int_ 2));
  no_synth "unbound variable" (EVar "nope")

let test_options_lists () =
  check ty_t "None" (TOption TInt) (synth (ENone TInt));
  check ty_t "Some" (TOption TInt) (synth (ESome (int_ 1)));
  check ty_t "nil" (TList TString) (synth (ENil TString));
  check ty_t "cons" (TList TInt) (synth (ECons (int_ 1, ENil TInt)));
  no_synth "heterogeneous cons" (ECons (int_ 1, ENil TString));
  check ty_t "match option" TInt
    (synth (EMatchOption (ESome (int_ 1), "x", EVar "x", int_ 0)));
  no_synth "branches disagree"
    (EMatchOption (ESome (int_ 1), "x", EVar "x", string_ "s"));
  check ty_t "match list" TInt
    (synth (EMatchList (ENil TInt, "h", "t", EVar "h", int_ 0)));
  no_synth "match non-list" (EMatchList (int_ 1, "h", "t", EVar "h", int_ 0))

let test_eq_if () =
  check ty_t "eq" TBool (synth (EEq (int_ 1, int_ 2)));
  no_synth "eq across types" (EEq (int_ 1, string_ "x"));
  check ty_t "if" TInt (synth (EIf (bool_ true, int_ 1, int_ 2)));
  no_synth "if non-bool" (EIf (int_ 1, int_ 1, int_ 2));
  no_synth "if branches disagree" (EIf (bool_ true, int_ 1, string_ "x"))

(* exn checks at any type (Remark 1) but has no principal type. *)
let test_exn () =
  checks EExn TInt;
  checks EExn (TOption TString);
  checks EExn (TArrow (TInt, TInt));
  no_synth "exn has no principal type" EExn;
  (* a branch may be exn; the other determines the type *)
  check ty_t "exn branch" TInt
    (synth (EMatchOption (ESome (int_ 1), "x", EVar "x", EExn)));
  check ty_t "exn then-branch" TInt (synth (EIf (bool_ true, EExn, int_ 1)))

(* Figure 7 rules for the dynamic data operations. *)
let test_ops () =
  let d = null in
  check ty_t "hasShape : bool" TBool (synth (EOp (HasShape (int_sh, d))));
  check ty_t "convFloat : float" TFloat (synth (EOp (ConvFloat (float_sh, d))));
  check ty_t "convPrim int" TInt (synth (EOp (ConvPrim (int_sh, d))));
  check ty_t "convPrim string" TString (synth (EOp (ConvPrim (string_sh, d))));
  check ty_t "convPrim bool" TBool (synth (EOp (ConvPrim (bool_sh, d))));
  no_synth "convPrim float is not allowed" (EOp (ConvPrim (float_sh, d)));
  let k = lam "x" TData (EOp (ConvPrim (int_sh, EVar "x"))) in
  check ty_t "convNull : option" (TOption TInt) (synth (EOp (ConvNull (d, k))));
  check ty_t "convElements : list" (TList TInt)
    (synth (EOp (ConvElements (d, k))));
  check ty_t "convField : field type" TInt
    (synth (EOp (ConvField ("p", "x", d, k))));
  no_synth "op on non-Data" (EOp (ConvPrim (int_sh, ESome (int_ 1))));
  no_synth "continuation must take Data"
    (EOp (ConvNull (d, lam "x" TInt (EVar "x"))));
  check ty_t "convBool : bool" TBool (synth (EOp (ConvBool d)));
  check ty_t "convDate : date" TDate (synth (EOp (ConvDate d)));
  check ty_t "convSelect single" TInt
    (synth (EOp (ConvSelect (int_sh, Mult.Single, d, k))));
  check ty_t "convSelect optional" (TOption TInt)
    (synth (EOp (ConvSelect (int_sh, Mult.Optional_single, d, k))));
  check ty_t "convSelect multiple" (TList TInt)
    (synth (EOp (ConvSelect (int_sh, Mult.Multiple, d, k))));
  check ty_t "int(float) : int" TInt (synth (EOp (IntOfFloat (float_ 1.5))));
  no_synth "int(string)" (EOp (IntOfFloat (string_ "x")))

let sample_classes =
  [
    {
      class_name = "C";
      ctor_params = [ ("x1", TData) ];
      members =
        [
          {
            member_name = "X";
            member_ty = TInt;
            member_body = EOp (ConvPrim (int_sh, EVar "x1"));
          };
        ];
    };
  ]

let test_classes () =
  check ty_t "new C : C" (TClass "C")
    (synth ~classes:sample_classes (ENew ("C", [ null ])));
  check ty_t "member access" TInt
    (synth ~classes:sample_classes (EMember (ENew ("C", [ null ]), "X")));
  no_synth ~classes:sample_classes "unknown member"
    (EMember (ENew ("C", [ null ]), "Y"));
  no_synth "unknown class" (ENew ("D", []));
  no_synth ~classes:sample_classes "arity" (ENew ("C", []));
  no_synth ~classes:sample_classes "argument type" (ENew ("C", [ ESome (int_ 1) ]));
  (match TC.check_classes sample_classes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "classes should check: %a" TC.pp_error e);
  let bad =
    [
      {
        class_name = "B";
        ctor_params = [ ("x1", TData) ];
        members =
          [
            {
              member_name = "X";
              member_ty = TString;
              member_body = EOp (ConvPrim (int_sh, EVar "x1"));
            };
          ];
      };
    ]
  in
  match TC.check_classes bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "ill-typed member body accepted"

let suite =
  [
    tc "data values (i : int and i : Data)" `Quick test_data_typing;
    tc "functions" `Quick test_functions;
    tc "options and lists" `Quick test_options_lists;
    tc "equality and conditionals" `Quick test_eq_if;
    tc "exn (Remark 1)" `Quick test_exn;
    tc "dynamic data operations (Figure 7)" `Quick test_ops;
    tc "classes (Featherweight-Java-style rules)" `Quick test_classes;
  ]
