(* Relative type safety (Section 5).

   - Lemma 2: for samples d and input d' with S(d') ⊑ S(d), the provided
     conversion reduces to a value, and every member of every provided
     object (recursively) reduces to a value. We test the stronger deep
     walk over the whole provided structure.
   - Theorem 3: random *op-free, Data-free* well-typed user programs over
     the provided type never get stuck on conforming inputs. The program
     generator builds boolean programs from member accesses, option/list
     matches, equality and conditionals — exactly the user fragment of the
     theorem statement.
   - Lemma 4 (preservation): every intermediate expression of the
     reduction sequence has the program's type.
   - Relativeness: a non-conforming input *does* get stuck, which is why
     the safety property is relative. *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Infer = Fsdata_core.Infer
module P = Fsdata_core.Preference
module Provide = Fsdata_provider.Provide
open Fsdata_foo.Syntax
module TC = Fsdata_foo.Typecheck
module Eval = Fsdata_foo.Eval
open Generators

let tc = Alcotest.test_case

(* Deep walk: evaluate every member of every provided object reachable
   from the value; return an error description on any non-value outcome. *)
let rec walk classes (v : expr) (t : ty) : (unit, string) result =
  match t with
  | TInt | TFloat | TBool | TString | TDate | TData | TArrow _ -> Ok ()
  | TOption t' -> (
      match v with
      | ENone _ -> Ok ()
      | ESome v' -> walk classes v' t'
      | _ -> Error "option value expected")
  | TList t' ->
      let rec go = function
        | ENil _ -> Ok ()
        | ECons (x, rest) -> (
            match walk classes x t' with Ok () -> go rest | e -> e)
        | _ -> Error "list value expected"
      in
      go v
  | TClass c -> (
      match find_class classes c with
      | None -> Error ("unknown class " ^ c)
      | Some cls ->
          List.fold_left
            (fun acc (m : member_def) ->
              match acc with
              | Error _ -> acc
              | Ok () -> (
                  match Eval.eval classes (EMember (v, m.member_name)) with
                  | Eval.Value mv -> walk classes mv m.member_ty
                  | o ->
                      Error
                        (Fmt.str "member %s.%s: %a" c m.member_name
                           Eval.pp_outcome o)))
            (Ok ()) cls.members)

let provide_and_walk ~mode ~format samples input =
  let shape = Infer.shape_of_samples ~mode samples in
  let p = Provide.provide ~format shape in
  match Eval.eval p.Provide.classes (Provide.apply p input) with
  | Eval.Value v -> walk p.Provide.classes v p.Provide.root_ty
  | o -> Error (Fmt.str "conversion: %a" Eval.pp_outcome o)

(* ----- Lemma 2 ----- *)

let prop_lemma2_paper =
  QCheck2.Test.make
    ~name:"Lemma 2 (core): provided code total on the samples" ~count:300
    ~print:(fun ds -> String.concat " ; " (List.map print_data ds))
    QCheck2.Gen.(list_size (int_range 1 4) gen_plain_data)
    (fun samples ->
      List.for_all
        (fun input ->
          provide_and_walk ~mode:`Paper ~format:`Json samples input = Ok ())
        samples)

let prop_lemma2_practical =
  QCheck2.Test.make
    ~name:"Lemma 2 (practical): full pipeline incl. bit/date/hetero"
    ~count:300
    ~print:(fun ds -> String.concat " ; " (List.map print_data ds))
    QCheck2.Gen.(list_size (int_range 1 4) gen_data)
    (fun samples ->
      (* Practical-mode shapes classify string literals, so runtime values
         take their normalized representation, as in the real library. *)
      List.for_all
        (fun input ->
          provide_and_walk ~mode:`Practical ~format:`Json samples
            (Fsdata_data.Primitive.normalize input)
          = Ok ())
        samples)

(* Inputs that are subshapes of the merged samples, not samples
   themselves: any sample of a *sublist* of the sample set conforms. *)
let prop_lemma2_sublist =
  QCheck2.Test.make
    ~name:"Lemma 2: inputs from any sample subset conform" ~count:200
    ~print:(fun (ds, _) -> String.concat " ; " (List.map print_data ds))
    QCheck2.Gen.(pair (list_size (int_range 2 4) gen_plain_data) (int_range 0 3))
    (fun (samples, idx) ->
      let input = List.nth samples (idx mod List.length samples) in
      let shape = Infer.shape_of_samples ~mode:`Paper samples in
      (* sanity: the premise S(input) ⊑ σ holds by Lemma 1 *)
      P.is_preferred (Infer.shape_of_value ~mode:`Paper input) shape
      && provide_and_walk ~mode:`Paper ~format:`Json samples input = Ok ())

(* ----- Theorem 3: random user programs ----- *)

(* Generate op-free, Data-free boolean programs over typed sources.
   Sources are (expr, ty) pairs the program may mention; the root source
   is the variable y bound to the provided value. *)
let gen_user_program classes (root_ty : ty) : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let fresh =
    let n = ref 0 in
    fun base -> incr n; Printf.sprintf "%s%d" base !n
  in
  let rec gen_path sources fuel : (expr * ty) t =
    let* (e, t) = oneofl sources in
    if fuel <= 0 then return (e, t)
    else
      match t with
      | TClass c -> (
          match find_class classes c with
          | Some cls when cls.members <> [] ->
              let* m = oneofl cls.members in
              gen_path ((EMember (e, m.member_name), m.member_ty) :: sources) (fuel - 1)
          | _ -> return (e, t))
      | _ -> return (e, t)
  in
  let rec gen_bool sources fuel : expr t =
    let base =
      let* (e, t) = gen_path sources 3 in
      let* again = bool in
      if again then
        (* compare two paths of the same type when we can find one *)
        let* (e2, _) =
          let same = List.filter (fun (_, t') -> ty_equal t t') sources in
          if same = [] then return (e, t) else oneofl same
        in
        return (EEq (e, e2))
      else return (EEq (e, e))
    in
    if fuel <= 0 then base
    else
      let options =
        List.filter (fun (_, t) -> match t with TOption _ -> true | _ -> false) sources
      in
      let lists =
        List.filter (fun (_, t) -> match t with TList _ -> true | _ -> false) sources
      in
      frequency
        ([
           (3, base);
           ( 2,
             let* c = gen_bool sources (fuel - 1) in
             let* th = gen_bool sources (fuel - 1) in
             let* el = gen_bool sources (fuel - 1) in
             return (EIf (c, th, el)) );
         ]
        @ (if options = [] then []
           else
             [
               ( 2,
                 let* (e, t) = oneofl options in
                 let t' = match t with TOption t' -> t' | _ -> assert false in
                 let x = fresh "o" in
                 let* body = gen_bool ((EVar x, t') :: sources) (fuel - 1) in
                 let* none_branch = gen_bool sources (fuel - 1) in
                 return (EMatchOption (e, x, body, none_branch)) );
             ])
        @
        if lists = [] then []
        else
          [
            ( 2,
              let* (e, t) = oneofl lists in
              let t' = match t with TList t' -> t' | _ -> assert false in
              let h = fresh "h" and tl = fresh "t" in
              let* body = gen_bool ((EVar h, t') :: (EVar tl, t) :: sources) (fuel - 1) in
              let* nil_branch = gen_bool sources (fuel - 1) in
              return (EMatchList (e, h, tl, body, nil_branch)) );
          ])
  in
  gen_bool [ (EVar "y", root_ty) ] 4

let theorem3_gen =
  let open QCheck2.Gen in
  let* samples = list_size (int_range 1 3) gen_plain_data in
  let shape = Infer.shape_of_samples ~mode:`Paper samples in
  let p = Provide.provide ~format:`Json shape in
  let* program = gen_user_program p.Provide.classes p.Provide.root_ty in
  let* idx = int_range 0 (List.length samples - 1) in
  return (samples, List.nth samples idx, program)

let print_theorem3 (samples, input, program) =
  Fmt.str "samples: %s@.input: %s@.program: %a"
    (String.concat " ; " (List.map print_data samples))
    (print_data input) pp_expr program

let prop_theorem3 =
  QCheck2.Test.make
    ~name:"Theorem 3: user programs never get stuck on conforming inputs"
    ~count:400 ~print:print_theorem3 theorem3_gen
    (fun (samples, input, program) ->
      let shape = Infer.shape_of_samples ~mode:`Paper samples in
      let p = Provide.provide ~format:`Json shape in
      (* the program is well-typed user code: L; y:τ ⊢ e' : bool *)
      match TC.check p.Provide.classes [ ("y", p.Provide.root_ty) ] program TBool with
      | Error _ -> false (* generator bug: must produce well-typed code *)
      | Ok () -> (
          let whole = subst "y" (Provide.apply p input) program in
          match Eval.eval p.Provide.classes whole with
          | Eval.Value (EData (Dv.Bool _)) -> true
          | _ -> false))

let prop_preservation =
  QCheck2.Test.make
    ~name:"Lemma 4: every reduction step preserves the type" ~count:100
    ~print:print_theorem3 theorem3_gen
    (fun (samples, input, program) ->
      let shape = Infer.shape_of_samples ~mode:`Paper samples in
      let p = Provide.provide ~format:`Json shape in
      let whole = subst "y" (Provide.apply p input) program in
      let steps, outcome = Eval.trace ~fuel:3000 p.Provide.classes whole in
      match outcome with
      | Eval.Value _ ->
          List.for_all
            (fun e ->
              match TC.check p.Provide.classes [] e TBool with
              | Ok () -> true
              | Error _ -> false)
            steps
      | _ -> false)

(* ----- relativeness: non-conforming inputs do fail ----- *)

let test_nonconforming_stuck () =
  (* sample has main.temp a number; input replaces it with a string *)
  let sample =
    Dv.Record
      ( Dv.json_record_name,
        [ ("main", Dv.Record (Dv.json_record_name, [ ("temp", Dv.Int 5) ])) ] )
  in
  let bad =
    Dv.Record
      ( Dv.json_record_name,
        [ ("main", Dv.Record (Dv.json_record_name, [ ("temp", Dv.String "five") ])) ] )
  in
  let shape = Infer.shape_of_samples ~mode:`Paper [ sample ] in
  let p = Provide.provide ~format:`Json shape in
  (* premise fails: S(bad) ⋢ σ *)
  Alcotest.(check bool)
    "premise violated" false
    (P.is_preferred (Infer.shape_of_value ~mode:`Paper bad) shape);
  let prog = EMember (EMember (Provide.apply p bad, "Main"), "Temp") in
  match Eval.eval p.Provide.classes prog with
  | Eval.Stuck _ -> ()
  | o -> Alcotest.failf "expected stuck on bad input, got %a" Eval.pp_outcome o

let test_missing_required_field_stuck () =
  let sample = Dv.Record (Dv.json_record_name, [ ("name", Dv.String "x") ]) in
  let bad = Dv.Record (Dv.json_record_name, [ ("other", Dv.Int 1) ]) in
  let shape = Infer.shape_of_samples ~mode:`Paper [ sample ] in
  let p = Provide.provide ~format:`Json shape in
  let prog = EMember (Provide.apply p bad, "Name") in
  match Eval.eval p.Provide.classes prog with
  | Eval.Stuck _ -> ()
  | o -> Alcotest.failf "expected stuck, got %a" Eval.pp_outcome o

(* The safety bullets of Section 5, as unit tests. *)
let test_safety_bullets () =
  let samples = [ Dv.Record ("p", [ ("x", Dv.Float 1.5) ]) ] in
  let shape = Infer.shape_of_samples ~mode:`Paper samples in
  let p = Provide.provide ~format:`Json shape in
  (* "Input can contain smaller numerical values" *)
  let input = Dv.Record ("p", [ ("x", Dv.Int 3) ]) in
  (match Eval.eval p.Provide.classes (EMember (Provide.apply p input, "X")) with
  | Eval.Value (EData (Dv.Float 3.)) -> ()
  | o -> Alcotest.failf "int into float member: %a" Eval.pp_outcome o);
  (* "Records in the input can have additional fields" *)
  let input = Dv.Record ("p", [ ("x", Dv.Float 1.); ("extra", Dv.Bool true) ]) in
  (match Eval.eval p.Provide.classes (EMember (Provide.apply p input, "X")) with
  | Eval.Value (EData (Dv.Float 1.)) -> ()
  | o -> Alcotest.failf "extra fields: %a" Eval.pp_outcome o);
  (* "Records can have fewer fields ... provided the sample also contains
     records that do not have the field" *)
  let samples =
    [
      Dv.List
        [
          Dv.Record ("p", [ ("x", Dv.Int 1); ("y", Dv.Int 2) ]);
          Dv.Record ("p", [ ("x", Dv.Int 3) ]);
        ];
    ]
  in
  let shape = Infer.shape_of_samples ~mode:`Paper samples in
  let p = Provide.provide ~format:`Json shape in
  let input = Dv.List [ Dv.Record ("p", [ ("x", Dv.Int 9) ]) ] in
  (match
     Eval.eval p.Provide.classes
       (EMatchList (Provide.apply p input, "h", "t", EMember (EVar "h", "Y"), EExn))
   with
  | Eval.Value (ENone _) -> ()
  | o -> Alcotest.failf "fewer fields: %a" Eval.pp_outcome o);
  (* "When a labelled top type is inferred, the actual input can contain
     any other value" *)
  let samples = [ Dv.List [ Dv.Int 1; Dv.Bool true ] ] in
  let shape = Infer.shape_of_samples ~mode:`Paper samples in
  let p = Provide.provide ~format:`Json shape in
  let input = Dv.List [ Dv.String "unknown kind" ] in
  match
    Eval.eval p.Provide.classes
      (EMatchList (Provide.apply p input, "h", "t", EMember (EVar "h", "Number"), EExn))
  with
  | Eval.Value (ENone _) -> ()
  | o -> Alcotest.failf "open world: %a" Eval.pp_outcome o

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lemma2_paper;
    QCheck_alcotest.to_alcotest prop_lemma2_practical;
    QCheck_alcotest.to_alcotest prop_lemma2_sublist;
    QCheck_alcotest.to_alcotest prop_theorem3;
    QCheck_alcotest.to_alcotest prop_preservation;
    tc "relativeness: wrong primitive gets stuck" `Quick test_nonconforming_stuck;
    tc "relativeness: missing required field gets stuck" `Quick
      test_missing_required_field_stuck;
    tc "Section 5 safety bullets" `Quick test_safety_bullets;
  ]
