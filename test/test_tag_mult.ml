(* Tags (Figure 4) and multiplicities (Section 6.4). *)

module Tag = Fsdata_core.Tag
module M = Fsdata_core.Multiplicity

let tc = Alcotest.test_case
let check = Alcotest.check

let test_tag_order () =
  (* compare is a total order; records order by name *)
  check Alcotest.bool "record names ordered" true
    (Tag.compare (Tag.Record "a") (Tag.Record "b") < 0);
  check Alcotest.bool "equal records" true
    (Tag.equal (Tag.Record "a") (Tag.Record "a"));
  check Alcotest.bool "distinct kinds" false (Tag.equal Tag.Number Tag.Bool);
  check Alcotest.bool "total" true
    (Tag.compare Tag.Null Tag.Top < 0 && Tag.compare Tag.Top Tag.Null > 0)

let test_member_names () =
  check Alcotest.string "number" "Number" (Tag.to_member_name Tag.Number);
  check Alcotest.string "collection is Array" "Array"
    (Tag.to_member_name Tag.Collection);
  check Alcotest.string "anonymous record is Record" "Record"
    (Tag.to_member_name (Tag.Record Fsdata_data.Data_value.json_record_name));
  check Alcotest.string "named record keeps its name" "item"
    (Tag.to_member_name (Tag.Record "item"))

let test_mult_order () =
  check Alcotest.bool "1 ⊑ 1?" true (M.is_preferred M.Single M.Optional_single);
  check Alcotest.bool "1? ⊑ *" true (M.is_preferred M.Optional_single M.Multiple);
  check Alcotest.bool "* ⋢ 1" false (M.is_preferred M.Multiple M.Single);
  check Alcotest.bool "reflexive" true (M.is_preferred M.Single M.Single)

let test_mult_ops () =
  check Alcotest.bool "lub(1,1) = 1" true (M.lub M.Single M.Single = M.Single);
  check Alcotest.bool "lub(1,1?) = 1? (the paper's example)" true
    (M.lub M.Single M.Optional_single = M.Optional_single);
  check Alcotest.bool "lub with *" true (M.lub M.Single M.Multiple = M.Multiple);
  check Alcotest.bool "widen 1" true (M.widen_absent M.Single = M.Optional_single);
  check Alcotest.bool "widen *" true (M.widen_absent M.Multiple = M.Multiple);
  check Alcotest.bool "of_count 1" true (M.of_count 1 = M.Single);
  check Alcotest.bool "of_count 5" true (M.of_count 5 = M.Multiple);
  Alcotest.check_raises "of_count 0"
    (Invalid_argument "Multiplicity.of_count: non-positive count") (fun () ->
      ignore (M.of_count 0))

let test_pp () =
  check Alcotest.string "1" "1" (Fmt.str "%a" M.pp M.Single);
  check Alcotest.string "1?" "1?" (Fmt.str "%a" M.pp M.Optional_single);
  check Alcotest.string "*" "*" (Fmt.str "%a" M.pp M.Multiple)

let suite =
  [
    tc "tag ordering and equality" `Quick test_tag_order;
    tc "tag member names (Section 2.3)" `Quick test_member_names;
    tc "multiplicity order" `Quick test_mult_order;
    tc "multiplicity lub/widen/of_count" `Quick test_mult_ops;
    tc "multiplicity printing" `Quick test_pp;
  ]
