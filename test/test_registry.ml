(* Tests for the durable live shape registry (lib/registry): version
   semantics of the incremental fold, the WAL framing, the durable
   round-trip, and the QCheck pin that WAL replay is exactly the
   in-memory csh fold. The storage-chaos side lives in
   test_chaos_fs.ml. *)

module Registry = Fsdata_registry.Registry
module Wal = Fsdata_registry.Wal
module Shape = Fsdata_core.Shape
module Csh = Fsdata_core.Csh
module Shape_parser = Fsdata_core.Shape_parser
module Preference = Fsdata_core.Preference
module Gen = QCheck2.Gen

let check = Alcotest.check
let tc = Alcotest.test_case
let sh = Shape_parser.parse

(* A fresh directory path the registry will create on open. *)
let temp_dir () =
  let path = Filename.temp_file "fsdata-registry" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let find_exn t name =
  match Registry.find t name with
  | Some st -> st
  | None -> Alcotest.failf "stream %S not found" name

(* ----- the incremental fold and version semantics ----- *)

let test_fresh_stream () =
  let t = Registry.open_ ~dir:None () in
  let st = Registry.push t ~stream:"s" (sh "{a: int}") in
  check Alcotest.int "first push bumps to version 1" 1 st.Registry.version;
  check Alcotest.int "one document" 1 st.Registry.pushes;
  check Generators.shape_testable "shape is the delta" (sh "{a: int}")
    st.Registry.shape;
  check Alcotest.int "one history entry" 1 (List.length st.Registry.history)

let test_idempotent_push_keeps_version () =
  let t = Registry.open_ ~dir:None () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let st = Registry.push t ~stream:"s" (sh "{a: int}") in
  check Alcotest.int "no growth, no bump" 1 st.Registry.version;
  check Alcotest.int "but the push is tallied" 2 st.Registry.pushes;
  check Alcotest.int "history unchanged" 1 (List.length st.Registry.history)

let test_strict_growth_bumps () =
  let t = Registry.open_ ~dir:None () in
  let st1 = Registry.push t ~stream:"s" (sh "{a: int}") in
  let st2 = Registry.push t ~stream:"s" (sh "{a: int, b: string}") in
  check Alcotest.int "growth bumps" 2 st2.Registry.version;
  check Alcotest.bool "old preferred over merged (old ⊑ new)" true
    (Preference.is_preferred st1.Registry.shape st2.Registry.shape);
  (* a shape already below the accumulator cannot bump *)
  let st3 = Registry.push t ~stream:"s" (sh "{a: int}") in
  check Alcotest.int "subsumed push keeps version" 2 st3.Registry.version

let test_version_shape () =
  let t = Registry.open_ ~dir:None () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let st = Registry.push t ~stream:"s" (sh "{a: int, b: string}") in
  check (Alcotest.option Generators.shape_testable) "version 0 is bottom"
    (Some Shape.Bottom)
    (Registry.version_shape st 0);
  check (Alcotest.option Generators.shape_testable) "version 1 recorded"
    (Some (sh "{a: int}"))
    (Registry.version_shape st 1);
  check (Alcotest.option Generators.shape_testable) "version 2 is current"
    (Some st.Registry.shape)
    (Registry.version_shape st 2);
  check (Alcotest.option Generators.shape_testable) "unknown version" None
    (Registry.version_shape st 3)

let test_count_tallies_documents () =
  let t = Registry.open_ ~dir:None () in
  let st = Registry.push t ~stream:"s" ~count:5 (sh "{a: int}") in
  check Alcotest.int "batch counts its documents" 5 st.Registry.pushes

let test_streams_are_independent () =
  let t = Registry.open_ ~dir:None () in
  let _ = Registry.push t ~stream:"a" (sh "{a: int}") in
  let _ = Registry.push t ~stream:"b" (sh "{b: string}") in
  check Alcotest.int "two streams" 2 (List.length (Registry.list t));
  check Alcotest.int "a at version 1" 1 (find_exn t "a").Registry.version;
  check Generators.shape_testable "b untouched by a" (sh "{b: string}")
    (find_exn t "b").Registry.shape

(* ----- WAL framing ----- *)

let test_crc32_check_value () =
  (* the standard CRC-32/IEEE check value *)
  check Alcotest.int "crc32(123456789)" 0xCBF43926 (Wal.crc32 "123456789")

let test_wal_roundtrip () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.log" in
  let w, r = Wal.open_ ~fsync:`Never path in
  check (Alcotest.list Alcotest.string) "fresh log" [] r.Wal.records;
  Wal.append w "one";
  Wal.append w "two";
  check Alcotest.int "two records" 2 (Wal.records w);
  Wal.close w;
  let w, r = Wal.open_ ~fsync:`Never path in
  check (Alcotest.list Alcotest.string) "recovered in order" [ "one"; "two" ]
    r.Wal.records;
  check Alcotest.int "no torn tail" 0 r.Wal.truncated_bytes;
  Wal.close w

let test_wal_truncates_torn_tail () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.log" in
  let w, _ = Wal.open_ ~fsync:`Never path in
  Wal.append w "solid";
  Wal.close w;
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x40\x00\x00\x00torn";
  close_out oc;
  let w, r = Wal.open_ ~fsync:`Never path in
  check (Alcotest.list Alcotest.string) "valid prefix kept" [ "solid" ]
    r.Wal.records;
  check Alcotest.int "tail truncated" 8 r.Wal.truncated_bytes;
  check Alcotest.int "file repaired on disk" (8 + String.length "solid")
    (Unix.stat path).Unix.st_size;
  Wal.close w

(* ----- durability ----- *)

let streams_equal a b =
  check Alcotest.int "version" a.Registry.version b.Registry.version;
  check Alcotest.int "seq" a.Registry.seq b.Registry.seq;
  check Alcotest.int "pushes" a.Registry.pushes b.Registry.pushes;
  (* byte-identical, not just equal up to csh laws *)
  check Alcotest.string "shape text"
    (Shape.to_string a.Registry.shape)
    (Shape.to_string b.Registry.shape);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "history versions"
    (List.map (fun (v, s, _) -> (v, s)) a.Registry.history)
    (List.map (fun (v, s, _) -> (v, s)) b.Registry.history);
  List.iter2
    (fun (_, _, x) (_, _, y) ->
      check Alcotest.string "history shape" (Shape.to_string x)
        (Shape.to_string y))
    a.Registry.history b.Registry.history

let test_durable_roundtrip () =
  with_dir @@ fun dir ->
  let t = Registry.open_ ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let _ = Registry.push t ~stream:"s" (sh "{a: int, b: [string]}") in
  let _ = Registry.push t ~stream:"other" ~count:3 (sh "[int]") in
  let before = Registry.list t in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  let after = Registry.list t2 in
  check Alcotest.int "stream count" (List.length before) (List.length after);
  List.iter2 streams_equal before after;
  Registry.close t2

let test_snapshot_compaction () =
  with_dir @@ fun dir ->
  let t = Registry.open_ ~snapshot_every:2 ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let _ = Registry.push t ~stream:"s" (sh "{a: int, b: string}") in
  (* the second push hit the threshold: records moved into the snapshot *)
  check Alcotest.int "wal compacted" 0 (Registry.wal_records t);
  check Alcotest.bool "snapshot exists" true
    (Sys.file_exists (Filename.concat dir "snapshot.bin"));
  let _ = Registry.push t ~stream:"s" (sh "{c: bool}") in
  let before = Registry.list t in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  List.iter2 streams_equal before (Registry.list t2);
  Registry.close t2

let test_explicit_snapshot_then_reopen () =
  with_dir @@ fun dir ->
  let t = Registry.open_ ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  Registry.snapshot t;
  check Alcotest.int "wal reset" 0 (Registry.wal_records t);
  let before = Registry.list t in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  List.iter2 streams_equal before (Registry.list t2);
  Registry.close t2

(* ----- guard rails: locking, name framing, bounded history ----- *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_second_open_refused () =
  with_dir @@ fun dir ->
  let t = Registry.open_ ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  (try
     ignore (Registry.open_ ~dir:(Some dir) ());
     Alcotest.fail "second open of a live state dir should be refused"
   with Failure msg ->
     check Alcotest.bool "the error names the lock" true
       (contains ~sub:"locked" msg));
  (* the holder is unharmed, and closing releases the lock *)
  let _ = Registry.push t ~stream:"s" (sh "{a: int, b: string}") in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check Alcotest.int "reopen after close succeeds" 2
    (find_exn t2 "s").Registry.version;
  Registry.close t2

let test_overlong_name_rejected () =
  with_dir @@ fun dir ->
  let t = Registry.open_ ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  (try
     ignore (Registry.push t ~stream:(String.make 70_000 'n') (sh "{a: int}"));
     Alcotest.fail "a name too long for u16 framing should be rejected"
   with Invalid_argument _ -> ());
  check Alcotest.int "nothing was appended for it" 1 (Registry.wal_records t);
  Registry.close t;
  (* the log holds no truncated-length poison pill: recovery works *)
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check Alcotest.int "one stream recovered" 1 (List.length (Registry.list t2));
  Registry.close t2

let test_history_is_bounded () =
  with_dir @@ fun dir ->
  let t = Registry.open_ ~history_limit:3 ~dir:(Some dir) () in
  List.iter
    (fun f ->
      ignore (Registry.push t ~stream:"s" (sh (Printf.sprintf "{%s: int}" f))))
    [ "a"; "b"; "c"; "d"; "e" ];
  let st = find_exn t "s" in
  check Alcotest.int "every growth bumped" 5 st.Registry.version;
  check
    (Alcotest.list Alcotest.int)
    "only the newest bumps retained, oldest first" [ 3; 4; 5 ]
    (List.map (fun (v, _, _) -> v) st.Registry.history);
  check (Alcotest.option Generators.shape_testable) "evicted version is gone"
    None
    (Registry.version_shape st 1);
  check (Alcotest.option Generators.shape_testable) "current still recorded"
    (Some st.Registry.shape)
    (Registry.version_shape st 5);
  Registry.snapshot t;
  Registry.close t;
  let t2 = Registry.open_ ~history_limit:3 ~dir:(Some dir) () in
  let st2 = find_exn t2 "s" in
  check Alcotest.int "version survives the bound" 5 st2.Registry.version;
  check Alcotest.int "bounded after snapshot + reopen" 3
    (List.length st2.Registry.history);
  Registry.close t2;
  (* a snapshot taken under a larger limit re-trims on load *)
  let t3 = Registry.open_ ~history_limit:2 ~dir:(Some dir) () in
  check Alcotest.int "tighter limit trims loaded state" 2
    (List.length (find_exn t3 "s").Registry.history);
  Registry.close t3

(* ----- replay ≡ the in-memory fold (QCheck) ----- *)

(* The reference: fold the same deltas through csh in memory, tracking
   versions the way the registry specifies them — bump iff the merge
   changed the shape. *)
let reference deltas =
  List.fold_left
    (fun (shape, version) delta ->
      let merged = Csh.csh shape delta in
      if Shape.equal merged shape then (shape, version)
      else (merged, version + 1))
    (Shape.Bottom, 0) deltas

let gen_deltas = Gen.list_size (Gen.int_range 1 8) Generators.gen_core_shape

let replay_equals_fold =
  QCheck2.Test.make ~count:1000 ~name:"WAL replay = in-memory csh fold"
    ~print:(fun ds -> String.concat " ; " (List.map Shape.to_string ds))
    gen_deltas
    (fun deltas ->
      with_dir @@ fun dir ->
      let t = Registry.open_ ~fsync:`Never ~dir:(Some dir) () in
      let live =
        List.fold_left
          (fun _ d -> Registry.push t ~stream:"s" d)
          (Registry.push t ~stream:"s" (List.hd deltas))
          (List.tl deltas)
      in
      Registry.close t;
      let t2 = Registry.open_ ~fsync:`Never ~dir:(Some dir) () in
      let recovered =
        match Registry.find t2 "s" with
        | Some st -> st
        | None -> QCheck2.Test.fail_report "stream lost on recovery"
      in
      Registry.close t2;
      let expected_shape, expected_version = reference deltas in
      if not (Shape.equal live.Registry.shape recovered.Registry.shape) then
        QCheck2.Test.fail_report "recovered shape differs from live";
      if
        Shape.to_string live.Registry.shape
        <> Shape.to_string recovered.Registry.shape
      then QCheck2.Test.fail_report "recovered shape not byte-identical";
      if not (Shape.equal expected_shape recovered.Registry.shape) then
        QCheck2.Test.fail_report "recovered shape differs from reference fold";
      if expected_version <> recovered.Registry.version then
        QCheck2.Test.fail_report "recovered version differs from reference";
      if live.Registry.pushes <> recovered.Registry.pushes then
        QCheck2.Test.fail_report "push tally not recovered";
      true)

let growth_is_monotone =
  QCheck2.Test.make ~count:300 ~name:"version bumps only on strict ⊑ growth"
    ~print:(fun ds -> String.concat " ; " (List.map Shape.to_string ds))
    gen_deltas
    (fun deltas ->
      let t = Registry.open_ ~dir:None () in
      List.iter
        (fun delta ->
          let before =
            match Registry.find t "s" with
            | Some st -> (st.Registry.version, st.Registry.shape)
            | None -> (0, Shape.Bottom)
          in
          let st = Registry.push t ~stream:"s" delta in
          let bumped = st.Registry.version > fst before in
          let grew = not (Shape.equal st.Registry.shape (snd before)) in
          if bumped <> grew then
            QCheck2.Test.fail_report "bump without growth (or vice versa)";
          if not (Preference.is_preferred (snd before) st.Registry.shape) then
            QCheck2.Test.fail_report "accumulator not monotone under ⊑")
        deltas;
      true)

let suite =
  [
    tc "fresh stream: first push is version 1" `Quick test_fresh_stream;
    tc "idempotent push keeps the version" `Quick
      test_idempotent_push_keeps_version;
    tc "strict growth bumps the version" `Quick test_strict_growth_bumps;
    tc "version_shape walks the history" `Quick test_version_shape;
    tc "count tallies batch documents" `Quick test_count_tallies_documents;
    tc "streams are independent" `Quick test_streams_are_independent;
    tc "crc32 matches the IEEE check value" `Quick test_crc32_check_value;
    tc "wal: append and recover in order" `Quick test_wal_roundtrip;
    tc "wal: torn tail truncated on open" `Quick test_wal_truncates_torn_tail;
    tc "durable round-trip is byte-identical" `Quick test_durable_roundtrip;
    tc "snapshot compaction preserves state" `Quick test_snapshot_compaction;
    tc "explicit snapshot then reopen" `Quick test_explicit_snapshot_then_reopen;
    tc "second open of a live state dir is refused" `Quick
      test_second_open_refused;
    tc "oversized stream name rejected, log not poisoned" `Quick
      test_overlong_name_rejected;
    tc "stream history is a bounded window" `Quick test_history_is_bounded;
    QCheck_alcotest.to_alcotest replay_equals_fold;
    QCheck_alcotest.to_alcotest growth_is_monotone;
  ]
