(* The Foo concrete-syntax parser: golden cases and print/parse
   round-trips over provider-generated classes and random user programs.

   The printed form does not carry the type annotations of None/nil, so
   round-trips are compared up to those annotations (the same equivalence
   the evaluator's value equality uses). *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
open Fsdata_foo.Syntax
module P = Fsdata_foo.Parser
module Provide = Fsdata_provider.Provide

let tc = Alcotest.test_case
let check = Alcotest.check

(* equality up to None/nil annotations *)
let rec eq_expr a b =
  match (a, b) with
  | EData d1, EData d2 -> Dv.equal d1 d2
  | EDate d1, EDate d2 -> Fsdata_data.Date.equal d1 d2
  | EVar x, EVar y -> x = y
  | ELam (x1, t1, e1), ELam (x2, t2, e2) -> x1 = x2 && ty_equal t1 t2 && eq_expr e1 e2
  | EApp (a1, a2), EApp (b1, b2)
  | EEq (a1, a2), EEq (b1, b2)
  | ECons (a1, a2), ECons (b1, b2) ->
      eq_expr a1 b1 && eq_expr a2 b2
  | EMember (e1, n1), EMember (e2, n2) -> n1 = n2 && eq_expr e1 e2
  | ENew (c1, a1), ENew (c2, a2) ->
      c1 = c2 && List.length a1 = List.length a2 && List.for_all2 eq_expr a1 a2
  | ENone _, ENone _ | ENil _, ENil _ | EExn, EExn -> true
  | ESome e1, ESome e2 -> eq_expr e1 e2
  | EMatchOption (s1, x1, a1, b1), EMatchOption (s2, x2, a2, b2) ->
      x1 = x2 && eq_expr s1 s2 && eq_expr a1 a2 && eq_expr b1 b2
  | EIf (c1, t1, f1), EIf (c2, t2, f2) ->
      eq_expr c1 c2 && eq_expr t1 t2 && eq_expr f1 f2
  | EMatchList (s1, h1, t1, a1, b1), EMatchList (s2, h2, t2, a2, b2) ->
      h1 = h2 && t1 = t2 && eq_expr s1 s2 && eq_expr a1 a2 && eq_expr b1 b2
  | EOp o1, EOp o2 -> eq_op o1 o2
  | _ -> false

and eq_op o1 o2 =
  match (o1, o2) with
  | ConvFloat (s1, e1), ConvFloat (s2, e2)
  | ConvPrim (s1, e1), ConvPrim (s2, e2)
  | HasShape (s1, e1), HasShape (s2, e2) ->
      Shape.equal s1 s2 && eq_expr e1 e2
  | ConvField (a1, b1, e1, f1), ConvField (a2, b2, e2, f2) ->
      a1 = a2 && b1 = b2 && eq_expr e1 e2 && eq_expr f1 f2
  | ConvNull (e1, f1), ConvNull (e2, f2)
  | ConvElements (e1, f1), ConvElements (e2, f2) ->
      eq_expr e1 e2 && eq_expr f1 f2
  | ConvBool e1, ConvBool e2 | ConvDate e1, ConvDate e2
  | IntOfFloat e1, IntOfFloat e2 ->
      eq_expr e1 e2
  | ConvSelect (s1, m1, e1, f1), ConvSelect (s2, m2, e2, f2) ->
      Shape.equal s1 s2 && m1 = m2 && eq_expr e1 e2 && eq_expr f1 f2
  | _ -> false

let roundtrip_expr e =
  match P.parse_expr_result (expr_to_string e) with
  | Ok e' -> eq_expr e e'
  | Error _ -> false

let golden_exprs =
  [
    ("42", int_ 42);
    ("-3.5", float_ (-3.5));
    ({|"hello"|}, string_ "hello");
    ("null", EData Dv.Null);
    ("true", bool_ true);
    ("x", EVar "x");
    ("exn", EExn);
    ("None", ENone TData);
    ("nil", ENil TData);
    ("Some(1)", ESome (int_ 1));
    ("1 :: 2 :: nil", ECons (int_ 1, ECons (int_ 2, ENil TData)));
    ("x = y", EEq (EVar "x", EVar "y"));
    ("f x y", EApp (EApp (EVar "f", EVar "x"), EVar "y"));
    ("x.Name", EMember (EVar "x", "Name"));
    ("new C(1, \"a\")", ENew ("C", [ int_ 1; string_ "a" ]));
    ("if b then 1 else 2", EIf (EVar "b", int_ 1, int_ 2));
    ( "(\\x:int. x) 5",
      EApp (ELam ("x", TInt, EVar "x"), int_ 5) );
    ( "match o with | Some(v) -> v | None -> 0",
      EMatchOption (EVar "o", "v", EVar "v", int_ 0) );
    ( "match l with | h :: t -> h | nil -> 0",
      EMatchList (EVar "l", "h", "t", EVar "h", int_ 0) );
    ("int(x)", EOp (IntOfFloat (EVar "x")));
    ("convBool(x)", EOp (ConvBool (EVar "x")));
    ( "convPrim(int, x)",
      EOp (ConvPrim (Shape.Primitive Shape.Int, EVar "x")) );
    ( "hasShape(p {a: int}, x)",
      EOp (HasShape (Shape.record "p" [ ("a", Shape.Primitive Shape.Int) ], EVar "x"))
    );
    ( "convField(p, a, x, \\v:Data. convPrim(string, v))",
      EOp
        (ConvField
           ( "p", "a", EVar "x",
             ELam ("v", TData, EOp (ConvPrim (Shape.Primitive Shape.String, EVar "v")))
           )) );
    ( "convSelect([int], *, x, k)",
      EOp
        (ConvSelect
           (Shape.collection (Shape.Primitive Shape.Int), Mult.Multiple, EVar "x", EVar "k"))
    );
    ( "[1; [true]; p {a \xe2\x86\xa6 null}]",
      EData
        (Dv.List
           [ Dv.Int 1; Dv.List [ Dv.Bool true ]; Dv.Record ("p", [ ("a", Dv.Null) ]) ])
    );
  ]

let test_golden () =
  List.iter
    (fun (src, expected) ->
      match P.parse_expr_result src with
      | Ok e ->
          if not (eq_expr e expected) then
            Alcotest.failf "%S parsed to %a" src pp_expr e
      | Error e -> Alcotest.failf "%S: %s" src e)
    golden_exprs

let test_golden_types () =
  List.iter
    (fun (src, expected) ->
      match P.parse_ty_result src with
      | Ok t -> check (Alcotest.testable pp_ty ty_equal) src expected t
      | Error e -> Alcotest.failf "%S: %s" src e)
    [
      ("int", TInt);
      ("Data", TData);
      ("list int", TList TInt);
      ("option (list string)", TOption (TList TString));
      ("(int -> bool)", TArrow (TInt, TBool));
      ("(Data -> option float)", TArrow (TData, TOption TFloat));
      ("Person", TClass "Person");
    ]

let test_errors () =
  List.iter
    (fun src ->
      match P.parse_expr_result src with
      | Error _ -> ()
      | Ok e -> Alcotest.failf "%S parsed to %a" src pp_expr e)
    [ ""; "("; "new"; "Some("; "if x then y"; "match x with | Some(v) -> v";
      "convPrim(int)"; "1 ::"; "x ." ]

(* provider-generated classes round-trip through print + parse *)
let test_class_roundtrip () =
  let sample =
    {|[ { "pages": 5 },
        [ { "indicator": "GC", "date": "2012", "value": null } ] ]|}
  in
  let p = Result.get_ok (Provide.provide_json sample) in
  let printed =
    String.concat "\n" (List.map (Fmt.str "%a" pp_class) p.Provide.classes)
  in
  match P.parse_classes_result printed with
  | Error e -> Alcotest.failf "classes failed to re-parse: %s" e
  | Ok classes ->
      check Alcotest.int "class count" (List.length p.Provide.classes)
        (List.length classes);
      List.iter2
        (fun (c1 : class_def) (c2 : class_def) ->
          check Alcotest.string "name" c1.class_name c2.class_name;
          List.iter2
            (fun (m1 : member_def) (m2 : member_def) ->
              check Alcotest.string "member" m1.member_name m2.member_name;
              if not (ty_equal m1.member_ty m2.member_ty) then
                Alcotest.failf "member type mismatch for %s" m1.member_name;
              if not (eq_expr m1.member_body m2.member_body) then
                Alcotest.failf "member body mismatch for %s:\n%a\nvs\n%a"
                  m1.member_name pp_expr m1.member_body pp_expr m2.member_body)
            c1.members c2.members)
        p.Provide.classes classes

(* random provider outputs round-trip *)
let prop_provider_roundtrip =
  QCheck2.Test.make ~name:"provider classes round-trip through the parser"
    ~count:150 ~print:Generators.print_data Generators.gen_data (fun d ->
      let shape = Fsdata_core.Infer.shape_of_value ~mode:`Practical d in
      let p = Provide.provide shape in
      List.for_all
        (fun (c : class_def) ->
          match P.parse_classes_result (Fmt.str "%a" pp_class c) with
          | Ok [ c' ] ->
              c.class_name = c'.class_name
              && List.for_all2
                   (fun (m1 : member_def) (m2 : member_def) ->
                     m1.member_name = m2.member_name
                     && ty_equal m1.member_ty m2.member_ty
                     && eq_expr m1.member_body m2.member_body)
                   c.members c'.members
          | _ -> false)
        p.Provide.classes
      && roundtrip_expr p.Provide.conv)

let suite =
  [
    tc "golden expressions" `Quick test_golden;
    tc "golden types" `Quick test_golden_types;
    tc "rejected inputs" `Quick test_errors;
    tc "provided classes round-trip" `Quick test_class_roundtrip;
    QCheck_alcotest.to_alcotest prop_provider_roundtrip;
  ]

(* random user programs (Theorem 3 generator) round-trip through the
   concrete syntax *)
let prop_user_programs_roundtrip =
  let gen =
    let open QCheck2.Gen in
    let* samples =
      list_size (int_range 1 3) Generators.gen_plain_data
    in
    let shape = Fsdata_core.Infer.shape_of_samples ~mode:`Paper samples in
    let p = Provide.provide ~format:`Json shape in
    Test_safety.gen_user_program p.Provide.classes p.Provide.root_ty
  in
  QCheck2.Test.make ~name:"user programs round-trip through the parser"
    ~count:250
    ~print:(fun e -> expr_to_string e)
    gen
    (fun e -> roundtrip_expr e)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_user_programs_roundtrip ]
