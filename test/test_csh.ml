(* The common preferred shape function (Definition 2, Figures 2 and 4;
   Lemma 1).

   One unit test per rule of Figure 2 and Figure 4, named after the rule,
   plus the least-upper-bound property of Lemma 1 as qcheck properties
   over the core algebra. *)

module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module Csh = Fsdata_core.Csh
module P = Fsdata_core.Preference
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

let int_ = Shape.Primitive Shape.Int
let float_ = Shape.Primitive Shape.Float
let bool_ = Shape.Primitive Shape.Bool
let string_ = Shape.Primitive Shape.String
let bit = Shape.Primitive Shape.Bit
let bit0 = Shape.Primitive Shape.Bit0
let bit1 = Shape.Primitive Shape.Bit1
let date = Shape.Primitive Shape.Date
let csh = Csh.csh ~mode:`Core
let cshh = Csh.csh ~mode:`Hetero

let eq name expected actual = check shape_testable name expected actual

(* (eq) *)
let test_rule_eq () =
  eq "identical shapes" int_ (csh int_ int_);
  let r = Shape.record "p" [ ("x", int_) ] in
  eq "identical records" r (csh r r);
  eq "identical tops" (Shape.top [ int_ ]) (csh (Shape.top [ int_ ]) (Shape.top [ int_ ]))

(* (list) *)
let test_rule_list () =
  eq "[int] ⊔ [float] = [float]"
    (Shape.collection float_)
    (csh (Shape.collection int_) (Shape.collection float_));
  eq "[int] ⊔ [⊥] = [int]"
    (Shape.collection int_)
    (csh (Shape.collection int_) (Shape.collection Shape.Bottom));
  eq "[int] ⊔ [null] = [nullable int]"
    (Shape.collection (Shape.Nullable int_))
    (csh (Shape.collection int_) (Shape.collection Shape.Null))

(* (bot) *)
let test_rule_bot () =
  eq "⊥ ⊔ s = s" int_ (csh Shape.Bottom int_);
  eq "s ⊔ ⊥ = s" int_ (csh int_ Shape.Bottom);
  eq "⊥ ⊔ ⊥ = ⊥" Shape.Bottom (csh Shape.Bottom Shape.Bottom);
  eq "⊥ ⊔ null = null" Shape.Null (csh Shape.Bottom Shape.Null)

(* (null) *)
let test_rule_null () =
  eq "null ⊔ int = nullable int" (Shape.Nullable int_) (csh Shape.Null int_);
  eq "int ⊔ null = nullable int" (Shape.Nullable int_) (csh int_ Shape.Null);
  eq "null ⊔ record" (Shape.Nullable (Shape.record "p" []))
    (csh Shape.Null (Shape.record "p" []));
  eq "null ⊔ collection = collection (already nullable)"
    (Shape.collection int_)
    (csh Shape.Null (Shape.collection int_));
  eq "null ⊔ nullable int = nullable int" (Shape.Nullable int_)
    (csh Shape.Null (Shape.Nullable int_));
  eq "null ⊔ any = any" Shape.any (csh Shape.Null Shape.any);
  eq "null ⊔ null = null" Shape.Null (csh Shape.Null Shape.Null)

(* (top) *)
let test_rule_top () =
  eq "any ⊔ int = any (labels grow)" (Shape.top [ int_ ]) (csh Shape.any int_);
  eq "any ⊔ any = any" Shape.any (csh Shape.any Shape.any)

(* (num) + Section 6.2 lattice *)
let test_rule_num () =
  eq "int ⊔ float = float" float_ (csh int_ float_);
  eq "float ⊔ int = float" float_ (csh float_ int_);
  eq "bit0 ⊔ bit1 = bit" bit (csh bit0 bit1);
  eq "bit0 ⊔ int = int" int_ (csh bit0 int_);
  eq "bit ⊔ int = int" int_ (csh bit int_);
  eq "bit ⊔ bool = bool" bool_ (csh bit bool_);
  eq "bit ⊔ float = float" float_ (csh bit float_);
  eq "bit1 ⊔ bool = bool" bool_ (csh bit1 bool_);
  eq "date ⊔ string = string" string_ (csh date string_)

(* (opt) *)
let test_rule_opt () =
  eq "nullable int ⊔ float = nullable float" (Shape.Nullable float_)
    (csh (Shape.Nullable int_) float_);
  eq "int ⊔ nullable float = nullable float" (Shape.Nullable float_)
    (csh int_ (Shape.Nullable float_));
  eq "nullable int ⊔ nullable float = nullable float" (Shape.Nullable float_)
    (csh (Shape.Nullable int_) (Shape.Nullable float_));
  (* joining through nullable can still reach a top; ⌈−⌉ leaves it alone *)
  eq "nullable int ⊔ record = top"
    (Shape.top [ int_; Shape.record "p" [] ])
    (csh (Shape.Nullable int_) (Shape.record "p" []))

(* (recd) with row variables (Figure 3's θ) *)
let test_rule_recd () =
  let p = Shape.record "p" in
  eq "common fields joined"
    (p [ ("x", float_) ])
    (csh (p [ ("x", int_) ]) (p [ ("x", float_) ]));
  eq "one-sided fields become nullable"
    (p [ ("x", int_); ("y", Shape.Nullable string_) ])
    (csh (p [ ("x", int_); ("y", string_) ]) (p [ ("x", int_) ]));
  eq "both sides contribute"
    (p [ ("x", Shape.Nullable int_); ("y", Shape.Nullable string_) ])
    (csh (p [ ("x", int_) ]) (p [ ("y", string_) ]));
  eq "Point example from Section 3.1"
    (Shape.record "Point" [ ("x", int_); ("y", Shape.Nullable int_) ])
    (csh
       (Shape.record "Point" [ ("x", int_) ])
       (Shape.record "Point" [ ("x", int_); ("y", int_) ]));
  eq "field order follows first appearance"
    (p [ ("y", Shape.Nullable string_); ("x", Shape.Nullable int_) ])
    (csh (p [ ("y", string_) ]) (p [ ("x", int_) ]))

(* (any) / (top-any) *)
let test_rule_any () =
  eq "int ⊔ bool = any⟨int, bool⟩" (Shape.top [ int_; bool_ ]) (csh int_ bool_);
  eq "record ⊔ collection"
    (Shape.top [ Shape.record "p" []; Shape.collection int_ ])
    (csh (Shape.record "p" []) (Shape.collection int_));
  eq "records with different names"
    (Shape.top [ Shape.record "p" []; Shape.record "q" [] ])
    (csh (Shape.record "p" []) (Shape.record "q" []))

(* Figure 4: (top-merge) *)
let test_top_merge () =
  eq "labels grouped by tag"
    (Shape.top [ float_; bool_; string_ ])
    (csh (Shape.top [ int_; string_ ]) (Shape.top [ float_; bool_ ]));
  eq "record labels with same name merge"
    (Shape.top [ Shape.record "p" [ ("x", Shape.Nullable int_) ]; bool_ ])
    (csh
       (Shape.top [ Shape.record "p" [ ("x", int_) ] ])
       (Shape.top [ Shape.record "p" []; bool_ ]))

(* Figure 4: (top-incl) *)
let test_top_incl () =
  eq "joins with the matching label"
    (Shape.top [ float_; bool_ ])
    (csh (Shape.top [ int_; bool_ ]) float_);
  eq "paper example: joins int and float rather than nesting"
    (Shape.top [ float_; bool_ ])
    (csh (csh int_ bool_) float_)

(* Figure 4: (top-add) *)
let test_top_add () =
  eq "adds a label with a new tag"
    (Shape.top [ int_; bool_; string_ ])
    (csh (Shape.top [ int_; bool_ ]) string_);
  eq "nullable label is stripped (⌊−⌋)"
    (Shape.top [ int_; string_ ])
    (csh (Shape.top [ int_ ]) (Shape.Nullable string_))

(* Hetero collections (Section 6.4). *)
let test_hetero_merge () =
  let h = Shape.hetero in
  eq "same tag: shapes join, multiplicities lub"
    (h [ (float_, Mult.Multiple) ])
    (cshh (h [ (int_, Mult.Single) ]) (h [ (float_, Mult.Multiple) ]));
  eq "1 and 1 stay 1"
    (h [ (int_, Mult.Single) ])
    (cshh (h [ (int_, Mult.Single) ]) (h [ (int_, Mult.Single) ]));
  eq "one-sided tag weakens 1 to 1? (paper: turning 1 and 1? into 1?)"
    (h [ (int_, Mult.Single); (string_, Mult.Optional_single) ])
    (cshh
       (h [ (int_, Mult.Single); (string_, Mult.Single) ])
       (h [ (int_, Mult.Single) ]));
  eq "one-sided * stays *"
    (h [ (int_, Mult.Single); (string_, Mult.Multiple) ])
    (cshh
       (h [ (int_, Mult.Single); (string_, Mult.Multiple) ])
       (h [ (int_, Mult.Single) ]));
  eq "empty collection weakens everything"
    (h [ (int_, Mult.Optional_single) ])
    (cshh (h [ (int_, Mult.Single) ]) (Shape.Collection []))

(* csh_all: Figure 3's fold. *)
let test_csh_all () =
  eq "empty fold is bottom" Shape.Bottom (Csh.csh_all ~mode:`Core []);
  eq "singleton" int_ (Csh.csh_all ~mode:`Core [ int_ ]);
  eq "int, float, null" (Shape.Nullable float_)
    (Csh.csh_all ~mode:`Core [ int_; float_; Shape.Null ])

(* ----- Lemma 1: csh is the least upper bound ----- *)

let prop_upper_bound =
  QCheck2.Test.make ~name:"Lemma 1: csh is an upper bound" ~count:800
    ~print:(fun (a, b) -> print_shape a ^ " / " ^ print_shape b)
    QCheck2.Gen.(pair gen_core_shape gen_core_shape)
    (fun (a, b) ->
      let c = csh a b in
      P.is_preferred a c && P.is_preferred b c)

let prop_least =
  QCheck2.Test.make ~name:"Lemma 1: csh is least among upper bounds" ~count:800
    ~print:(fun (a, b, u) ->
      String.concat " / " (List.map print_shape [ a; b; u ]))
    QCheck2.Gen.(triple gen_core_shape gen_core_shape gen_core_shape)
    (fun (a, b, u) ->
      (* whenever u is an upper bound of a and b, csh(a,b) ⊑ u *)
      (not (P.is_preferred a u && P.is_preferred b u))
      || P.is_preferred (csh a b) u)

let prop_commutative =
  QCheck2.Test.make ~name:"csh commutative" ~count:500
    ~print:(fun (a, b) -> print_shape a ^ " / " ^ print_shape b)
    QCheck2.Gen.(pair gen_core_shape gen_core_shape)
    (fun (a, b) -> Shape.equal (csh a b) (csh b a))

let prop_idempotent =
  QCheck2.Test.make ~name:"csh idempotent" ~count:300 ~print:print_shape
    gen_core_shape (fun s -> Shape.equal (csh s s) s)

let prop_associative_up_to_equiv =
  QCheck2.Test.make ~name:"csh associative up to \xe2\x8a\x91-equivalence"
    ~count:500
    ~print:(fun (a, b, c) ->
      String.concat " / " (List.map print_shape [ a; b; c ]))
    QCheck2.Gen.(triple gen_core_shape gen_core_shape gen_core_shape)
    (fun (a, b, c) ->
      let l = csh (csh a b) c and r = csh a (csh b c) in
      P.is_preferred l r && P.is_preferred r l)

let prop_monotone_join =
  QCheck2.Test.make ~name:"a \xe2\x8a\x91 b implies csh a b \xe2\x89\xa1 b"
    ~count:500
    ~print:(fun (a, b) -> print_shape a ^ " / " ^ print_shape b)
    QCheck2.Gen.(pair gen_core_shape gen_core_shape)
    (fun (a, b) ->
      (not (P.is_preferred a b))
      ||
      let c = csh a b in
      P.is_preferred c b && P.is_preferred b c)

let suite =
  [
    tc "rule (eq)" `Quick test_rule_eq;
    tc "rule (list)" `Quick test_rule_list;
    tc "rule (bot)" `Quick test_rule_bot;
    tc "rule (null)" `Quick test_rule_null;
    tc "rule (top)" `Quick test_rule_top;
    tc "rule (num) + Section 6.2 lattice" `Quick test_rule_num;
    tc "rule (opt)" `Quick test_rule_opt;
    tc "rule (recd) + row variables" `Quick test_rule_recd;
    tc "rule (any)" `Quick test_rule_any;
    tc "Figure 4 (top-merge)" `Quick test_top_merge;
    tc "Figure 4 (top-incl)" `Quick test_top_incl;
    tc "Figure 4 (top-add)" `Quick test_top_add;
    tc "hetero merge (Section 6.4)" `Quick test_hetero_merge;
    tc "csh_all fold" `Quick test_csh_all;
    QCheck_alcotest.to_alcotest prop_upper_bound;
    QCheck_alcotest.to_alcotest prop_least;
    QCheck_alcotest.to_alcotest prop_commutative;
    QCheck_alcotest.to_alcotest prop_idempotent;
    QCheck_alcotest.to_alcotest prop_associative_up_to_equiv;
    QCheck_alcotest.to_alcotest prop_monotone_join;
  ]
