(* Tests for the inference service handlers (lib/serve/server.ml) and
   the LRU response cache, exercised directly on Server.handle — no
   sockets. The cram test test/cli/serve.t covers the live server. *)

module Server = Fsdata_serve.Server
module Http = Fsdata_serve.Http
module Cache = Fsdata_serve.Cache
module Shape = Fsdata_core.Shape
module Par_infer = Fsdata_core.Par_infer
module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json

let check = Alcotest.check
let tc = Alcotest.test_case

(* ----- the LRU cache ----- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  check Alcotest.int "no eviction below capacity" 0 (Cache.add c "a" 1);
  check Alcotest.int "still none" 0 (Cache.add c "b" 2);
  check Alcotest.int "adding over capacity evicts one" 1 (Cache.add c "c" 3);
  check (Alcotest.option Alcotest.int) "LRU entry evicted" None (Cache.find c "a");
  check (Alcotest.option Alcotest.int) "newer kept" (Some 2) (Cache.find c "b");
  check (Alcotest.option Alcotest.int) "newest kept" (Some 3) (Cache.find c "c");
  check Alcotest.int "length" 2 (Cache.length c)

let test_cache_hit_refreshes () =
  let c = Cache.create ~capacity:2 in
  ignore (Cache.add c "a" 1);
  ignore (Cache.add c "b" 2);
  (* touch a, making b the least recently used *)
  ignore (Cache.find c "a");
  ignore (Cache.add c "c" 3);
  check (Alcotest.option Alcotest.int) "touched entry survives" (Some 1)
    (Cache.find c "a");
  check (Alcotest.option Alcotest.int) "untouched entry evicted" None
    (Cache.find c "b")

let test_cache_update_in_place () =
  let c = Cache.create ~capacity:2 in
  ignore (Cache.add c "a" 1);
  check Alcotest.int "re-add is not an eviction" 0 (Cache.add c "a" 9);
  check (Alcotest.option Alcotest.int) "value replaced" (Some 9) (Cache.find c "a");
  check Alcotest.int "length unchanged" 1 (Cache.length c)

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 in
  check Alcotest.int "add is a no-op" 0 (Cache.add c "a" 1);
  check (Alcotest.option Alcotest.int) "find always misses" None (Cache.find c "a");
  check Alcotest.int "empty" 0 (Cache.length c)

let test_cache_ttl_expires () =
  let c = Cache.create ~capacity:4 in
  ignore (Cache.add c ~ttl_ns:1_000_000L "fast" 1);
  ignore (Cache.add c "forever" 2);
  check (Alcotest.option Alcotest.int) "live before the deadline" (Some 1)
    (Cache.find c "fast");
  Unix.sleepf 0.005;
  check (Alcotest.option Alcotest.int) "expired entry is a miss" None
    (Cache.find c "fast");
  check Alcotest.int "and is dropped on the way out" 1 (Cache.length c);
  check (Alcotest.option Alcotest.int) "no TTL means no expiry" (Some 2)
    (Cache.find c "forever");
  (* re-adding refreshes the clock *)
  ignore (Cache.add c ~ttl_ns:60_000_000_000L "fast" 3);
  check (Alcotest.option Alcotest.int) "refreshed entry lives" (Some 3)
    (Cache.find c "fast")

let test_cache_invalidation () =
  let c = Cache.create ~capacity:8 in
  ignore (Cache.add c "stream:a:shape" 1);
  ignore (Cache.add c "stream:a:history" 2);
  ignore (Cache.add c "stream:b:shape" 3);
  ignore (Cache.add c "other" 4);
  check Alcotest.bool "remove an existing key" true (Cache.remove c "other");
  check Alcotest.bool "absent key reports false" false (Cache.remove c "other");
  check Alcotest.int "prefix removal takes the stream's entries" 2
    (Cache.remove_where c (String.starts_with ~prefix:"stream:a:"));
  check (Alcotest.option Alcotest.int) "sibling stream untouched" (Some 3)
    (Cache.find c "stream:b:shape");
  check Alcotest.int "clear drops the rest" 1 (Cache.clear c);
  check Alcotest.int "empty" 0 (Cache.length c)

let test_cache_concurrent_same_key () =
  (* hammer one key (plus per-domain keys to force evictions) from
     several domains: no crash, no corruption, and the shared key is
     either absent or holds a value some domain actually put there *)
  let c = Cache.create ~capacity:4 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 500 do
              ignore (Cache.add c "hot" (d * 1000 + i));
              ignore (Cache.find c "hot");
              ignore (Cache.add c (Printf.sprintf "cold-%d-%d" d i) i);
              ignore (Cache.find c (Printf.sprintf "cold-%d-%d" d (i - 1)))
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.bool "length bounded by capacity" true (Cache.length c <= 4);
  match Cache.find c "hot" with
  | None -> ()
  | Some v ->
      check Alcotest.bool "hot value is one that was put" true
        (v >= 1 && v <= 3500 && v mod 1000 <= 500 && v mod 1000 >= 1)

(* ----- handler plumbing ----- *)

let request ?(meth = "POST") ?(query = []) ?(body = "") path =
  {
    Http.meth;
    path;
    query;
    version = `Http_1_1;
    headers = [];
    body;
  }

let server () = Server.create Server.default_config

let body_fields resp =
  match Json.parse_result resp.Http.resp_body with
  | Ok (Dv.Record (_, fields)) -> fields
  | Ok _ -> Alcotest.fail "response body is not a JSON object"
  | Error m -> Alcotest.failf "response body is not JSON: %s" m

let field_string name resp =
  match List.assoc_opt name (body_fields resp) with
  | Some (Dv.String s) -> s
  | _ -> Alcotest.failf "missing string field %S" name

let field_int name resp =
  match List.assoc_opt name (body_fields resp) with
  | Some (Dv.Int n) -> n
  | _ -> Alcotest.failf "missing int field %S" name

let field_bool name resp =
  match List.assoc_opt name (body_fields resp) with
  | Some (Dv.Bool b) -> b
  | _ -> Alcotest.failf "missing bool field %S" name

let cache_header resp = List.assoc_opt "x-fsdata-cache" resp.Http.resp_headers

let corpus = "{\"name\": \"ada\", \"age\": 36}\n{\"name\": \"grace\"}\n"

(* ----- routing ----- *)

let test_healthz () =
  let resp = Server.handle (server ()) (request ~meth:"GET" "/healthz") in
  check Alcotest.int "200" 200 resp.Http.status;
  check Alcotest.string "status field" "ok" (field_string "status" resp)

let test_not_found () =
  let resp = Server.handle (server ()) (request ~meth:"GET" "/nope") in
  check Alcotest.int "404" 404 resp.Http.status

let test_method_not_allowed () =
  let t = server () in
  let resp = Server.handle t (request ~meth:"GET" "/infer") in
  check Alcotest.int "GET /infer is 405" 405 resp.Http.status;
  check (Alcotest.option Alcotest.string) "allow header" (Some "POST")
    (List.assoc_opt "allow" resp.Http.resp_headers);
  let resp = Server.handle t (request ~meth:"POST" "/metrics") in
  check Alcotest.int "POST /metrics is 405" 405 resp.Http.status

let test_metrics_endpoint () =
  let resp = Server.handle (server ()) (request ~meth:"GET" "/metrics") in
  check Alcotest.int "200" 200 resp.Http.status;
  (* the flat JSON object parses and carries the serve.* key family *)
  match Json.parse_result resp.Http.resp_body with
  | Ok (Dv.Record (_, fields)) ->
      check Alcotest.bool "serve.* keys present" true
        (List.mem_assoc "serve.requests.metrics" fields)
  | _ -> Alcotest.fail "metrics body is not a JSON object"

(* ----- /infer ----- *)

let test_infer_matches_cli_path () =
  let resp = Server.handle (server ()) (request ~body:corpus "/infer") in
  check Alcotest.int "200" 200 resp.Http.status;
  let expected =
    match Par_infer.of_json ~jobs:1 corpus with
    | Ok s -> Fmt.str "%a" Shape.pp s
    | Error m -> Alcotest.fail m
  in
  check Alcotest.string "shape identical to the CLI inference path" expected
    (field_string "shape" resp);
  check Alcotest.int "total" 2 (field_int "total" resp);
  check Alcotest.int "quarantined" 0 (field_int "quarantined" resp)

let test_infer_cache_roundtrip () =
  let t = server () in
  let first = Server.handle t (request ~body:corpus "/infer") in
  let second = Server.handle t (request ~body:corpus "/infer") in
  check (Alcotest.option Alcotest.string) "first is a miss" (Some "miss")
    (cache_header first);
  check (Alcotest.option Alcotest.string) "second is a hit" (Some "hit")
    (cache_header second);
  check Alcotest.string "bodies byte-identical" first.Http.resp_body
    second.Http.resp_body;
  (* a different corpus, format or budget is a different key *)
  let other = Server.handle t (request ~body:"{\"x\": 1}" "/infer") in
  check (Alcotest.option Alcotest.string) "different body misses" (Some "miss")
    (cache_header other);
  let budgeted =
    Server.handle t
      (request ~query:[ ("max-errors", "1") ] ~body:corpus "/infer")
  in
  check (Alcotest.option Alcotest.string) "different budget misses"
    (Some "miss") (cache_header budgeted)

let test_infer_cache_disabled () =
  let t =
    Server.create { Server.default_config with Server.cache_entries = 0 }
  in
  let first = Server.handle t (request ~body:corpus "/infer") in
  let second = Server.handle t (request ~body:corpus "/infer") in
  check (Alcotest.option Alcotest.string) "always a miss" (Some "miss")
    (cache_header second);
  check Alcotest.string "bodies still identical" first.Http.resp_body
    second.Http.resp_body

let test_infer_quarantine () =
  let faulty = "{\"name\": \"ada\"}\n{\"name\": }\n{\"name\": \"bob\"}\n" in
  (* strict budget: the fault is fatal *)
  let strict = Server.handle (server ()) (request ~body:faulty "/infer") in
  check Alcotest.int "422 without a budget" 422 strict.Http.status;
  (* with a budget the fault is quarantined and reported *)
  let resp =
    Server.handle (server ())
      (request ~query:[ ("max-errors", "1") ] ~body:faulty "/infer")
  in
  check Alcotest.int "200 under budget" 200 resp.Http.status;
  check Alcotest.int "total" 3 (field_int "total" resp);
  check Alcotest.int "one quarantined" 1 (field_int "quarantined" resp);
  match List.assoc_opt "samples" (body_fields resp) with
  | Some (Dv.List [ Dv.Record (_, entry) ]) ->
      check Alcotest.bool "entry has index" true (List.mem_assoc "index" entry);
      check Alcotest.bool "entry has message" true
        (List.mem_assoc "message" entry)
  | _ -> Alcotest.fail "expected one quarantine entry"

let test_infer_formats () =
  let xml = Server.handle (server ())
      (request ~query:[ ("format", "xml") ]
         ~body:"<root id=\"1\"><item>a</item></root>" "/infer")
  in
  check Alcotest.int "xml 200" 200 xml.Http.status;
  let csv =
    Server.handle (server ())
      (request ~query:[ ("format", "csv") ] ~body:"A,B\n1,x\n2,y\n" "/infer")
  in
  check Alcotest.int "csv 200" 200 csv.Http.status;
  let bad =
    Server.handle (server ())
      (request ~query:[ ("format", "yaml") ] ~body:"x" "/infer")
  in
  check Alcotest.int "unknown format 400" 400 bad.Http.status

let test_infer_bad_params () =
  let t = server () in
  let bad_jobs =
    Server.handle t (request ~query:[ ("jobs", "many") ] ~body:corpus "/infer")
  in
  check Alcotest.int "bad jobs 400" 400 bad_jobs.Http.status;
  let bad_budget =
    Server.handle t
      (request ~query:[ ("max-errors", "lots") ] ~body:corpus "/infer")
  in
  check Alcotest.int "bad budget 400" 400 bad_budget.Http.status;
  let bad_body = Server.handle t (request ~body:"{\"x\": " "/infer") in
  check Alcotest.int "malformed corpus 422" 422 bad_body.Http.status

(* ----- /check and /explain ----- *)

let shape_expr = "{name: string, age: nullable float}"

let test_check () =
  let t = server () in
  let ok =
    Server.handle t
      (request ~query:[ ("shape", shape_expr) ]
         ~body:"{\"name\": \"ada\", \"age\": 36}" "/check")
  in
  check Alcotest.int "200" 200 ok.Http.status;
  check Alcotest.bool "has_shape" true (field_bool "has_shape" ok);
  check Alcotest.bool "preferred" true (field_bool "preferred" ok);
  let mismatch =
    Server.handle t
      (request ~query:[ ("shape", shape_expr) ] ~body:"{\"name\": 42}" "/check")
  in
  check Alcotest.int "still 200" 200 mismatch.Http.status;
  check Alcotest.bool "not preferred" false (field_bool "preferred" mismatch)

let test_check_errors () =
  let t = server () in
  check Alcotest.int "missing shape 400" 400
    (Server.handle t (request ~body:"{}" "/check")).Http.status;
  check Alcotest.int "bad shape 400" 400
    (Server.handle t (request ~query:[ ("shape", "{oops") ] ~body:"{}" "/check"))
      .Http.status;
  check Alcotest.int "bad document 422" 422
    (Server.handle t
       (request ~query:[ ("shape", shape_expr) ] ~body:"{\"x\": " "/check"))
      .Http.status

let test_explain () =
  let resp =
    Server.handle (server ())
      (request ~query:[ ("shape", shape_expr) ] ~body:"{\"name\": 42}" "/explain")
  in
  check Alcotest.int "200" 200 resp.Http.status;
  match List.assoc_opt "mismatches" (body_fields resp) with
  | Some (Dv.List (Dv.Record (_, m) :: _)) ->
      check Alcotest.bool "mismatch has a path" true (List.mem_assoc "at" m);
      check Alcotest.bool "mismatch has a reason" true
        (List.mem_assoc "reason" m)
  | _ -> Alcotest.fail "expected at least one mismatch"

let test_explain_clean () =
  let resp =
    Server.handle (server ())
      (request ~query:[ ("shape", shape_expr) ]
         ~body:"{\"name\": \"ada\", \"age\": 36}" "/explain")
  in
  match List.assoc_opt "mismatches" (body_fields resp) with
  | Some (Dv.List []) -> ()
  | _ -> Alcotest.fail "expected no mismatches for a conforming document"

(* ----- robustness: drain, deadlines and streamed bodies ----- *)

let test_healthz_draining () =
  let flag = Atomic.make false in
  let t = Server.create ~draining:flag Server.default_config in
  check Alcotest.int "healthy while live" 200
    (Server.handle t (request ~meth:"GET" "/healthz")).Http.status;
  Atomic.set flag true;
  let resp = Server.handle t (request ~meth:"GET" "/healthz") in
  check Alcotest.int "503 while draining" 503 resp.Http.status;
  check Alcotest.string "reports draining" "draining" (field_string "status" resp);
  Atomic.set (Server.draining t) false;
  check Alcotest.int "recovers when the flag clears" 200
    (Server.handle t (request ~meth:"GET" "/healthz")).Http.status

let test_handle_cancelled_504 () =
  let resp =
    Server.handle ~cancel:(fun () -> true) (server ())
      (request ~body:corpus "/infer")
  in
  check Alcotest.int "a tripped cancel token is 504" 504 resp.Http.status;
  check Alcotest.bool "names the deadline" true
    (Astring.String.is_infix ~affix:"deadline" (field_string "error" resp))

(* Build a streamed request the way the server does: parse off a string
   reader with a low stream threshold, leaving the body on the wire. *)
let streamed_request ?(target = "/infer") body =
  let raw =
    Printf.sprintf "POST %s HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s" target
      (String.length body) body
  in
  match Http.read_request_stream ~stream_over:4 (Http.reader_of_string raw) with
  | Ok (Some (req, Some rest)) -> (req, rest)
  | _ -> Alcotest.fail "expected a streamed request"

let test_streamed_infer_bypasses_cache () =
  let t = server () in
  let buffered = Server.handle t (request ~body:corpus "/infer") in
  let req, rest = streamed_request corpus in
  let streamed = Server.handle ~rest t req in
  check Alcotest.int "200" 200 streamed.Http.status;
  check (Alcotest.option Alcotest.string) "streamed JSON bypasses the cache"
    (Some "bypass") (cache_header streamed);
  check Alcotest.string "body identical to the buffered path"
    buffered.Http.resp_body streamed.Http.resp_body;
  (* a second streamed pass is another bypass, never a hit *)
  let req2, rest2 = streamed_request corpus in
  check (Alcotest.option Alcotest.string) "still a bypass" (Some "bypass")
    (cache_header (Server.handle ~rest:rest2 t req2))

let test_streamed_csv_drained_and_cached () =
  let t = server () in
  let body = "A,B\n1,x\n2,y\n" in
  let req, rest = streamed_request ~target:"/infer?format=csv" body in
  let first = Server.handle ~rest t req in
  check Alcotest.int "200" 200 first.Http.status;
  check (Alcotest.option Alcotest.string)
    "non-JSON formats drain the stream and stay cacheable" (Some "miss")
    (cache_header first);
  let second =
    Server.handle t (request ~query:[ ("format", "csv") ] ~body "/infer")
  in
  check (Alcotest.option Alcotest.string) "the drained body primed the cache"
    (Some "hit") (cache_header second);
  check Alcotest.string "bodies identical" first.Http.resp_body
    second.Http.resp_body

let test_streamed_other_endpoint_drained () =
  let doc = "{\"name\": \"ada\", \"age\": 36}" in
  let req, rest =
    streamed_request ~target:"/check?shape=%7Bname:%20string,%20age:%20nullable%20float%7D" doc
  in
  let resp = Server.handle ~rest (server ()) req in
  check Alcotest.int "/check drains a streamed body" 200 resp.Http.status;
  check Alcotest.bool "and judges the document" true (field_bool "has_shape" resp)

(* ----- the live shape registry endpoints ----- *)

(* ----- /query and /streams/:name/query ----- *)

let query_corpus =
  "{\"name\": \"ada\", \"age\": 36}\n{\"name\": \"bob\", \"age\": 25}\n\
   {\"name\": \"grace\"}\n"

let test_query_endpoint () =
  let t = server () in
  let run ?(query = []) ?(body = query_corpus) q =
    Server.handle t (request ~query:(("q", q) :: query) ~body "/query")
  in
  let r = run "where .age >= 30 | select .name" in
  check Alcotest.int "200" 200 r.Http.status;
  check Alcotest.string "reference engine by default" "eval"
    (field_string "engine" r);
  check Alcotest.int "scanned all documents" 3 (field_int "scanned" r);
  check Alcotest.int "one row matched" 1 (field_int "matched" r);
  let rf = run ~query:[ ("compiled", "1") ] "where .age >= 30 | select .name" in
  check Alcotest.string "compiled engine on request" "eval_fast"
    (field_string "engine" rf);
  (* same rows either way: everything but the engine label agrees *)
  check Alcotest.bool "rows agree across engines" true
    (List.assoc "rows" (body_fields r) = List.assoc "rows" (body_fields rf));
  (* repeat is a response-cache hit with an identical body *)
  let again = run "where .age >= 30 | select .name" in
  check (Alcotest.option Alcotest.string) "repeat hits" (Some "hit")
    (cache_header again);
  check Alcotest.string "hit body identical" r.Http.resp_body
    again.Http.resp_body;
  (* parameter validation *)
  check Alcotest.int "missing q is 400" 400
    (Server.handle t (request ~body:query_corpus "/query")).Http.status;
  check Alcotest.int "unparseable q is 400" 400 (run "where ==").Http.status;
  check Alcotest.int "bad compiled is 400" 400
    (run ~query:[ ("compiled", "yes") ] "count").Http.status;
  check Alcotest.int "bad limit is 400" 400
    (run ~query:[ ("limit", "0") ] "count").Http.status;
  check Alcotest.int "GET is 405" 405
    (Server.handle t (request ~meth:"GET" ~query:[ ("q", "count") ] "/query"))
      .Http.status;
  check Alcotest.int "malformed body without shape= is 422" 422
    (run ~body:"{\"x\": " "count").Http.status

let test_query_ill_typed () =
  let t = server () in
  let run ?(query = []) q =
    Server.handle t (request ~query:(("q", q) :: query) ~body:query_corpus "/query")
  in
  let r = run "where .zip == 1" in
  check Alcotest.int "ill-typed is 400" 400 r.Http.status;
  check Alcotest.string "offending path" ".zip" (field_string "at" r);
  check Alcotest.bool "expected names the missing field" true
    (Astring.String.is_infix ~affix:"field 'zip'" (field_string "expected" r));
  check Alcotest.bool "found carries σ" true
    (Astring.String.is_infix ~affix:"name" (field_string "found" r));
  (* with an explicit σ the corpus is never parsed: a body that would
     422 under inference still yields the typing error *)
  let r =
    Server.handle t
      (request
         ~query:[ ("q", "where .zip == 1"); ("shape", "{name: string}") ]
         ~body:"{\"x\": " "/query")
  in
  check Alcotest.int "rejected before the corpus is read" 400 r.Http.status;
  check Alcotest.string "same diagnostic" ".zip" (field_string "at" r)

let test_stream_query_recheck_on_growth () =
  let t = server () in
  let push body = Server.handle t (request ~body "/streams/people/push") in
  let run ?(query = []) q =
    Server.handle t
      (request ~query:(("q", q) :: query) ~body:query_corpus
         "/streams/people/query")
  in
  check Alcotest.int "unknown stream is 404" 404
    (Server.handle t
       (request ~query:[ ("q", "count") ] ~body:query_corpus
          "/streams/nope/query"))
      .Http.status;
  let _ = push "{\"name\": \"ada\"}" in
  (* v1 knows only .name: a query over .age is ill-typed *)
  let r = run "where .age >= 30 | count" in
  check Alcotest.int "rejected against v1" 400 r.Http.status;
  check Alcotest.string "offending path" ".age" (field_string "at" r);
  let ok = run ~query:[ ("compiled", "1") ] "select .name" in
  check Alcotest.int "well-typed against v1" 200 ok.Http.status;
  check Alcotest.int "response carries the version" 1 (field_int "version" ok);
  (* growth: v2 gains .age, and the same query now typechecks — the
     version-keyed plan cache cannot serve the stale rejection *)
  let _ = push "{\"name\": \"alan\", \"age\": 36}" in
  let r = run "where .age >= 30 | count" in
  check Alcotest.int "accepted against v2" 200 r.Http.status;
  check Alcotest.int "new version" 2 (field_int "version" r);
  check Alcotest.int "rows counted" 1 (field_int "matched" r);
  (* response cache: repeat hits, push invalidates *)
  let a = run "select .name" in
  check (Alcotest.option Alcotest.string) "fresh query misses" (Some "miss")
    (cache_header a);
  let b = run "select .name" in
  check (Alcotest.option Alcotest.string) "repeat hits" (Some "hit")
    (cache_header b);
  check Alcotest.string "hit body identical" a.Http.resp_body b.Http.resp_body;
  let _ = push "{\"name\": \"x\"}" in
  let c = run "select .name" in
  check (Alcotest.option Alcotest.string) "push evicts the stream's entries"
    (Some "miss") (cache_header c)

let test_stream_push_version_semantics () =
  let t = server () in
  let push body = Server.handle t (request ~body "/streams/people/push") in
  let r1 = push "{\"name\": \"ada\"}" in
  check Alcotest.int "first push 200" 200 r1.Http.status;
  check Alcotest.int "fresh stream bumps to 1" 1 (field_int "version" r1);
  check (Alcotest.option Alcotest.string) "push bypasses the cache"
    (Some "bypass") (cache_header r1);
  let r2 = push "{\"name\": \"grace\"}" in
  check Alcotest.int "same shape keeps the version" 1 (field_int "version" r2);
  check Alcotest.int "but tallies the documents" 2 (field_int "pushes" r2);
  let r3 = push "{\"name\": \"alan\", \"age\": 36}" in
  check Alcotest.int "strict growth bumps" 2 (field_int "version" r3);
  check Alcotest.bool "merged shape keeps both fields" true
    (Astring.String.is_infix ~affix:"age" (field_string "shape" r3));
  (* a batch body counts every clean document *)
  let r4 = push "{\"name\": \"x\"}\n{\"name\": \"y\"}\n" in
  check Alcotest.int "batch documents tallied" 5 (field_int "pushes" r4);
  let bad = Server.handle t (request ~meth:"GET" "/streams/people/push") in
  check Alcotest.int "push is POST-only" 405 bad.Http.status

let test_stream_shape_cached_until_push () =
  let t = server () in
  let get () =
    Server.handle t (request ~meth:"GET" "/streams/people/shape")
  in
  check Alcotest.int "unknown stream is 404" 404 (get ()).Http.status;
  let _ = Server.handle t (request ~body:"{\"name\": \"ada\"}" "/streams/people/push") in
  let r1 = get () in
  check Alcotest.int "200 after a push" 200 r1.Http.status;
  check (Alcotest.option Alcotest.string) "first read misses" (Some "miss")
    (cache_header r1);
  let r2 = get () in
  check (Alcotest.option Alcotest.string) "second read hits" (Some "hit")
    (cache_header r2);
  check Alcotest.string "bodies identical" r1.Http.resp_body r2.Http.resp_body;
  (* an applied push supersedes the cached rendering *)
  let _ =
    Server.handle t
      (request ~body:"{\"name\": \"alan\", \"age\": 36}" "/streams/people/push")
  in
  let r3 = get () in
  check (Alcotest.option Alcotest.string) "push invalidated the entry"
    (Some "miss") (cache_header r3);
  check Alcotest.int "and the version moved" 2 (field_int "version" r3);
  (* the JSON Schema export of the same shape *)
  let rs =
    Server.handle t
      (request ~meth:"GET" ~query:[ ("format", "schema") ] "/streams/people/shape")
  in
  check Alcotest.int "schema format 200" 200 rs.Http.status;
  check Alcotest.bool "schema is a JSON Schema document" true
    (Astring.String.is_infix ~affix:"$schema" rs.Http.resp_body);
  let rb =
    Server.handle t
      (request ~meth:"GET" ~query:[ ("format", "yaml") ] "/streams/people/shape")
  in
  check Alcotest.int "unknown format 400" 400 rb.Http.status

let test_stream_history_and_diff () =
  let t = server () in
  let push body = Server.handle t (request ~body "/streams/s/push") in
  let _ = push "{\"a\": 1}" in
  (* a heterogeneous field: the growth is not backward-compatible, so
     the diff must render Explain mismatches (compatible growth, like a
     new nullable field, legitimately renders none) *)
  let _ = push "{\"a\": \"x\"}" in
  let hist = Server.handle t (request ~meth:"GET" "/streams/s/history") in
  check Alcotest.int "history 200" 200 hist.Http.status;
  (match List.assoc_opt "history" (body_fields hist) with
  | Some (Dv.List entries) ->
      check Alcotest.int "one entry per bump" 2 (List.length entries)
  | _ -> Alcotest.fail "missing history list");
  let diff = Server.handle t (request ~meth:"GET" "/streams/s/diff") in
  check Alcotest.int "default diff is (current-1, current)" 200 diff.Http.status;
  check Alcotest.int "from" 1 (field_int "from" diff);
  check Alcotest.int "to" 2 (field_int "to" diff);
  check Alcotest.bool "the shape grew" true (field_bool "grew" diff);
  (match List.assoc_opt "changes" (body_fields diff) with
  | Some (Dv.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "growth must render at least one Explain mismatch");
  let full =
    Server.handle t
      (request ~meth:"GET"
         ~query:[ ("from", "0"); ("to", "2") ]
         "/streams/s/diff")
  in
  check Alcotest.int "explicit versions" 200 full.Http.status;
  check Alcotest.string "version 0 is bottom" "\xe2\x8a\xa5"
    (field_string "from_shape" full);
  let missing =
    Server.handle t (request ~meth:"GET" ~query:[ ("to", "9") ] "/streams/s/diff")
  in
  check Alcotest.int "unknown version is 404" 404 missing.Http.status;
  let bad =
    Server.handle t
      (request ~meth:"GET" ~query:[ ("from", "x") ] "/streams/s/diff")
  in
  check Alcotest.int "unparseable version is 400" 400 bad.Http.status

let test_cache_invalidate_endpoint () =
  let t = server () in
  let infer = request ~body:corpus "/infer" in
  let _ = Server.handle t infer in
  check (Alcotest.option Alcotest.string) "cache primed" (Some "hit")
    (cache_header (Server.handle t infer));
  let inv = Server.handle t (request "/cache/invalidate") in
  check Alcotest.int "invalidate 200" 200 inv.Http.status;
  check Alcotest.bool "something was dropped" true
    (field_int "invalidated" inv >= 1);
  check (Alcotest.option Alcotest.string) "cache cold again" (Some "miss")
    (cache_header (Server.handle t infer));
  (* stream-scoped invalidation leaves other entries alone *)
  let _ = Server.handle t infer in
  let _ = Server.handle t (request ~body:"{\"a\": 1}" "/streams/s/push") in
  let _ = Server.handle t (request ~meth:"GET" "/streams/s/shape") in
  let inv =
    Server.handle t (request ~query:[ ("stream", "s") ] "/cache/invalidate")
  in
  check Alcotest.int "one stream entry dropped" 1 (field_int "invalidated" inv);
  check (Alcotest.option Alcotest.string) "/infer entry survives" (Some "hit")
    (cache_header (Server.handle t infer));
  let bad = Server.handle t (request ~meth:"GET" "/cache/invalidate") in
  check Alcotest.int "invalidate is POST-only" 405 bad.Http.status

(* ----- concurrency: shapes stay byte-identical under parallel load ----- *)

let test_concurrent_infer_identical () =
  let t = server () in
  let reference = (Server.handle t (request ~body:corpus "/infer")).Http.resp_body in
  let corpora =
    [ corpus; "{\"x\": 1}\n{\"x\": 2.5}\n"; "{\"v\": [1, \"two\"]}\n" ]
  in
  let references =
    List.map
      (fun body -> (Server.handle t (request ~body "/infer")).Http.resp_body)
      corpora
  in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            List.init 25 (fun i ->
                let body = List.nth corpora ((d + i) mod 3) in
                (Server.handle t (request ~body "/infer")).Http.resp_body)))
  in
  let results = List.concat_map Domain.join domains in
  check Alcotest.int "all requests answered" 100 (List.length results);
  List.iteri
    (fun i body ->
      let expected =
        List.nth references ((i / 25 + i mod 25) mod 3)
      in
      check Alcotest.string
        (Printf.sprintf "concurrent response %d byte-identical" i)
        expected body)
    results;
  ignore reference

let suite =
  [
    tc "cache: LRU eviction order" `Quick test_cache_lru;
    tc "cache: hits refresh recency" `Quick test_cache_hit_refreshes;
    tc "cache: update in place" `Quick test_cache_update_in_place;
    tc "cache: capacity 0 disables" `Quick test_cache_disabled;
    tc "cache: TTL expiry is a miss" `Quick test_cache_ttl_expires;
    tc "cache: remove, remove_where, clear" `Quick test_cache_invalidation;
    tc "cache: concurrent put/get of one key" `Quick
      test_cache_concurrent_same_key;
    tc "healthz" `Quick test_healthz;
    tc "unknown endpoint is 404" `Quick test_not_found;
    tc "wrong method is 405" `Quick test_method_not_allowed;
    tc "metrics endpoint" `Quick test_metrics_endpoint;
    tc "infer matches the CLI path" `Quick test_infer_matches_cli_path;
    tc "infer cache round-trip" `Quick test_infer_cache_roundtrip;
    tc "infer with the cache disabled" `Quick test_infer_cache_disabled;
    tc "infer quarantine under budget" `Quick test_infer_quarantine;
    tc "infer xml and csv formats" `Quick test_infer_formats;
    tc "infer parameter validation" `Quick test_infer_bad_params;
    tc "check" `Quick test_check;
    tc "check parameter validation" `Quick test_check_errors;
    tc "explain mismatches" `Quick test_explain;
    tc "explain on a conforming document" `Quick test_explain_clean;
    tc "healthz reports draining" `Quick test_healthz_draining;
    tc "cancelled inference is 504" `Quick test_handle_cancelled_504;
    tc "streamed infer bypasses the cache" `Quick
      test_streamed_infer_bypasses_cache;
    tc "streamed csv drains and caches" `Quick
      test_streamed_csv_drained_and_cached;
    tc "streamed body drained for /check" `Quick
      test_streamed_other_endpoint_drained;
    tc "query: typed pushdown endpoint" `Quick test_query_endpoint;
    tc "query: ill-typed is 400 before the corpus" `Quick test_query_ill_typed;
    tc "stream query: re-checked on version bump" `Quick
      test_stream_query_recheck_on_growth;
    tc "stream push: version bumps only on growth" `Quick
      test_stream_push_version_semantics;
    tc "stream shape: cached until the next push" `Quick
      test_stream_shape_cached_until_push;
    tc "stream history and diff" `Quick test_stream_history_and_diff;
    tc "cache invalidate endpoint" `Quick test_cache_invalidate_endpoint;
    tc "concurrent infer responses byte-identical" `Quick
      test_concurrent_infer_identical;
  ]
