(* Tests for the schema-evolution service (lib/evolve) and its serve
   wiring: the bounded waiter table, /migrate status mapping, long-poll
   watch semantics, durable webhook registration (WAL round-trip and
   crash recovery), the at-least-once delivery worker driven against an
   in-process HTTP sink (including injected socket resets), Accept
   negotiation on /infer, and the QCheck pin that migration composes
   over registry history. The live-server side is test/cli/evolve.t. *)

module Registry = Fsdata_registry.Registry
module Fault_fs = Fsdata_registry.Fault_fs
module Notify = Fsdata_evolve.Notify
module Client = Fsdata_evolve.Client
module Service = Fsdata_evolve.Service
module Delivery = Fsdata_evolve.Delivery
module Server = Fsdata_serve.Server
module Http = Fsdata_serve.Http
module Fault_net = Fsdata_serve.Fault_net
module Shape = Fsdata_core.Shape
module Shape_parser = Fsdata_core.Shape_parser
module Infer = Fsdata_core.Infer
module Provide = Fsdata_provider.Provide
module Migrate = Fsdata_provider.Migrate
module TC = Fsdata_foo.Typecheck
module Syntax = Fsdata_foo.Syntax
module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json

let check = Alcotest.check
let tc = Alcotest.test_case
let sh = Shape_parser.parse

let temp_dir () =
  let path = Filename.temp_file "fsdata-evolve" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let find_exn t name =
  match Registry.find t name with
  | Some st -> st
  | None -> Alcotest.failf "stream %S not found" name

(* ----- the waiter table ----- *)

let test_notify_immediate () =
  let n = Notify.create ~capacity:4 in
  match Notify.wait n ~key:"s" ~seconds:5. ~poll:(fun () -> Some 42) with
  | `Ready v -> check Alcotest.int "poll satisfied before parking" 42 v
  | `Timeout | `Capacity -> Alcotest.fail "expected `Ready"

let test_notify_timeout () =
  let n = Notify.create ~capacity:4 in
  let t0 = Unix.gettimeofday () in
  (match Notify.wait n ~key:"s" ~seconds:0.05 ~poll:(fun () -> None) with
  | `Timeout -> ()
  | `Ready _ | `Capacity -> Alcotest.fail "expected `Timeout");
  check Alcotest.bool "waited at least the budget" true
    (Unix.gettimeofday () -. t0 >= 0.045);
  check Alcotest.int "waiter deregistered" 0 (Notify.waiting n)

let test_notify_wakes_matching_key () =
  let n = Notify.create ~capacity:4 in
  let hit = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Notify.wait n ~key:"s" ~seconds:5. ~poll:(fun () ->
            if Atomic.get hit then Some () else None))
  in
  (* wait until the waiter is parked, then flip the condition and wake *)
  let rec park deadline =
    if Notify.waiting n = 0 && Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.002;
      park deadline
    end
  in
  park (Unix.gettimeofday () +. 2.);
  Atomic.set hit true;
  Notify.notify n "other-stream";
  (* a non-matching key must not wake the waiter; the matching one must *)
  Notify.notify n "s";
  (match Domain.join d with
  | `Ready () -> ()
  | `Timeout -> Alcotest.fail "waiter timed out despite notify"
  | `Capacity -> Alcotest.fail "unexpected capacity");
  check Alcotest.int "waiter deregistered" 0 (Notify.waiting n)

let test_notify_capacity () =
  let n = Notify.create ~capacity:1 in
  let d =
    Domain.spawn (fun () ->
        Notify.wait n ~key:"a" ~seconds:1. ~poll:(fun () -> None))
  in
  let rec park deadline =
    if Notify.waiting n = 0 && Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.002;
      park deadline
    end
  in
  park (Unix.gettimeofday () +. 2.);
  (match Notify.wait n ~key:"b" ~seconds:0.2 ~poll:(fun () -> None) with
  | `Capacity -> ()
  | `Ready _ -> Alcotest.fail "unexpected ready"
  | `Timeout -> Alcotest.fail "second waiter should have been refused");
  ignore (Domain.join d)

let test_notify_wildcard_waiter () =
  let n = Notify.create ~capacity:1 in
  let w = Notify.waiter n in
  Fun.protect ~finally:(fun () -> Notify.close_waiter w) @@ fun () ->
  check Alcotest.bool "no wake yet" false (Notify.await w ~seconds:0.02);
  Notify.notify n "any-key-at-all";
  check Alcotest.bool "woken by any key" true (Notify.await w ~seconds:1.);
  (* wildcard waiters do not count against the request bound *)
  check Alcotest.int "not a request waiter" 0 (Notify.waiting n)

(* ----- the migration service ----- *)

(* people v1: {name: string}; v2 adds a nullable age *)
let people_registry () =
  let t = Registry.open_ ~dir:None () in
  let _ = Registry.push t ~stream:"people" (sh "{name: string}") in
  let _ = Registry.push t ~stream:"people" (sh "{name: string, age: int}") in
  t

let migrate_exn t ~since ~program =
  match Service.migrate t ~stream:"people" ~since ~program with
  | Ok r -> r
  | Error e -> Alcotest.failf "migrate failed: %a" Service.pp_error e

let test_service_rewrites () =
  let t = people_registry () in
  let r = migrate_exn t ~since:1 ~program:"y.Name" in
  check Alcotest.int "from" 1 r.Service.from_version;
  check Alcotest.int "to" 2 r.Service.to_version;
  check Alcotest.string "rewritten program" "y.Name"
    (Syntax.expr_to_string r.Service.program);
  (* the returned program checks against the current provided type *)
  let p = Provide.provide ~format:`Json r.Service.new_shape in
  match
    TC.synth p.Provide.classes [ ("y", p.Provide.root_ty) ] r.Service.program
  with
  | Ok ty ->
      check Alcotest.string "same type as reported"
        (Syntax.ty_to_string r.Service.ty)
        (Syntax.ty_to_string ty)
  | Error e -> Alcotest.failf "rewritten program ill-typed: %a" TC.pp_error e

let expect_error t ~since ~program expected =
  match Service.migrate t ~stream:"people" ~since ~program with
  | Ok _ -> Alcotest.failf "expected %s, got Ok" expected
  | Error e ->
      let tag =
        match e with
        | Service.No_stream -> "no_stream"
        | Service.Unknown_version _ -> "unknown_version"
        | Service.Evicted _ -> "evicted"
        | Service.Parse_error _ -> "parse_error"
        | Service.Ill_typed _ -> "ill_typed"
        | Service.Unsupported _ -> "unsupported"
        | Service.Internal _ -> "internal"
      in
      check Alcotest.string "error class" expected tag

let test_service_errors () =
  let t = people_registry () in
  (match Service.migrate t ~stream:"ghost" ~since:1 ~program:"y" with
  | Error Service.No_stream -> ()
  | _ -> Alcotest.fail "expected No_stream");
  expect_error t ~since:7 ~program:"y.Name" "unknown_version";
  expect_error t ~since:(-1) ~program:"y.Name" "unknown_version";
  expect_error t ~since:1 ~program:"y.Name = " "parse_error";
  (* Age only exists at version 2 *)
  expect_error t ~since:1 ~program:"y.Age" "ill_typed"

let test_service_evicted () =
  let t = Registry.open_ ~dir:None ~history_limit:1 () in
  let _ = Registry.push t ~stream:"people" (sh "{name: string}") in
  let _ = Registry.push t ~stream:"people" (sh "{name: string, age: int}") in
  match Service.migrate t ~stream:"people" ~since:1 ~program:"y.Name" with
  | Error (Service.Evicted (asked, oldest)) ->
      check Alcotest.int "asked" 1 asked;
      check Alcotest.int "oldest retained" 2 oldest
  | _ -> Alcotest.fail "expected Evicted"

(* ----- /streams/:name/{migrate,watch,hooks} handlers ----- *)

let request ?(meth = "POST") ?(query = []) ?(headers = []) ?(body = "") path =
  { Http.meth; path; query; version = `Http_1_1; headers; body }

let server ?(cfg = Server.default_config) () = Server.create cfg

let body_field name resp =
  match Json.parse_result resp.Http.resp_body with
  | Ok (Dv.Record (_, fields)) -> List.assoc_opt name fields
  | _ -> None

let push_people t =
  let push body =
    Server.handle t (request ~body "/streams/people/push")
  in
  let r1 = push "{\"name\": \"ada\"}" in
  check Alcotest.int "push 1 ok" 200 r1.Http.status;
  let r2 = push "{\"name\": \"grace\", \"age\": 36}" in
  check Alcotest.int "push 2 ok" 200 r2.Http.status

let test_handler_migrate_ok () =
  let t = server () in
  push_people t;
  let resp =
    Server.handle t
      (request ~query:[ ("since", "1") ] ~body:"y.Name"
         "/streams/people/migrate")
  in
  check Alcotest.int "status" 200 resp.Http.status;
  (match body_field "program" resp with
  | Some (Dv.String p) -> check Alcotest.string "program" "y.Name" p
  | _ -> Alcotest.fail "missing program field");
  (match body_field "to_version" resp with
  | Some (Dv.Int v) -> check Alcotest.int "to_version" 2 v
  | _ -> Alcotest.fail "missing to_version");
  (* byte-identical from the cache on repeat *)
  let again =
    Server.handle t
      (request ~query:[ ("since", "1") ] ~body:"y.Name"
         "/streams/people/migrate")
  in
  check Alcotest.string "cached repeat is byte-identical" resp.Http.resp_body
    again.Http.resp_body;
  check
    (Alcotest.option Alcotest.string)
    "second answer is a hit" (Some "hit")
    (List.assoc_opt "x-fsdata-cache" again.Http.resp_headers)

let test_handler_migrate_statuses () =
  let t = server () in
  push_people t;
  let post ?(stream = "people") ?(program = "y.Name") since =
    (Server.handle t
       (request ~query:[ ("since", since) ] ~body:program
          (Printf.sprintf "/streams/%s/migrate" stream)))
      .Http.status
  in
  check Alcotest.int "unknown stream is 404" 404 (post ~stream:"ghost" "1");
  check Alcotest.int "never-reached version is 404" 404 (post "9");
  check Alcotest.int "unparsable program is 400" 400 (post ~program:"y.Name =" "1");
  check Alcotest.int "ill-typed program is 422" 422 (post ~program:"y.Age" "1");
  check Alcotest.int "missing since is 400" 400
    (Server.handle t (request ~body:"y.Name" "/streams/people/migrate"))
      .Http.status;
  check Alcotest.int "empty program is 400" 400 (post ~program:" " "1");
  check Alcotest.int "GET is 405" 405
    (Server.handle t (request ~meth:"GET" "/streams/people/migrate"))
      .Http.status

let test_handler_migrate_evicted_409 () =
  let t =
    server ~cfg:{ Server.default_config with Server.history_limit = 1 } ()
  in
  push_people t;
  let resp =
    Server.handle t
      (request ~query:[ ("since", "1") ] ~body:"y.Name"
         "/streams/people/migrate")
  in
  check Alcotest.int "evicted version is 409" 409 resp.Http.status;
  match body_field "oldest_retained" resp with
  | Some (Dv.Int v) -> check Alcotest.int "oldest retained reported" 2 v
  | _ -> Alcotest.fail "missing oldest_retained field"

let test_handler_watch_immediate_and_timeout () =
  let t = server () in
  push_people t;
  (* since behind the current version answers immediately *)
  let resp =
    Server.handle t
      (request ~meth:"GET" ~query:[ ("since", "1") ] "/streams/people/watch")
  in
  check Alcotest.int "past since answers now" 200 resp.Http.status;
  (match body_field "version" resp with
  | Some (Dv.Int v) -> check Alcotest.int "current version" 2 v
  | _ -> Alcotest.fail "missing version");
  (* at the current version the poll parks and times out with 204 *)
  let resp =
    Server.handle t
      (request ~meth:"GET"
         ~query:[ ("timeout-ms", "40") ]
         "/streams/people/watch")
  in
  check Alcotest.int "no bump in budget is 204" 204 resp.Http.status;
  check Alcotest.int "unknown stream is 404" 404
    (Server.handle t (request ~meth:"GET" "/streams/ghost/watch")).Http.status;
  check Alcotest.int "bad since is 400" 400
    (Server.handle t
       (request ~meth:"GET" ~query:[ ("since", "x") ] "/streams/people/watch"))
      .Http.status

let test_handler_watch_sees_push () =
  let t = server () in
  push_people t;
  let pusher =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Server.handle t
          (request ~body:"{\"name\": \"x\", \"tags\": [\"a\"]}"
             "/streams/people/push"))
  in
  let resp =
    Server.handle t
      (request ~meth:"GET"
         ~query:[ ("timeout-ms", "5000") ]
         "/streams/people/watch")
  in
  let push_resp = Domain.join pusher in
  check Alcotest.int "push ok" 200 push_resp.Http.status;
  check Alcotest.int "watch woken by the bump" 200 resp.Http.status;
  match body_field "version" resp with
  | Some (Dv.Int v) -> check Alcotest.int "the bumped version" 3 v
  | _ -> Alcotest.fail "missing version"

let test_handler_watch_shed () =
  let t =
    server ~cfg:{ Server.default_config with Server.max_waiters = 1 } ()
  in
  push_people t;
  let parked =
    Domain.spawn (fun () ->
        Server.handle t
          (request ~meth:"GET"
             ~query:[ ("timeout-ms", "600") ]
             "/streams/people/watch"))
  in
  Unix.sleepf 0.15;
  let resp =
    Server.handle t
      (request ~meth:"GET"
         ~query:[ ("timeout-ms", "100") ]
         "/streams/people/watch")
  in
  check Alcotest.int "watcher beyond the bound is shed" 503 resp.Http.status;
  let first = Domain.join parked in
  check Alcotest.int "parked watcher times out normally" 204 first.Http.status

let test_handler_hooks_crud () =
  let t = server () in
  push_people t;
  let url = "http://127.0.0.1:1/sink" in
  let post =
    Server.handle t (request ~query:[ ("url", url) ] "/streams/people/hooks")
  in
  check Alcotest.int "register ok" 200 post.Http.status;
  (match body_field "hooks" post with
  | Some (Dv.List [ Dv.Record (_, fields) ]) ->
      check
        (Alcotest.option Alcotest.string)
        "url recorded" (Some url)
        (match List.assoc_opt "url" fields with
        | Some (Dv.String u) -> Some u
        | _ -> None);
      (match List.assoc_opt "delivered" fields with
      | Some (Dv.Int d) -> check Alcotest.int "cursor starts at current" 2 d
      | _ -> Alcotest.fail "missing delivered")
  | _ -> Alcotest.fail "expected one hook");
  (* re-registration is idempotent *)
  let again =
    Server.handle t (request ~query:[ ("url", url) ] "/streams/people/hooks")
  in
  (match body_field "hooks" again with
  | Some (Dv.List [ _ ]) -> ()
  | _ -> Alcotest.fail "duplicate registration added a hook");
  let listed =
    Server.handle t (request ~meth:"GET" "/streams/people/hooks")
  in
  check Alcotest.int "list ok" 200 listed.Http.status;
  let deleted =
    Server.handle t
      (request ~meth:"DELETE" ~query:[ ("url", url) ] "/streams/people/hooks")
  in
  check Alcotest.int "delete ok" 200 deleted.Http.status;
  (match body_field "hooks" deleted with
  | Some (Dv.List []) -> ()
  | _ -> Alcotest.fail "hook not removed");
  check Alcotest.int "missing url is 400" 400
    (Server.handle t (request "/streams/people/hooks")).Http.status;
  check Alcotest.int "non-http url is 400" 400
    (Server.handle t
       (request ~query:[ ("url", "ftp://x/y") ] "/streams/people/hooks"))
      .Http.status;
  check Alcotest.int "unknown stream is 404" 404
    (Server.handle t (request ~meth:"GET" "/streams/ghost/hooks")).Http.status

(* ----- Accept negotiation on /infer ----- *)

let corpus = "{\"name\": \"ada\", \"age\": 36}\n{\"name\": \"grace\"}\n"

let test_infer_accept_negotiation () =
  let t = server () in
  let infer accept =
    Server.handle t
      (request ~headers:[ ("accept", accept) ] ~body:corpus "/infer")
  in
  let report = infer "application/json" in
  check Alcotest.int "report ok" 200 report.Http.status;
  check Alcotest.bool "report is the JSON body" true
    (body_field "shape" report <> None);
  let paper = infer "text/x-fsdata-shape" in
  check Alcotest.int "paper ok" 200 paper.Http.status;
  check Alcotest.string "bare paper notation"
    "\xe2\x80\xa2 {name: string, age: nullable int}\n"
    paper.Http.resp_body;
  check Alcotest.string "text content type" "text/plain; charset=utf-8"
    paper.Http.content_type;
  let schema = infer "application/schema+json" in
  check Alcotest.int "schema ok" 200 schema.Http.status;
  check Alcotest.bool "a JSON Schema document" true
    (Astring.String.is_infix ~affix:"json-schema.org" schema.Http.resp_body);
  check Alcotest.string "schema content type" "application/schema+json"
    schema.Http.content_type;
  (* q-parameters are tolerated, the first supported type wins *)
  let multi = infer "image/png, text/plain;q=0.8, application/json;q=0.2" in
  check Alcotest.string "first supported wins" paper.Http.resp_body
    multi.Http.resp_body;
  (* unsatisfiable *)
  check Alcotest.int "unsupported Accept is 406" 406
    (infer "image/png").Http.status;
  (* the representation rides in the cache key: a hit never crosses *)
  let paper2 = infer "text/x-fsdata-shape" in
  check
    (Alcotest.option Alcotest.string)
    "same accept hits" (Some "hit")
    (List.assoc_opt "x-fsdata-cache" paper2.Http.resp_headers);
  check Alcotest.string "hit is byte-identical" paper.Http.resp_body
    paper2.Http.resp_body

(* ----- durable hooks: WAL round-trip and crash recovery ----- *)

let hook_obs (st : Registry.stream) =
  List.map (fun h -> (h.Registry.url, h.Registry.delivered)) st.Registry.hooks

let hooks_testable = Alcotest.(list (pair string int))

let test_hooks_roundtrip () =
  with_dir @@ fun dir ->
  let t = Registry.open_ ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let _ = Registry.add_hook t ~stream:"s" ~url:"http://127.0.0.1:1/a" in
  let _ = Registry.push t ~stream:"s" (sh "{a: int, b: string}") in
  let _ = Registry.add_hook t ~stream:"s" ~url:"http://127.0.0.1:1/b" in
  Registry.ack_delivery t ~stream:"s" ~url:"http://127.0.0.1:1/a" ~version:2;
  let before = hook_obs (find_exn t "s") in
  check hooks_testable "cursors as acked"
    [ ("http://127.0.0.1:1/a", 2); ("http://127.0.0.1:1/b", 2) ]
    before;
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check hooks_testable "recovered byte-identically" before
    (hook_obs (find_exn t2 "s"));
  (* removal is durable too *)
  let _ = Registry.remove_hook t2 ~stream:"s" ~url:"http://127.0.0.1:1/a" in
  Registry.close t2;
  let t3 = Registry.open_ ~dir:(Some dir) () in
  check hooks_testable "removal survives reopen"
    [ ("http://127.0.0.1:1/b", 2) ]
    (hook_obs (find_exn t3 "s"));
  Registry.close t3

let test_hooks_survive_snapshot () =
  with_dir @@ fun dir ->
  (* snapshot_every 1 compacts after every append: hooks must ride the
     snapshot codec, not just WAL replay *)
  let t = Registry.open_ ~dir:(Some dir) ~snapshot_every:1 () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let _ = Registry.add_hook t ~stream:"s" ~url:"http://127.0.0.1:1/a" in
  Registry.ack_delivery t ~stream:"s" ~url:"http://127.0.0.1:1/a" ~version:1;
  let _ = Registry.push t ~stream:"s" (sh "{a: int, b: string}") in
  let before = hook_obs (find_exn t "s") in
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  check hooks_testable "hooks recovered through the snapshot" before
    (hook_obs (find_exn t2 "s"));
  Registry.close t2

let test_hook_ack_monotonic () =
  let t = Registry.open_ ~dir:None () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let _ = Registry.add_hook t ~stream:"s" ~url:"http://127.0.0.1:1/a" in
  Registry.ack_delivery t ~stream:"s" ~url:"http://127.0.0.1:1/a" ~version:5;
  Registry.ack_delivery t ~stream:"s" ~url:"http://127.0.0.1:1/a" ~version:3;
  check hooks_testable "cursor never moves backwards"
    [ ("http://127.0.0.1:1/a", 5) ]
    (hook_obs (find_exn t "s"))

(* kill -9 between the hook-registration ack and the first delivery:
   the registration (and the cursor it recorded) must recover exactly,
   so post-recovery delivery starts at cursor+1 — no skipped version,
   no replay from zero. *)
let test_hook_kill_after_registration_ack () =
  with_dir @@ fun dir ->
  let fault = Fault_fs.create () in
  let t = Registry.open_ ~fault ~dir:(Some dir) () in
  let _ = Registry.push t ~stream:"s" (sh "{a: int}") in
  let st = Registry.add_hook t ~stream:"s" ~url:"http://127.0.0.1:1/a" in
  check hooks_testable "registration acked at version 1" [ ("http://127.0.0.1:1/a", 1) ]
    (hook_obs st);
  (* the process dies during the next push — after the registration
     ack, before any delivery happened *)
  Fault_fs.inject_fsync fault [ Fault_fs.Kill ];
  (try
     ignore (Registry.push t ~stream:"s" (sh "{a: int, b: string}"));
     Alcotest.fail "push should have crashed"
   with Fault_fs.Crash -> ());
  Registry.close t;
  let t2 = Registry.open_ ~dir:(Some dir) () in
  let st = find_exn t2 "s" in
  check hooks_testable "hook recovered with its registration cursor"
    [ ("http://127.0.0.1:1/a", 1) ]
    (hook_obs st);
  (* drive the stream forward and check the first delivery due is
     exactly cursor+1 for the recovered state *)
  let st = Registry.push t2 ~stream:"s" (sh "{a: int, c: bool}") in
  check Alcotest.bool "undelivered versions pending" true
    ((List.hd st.Registry.hooks).Registry.delivered < st.Registry.version);
  Registry.close t2

(* ----- the delivery worker against a live sink ----- *)

(* A minimal in-process HTTP sink: accepts one request per connection,
   records the parsed {stream, version} notification, answers the next
   queued status (default 200). *)
type sink = {
  port : int;
  seen : (string * int) list ref;  (* newest first *)
  statuses : int Queue.t;  (* pre-queued non-200 answers *)
  lock : Mutex.t;
  stop : bool Atomic.t;
  domain : unit Domain.t;
}

let sink_read_request fd =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 512 in
  let rec find_split () =
    let text = Buffer.contents acc in
    match Astring.String.find_sub ~sub:"\r\n\r\n" text with
    | Some i -> Some (text, i)
    | None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes acc buf 0 n;
            find_split ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> find_split ())
  in
  match find_split () with
  | None -> None
  | Some (text, split) ->
      let head = String.sub text 0 split in
      let content_length =
        String.split_on_char '\n' head
        |> List.find_map (fun line ->
               match String.index_opt line ':' with
               | Some i
                 when String.lowercase_ascii (String.trim (String.sub line 0 i))
                      = "content-length" ->
                   int_of_string_opt
                     (String.trim
                        (String.sub line (i + 1) (String.length line - i - 1)))
               | _ -> None)
        |> Option.value ~default:0
      in
      let want = split + 4 + content_length in
      let rec fill () =
        if Buffer.length acc >= want then ()
        else
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes acc buf 0 n;
              fill ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
      in
      fill ();
      let text = Buffer.contents acc in
      Some (String.sub text (split + 4) (String.length text - split - 4))

let start_sink () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 16;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let seen = ref [] in
  let statuses = Queue.create () in
  let lock = Mutex.create () in
  let stop = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          match Unix.select [ sock ] [] [] 0.05 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept sock with
              | fd, _ ->
                  (try
                     (match sink_read_request fd with
                     | None -> ()
                     | Some body ->
                         let status =
                           Mutex.protect lock (fun () ->
                               let status =
                                 match Queue.take_opt statuses with
                                 | Some s -> s
                                 | None -> 200
                               in
                               (if status / 100 = 2 then
                                  match Json.parse_result body with
                                  | Ok (Dv.Record (_, fields)) -> (
                                      match
                                        ( List.assoc_opt "stream" fields,
                                          List.assoc_opt "version" fields )
                                      with
                                      | Some (Dv.String s), Some (Dv.Int v) ->
                                          seen := (s, v) :: !seen
                                      | _ -> ())
                                  | _ -> ());
                               status)
                         in
                         let resp =
                           Printf.sprintf
                             "HTTP/1.1 %d X\r\ncontent-length: 0\r\n\r\n"
                             status
                         in
                         ignore
                           (Unix.write_substring fd resp 0 (String.length resp)))
                   with Unix.Unix_error _ -> ());
                  (try Unix.close fd with Unix.Unix_error _ -> ())
              | exception Unix.Unix_error _ -> ())
          | exception Unix.Unix_error _ -> ()
        done;
        try Unix.close sock with Unix.Unix_error _ -> ())
  in
  { port; seen; statuses; lock; stop; domain }

let stop_sink s =
  Atomic.set s.stop true;
  Domain.join s.domain

let sink_seen s = Mutex.protect s.lock (fun () -> List.rev !(s.seen))

let with_sink f =
  let s = start_sink () in
  Fun.protect ~finally:(fun () -> stop_sink s) (fun () -> f s)

(* run delivery steps until idle (or the deadline passes) *)
let drain_delivery ?cfg state reg ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    let next = Delivery.step ?cfg state reg in
    if next = infinity || Unix.gettimeofday () > deadline then ()
    else begin
      if next > 0. then Unix.sleepf (Float.min next 0.02);
      go ()
    end
  in
  go ()

let fast_cfg =
  { Delivery.default_config with Delivery.base_backoff_ms = 1; timeout_s = 2. }

let test_delivery_in_order () =
  with_sink @@ fun sink ->
  let reg = Registry.open_ ~dir:None () in
  let _ = Registry.push reg ~stream:"s" (sh "{a: int}") in
  let url = Printf.sprintf "http://127.0.0.1:%d/hook" sink.port in
  let _ = Registry.add_hook reg ~stream:"s" ~url in
  let _ = Registry.push reg ~stream:"s" (sh "{a: int, b: string}") in
  let _ = Registry.push reg ~stream:"s" (sh "{a: int, b: string, c: bool}") in
  let state = Delivery.state () in
  drain_delivery ~cfg:fast_cfg state reg ~seconds:5.;
  check
    Alcotest.(list (pair string int))
    "every bump since registration, in order, exactly once"
    [ ("s", 2); ("s", 3) ]
    (sink_seen sink);
  check hooks_testable "cursor fully advanced" [ (url, 3) ]
    (hook_obs (find_exn reg "s"))

let test_delivery_retries_5xx_without_skip () =
  with_sink @@ fun sink ->
  let reg = Registry.open_ ~dir:None () in
  let _ = Registry.push reg ~stream:"s" (sh "{a: int}") in
  let url = Printf.sprintf "http://127.0.0.1:%d/hook" sink.port in
  let _ = Registry.add_hook reg ~stream:"s" ~url in
  (* the endpoint fails twice before accepting *)
  Mutex.protect sink.lock (fun () ->
      Queue.add 500 sink.statuses;
      Queue.add 503 sink.statuses);
  let _ = Registry.push reg ~stream:"s" (sh "{a: int, b: string}") in
  let state = Delivery.state () in
  drain_delivery ~cfg:fast_cfg state reg ~seconds:5.;
  check
    Alcotest.(list (pair string int))
    "redelivered until acknowledged, never skipped"
    [ ("s", 2) ]
    (sink_seen sink);
  check hooks_testable "cursor advanced only on the 2xx" [ (url, 2) ]
    (hook_obs (find_exn reg "s"))

let test_delivery_socket_reset_redelivers () =
  with_sink @@ fun sink ->
  let reg = Registry.open_ ~dir:None () in
  let _ = Registry.push reg ~stream:"s" (sh "{a: int}") in
  let url = Printf.sprintf "http://127.0.0.1:%d/hook" sink.port in
  let _ = Registry.add_hook reg ~stream:"s" ~url in
  let _ = Registry.push reg ~stream:"s" (sh "{a: int, b: string}") in
  (* the wire resets mid-POST: first attempt dies writing, second dies
     reading the response (the sink may or may not have processed it —
     the worker must treat both as undelivered) *)
  let fault = Fault_net.create () in
  Fault_net.inject_write fault [ Fault_net.Error Unix.ECONNRESET ];
  let io =
    {
      Client.read = Fault_net.read (Some fault);
      Client.write = Fault_net.write_substring (Some fault);
    }
  in
  let cfg = { fast_cfg with Delivery.io = Some io } in
  let state = Delivery.state () in
  drain_delivery ~cfg state reg ~seconds:5.;
  (* at-least-once: the version arrived (possibly more than once), and
     the cursor reached it with no version skipped *)
  let seen = sink_seen sink in
  check Alcotest.bool "the bump was delivered at least once" true
    (List.mem ("s", 2) seen);
  check Alcotest.bool "no version was skipped" true
    (List.for_all (fun (_, v) -> v = 2) seen);
  check hooks_testable "cursor reached the bump" [ (url, 2) ]
    (hook_obs (find_exn reg "s"))

let test_delivery_loop_wakes_on_push () =
  with_sink @@ fun sink ->
  let reg = Registry.open_ ~dir:None () in
  let notify = Notify.create ~capacity:4 in
  Registry.set_listener reg (fun st -> Notify.notify notify st.Registry.name);
  let _ = Registry.push reg ~stream:"s" (sh "{a: int}") in
  let url = Printf.sprintf "http://127.0.0.1:%d/hook" sink.port in
  let _ = Registry.add_hook reg ~stream:"s" ~url in
  let stop = Atomic.make false in
  let worker =
    Domain.spawn (fun () ->
        Delivery.loop ~cfg:fast_cfg ~notify
          ~stop:(fun () -> Atomic.get stop)
          reg)
  in
  let _ = Registry.push reg ~stream:"s" (sh "{a: int, b: string}") in
  (* the push's listener wakes the worker; the notification lands
     without any polling interval elapsing *)
  let deadline = Unix.gettimeofday () +. 5. in
  let rec await () =
    if List.mem ("s", 2) (sink_seen sink) then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "delivery did not happen"
    else begin
      Unix.sleepf 0.01;
      await ()
    end
  in
  await ();
  Atomic.set stop true;
  Notify.notify notify "s";
  Domain.join worker

(* ----- migration composes over registry history ----- *)

let provide_shape s = Provide.provide ~format:`Json s

let compose_check reg ~stream e =
  let st = find_exn reg stream in
  if st.Registry.version < 3 then true
  else
    let shape_at v =
      match Registry.version_shape st v with
      | Some s -> s
      | None -> Alcotest.failf "version %d not retained" v
    in
    let p1 = provide_shape (shape_at 1) in
    let p2 = provide_shape (shape_at 2) in
    let p3 = provide_shape (shape_at st.Registry.version) in
    let direct =
      Service.migrate reg ~stream ~since:1
        ~program:(Syntax.expr_to_string e)
    in
    let stepped =
      match Migrate.migrate ~old_provided:p1 ~new_provided:p2 e with
      | Error _ -> Error ()
      | Ok e12 -> (
          match Migrate.migrate ~old_provided:p2 ~new_provided:p3 e12 with
          | Error _ -> Error ()
          | Ok e123 -> Ok e123)
    in
    match (direct, stepped) with
    | Ok d, Ok e123 ->
        (* byte-identical composition *)
        Syntax.expr_to_string d.Service.program = Syntax.expr_to_string e123
        (* and the composed program checks against the current σ *)
        && Result.is_ok
             (TC.synth p3.Provide.classes
                [ ("y", p3.Provide.root_ty) ]
                e123)
    | _ -> true

let test_composition_deterministic () =
  let reg = Registry.open_ ~dir:None () in
  let _ = Registry.push reg ~stream:"s" (sh "{name: string}") in
  let _ = Registry.push reg ~stream:"s" (sh "{name: string, age: int}") in
  let _ =
    Registry.push reg ~stream:"s"
      (sh "{name: string, age: int, tags: [string]}")
  in
  let e = Fsdata_foo.Parser.parse_expr "y.Name = y.Name" in
  check Alcotest.bool "v1->v3 = v1->v2;v2->v3, byte-identical" true
    (compose_check reg ~stream:"s" e);
  (* and the direct service answer really is a rewrite over 3 versions *)
  match Service.migrate reg ~stream:"s" ~since:1 ~program:"y.Name" with
  | Ok r ->
      check Alcotest.int "to the current version" 3 r.Service.to_version
  | Error e -> Alcotest.failf "direct migrate failed: %a" Service.pp_error e

let composition_gen =
  let open QCheck2.Gen in
  let* s1 = QCheck2.Gen.list_size (int_range 1 2) Generators.gen_plain_data in
  let* s2 = QCheck2.Gen.list_size (int_range 1 2) Generators.gen_plain_data in
  let* s3 = Generators.gen_plain_data in
  let shape_of samples = Infer.shape_of_samples ~mode:`Paper samples in
  let sh1 = shape_of s1 in
  let p1 = provide_shape sh1 in
  let* e = Test_safety.gen_user_program p1.Provide.classes p1.Provide.root_ty in
  return (sh1, shape_of (s1 @ s2), shape_of (s1 @ s2 @ [ s3 ]), e)

let prop_composition =
  QCheck2.Test.make
    ~name:
      "migration composes over registry history (v1->v3 = v1->v2;v2->v3)"
    ~count:200
    ~print:(fun (a, b, c, e) ->
      Fmt.str "v1: %a@.v2: %a@.v3: %a@.program: %s" Shape.pp a Shape.pp b
        Shape.pp c
        (Syntax.expr_to_string e))
    composition_gen
    (fun (sh1, sh2, sh3, e) ->
      let reg = Registry.open_ ~dir:None () in
      ignore (Registry.push reg ~stream:"s" sh1);
      ignore (Registry.push reg ~stream:"s" sh2);
      ignore (Registry.push reg ~stream:"s" sh3);
      compose_check reg ~stream:"s" e)

let suite =
  [
    tc "notify: immediate poll" `Quick test_notify_immediate;
    tc "notify: timeout" `Quick test_notify_timeout;
    tc "notify: woken by key" `Quick test_notify_wakes_matching_key;
    tc "notify: capacity bound" `Quick test_notify_capacity;
    tc "notify: wildcard waiter" `Quick test_notify_wildcard_waiter;
    tc "service: rewrites across versions" `Quick test_service_rewrites;
    tc "service: error classes" `Quick test_service_errors;
    tc "service: evicted version" `Quick test_service_evicted;
    tc "handler: migrate 200 + cache" `Quick test_handler_migrate_ok;
    tc "handler: migrate status mapping" `Quick test_handler_migrate_statuses;
    tc "handler: migrate evicted is 409" `Quick
      test_handler_migrate_evicted_409;
    tc "handler: watch immediate / 204" `Quick
      test_handler_watch_immediate_and_timeout;
    tc "handler: watch sees a push" `Quick test_handler_watch_sees_push;
    tc "handler: watch shed at capacity" `Quick test_handler_watch_shed;
    tc "handler: hooks CRUD" `Quick test_handler_hooks_crud;
    tc "infer: Accept negotiation" `Quick test_infer_accept_negotiation;
    tc "hooks: durable round-trip" `Quick test_hooks_roundtrip;
    tc "hooks: survive snapshot compaction" `Quick test_hooks_survive_snapshot;
    tc "hooks: ack is monotonic" `Quick test_hook_ack_monotonic;
    tc "hooks: kill -9 after registration ack" `Quick
      test_hook_kill_after_registration_ack;
    tc "delivery: in order, exactly the bumps" `Quick test_delivery_in_order;
    tc "delivery: 5xx retries without skips" `Quick
      test_delivery_retries_5xx_without_skip;
    tc "delivery: socket reset redelivers" `Quick
      test_delivery_socket_reset_redelivers;
    tc "delivery: loop woken by push" `Quick test_delivery_loop_wakes_on_push;
    tc "composition: deterministic 3-version chain" `Quick
      test_composition_deterministic;
    QCheck_alcotest.to_alcotest prop_composition;
  ]
