(* Primitive-value inference tests (Section 6.2). *)

module Dv = Fsdata_data.Data_value
module P = Fsdata_data.Primitive
open Generators

let check = Alcotest.check
let tc = Alcotest.test_case

let hint_name = function
  | P.Hint_bit0 -> "bit0"
  | P.Hint_bit1 -> "bit1"
  | P.Hint_bool -> "bool"
  | P.Hint_int -> "int"
  | P.Hint_float -> "float"
  | P.Hint_date -> "date"
  | P.Hint_string -> "string"
  | P.Hint_null -> "null"

let hint_t = Alcotest.testable (Fmt.of_to_string hint_name) ( = )

let classifies s expected () = check hint_t s expected (P.classify s)

let test_to_value () =
  let cases =
    [
      ("0", Dv.Int 0);
      ("1", Dv.Int 1);
      ("42", Dv.Int 42);
      ("-7", Dv.Int (-7));
      ("36.3", Dv.Float 36.3);
      ("1e3", Dv.Float 1000.);
      ("true", Dv.Bool true);
      ("NO", Dv.Bool false);
      ("#N/A", Dv.Null);
      ("", Dv.Null);
      ("2012-05-01", Dv.String "2012-05-01");
      ("hello", Dv.String "hello");
    ]
  in
  List.iter
    (fun (s, expected) ->
      check data_testable s expected (fst (P.to_value s)))
    cases

let test_parse_int_strict () =
  check Alcotest.(option int) "plain" (Some 42) (P.parse_int "42");
  check Alcotest.(option int) "sign" (Some 7) (P.parse_int "+7");
  check Alcotest.(option int) "whitespace" (Some 1) (P.parse_int " 1 ");
  check Alcotest.(option int) "trailing junk" None (P.parse_int "42x");
  check Alcotest.(option int) "hex rejected" None (P.parse_int "0x10");
  check Alcotest.(option int) "float rejected" None (P.parse_int "1.5");
  check Alcotest.(option int) "empty" None (P.parse_int "");
  check Alcotest.(option int) "lone sign" None (P.parse_int "-")

let test_parse_float_strict () =
  let t = Alcotest.(option (float 1e-9)) in
  check t "plain" (Some 1.5) (P.parse_float "1.5");
  check t "int syntax ok" (Some 42.) (P.parse_float "42");
  check t "leading dot" (Some 0.5) (P.parse_float ".5");
  check t "trailing dot" (Some 5.) (P.parse_float "5.");
  check t "exponent" (Some 1500.) (P.parse_float "1.5e3");
  check t "negative exponent" (Some 0.0015) (P.parse_float "1.5E-3");
  check t "nan spelled out rejected" None (P.parse_float "nan");
  check t "inf rejected" None (P.parse_float "inf");
  check t "junk" None (P.parse_float "1.5.2");
  check t "lone dot" None (P.parse_float ".");
  check t "lone exponent" None (P.parse_float "e3")

let test_normalize () =
  let d =
    Dv.Record
      ( Dv.json_record_name,
        [
          ("a", Dv.String "35.14229");
          ("b", Dv.String "2012");
          ("c", Dv.String "#N/A");
          ("d", Dv.String "2012-05-01");
          ("e", Dv.List [ Dv.String "1"; Dv.Int 2 ]);
        ] )
  in
  check data_testable "normalize converts string leaves"
    (Dv.Record
       ( Dv.json_record_name,
         [
           ("a", Dv.Float 35.14229);
           ("b", Dv.Int 2012);
           ("c", Dv.Null);
           ("d", Dv.String "2012-05-01");
           ("e", Dv.List [ Dv.Int 1; Dv.Int 2 ]);
         ] ))
    (P.normalize d)

let prop_normalize_idempotent =
  QCheck2.Test.make ~name:"normalize idempotent" ~count:200 ~print:print_data
    gen_data (fun d -> Dv.equal (P.normalize d) (P.normalize (P.normalize d)))

let suite =
  [
    tc "classify 0" `Quick (classifies "0" P.Hint_bit0);
    tc "classify 1" `Quick (classifies "1" P.Hint_bit1);
    tc "classify 2" `Quick (classifies "2" P.Hint_int);
    tc "classify -1" `Quick (classifies "-1" P.Hint_int);
    tc "classify 36.3" `Quick (classifies "36.3" P.Hint_float);
    tc "classify true" `Quick (classifies "true" P.Hint_bool);
    tc "classify Yes" `Quick (classifies "Yes" P.Hint_bool);
    tc "classify date" `Quick (classifies "2012-05-01" P.Hint_date);
    tc "classify May 3" `Quick (classifies "May 3" P.Hint_date);
    tc "classify 3 kveten" `Quick (classifies "3 kveten" P.Hint_string);
    tc "classify #N/A" `Quick (classifies "#N/A" P.Hint_null);
    tc "classify empty" `Quick (classifies "" P.Hint_null);
    tc "classify NA" `Quick (classifies "NA" P.Hint_null);
    tc "classify text" `Quick (classifies "scattered clouds" P.Hint_string);
    tc "classify 03d stays string" `Quick (classifies "03d" P.Hint_string);
    tc "to_value" `Quick test_to_value;
    tc "parse_int strictness" `Quick test_parse_int_strict;
    tc "parse_float strictness" `Quick test_parse_float_strict;
    tc "normalize (World Bank strings)" `Quick test_normalize;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
  ]
