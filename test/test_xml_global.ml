(* Global XML inference (Section 6.2): all elements with the same name
   unify into one signature; recursive documents provide nominal classes. *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module G = Fsdata_core.Xml_global
module Provide = Fsdata_provider.Provide
module Typed = Fsdata_runtime.Typed
module TC = Fsdata_foo.Typecheck

let tc = Alcotest.test_case
let check = Alcotest.check

let infer src = G.infer (Fsdata_data.Xml.parse src)

let xhtml_like =
  {|<html>
      <body>
        <table border="1"><row>a</row><row>b</row></table>
        <div>
          <table><row>c</row></table>
        </div>
      </body>
    </html>|}

let test_same_name_unified () =
  let g = infer xhtml_like in
  (* the two <table>s — one with a border attribute, one without, one with
     two rows, one with one — unify into a single signature *)
  let table = Option.get (G.find g "table") in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Generators.shape_testable))
    "border attribute becomes nullable"
    [ ("border", Shape.Nullable (Shape.Primitive Shape.Bit1)) ]
    table.G.attributes;
  (match table.G.body with
  | G.Body_children [ ("row", Mult.Multiple) ] -> ()
  | _ -> Alcotest.fail "table body should be row*");
  let row = Option.get (G.find g "row") in
  (match row.G.body with
  | G.Body_primitive (Shape.Primitive Shape.String) -> ()
  | _ -> Alcotest.fail "row body should be string")

let test_recursive_document () =
  let g = infer {|<div id="a"><div id="b"><div id="c"/></div></div>|} in
  check Alcotest.int "one signature for div" 1 (List.length g.G.elements);
  let div = Option.get (G.find g "div") in
  (* the innermost div has no children, so the self-reference is optional *)
  match div.G.body with
  | G.Body_children [ ("div", Mult.Optional_single) ] -> ()
  | _ -> Alcotest.fail "div body should be div?"

let test_multi_sample_roots () =
  (match G.of_strings [ "<a/>"; "<b/>" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "different roots must be rejected");
  (match G.of_strings [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty sample list must be rejected");
  match G.of_strings [ {|<a x="1"/>|}; {|<a y="2"/>|} ] with
  | Ok g ->
      let a = Option.get (G.find g "a") in
      check Alcotest.int "both attributes, both nullable" 2
        (List.length a.G.attributes);
      List.iter
        (fun (_, s) ->
          match s with
          | Shape.Nullable _ -> ()
          | s -> Alcotest.failf "expected nullable, got %a" Shape.pp s)
        a.G.attributes
  | Error e -> Alcotest.fail e

let test_mixed_occurrences () =
  (* one <x> has text, another has children: element content wins *)
  let g = infer {|<r><x>text</x><x><y/></x></r>|} in
  let x = Option.get (G.find g "x") in
  match x.G.body with
  | G.Body_children [ ("y", Mult.Optional_single) ] -> ()
  | _ -> Alcotest.fail "x body should be y?"

let test_empty_occurrence_weakens () =
  let g = infer {|<r><x>5</x><x/></r>|} in
  let x = Option.get (G.find g "x") in
  match x.G.body with
  | G.Body_primitive (Shape.Nullable (Shape.Primitive Shape.Int)) -> ()
  | G.Body_primitive s -> Alcotest.failf "got %a" Shape.pp s
  | _ -> Alcotest.fail "x body should be primitive"

(* ----- provider over global signatures ----- *)

let test_provide_recursive () =
  let src = {|<div id="a"><div id="b"><div id="c"/></div></div>|} in
  let p = Result.get_ok (Provide.provide_xml_global [ src ]) in
  (match TC.check_classes p.Provide.classes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ill-typed: %a" TC.pp_error e);
  let root = Typed.parse p src in
  check Alcotest.string "outer id" "a" (Typed.get_string (Typed.member root "Id"));
  let inner = Option.get (Typed.get_option (Typed.member root "Div")) in
  check Alcotest.string "inner id" "b" (Typed.get_string (Typed.member inner "Id"));
  let inner2 = Option.get (Typed.get_option (Typed.member inner "Div")) in
  check Alcotest.string "innermost id" "c"
    (Typed.get_string (Typed.member inner2 "Id"));
  check Alcotest.bool "recursion bottoms out" true
    (Typed.get_option (Typed.member inner2 "Div") = None)

let test_provide_xhtml_tables () =
  let p = Result.get_ok (Provide.provide_xml_global [ xhtml_like ]) in
  (match TC.check_classes p.Provide.classes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ill-typed: %a" TC.pp_error e);
  let root = Typed.parse p xhtml_like in
  let body = Typed.member root "Body" in
  (* both tables are values of the same Table class *)
  let t1 = Typed.member body "Table" in
  let rows1 =
    List.map Typed.get_string
      (List.map (fun r -> Typed.member r "Value") (Typed.get_list (Typed.member t1 "Rows")))
  in
  check (Alcotest.list Alcotest.string) "direct table rows" [ "a"; "b" ] rows1;
  let t2 = Typed.member (Typed.member body "Div") "Table" in
  let rows2 =
    List.map Typed.get_string
      (List.map (fun r -> Typed.member r "Value") (Typed.get_list (Typed.member t2 "Rows")))
  in
  check (Alcotest.list Alcotest.string) "nested table rows" [ "c" ] rows2;
  (* the unified border attribute is optional on both *)
  check Alcotest.bool "nested table has no border" true
    (Typed.get_option (Typed.member t2 "Border") = None)

let test_global_codegen_compiles_shape () =
  (* codegen on a recursive provided type emits and-chained definitions;
     we can at least check the output contains the recursive block *)
  let src = {|<div id="a"><div id="b"/></div>|} in
  let p = Result.get_ok (Provide.provide_xml_global [ src ]) in
  let code = Fsdata_codegen.Codegen.generate p in
  check Alcotest.bool "let rec emitted" true
    (Astring.String.is_infix ~affix:"let rec div_of_data" code);
  check Alcotest.bool "self-reference in type" true
    (Astring.String.is_infix ~affix:"div option" code)

let suite =
  [
    tc "same-named elements unify (XHTML tables)" `Quick test_same_name_unified;
    tc "recursive documents" `Quick test_recursive_document;
    tc "multi-sample roots and attribute merging" `Quick test_multi_sample_roots;
    tc "mixed occurrences" `Quick test_mixed_occurrences;
    tc "empty occurrence weakens text body" `Quick test_empty_occurrence_weakens;
    tc "provider: recursive div chain" `Quick test_provide_recursive;
    tc "provider: unified tables" `Quick test_provide_xhtml_tables;
    tc "codegen: recursive block" `Quick test_global_codegen_compiles_shape;
  ]
