(* JSON Schema export: golden cases plus the acceptance guarantee —
   whenever hasShape(S(d), d) holds, the exported schema accepts the
   (normalized) document. The suite includes a miniature validator for the
   draft-07 subset the exporter emits. *)

module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module Js = Fsdata_codegen.Json_schema
module Infer = Fsdata_core.Infer
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

(* ----- a validator for the emitted subset ----- *)

let field name (s : Dv.t) =
  match s with Dv.Record (_, fs) -> List.assoc_opt name fs | _ -> None

let rec validate (schema : Dv.t) (d : Dv.t) : bool =
  match schema with
  | Dv.Bool b -> b (* true/false schemas *)
  | Dv.Record _ -> (
      (match field "enum" schema with
      | Some (Dv.List allowed) -> List.exists (Dv.equal d) allowed
      | _ -> true)
      && (match field "anyOf" schema with
         | Some (Dv.List cases) -> List.exists (fun c -> validate c d) cases
         | _ -> true)
      && (match field "type" schema with
         | Some (Dv.String t) -> check_type t d
         | _ -> true)
      &&
      match (field "properties" schema, d) with
      | Some (Dv.Record (_, props)), Dv.Record (_, fields) ->
          List.for_all
            (fun (name, sub) ->
              match List.assoc_opt name fields with
              | Some v -> validate sub v
              | None -> true)
            props
          &&
          (match field "required" schema with
          | Some (Dv.List req) ->
              List.for_all
                (function
                  | Dv.String name -> List.mem_assoc name fields
                  | _ -> false)
                req
          | _ -> true)
      | Some _, _ -> true (* properties only constrain objects *)
      | None, _ -> (
          match (field "items" schema, d) with
          | Some sub, Dv.List items -> List.for_all (validate sub) items
          | _ -> true))
  | _ -> false

and check_type t (d : Dv.t) =
  match (t, d) with
  | "null", Dv.Null
  | "boolean", Dv.Bool _
  | "integer", Dv.Int _
  | "number", (Dv.Int _ | Dv.Float _)
  | "string", Dv.String _
  | "object", Dv.Record _
  | "array", Dv.List _ ->
      true
  | _ -> false

(* ----- golden cases ----- *)

let test_primitives () =
  let s shape = Fsdata_data.Json.to_string (Js.of_shape shape) in
  check Alcotest.string "int" {|{"$schema":"http://json-schema.org/draft-07/schema#","type":"integer"}|}
    (s (Shape.Primitive Shape.Int));
  check Alcotest.string "date"
    {|{"$schema":"http://json-schema.org/draft-07/schema#","type":"string","format":"date-time"}|}
    (s (Shape.Primitive Shape.Date));
  check Alcotest.string "bottom rejects" "false" (s Shape.Bottom);
  check Alcotest.string "any accepts"
    {|{"$schema":"http://json-schema.org/draft-07/schema#"}|}
    (s Shape.any)

let test_record_required () =
  let shape =
    Shape.record Dv.json_record_name
      [ ("name", Shape.Primitive Shape.String);
        ("age", Shape.Nullable (Shape.Primitive Shape.Float)) ]
  in
  let schema = Js.of_shape shape in
  (match field "required" schema with
  | Some (Dv.List [ Dv.String "name" ]) -> ()
  | _ -> Alcotest.fail "only the non-nullable field is required");
  check Alcotest.bool "accepts the full record" true
    (validate schema
       (Dv.Record (Dv.json_record_name, [ ("name", Dv.String "x"); ("age", Dv.Float 1.) ])));
  check Alcotest.bool "accepts without the optional field" true
    (validate schema (Dv.Record (Dv.json_record_name, [ ("name", Dv.String "x") ])));
  check Alcotest.bool "rejects without the required field" false
    (validate schema (Dv.Record (Dv.json_record_name, [ ("age", Dv.Float 1.) ])));
  check Alcotest.bool "rejects ill-typed field" false
    (validate schema (Dv.Record (Dv.json_record_name, [ ("name", Dv.Int 3) ])))

let test_collections () =
  let homog = Js.of_shape (Shape.collection (Shape.Primitive Shape.Int)) in
  check Alcotest.bool "array of ints ok" true
    (validate homog (Dv.List [ Dv.Int 1; Dv.Int 2 ]));
  check Alcotest.bool "string element rejected" false
    (validate homog (Dv.List [ Dv.String "x" ]));
  let hetero =
    Js.of_shape
      (Shape.hetero
         [ (Shape.Primitive Shape.Int, Mult.Single);
           (Shape.Primitive Shape.String, Mult.Multiple) ])
  in
  check Alcotest.bool "known cases ok" true
    (validate hetero (Dv.List [ Dv.Int 1; Dv.String "x" ]));
  check Alcotest.bool "unknown tags allowed (open world)" true
    (validate hetero (Dv.List [ Dv.Bool true ]))

(* ----- the acceptance guarantee ----- *)

let prop_schema_accepts =
  QCheck2.Test.make
    ~name:"schema of S(d) accepts the (normalized) document" ~count:300
    ~print:print_data gen_data (fun d ->
      let shape = Infer.shape_of_value ~mode:`Practical d in
      let d' = Fsdata_data.Primitive.normalize d in
      (* sanity: the shape accepts its own document *)
      (not (Fsdata_core.Shape_check.has_shape shape d'))
      || validate (Js.of_shape shape) d')

let prop_schema_paper_mode =
  QCheck2.Test.make ~name:"schema acceptance, paper-mode shapes" ~count:300
    ~print:print_data gen_plain_data (fun d ->
      let shape = Infer.shape_of_value ~mode:`Paper d in
      validate (Js.of_shape shape) d)

let suite =
  [
    tc "primitive schemas" `Quick test_primitives;
    tc "record required/optional fields" `Quick test_record_required;
    tc "collection schemas" `Quick test_collections;
    QCheck_alcotest.to_alcotest prop_schema_accepts;
    QCheck_alcotest.to_alcotest prop_schema_paper_mode;
  ]
