(* Equivalence of the big-step (environment-based) evaluator with the
   small-step Figure 6 semantics, on random user programs over provided
   types — same values, same exn, same stuckness. *)

module Dv = Fsdata_data.Data_value
module Infer = Fsdata_core.Infer
module Provide = Fsdata_provider.Provide
open Fsdata_foo.Syntax
module Eval = Fsdata_foo.Eval
module Fast = Fsdata_foo.Eval_fast
open Generators

let tc = Alcotest.test_case
let check = Alcotest.check

type outcome = Val of Fast.value | Exn | Stuck

let run_small classes e =
  match Eval.eval classes e with
  | Eval.Value v -> (
      match Fast.of_expr_value v with
      | Some fv -> Val fv
      | None -> Alcotest.fail "small-step produced a non-value")
  | Eval.Exn -> Exn
  | Eval.Stuck _ -> Stuck
  | Eval.Timeout -> Alcotest.fail "small-step timed out"

let run_fast classes e =
  match Fast.eval classes [] e with
  | v -> Val v
  | exception Fast.Foo_exn -> Exn
  | exception Fast.Stuck _ -> Stuck

let agree classes e =
  match (run_small classes e, run_fast classes e) with
  | Val a, Val b -> Fast.equal_value a b
  | Exn, Exn | Stuck, Stuck -> true
  | _ -> false

let test_basics () =
  let cases =
    [
      EApp (lam "x" TInt (EVar "x"), int_ 5);
      EIf (bool_ true, int_ 1, int_ 2);
      EEq (ESome (int_ 1), ESome (int_ 1));
      EMatchList (ECons (int_ 1, ENil TInt), "h", "t", EVar "h", int_ 0);
      EOp (ConvFloat (Fsdata_core.Shape.Primitive Fsdata_core.Shape.Float, int_ 42));
      EOp (ConvPrim (Fsdata_core.Shape.Primitive Fsdata_core.Shape.Bool, int_ 42));
      EExn;
      EOp (ConvBool (int_ 1));
      EOp (IntOfFloat (float_ 3.7));
    ]
  in
  List.iteri
    (fun i e ->
      if not (agree [] e) then Alcotest.failf "case %d disagrees" i)
    cases

(* closures capture their environment (the small-step evaluator
   substitutes eagerly; results must agree) *)
let test_closures () =
  let e =
    EApp
      ( EApp
          ( lam "x" TInt (lam "y" TInt (EEq (EVar "x", EVar "y"))),
            int_ 1 ),
        int_ 2 )
  in
  check Alcotest.bool "capture" true (agree [] e)

let prop_agree_user_programs =
  let gen =
    let open QCheck2.Gen in
    let* samples = list_size (int_range 1 3) gen_plain_data in
    let* idx = int_range 0 (List.length samples - 1) in
    return (samples, List.nth samples idx)
  in
  QCheck2.Test.make
    ~name:"big-step agrees with small-step on provided member walks"
    ~count:200
    ~print:(fun (ds, _) -> String.concat " ; " (List.map print_data ds))
    gen
    (fun (samples, input) ->
      let shape = Infer.shape_of_samples ~mode:`Practical samples in
      let p = Provide.provide shape in
      let input = Fsdata_data.Primitive.normalize input in
      (* deep-walk both evaluators in lockstep *)
      let rec walk_small (v : expr) (t : ty) (fv : Fast.value) : bool =
        match t with
        | TOption t' -> (
            match (v, fv) with
            | ENone _, Fast.VNone -> true
            | ESome v', Fast.VSome fv' -> walk_small v' t' fv'
            | _ -> false)
        | TList t' -> (
            match (v, fv) with
            | ENil _, Fast.VNil -> true
            | ECons (x, rest), Fast.VCons (fx, frest) ->
                walk_small x t' fx && walk_small rest t frest
            | _ -> false)
        | TClass c -> (
            match find_class p.Provide.classes c with
            | None -> false
            | Some cls ->
                List.for_all
                  (fun (m : member_def) ->
                    let small =
                      match
                        Eval.eval p.Provide.classes (EMember (v, m.member_name))
                      with
                      | Eval.Value mv -> Some mv
                      | _ -> None
                    in
                    let fast =
                      match Fast.member p.Provide.classes fv m.member_name with
                      | mv -> Some mv
                      | exception (Fast.Stuck _ | Fast.Foo_exn) -> None
                    in
                    match (small, fast) with
                    | Some mv, Some fmv -> walk_small mv m.member_ty fmv
                    | None, None -> true
                    | _ -> false)
                  cls.members)
        | _ -> (
            match Fast.of_expr_value v with
            | Some v' -> Fast.equal_value v' fv
            | None -> false)
      in
      let whole = Provide.apply p input in
      match (run_small p.Provide.classes whole, run_fast p.Provide.classes whole) with
      | Val _, Val fv -> (
          match Eval.eval p.Provide.classes whole with
          | Eval.Value v -> walk_small v p.Provide.root_ty fv
          | _ -> false)
      | a, b -> a = b)

let suite =
  [
    tc "basic agreement" `Quick test_basics;
    tc "closures vs substitution" `Quick test_closures;
    QCheck_alcotest.to_alcotest prop_agree_user_programs;
  ]
