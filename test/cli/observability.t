Pipeline observability: --trace (Chrome trace_event JSON) and --metrics
(flat JSON object with a stable key set). See docs/OBSERVABILITY.md.

  $ FSDATA=../../bin/fsdata.exe

  $ printf '{"name": "ada", "age": 36}\n' > a.json
  $ printf '{"name": "grace"}\n' > b.json

The metrics key set is a property of the linked binary — every
instrument is registered at module initialization, and the GC gauges
use the fixed phases start/work/render — so it is pinned here in full.
Values vary run to run; strip them:

  $ $FSDATA infer --metrics - --jobs 2 a.json b.json | sed -n 's/^  "\([^"]*\)": .*/\1/p'
  codegen.bytes
  codegen.runs
  compile.build_ns
  compile.cache.evictions
  compile.cache.hits
  compile.cache.misses
  compile.docs_direct
  compile.docs_fallback
  compile.parsers
  csh.merges
  csh.top_label_saturations
  evolve.deliveries
  evolve.delivery_failures
  evolve.hooks
  evolve.migration_failures
  evolve.migrations
  evolve.watch.notified
  evolve.watch.shed
  evolve.watch.timeouts
  evolve.watchers
  gc.render.heap_words
  gc.render.major_collections
  gc.render.major_words
  gc.render.minor_collections
  gc.render.minor_words
  gc.start.heap_words
  gc.start.major_collections
  gc.start.major_words
  gc.start.minor_collections
  gc.start.minor_words
  gc.work.heap_words
  gc.work.major_collections
  gc.work.major_words
  gc.work.minor_collections
  gc.work.minor_words
  infer.samples
  ingest.samples_clean
  ingest.samples_quarantined
  ingest.samples_total
  par.chunk_size.count
  par.chunk_size.max
  par.chunk_size.mean
  par.chunk_size.min
  par.chunk_size.sum
  par.chunks
  par.domains_spawned
  parse.csv.bytes
  parse.csv.documents
  parse.csv.ns
  parse.json.bytes
  parse.json.documents
  parse.json.ns
  parse.xml.bytes
  parse.xml.documents
  parse.xml.ns
  provide.classes
  provide.runs
  query.checks
  query.docs
  query.evals
  query.malformed
  query.plans
  query.rejected
  query.rows
  query.skipped
  registry.faults.injected
  registry.pushes
  registry.snapshot_failures
  registry.snapshots
  registry.streams
  registry.version_bumps
  registry.wal.appends
  registry.wal.bytes
  registry.wal.fsyncs
  registry.wal.recovered_records
  registry.wal.truncated_bytes
  serve.cache.evictions
  serve.cache.hits
  serve.cache.invalidations
  serve.cache.misses
  serve.connections
  serve.deadline_expired
  serve.faults.injected
  serve.http_errors
  serve.inflight
  serve.inflight_bytes
  serve.latency_ms.count
  serve.latency_ms.max
  serve.latency_ms.mean
  serve.latency_ms.min
  serve.latency_ms.sum
  serve.plan_cache.hits
  serve.plan_cache.misses
  serve.requests.check
  serve.requests.explain
  serve.requests.healthz
  serve.requests.infer
  serve.requests.metrics
  serve.requests.other
  serve.requests.query
  serve.requests.stream
  serve.responses.2xx
  serve.responses.4xx
  serve.responses.5xx
  serve.shed_total
  serve.stream.bodies
  serve.worker.crashes
  shape.hcons.hits
  shape.hcons.misses

Sample-granular counters are deterministic: two clean samples over two
chunks, nothing quarantined, one worker domain spawned next to the
calling one:

  $ $FSDATA infer --metrics m.json --jobs 2 a.json b.json
  • {name: string, age: nullable int}
  $ grep -E '"(ingest|par)\.' m.json
    "ingest.samples_clean": 2,
    "ingest.samples_quarantined": 0,
    "ingest.samples_total": 2,
    "par.chunk_size.count": 2,
    "par.chunk_size.max": 1.000,
    "par.chunk_size.mean": 1.000,
    "par.chunk_size.min": 1.000,
    "par.chunk_size.sum": 2.000,
    "par.chunks": 2,
    "par.domains_spawned": 1,

Quarantined samples keep the reconciliation total = clean + quarantined
(the metrics flush runs on the quarantine exit path too):

  $ printf '{"name": ' > bad.json
  $ $FSDATA infer --metrics q.json --max-errors 1 a.json b.json bad.json
  • {name: string, age: nullable int}
  fsdata: quarantined 1 of 3 samples
  [3]
  $ grep -E '"ingest\.' q.json
    "ingest.samples_clean": 2,
    "ingest.samples_quarantined": 1,
    "ingest.samples_total": 3,

--trace writes a trace_event document. With --jobs 2 over two samples
the pipeline records the read, one span per chunk, the final merge, and
the per-document parses; span names are pinned, timings vary:

  $ $FSDATA infer --trace t.json --jobs 2 a.json b.json
  • {name: string, age: nullable int}
  $ grep -o '"name":"[^"]*"' t.json | sort | uniq -c | sed 's/^ *//'
  1 "name":"cli.read"
  2 "name":"infer.chunk"
  1 "name":"infer.merge"
  2 "name":"parse.json"

Chunk spans carry their corpus position, and the two chunks run on two
different threads of the trace (the worker domain keeps its own tid
after the join):

  $ grep -o '"args":{[^}]*}' t.json | sort
  "args":{"offset":"0","size":"1"}
  "args":{"offset":"1","size":"1"}
  $ grep -o '"tid":[0-9]*' t.json | sort -u | wc -l | tr -d ' '
  2

The document is valid JSON — fsdata's own parser ingests it (this is
what Perfetto and chrome://tracing load):

  $ $FSDATA infer t.json > /dev/null && echo loadable
  loadable

The provider and codegen stages are traced as well:

  $ $FSDATA codegen --trace ct.json a.json > /dev/null
  $ grep -o '"name":"[^"]*"' ct.json | sort -u
  "name":"cli.read"
  "name":"codegen.generate"
  "name":"infer.chunk"
  "name":"parse.json"
  "name":"provide"
