Schema evolution end to end: a client program compiled against an old
stream version is rewritten to the current one over /migrate, version
bumps are observed live with fsdata watch (long-poll) and delivered
durably to webhooks — surviving a kill -9 of the server between the
registration ack and delivery. See docs/EVOLUTION.md.

  $ FSDATA=../../bin/fsdata.exe

  $ $FSDATA serve --port 0 --port-file port --workers 3 --state-dir state > serve.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 150); do [ -s port ] && break; sleep 0.1; done
  $ PORT=$(cat port)
  $ URL="http://127.0.0.1:$PORT"

Two pushes establish version 1 and grow it to version 2:

  $ curl -s --data-binary '{"name": "ada"}' "$URL/streams/people/push" | grep '"version"'
    "version": 1,
  $ curl -s --data-binary '{"name": "alan", "age": 36}' "$URL/streams/people/push" | grep '"version"'
    "version": 2,

/migrate rewrites a program compiled against version 1 to the current
provided type (Remark 1: the three coercion rules), returning the
rewritten program and its unchanged type — the service re-checks the
result against the new shape before answering:

  $ printf 'y.Name' | curl -s --data-binary @- "$URL/streams/people/migrate?since=1"
  {
    "stream": "people",
    "from_version": 1,
    "to_version": 2,
    "old_shape": "• {name: string}",
    "new_shape": "• {name: string, age: nullable int}",
    "program": "y.Name",
    "type": "string"
  }

A program that never checked against the old shape is refused with 422;
a version the stream never reached is 404:

  $ printf 'y.Age' | curl -s -w '%{http_code}\n' -o /dev/null --data-binary @- "$URL/streams/people/migrate?since=1"
  422
  $ printf 'y.Name' | curl -s -w '%{http_code}\n' -o /dev/null --data-binary @- "$URL/streams/people/migrate?since=9"
  404

fsdata watch long-polls /watch. Behind the current version it answers
immediately with the missed bump:

  $ $FSDATA watch people --url "$URL" --since 1
  people v2 • {name: string, age: nullable int}

Parked at the current version, it is woken by the next push — the
watcher below sees version 3 the moment the shape grows:

  $ $FSDATA watch people --url "$URL" --since 2 --timeout-ms 15000 > watch.out &
  $ WPID=$!
  $ sleep 0.3
  $ curl -s --data-binary '{"name": "x", "tags": ["a"]}' "$URL/streams/people/push" | grep '"version"'
    "version": 3,
  $ wait $WPID
  $ cat watch.out
  people v3 • {name: string, age: nullable int, tags: [string, 1?]}

Webhooks: registration is durable (WAL) before it is acknowledged, and
the delivery cursor starts at the current version — only later bumps
are delivered. The sink here is the server's own /cache/invalidate
endpoint, which answers 200:

  $ curl -s -X POST "$URL/streams/people/hooks?url=$URL/cache/invalidate" | sed "s/$PORT/PORT/"
  {
    "stream": "people",
    "version": 3,
    "hooks": [
      {
        "url": "http://127.0.0.1:PORT/cache/invalidate",
        "delivered": 3
      }
    ]
  }

The next bump is delivered asynchronously; the per-hook cursor advances
once the sink acknowledges:

  $ curl -s --data-binary '{"name": "x", "score": 1.5}' "$URL/streams/people/push" | grep '"version"'
    "version": 4,
  $ for i in $(seq 1 150); do curl -s "$URL/streams/people/hooks" | grep -q '"delivered": 4' && break; sleep 0.1; done
  $ curl -s "$URL/streams/people/hooks" | grep -o '"delivered": 4'
  "delivered": 4

kill -9 in the delivery window: push version 5 and kill the server
before the hook is (necessarily) delivered — the bump is acknowledged
durable, the delivery is not:

  $ curl -s --data-binary '{"name": "x", "opt": true}' "$URL/streams/people/push" | grep '"version"'
    "version": 5,
  $ curl -s "$URL/streams/people/history" > before.json
  $ kill -9 $SRV
  $ wait $SRV 2>/dev/null
  [137]
  $ rm -f port

Restart on the same state directory and port: versions and hooks are
recovered byte-identically, and the supervised delivery worker resumes
from the durable cursor — at-least-once, no skipped version:

  $ $FSDATA serve --port $PORT --port-file port --workers 3 --state-dir state > serve2.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 150); do [ -s port ] && break; sleep 0.1; done
  $ curl -s "$URL/streams/people/history" > after.json
  $ diff before.json after.json && echo recovered
  recovered
  $ for i in $(seq 1 150); do curl -s "$URL/streams/people/hooks" | grep -q '"delivered": 5' && break; sleep 0.1; done
  $ curl -s "$URL/streams/people/hooks" | sed "s/$PORT/PORT/"
  {
    "stream": "people",
    "version": 5,
    "hooks": [
      {
        "url": "http://127.0.0.1:PORT/cache/invalidate",
        "delivered": 5
      }
    ]
  }

…and the migrated program tracks the recovered history — version 1 is
still migratable after the crash:

  $ printf 'y.Name' | curl -s --data-binary @- "$URL/streams/people/migrate?since=1" | grep -E '"(to_version|program|type)"'
    "to_version": 5,
    "program": "y.Name",
    "type": "string"

SIGTERM drains cleanly:

  $ kill -TERM $SRV
  $ wait $SRV
  $ sed 's/:[0-9]*$/:PORT/' serve2.log
  fsdata: serving on http://127.0.0.1:PORT
  fsdata: shutting down
