Shape-compiled parsing at the CLI: --compiled drives the corpus through
a parser compiled from the shape (lib/core/shape_compile). The printed
output must be byte-identical to the interpreted path — the compiled
engine's outcome surfaces only in the compile.* metrics. See
docs/COMPILED_PARSERS.md.

  $ FSDATA=../../bin/fsdata.exe
  $ DATA=../../examples/data

Inference over the worldbank sample is byte-identical with and without
--compiled, and the document decodes on the direct path (no fallback):

  $ $FSDATA infer $DATA/worldbank.json > plain.out
  $ $FSDATA infer --compiled --metrics metrics.json $DATA/worldbank.json > compiled.out
  $ cmp plain.out compiled.out
  $ grep -E '"compile\.(docs_direct|docs_fallback|parsers)"' metrics.json
    "compile.docs_direct": 1,
    "compile.docs_fallback": 0,
    "compile.parsers": 1,

Conformance checking likewise — same verdict bytes either way:

  $ printf '[ { "name": "ada", "age": 3 } ]\n' > ok.json
  $ $FSDATA check -i ok.json $DATA/people.json > check_plain.out
  $ $FSDATA check -i ok.json --compiled $DATA/people.json > check_compiled.out
  $ cmp check_plain.out check_compiled.out
  $ cat check_compiled.out
  OK: the input's shape is preferred over the samples' shape;
  by relative safety (Theorem 3) all provided accesses are safe.

A mid-document shape mismatch must not desynchronize the compiled
decoder: in a three-document stream whose middle document violates the
shape, the decoder falls back for that document only and resumes the
direct path at the next top-level boundary — exactly Json.Cursor's
recovering discipline. (The strict checker then rejects the multi-doc
stream deterministically; the resynchronization is visible in the
metrics: two direct documents around one fallback.)

  $ cat > stream.json <<'EOF'
  > {"name": "ada", "age": 36}
  > {"name": 42}
  > {"name": "grace", "age": 41}
  > EOF
  $ $FSDATA check --shape '{name: string, age: nullable float}' --compiled --metrics metrics.json -i stream.json
  fsdata: JSON parse error at line 2, column 1: trailing content after JSON value: '{'
  [124]
  $ grep -E '"compile\.(docs_direct|docs_fallback)"' metrics.json
    "compile.docs_direct": 2,
    "compile.docs_fallback": 1,

--compiled is a practical-mode JSON engine; other formats and modes are
rejected up front:

  $ $FSDATA check -i $DATA/another.xml --compiled $DATA/sample.xml
  fsdata: --compiled applies to JSON samples
  [124]
  $ $FSDATA infer --compiled --paper $DATA/worldbank.json
  fsdata: --compiled uses practical-mode JSON semantics and applies to neither --global nor --paper
  [124]
  $ $FSDATA infer --compiled --global $DATA/worldbank.json
  fsdata: --compiled uses practical-mode JSON semantics and applies to neither --global nor --paper
  [124]
