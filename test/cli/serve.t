fsdata serve: the HTTP inference service with its digest-keyed response
cache, driven end to end on an ephemeral port. See docs/SERVING.md.

  $ FSDATA=../../bin/fsdata.exe

Start the server on port 0 (kernel-assigned); it writes the real port to
--port-file once the socket is bound, so there is no race on readiness:

  $ $FSDATA serve --port 0 --port-file port --workers 2 > serve.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 150); do [ -s port ] && break; sleep 0.1; done
  $ URL="http://127.0.0.1:$(cat port)"

Liveness:

  $ curl -s "$URL/healthz"
  {
    "status": "ok"
  }

Shape inference over a JSON corpus posted as the request body — the
response carries the shape in the paper's notation plus the tolerant
ingestion report:

  $ printf '{"name": "ada", "age": 36}\n' > a.json
  $ printf '{"name": "grace"}\n' > b.json
  $ cat a.json b.json > corpus.json
  $ curl -s --data-binary @corpus.json "$URL/infer"
  {
    "format": "json",
    "shape": "• {name: string, age: nullable int}",
    "total": 2,
    "quarantined": 0,
    "samples": []
  }

The served shape is byte-identical to the CLI inference path over the
same samples:

  $ curl -s --data-binary @corpus.json "$URL/infer" | sed -n 's/^  "shape": "\(.*\)",$/\1/p'
  • {name: string, age: nullable int}
  $ $FSDATA infer a.json b.json
  • {name: string, age: nullable int}

A repeated corpus is answered from the LRU cache — the diagnostic header
says so, and the body above is already known to be byte-identical (the
sed extraction re-hit it). A different corpus is a different digest:

  $ curl -sD - -o /dev/null --data-binary @corpus.json "$URL/infer" | tr -d '\r' | grep x-fsdata-cache
  x-fsdata-cache: hit
  $ printf '{"x": 1}\n' > other.json
  $ curl -sD - -o /dev/null --data-binary @other.json "$URL/infer" | tr -d '\r' | grep x-fsdata-cache
  x-fsdata-cache: miss

Tolerant ingestion rides through the query string: with an error budget
a corrupt document is quarantined and reported, not fatal:

  $ printf '{"name": "ada"}\n{"name": }\n{"name": "bob"}\n' > faulty.json
  $ curl -s --data-binary @faulty.json "$URL/infer?max-errors=1"
  {
    "format": "json",
    "shape": "• {name: string}",
    "total": 3,
    "quarantined": 1,
    "samples": [
      {
        "index": 1,
        "line": 2,
        "column": 10,
        "message": "unexpected character '}'"
      }
    ]
  }

Without a budget the same corpus is rejected:

  $ curl -s -o /dev/null -w '%{http_code}\n' --data-binary @faulty.json "$URL/infer"
  422

Conformance checking (the shape parameter is the paper notation,
percent-encoded):

  $ curl -s --data-binary @a.json "$URL/check?shape=%7Bname%3A%20string%2C%20age%3A%20nullable%20int%7D"
  {
    "has_shape": true,
    "preferred": true,
    "input_shape": "• {name: string, age: int}",
    "shape": "• {name: string, age: nullable int}"
  }

  $ curl -s --data-binary '{"name": 42}' "$URL/explain?shape=%7Bname%3A%20string%7D"
  {
    "input_shape": "• {name: int}",
    "shape": "• {name: string}",
    "mismatches": [
      {
        "at": ".name",
        "input": "int",
        "expected": "string",
        "reason": "no primitive conversion (rules 1, Section 6.2)"
      }
    ]
  }

The metrics endpoint exposes the serve.* instrument family next to the
pipeline's own counters:

  $ curl -s "$URL/metrics" | sed -n 's/^  "\(serve\.[^"]*\)": .*/\1/p'
  serve.cache.evictions
  serve.cache.hits
  serve.cache.invalidations
  serve.cache.misses
  serve.connections
  serve.deadline_expired
  serve.faults.injected
  serve.http_errors
  serve.inflight
  serve.inflight_bytes
  serve.latency_ms.count
  serve.latency_ms.max
  serve.latency_ms.mean
  serve.latency_ms.min
  serve.latency_ms.sum
  serve.plan_cache.hits
  serve.plan_cache.misses
  serve.requests.check
  serve.requests.explain
  serve.requests.healthz
  serve.requests.infer
  serve.requests.metrics
  serve.requests.other
  serve.requests.query
  serve.requests.stream
  serve.responses.2xx
  serve.responses.4xx
  serve.responses.5xx
  serve.shed_total
  serve.stream.bodies
  serve.worker.crashes

Request and cache counters are deterministic for the sequence above:
six /infer requests, of which two were cache hits:

  $ curl -s "$URL/metrics" | grep -E '"serve\.(cache\.(hits|misses)|requests\.infer)"'
    "serve.cache.hits": 2,
    "serve.cache.misses": 4,
    "serve.requests.infer": 6,

SIGTERM drains in-flight work and exits cleanly:

  $ kill -TERM $SRV
  $ wait $SRV
  $ sed 's/:[0-9]*$/:PORT/' serve.log
  fsdata: serving on http://127.0.0.1:PORT
  fsdata: shutting down
