Fault-tolerant corpus ingestion: error budgets, quarantine and structured
diagnostics.

  $ FSDATA=../../bin/fsdata.exe

Ten single-document sample files, two of them malformed (a truncated
document and a missing field separator):

  $ for i in 0 1 2 4 5 6 8 9; do printf '{"id": %d, "name": "u%d"}\n' $i $i > s$i.json; done
  $ printf '{"id": 3, "name": ' > s3.json
  $ printf '{"id": 7, "name"  "u7"}\n' > s7.json

Without --max-errors the pipeline is strict, byte-identical to what it
always did: the first fault aborts the run.

  $ $FSDATA infer s3.json s0.json
  fsdata: JSON parse error at line 1, column 19: unexpected end of input
  [124]

With an error budget the faulty samples are quarantined: the shape is
inferred from the eight clean samples, the skipped documents and a
machine-readable report land in the quarantine directory, and the exit
code (3) is distinct from both success (0) and conformance failure (1):

  $ $FSDATA infer --max-errors 2 --quarantine q s?.json
  • {id: int, name: string}
  fsdata: quarantined 2 of 10 samples (report in q/report.json)
  [3]

  $ ls q
  report.json
  sample-3.json
  sample-7.json

  $ cat q/report.json
  {
    "total": 10,
    "quarantined": 2,
    "budget": "2",
    "samples": [
      {
        "index": 3,
        "format": "json",
        "line": 1,
        "column": 19,
        "severity": "error",
        "message": "unexpected end of input",
        "source": "s3.json",
        "file": "sample-3.json"
      },
      {
        "index": 7,
        "format": "json",
        "line": 1,
        "column": 19,
        "severity": "error",
        "message": "expected ':' but found '\"'",
        "source": "s7.json",
        "file": "sample-7.json"
      }
    ]
  }

The quarantined samples are preserved verbatim for later triage:

  $ cat q/sample-3.json
  {"id": 3, "name": 

Parallel chunked inference quarantines the same samples with the same
global indices:

  $ $FSDATA infer --jobs 3 --max-errors 2 s?.json > par.out 2> par.err; echo "exit $?"
  exit 3
  $ $FSDATA infer --max-errors 2 s?.json > seq.out 2> seq.err; echo "exit $?"
  exit 3
  $ cmp seq.out par.out && cmp seq.err par.err

A percentage budget works the same way:

  $ $FSDATA infer --max-errors 20% s?.json > /dev/null
  fsdata: quarantined 2 of 10 samples
  [3]

One fault over budget fails the whole run, naming the first offender:

  $ $FSDATA infer --max-errors 1 s?.json
  fsdata: error budget exceeded: 2 of 10 samples malformed (budget 1); first: JSON parse error at line 1, column 19: unexpected end of input (document 3)
  [124]

A quarantine directory makes no sense without a budget:

  $ $FSDATA infer --quarantine q s0.json
  fsdata: --quarantine requires --max-errors
  [124]

Streaming ingestion (several documents per file) resynchronizes at the
next top-level document boundary, so one corrupt document costs one
sample, not the rest of the stream:

  $ printf '{"v": 1}\n{"v" 2}\n{"v": 3}\n{"v": 4}\n' > stream.json
  $ $FSDATA infer --max-errors 1 stream.json
  • {v: int}
  fsdata: quarantined 1 of 4 samples
  [3]
