fsdata serve --state-dir: the durable live shape registry, driven end to
end — incremental pushes, version bumps only on strict growth, a kill -9
with recovery from the write-ahead log, and version diffs. See
docs/REGISTRY.md.

  $ FSDATA=../../bin/fsdata.exe

Start the server with a state directory; streams now survive restarts:

  $ $FSDATA serve --port 0 --port-file port --workers 2 --state-dir state > serve.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 150); do [ -s port ] && break; sleep 0.1; done
  $ URL="http://127.0.0.1:$(cat port)"

The first push creates the stream and bumps it to version 1:

  $ curl -s --data-binary '{"name": "ada"}' "$URL/streams/people/push"
  {
    "stream": "people",
    "version": 1,
    "pushes": 1,
    "shape": "• {name: string}",
    "total": 1,
    "quarantined": 0
  }

A push whose shape is already subsumed is folded in O(merge) without a
version bump — the document is tallied, the contract is unchanged:

  $ curl -s --data-binary '{"name": "grace"}' "$URL/streams/people/push"
  {
    "stream": "people",
    "version": 1,
    "pushes": 2,
    "shape": "• {name: string}",
    "total": 1,
    "quarantined": 0
  }

Strict growth under the preference order bumps the version:

  $ curl -s --data-binary '{"name": "alan", "age": 36}' "$URL/streams/people/push"
  {
    "stream": "people",
    "version": 2,
    "pushes": 3,
    "shape": "• {name: string, age: nullable int}",
    "total": 1,
    "quarantined": 0
  }

The current shape, in the paper notation or as a JSON Schema:

  $ curl -s "$URL/streams/people/shape"
  {
    "stream": "people",
    "version": 2,
    "pushes": 3,
    "shape": "• {name: string, age: nullable int}"
  }

  $ curl -s "$URL/streams/people/shape?format=schema"
  {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "properties": {
      "name": {
        "type": "string"
      },
      "age": {
        "anyOf": [
          {
            "type": "integer"
          },
          {
            "type": "null"
          }
        ]
      }
    },
    "required": [
      "name"
    ]
  }

A second read is served from the cache; a push supersedes it:

  $ curl -sD - -o /dev/null "$URL/streams/people/shape" | tr -d '\r' | grep x-fsdata-cache
  x-fsdata-cache: hit
  $ curl -s -o /dev/null --data-binary '{"name": "x"}' "$URL/streams/people/push"
  $ curl -sD - -o /dev/null "$URL/streams/people/shape" | tr -d '\r' | grep x-fsdata-cache
  x-fsdata-cache: miss

One history entry per version bump:

  $ curl -s "$URL/streams/people/history"
  {
    "stream": "people",
    "version": 2,
    "history": [
      {
        "version": 1,
        "seq": 1,
        "shape": "• {name: string}"
      },
      {
        "version": 2,
        "seq": 3,
        "shape": "• {name: string, age: nullable int}"
      }
    ]
  }

The diff between versions, rendered with Explain — growing a nullable
field is backward-compatible, so there are no mismatches to report:

  $ curl -s "$URL/streams/people/diff?from=1&to=2"
  {
    "stream": "people",
    "from": 1,
    "to": 2,
    "from_shape": "• {name: string}",
    "to_shape": "• {name: string, age: nullable int}",
    "grew": true,
    "changes": []
  }

One writer per state directory: a second server pointed at the same
--state-dir is refused at startup (the WAL is exclusively locked)
instead of silently interleaving appends with the first:

  $ $FSDATA serve --port 0 --state-dir state 2>&1 | grep -o "locked by another registry"
  locked by another registry

kill -9: the process dies with no chance to clean up…

  $ kill -9 $SRV
  $ wait $SRV
  [137]
  $ rm -f port

…and a restart on the same state directory recovers every acknowledged
push from the WAL, byte-identically:

  $ $FSDATA serve --port 0 --port-file port --workers 2 --state-dir state > serve2.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 150); do [ -s port ] && break; sleep 0.1; done
  $ URL="http://127.0.0.1:$(cat port)"
  $ curl -s "$URL/streams/people/shape"
  {
    "stream": "people",
    "version": 2,
    "pushes": 4,
    "shape": "• {name: string, age: nullable int}"
  }

Replay is idempotent: re-pushing an already-merged shape cannot move the
version (csh is a least upper bound):

  $ curl -s --data-binary '{"name": "ada", "age": 1}' "$URL/streams/people/push" | grep '"version"'
    "version": 2,

Explicit cache invalidation:

  $ curl -s -o /dev/null "$URL/streams/people/shape"
  $ curl -s -X POST "$URL/cache/invalidate?stream=people"
  {
    "invalidated": 1
  }

SIGTERM drains cleanly:

  $ kill -TERM $SRV
  $ wait $SRV
  $ sed 's/:[0-9]*$/:PORT/' serve2.log
  fsdata: serving on http://127.0.0.1:PORT
  fsdata: shutting down
