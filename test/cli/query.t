fsdata query: typed queries over corpora, checked against the inferred
shape before a single corpus byte is read, evaluated by the reference
engine or (--compiled) the shape-compiled one. See docs/QUERY.md.

  $ FSDATA=../../bin/fsdata.exe

  $ cat > people.json <<'EOF'
  > {"name": "ada", "age": 36, "city": "london"}
  > {"name": "bob", "age": 25, "city": "york"}
  > {"name": "grace", "city": "rome"}
  > EOF

Filter and project; rows stream out as one JSON document per line:

  $ $FSDATA query -q 'where .age >= 30 | select .name, .age' people.json
  {"name":"ada","age":36}

The two engines produce byte-identical rows:

  $ $FSDATA query -q 'where .age >= 30 | select .name, .age' people.json > ref.out
  $ $FSDATA query --compiled -q 'where .age >= 30 | select .name, .age' people.json > fast.out
  $ cmp ref.out fast.out

A missing optional field is nullable in σ, so comparing it with null is
well-typed, and projecting it yields an explicit null:

  $ $FSDATA query -q 'where .age == null | select .name, .age' people.json
  {"name":"grace","age":null}

map rebases the row; count replaces the rows by their number:

  $ $FSDATA query -q 'where exists .age | map .name' people.json
  "ada"
  "bob"
  $ $FSDATA query -q 'count' people.json
  3

--stats reports the scan accounting on stderr; take stops the scan as
soon as the bound is met:

  $ $FSDATA query --stats -q 'map .name | take 1' people.json
  "ada"
  query: scanned 1, rows 1, skipped 0, malformed 0

An ill-typed query is rejected with the offending path and the shape
that was found — exit code 2, distinct from parse (124) and runtime
failures:

  $ $FSDATA query -q 'where .zip == 1' people.json
  query rejected: at .zip: expected a record with a field 'zip', found • {name: string, age: nullable int, city: string}
  [2]

  $ $FSDATA query -q 'where .name < 3' people.json
  query rejected: at .name: expected a numeric shape (int or float), found string
  [2]

With --shape the check happens against the given σ before the corpus is
even opened — the corpus file here does not exist:

  $ $FSDATA query --shape '{name: string}' -q 'where .zip == 1' nonexistent.json
  query rejected: at .zip: expected a record with a field 'zip', found • {name: string}
  [2]

A query that does not parse reports the offset:

  $ $FSDATA query -q 'where .age >' people.json
  fsdata: query parse error at offset 12: expected a literal (null, true, false, a number or a string)
  [124]

The same queries over HTTP. Start a server:

  $ $FSDATA serve --port 0 --port-file port --workers 2 > serve.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 150); do [ -s port ] && break; sleep 0.1; done
  $ URL="http://127.0.0.1:$(cat port)"

POST /query infers σ from the body, checks the query, and answers rows
plus accounting; compiled=1 selects the fast engine:

  $ curl -s --data-binary @people.json "$URL/query?q=where+.age+%3E%3D+30+%7C+select+.name"
  {
    "engine": "eval",
    "output_shape": "• {name: string}",
    "rows": [
      {
        "name": "ada"
      }
    ],
    "scanned": 3,
    "matched": 1,
    "skipped": 0,
    "malformed": 0
  }

  $ curl -s --data-binary @people.json "$URL/query?q=count&compiled=1" | grep -E '"(engine|rows)"|^  [0-9]'
    "engine": "eval_fast",
    "rows": [

An ill-typed query is a 400 carrying the diagnostic fields:

  $ curl -s -o /dev/null -w '%{http_code}\n' --data-binary @people.json "$URL/query?q=where+.zip+%3D%3D+1"
  400
  $ curl -s --data-binary @people.json "$URL/query?q=where+.zip+%3D%3D+1" | grep '"at"'
    "at": ".zip",

A repeated request is answered from the response cache, byte-identical:

  $ curl -s -D h1 -o r1 --data-binary @people.json "$URL/query?q=count"
  $ curl -s -D h2 -o r2 --data-binary @people.json "$URL/query?q=count"
  $ grep -i x-fsdata-cache h1 | tr -d '\r'
  x-fsdata-cache: miss
  $ grep -i x-fsdata-cache h2 | tr -d '\r'
  x-fsdata-cache: hit
  $ cmp r1 r2

Stream queries are checked against the stream's current shape. Version
1 knows only .name, so a query over .age is rejected:

  $ curl -s --data-binary '{"name": "ada"}' "$URL/streams/people/push" | grep version
    "version": 1,
  $ curl -s -o /dev/null -w '%{http_code}\n' --data-binary @people.json "$URL/streams/people/query?q=where+.age+%3E%3D+30"
  400

After growth the stream re-checks against the new σ — the plan cache is
keyed by version, so the stale rejection cannot be served:

  $ curl -s --data-binary '{"name": "alan", "age": 36}' "$URL/streams/people/push" | grep version
    "version": 2,
  $ curl -s --data-binary @people.json "$URL/streams/people/query?q=where+.age+%3E%3D+30+%7C+count&compiled=1" | grep -E '"(version|engine|matched)"'
    "version": 2,
    "engine": "eval_fast",
    "matched": 1,

A push invalidates the stream's cached query responses:

  $ curl -s -D qh1 -o /dev/null --data-binary @people.json "$URL/streams/people/query?q=count"
  $ curl -s -D qh2 -o /dev/null --data-binary @people.json "$URL/streams/people/query?q=count"
  $ grep -i x-fsdata-cache qh1 | tr -d '\r'
  x-fsdata-cache: miss
  $ grep -i x-fsdata-cache qh2 | tr -d '\r'
  x-fsdata-cache: hit
  $ curl -s -o /dev/null --data-binary '{"name": "y"}' "$URL/streams/people/push"
  $ curl -s -D qh3 -o /dev/null --data-binary @people.json "$URL/streams/people/query?q=count"
  $ grep -i x-fsdata-cache qh3 | tr -d '\r'
  x-fsdata-cache: miss

  $ kill $SRV 2> /dev/null
  $ wait $SRV 2> /dev/null || true
