(* CSV parser and Section 6.2 row-record mapping tests. *)

module Dv = Fsdata_data.Data_value
module Csv = Fsdata_data.Csv
open Generators

let check = Alcotest.check
let tc = Alcotest.test_case

let rows_t = Alcotest.(list (list string))

let test_basic () =
  let t = Csv.parse "a,b,c\n1,2,3\n4,5,6\n" in
  check (Alcotest.list Alcotest.string) "headers" [ "a"; "b"; "c" ] t.Csv.headers;
  check rows_t "rows" [ [ "1"; "2"; "3" ]; [ "4"; "5"; "6" ] ] t.Csv.rows

let test_quoting () =
  let t = Csv.parse "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n\"multi\nline\",z\n" in
  check rows_t "quoted cells"
    [ [ "x,y"; {|say "hi"|} ]; [ "multi\nline"; "z" ] ]
    t.Csv.rows

let test_crlf () =
  let t = Csv.parse "a,b\r\n1,2\r\n" in
  check rows_t "CRLF endings" [ [ "1"; "2" ] ] t.Csv.rows

let test_separator () =
  let t = Csv.parse ~separator:';' "a;b\n1;2\n" in
  check rows_t "semicolon" [ [ "1"; "2" ] ] t.Csv.rows

let test_no_headers () =
  let t = Csv.parse ~has_headers:false "1,2\n3,4\n" in
  check
    (Alcotest.list Alcotest.string)
    "synthetic headers" [ "Column1"; "Column2" ] t.Csv.headers;
  check rows_t "all rows are data" [ [ "1"; "2" ]; [ "3"; "4" ] ] t.Csv.rows

let test_short_rows_padded () =
  let t = Csv.parse "a,b,c\n1\n" in
  check rows_t "padded" [ [ "1"; ""; "" ] ] t.Csv.rows

let test_empty_lines_skipped () =
  let t = Csv.parse "a,b\n\n1,2\n\n" in
  check rows_t "blank lines skipped" [ [ "1"; "2" ] ] t.Csv.rows

let test_empty_input () =
  let t = Csv.parse "" in
  check (Alcotest.list Alcotest.string) "no headers" [] t.Csv.headers;
  check rows_t "no rows" [] t.Csv.rows

let test_missing_final_newline () =
  let t = Csv.parse "a,b\n1,2" in
  check rows_t "last row kept" [ [ "1"; "2" ] ] t.Csv.rows

let test_errors () =
  (match Csv.parse_result "a,b\n1,2,3\n" with
  | Error msg ->
      check Alcotest.bool "row too long" true
        (Astring.String.is_infix ~affix:"3 cells" msg)
  | Ok _ -> Alcotest.fail "expected error");
  match Csv.parse_result "a\n\"unterminated\n" with
  | Error msg ->
      check Alcotest.bool "unterminated quote" true
        (Astring.String.is_infix ~affix:"unterminated" msg)
  | Ok _ -> Alcotest.fail "expected error"

let test_to_data () =
  let t = Csv.parse "x,y\n1,#N/A\n2.5,hi\n" in
  let row fields = Dv.Record (Dv.csv_record_name, fields) in
  check data_testable "typed rows"
    (Dv.List
       [
         row [ ("x", Dv.Int 1); ("y", Dv.Null) ];
         row [ ("x", Dv.Float 2.5); ("y", Dv.String "hi") ];
       ])
    (Csv.to_data t);
  check data_testable "raw rows"
    (Dv.List
       [
         row [ ("x", Dv.String "1"); ("y", Dv.String "#N/A") ];
         row [ ("x", Dv.String "2.5"); ("y", Dv.String "hi") ];
       ])
    (Csv.to_data ~convert_primitives:false t)

let test_roundtrip () =
  let t = Csv.parse "a,b\n\"x,y\",2\nplain,\"q\"\"q\"\n" in
  let t2 = Csv.parse (Csv.to_string t) in
  check rows_t "print-parse stable" t.Csv.rows t2.Csv.rows;
  check (Alcotest.list Alcotest.string) "headers stable" t.Csv.headers t2.Csv.headers

let suite =
  [
    tc "basic table" `Quick test_basic;
    tc "RFC 4180 quoting" `Quick test_quoting;
    tc "CRLF line endings" `Quick test_crlf;
    tc "custom separator" `Quick test_separator;
    tc "no headers" `Quick test_no_headers;
    tc "short rows padded" `Quick test_short_rows_padded;
    tc "empty lines skipped" `Quick test_empty_lines_skipped;
    tc "empty input" `Quick test_empty_input;
    tc "missing final newline" `Quick test_missing_final_newline;
    tc "errors" `Quick test_errors;
    tc "to_data (Section 6.2)" `Quick test_to_data;
    tc "serialize round-trip" `Quick test_roundtrip;
  ]
