(** An append-only write-ahead log of opaque records.

    On disk a record is framed as

    {v
      +----------------+----------------+-------------------+
      | length, u32 LE | CRC-32, u32 LE | payload (length)  |
      +----------------+----------------+-------------------+
    v}

    where the checksum covers the payload bytes (CRC-32/IEEE, the
    polynomial used by gzip). Appends go through the {!Fault_fs} shim,
    so the chaos suite can tear them mid-frame; the fsync policy decides
    whether an append is durable before it returns.

    Recovery ({!open_}) scans the file from the start and accepts the
    longest prefix of well-formed records: a frame that runs past the
    end of the file, or whose checksum does not match, marks the {e torn
    tail} — everything from its first byte on is truncated away, never
    parsed. This is the only repair the log ever performs; it makes a
    crash mid-append indistinguishable from the append never having
    happened, which is exactly the registry's applied-or-absent
    contract (docs/REGISTRY.md). *)

type fsync_policy =
  [ `Always  (** fsync after every append — a returned append is durable *)
  | `Never  (** leave durability to the OS; for benchmarks and tests *) ]

type t

type recovery = {
  records : string list;  (** payloads of the valid prefix, oldest first *)
  truncated_bytes : int;  (** torn-tail bytes cut off, 0 on a clean log *)
}

val crc32 : string -> int
(** CRC-32/IEEE of the whole string, as a non-negative int. *)

val frame : string -> string
(** The on-disk framing of one payload (length, checksum, payload) —
    also used for the snapshot file, which is a single framed record. *)

val scan_one : string -> string option
(** Parse a string holding exactly one framed record (a snapshot file);
    [None] if the frame is short, overlong, or fails its checksum. *)

val open_ : ?fault:Fault_fs.t -> fsync:fsync_policy -> string -> t * recovery
(** Open (creating if absent) the log at the given path, recover its
    valid prefix, truncate any torn tail, and position for appending.
    The recovered payloads are returned for the caller to replay.

    The log is exclusively held for the handle's lifetime — an
    inter-process [lockf] over the whole file plus an in-process table
    (POSIX locks do not conflict between fds of one process). A second
    open of the same path, from this process or another, raises
    [Failure] instead of silently interleaving appends; the lock is
    released by {!close}, or by the kernel if the process dies. *)

val append : t -> string -> unit
(** Frame and append one record; under [`Always] the bytes are fsynced
    before returning. Raises whatever the {!Fault_fs} shim injects —
    a raised append is not acknowledged, and before the error
    propagates the file is rolled back ([ftruncate]) to the
    acknowledged prefix, so a short write or failed fsync never leaves
    torn or unacknowledged bytes for later acked appends to land
    behind. If that rollback itself fails the log is {e wedged}: every
    further append raises [EIO] rather than risk appending after a
    torn frame that recovery would truncate away. *)

val records : t -> int
(** Records in the current segment: recovered at {!open_} plus appended
    since, minus none — {!reset} starts the count over. *)

val size_bytes : t -> int
(** Bytes in the current segment. *)

val sync : t -> unit
(** fsync the log fd regardless of policy. *)

val reset : t -> unit
(** Truncate the log to empty — the compaction step after a snapshot
    has made its records redundant. Goes through the shim's truncate
    fault queue. *)

val close : t -> unit
