module Shape = Fsdata_core.Shape
module Csh = Fsdata_core.Csh
module Shape_parser = Fsdata_core.Shape_parser
module Metrics = Fsdata_obs.Metrics
module Trace = Fsdata_obs.Trace

(* --- instruments (docs/OBSERVABILITY.md, "registry.*") --- *)

let m_pushes = Metrics.counter "registry.pushes"
let m_bumps = Metrics.counter "registry.version_bumps"
let m_snapshots = Metrics.counter "registry.snapshots"
let m_snapshot_failures = Metrics.counter "registry.snapshot_failures"
let g_streams = Metrics.gauge "registry.streams"

type hook = { url : string; delivered : int }

type stream = {
  name : string;
  version : int;
  seq : int;
  pushes : int;
  shape : Shape.t;
  history : (int * int * Shape.t) list;
  hooks : hook list;
}

type t = {
  dir : string option;
  fault : Fault_fs.t option;
  fsync : Wal.fsync_policy;
  snapshot_every : int;
  history_limit : int;
  lock : Mutex.t;
  streams : (string, stream) Hashtbl.t;
  mutable wal : Wal.t option;
  mutable listener : (stream -> unit) option;
}

(* Stream names are str16-framed in the codec; a longer name would
   encode a truncated length whose decode misparses — a poison pill
   that permanently blocks recovery — so pushes reject it up front. *)
let max_name_length = 0xFFFF

let fresh_stream name =
  {
    name;
    version = 0;
    seq = 0;
    pushes = 0;
    shape = Shape.Bottom;
    history = [];
    hooks = [];
  }

(* The one fold both live pushes and WAL replay go through, so replay is
   the in-memory fold by construction (property-tested in
   test/test_registry.ml). csh is the LUB of Lemma 1, hence the merged
   shape always satisfies old ⊑ merged and "strictly grew" is just
   inequality. Shapes are interned: streams live for the process and
   their sub-shapes repeat across versions. *)
(* History is a bounded window: only the newest [limit] bumps are
   retained (oldest evicted first), so a long-lived frequently-growing
   stream cannot grow its snapshots — or the per-bump append cost —
   without bound. *)
let trim_history limit h =
  let excess = List.length h - limit in
  if excess <= 0 then h else List.filteri (fun i _ -> i >= excess) h

let apply ~limit st ~seq ~count delta =
  let merged = Shape.hcons (Csh.csh st.shape delta) in
  let grew = not (Shape.equal merged st.shape) in
  let version = if grew then st.version + 1 else st.version in
  {
    st with
    seq;
    pushes = st.pushes + count;
    shape = merged;
    version;
    history =
      (if grew then trim_history limit (st.history @ [ (version, seq, merged) ])
       else st.history);
  }

(* --- the binary codec ---

   Strings are length-prefixed (u16 for names, u32 for shape text);
   integers are little-endian. Shapes travel as the paper notation,
   which round-trips exactly through Shape_parser (the pinned
   [parse (to_string s) = s] property). Checksums live one layer down,
   in the WAL framing — a payload that reaches the codec is bit-exact,
   so a decode failure here is corruption or version skew and raises
   [Failure] rather than guessing. *)

let add_str16 b s =
  if String.length s > max_name_length then
    invalid_arg "registry: string too long for u16 framing";
  Buffer.add_int16_le b (String.length s);
  Buffer.add_string b s

let add_str32 b s =
  Buffer.add_int32_le b (Int32.of_int (String.length s));
  Buffer.add_string b s

let add_int b n = Buffer.add_int64_le b (Int64.of_int n)

type cursor = { text : string; mutable off : int }

let fail_corrupt what = failwith (Printf.sprintf "registry: corrupt %s" what)

let take c n what =
  if c.off + n > String.length c.text then fail_corrupt what
  else begin
    let s = String.sub c.text c.off n in
    c.off <- c.off + n;
    s
  end

let get_u16 c what =
  if c.off + 2 > String.length c.text then fail_corrupt what
  else begin
    let n = Char.code c.text.[c.off] lor (Char.code c.text.[c.off + 1] lsl 8) in
    c.off <- c.off + 2;
    n
  end

let get_u32 c what =
  let s = take c 4 what in
  Int32.to_int (String.get_int32_le s 0) land 0xFFFFFFFF

let get_int c what =
  let s = take c 8 what in
  Int64.to_int (String.get_int64_le s 0)

let get_str16 c what = take c (get_u16 c what) what
let get_str32 c what = take c (get_u32 c what) what

let get_shape c what =
  match Shape_parser.parse_result (get_str32 c what) with
  | Ok s -> Shape.hcons s
  | Error m -> fail_corrupt (what ^ ": " ^ m)

(* Push record: tag, stream name, per-stream seq, document count, the
   delta shape. The delta — not the merged result — is logged, so the
   log is literally a replayable trace of the fold. *)
let record_tag = '\001'

let encode_record ~name ~seq ~count delta =
  let b = Buffer.create 64 in
  Buffer.add_char b record_tag;
  add_str16 b name;
  add_int b seq;
  add_int b count;
  add_str32 b (Shape.to_string delta);
  Buffer.contents b

let decode_record payload =
  let c = { text = payload; off = 0 } in
  if take c 1 "record tag" <> String.make 1 record_tag then
    fail_corrupt "record tag";
  let name = get_str16 c "record name" in
  let seq = get_int c "record seq" in
  let count = get_int c "record count" in
  let delta = get_shape c "record shape" in
  (name, seq, count, delta)

(* Hook records: webhook subscriptions ride in the same WAL as pushes,
   so they share its durability story. Unlike pushes they carry no seq —
   every hook mutation is idempotent on its own (set-add, set-remove,
   cursor-max), which makes replay across the compaction crash window
   safe without bookkeeping. The add record stores the delivery cursor
   at registration time: recomputing it at replay would silently skip
   any version pushed between registration and the crash. *)
let hook_add_tag = '\003'
let hook_remove_tag = '\004'
let hook_ack_tag = '\005'

let encode_hook_add ~name ~url ~delivered =
  let b = Buffer.create 64 in
  Buffer.add_char b hook_add_tag;
  add_str16 b name;
  add_str16 b url;
  add_int b delivered;
  Buffer.contents b

let encode_hook_remove ~name ~url =
  let b = Buffer.create 64 in
  Buffer.add_char b hook_remove_tag;
  add_str16 b name;
  add_str16 b url;
  Buffer.contents b

let encode_hook_ack ~name ~url ~version =
  let b = Buffer.create 64 in
  Buffer.add_char b hook_ack_tag;
  add_str16 b name;
  add_str16 b url;
  add_int b version;
  Buffer.contents b

let decode_hook_add payload =
  let c = { text = payload; off = 1 } in
  let name = get_str16 c "hook name" in
  let url = get_str16 c "hook url" in
  let delivered = get_int c "hook delivered" in
  (name, url, delivered)

let decode_hook_remove payload =
  let c = { text = payload; off = 1 } in
  let name = get_str16 c "hook name" in
  let url = get_str16 c "hook url" in
  (name, url)

let decode_hook_ack payload =
  let c = { text = payload; off = 1 } in
  let name = get_str16 c "hook name" in
  let url = get_str16 c "hook url" in
  let version = get_int c "hook ack version" in
  (name, url, version)

(* Snapshot: every stream in full, history included. The current shape
   is not stored separately — it is the last history entry (or ⊥). *)
let snapshot_tag = '\002'

let encode_snapshot streams =
  let b = Buffer.create 256 in
  Buffer.add_char b snapshot_tag;
  add_int b (List.length streams);
  List.iter
    (fun st ->
      add_str16 b st.name;
      add_int b st.seq;
      add_int b st.version;
      add_int b st.pushes;
      add_int b (List.length st.history);
      List.iter
        (fun (version, seq, shape) ->
          add_int b version;
          add_int b seq;
          add_str32 b (Shape.to_string shape))
        st.history;
      add_int b (List.length st.hooks);
      List.iter
        (fun h ->
          add_str16 b h.url;
          add_int b h.delivered)
        st.hooks)
    streams;
  Buffer.contents b

let decode_snapshot payload =
  let c = { text = payload; off = 0 } in
  if take c 1 "snapshot tag" <> String.make 1 snapshot_tag then
    fail_corrupt "snapshot tag";
  let n = get_int c "snapshot stream count" in
  List.init n (fun _ ->
      let name = get_str16 c "snapshot stream name" in
      let seq = get_int c "snapshot seq" in
      let version = get_int c "snapshot version" in
      let pushes = get_int c "snapshot pushes" in
      let entries = get_int c "snapshot history length" in
      let history =
        List.init entries (fun _ ->
            let version = get_int c "history version" in
            let seq = get_int c "history seq" in
            let shape = get_shape c "history shape" in
            (version, seq, shape))
      in
      let hook_count = get_int c "snapshot hook count" in
      let hooks =
        List.init hook_count (fun _ ->
            let url = get_str16 c "snapshot hook url" in
            let delivered = get_int c "snapshot hook delivered" in
            { url; delivered })
      in
      let shape =
        match List.rev history with (_, _, s) :: _ -> s | [] -> Shape.Bottom
      in
      { name; version; seq; pushes; shape; history; hooks })

(* --- persistence plumbing --- *)

let wal_path dir = Filename.concat dir "wal.log"
let snapshot_path dir = Filename.concat dir "snapshot.bin"
let snapshot_tmp_path dir = Filename.concat dir "snapshot.tmp"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Directory fsync, so the snapshot rename itself is durable. Best
   effort: not every filesystem supports fsync on a directory fd. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let set_streams_gauge t =
  Metrics.gauge_set g_streams (float_of_int (Hashtbl.length t.streams))

(* A snapshot is loaded whole before its frame is checked; the file is
   written via atomic rename, so it is either a complete old snapshot or
   a complete new one — a frame that does not verify is corruption. *)
let load_snapshot t path =
  let text = read_file path in
  match Wal.scan_one text with
  | Some payload ->
      List.iter
        (fun st ->
          (* a snapshot taken under a larger limit re-trims on load *)
          Hashtbl.replace t.streams st.name
            { st with history = trim_history t.history_limit st.history })
        (decode_snapshot payload)
  | None -> fail_corrupt "snapshot frame"

let stream_or_fresh t name =
  match Hashtbl.find_opt t.streams name with
  | Some st -> st
  | None -> fresh_stream name

let replay_record t payload =
  if payload = "" then fail_corrupt "empty record";
  match payload.[0] with
  | c when c = record_tag ->
      let name, seq, count, delta = decode_record payload in
      let st = stream_or_fresh t name in
      (* seq dedup makes replay idempotent across the compaction crash
         window where the WAL still holds records the snapshot covers *)
      if seq > st.seq then
        Hashtbl.replace t.streams name
          (apply ~limit:t.history_limit st ~seq ~count delta)
  | c when c = hook_add_tag ->
      (* idempotent set-add; the recorded cursor wins only on first
         sight, so a re-added hook keeps any later acked progress *)
      let name, url, delivered = decode_hook_add payload in
      let st = stream_or_fresh t name in
      if not (List.exists (fun h -> h.url = url) st.hooks) then
        Hashtbl.replace t.streams name
          { st with hooks = st.hooks @ [ { url; delivered } ] }
  | c when c = hook_remove_tag ->
      let name, url = decode_hook_remove payload in
      let st = stream_or_fresh t name in
      Hashtbl.replace t.streams name
        { st with hooks = List.filter (fun h -> h.url <> url) st.hooks }
  | c when c = hook_ack_tag ->
      (* cursor-max: replaying an already-covered ack changes nothing *)
      let name, url, version = decode_hook_ack payload in
      let st = stream_or_fresh t name in
      Hashtbl.replace t.streams name
        {
          st with
          hooks =
            List.map
              (fun h ->
                if h.url = url then { h with delivered = max h.delivered version }
                else h)
              st.hooks;
        }
  | _ -> fail_corrupt "record tag"

let open_ ?fault ?(fsync = `Always) ?(snapshot_every = 512)
    ?(history_limit = 256) ~dir () =
  let t =
    {
      dir;
      fault;
      fsync;
      snapshot_every = max 1 snapshot_every;
      history_limit = max 1 history_limit;
      lock = Mutex.create ();
      streams = Hashtbl.create 16;
      wal = None;
      listener = None;
    }
  in
  (match dir with
  | None -> ()
  | Some d ->
      Trace.with_span "registry.recover" @@ fun () ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o755;
      (* an interrupted compaction may have left a partial tmp; the
         committed snapshot is whatever snapshot.bin names *)
      (try Sys.remove (snapshot_tmp_path d) with Sys_error _ -> ());
      if Sys.file_exists (snapshot_path d) then
        load_snapshot t (snapshot_path d);
      let wal, recovery = Wal.open_ ?fault ~fsync (wal_path d) in
      t.wal <- Some wal;
      List.iter (replay_record t) recovery.Wal.records);
  set_streams_gauge t;
  t

let do_snapshot t =
  match (t.dir, t.wal) with
  | Some d, Some wal ->
      Trace.with_span "registry.snapshot" @@ fun () ->
      let payload =
        encode_snapshot
          (Hashtbl.fold (fun _ st acc -> st :: acc) t.streams []
          |> List.sort (fun a b -> compare a.name b.name))
      in
      let tmp = snapshot_tmp_path d in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let framed = Wal.frame payload in
          let pos = ref 0 in
          while !pos < String.length framed do
            match
              Fault_fs.write_substring t.fault fd framed !pos
                (String.length framed - !pos)
            with
            | n -> pos := !pos + n
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done;
          Fault_fs.fsync t.fault fd);
      Fault_fs.rename t.fault tmp (snapshot_path d);
      fsync_dir d;
      (* from here on the snapshot is the truth; the WAL records are
         redundant (and harmless: replay skips their seqs) *)
      Wal.reset wal;
      Metrics.incr m_snapshots
  | _ -> ()

(* Compaction is an optimization, not part of the push contract: an
   I/O failure inside it leaves a recoverable state (the seq dedup
   covers every window), so it must not fail the push that triggered
   it. A Crash is not caught — it is the simulated death of the
   process. *)
let maybe_snapshot t =
  match t.wal with
  | Some wal when Wal.records wal >= t.snapshot_every -> (
      try do_snapshot t
      with Unix.Unix_error _ -> Metrics.incr m_snapshot_failures)
  | _ -> ()

let push t ~stream:name ?(count = 1) delta =
  if String.length name > max_name_length then
    invalid_arg
      (Printf.sprintf "Registry.push: stream name is %d bytes (max %d)"
         (String.length name) max_name_length);
  Trace.with_span "registry.push" @@ fun () ->
  let st', bumped =
    Mutex.protect t.lock @@ fun () ->
    let st =
      match Hashtbl.find_opt t.streams name with
      | Some st -> st
      | None -> fresh_stream name
    in
    let seq = st.seq + 1 in
    (* WAL first, memory second: a raised append leaves the in-memory
       state at the last acknowledged push *)
    (match t.wal with
    | Some wal -> Wal.append wal (encode_record ~name ~seq ~count delta)
    | None -> ());
    let st' = apply ~limit:t.history_limit st ~seq ~count delta in
    Hashtbl.replace t.streams name st';
    set_streams_gauge t;
    Metrics.incr m_pushes;
    if st'.version > st.version then Metrics.incr m_bumps;
    maybe_snapshot t;
    (st', st'.version > st.version)
  in
  (* the bump listener runs outside the lock: it may call back into the
     registry (find, ack_delivery) without deadlocking *)
  (if bumped then match t.listener with Some f -> f st' | None -> ());
  st'

let set_listener t f = t.listener <- Some f

(* --- webhook subscriptions --- *)

let check_hook_args ~name ~url =
  if String.length name > max_name_length then
    invalid_arg "Registry hook: stream name too long for u16 framing";
  if String.length url > max_name_length then
    invalid_arg "Registry hook: url too long for u16 framing"

let add_hook t ~stream:name ~url =
  check_hook_args ~name ~url;
  Mutex.protect t.lock @@ fun () ->
  let st = stream_or_fresh t name in
  match List.find_opt (fun h -> h.url = url) st.hooks with
  | Some _ -> st (* idempotent: re-registration keeps the cursor *)
  | None ->
      (* the cursor starts at the current version: a hook hears about
         bumps from registration onward, never the back catalogue *)
      let delivered = st.version in
      (match t.wal with
      | Some wal -> Wal.append wal (encode_hook_add ~name ~url ~delivered)
      | None -> ());
      let st' = { st with hooks = st.hooks @ [ { url; delivered } ] } in
      Hashtbl.replace t.streams name st';
      set_streams_gauge t;
      maybe_snapshot t;
      st'

let remove_hook t ~stream:name ~url =
  check_hook_args ~name ~url;
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.streams name with
  | None -> None
  | Some st ->
      if List.exists (fun h -> h.url = url) st.hooks then begin
        (match t.wal with
        | Some wal -> Wal.append wal (encode_hook_remove ~name ~url)
        | None -> ());
        let st' =
          { st with hooks = List.filter (fun h -> h.url <> url) st.hooks }
        in
        Hashtbl.replace t.streams name st';
        maybe_snapshot t;
        Some st'
      end
      else Some st

let ack_delivery t ~stream:name ~url ~version =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.streams name with
  | None -> ()
  | Some st -> (
      match List.find_opt (fun h -> h.url = url) st.hooks with
      | None -> ()
      | Some h when version <= h.delivered -> ()
      | Some _ ->
          (* WAL first, memory second, like a push: an unacked delivery
             cursor is redelivered after a crash — at-least-once *)
          (match t.wal with
          | Some wal -> Wal.append wal (encode_hook_ack ~name ~url ~version)
          | None -> ());
          Hashtbl.replace t.streams name
            {
              st with
              hooks =
                List.map
                  (fun h ->
                    if h.url = url then
                      { h with delivered = max h.delivered version }
                    else h)
                  st.hooks;
            };
          maybe_snapshot t)

let find t name = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.streams name)

let list t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun _ st acc -> st :: acc) t.streams []
      |> List.sort (fun a b -> compare a.name b.name))

let version_shape st v =
  if v = 0 then Some Shape.Bottom
  else
    List.find_opt (fun (version, _, _) -> version = v) st.history
    |> Option.map (fun (_, _, shape) -> shape)

let oldest_retained st =
  match st.history with (v, _, _) :: _ -> v | [] -> st.version

let version_status st v =
  if v < 0 || v > st.version then `Unknown
  else match version_shape st v with Some s -> `Shape s | None -> `Evicted

let snapshot t = Mutex.protect t.lock (fun () -> do_snapshot t)

let wal_records t =
  Mutex.protect t.lock (fun () ->
      match t.wal with Some wal -> Wal.records wal | None -> 0)

let close t =
  Mutex.protect t.lock (fun () ->
      match t.wal with
      | Some wal ->
          Wal.close wal;
          t.wal <- None
      | None -> ())
