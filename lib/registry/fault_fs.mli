(** Test-only fault injection over file-system writes.

    The storage twin of [Fsdata_serve.Fault_net]: a shim between the
    registry's write-ahead log / snapshot machinery and the [Unix]
    file operations it durability depends on — [write], [fsync],
    [rename] and [ftruncate]. With no shim installed ([None]) the calls
    pass straight through at zero cost; with one, each operation first
    consumes the next queued fault for its kind (raising it) and
    otherwise proceeds, writes with their length clamped — short
    writes and torn record tails on demand. The storage-chaos suite
    ([test/test_chaos_fs.ml]) drives the registry through this shim to
    prove the WAL's recovery invariants: injected [EIO]/[ENOSPC] fail
    the push without corrupting state, a {!Kill} between the write and
    the fsync leaves a torn tail that recovery truncates, a kill
    anywhere inside snapshot compaction leaves a state that replays to
    exactly the last acknowledged version.

    Deterministic by construction: faults fire in queue order, one per
    operation, with no randomness and no clock. All bookkeeping is
    mutex-protected; one shim may serve several domains. Injections are
    counted in [registry.faults.injected]. *)

exception Crash
(** Not an I/O error: deliberately escapes every [Unix_error] recovery
    path to simulate the process dying (kill -9) at exactly this
    operation — between a write and its fsync, mid-rename, wherever the
    test queued it. The chaos tests catch it, re-open the state
    directory, and assert recovery. *)

(** One injected fault, consumed by the next matching operation:
    [Pass] performs the operation normally (a placeholder to aim a
    later fault at the n-th call), [Error e] raises
    [Unix.Unix_error (e, _, _)], [Kill] raises {!Crash}, [Delay s]
    stalls the call by [s] seconds and then performs it. *)
type fault = Pass | Error of Unix.error | Kill | Delay of float

type t

val create : unit -> t
(** A shim with no faults queued and no length clamp. *)

val set_max_write : t -> int -> unit
(** Clamp every subsequent write to at most [n] bytes (short writes, so
    multi-call record appends can be torn mid-record); [n < 1] removes
    the clamp. *)

val set_kill_after : t -> int -> unit
(** [set_kill_after t n] lets the next [n] faultable operations (of any
    kind, across all shimmed calls) proceed and raises {!Crash} on the
    one after — the primitive behind the chaos sweep that kills the
    registry at {e every} injection point in turn. A negative [n]
    disables the countdown. *)

val ops : t -> int
(** Faultable operations observed so far (fired or passed through). *)

val injected : t -> int
(** Faults fired so far ({!fault-Pass} does not count). *)

val inject_write : t -> fault list -> unit
(** Queue faults to be consumed, in order, by subsequent writes. *)

val inject_fsync : t -> fault list -> unit
val inject_rename : t -> fault list -> unit
val inject_truncate : t -> fault list -> unit

val write_substring : t option -> Unix.file_descr -> string -> int -> int -> int
(** [Unix.write_substring] through the shim; [None] is the production
    path. The clamp may return fewer bytes than asked — callers loop,
    which is exactly what lets a queued fault tear a record. *)

val fsync : t option -> Unix.file_descr -> unit
(** [Unix.fsync] through the shim. *)

val rename : t option -> string -> string -> unit
(** [Unix.rename] through the shim (the snapshot commit point). *)

val ftruncate : t option -> Unix.file_descr -> int -> unit
(** [Unix.ftruncate] through the shim (WAL reset after compaction). *)
