let m_injected = Fsdata_obs.Metrics.counter "registry.faults.injected"

exception Crash

type fault = Pass | Error of Unix.error | Kill | Delay of float

type t = {
  lock : Mutex.t;
  mutable max_write : int;
  mutable write_faults : fault list;
  mutable fsync_faults : fault list;
  mutable rename_faults : fault list;
  mutable truncate_faults : fault list;
  mutable kill_after : int;  (* negative = disabled *)
  mutable ops : int;
  mutable injected : int;
}

let create () =
  {
    lock = Mutex.create ();
    max_write = max_int;
    write_faults = [];
    fsync_faults = [];
    rename_faults = [];
    truncate_faults = [];
    kill_after = -1;
    ops = 0;
    injected = 0;
  }

let set_max_write t n =
  Mutex.protect t.lock (fun () -> t.max_write <- (if n < 1 then max_int else n))

let set_kill_after t n = Mutex.protect t.lock (fun () -> t.kill_after <- n)
let ops t = Mutex.protect t.lock (fun () -> t.ops)
let injected t = Mutex.protect t.lock (fun () -> t.injected)

let inject_write t faults =
  Mutex.protect t.lock (fun () -> t.write_faults <- t.write_faults @ faults)

let inject_fsync t faults =
  Mutex.protect t.lock (fun () -> t.fsync_faults <- t.fsync_faults @ faults)

let inject_rename t faults =
  Mutex.protect t.lock (fun () -> t.rename_faults <- t.rename_faults @ faults)

let inject_truncate t faults =
  Mutex.protect t.lock (fun () -> t.truncate_faults <- t.truncate_faults @ faults)

let count_injection t =
  t.injected <- t.injected + 1;
  Fsdata_obs.Metrics.incr m_injected

(* Account for one faultable operation and decide its fate: the
   kill-after countdown beats the per-kind queue (the sweep must kill at
   exactly the n-th operation whatever else is queued). *)
let next_fault t pick set =
  Mutex.protect t.lock (fun () ->
      t.ops <- t.ops + 1;
      if t.kill_after = 0 then begin
        t.kill_after <- -1;
        count_injection t;
        Some Kill
      end
      else begin
        if t.kill_after > 0 then t.kill_after <- t.kill_after - 1;
        match pick t with
        | [] -> None
        | f :: rest ->
            set t rest;
            (match f with Pass -> () | _ -> count_injection t);
            Some f
      end)

let rec fire t fault op =
  match fault with
  | None | Some Pass -> op ()
  | Some (Error e) -> raise (Unix.Unix_error (e, "fault_fs", ""))
  | Some Kill -> raise Crash
  | Some (Delay s) ->
      Unix.sleepf s;
      fire t None op

let write_substring t fd s pos len =
  match t with
  | None -> Unix.write_substring fd s pos len
  | Some t ->
      let fault =
        next_fault t
          (fun t -> t.write_faults)
          (fun t rest -> t.write_faults <- rest)
      in
      fire t fault (fun () ->
          Unix.write_substring fd s pos
            (Stdlib.min len (Mutex.protect t.lock (fun () -> t.max_write))))

let fsync t fd =
  match t with
  | None -> Unix.fsync fd
  | Some t ->
      let fault =
        next_fault t
          (fun t -> t.fsync_faults)
          (fun t rest -> t.fsync_faults <- rest)
      in
      fire t fault (fun () -> Unix.fsync fd)

let rename t src dst =
  match t with
  | None -> Unix.rename src dst
  | Some t ->
      let fault =
        next_fault t
          (fun t -> t.rename_faults)
          (fun t rest -> t.rename_faults <- rest)
      in
      fire t fault (fun () -> Unix.rename src dst)

let ftruncate t fd len =
  match t with
  | None -> Unix.ftruncate fd len
  | Some t ->
      let fault =
        next_fault t
          (fun t -> t.truncate_faults)
          (fun t rest -> t.truncate_faults <- rest)
      in
      fire t fault (fun () -> Unix.ftruncate fd len)
