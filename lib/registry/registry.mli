(** The durable live shape registry: incremental inference as a service.

    Lemma 1 makes [csh] an associative, commutative least upper bound,
    so a collection's shape is a {e mergeable accumulator}: the registry
    keeps one per named stream and folds each pushed document batch's
    shape into it in O(merge) — the corpus is never re-inferred. The
    stream's [version] bumps only when the fold {e strictly grows} the
    shape under the preferred-shape order ⊑ (since [csh] is the LUB, the
    merged shape always satisfies [old ⊑ merged]; strict growth is
    [not (Shape.equal merged old)]), and every bump is remembered, so
    clients can diff versions and migrate.

    With a state directory the registry is durable and crash-only:
    every push appends its {e delta} (the pushed shape, not the merged
    result) to a checksummed write-ahead log ({!Wal}) before the
    in-memory state changes, and recovery replays the log over the last
    snapshot. Replay is made exactly idempotent by per-stream sequence
    numbers — a record whose [seq] the snapshot already covers is
    skipped — so every crash window of the compaction protocol (see
    docs/REGISTRY.md) recovers to precisely the last acknowledged
    state: an unacknowledged push is either fully applied or absent,
    never a torn shape. The lattice gives the same guarantee a second
    way: re-folding an already-merged delta cannot change the shape or
    the version, because [csh] is idempotent.

    All operations are serialized under one mutex; a server's worker
    domains share a single registry. *)

module Shape := Fsdata_core.Shape

type t

type stream = {
  name : string;
  version : int;  (** 0 for a fresh stream (shape ⊥); bumps on strict growth *)
  seq : int;  (** sequence number of the last applied push record *)
  pushes : int;  (** documents folded in (batch pushes count their size) *)
  shape : Shape.t;  (** the running csh fold *)
  history : (int * int * Shape.t) list;
      (** one entry per version bump, oldest first: (version, seq, shape).
          A bounded window — only the newest [history_limit] bumps are
          retained (see {!open_}) *)
}

val open_ :
  ?fault:Fault_fs.t ->
  ?fsync:Wal.fsync_policy ->
  ?snapshot_every:int ->
  ?history_limit:int ->
  dir:string option ->
  unit ->
  t
(** [open_ ~dir:(Some d) ()] opens (creating as needed) the state
    directory [d]: loads [snapshot.bin] if present, discards any
    [snapshot.tmp] from an interrupted compaction, recovers [wal.log]
    — truncating a torn tail — and replays its records. [~dir:None] is
    a purely in-memory registry (the server runs one when no
    [--state-dir] is given). [fsync] defaults to [`Always];
    [snapshot_every] (default 512) is the WAL record count that
    triggers compaction; [history_limit] (default 256) caps the version
    bumps each stream retains — and therefore what snapshots persist —
    evicting the oldest, so long-lived growing streams stay bounded.

    The WAL is exclusively held (see {!Wal.open_}): a second open of
    the same state directory, from this process or another, raises
    [Failure] instead of corrupting it. Also raises [Failure] on a
    snapshot or record that passes its checksum but does not decode —
    that is corruption, not a crash, and the registry refuses to
    guess. *)

val push : t -> stream:string -> ?count:int -> Shape.t -> stream
(** [push t ~stream delta] folds [delta] into the stream's shape
    (creating the stream at version 0 / ⊥ on first contact) and returns
    the resulting state. Durability before acknowledgement: the WAL
    record is appended — and, under [`Always], fsynced — before the
    in-memory state changes, so if [push] raises (injected [EIO],
    [ENOSPC], a {!Fault_fs.Crash}) the in-memory state is unchanged and
    the on-disk tail is at worst torn, which recovery truncates.
    [count] (default 1) is the number of documents the delta
    summarizes, for the [pushes] tally. If an append fails with an I/O
    error the WAL is rolled back to the acknowledged prefix before the
    error propagates, so a failed push never strands torn bytes for
    later acked pushes to land behind. Raises [Invalid_argument] on a
    stream name longer than 65535 bytes — it would not survive the
    codec's u16 framing (unreachable over HTTP, where the request line
    is capped far lower). *)

val find : t -> string -> stream option
val list : t -> stream list
(** All streams, sorted by name. *)

val version_shape : stream -> int -> Shape.t option
(** The shape the stream had at a version: [Some Bottom] for version 0,
    the recorded history entry for bumped versions, [None] for versions
    the stream never reached — or whose entry the bounded history has
    already evicted. *)

val snapshot : t -> unit
(** Force compaction now: serialize every stream into [snapshot.tmp],
    fsync, atomically rename over [snapshot.bin], then truncate the
    WAL. A no-op for in-memory registries. Crash windows are analyzed
    in docs/REGISTRY.md; each recovers to the same logical state. *)

val wal_records : t -> int
(** Records in the current WAL segment (0 for in-memory registries);
    exposed for tests and the compaction trigger. *)

val close : t -> unit
