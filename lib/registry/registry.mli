(** The durable live shape registry: incremental inference as a service.

    Lemma 1 makes [csh] an associative, commutative least upper bound,
    so a collection's shape is a {e mergeable accumulator}: the registry
    keeps one per named stream and folds each pushed document batch's
    shape into it in O(merge) — the corpus is never re-inferred. The
    stream's [version] bumps only when the fold {e strictly grows} the
    shape under the preferred-shape order ⊑ (since [csh] is the LUB, the
    merged shape always satisfies [old ⊑ merged]; strict growth is
    [not (Shape.equal merged old)]), and every bump is remembered, so
    clients can diff versions and migrate.

    With a state directory the registry is durable and crash-only:
    every push appends its {e delta} (the pushed shape, not the merged
    result) to a checksummed write-ahead log ({!Wal}) before the
    in-memory state changes, and recovery replays the log over the last
    snapshot. Replay is made exactly idempotent by per-stream sequence
    numbers — a record whose [seq] the snapshot already covers is
    skipped — so every crash window of the compaction protocol (see
    docs/REGISTRY.md) recovers to precisely the last acknowledged
    state: an unacknowledged push is either fully applied or absent,
    never a torn shape. The lattice gives the same guarantee a second
    way: re-folding an already-merged delta cannot change the shape or
    the version, because [csh] is idempotent.

    All operations are serialized under one mutex; a server's worker
    domains share a single registry. *)

module Shape := Fsdata_core.Shape

type t

type hook = { url : string; delivered : int }
(** One webhook subscription: notification POSTs go to [url]; versions
    up to and including [delivered] have been acknowledged as delivered
    (the cursor starts at the stream version current at registration).
    Hooks are persisted through the WAL and snapshots, so they survive
    [kill -9] exactly like pushes do. *)

type stream = {
  name : string;
  version : int;  (** 0 for a fresh stream (shape ⊥); bumps on strict growth *)
  seq : int;  (** sequence number of the last applied push record *)
  pushes : int;  (** documents folded in (batch pushes count their size) *)
  shape : Shape.t;  (** the running csh fold *)
  history : (int * int * Shape.t) list;
      (** one entry per version bump, oldest first: (version, seq, shape).
          A bounded window — only the newest [history_limit] bumps are
          retained (see {!open_}) *)
  hooks : hook list;
      (** webhook subscriptions, registration order (docs/EVOLUTION.md) *)
}

val open_ :
  ?fault:Fault_fs.t ->
  ?fsync:Wal.fsync_policy ->
  ?snapshot_every:int ->
  ?history_limit:int ->
  dir:string option ->
  unit ->
  t
(** [open_ ~dir:(Some d) ()] opens (creating as needed) the state
    directory [d]: loads [snapshot.bin] if present, discards any
    [snapshot.tmp] from an interrupted compaction, recovers [wal.log]
    — truncating a torn tail — and replays its records. [~dir:None] is
    a purely in-memory registry (the server runs one when no
    [--state-dir] is given). [fsync] defaults to [`Always];
    [snapshot_every] (default 512) is the WAL record count that
    triggers compaction; [history_limit] (default 256) caps the version
    bumps each stream retains — and therefore what snapshots persist —
    evicting the oldest, so long-lived growing streams stay bounded.

    The WAL is exclusively held (see {!Wal.open_}): a second open of
    the same state directory, from this process or another, raises
    [Failure] instead of corrupting it. Also raises [Failure] on a
    snapshot or record that passes its checksum but does not decode —
    that is corruption, not a crash, and the registry refuses to
    guess. *)

val push : t -> stream:string -> ?count:int -> Shape.t -> stream
(** [push t ~stream delta] folds [delta] into the stream's shape
    (creating the stream at version 0 / ⊥ on first contact) and returns
    the resulting state. Durability before acknowledgement: the WAL
    record is appended — and, under [`Always], fsynced — before the
    in-memory state changes, so if [push] raises (injected [EIO],
    [ENOSPC], a {!Fault_fs.Crash}) the in-memory state is unchanged and
    the on-disk tail is at worst torn, which recovery truncates.
    [count] (default 1) is the number of documents the delta
    summarizes, for the [pushes] tally. If an append fails with an I/O
    error the WAL is rolled back to the acknowledged prefix before the
    error propagates, so a failed push never strands torn bytes for
    later acked pushes to land behind. Raises [Invalid_argument] on a
    stream name longer than 65535 bytes — it would not survive the
    codec's u16 framing (unreachable over HTTP, where the request line
    is capped far lower). *)

val set_listener : t -> (stream -> unit) -> unit
(** [set_listener t f] registers [f] to be called (outside the registry
    lock, with the post-push state) after every push that {e bumps} the
    stream's version. One listener; the serve layer uses it to wake
    long-poll watchers and the webhook delivery worker. Replay during
    {!open_} never fires it — recovery is not growth. *)

val add_hook : t -> stream:string -> url:string -> stream
(** [add_hook t ~stream ~url] durably registers a webhook subscription
    (WAL append before the in-memory update, like a push) and returns
    the stream's state. Creates the stream at version 0 if it does not
    exist yet. Idempotent: re-registering an existing URL changes
    nothing and keeps its delivery cursor. The new hook's cursor starts
    at the current version — it will be notified of future bumps only.
    Raises [Invalid_argument] if the name or URL exceeds the codec's
    u16 framing (65535 bytes). *)

val remove_hook : t -> stream:string -> url:string -> stream option
(** Durably unregister; [None] if the stream does not exist. Removing a
    URL that was never registered is a no-op returning the stream. *)

val ack_delivery : t -> stream:string -> url:string -> version:int -> unit
(** [ack_delivery t ~stream ~url ~version] durably advances the hook's
    delivery cursor to [version] (cursor-max; a stale or duplicate ack
    is a no-op). Called by the delivery worker {e after} a successful
    POST, so a crash between delivery and ack redelivers — at-least-once
    semantics with no skipped versions. *)

val find : t -> string -> stream option
val list : t -> stream list
(** All streams, sorted by name. *)

val version_shape : stream -> int -> Shape.t option
(** The shape the stream had at a version: [Some Bottom] for version 0,
    the recorded history entry for bumped versions, [None] for versions
    the stream never reached — or whose entry the bounded history has
    already evicted. *)

val version_status : stream -> int -> [ `Shape of Shape.t | `Evicted | `Unknown ]
(** Like {!version_shape} but distinguishing the two [None] cases:
    [`Unknown] for a version the stream never reached (negative, or
    above the current version), [`Evicted] for one it did reach whose
    history entry the bounded window has dropped. The distinction is
    [/migrate]'s 404 vs 409. *)

val oldest_retained : stream -> int
(** The oldest version whose shape the bounded history still holds
    (0 for a stream that never bumped — version 0 is always ⊥). *)

val snapshot : t -> unit
(** Force compaction now: serialize every stream into [snapshot.tmp],
    fsync, atomically rename over [snapshot.bin], then truncate the
    WAL. A no-op for in-memory registries. Crash windows are analyzed
    in docs/REGISTRY.md; each recovers to the same logical state. *)

val wal_records : t -> int
(** Records in the current WAL segment (0 for in-memory registries);
    exposed for tests and the compaction trigger. *)

val close : t -> unit
