module Metrics = Fsdata_obs.Metrics

let m_appends = Metrics.counter "registry.wal.appends"
let m_bytes = Metrics.counter "registry.wal.bytes"
let m_fsyncs = Metrics.counter "registry.wal.fsyncs"
let m_recovered = Metrics.counter "registry.wal.recovered_records"
let m_truncated = Metrics.counter "registry.wal.truncated_bytes"

type fsync_policy = [ `Always | `Never ]

type t = {
  fd : Unix.file_descr;
  fault : Fault_fs.t option;
  fsync : fsync_policy;
  lock_key : string;
  mutable wedged : bool;
  mutable records : int;
  mutable size : int;
}

type recovery = { records : string list; truncated_bytes : int }

(* CRC-32/IEEE (reflected, polynomial 0xEDB88320), table-driven. OCaml's
   63-bit ints hold the 32-bit state directly. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let header_bytes = 8

(* Little-endian u32 read as a non-negative int. *)
let get_u32 s off =
  Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

(* Scan [text] and return (payloads of the valid prefix, offset of the
   first byte that is not part of a well-formed record). *)
let scan text =
  let len = String.length text in
  let rec go acc off =
    if off + header_bytes > len then (List.rev acc, off)
    else
      let n = get_u32 text off in
      let crc = get_u32 text (off + 4) in
      if off + header_bytes + n > len then (List.rev acc, off)
      else
        let payload = String.sub text (off + header_bytes) n in
        if crc32 payload <> crc then (List.rev acc, off)
        else go (payload :: acc) (off + header_bytes + n)
  in
  go [] 0

let scan_one text =
  match scan text with
  | [ payload ], good_end when good_end = String.length text -> Some payload
  | _ -> None

let read_whole fd =
  let size = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create size in
  let pos = ref 0 in
  (try
     while !pos < size do
       match Unix.read fd buf !pos (size - !pos) with
       | 0 -> raise Exit
       | n -> pos := !pos + n
     done
   with Exit -> ());
  Bytes.sub_string buf 0 !pos

(* One writer per log, enforced twice over. Across processes: an
   exclusive lockf over the whole file, held for the fd's lifetime and
   released by the kernel if the process dies — so a second server
   pointed at the same --state-dir (operator error, an overlapping
   restart) fails fast instead of interleaving appends, while kill -9
   never blocks recovery. Within a process: POSIX record locks do not
   conflict between fds of the same process (and closing *any* fd for
   the file would drop them), so in-process exclusion is a global table
   claimed before the file is even opened. *)
let held : (string, unit) Hashtbl.t = Hashtbl.create 4
let held_mutex = Mutex.create ()

let canonical path =
  (* the log may not exist yet; resolve its directory instead *)
  match Unix.realpath (Filename.dirname path) with
  | d -> Filename.concat d (Filename.basename path)
  | exception Unix.Unix_error _ -> path

let claim key =
  Mutex.protect held_mutex (fun () ->
      if Hashtbl.mem held key then false
      else begin
        Hashtbl.add held key ();
        true
      end)

let release key = Mutex.protect held_mutex (fun () -> Hashtbl.remove held key)

let locked_failure path =
  Failure
    (Printf.sprintf
       "wal: %s is locked by another registry (is a second server running \
        on this state directory?)"
       path)

let open_ ?fault ~fsync path =
  let lock_key = canonical path in
  if not (claim lock_key) then raise (locked_failure path);
  let fd =
    match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
    | fd -> fd
    | exception e ->
        release lock_key;
        raise e
  in
  (match Unix.lockf fd Unix.F_TLOCK 0 with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      release lock_key;
      raise (locked_failure path)
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      release lock_key;
      raise e);
  let text = read_whole fd in
  let records, good_end = scan text in
  let truncated = String.length text - good_end in
  if truncated > 0 then begin
    (* the torn tail is repaired with plain Unix calls: recovery is not
       a fault-injection point, the crash already happened *)
    Unix.ftruncate fd good_end;
    Unix.fsync fd
  end;
  ignore (Unix.lseek fd good_end Unix.SEEK_SET);
  Metrics.add m_recovered (List.length records);
  Metrics.add m_truncated truncated;
  ( {
      fd;
      fault;
      fsync;
      lock_key;
      wedged = false;
      records = List.length records;
      size = good_end;
    },
    { records; truncated_bytes = truncated } )

let write_all t s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Fault_fs.write_substring t.fault t.fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let frame payload =
  let b = Buffer.create (String.length payload + header_bytes) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (crc32 payload));
  Buffer.add_string b payload;
  Buffer.contents b

let sync_fd t =
  Fault_fs.fsync t.fault t.fd;
  Metrics.incr m_fsyncs

(* A failed append must not leave bytes past the acknowledged prefix:
   recovery keeps the longest valid prefix, so a torn frame sitting
   *between* acked records (a short write followed by ENOSPC, say)
   would make the next recovery silently discard every acked push
   appended after it. Repair uses plain Unix calls — rolling back after
   a failure is not itself a fault-injection point. A frame that was
   fully written but whose fsync failed is rolled back too: it was
   never acknowledged, and leaving it would let its seq collide with
   the acked retry that follows. If even the rollback fails, the log is
   wedged and refuses all further appends rather than corrupt. *)
let rollback_to_acked t =
  match Unix.ftruncate t.fd t.size with
  | () -> ignore (Unix.lseek t.fd t.size Unix.SEEK_SET)
  | exception Unix.Unix_error _ -> t.wedged <- true

let append t payload =
  if t.wedged then
    raise (Unix.Unix_error (Unix.EIO, "Wal.append", "wedged after failed rollback"));
  let framed = frame payload in
  (try
     write_all t framed;
     match t.fsync with `Always -> sync_fd t | `Never -> ()
   with Unix.Unix_error _ as e ->
     (* Fault_fs.Crash deliberately skips this: the process is "dead",
        and recovery's prefix scan is what truncates its torn tail *)
     rollback_to_acked t;
     raise e);
  (* bookkeeping only after the record is (as durable as the policy
     makes it) on disk: a raised append leaves the counters at the
     acknowledged state, like the registry's own view *)
  t.records <- t.records + 1;
  t.size <- t.size + String.length framed;
  Metrics.incr m_appends;
  Metrics.add m_bytes (String.length framed)

let records (t : t) = t.records
let size_bytes (t : t) = t.size
let sync t = sync_fd t

let reset t =
  Fault_fs.ftruncate t.fault t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  (match t.fsync with `Always -> sync_fd t | `Never -> ());
  t.records <- 0;
  t.size <- 0

let close t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  release t.lock_key
