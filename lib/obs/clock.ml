external now_ns : unit -> (int64[@unboxed])
  = "fsdata_obs_clock_ns" "fsdata_obs_clock_ns_unboxed"
[@@noalloc]
