(** Counter / gauge / histogram registry for pipeline metrics.

    Instrumented modules create their instruments {e at module
    initialization} ([let c = Metrics.counter "parse.json.bytes"] at top
    level), so the set of registered names — and hence the key set of
    {!to_json} — is a property of the linked program, not of which code
    paths a particular run happened to take. The cram test
    [test/cli/observability.t] pins that key set; every name, with its
    unit and emitting module, is documented in [docs/OBSERVABILITY.md].

    Recording is {b off by default}: {!incr}, {!add}, {!observe} and
    {!time} cost one atomic load and a branch until {!set_enabled}
    turns recording on (the [obs] benchmark group measures this;
    see EXPERIMENTS.md). Counters are atomic and may be bumped from any
    domain; histograms take a mutex per observation and are meant for
    chunk-granularity events, not per-byte ones. *)

type counter
(** A monotonically increasing integer, safe to bump from any domain. *)

type histogram
(** A running summary (count / sum / min / max) of observed values. *)

type gauge
(** A value that can go up and down — e.g. the number of in-flight HTTP
    requests. Safe to move from any domain. Unlike counters and
    histograms, gauges are {e not} gated on {!enabled}: a gauge tracks
    live state (a request that began while recording was off still ends
    later), so conditional updates would let it drift negative. *)

val counter : string -> counter
(** [counter name] registers (or retrieves — registration is idempotent
    by name) the counter called [name]. Names are dot-separated,
    [<subsystem>.<metric>], e.g. ["infer.csh_merges"]. *)

val incr : counter -> unit
(** [incr c] adds 1 to [c] when recording is enabled; no-op otherwise. *)

val add : counter -> int -> unit
(** [add c n] adds [n ≥ 0] to [c] when recording is enabled. *)

val value : counter -> int
(** [value c] reads the current count (regardless of the enabled flag).
    Counters only grow between {!reset}s, so two reads [v1] then [v2]
    satisfy [v1 <= v2] — the monotonicity the unit tests pin. *)

val time : counter -> (unit -> 'a) -> 'a
(** [time c f] runs [f ()] and, when recording is enabled, adds the
    elapsed monotonic nanoseconds to [c]. Disabled, it is just [f ()] —
    no clock reads. *)

val histogram : string -> histogram
(** [histogram name] registers (idempotently) the histogram [name]. It
    exports as four keys: [name.count], [name.sum], [name.min],
    [name.max] (and [name.mean], derived). *)

val observe : histogram -> float -> unit
(** [observe h x] records one observation when recording is enabled. *)

val gauge : string -> gauge
(** [gauge name] registers (idempotently) the gauge [name]. It exports
    as a single [`Float] key. Gauges registered by {!gc_snapshot} share
    this namespace. *)

val gauge_set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
(** [gauge_add g d] moves [g] by [d] (negative to decrease); atomic, so
    balanced add/subtract pairs from concurrent domains cancel exactly. *)

val gauge_value : gauge -> float
(** The current level (regardless of the enabled flag). *)

val gc_snapshot : string -> unit
(** [gc_snapshot phase] captures [Gc.quick_stat] into gauges
    [gc.<phase>.minor_words], [gc.<phase>.major_words],
    [gc.<phase>.minor_collections], [gc.<phase>.major_collections] and
    [gc.<phase>.heap_words], when recording is enabled. The CLI
    snapshots the fixed phases [start], [work] and [render], keeping
    the exported key set deterministic. *)

val enabled : unit -> bool
(** [enabled ()] is [true] iff instruments are recording. *)

val set_enabled : bool -> unit
(** [set_enabled b] turns recording on or off process-wide. *)

val reset : unit -> unit
(** [reset ()] zeroes every registered instrument (registrations are
    kept). Not safe concurrently with recording domains. *)

val export : unit -> (string * [ `Int of int | `Float of float ]) list
(** [export ()] is every registered metric as a flat association list in
    strictly increasing key order — counters as [`Int], gauges and
    histogram components as [`Float] (except [.count], an [`Int]). *)

val to_json : unit -> string
(** [to_json ()] renders {!export} as a single flat JSON object whose
    keys appear in sorted order (stable across runs for cram tests). *)
