type span = {
  id : int;
  parent : int;
  name : string;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* One buffer per domain, touched only by its owner domain on the hot
   path; the global registry (guarded by a mutex) is appended to once
   per domain, on its first span, and read by {!spans} after workers
   have been joined. Buffers outlive their domain, which is exactly how
   a worker's spans survive [Domain.join]. *)
type buffer = {
  dom : int;
  mutable recorded : span list; (* finished spans, newest first *)
  mutable stack : int list; (* open span ids, innermost first *)
}

let registry : buffer list ref = ref []
let registry_mutex = Mutex.create ()
let next_id = Atomic.make 0

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let buf =
        { dom = (Domain.self () :> int); recorded = []; stack = [] }
      in
      Mutex.protect registry_mutex (fun () -> registry := buf :: !registry);
      buf)

let with_span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let buf = Domain.DLS.get buffer_key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match buf.stack with [] -> -1 | p :: _ -> p in
    buf.stack <- id :: buf.stack;
    let start_ns = Clock.now_ns () in
    let finish () =
      let dur_ns = Int64.sub (Clock.now_ns ()) start_ns in
      (match buf.stack with
      | top :: rest when top = id -> buf.stack <- rest
      | stack -> buf.stack <- List.filter (fun s -> s <> id) stack);
      buf.recorded <-
        { id; parent; name; domain = buf.dom; start_ns; dur_ns; args }
        :: buf.recorded
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let all_buffers () = Mutex.protect registry_mutex (fun () -> !registry)

let reset () =
  List.iter (fun b -> b.recorded <- []) (all_buffers ())

let spans () =
  all_buffers ()
  |> List.concat_map (fun b -> b.recorded)
  |> List.sort (fun a b ->
         match Int64.compare a.start_ns b.start_ns with
         | 0 -> Int.compare a.id b.id
         | c -> c)

let aggregate () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let count, total =
        match Hashtbl.find_opt tbl s.name with
        | Some (c, t) -> (c, t)
        | None -> (0, 0L)
      in
      Hashtbl.replace tbl s.name (count + 1, Int64.add total s.dur_ns))
    (spans ());
  Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* ----- Chrome trace_event export ----- *)

let escape_json buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_trace_event_json () =
  let ss = spans () in
  let base = match ss with [] -> 0L | s :: _ -> s.start_ns in
  let us ns = Int64.to_float ns /. 1e3 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n{\"name\":";
      escape_json buf s.name;
      (* ts/dur are microsecond floats; always print a fractional part so
         every event has the same JSON number shape *)
      Printf.ksprintf (Buffer.add_string buf)
        ",\"cat\":\"fsdata\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
        (us (Int64.sub s.start_ns base))
        (us s.dur_ns) s.domain;
      if s.args <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            escape_json buf k;
            Buffer.add_char buf ':';
            escape_json buf v)
          s.args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    ss;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
