(** Lightweight span-based tracing for the parse → infer → provide
    pipeline.

    A {e span} is a named interval of wall-clock time measured on the
    {!Clock} monotonic clock, with parent/child nesting inside a domain
    and explicit attribution across domains:

    - within one domain, spans nest through a per-domain stack — a span
      opened while another is running records that span as its parent;
    - each domain records into its {e own} buffer (no cross-domain
      contention on the hot path), and every span carries the integer id
      of the domain that produced it, so spans emitted by a worker
      spawned with [Domain.spawn] remain attributed to that worker after
      [Domain.join] — they never migrate into the joining domain's
      timeline. {!spans} merges all per-domain buffers; call it only
      after the workers have been joined.

    Tracing is {b off by default} and costs one atomic load and a branch
    per {!with_span} call when disabled (verified by the [obs] benchmark
    group; see EXPERIMENTS.md). Enable it with {!set_enabled} before the
    work to observe, then export with {!to_trace_event_json} — the
    Chrome [trace_event] format, loadable in Perfetto or
    [chrome://tracing]. The span naming scheme and a worked Perfetto
    walkthrough are documented in [docs/OBSERVABILITY.md]. *)

type span = {
  id : int;  (** unique within the process, allocation order *)
  parent : int;
      (** id of the enclosing span in the same domain, or [-1] for a
          root span (including the first span of a worker domain) *)
  name : string;  (** dot-separated stage name, e.g. ["infer.chunk"] *)
  domain : int;  (** id of the domain that recorded the span *)
  start_ns : int64;  (** {!Clock.now_ns} at entry *)
  dur_ns : int64;  (** inclusive duration in nanoseconds *)
  args : (string * string) list;
      (** free-form annotations shown by trace viewers, e.g.
          [("samples", "512")] *)
}

val enabled : unit -> bool
(** [enabled ()] is [true] iff spans are being recorded. *)

val set_enabled : bool -> unit
(** [set_enabled b] turns recording on or off process-wide. Toggling
    does not discard spans already recorded. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; when tracing is enabled, the call is
    recorded as a span named [name] covering [f]'s execution, nested
    under the innermost open span of the current domain. The span is
    recorded even when [f] raises (the exception is re-raised with its
    backtrace). When tracing is disabled this is just [f ()]. *)

val reset : unit -> unit
(** [reset ()] discards all recorded spans in every domain buffer.
    Call it between measured runs; do not call it while worker domains
    are still recording. *)

val spans : unit -> span list
(** [spans ()] merges every domain's buffer and returns all finished
    spans ordered by start time. Only spans whose {!with_span} call has
    returned are included. Call after joining any worker domains that
    recorded spans. *)

val aggregate : unit -> (string * int * int64) list
(** [aggregate ()] folds {!spans} into per-name totals:
    [(name, count, total_ns)], ordered by name. Nested spans are not
    deducted from their parents — totals are inclusive, like the flame
    view of a trace viewer. *)

val to_trace_event_json : unit -> string
(** [to_trace_event_json ()] renders {!spans} as a Chrome [trace_event]
    JSON document (["X"] complete events; [ts]/[dur] in microseconds
    relative to the earliest span; domain ids as [tid]). The result
    loads directly in Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev})
    and [chrome://tracing]. *)
