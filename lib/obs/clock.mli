(** Monotonic time source for the observability layer.

    All span timestamps and duration counters in {!Trace} and {!Metrics}
    come from this clock, never from the wall clock: a monotonic reading
    cannot go backwards under NTP adjustments, so durations are always
    non-negative and span orderings within a run are truthful. *)

val now_ns : unit -> int64
(** [now_ns ()] is the current reading of [CLOCK_MONOTONIC] in
    nanoseconds. The origin is unspecified (boot-relative on Linux);
    only differences between two readings are meaningful. The native
    code path is allocation-free. *)
