let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type counter = { c_name : string; cell : int Atomic.t }

type histogram = {
  h_name : string;
  lock : Mutex.t;
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

(* Registration happens at module-initialization time (single domain) or
   from {!gc_snapshot}; a mutex keeps the tables consistent anyway so
   late registration from a worker is not a data race. Instrument
   updates never touch the tables. *)
type gauge = { g_name : string; g_cell : float Atomic.t }

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 8
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; cell = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let incr c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell 1)
let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

let time c f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now_ns () in
    let finish () =
      ignore
        (Atomic.fetch_and_add c.cell
           (Int64.to_int (Int64.sub (Clock.now_ns ()) t0)))
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let histogram name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              lock = Mutex.create ();
              n = 0;
              sum = 0.;
              mn = infinity;
              mx = neg_infinity;
            }
          in
          Hashtbl.add histograms name h;
          h)

let observe h x =
  if Atomic.get enabled_flag then
    Mutex.protect h.lock (fun () ->
        h.n <- h.n + 1;
        h.sum <- h.sum +. x;
        if x < h.mn then h.mn <- x;
        if x > h.mx then h.mx <- x)

let gauge name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_cell = Atomic.make 0. } in
          Hashtbl.add gauges name g;
          g)

(* Gauges track live state (e.g. in-flight requests whose begin/end
   straddle a [set_enabled] flip), so updates are unconditional — gating
   them on the enabled flag could leave the level permanently skewed. *)
let gauge_set g v = Atomic.set g.g_cell v

let rec gauge_add g d =
  let v = Atomic.get g.g_cell in
  if not (Atomic.compare_and_set g.g_cell v (v +. d)) then gauge_add g d

let gauge_value g = Atomic.get g.g_cell
let set_gauge name v = gauge_set (gauge name) v

let gc_snapshot phase =
  if Atomic.get enabled_flag then begin
    let st = Gc.quick_stat () in
    let g field v = set_gauge (Printf.sprintf "gc.%s.%s" phase field) v in
    g "minor_words" st.Gc.minor_words;
    g "major_words" st.Gc.major_words;
    g "minor_collections" (float_of_int st.Gc.minor_collections);
    g "major_collections" (float_of_int st.Gc.major_collections);
    g "heap_words" (float_of_int st.Gc.heap_words)
  end

let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter
        (fun _ h ->
          Mutex.protect h.lock (fun () ->
              h.n <- 0;
              h.sum <- 0.;
              h.mn <- infinity;
              h.mx <- neg_infinity))
        histograms;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0.) gauges)

let export () =
  let entries =
    Mutex.protect registry_mutex (fun () ->
        let acc = ref [] in
        Hashtbl.iter
          (fun name c -> acc := (name, `Int (Atomic.get c.cell)) :: !acc)
          counters;
        Hashtbl.iter
          (fun name g -> acc := (name, `Float (Atomic.get g.g_cell)) :: !acc)
          gauges;
        Hashtbl.iter
          (fun name h ->
            let n, sum, mn, mx =
              Mutex.protect h.lock (fun () -> (h.n, h.sum, h.mn, h.mx))
            in
            let mn = if n = 0 then 0. else mn in
            let mx = if n = 0 then 0. else mx in
            let mean = if n = 0 then 0. else sum /. float_of_int n in
            acc :=
              (name ^ ".count", `Int n)
              :: (name ^ ".sum", `Float sum)
              :: (name ^ ".min", `Float mn)
              :: (name ^ ".max", `Float mx)
              :: (name ^ ".mean", `Float mean)
              :: !acc)
          histograms;
        !acc)
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  \"";
      Buffer.add_string buf name;
      Buffer.add_string buf "\": ";
      Buffer.add_string buf
        (match v with
        | `Int n -> string_of_int n
        | `Float f -> Printf.sprintf "%.3f" f))
    (export ());
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
