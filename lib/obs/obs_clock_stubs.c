/* Monotonic clock for span timestamps.

   CLOCK_MONOTONIC never jumps backwards under NTP slews or wall-clock
   changes, so span durations and orderings stay truthful — the property
   the tracing layer advertises. The unboxed native variant avoids a
   per-call int64 allocation on the instrumented hot paths. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

CAMLprim int64_t fsdata_obs_clock_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value fsdata_obs_clock_ns(value unit)
{
  return caml_copy_int64(fsdata_obs_clock_ns_unboxed(unit));
}
