(** Generating representative documents from shapes — the inverse of
    inference.

    [sample s] produces a data value that conforms to [s]:
    [Shape_check.has_shape s (sample s)] holds, and the inferred shape of
    the sample is preferred over [s] (both property-tested). Useful for
    producing documentation examples and test fixtures from a shape
    written in the paper notation, and for the [fsdata sample] command.

    Deterministic: the same shape always yields the same document (a
    small counter drives value variety, no global randomness). *)

val sample : ?seed:int -> Shape.t -> Fsdata_data.Data_value.t
(** Choices made:
    - primitives get simple witnesses ([bit0] ↦ 0, [date] ↦ an ISO date,
      [string] ↦ a short word varying with [seed]);
    - [nullable s] alternates between a witness of [s] and null;
    - records get a witness per field;
    - homogeneous collections get two elements (so repeated structure is
      visible); heterogeneous entries are witnessed per multiplicity —
      one element for [1], one for [1?], two for [*];
    - labelled tops are witnessed by their first label, or null when
      label-free;
    - [⊥] has no witness: it only occurs as the element of an empty
      collection, which is sampled as the empty list. [sample Bottom]
      itself raises [Invalid_argument]. *)

val samples : ?count:int -> Shape.t -> Fsdata_data.Data_value.t list
(** [count] (default 3) documents with varying seeds. *)
