(** The shape algebra of Section 3.1, with the extensions of Sections 3.5
    (labelled top shapes), 6.2 (bit and date primitives) and 6.4
    (heterogeneous collections with multiplicities).

    {v
      sigma^ = nu {nu1:s1, ..., nun:sn} | float | int | bool | string
      sigma  = sigma^ | nullable sigma^ | [sigma] | any | null | bot
             | any<s1, ..., sn>                     (labelled top, 3.5)
             | [s1,psi1 | ... | sn,psin]            (heterogeneous, 6.4)
      plus the bit and date primitives               (6.2)
    v}

    The representation is canonical: labels of a top and entries of a
    collection are sorted by {!Tag.t} and contain at most one shape per
    tag, so structural equality coincides with shape equality. Record
    fields keep their sample order (the provided types list members in
    that order) but {!equal} ignores it, matching the paper's "we assume
    that record fields can be freely reordered".

    A homogeneous collection [[sigma]] of the core calculus is represented
    as a heterogeneous collection with a single [Multiple] entry; use
    {!collection} to build one and {!collection_element} to observe it. *)

type primitive =
  | Bit0  (** the lone literal 0 — provided as [int] *)
  | Bit1  (** the lone literal 1 — provided as [int] *)
  | Bit
      (** Section 6.2: preferred below both [int] and [bool]; the join of
          [Bit0] and [Bit1], provided as [bool] ("we also infer Autofilled
          as Boolean, because the sample contains only 0 and 1") *)
  | Bool
  | Int
  | Float
  | String
  | Date  (** Section 6.2: preferred below [string] *)

type t =
  | Bottom
  | Null
  | Primitive of primitive
  | Record of record
  | Nullable of t
      (** invariant: the payload is non-nullable, i.e. [Primitive] or
          [Record] — collections and tops already permit null *)
  | Collection of entry list
      (** invariant: sorted by tag, one entry per tag; entry shapes are
          never [Bottom]. [Collection []] is the paper's [[⊥]], the shape
          of a sample collection with no elements. Heterogeneous inference
          never creates [Nullable] entries (null elements get their own
          [Tag.Null] entry), but core-mode homogeneous collections may
          carry one, e.g. [[nullable int]] inferred from [[1; null]]. *)
  | Top of t list
      (** labelled top; [Top []] is the plain [any]. Invariant: labels are
          sorted by tag, one per tag, and are non-nullable, non-null,
          non-bottom and not tops themselves. *)

and record = { name : string; fields : (string * t) list }

and entry = { shape : t; mult : Multiplicity.t }

val equal : t -> t -> bool
(** Structural shape equality (record field order ignored). Physically
    equal shapes — in particular any two {!hcons} results with the same
    representation — short-circuit without traversal, and the recursive
    comparison short-circuits on every physically shared subtree. *)

val compare : t -> t -> int

(** {1 Hash-consing}

    Interning turns structurally identical shape representations into
    physically shared values, so {!equal} (and through it the (eq) fast
    path of [Csh.csh]) is a pointer comparison on hot shapes and a wide
    corpus's repeated sub-shapes are resident once. The serving layer
    interns every shape it caches; batch pipelines may opt in. *)

val hcons : t -> t
(** [hcons s] is a canonical, maximally shared value with exactly the
    representation of [s] (record field order preserved, so printing and
    provided types are unchanged). [equal (hcons s) s] always holds, and
    [hcons s1 == hcons s2] whenever [s1] and [s2] have identical
    representations. Safe to call from any domain (one global lock). *)

val hcons_size : unit -> int
(** Number of distinct nodes currently interned. *)

val hcons_clear : unit -> unit
(** Drop the intern table (existing shapes stay valid; future {!hcons}
    calls re-intern). Long-lived servers call this to bound the table. *)

(** {1 Constructors} *)

val record : string -> (string * t) list -> t
(** Raises [Invalid_argument] on duplicate field names. *)

val collection : t -> t
(** [collection s] is the paper's homogeneous [[s]]; [collection Bottom]
    is the empty-collection shape [[⊥]], i.e. [Collection []]. *)

val hetero : (t * Multiplicity.t) list -> t
(** Build a heterogeneous collection; raises [Invalid_argument] if two
    entries share a tag or an entry violates the invariants. *)

val top : t list -> t
(** Build a labelled top from labels; normalizes order and raises
    [Invalid_argument] on duplicate tags or invalid labels. *)

val any : t
(** The unlabelled top shape. *)

val nullable : t -> t
(** The paper's ceiling operator [⌈s⌉]: wraps non-nullable shapes, leaves
    every other shape unchanged. *)

val strip_nullable : t -> t
(** The paper's floor operator [⌊s⌋]: unwraps [Nullable], identity
    otherwise. *)

(** {1 Observations} *)

val is_non_nullable : t -> bool
(** True for the [sigma^] shapes: primitives and records. *)

val tagof : t -> Tag.t
(** The [tagof] function of Figure 4. [Bottom] has no tag and raises
    [Invalid_argument]; [Null] is given the [Tag.Null] tag used by
    heterogeneous collections. *)

val collection_element : t -> t option
(** [collection_element (collection s)] is [Some s]; [None] when the shape
    is not a collection or has several entries. The element of a
    heterogeneous singleton entry is returned whatever its multiplicity. *)

val size : t -> int
(** Number of shape constructors; used by benchmarks and test generators. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Paper-style notation: [nu {a: int, b: nullable string}],
    [\[int\]], [any<float, bool>], [\[• {..}, 1 | \[..\], 1\]]. *)

val to_string : t -> string
