(** Explaining preference failures.

    {!Preference.is_preferred} answers yes/no; this module answers {e why
    not}: it mirrors the relation and collects, for every place where the
    input shape fails to be preferred over the consumer shape, the path to
    the offending position, the two shapes there, and which rule of
    Definition 1 failed. [fsdata check] prints these.

    Paths use a JSONPath-ish notation: [.field] for record fields, [\[\]]
    for collection elements, [?] for the payload of a nullable. *)

type mismatch = {
  at : string;  (** path from the root *)
  input : Shape.t;
  expected : Shape.t;
  reason : string;  (** which rule failed, in words *)
}

val pp_mismatch : Format.formatter -> mismatch -> unit
(** Rendering [at PATH: INPUT is not preferred over EXPECTED (REASON)],
    the format [fsdata check] prints — shapes in the paper notation. *)

val explain : Shape.t -> Shape.t -> mismatch list
(** [explain input consumer] is empty iff
    [Preference.is_preferred input consumer] (property-tested); otherwise
    every reported mismatch pinpoints an actual violation. Reports all
    independent violations, not just the first. *)
