(** Parsing the paper's shape notation.

    Accepts exactly the notation {!Shape.pp} prints — so shapes round-trip
    through text — plus ASCII spellings for the symbols:

    {v
      ⊥ | _|_ | bot          bottom
      null                   the null shape
      bit0 bit1 bit bool int float string date
      nullable s             ⌈s⌉
      name {f1: s1, f2: s2}  records (the name may be •, •row, or any
                             identifier; an empty name is the JSON record)
      [s]                    homogeneous collections
      [⊥]                    the empty collection
      [s1, m1 | s2, m2]      heterogeneous collections, m ::= 1 | 1? | *
      any                    the unlabelled top
      any⟨s1, s2⟩ / any<s1, s2>   labelled tops
    v}

    Useful for writing shapes in tests and on the [fsdata check] command
    line, and for the round-trip property [parse (to_string s) = s]. *)

exception Parse_error of { position : int; message : string }

val parse : string -> Shape.t
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (Shape.t, string) result
