(** Explicit CSV column schemas.

    F# Data's CsvProvider accepts a [Schema] static parameter that
    overrides the inferred column types — the escape hatch the paper's
    Section 6.1 alludes to for data sources where the user knows better
    than the samples. This module implements the core of that parameter:

    {v  "Temp=float, Date=string, Autofilled=bool?"  v}

    A schema is a comma-separated list of [column=type] overrides, where
    [type] is one of [bit0 bit1 bit bool int float string date], with an
    optional [?] suffix making the column optional (nullable). Columns not
    mentioned keep their inferred shape. Column names are matched
    case-insensitively; an override for an unknown column is an error, as
    is a duplicate override. *)

type t = (string * Shape.t) list
(** Overrides in declaration order: column name (as written in the
    schema) and the shape it forces. *)

val parse : string -> (t, string) result
(** Parse the schema string; the empty string is the empty schema. *)

val apply : t -> Shape.t -> (Shape.t, string) result
(** [apply overrides shape] rewrites the row-record fields of an inferred
    CSV collection shape. Errors when [shape] is not a CSV collection
    shape or an override names a column that does not exist. *)

val infer_csv :
  ?separator:char ->
  ?has_headers:bool ->
  ?schema:string ->
  string ->
  (Shape.t, string) result
(** {!Infer.of_csv} with the overrides applied. *)
