(** The common preferred shape function [csh] (Definition 2, Figures 2
    and 4) — the least upper bound of two ground shapes under the
    preferred shape relation (Lemma 1).

    Rules are matched in the paper's top-to-bottom order:
    (eq), (list), (bot), (null), the top rules (top-merge), (top-incl),
    (top-add), (num), (opt), (recd), and finally (top-any). Notably the
    top rules precede (opt), so merging a top with a nullable shape strips
    the nullable wrapper from the label ("as top shapes implicitly permit
    null values, we make the labels non-nullable using ⌊−⌋").

    Record merging implements the row-variable mechanism of Figure 3: when
    two same-named records disagree on their field sets, the minimal
    ground substitution for the row variables makes every one-sided field
    nullable (the [⌈−⌉] applied to [θ(ρᵢ)] in the paper).

    Three collection-merging disciplines are provided:

    - [`Core] implements the paper's rule (list) literally: the result is
      a homogeneous collection of the csh of all element shapes. This is
      the algebra for which Lemma 1 is proved and property-tested.
    - [`Hetero] (the default, what F# Data implements for JSON,
      Section 6.4) merges entries tag-wise like labelled tops and combines
      multiplicities; tags present on one side only have their
      multiplicity widened.
    - [`Xml] keeps collections in the single-entry form used for XML
      element bodies (Section 2.2: the children of [<doc>] are a
      collection of the labelled top [any<heading, p, image>], so that the
      user iterates over elements with optional members): element shapes
      from both sides are joined into one entry — a labelled top when the
      tags differ — and the multiplicity records whether an element is
      always present, optional, or repeated, driving the direct / option /
      list member of the provider (the [Root.Item : string] example of
      Section 6.3).

    Labelled tops built by [csh] are kept in a canonical form: primitive
    labels are saturated under {!join_primitives} across tag families
    (so a top never holds both [bit] and [bool], or [date] and
    [string]), and collection labels have exactly-one entries weakened
    to zero-or-one (a top implicitly permits null, and a null sample
    reads as an empty collection). This makes [csh] associative and
    commutative at the representation level (up to record field order),
    not merely up to ⊑-equivalence — which is what lets
    {!Par_infer.csh_tree} re-associate the fold freely. *)

type mode = [ `Core | `Hetero | `Xml ]

val csh : ?mode:mode -> Shape.t -> Shape.t -> Shape.t
(** Default mode is [`Hetero]. *)

val csh_all : ?mode:mode -> Shape.t list -> Shape.t
(** Fold [csh] over a list starting from bottom, as in Figure 3's
    [S(d1, ..., dn)]. [csh_all []] is [Shape.Bottom]. *)

val join_primitives : Shape.primitive -> Shape.primitive -> Shape.primitive option
(** The primitive join underlying rule (num) and the Section 6.2 lattice:
    [int ⊔ float = float], [bit ⊔ int = int], [bit ⊔ bool = bool],
    [bit ⊔ float = float], [date ⊔ string = string]; [None] when the only
    upper bound is a top (e.g. [int ⊔ bool]). *)
