module Dv = Fsdata_data.Data_value

let words = [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot" |]

let rec sample ?(seed = 0) (s : Shape.t) : Dv.t =
  match s with
  | Shape.Bottom -> invalid_arg "Shape_gen.sample: bottom has no witness"
  | Shape.Null -> Dv.Null
  | Shape.Primitive p -> primitive seed p
  | Shape.Nullable inner ->
      if seed mod 2 = 1 then Dv.Null else sample ~seed inner
  | Shape.Record { name; fields } ->
      Dv.Record
        (name, List.mapi (fun i (f, fs) -> (f, sample ~seed:(seed + i) fs)) fields)
  | Shape.Collection entries ->
      let elements =
        List.concat_map
          (fun (e : Shape.entry) ->
            if e.shape = Shape.Null then [ Dv.Null ]
            else
              match e.mult with
              | Multiplicity.Single | Multiplicity.Optional_single ->
                  [ sample ~seed e.shape ]
              | Multiplicity.Multiple ->
                  [ sample ~seed e.shape; sample ~seed:(seed + 1) e.shape ])
          entries
      in
      Dv.List elements
  | Shape.Top [] -> Dv.Null
  | Shape.Top (label :: _) -> sample ~seed label

and primitive seed (p : Shape.primitive) : Dv.t =
  match p with
  | Shape.Bit0 -> Dv.Int 0
  | Shape.Bit1 -> Dv.Int 1
  | Shape.Bit -> Dv.Int (seed mod 2)
  | Shape.Bool -> Dv.Bool (seed mod 2 = 0)
  | Shape.Int -> Dv.Int (7 + seed)
  | Shape.Float -> Dv.Float (0.5 +. float_of_int seed)
  | Shape.String -> Dv.String words.(abs seed mod Array.length words)
  | Shape.Date ->
      Dv.String (Printf.sprintf "2016-%02d-%02d" (1 + (seed mod 12)) (1 + (seed mod 28)))

let samples ?(count = 3) s = List.init count (fun i -> sample ~seed:i s)
