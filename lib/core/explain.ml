open Shape

type mismatch = { at : string; input : Shape.t; expected : Shape.t; reason : string }

let pp_mismatch ppf m =
  Fmt.pf ppf "@[<hov 2>at %s:@ %a is not preferred over %a@ (%s)@]"
    (if m.at = "" then "the root" else m.at)
    Shape.pp m.input Shape.pp m.expected m.reason

let mk at input expected reason = { at; input; expected; reason }

(* Mirrors Preference.is_preferred; returns [] iff the relation holds. *)
let rec go at (s1 : Shape.t) (s2 : Shape.t) : mismatch list =
  match (s1, s2) with
  | _, Top _ -> []
  | Bottom, _ -> []
  | Null, (Null | Nullable _) -> []
  | Null, Collection entries -> (
      match List.filter (fun (e : entry) -> e.shape <> Null) entries with
      | [] | [ _ ] -> []
      | consumers ->
          if
            List.for_all
              (fun (e : entry) -> e.mult <> Multiplicity.Single)
              consumers
          then []
          else
            [
              mk at s1 s2
                "null reads as the empty collection, but an entry is \
                 required exactly once (rule 2 / Section 6.4)";
            ])
  | Null, _ ->
      [ mk at s1 s2 "null is only preferred over nullable shapes (rule 2)" ]
  | Primitive a, Primitive b ->
      if Preference.is_preferred_primitive a b then []
      else [ mk at s1 s2 "no primitive conversion (rules 1, Section 6.2)" ]
  | Primitive a, Nullable (Primitive b) ->
      if Preference.is_preferred_primitive a b then []
      else [ mk at s1 s2 "no primitive conversion under the nullable (rules 1, 3)" ]
  | Record r1, Record r2 -> record at r1 r2 s1 s2
  | Record r1, Nullable (Record r2) -> record at r1 r2 s1 s2
  | Nullable a, Nullable b -> go (at ^ "?") a b
  | Collection e1, Collection e2 -> entries at e1 e2 s1 s2
  | _ ->
      [
        mk at s1 s2
          "shapes of different kinds are unrelated (only any is above both)";
      ]

and record at r1 r2 s1 s2 =
  if not (String.equal r1.name r2.name) then
    [ mk at s1 s2 "records with different names are unrelated (rule 8)" ]
  else
    List.concat_map
      (fun (field, f2) ->
        let fat = Printf.sprintf "%s.%s" at field in
        match List.assoc_opt field r1.fields with
        | Some f1 -> go fat f1 f2
        | None ->
            if Preference.is_preferred Null f2 then []
            else
              [
                mk fat Null f2
                  "the field is missing from the input and its shape does \
                   not admit null (rules 8-9)";
              ])
      r2.fields

and entries at e1 e2 s1 s2 =
  let non_null = List.filter (fun (e : entry) -> e.shape <> Null) in
  let has_null es = List.exists (fun (e : entry) -> e.shape = Null) es in
  match non_null e2 with
  | [] ->
      let ok = if has_null e2 then non_null e1 = [] else e1 = [] in
      if ok then []
      else
        [
          mk at s1 s2
            "the consumer observed no elements; only empty/null input \
             collections conform (rule 5 at bottom)";
        ]
  | [ f ] ->
      List.concat_map
        (fun (e : entry) ->
          if e.shape = Null then
            if has_null e2 || Preference.is_preferred Null f.shape then []
            else
              [
                mk (at ^ "[]") Null f.shape
                  "the input contains null elements but the consumer never \
                   observed any";
              ]
          else go (at ^ "[]") e.shape f.shape)
        e1
  | consumers ->
      List.concat_map
        (fun (f : entry) ->
          let tag = tagof f.shape in
          match
            List.find_opt (fun (e : entry) -> Tag.equal (tagof e.shape) tag) e1
          with
          | Some e ->
              go (at ^ "[]") e.shape f.shape
              @
              if Multiplicity.is_preferred e.mult f.mult then []
              else
                [
                  mk (at ^ "[]") e.shape f.shape
                    (Fmt.str
                       "multiplicity %a is not within the consumer's %a \
                        (Section 6.4)"
                       Multiplicity.pp e.mult Multiplicity.pp f.mult);
                ]
          | None -> (
              match f.mult with
              | Multiplicity.Single ->
                  [
                    mk (at ^ "[]") Shape.Bottom f.shape
                      "the consumer requires exactly one element of this \
                       tag, and the input has none (Section 6.4)";
                  ]
              | Multiplicity.Optional_single | Multiplicity.Multiple -> []))
        consumers

let explain input consumer = go "" input consumer
