type t = Single | Optional_single | Multiple

let equal = ( = )

let rank = function Single -> 0 | Optional_single -> 1 | Multiple -> 2
let is_preferred a b = rank a <= rank b
let lub a b = if rank a >= rank b then a else b

let widen_absent = function
  | Single -> Optional_single
  | (Optional_single | Multiple) as m -> m

let of_count = function
  | n when n <= 0 -> invalid_arg "Multiplicity.of_count: non-positive count"
  | 1 -> Single
  | _ -> Multiple

let pp ppf = function
  | Single -> Fmt.string ppf "1"
  | Optional_single -> Fmt.string ppf "1?"
  | Multiple -> Fmt.string ppf "*"
