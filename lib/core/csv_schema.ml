type t = (string * Shape.t) list

let shape_of_type_name name =
  let name = String.trim name in
  let base, optional =
    if String.length name > 0 && name.[String.length name - 1] = '?' then
      (String.trim (String.sub name 0 (String.length name - 1)), true)
    else (name, false)
  in
  match
    match String.lowercase_ascii base with
    | "bit0" -> Some Shape.Bit0
    | "bit1" -> Some Shape.Bit1
    | "bit" -> Some Shape.Bit
    | "bool" -> Some Shape.Bool
    | "int" -> Some Shape.Int
    | "float" -> Some Shape.Float
    | "string" -> Some Shape.String
    | "date" -> Some Shape.Date
    | _ -> None
  with
  | Some p ->
      let s = Shape.Primitive p in
      Ok (if optional then Shape.Nullable s else s)
  | None -> Error (Printf.sprintf "unknown column type %S" base)

let parse text : (t, string) result =
  let entries =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest -> (
        match String.index_opt entry '=' with
        | None ->
            Error
              (Printf.sprintf "schema entry %S is not of the form column=type"
                 entry)
        | Some i -> (
            let column = String.trim (String.sub entry 0 i) in
            let ty = String.sub entry (i + 1) (String.length entry - i - 1) in
            if column = "" then Error (Printf.sprintf "empty column name in %S" entry)
            else if
              List.exists
                (fun (c, _) ->
                  String.lowercase_ascii c = String.lowercase_ascii column)
                acc
            then Error (Printf.sprintf "duplicate override for column %S" column)
            else
              match shape_of_type_name ty with
              | Ok s -> go ((column, s) :: acc) rest
              | Error e -> Error e))
  in
  go [] entries

let apply overrides (shape : Shape.t) : (Shape.t, string) result =
  match shape with
  | Shape.Collection
      [ { shape = Shape.Record ({ name; fields } as _r); mult } ]
    when String.equal name Fsdata_data.Data_value.csv_record_name ->
      let unknown =
        List.find_opt
          (fun (c, _) ->
            not
              (List.exists
                 (fun (f, _) ->
                   String.lowercase_ascii f = String.lowercase_ascii c)
                 fields))
          overrides
      in
      (match unknown with
      | Some (c, _) -> Error (Printf.sprintf "schema names unknown column %S" c)
      | None ->
          let fields =
            List.map
              (fun (f, s) ->
                match
                  List.find_opt
                    (fun (c, _) ->
                      String.lowercase_ascii c = String.lowercase_ascii f)
                    overrides
                with
                | Some (_, forced) -> (f, forced)
                | None -> (f, s))
              fields
          in
          Ok (Shape.hetero [ (Shape.record name fields, mult) ]))
  | _ -> Error "schema overrides apply to CSV collection shapes only"

let infer_csv ?separator ?has_headers ?(schema = "") src =
  match Infer.of_csv ?separator ?has_headers src with
  | Error e -> Error e
  | Ok shape -> (
      match parse schema with
      | Error e -> Error e
      | Ok [] -> Ok shape
      | Ok overrides -> apply overrides shape)
