open Shape

type mode = [ `Core | `Hetero | `Xml ]

(* Observability (docs/OBSERVABILITY.md): [csh.merges] counts every
   binary join performed, including the recursive sub-joins on record
   fields and collection entries — the true amount of join work, which
   the chunked parallel pipeline redistributes but must not change.
   [csh.top_label_saturations] counts primitive labels collapsed by the
   canonical-form saturation (b) below; a high rate signals corpora
   whose labelled tops keep re-canonicalizing. *)
let m_merges = Fsdata_obs.Metrics.counter "csh.merges"

let m_saturations =
  Fsdata_obs.Metrics.counter "csh.top_label_saturations"

let join_primitives (a : primitive) (b : primitive) =
  if a = b then Some a
  else
    match (a, b) with
    | Bit0, Bit1 | Bit1, Bit0 -> Some Bit
    | (Bit0 | Bit1), ((Bit | Bool | Int | Float) as o)
    | ((Bit | Bool | Int | Float) as o), (Bit0 | Bit1) ->
        Some o
    | Bit, ((Bool | Int | Float) as o) | ((Bool | Int | Float) as o), Bit -> Some o
    | Int, Float | Float, Int -> Some Float
    | Date, String | String, Date -> Some String
    | _ -> None

(* Canonical form for top labels. Both adjustments exist to make csh
   associative at the representation level (not merely up to
   ⊑-equivalence), which the parallel tree reduction of Par_infer relies
   on:

   (a) a collection label's exactly-one entries weaken to zero-or-one.
       A top implicitly permits null and a null sample reads as an
       empty collection, so an element of a collection label can always
       be absent; without the weakening, whether a null sample met the
       collection before or after the top formed would change the
       resulting multiplicity.

   (b) primitive labels are saturated under {!join_primitives} across
       tag families (bit ⊔ bool = bool, date ⊔ string = string),
       matching what rule (num) does to the same primitives outside a
       top. Tag-wise label grouping alone would keep e.g. bit and bool
       as two labels when the bare primitives join to bool, so the
       result would depend on whether they met inside or outside the
       top. *)
let widen_collection_label = function
  | Collection entries ->
      Collection
        (List.map
           (fun (e : entry) -> { e with mult = Multiplicity.widen_absent e.mult })
           entries)
  | s -> s

let canonical_top labels =
  let labels = List.map widen_collection_label labels in
  let prims, others =
    List.partition_map
      (function Primitive p -> Either.Left p | s -> Either.Right s)
      labels
  in
  (* Insert primitives one at a time, re-inserting the join whenever one
     exists; terminates because the primitive lattice has finite height. *)
  let rec insert p acc =
    let rec scan seen = function
      | [] -> p :: acc
      | q :: rest -> (
          match join_primitives p q with
          | Some j ->
              Fsdata_obs.Metrics.incr m_saturations;
              insert j (List.rev_append seen rest)
          | None -> scan (q :: seen) rest)
    in
    scan [] acc
  in
  let prims = List.fold_left (fun acc p -> insert p acc) [] prims in
  Shape.top (List.rev_map (fun p -> Primitive p) prims @ others)

let rec csh ?(mode : mode = `Hetero) s1 s2 =
  Fsdata_obs.Metrics.incr m_merges;
  (* (eq) *)
  if Shape.equal s1 s2 then s1
  else
    match (s1, s2) with
    (* (list) *)
    | Collection e1, Collection e2 -> merge_collections ~mode e1 e2
    (* (bot) *)
    | Bottom, s | s, Bottom -> s
    (* (null): ⌈s⌉, except that a null sample reads as an *empty*
       collection ("null values are treated as empty collections"), so
       exactly-one entries of a heterogeneous collection weaken to
       zero-or-one, as when merging with an empty collection. *)
    | Null, Collection entries | Collection entries, Null ->
        Collection
          (List.map
             (fun (e : entry) -> { e with mult = Multiplicity.widen_absent e.mult })
             entries)
    | Null, s | s, Null -> Shape.nullable s
    (* (top-merge) *)
    | Top l1, Top l2 -> top_merge ~mode l1 l2
    (* (top-incl) / (top-add) *)
    | Top labels, s | s, Top labels -> top_include ~mode labels s
    (* (num), extended with the Section 6.2 primitive lattice *)
    | Primitive p1, Primitive p2 -> (
        match join_primitives p1 p2 with
        | Some p -> Primitive p
        | None -> top_any s1 s2)
    (* (opt) *)
    | Nullable a, s | s, Nullable a -> Shape.nullable (csh ~mode a s)
    (* (recd) with the row-variable treatment of one-sided fields *)
    | Record r1, Record r2 when String.equal r1.name r2.name ->
        Record (merge_records ~mode r1 r2)
    (* (top-any) *)
    | _ -> top_any s1 s2

and merge_records ~mode r1 r2 =
  (* Fields present on both sides are joined recursively; one-sided fields
     become nullable. This realizes Figure 3's minimal ground substitution
     for row variables: the extra fields a record may or may not have are
     exactly the fields its row variable stands for, and [⌈θ(ρ)⌉] makes
     them nullable. Field order: left-to-right first appearance. *)
  (* A one-sided field joins with "absent", which reads as null (that is
     what convField produces for it), so the join is csh(null, s) = ⌈s⌉ —
     in particular a one-sided ⊥ field becomes null, not ⊥. *)
  let absent ~mode s = csh ~mode Null s in
  let fields =
    List.map
      (fun (n, s1) ->
        match List.assoc_opt n r2.fields with
        | Some s2 -> (n, csh ~mode s1 s2)
        | None -> (n, absent ~mode s1))
      r1.fields
    @ List.filter_map
        (fun (n, s2) ->
          if List.mem_assoc n r1.fields then None else Some (n, absent ~mode s2))
        r2.fields
  in
  { name = r1.name; fields }

and merge_collections ~mode e1 e2 =
  match mode with
  | `Xml -> (
      (* Single-entry discipline: join the element shapes of both sides
         (producing a labelled top when they differ) and combine the
         multiplicities; an entry missing on one side means the element is
         sometimes absent, weakening Single to Optional_single. *)
      let join es =
        match es with
        | [] -> None
        | e :: rest ->
            Some
              (List.fold_left
                 (fun (s, m) (e : entry) ->
                   (csh ~mode s e.shape, Multiplicity.lub m e.mult))
                 (e.shape, e.mult) rest)
      in
      match (join e1, join e2) with
      | None, None -> Collection []
      | Some (s, m), None | None, Some (s, m) ->
          Collection [ { shape = s; mult = Multiplicity.widen_absent m } ]
      | Some (s1, m1), Some (s2, m2) ->
          Collection
            [ { shape = csh ~mode s1 s2; mult = Multiplicity.lub m1 m2 } ])
  | `Core ->
      (* Rule (list) of Figure 2: a homogeneous collection of the join of
         all element shapes. *)
      let shapes = List.map (fun e -> e.shape) (e1 @ e2) in
      Shape.collection (csh_all ~mode shapes)
  | `Hetero ->
      (* Section 6.4: merge entries with the same tag (joining shapes and
         taking the multiplicity lub); a tag present on one side only has
         its multiplicity widened, since the other sample's collections can
         lack it. *)
      let tag_of (e : entry) = Shape.tagof e.shape in
      let tags =
        List.sort_uniq Tag.compare (List.map tag_of e1 @ List.map tag_of e2)
      in
      let find es t = List.find_opt (fun e -> Tag.equal (tag_of e) t) es in
      let merged =
        List.map
          (fun t ->
            match (find e1 t, find e2 t) with
            | Some a, Some b ->
                (csh ~mode a.shape b.shape, Multiplicity.lub a.mult b.mult)
            | Some a, None | None, Some a ->
                (a.shape, Multiplicity.widen_absent a.mult)
            | None, None -> assert false)
          tags
      in
      Collection (regroup_entries ~mode merged)

and regroup_entries ~mode pairs =
  (* Joining two same-tag entry shapes almost always preserves the tag, but
     corner cases (e.g. two differently-shaped nullable entries joining
     into a labelled top) can move an entry to a new tag; fold entries in
     one at a time, re-joining on collision, until tags are distinct. *)
  let rec add acc (s, m) =
    let t = Shape.tagof s in
    match
      List.partition (fun (e : entry) -> Tag.equal (Shape.tagof e.shape) t) acc
    with
    | [], _ -> { shape = s; mult = m } :: acc
    | [ e0 ], rest -> add rest (csh ~mode e0.shape s, Multiplicity.lub e0.mult m)
    | _ -> assert false
  in
  let entries = List.fold_left add [] pairs in
  List.sort (fun a b -> Tag.compare (Shape.tagof a.shape) (Shape.tagof b.shape)) entries

and top_merge ~mode l1 l2 =
  (* (top-merge): group the labels of the two tops by tag, joining labels
     that share a tag. *)
  let tags = List.sort_uniq Tag.compare (List.map Shape.tagof (l1 @ l2)) in
  let find ls t = List.find_opt (fun l -> Tag.equal (Shape.tagof l) t) ls in
  let labels =
    List.map
      (fun t ->
        match (find l1 t, find l2 t) with
        | Some a, Some b -> Shape.strip_nullable (csh ~mode a b)
        | Some a, None | None, Some a -> a
        | None, None -> assert false)
      tags
  in
  canonical_top labels

and top_include ~mode labels s =
  (* s is neither bottom, null nor a top here. Labels are non-nullable, so
     strip a nullable wrapper first (Figure 4 applies ⌊−⌋). *)
  let label = Shape.strip_nullable s in
  let t = Shape.tagof label in
  match List.partition (fun l -> Tag.equal (Shape.tagof l) t) labels with
  (* (top-add) *)
  | [], _ -> canonical_top (label :: labels)
  (* (top-incl) *)
  | [ l0 ], rest ->
      canonical_top (Shape.strip_nullable (csh ~mode l0 label) :: rest)
  | _ -> assert false

and top_any s1 s2 =
  (* (top-any): two shapes with distinct tags and no smaller upper bound. *)
  canonical_top [ Shape.strip_nullable s1; Shape.strip_nullable s2 ]

and csh_all ?(mode : mode = `Hetero) shapes =
  List.fold_left (fun acc s -> csh ~mode acc s) Bottom shapes
