(** Parallel, chunked shape inference over OCaml 5 domains.

    [S(d1, ..., dn)] is a fold of {!Csh.csh} over the per-sample shapes
    (Figure 3). Lemma 1 proves [csh] is the least upper bound of its
    arguments under the preferred-shape relation ⊑ — an associative,
    commutative, idempotent join — so the fold may be re-associated
    freely: this module splits the samples into per-domain chunks, folds
    each chunk locally, and merges the chunk shapes with a balanced
    [csh] tree reduction. By Lemma 1 the result is the same shape the
    sequential fold of {!Infer.shape_of_samples} computes — equal by
    {!Shape.equal}, the paper's notion of shape identity ("we assume
    that record fields can be freely reordered"). The representation
    too is preserved almost everywhere: chunks stay in sample order and
    the tree merges adjacent shapes only, so record fields keep their
    first-appearance order whenever records meet records. The one
    exception is a corpus whose samples mix records with other tagged
    shapes: re-association can make a record enter a labelled top
    before a textually earlier record reaches it, and the absorbed
    label's fields then lead — a different order of the same field set.
    The property suite [test/test_par_infer.ml] pins down
    associativity, commutativity, idempotence and sequential≡parallel
    agreement for all three inference modes.

    Entry points mirror {!Infer}; each takes [?jobs] (the number of
    domains to use, defaulting to {!recommended_jobs}). [~jobs:1]
    bypasses domains entirely and is exactly the sequential fold. The
    streaming {!of_json} fuses chunked parsing ({!Fsdata_data.Json.fold_many})
    with per-chunk inference so that a large corpus is never fully
    resident as parsed {!Fsdata_data.Data_value.t}s: at most
    [jobs + 1] chunks of documents are alive at any moment. *)

type mode = Infer.mode

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val csh_tree : ?mode:Csh.mode -> Shape.t list -> Shape.t
(** Balanced tree reduction of {!Csh.csh} over a list of shapes:
    adjacent shapes are merged pairwise until one remains. Equal to
    {!Csh.csh_all} on the same list (Lemma 1), in logarithmically many
    rounds. [csh_tree []] is [Shape.Bottom]. Default mode is
    [`Hetero], as for {!Csh.csh}. *)

val chunk : int -> 'a list -> 'a list list
(** [chunk k xs] splits [xs] into at most [k] contiguous runs of
    near-equal length, preserving order; no run is empty. [chunk k []]
    is [[]]. Raises [Invalid_argument] when [k < 1]. *)

val shape_of_samples :
  ?mode:mode -> ?jobs:int -> Fsdata_data.Data_value.t list -> Shape.t
(** Parallel [S(d1, ..., dn)] — bottom when the list is empty.
    Structurally equal to {!Infer.shape_of_samples} on the same
    samples. *)

(** {1 Format entry points} *)

val of_json_samples :
  ?mode:mode -> ?jobs:int -> string list -> (Shape.t, string) result
(** Like {!Infer.of_json_samples}, but each domain parses and infers
    its chunk of sample strings. On malformed input, the error reported
    is the one for the earliest failing sample, as in the sequential
    driver. *)

val of_json :
  ?mode:mode ->
  ?jobs:int ->
  ?chunk_size:int ->
  ?chunk_bytes:int ->
  string ->
  (Shape.t, string) result
(** Streaming variant of {!Infer.of_json}: the whitespace-separated
    document stream is parsed in chunks and each chunk's shape is
    inferred in a worker domain while the parser races ahead, so the
    whole corpus is never resident at once. Parse errors carry positions
    relative to the whole stream.

    Chunk granularity is {e adaptive} by default: a chunk is cut once it
    has consumed [corpus bytes / (jobs * 8)] source bytes (clamped to
    [64KiB..8MiB]) or 65536 documents, whichever fills first, so the
    per-chunk spawn/hand-off cost is amortized over a corpus-sized slice
    of work instead of a fixed 256 tiny documents (the regime in which
    [--jobs 2/4] used to run slower than the sequential fold — see
    EXPERIMENTS.md B7). Both caps are overridable: [chunk_size] bounds a
    chunk in documents, [chunk_bytes] in consumed source bytes. *)

val of_xml_samples :
  ?mode:mode -> ?jobs:int -> string list -> (Shape.t, string) result
(** Like {!Infer.of_xml_samples}: each domain parses and infers its
    chunk of XML sample strings; default mode is [`Xml]. *)

(** {1 Fault-tolerant entry points}

    Parallel counterparts of the [_tolerant] drivers in {!Infer}: faulty
    samples are quarantined under an error budget instead of aborting
    the run. Fault isolation is per sample even across domain chunks —
    each worker attributes exceptions to the failing sample's global
    corpus index ({!Infer.shape_of_sample}), so a poisoned sample never
    spoils its chunk and no exception ever propagates raw out of a
    [Domain.join]. The resulting {!Infer.report} is identical to the
    sequential one on the same corpus (quarantine order included).

    [cancel] ({!Fsdata_data.Cancel.t}) is polled on the coordinating
    domain — between documents in the streaming feeder, between samples
    of the chunk kept on the calling domain — and raises
    {!Fsdata_data.Cancel.Cancelled} when it trips. Worker domains run
    their (bounded) chunks to completion and are always joined before
    the exception escapes, so cancellation never leaks a domain. *)

val of_json_samples_tolerant :
  ?cancel:Fsdata_data.Cancel.t ->
  ?mode:mode ->
  ?jobs:int ->
  budget:Fsdata_data.Diagnostic.budget ->
  string list ->
  (Infer.report, string) result

val of_xml_samples_tolerant :
  ?cancel:Fsdata_data.Cancel.t ->
  ?mode:mode ->
  ?jobs:int ->
  budget:Fsdata_data.Diagnostic.budget ->
  string list ->
  (Infer.report, string) result
(** Default mode is [`Xml]. *)

val of_json_tolerant :
  ?cancel:Fsdata_data.Cancel.t ->
  ?mode:mode ->
  ?jobs:int ->
  ?chunk_size:int ->
  ?chunk_bytes:int ->
  budget:Fsdata_data.Diagnostic.budget ->
  string ->
  (Infer.report, string) result
(** Streaming recovering variant of {!of_json}: malformed documents are
    skipped via {!Fsdata_data.Json.fold_many}'s resynchronization and
    quarantined with their stream index while clean chunks are inferred
    in worker domains. Chunk granularity is adaptive exactly as in
    {!of_json}. *)
