open Fsdata_data

let tag_of_data (d : Data_value.t) : Tag.t =
  match d with
  | Null -> Tag.Null
  | Bool _ -> Tag.Bool
  | Int _ | Float _ -> Tag.Number
  | String _ -> Tag.String
  | List _ -> Tag.Collection
  | Record (name, _) -> Tag.Record name

let admits_null (s : Shape.t) =
  match s with
  | Null | Nullable _ | Collection _ | Top _ -> true
  | Bottom | Primitive _ | Record _ -> false

let rec has_shape (s : Shape.t) (d : Data_value.t) =
  match (s, d) with
  | Bottom, _ -> false
  | Null, Null -> true
  | Null, _ -> false
  | Top _, _ -> true
  | Nullable s', d -> d = Null || has_shape s' d
  | Primitive Shape.String, String _ -> true
  | Primitive Shape.Int, Int _ -> true
  (* 0/1 data conforms to bool (bit ⊑ bool): the bool conversion accepts
     it, so the runtime shape test must too *)
  | Primitive Shape.Bool, (Bool _ | Int (0 | 1)) -> true
  | Primitive Shape.Float, (Int _ | Float _) -> true
  | Primitive Shape.Bit, Int (0 | 1) -> true
  | Primitive Shape.Bit0, Int 0 -> true
  | Primitive Shape.Bit1, Int 1 -> true
  | Primitive Shape.Date, String str -> Date.is_date str
  | Primitive _, _ -> false
  | Record { name; fields }, Record (name', fields') ->
      String.equal name name'
      && List.for_all
           (fun (f, fs) ->
             match List.assoc_opt f fields' with
             | Some v -> has_shape fs v
             | None -> admits_null fs)
           fields
  | Record _, _ -> false
  | Collection entries, Null ->
      (* hasShape([s], null) ⇝ true — unless some heterogeneous entry is
         required exactly once, which the empty collection cannot supply
         (the guard must protect the Single-typed member, Lemma 2) *)
      no_single_required entries
  | Collection entries, List ds -> elements_have_shape entries ds
  | Collection _, _ -> false

and no_single_required entries =
  (* Multiplicities only matter when the provider emits per-tag members,
     i.e. for collections with at least two non-null entries; single-entry
     collections provide plain lists whatever the multiplicity. *)
  match List.filter (fun (e : Shape.entry) -> e.shape <> Shape.Null) entries with
  | [] | [ _ ] -> true
  | consumers ->
      List.for_all
        (fun (e : Shape.entry) -> e.mult <> Multiplicity.Single)
        consumers

and elements_have_shape entries ds =
  let non_null =
    List.filter (fun (e : Shape.entry) -> e.shape <> Shape.Null) entries
  in
  let has_null_entry =
    List.exists (fun (e : Shape.entry) -> e.shape = Shape.Null) entries
  in
  match non_null with
  | [] -> List.for_all (fun d -> d = Data_value.Null) ds
  | [ f ] ->
      List.for_all
        (fun d ->
          if d = Data_value.Null then
            has_null_entry || has_shape f.shape Data_value.Null
          else has_shape f.shape d)
        ds
  | consumers ->
      List.for_all
        (fun d ->
          d = Data_value.Null
          ||
          let t = tag_of_data d in
          match
            List.find_opt
              (fun (e : Shape.entry) -> Tag.equal (Shape.tagof e.shape) t)
              consumers
          with
          | Some e -> has_shape e.shape d
          | None -> true (* unknown tag: never accessed, open world *))
        ds
      && (* exactly-once entries must actually be matched by some element,
            or the Single-typed member would get stuck *)
      List.for_all
        (fun (e : Shape.entry) ->
          e.mult <> Multiplicity.Single
          || List.exists (fun d -> has_shape e.shape d) ds)
        consumers
