open Fsdata_data
module Raw = Json.Raw

(* Observability (docs/OBSERVABILITY.md): how many parsers were compiled
   and at what cost, and how documents were decoded. Registered at module
   initialization so the exported key set does not depend on which paths
   a run exercises. *)
let m_parsers = Fsdata_obs.Metrics.counter "compile.parsers"
let m_build_ns = Fsdata_obs.Metrics.counter "compile.build_ns"
let m_direct = Fsdata_obs.Metrics.counter "compile.docs_direct"
let m_fallback = Fsdata_obs.Metrics.counter "compile.docs_fallback"

(* ----- Target representation ----- *)

type tvalue =
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vdate of Date.t
  | Vlist of tvalue array
  | Vrecord of string * (string * tvalue) array
  | Vany of Data_value.t

let rec equal_tvalue a b =
  match (a, b) with
  | Vnull, Vnull -> true
  | Vbool a, Vbool b -> Bool.equal a b
  | Vint a, Vint b -> Int.equal a b
  | Vfloat a, Vfloat b -> Float.equal a b
  | Vstring a, Vstring b -> String.equal a b
  | Vdate a, Vdate b -> Date.equal a b
  | Vlist a, Vlist b ->
      Array.length a = Array.length b
      && Array.for_all2 (fun x y -> equal_tvalue x y) a b
  | Vrecord (n, a), Vrecord (m, b) ->
      String.equal n m
      && Array.length a = Array.length b
      && Array.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal_tvalue va vb)
           a b
  | Vany a, Vany b -> Data_value.equal a b
  | _ -> false

let rec to_data = function
  | Vnull -> Data_value.Null
  | Vbool b -> Data_value.Bool b
  | Vint i -> Data_value.Int i
  | Vfloat f -> Data_value.Float f
  | Vstring s -> Data_value.String s
  | Vdate d -> Data_value.String (Date.to_iso8601 d)
  | Vlist items -> Data_value.List (Array.to_list (Array.map to_data items))
  | Vrecord (name, fields) ->
      Data_value.Record
        (name, Array.to_list (Array.map (fun (k, v) -> (k, to_data v)) fields))
  | Vany d -> d

let pp_tvalue ppf v = Json.pp ppf (to_data v)

(* ----- The interpreted reference conversion ----- *)

exception Mismatch

(* The value a missing record field decodes to, mirroring the
   missing-field closure of [Shape_check.has_shape]: a missing field
   passes iff its shape admits null ([admits_null]), and is
   observationally a null — so nullables and null read as null,
   collections as the empty list, tops as an unconstrained null. Note
   this is deliberately more lenient than [has_shape s Null] for
   collections with exactly-once entries, matching the spec. *)
let missing_field_default (s : Shape.t) : tvalue option =
  match s with
  | Null | Nullable _ -> Some Vnull
  | Collection _ -> Some (Vlist [||])
  | Top _ -> Some (Vany Data_value.Null)
  | Bottom | Primitive _ | Record _ -> None

let prim_of_value (p : Shape.primitive) (d : Data_value.t) : tvalue =
  match (p, d) with
  | Shape.Int, Int i -> Vint i
  | Shape.Float, Int i -> Vfloat (float_of_int i)
  | Shape.Float, Float f -> Vfloat f
  | Shape.Bool, Bool b -> Vbool b
  | Shape.Bool, Int ((0 | 1) as i) -> Vbool (i = 1)
  | Shape.Bit, Int ((0 | 1) as i) -> Vbool (i = 1)
  | Shape.Bit0, Int 0 -> Vint 0
  | Shape.Bit1, Int 1 -> Vint 1
  | Shape.Date, String s -> (
      match Date.of_string s with Some d -> Vdate d | None -> raise Mismatch)
  | Shape.String, String s -> Vstring s
  | _ -> raise Mismatch

let non_null_entries entries =
  List.filter (fun (e : Shape.entry) -> e.shape <> Shape.Null) entries

let has_null_entry entries =
  List.exists (fun (e : Shape.entry) -> e.shape = Shape.Null) entries

let rec convert (s : Shape.t) (d : Data_value.t) : tvalue =
  match (s, d) with
  | Shape.Bottom, _ -> raise Mismatch
  | Shape.Null, Null -> Vnull
  | Shape.Null, _ -> raise Mismatch
  | Shape.Top _, d -> Vany d
  | Shape.Nullable _, Null -> Vnull
  | Shape.Nullable s', d -> convert s' d
  | Shape.Primitive p, d -> prim_of_value p d
  | Shape.Record { name; fields }, Record (name', dfields)
    when String.equal name name' ->
      let conv_field (f, fs) =
        match List.assoc_opt f dfields with
        | Some v -> (f, convert fs v)
        | None -> (
            match missing_field_default fs with
            | Some t -> (f, t)
            | None -> raise Mismatch)
      in
      Vrecord (name, Array.of_list (List.map conv_field fields))
  | Shape.Record _, _ -> raise Mismatch
  | Shape.Collection entries, Null ->
      if Shape_check.has_shape (Shape.Collection entries) Data_value.Null then
        Vlist [||]
      else raise Mismatch
  | Shape.Collection entries, List ds -> convert_elements entries ds
  | Shape.Collection _, _ -> raise Mismatch

and convert_elements entries ds : tvalue =
  let null_ok = has_null_entry entries in
  match non_null_entries entries with
  | [] ->
      (* [⊥]-like collections: only null elements conform *)
      Vlist
        (Array.of_list
           (List.map
              (fun d -> if d = Data_value.Null then Vnull else raise Mismatch)
              ds))
  | [ f ] ->
      (* single non-null entry: homogeneous check of every element *)
      Vlist
        (Array.of_list
           (List.map
              (fun d ->
                if d = Data_value.Null then
                  if null_ok then Vnull else convert f.shape Data_value.Null
                else convert f.shape d)
              ds))
  | consumers ->
      (* several entries: dispatch by exhibited tag, open world for
         unknown tags and nulls *)
      let conv d =
        if d = Data_value.Null then Vnull
        else
          let t = Shape_check.tag_of_data d in
          match
            List.find_opt
              (fun (e : Shape.entry) -> Tag.equal (Shape.tagof e.shape) t)
              consumers
          with
          | Some e -> convert e.shape d
          | None -> Vany d
      in
      let items = List.map conv ds in
      (* exactly-once entries must actually be matched by some element *)
      List.iter
        (fun (e : Shape.entry) ->
          if
            e.mult = Multiplicity.Single
            && not (List.exists (fun d -> Shape_check.has_shape e.shape d) ds)
          then raise Mismatch)
        consumers;
      Vlist (Array.of_list items)

(* ----- Diagnosis ----- *)

let describe (d : Data_value.t) =
  match d with
  | Null -> "null"
  | Bool _ -> "a boolean"
  | Int i -> Printf.sprintf "the int %d" i
  | Float _ -> "a float"
  | String s ->
      if String.length s > 24 then
        Printf.sprintf "the string %S..." (String.sub s 0 24)
      else Printf.sprintf "the string %S" s
  | List _ -> "a collection"
  | Record (name, _) ->
      if String.equal name Data_value.json_record_name then "a record"
      else Printf.sprintf "a record named %s" name

(* First violation of [has_shape s d], with the path from the root in the
   JSONPath-ish notation of [Explain]. Mirrors [Shape_check.has_shape]
   case for case; the differential suite pins
   [diagnose s d = None <=> has_shape s d]. *)
let rec first_mismatch path (s : Shape.t) (d : Data_value.t) :
    (string * string * string) option =
  let fail expected = Some (path, expected, describe d) in
  match (s, d) with
  | Shape.Bottom, _ -> fail "nothing (bottom)"
  | Shape.Null, Null -> None
  | Shape.Null, _ -> fail "null"
  | Shape.Top _, _ -> None
  | Shape.Nullable _, Null -> None
  | Shape.Nullable s', d -> first_mismatch path s' d
  | Shape.Primitive p, d -> (
      match prim_of_value p d with
      | _ -> None
      | exception Mismatch -> fail (Shape.to_string (Shape.Primitive p)))
  | Shape.Record { name; fields }, Record (name', dfields)
    when String.equal name name' ->
      List.find_map
        (fun (f, fs) ->
          let path = path ^ "." ^ f in
          match List.assoc_opt f dfields with
          | Some v -> first_mismatch path fs v
          | None ->
              if missing_field_default fs <> None then None
              else Some (path, Shape.to_string fs, "a missing field"))
        fields
  | Shape.Record { name; _ }, _ ->
      fail (Printf.sprintf "a record named %s" name)
  | Shape.Collection entries, Null ->
      if Shape_check.has_shape (Shape.Collection entries) Data_value.Null then
        None
      else
        Some
          ( path,
            Shape.to_string (Shape.Collection entries),
            "null (an exactly-once entry cannot be supplied)" )
  | Shape.Collection entries, List ds -> elements_mismatch path entries ds
  | Shape.Collection entries, _ ->
      fail (Shape.to_string (Shape.Collection entries))

and elements_mismatch path entries ds =
  let null_ok = has_null_entry entries in
  let find_at check =
    List.find_map Fun.id
      (List.mapi (fun i d -> check (Printf.sprintf "%s[%d]" path i) d) ds)
  in
  match non_null_entries entries with
  | [] ->
      find_at (fun p d ->
          if d = Data_value.Null then None else Some (p, "null", describe d))
  | [ f ] ->
      find_at (fun p d ->
          if d = Data_value.Null then
            if null_ok || Shape_check.has_shape f.shape Data_value.Null then
              None
            else Some (p, Shape.to_string f.shape, "null")
          else first_mismatch p f.shape d)
  | consumers -> (
      let elt_mismatch =
        find_at (fun p d ->
            if d = Data_value.Null then None
            else
              let t = Shape_check.tag_of_data d in
              match
                List.find_opt
                  (fun (e : Shape.entry) -> Tag.equal (Shape.tagof e.shape) t)
                  consumers
              with
              | Some e -> first_mismatch p e.shape d
              | None -> None)
      in
      match elt_mismatch with
      | Some _ as m -> m
      | None ->
          List.find_map
            (fun (e : Shape.entry) ->
              if
                e.mult = Multiplicity.Single
                && not
                     (List.exists
                        (fun d -> Shape_check.has_shape e.shape d)
                        ds)
              then
                Some
                  ( path,
                    Printf.sprintf "exactly one element of shape %s"
                      (Shape.to_string e.shape),
                    "a collection with none" )
              else None)
            consumers)

let diagnose (s : Shape.t) (d : Data_value.t) : Diagnostic.t option =
  match first_mismatch "$" s d with
  | None -> None
  | Some (at, expected, actual) ->
      Some
        (Diagnostic.make ~severity:Diagnostic.Warning ~format:Diagnostic.Json
           ~line:0 ~column:0
           (Printf.sprintf
              "document does not have the expected shape at %s: expected %s, \
               found %s"
              at expected actual))

(* ----- Compilation ----- *)

(* A decoder consumes one JSON value from the raw lexer state and
   produces its direct representation. It may raise {!Mismatch} eagerly
   at any point — the document driver rewinds to the document start and
   re-derives the truth on the generic path, so decoders never need to
   repair the cursor themselves — and it may raise
   [Diagnostic.Parse_error] through the shared lexer on malformed
   syntax. *)
type decoder = Raw.state -> tvalue

(* A compiled shape, split by the exhibited class of the next token:
   structured openers get dedicated decoders (the opener is peeked, not
   consumed), while scalar tokens are lexed once by the {!run} driver.
   Number/boolean/null tokens reach [of_scalar] as data values; string
   literals reach [of_string] raw, so each shape runs only the part of
   [Primitive.to_value]'s classification cascade that can change its
   verdict (a [string]-shaped slot, e.g., never runs the date scanner:
   both the date and the string reading keep the raw string). The split
   is what keeps the hot path single-scan: a nullable payload or a
   collection element never rewinds to re-lex a token its null check
   already consumed. *)
type compiled_shape = {
  on_record : decoder;  (* next character is '{' *)
  on_array : decoder;  (* next character is '[' *)
  of_scalar : Data_value.t -> tvalue;  (* a lexed number/bool/null token *)
  of_string : string -> tvalue;  (* a lexed string literal, unclassified *)
}

type compiled = { cshape : Shape.t; dec : decoder }

let shape c = c.cshape
let reject_struct : decoder = fun _ -> raise Mismatch
let reject_scalar : Data_value.t -> tvalue = fun _ -> raise Mismatch

(* Decode one value against a compiled shape: dispatch on the first
   token character. Structured openers are left for the shape's own
   decoder to consume. *)
let run (cs : compiled_shape) : decoder =
 fun st ->
  Raw.skip_ws st;
  match Raw.peek_char st with
  | '{' -> cs.on_record st
  | '[' -> cs.on_array st
  | '"' -> cs.of_string (Raw.parse_string st)
  | '-' | '0' .. '9' -> cs.of_scalar (Raw.parse_number st)
  | 't' | 'f' | 'n' -> cs.of_scalar (Raw.parse_value st)
  | _ -> raise Mismatch

(* Decode one generic value and normalize it: the unconstrained-position
   reader (top shapes, unknown tags, fallback). *)
let dec_any st = Vany (Primitive.normalize (Raw.parse_value st))

(* ----- Shape-directed literal classification -----

   Every [of_string] below is extensionally [of_scalar] composed with
   [fst (Primitive.to_value s)] — the differential suite checks this —
   but runs only the classification steps whose outcome the expected
   shape can observe, in [Primitive.classify]'s priority order. *)

(* [List.mem t Primitive.missing_markers], dispatched on length first:
   this runs on every string literal a compiled decoder touches. *)
let is_missing_lit t =
  match String.length t with
  | 0 -> true
  | 1 -> t.[0] = ':' || t.[0] = '-'
  | 2 -> String.equal t "NA"
  | 3 -> String.equal t "N/A"
  | 4 -> String.equal t "#N/A"
  | _ -> false

(* [Primitive.parse_bool] on an already-trimmed literal, without the
   lowercased copy: true/false/yes/no, any case. *)
let bool_lit t =
  let eq_ci lower =
    (* same length by construction of the caller's dispatch *)
    let n = String.length lower in
    let ok = ref true in
    for i = 0 to n - 1 do
      if Char.lowercase_ascii t.[i] <> lower.[i] then ok := false
    done;
    !ok
  in
  match String.length t with
  | 2 -> if eq_ci "no" then Some false else None
  | 3 -> if eq_ci "yes" then Some true else None
  | 4 -> if eq_ci "true" then Some true else None
  | 5 -> if eq_ci "false" then Some false else None
  | _ -> None

let prim_of_string (p : Shape.primitive) : string -> tvalue =
  match p with
  | Shape.Int -> (
      fun s ->
        match Primitive.parse_int s with
        | Some i -> Vint i
        | None -> raise Mismatch)
  | Shape.Float -> (
      fun s ->
        match Primitive.parse_int s with
        | Some i -> Vfloat (float_of_int i)
        | None -> (
            match Primitive.parse_float s with
            | Some f -> Vfloat f
            | None -> raise Mismatch))
  | Shape.Bool -> (
      fun s ->
        match Primitive.parse_int s with
        | Some 0 -> Vbool false
        | Some 1 -> Vbool true
        | Some _ -> raise Mismatch
        | None -> (
            match bool_lit (String.trim s) with
            | Some b -> Vbool b
            | None -> raise Mismatch))
  | Shape.Bit -> (
      fun s ->
        match Primitive.parse_int s with
        | Some 0 -> Vbool false
        | Some 1 -> Vbool true
        | _ -> raise Mismatch)
  | Shape.Bit0 -> (
      fun s ->
        match Primitive.parse_int s with
        | Some 0 -> Vint 0
        | _ -> raise Mismatch)
  | Shape.Bit1 -> (
      fun s ->
        match Primitive.parse_int s with
        | Some 1 -> Vint 1
        | _ -> raise Mismatch)
  | Shape.Date ->
      fun s ->
        let t = String.trim s in
        if
          is_missing_lit t
          || Primitive.parse_int t <> None
          || Primitive.parse_float t <> None
          || bool_lit t <> None
        then raise Mismatch
        else (
          match Date.of_string s with
          | Some d -> Vdate d
          | None -> raise Mismatch)
  | Shape.String ->
      fun s ->
        let t = String.trim s in
        if
          is_missing_lit t
          || Primitive.parse_int t <> None
          || Primitive.parse_float t <> None
          || bool_lit t <> None
        then raise Mismatch
        else Vstring s

let slot_missing = Vany (Data_value.String "\000fsdata-compile-missing")

let rec compile_shape (s : Shape.t) : compiled_shape =
  match s with
  | Shape.Bottom ->
      { on_record = reject_struct; on_array = reject_struct;
        of_scalar = reject_scalar;
        of_string = (fun _ -> raise Mismatch) }
  | Shape.Null ->
      { on_record = reject_struct;
        on_array = reject_struct;
        of_scalar =
          (function Data_value.Null -> Vnull | _ -> raise Mismatch);
        of_string =
          (fun s ->
            if is_missing_lit (String.trim s) then Vnull else raise Mismatch);
      }
  | Shape.Top _ ->
      { on_record = dec_any; on_array = dec_any;
        of_scalar = (fun v -> Vany v);
        of_string = (fun s -> Vany (fst (Primitive.to_value s))) }
  | Shape.Primitive p ->
      { on_record = reject_struct; on_array = reject_struct;
        of_scalar = prim_of_value p;
        of_string = prim_of_string p }
  | Shape.Nullable s' ->
      (* a null token (or a literal normalizing to null) short-circuits;
         everything else is the payload's business, same token *)
      let cs = compile_shape s' in
      {
        cs with
        of_scalar =
          (function Data_value.Null -> Vnull | v -> cs.of_scalar v);
        of_string =
          (fun s ->
            if is_missing_lit (String.trim s) then Vnull else cs.of_string s);
      }
  | Shape.Record r -> compile_record r
  | Shape.Collection entries -> compile_collection entries

and compile_record { Shape.name; fields } : compiled_shape =
  if not (String.equal name Data_value.json_record_name) then
    (* JSON objects are all named [json_record_name]; an XML-derived
       record shape can never match JSON input directly *)
    { on_record = reject_struct; on_array = reject_struct;
      of_scalar = reject_scalar;
      of_string = (fun _ -> raise Mismatch) }
  else begin
    let slots =
      Array.of_list
        (List.map
           (fun (key, fs) ->
             (key, run (compile_shape fs), missing_field_default fs))
           fields)
    in
    let nslots = Array.length slots in
    (* raw byte images of the keys for the in-order fast path: matching
       ["key"] against the source directly skips the decode+hash of the
       common case (escaped spellings fall through to the hashtable) *)
    let quoted = Array.map (fun (key, _, _) -> "\"" ^ key ^ "\"") slots in
    let index = Hashtbl.create (max 4 (2 * nslots)) in
    Array.iteri (fun i (key, _, _) -> Hashtbl.replace index key i) slots;
    let on_record st =
      Raw.advance st (* past '{' *);
      let values = Array.make nslots slot_missing in
      (* fields usually arrive in shape order: try the next expected slot
         before the hashtable *)
      let expected = ref 0 in
      Raw.skip_ws st;
      (match Raw.peek_char st with
      | '}' -> Raw.advance st
      | _ ->
          let rec members () =
            Raw.skip_ws st;
            let slot =
              let e = !expected in
              if e < nslots && Raw.lit st quoted.(e) then begin
                expected := e + 1;
                e
              end
              else
                let key = Raw.parse_string st in
                match Hashtbl.find_opt index key with
                | Some i ->
                    (* keep the in-order fast path alive across skipped
                       optional fields *)
                    expected := i + 1;
                    i
                | None -> -1
            in
            Raw.skip_ws st;
            Raw.expect st ':';
            if slot >= 0 then begin
              let _, dec, _ = slots.(slot) in
              (* last binding wins on duplicate keys, like the generic
                 parser *)
              values.(slot) <- dec st
            end
            else ignore (Raw.parse_value st);
            Raw.skip_ws st;
            match Raw.peek_char st with
            | ',' ->
                Raw.advance st;
                members ()
            | '}' -> Raw.advance st
            | _ -> raise Mismatch
          in
          members ());
      let out =
        Array.mapi
          (fun i v ->
            let key, _, default = slots.(i) in
            if v != slot_missing then (key, v)
            else
              match default with
              | Some t -> (key, t)
              | None -> raise Mismatch)
          values
      in
      Vrecord (name, out)
    in
    { on_record; on_array = reject_struct; of_scalar = reject_scalar;
      of_string = (fun _ -> raise Mismatch) }
  end

and compile_collection entries : compiled_shape =
  let null_ok =
    Shape_check.has_shape (Shape.Collection entries) Data_value.Null
  in
  let dec_elements = compile_elements entries in
  {
    on_record = reject_struct;
    on_array =
      (fun st ->
        Raw.advance st (* past '[' *);
        Vlist (dec_elements st));
    of_scalar =
      (* a null (or a literal normalizing to null) reads as the empty
         collection when the shape admits it *)
      (function
      | Data_value.Null when null_ok -> Vlist [||]
      | _ -> raise Mismatch);
    of_string =
      (fun s ->
        if null_ok && is_missing_lit (String.trim s) then Vlist [||]
        else raise Mismatch);
  }

(* Decode the elements of an already-opened array (the '[' is consumed),
   returning them in order and consuming the closing ']'. *)
and compile_elements entries : Raw.state -> tvalue array =
  let dec_one = run (compile_element entries) in
  fun st ->
    Raw.skip_ws st;
    if Raw.peek_char st = ']' then begin
      Raw.advance st;
      finish_elements entries [] st
    end
    else begin
      let items = ref [] in
      let rec elements () =
        items := dec_one st :: !items;
        Raw.skip_ws st;
        match Raw.peek_char st with
        | ',' ->
            Raw.advance st;
            Raw.skip_ws st;
            elements ()
        | ']' -> Raw.advance st
        | _ -> raise Mismatch
      in
      elements ();
      finish_elements entries (List.rev !items) st
    end

and finish_elements entries items _st =
  (* Exactly-once entries of a multi-entry collection must be matched by
     some element. The compiled path tracks only which entry each element
     decoded through; an element can also satisfy an entry it did not
     decode through (a top-shaped entry, a null against a collection
     entry), so rather than re-deriving [has_shape] here we are
     conservative: when the cheap check fails, raise and let the generic
     fallback decide — it either converts cleanly (no diagnostic) or
     produces the exact diagnosis. *)
  match non_null_entries entries with
  | [] | [ _ ] -> Array.of_list items
  | consumers ->
      List.iter
        (fun (e : Shape.entry) ->
          if
            e.mult = Multiplicity.Single
            && not
                 (List.exists
                    (fun t -> Shape_check.has_shape e.shape (to_data t))
                    items)
          then raise Mismatch)
        consumers;
      Array.of_list items

and compile_element entries : compiled_shape =
  let null_ok = has_null_entry entries in
  match non_null_entries entries with
  | [] ->
      { on_record = reject_struct;
        on_array = reject_struct;
        of_scalar =
          (function Data_value.Null -> Vnull | _ -> raise Mismatch);
        of_string =
          (fun s ->
            if is_missing_lit (String.trim s) then Vnull else raise Mismatch);
      }
  | [ f ] ->
      let cs = compile_shape f.shape in
      let null_elem =
        if null_ok then Some Vnull
        else
          match convert f.shape Data_value.Null with
          | t -> Some t
          | exception Mismatch -> None
      in
      let as_null () =
        match null_elem with Some t -> t | None -> raise Mismatch
      in
      {
        cs with
        of_scalar =
          (function Data_value.Null -> as_null () | v -> cs.of_scalar v);
        of_string =
          (fun s ->
            if is_missing_lit (String.trim s) then as_null ()
            else cs.of_string s);
      }
  | consumers ->
      (* dispatch on the exhibited tag of the next token; unknown tags
         are never accessed by provided code and read as [Vany] *)
      let consumer tag =
        List.find_opt
          (fun (e : Shape.entry) -> Tag.equal (Shape.tagof e.shape) tag)
          consumers
      in
      let struct_for tag proj =
        match consumer tag with
        | Some e -> proj (compile_shape e.shape)
        | None -> dec_any
      in
      let scalar_for tag =
        match consumer tag with
        | Some e -> (compile_shape e.shape).of_scalar
        | None -> fun v -> Vany v
      in
      let on_number = scalar_for Tag.Number in
      let on_bool = scalar_for Tag.Bool in
      let on_string = scalar_for Tag.String in
      let of_scalar =
        (* the literal decides the tag only after normalization:
           "12" exhibits Number, "" exhibits Null *)
        function
        | Data_value.Null -> Vnull
        | (Data_value.Int _ | Data_value.Float _) as v -> on_number v
        | Data_value.Bool _ as v -> on_bool v
        | v -> on_string v
      in
      {
        on_record =
          struct_for (Tag.Record Data_value.json_record_name) (fun cs ->
              cs.on_record);
        on_array = struct_for Tag.Collection (fun cs -> cs.on_array);
        of_scalar;
        of_string = (fun s -> of_scalar (fst (Primitive.to_value s)));
      }

let compile (s : Shape.t) : compiled =
  Fsdata_obs.Trace.with_span "compile.build" @@ fun () ->
  Fsdata_obs.Metrics.incr m_parsers;
  Fsdata_obs.Metrics.time m_build_ns @@ fun () ->
  { cshape = s; dec = run (compile_shape s) }

(* ----- Decoding drivers ----- *)

type outcome = Direct of tvalue | Fallback of tvalue * Diagnostic.t

type stats = { direct : int; fallback : int; skipped : int }

let reraise_legacy (d : Diagnostic.t) =
  raise
    (Json.Parse_error { line = d.line; column = d.column; message = d.message })

(* Decode one document starting at the current position. On a compiled
   mismatch — or a parse error, which on a desynchronized compiled path
   may be spurious — rewind to the document start and re-derive the truth
   generically: parse, normalize, diagnose. The cursor always ends at a
   sound position: after the document on any parse (the generic re-parse
   consumed it), and the caller resynchronizes on `Malformed. *)
let decode_one (c : compiled) st =
  let m = Raw.mark st in
  match c.dec st with
  | v ->
      Fsdata_obs.Metrics.incr m_direct;
      `Direct v
  | exception (Mismatch | Diagnostic.Parse_error _) -> (
      Raw.reset st m;
      match Raw.parse_value st with
      | dv -> (
          let dv = Primitive.normalize dv in
          match diagnose c.cshape dv with
          | Some d ->
              Fsdata_obs.Metrics.incr m_fallback;
              `Fallback (Vany dv, d)
          | None ->
              (* the compiled decoder was conservative (duplicate keys,
                 multiplicity corner cases): the document conforms *)
              Fsdata_obs.Metrics.incr m_direct;
              `Direct (convert c.cshape dv))
      | exception Diagnostic.Parse_error d -> `Malformed d)

let parse (c : compiled) (src : string) : outcome =
  Fsdata_obs.Trace.with_span "compile.parse" @@ fun () ->
  let st = Raw.make src in
  Raw.skip_ws st;
  let finish () =
    Raw.skip_ws st;
    match Raw.peek st with
    | Some ch ->
        Raw.fail st (Printf.sprintf "trailing content after JSON value: %C" ch)
    | None -> ()
  in
  match
    match decode_one c st with
    | `Direct v ->
        finish ();
        Direct v
    | `Fallback (v, d) ->
        finish ();
        Fallback (v, d)
    | `Malformed d -> raise (Diagnostic.Parse_error d)
  with
  | outcome -> outcome
  | exception Diagnostic.Parse_error d -> reraise_legacy d

let fold_corpus ?(cancel = Cancel.never) ?on_error (c : compiled)
    (f : 'acc -> outcome -> [ `Continue of 'acc | `Stop of 'acc ])
    (acc : 'acc) (src : string) : 'acc * stats =
  Fsdata_obs.Trace.with_span "compile.parse" @@ fun () ->
  let st = Raw.make src in
  let direct = ref 0 and fellback = ref 0 and skipped = ref 0 in
  let rec loop acc idx =
    Raw.skip_ws st;
    if Raw.at_eof st then acc
    else begin
      Cancel.check cancel;
      let start = Raw.offset st in
      match decode_one c st with
      | `Direct v -> (
          incr direct;
          match f acc (Direct v) with
          | `Continue acc -> loop acc (idx + 1)
          | `Stop acc -> acc)
      | `Fallback (v, d) -> (
          incr fellback;
          match f acc (Fallback (v, Diagnostic.with_index idx d)) with
          | `Continue acc -> loop acc (idx + 1)
          | `Stop acc -> acc)
      | `Malformed d -> (
          match on_error with
          | None -> reraise_legacy d
          | Some handler ->
              (* skip the malformed document and resynchronize at the
                 next top-level boundary, exactly like [Json.fold_many]'s
                 recovering mode *)
              ignore (Raw.resync st ~start);
              let text =
                String.trim (String.sub src start (Raw.offset st - start))
              in
              incr skipped;
              handler (Diagnostic.with_index idx d) ~skipped:text;
              loop acc (idx + 1))
    end
  in
  let acc = loop acc 0 in
  (acc, { direct = !direct; fallback = !fellback; skipped = !skipped })

let parse_corpus ?cancel ?on_fallback ?on_error (c : compiled) (src : string) :
    tvalue list * stats =
  let results, stats =
    fold_corpus ?cancel ?on_error c
      (fun acc outcome ->
        match outcome with
        | Direct v -> `Continue (v :: acc)
        | Fallback (v, d) ->
            (match on_fallback with Some f -> f d | None -> ());
            `Continue (v :: acc))
      [] src
  in
  (List.rev results, stats)
