(** Shape inference from sample data (Figure 3).

    [S(d)] maps a data value to its most specific shape; [S(d1, ..., dn)]
    folds the common preferred shape over several samples starting from
    bottom. Records are handled with the row-variable mechanism of the
    paper: the minimal ground substitution surfaces as the
    make-one-sided-fields-nullable rule inside {!Csh.csh}.

    Two axes of configuration mirror the paper:

    - [`Paper] inference is Figure 3 verbatim: integers are [int], strings
      are [string], collections are homogeneous (rule (list) of Figure 2).
      This is the algebra used by the formal development of Sections 3-5.
    - [`Practical] inference (the default; what F# Data ships) additionally
      (a) classifies string literals with {!Fsdata_data.Primitive} — so
      ["35.14229"] infers as [float], ["2012"] as [int], ["2012-05-01"] as
      [date], ["0"]/["1"] as [bit], missing-value markers as [null]
      (Section 6.2) — and (b) infers heterogeneous collections with
      multiplicities (Section 6.4).
    - [`Xml] is [`Practical] except that collections follow the XML
      discipline of Section 2.2: the elements of a body are joined into a
      single entry (a labelled top when several element kinds occur), so
      that the provider exposes an element type with optional members
      rather than per-tag accessors. *)

type mode = [ `Paper | `Practical | `Xml ]

val shape_of_value : ?mode:mode -> Fsdata_data.Data_value.t -> Shape.t
(** [S(d)]. Default mode is [`Practical]. *)

val shape_of_samples : ?mode:mode -> Fsdata_data.Data_value.t list -> Shape.t
(** [S(d1, ..., dn)] — bottom when the list is empty. *)

val classify_string : string -> Shape.t
(** The shape a string literal infers to in practical mode. *)

val csh_mode : mode -> Csh.mode
(** The collection-merging discipline each inference mode folds with:
    [`Paper] → [`Core], [`Practical] → [`Hetero], [`Xml] → [`Xml]. *)

(** {1 Fault-tolerant inference}

    The strict entry points below abort on the first malformed sample.
    The [_tolerant] variants instead {e quarantine} faulty samples —
    recording a structured diagnostic and the skipped text, and leaving
    them out of the csh fold — as long as the number of faults stays
    within an error budget. With budget {!Fsdata_data.Diagnostic.Strict}
    any fault is over budget, so tolerance is strictly opt-in.

    Every tolerant driver takes an optional [cancel] token
    ({!Fsdata_data.Cancel.t}), polled between samples — outside
    {!shape_of_sample}'s isolation boundary, so cancellation is never
    swallowed as a quarantine diagnostic. When the token trips the
    driver raises {!Fsdata_data.Cancel.Cancelled}; the serve layer uses
    this to cut off requests whose deadline expired mid-parse. *)

type quarantined = {
  q_index : int;  (** global 0-based sample index within the corpus *)
  q_diagnostic : Fsdata_data.Diagnostic.t;
  q_text : string option;  (** the skipped raw text, when available *)
}

type report = {
  shape : Shape.t;  (** the shape of the clean subset *)
  total : int;  (** samples seen, parsed and quarantined alike *)
  quarantined : quarantined list;  (** in sample order *)
}

val sort_quarantined : quarantined list -> quarantined list
(** Stable sort by global sample index. *)

val budget_error :
  budget:Fsdata_data.Diagnostic.budget ->
  total:int ->
  quarantined list ->
  string option
(** [Some message] when the quarantine list exceeds the budget over
    [total] samples; the message names the first offending sample. *)

val shape_of_sample :
  mode:mode ->
  format:Fsdata_data.Diagnostic.format ->
  index:int ->
  parse:(string -> (Fsdata_data.Data_value.t, Fsdata_data.Diagnostic.t) result) ->
  string ->
  (Shape.t, Fsdata_data.Diagnostic.t) result
(** Parse and infer one sample, converting any fault — a parse error or
    an unexpected exception escaping [parse] or inference — into a
    diagnostic carrying the sample's [index]. Never raises; this is the
    per-sample isolation boundary the parallel drivers rely on. *)

val of_json_samples_tolerant :
  ?cancel:Fsdata_data.Cancel.t ->
  ?mode:mode ->
  budget:Fsdata_data.Diagnostic.budget ->
  string list ->
  (report, string) result

val of_xml_samples_tolerant :
  ?cancel:Fsdata_data.Cancel.t ->
  ?mode:mode ->
  budget:Fsdata_data.Diagnostic.budget ->
  string list ->
  (report, string) result
(** Default mode is [`Xml], as for {!of_xml_samples}. *)

val of_json_tolerant :
  ?cancel:Fsdata_data.Cancel.t ->
  ?mode:mode ->
  budget:Fsdata_data.Diagnostic.budget ->
  string ->
  (report, string) result
(** Streaming variant over a whitespace-separated document stream:
    malformed documents are skipped via {!Fsdata_data.Json.fold_many}'s
    recovering mode, resynchronizing at the next top-level document
    boundary. *)

val of_json_feed_tolerant :
  ?cancel:Fsdata_data.Cancel.t ->
  ?mode:mode ->
  budget:Fsdata_data.Diagnostic.budget ->
  ((string -> unit) -> unit) ->
  (report, string) result
(** Incremental variant of {!of_json_tolerant}: [of_json_feed_tolerant
    ~budget feed] calls [feed push] and infers over every fragment the
    caller [push]es, holding at most one partial document (plus the
    current fragment) in memory via {!Fsdata_data.Json.Cursor}. Same
    recovering semantics, diagnostics, stream-global indices and ingest
    accounting as {!of_json_tolerant}; the serve layer uses it to infer
    over request bodies without buffering them. Merge batching follows
    fragment boundaries instead of [fold_many]'s document chunks, so
    outputs agree byte-for-byte wherever csh is representation-level
    associative (everywhere but the mixed-tag corpora documented in
    {!Csh}). *)

val of_csv_tolerant :
  ?cancel:Fsdata_data.Cancel.t ->
  ?separator:char ->
  ?has_headers:bool ->
  budget:Fsdata_data.Diagnostic.budget ->
  string ->
  (report, string) result
(** Each data row is a sample; ragged rows are quarantined. Structural
    faults (unterminated quoted cells) abort regardless of budget.
    [cancel] is polled once at entry (row parsing is a single pass). *)

(** {1 Format entry points}

    Each parses its input and infers the shape of the samples it contains,
    the way the corresponding F# Data type provider does. *)

val of_json : ?mode:mode -> string -> (Shape.t, string) result
(** One or more whitespace-separated JSON sample documents. *)

val of_json_samples : ?mode:mode -> string list -> (Shape.t, string) result
(** Several separate JSON sample strings (the multi-sample static
    parameter of the provider). *)

val of_xml : ?mode:mode -> string -> (Shape.t, string) result
(** A single XML sample document; the default mode here is [`Xml]. *)

val of_xml_samples : ?mode:mode -> string list -> (Shape.t, string) result

val of_csv : ?separator:char -> ?has_headers:bool -> string -> (Shape.t, string) result
(** A CSV sample; the shape is the collection of row-record shapes
    (Section 6.2). CSV inference is always practical: its literals carry
    no types. *)
