module Xml = Fsdata_data.Xml

type body =
  | Body_none
  | Body_primitive of Shape.t
  | Body_children of (string * Multiplicity.t) list

type element_signature = {
  element_name : string;
  attributes : (string * Shape.t) list;
  body : body;
}

type t = { root : string; elements : element_signature list }

(* One occurrence of an element in a sample. *)
type occurrence = {
  occ_attrs : (string * Shape.t) list;
  occ_body : body;
}

let occurrence_of (tree : Xml.tree) : occurrence =
  let occ_attrs =
    List.map (fun (k, v) -> (k, Infer.classify_string v)) tree.Xml.attributes
  in
  let children =
    List.filter_map
      (function Xml.Element e -> Some e.Xml.name | _ -> None)
      tree.Xml.children
  in
  let occ_body =
    match children with
    | [] ->
        let text = String.trim (Xml.text_content tree) in
        if text = "" then Body_none else Body_primitive (Infer.classify_string text)
    | names ->
        let counts = Hashtbl.create 8 in
        List.iter
          (fun n ->
            Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
          names;
        Body_children
          (Hashtbl.fold (fun n c acc -> (n, Multiplicity.of_count c) :: acc) counts []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b))
  in
  { occ_attrs; occ_body }

let merge_attrs a1 a2 =
  (* like record-field merging in csh: common attributes join, one-sided
     attributes become nullable *)
  let absent s = Csh.csh ~mode:`Xml Shape.Null s in
  List.map
    (fun (n, s1) ->
      match List.assoc_opt n a2 with
      | Some s2 -> (n, Csh.csh ~mode:`Xml s1 s2)
      | None -> (n, absent s1))
    a1
  @ List.filter_map
      (fun (n, s2) -> if List.mem_assoc n a1 then None else Some (n, absent s2))
      a2

let merge_children c1 c2 =
  let names =
    List.sort_uniq String.compare (List.map fst c1 @ List.map fst c2)
  in
  List.map
    (fun n ->
      match (List.assoc_opt n c1, List.assoc_opt n c2) with
      | Some m1, Some m2 -> (n, Multiplicity.lub m1 m2)
      | Some m, None | None, Some m -> (n, Multiplicity.widen_absent m)
      | None, None -> assert false)
    names

let merge_body b1 b2 =
  match (b1, b2) with
  | Body_none, b | b, Body_none -> (
      (* an empty occurrence weakens the others: text becomes nullable,
         children's multiplicities widen *)
      match b with
      | Body_none -> Body_none
      | Body_primitive s -> Body_primitive (Csh.csh ~mode:`Xml Shape.Null s)
      | Body_children cs ->
          Body_children
            (List.map (fun (n, m) -> (n, Multiplicity.widen_absent m)) cs))
  | Body_primitive s1, Body_primitive s2 ->
      Body_primitive (Csh.csh ~mode:`Xml s1 s2)
  | Body_children c1, Body_children c2 -> Body_children (merge_children c1 c2)
  | Body_children cs, Body_primitive _ | Body_primitive _, Body_children cs ->
      (* mixed across occurrences: element content wins, text is not
         exposed (Section 6.3) *)
      Body_children (List.map (fun (n, m) -> (n, Multiplicity.widen_absent m)) cs)

let merge_occurrence table name (occ : occurrence) =
  match Hashtbl.find_opt table name with
  | None -> Hashtbl.replace table name occ
  | Some prev ->
      Hashtbl.replace table name
        {
          occ_attrs = merge_attrs prev.occ_attrs occ.occ_attrs;
          occ_body = merge_body prev.occ_body occ.occ_body;
        }

let rec collect table (tree : Xml.tree) =
  merge_occurrence table tree.Xml.name (occurrence_of tree);
  List.iter
    (function Xml.Element e -> collect table e | _ -> ())
    tree.Xml.children

let of_table root table =
  let elements =
    Hashtbl.fold
      (fun name (occ : occurrence) acc ->
        { element_name = name; attributes = occ.occ_attrs; body = occ.occ_body }
        :: acc)
      table []
    |> List.sort (fun a b -> String.compare a.element_name b.element_name)
  in
  { root; elements }

let infer tree =
  let table = Hashtbl.create 16 in
  collect table tree;
  of_table tree.Xml.name table

let infer_many trees =
  match trees with
  | [] -> Error "global XML inference: no samples"
  | first :: _ ->
      let roots = List.sort_uniq String.compare (List.map (fun t -> t.Xml.name) trees) in
      if List.length roots > 1 then
        Error
          (Printf.sprintf "global XML inference: samples have different roots (%s)"
             (String.concat ", " roots))
      else begin
        let table = Hashtbl.create 16 in
        List.iter (collect table) trees;
        Ok (of_table first.Xml.name table)
      end

let of_strings sources =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match Xml.parse_result s with
        | Ok t -> parse (t :: acc) rest
        | Error e -> Error e)
  in
  match parse [] sources with
  | Error e -> Error e
  | Ok trees -> infer_many trees

let find t name =
  List.find_opt (fun e -> String.equal e.element_name name) t.elements

let pp_body ppf = function
  | Body_none -> Fmt.string ppf "empty"
  | Body_primitive s -> Shape.pp ppf s
  | Body_children cs ->
      Fmt.pf ppf "[@[<hov>%a@]]"
        Fmt.(
          list ~sep:(any " |@ ") (fun ppf (n, m) ->
              Fmt.pf ppf "%s, %a" n Multiplicity.pp m))
        cs

let pp ppf t =
  Fmt.pf ppf "@[<v>root: %s@ %a@]" t.root
    Fmt.(
      list ~sep:(any "@ ") (fun ppf e ->
          Fmt.pf ppf "@[<hov 2>%s {%a} \xe2\x86\x92 %a@]" e.element_name
            Fmt.(
              list ~sep:(any ",@ ") (fun ppf (n, s) ->
                  Fmt.pf ppf "%s: %a" n Shape.pp s))
            e.attributes pp_body e.body))
    t.elements
