(** The runtime shape test [hasShape] (Figure 6, Part I).

    [has_shape s d] decides whether the data value [d] has shape [s]. The
    provided code uses it to guard the members of labelled top shapes
    (Section 4.2) and to select elements of heterogeneous collections
    (Section 6.4).

    The implementation follows Figure 6 with two documented closures of
    gaps in the published rules:

    - Figure 6 gives no rule for [nullable s], yet record fields of label
      shapes are routinely nullable; we use
      [has_shape (nullable s) d = (d = null) ∨ has_shape s d].
    - The record rule as printed requires every shape field to be present
      in the value; a value record missing field [f] is observationally
      identical to one with [f ↦ null] (that is what [convField] passes to
      the continuation), so a missing field passes iff its shape admits
      null.

    Both closures only make the test accept more values whose subsequent
    conversions cannot get stuck, so Lemma 2 is preserved.

    For heterogeneous collections the test mirrors the provider's reading
    (see {!Preference}): a single non-null entry checks every element
    homogeneously; several entries check elements that match some entry's
    tag and ignore unknown-tag and null elements (open world). *)

val has_shape : Shape.t -> Fsdata_data.Data_value.t -> bool
(** [has_shape s d] is the Figure 6 judgement [hasShape(s, d)], with the
    nullable and missing-field closures described above. Total: never
    raises, and runs in one traversal of [d] (shapes are not expanded —
    a labelled top checks only the exhibited tag). *)

val tag_of_data : Fsdata_data.Data_value.t -> Tag.t
(** The tag a data value exhibits at runtime: numbers are [Number],
    records their name, lists [Collection], etc. Strings are [String]
    regardless of content — runtime dispatch never re-classifies literals.
*)
