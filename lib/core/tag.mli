(** Shape tags (Figure 4 of the paper).

    A tag identifies a group of shapes that have a common preferred shape
    other than the top shape. Labelled top shapes and heterogeneous
    collections keep at most one label per tag: rather than inferring
    [any<int, any<bool, float>>], the algorithm joins [int] and [float]
    (both tagged [number]) and produces [any<float, bool>]. *)

type t =
  | Null  (** used only for null elements inside heterogeneous collections *)
  | Bool
  | Number  (** int, float and the bit shape of Section 6.2 *)
  | String
  | Date  (** the date shape of Section 6.2; joins with [string] *)
  | Record of string  (** the paper's [nu] tag: records are tagged by name *)
  | Collection
  | Nullable
  | Top

val equal : t -> t -> bool
val compare : t -> t -> int

val to_member_name : t -> string
(** The name a type provider uses for the member corresponding to a label
    with this tag (Section 4.2: "we can use the tag for the name of the
    generated member"; Section 2.3 uses [Record] and [Array]). Record tags
    use their name (the anonymous JSON record name becomes ["Record"]),
    collections become ["Array"], primitives their capitalized kind. *)

val pp : Format.formatter -> t -> unit
