open Shape

let is_preferred_primitive (a : primitive) (b : primitive) =
  match (a, b) with
  | x, y when x = y -> true
  | (Bit0 | Bit1), (Bit | Bool | Int | Float) -> true
  | Bit, (Bool | Int | Float) -> true
  | Int, Float -> true
  | Date, String -> true
  | _ -> false

let rec is_preferred s1 s2 =
  match (s1, s2) with
  (* s ⊑ any, with labelled tops behaving as the top shape regardless of
     labels (Section 3.5). *)
  | _, Top _ -> true
  | Bottom, _ -> true
  | Null, (Null | Nullable _) -> true
  | Null, Collection entries -> (
      (* null reads as the empty collection: fine unless the consumer is a
         tag-dispatched class (>= 2 non-null entries) with an entry
         required to occur exactly once *)
      match List.filter (fun (e : entry) -> e.shape <> Null) entries with
      | [] | [ _ ] -> true
      | consumers ->
          List.for_all
            (fun (e : entry) -> e.mult <> Multiplicity.Single)
            consumers)
  | Null, _ -> false
  | Primitive a, Primitive b -> is_preferred_primitive a b
  | Primitive a, Nullable (Primitive b) -> is_preferred_primitive a b
  | Record r1, Record r2 -> record_preferred r1 r2
  | Record r1, Nullable (Record r2) -> record_preferred r1 r2
  | Nullable a, Nullable b -> is_preferred a b
  | Collection e1, Collection e2 -> entries_preferred e1 e2
  | _ -> false

and record_preferred r1 r2 =
  String.equal r1.name r2.name
  && List.for_all
       (fun (field, s2) ->
         match List.assoc_opt field r1.fields with
         | Some s1 -> is_preferred s1 s2
         | None ->
             (* Null-field extension: a missing field reads as null via
                convField, so the consumer's field shape must admit null. *)
             is_preferred Null s2)
       r2.fields

and entries_preferred e1 e2 =
  (* The meaning of [⊑] on collections follows the code the type provider
     generates for the consumer shape (which is what safety is about):

     - no non-null entry: the element type is the opaque [⊥]/null class;
       we keep the paper's conservative rule [[s] ⊑ [⊥] iff s ⊑ ⊥];
     - exactly one non-null entry: a homogeneous list — every input
       element is converted, so every input entry shape must be preferred
       over the element shape (made nullable when the consumer also saw
       null elements, since the provider then produces an option list);
     - several non-null entries: a tag-dispatched class (Section 6.4) —
       each consumer entry must be matched by tag with preferred shape and
       multiplicity, or be absent-tolerant ([1?] or [*]); input entries
       with tags unknown to the consumer are never accessed, and null
       elements fail every member's shape test, so both are permitted. *)
  let non_null = List.filter (fun (e : entry) -> e.shape <> Null) in
  let has_null es = List.exists (fun (e : entry) -> e.shape = Null) es in
  match non_null e2 with
  | [] ->
      (* Paper rule (5) at the degenerate element shapes: [s] ⊑ [⊥] only
         for s = ⊥, and [⊥] ⊑ [null] since ⊥ ⊑ null. *)
      if has_null e2 then non_null e1 = [] else e1 = []
  | [ f ] ->
      (* Null input entries are safe when the consumer saw nulls (its
         element conversion is then optional), or when the element shape
         itself absorbs null safely. *)
      List.for_all
        (fun (e : entry) ->
          if e.shape = Null then has_null e2 || is_preferred Null f.shape
          else is_preferred e.shape f.shape)
        e1
  | consumer ->
      List.for_all
        (fun (f : entry) ->
          let tag = tagof f.shape in
          match
            List.find_opt (fun (e : entry) -> Tag.equal (tagof e.shape) tag) e1
          with
          | Some e ->
              is_preferred e.shape f.shape
              && Multiplicity.is_preferred e.mult f.mult
          | None -> (
              match f.mult with
              | Multiplicity.Single -> false
              | Multiplicity.Optional_single | Multiplicity.Multiple -> true))
        consumer

let equivalent a b = is_preferred a b && is_preferred b a
