type t =
  | Null
  | Bool
  | Number
  | String
  | Date
  | Record of string
  | Collection
  | Nullable
  | Top

let rank = function
  | Null -> 0
  | Bool -> 1
  | Number -> 2
  | String -> 3
  | Date -> 4
  | Record _ -> 5
  | Collection -> 6
  | Nullable -> 7
  | Top -> 8

let compare a b =
  match (a, b) with
  | Record x, Record y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_member_name = function
  | Null -> "Null"
  | Bool -> "Boolean"
  | Number -> "Number"
  | String -> "String"
  | Date -> "Date"
  | Record name ->
      if name = Fsdata_data.Data_value.json_record_name then "Record" else name
  | Collection -> "Array"
  | Nullable -> "Nullable"
  | Top -> "Any"

let pp ppf t =
  Fmt.string ppf
    (match t with
    | Null -> "null"
    | Bool -> "bool"
    | Number -> "number"
    | String -> "string"
    | Date -> "date"
    | Record name -> name
    | Collection -> "collection"
    | Nullable -> "nullable"
    | Top -> "any")
