(** Multiplicities for heterogeneous collections (Section 6.4).

    {v psi = 1? | 1 | * v}

    A heterogeneous collection records, for every element tag appearing in
    the samples, how many elements of that tag one collection instance
    contains: exactly one ([Single]), zero or one ([Optional_single]), or
    zero or more ([Multiple]). The type provider maps these to a plain
    member, an option and a list, respectively.

    Multiplicities are ordered [Single <= Optional_single <= Multiple]
    consistently with the preferred shape relation: a collection carrying
    exactly one element of some tag can always be consumed by code that
    expects zero-or-one or zero-or-more of them. *)

type t = Single | Optional_single | Multiple

val equal : t -> t -> bool

val is_preferred : t -> t -> bool
(** The order [Single <= Optional_single <= Multiple]. *)

val lub : t -> t -> t
(** Least upper bound; used when merging two samples that both contain the
    tag ("turning 1 and 1? into 1?" in the paper's words). *)

val widen_absent : t -> t
(** Adjust a multiplicity when another sample's collection does not contain
    the tag at all: [Single] weakens to [Optional_single]; the others are
    unchanged. *)

val of_count : int -> t
(** Multiplicity observed in a single sample: 1 occurrence is [Single],
    more is [Multiple]. [of_count 0] is invalid. *)

val pp : Format.formatter -> t -> unit
(** Paper notation: [1], [1?], [*]. *)
