(** Parsers from shapes: shape-specialized parser compilation.

    The paper's pipeline is interpretive at runtime: parse JSON into a
    {!Fsdata_data.Data_value.t}, normalize string literals, then convert
    through the provided accessors, re-checking [hasShape] along the way.
    Once a shape [σ] is known — inferred from samples or supplied by the
    caller — that interpreter can be compiled away: [compile σ] builds a
    {e direct} parser that matches record fields by their expected keys,
    decodes primitives straight into the target representation
    ({!tvalue}), and never materializes the intermediate [Data_value.t]
    on the conforming path.

    Semantics are pinned to the existing interpreted pipeline, which
    stays the specification:

    - a document is decoded directly iff
      [Shape_check.has_shape σ (Primitive.normalize (Json.parse text))]
      holds, and the direct result equals {!convert} of that normalized
      value (the differential test harness asserts both);
    - on a mismatch the driver {e falls back} per document: it rewinds to
      the document start, re-parses generically, and either emits the
      normalized value with a {!Diagnostic.t} explaining the first
      violation ({!diagnose}), or — when the compiled decoder was merely
      conservative (duplicate keys, multiplicity corner cases) — the
      converted value with no diagnostic;
    - malformed documents behave exactly like [Json.fold_many]'s
      recovering mode: same diagnostics, same resynchronization at
      top-level boundaries (the decoders drive [Json.Raw], the generic
      parser's own lexer), same 0-based document indices.

    Instrumented with [compile.*] counters and [compile.build] /
    [compile.parse] spans (docs/OBSERVABILITY.md). *)

open Fsdata_data

(** {1 Target representation} *)

(** The direct decode target: what the provided accessors would have
    extracted, without the detour through [Data_value.t]. [Vany] carries
    the normalized generic value for the positions a shape does not
    constrain (top-shaped subtrees, unknown-tag collection elements,
    fallback documents). *)
type tvalue =
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vdate of Date.t
  | Vlist of tvalue array
  | Vrecord of string * (string * tvalue) array
  | Vany of Data_value.t

val equal_tvalue : tvalue -> tvalue -> bool

val to_data : tvalue -> Data_value.t
(** Lower back to the generic representation (dates render as ISO 8601
    strings); [to_data (convert s d)] is observationally the conforming
    part of [d]. *)

val pp_tvalue : Format.formatter -> tvalue -> unit
(** JSON rendering of {!to_data}. *)

(** {1 The interpreted reference} *)

exception Mismatch
(** Raised by {!convert} (and internally by compiled decoders) when a
    value does not have the shape. Carries no payload on purpose — the
    explanatory API is {!diagnose}. *)

val convert : Shape.t -> Data_value.t -> tvalue
(** [convert s d] is the interpreted conversion of the {e normalized}
    value [d] through shape [s] — the executable specification the
    compiled parsers are tested against. Succeeds exactly when
    [Shape_check.has_shape s d] (property-tested).
    @raise Mismatch when [not (has_shape s d)]. *)

val diagnose : Shape.t -> Data_value.t -> Diagnostic.t option
(** [diagnose s d] is [None] iff [Shape_check.has_shape s d]; otherwise a
    warning-severity JSON diagnostic (positions unknown, hence 0/0)
    pinpointing the first violation: the path from the root, the expected
    shape and the found value kind. Both the compiled fallback and any
    strict conformance report use this one function, so their fields
    agree by construction. *)

(** {1 Compilation} *)

type compiled
(** A parser specialized to one shape. Immutable and domain-safe: decoding
    allocates only per-document state, so one compiled parser may be used
    from several domains concurrently. *)

val compile : Shape.t -> compiled
(** Build the direct decoder tree for [σ]: per-record key-slot tables with
    an expected-order fast path, per-collection element dispatchers,
    primitive token readers. Cost is proportional to [Shape.size σ] and
    paid once; counted by [compile.parsers] / [compile.build_ns]. *)

val shape : compiled -> Shape.t
(** The shape the parser was compiled from (as given, not interned). *)

(** {1 Decoding} *)

(** How a document was decoded. [Fallback] documents parsed but did not
    conform; they carry the normalized generic value and the {!diagnose}
    diagnostic. *)
type outcome = Direct of tvalue | Fallback of tvalue * Diagnostic.t

val parse : compiled -> string -> outcome
(** Decode one JSON document, rejecting trailing content.
    @raise Json.Parse_error on malformed input — same positions and
    message as [Json.parse]. *)

type stats = { direct : int; fallback : int; skipped : int }
(** Per-call decode accounting: documents decoded by the compiled path,
    documents that fell back to the generic path, and malformed documents
    skipped under [on_error]. *)

val fold_corpus :
  ?cancel:Cancel.t ->
  ?on_error:(Diagnostic.t -> skipped:string -> unit) ->
  compiled ->
  ('acc -> outcome -> [ `Continue of 'acc | `Stop of 'acc ]) ->
  'acc ->
  string ->
  'acc * stats
(** The fold underneath {!parse_corpus}: decode a stream of
    whitespace-separated JSON documents one at a time and hand each
    {!outcome} to [f], which decides whether to continue — [`Stop]
    abandons the rest of the corpus without reading further bytes,
    which is what lets a query's [take] bound a scan. [Fallback]
    diagnostics carry the 0-based document index. Malformed documents
    never reach [f]: without [on_error] the first one raises
    [Json.Parse_error]; with it they are skipped, reported and counted
    ([stats.skipped]) exactly like [Json.fold_many]'s recovering mode.
    [cancel] is polled between documents. *)

val parse_corpus :
  ?cancel:Cancel.t ->
  ?on_fallback:(Diagnostic.t -> unit) ->
  ?on_error:(Diagnostic.t -> skipped:string -> unit) ->
  compiled ->
  string ->
  tvalue list * stats
(** Decode a stream of whitespace-separated JSON documents, the compiled
    counterpart of [Json.fold_many]. Conforming documents take the direct
    path; non-conforming ones fall back per document (their normalized
    value is included in the results and [on_fallback], if given,
    receives the {!diagnose} diagnostic carrying the 0-based document
    index). Malformed documents raise [Json.Parse_error] unless
    [on_error] is given, in which case they are skipped and reported
    exactly like [Json.fold_many]'s recovering mode: same diagnostic,
    same index accounting (skipped documents consume an index), same
    resynchronization at the next top-level boundary — a mid-document
    fault can never desynchronize the following documents. [cancel] is
    polled between documents and raises {!Cancel.Cancelled} when it
    trips, as in the interpreted drivers. *)
