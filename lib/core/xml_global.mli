(** Global XML inference (Section 6.2).

    "The XML type provider also includes an option to use global
    inference. In that case, the inference from values unifies the shapes
    of all records with the same name. This is useful because, for
    example, in XHTML all [<table>] elements will be treated as values of
    the same type."

    Local inference (the default, {!Infer.of_xml}) gives every element
    position its own shape and cannot describe recursive documents as a
    finite shape. Global inference instead produces an {e environment}:
    one element signature per element name, where child elements are
    referenced by name — so [<div>] inside [<div>] is simply a recursive
    reference, and two [<table>]s in different positions share one
    signature. The provider turns each signature into one nominal class
    (see {!Fsdata_provider.Provide.provide_xml_global}). *)

type body =
  | Body_none  (** every occurrence of the element is empty *)
  | Body_primitive of Shape.t
      (** text-only content; nullable when sometimes absent *)
  | Body_children of (string * Multiplicity.t) list
      (** child elements by name with merged multiplicities, sorted by
          name. Occurrences with text-only content contribute nothing
          (mixed content is not exposed, Section 6.3). *)

type element_signature = {
  element_name : string;
  attributes : (string * Shape.t) list;
      (** attribute shapes, in first-appearance order; attributes missing
          from some occurrence are nullable *)
  body : body;
}

type t = {
  root : string;  (** name of the root element of the first sample *)
  elements : element_signature list;  (** one per element name, sorted *)
}

val infer : Fsdata_data.Xml.tree -> t

val infer_many : Fsdata_data.Xml.tree list -> (t, string) result
(** Several samples; their roots must agree.
    An empty list is an error. *)

val of_strings : string list -> (t, string) result
(** Parse and infer. *)

val find : t -> string -> element_signature option

val pp : Format.formatter -> t -> unit
(** Paper-style listing: one line per element signature. *)
