type primitive = Bit0 | Bit1 | Bit | Bool | Int | Float | String | Date

type t =
  | Bottom
  | Null
  | Primitive of primitive
  | Record of record
  | Nullable of t
  | Collection of entry list
  | Top of t list

and record = { name : string; fields : (string * t) list }

and entry = { shape : t; mult : Multiplicity.t }

let primitive_rank = function
  | Bit0 -> 0
  | Bit1 -> 1
  | Bit -> 2
  | Bool -> 3
  | Int -> 4
  | Float -> 5
  | String -> 6
  | Date -> 7

let is_non_nullable = function Primitive _ | Record _ -> true | _ -> false

let tagof = function
  | Bottom -> invalid_arg "Shape.tagof: bottom has no tag"
  | Null -> Tag.Null
  | Primitive (Bit0 | Bit1 | Bit | Int | Float) -> Tag.Number
  | Primitive Bool -> Tag.Bool
  | Primitive String -> Tag.String
  | Primitive Date -> Tag.Date
  | Record { name; _ } -> Tag.Record name
  | Nullable _ -> Tag.Nullable
  | Collection _ -> Tag.Collection
  | Top _ -> Tag.Top

let sort_fields fields =
  List.sort (fun (a, _) (b, _) -> String.compare a b) fields

(* Physical identity short-circuits every level of the comparison: on
   hash-consed shapes (see {!hcons}) structurally equal subtrees are
   pointer-equal, so the (eq) fast path of [Csh.csh] and the deep
   recursive comparisons degenerate to pointer tests. On shapes that
   were never interned the test is a no-op branch. *)
let rec compare a b =
  if a == b then 0
  else
  match (a, b) with
  | Bottom, Bottom -> 0
  | Bottom, _ -> -1
  | _, Bottom -> 1
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Primitive x, Primitive y -> Int.compare (primitive_rank x) (primitive_rank y)
  | Primitive _, _ -> -1
  | _, Primitive _ -> 1
  | Record r1, Record r2 -> compare_records r1 r2
  | Record _, _ -> -1
  | _, Record _ -> 1
  | Nullable x, Nullable y -> compare x y
  | Nullable _, _ -> -1
  | _, Nullable _ -> 1
  | Collection e1, Collection e2 -> compare_entries e1 e2
  | Collection _, _ -> -1
  | _, Collection _ -> 1
  | Top l1, Top l2 -> compare_list l1 l2

and compare_records r1 r2 =
  if r1 == r2 then 0
  else
  match String.compare r1.name r2.name with
  | 0 -> compare_fields (sort_fields r1.fields) (sort_fields r2.fields)
  | c -> c

and compare_fields f g =
  match (f, g) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (n1, s1) :: f, (n2, s2) :: g -> (
      match String.compare n1 n2 with
      | 0 -> ( match compare s1 s2 with 0 -> compare_fields f g | c -> c)
      | c -> c)

and compare_entries e f =
  match (e, f) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | e1 :: e, f1 :: f -> (
      match compare e1.shape f1.shape with
      | 0 ->
          if e1.mult = f1.mult then compare_entries e f
          else Stdlib.compare e1.mult f1.mult
      | c -> c)

and compare_list l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: l1, y :: l2 -> ( match compare x y with 0 -> compare_list l1 l2 | c -> c)

let equal a b = a == b || compare a b = 0

let record name fields =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Shape.record: duplicate field %S" n)
      else Hashtbl.add seen n ())
    fields;
  Record { name; fields }

let nullable s = if is_non_nullable s then Nullable s else s
let strip_nullable = function Nullable s -> s | s -> s

let check_entry_shape s =
  match s with
  | Bottom -> invalid_arg "Shape.hetero: bottom entry"
  | _ -> ()

let sort_by_tag key xs =
  let xs = List.sort (fun a b -> Tag.compare (key a) (key b)) xs in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Tag.equal (key a) (key b) then
          invalid_arg
            (Fmt.str "Shape: duplicate tag %a in labelled top or collection"
               Tag.pp (key a))
        else check rest
    | _ -> ()
  in
  check xs;
  xs

let hetero pairs =
  let entries = List.map (fun (shape, mult) -> check_entry_shape shape; { shape; mult }) pairs in
  Collection (sort_by_tag (fun e -> tagof e.shape) entries)

let collection s =
  (* [collection Bottom] is the paper's [⊥] element shape arising from an
     empty sample collection; represented as an entry-less collection. *)
  if s = Bottom then Collection [] else hetero [ (s, Multiplicity.Multiple) ]

let check_label s =
  match s with
  | Bottom | Null | Nullable _ | Top _ ->
      invalid_arg (Fmt.str "Shape.top: invalid label")
  | _ -> ()

let top labels =
  List.iter check_label labels;
  Top (sort_by_tag tagof labels)

let any = Top []

let collection_element = function
  | Collection [] -> Some Bottom
  | Collection [ { shape; _ } ] -> Some shape
  | _ -> None

let rec size = function
  | Bottom | Null | Primitive _ -> 1
  | Record { fields; _ } ->
      1 + List.fold_left (fun acc (_, s) -> acc + size s) 0 fields
  | Nullable s -> 1 + size s
  | Collection entries ->
      1 + List.fold_left (fun acc e -> acc + size e.shape) 0 entries
  | Top labels -> 1 + List.fold_left (fun acc s -> acc + size s) 0 labels

(* ----- hash-consing (ROADMAP: shape hash-consing cache) -----

   [hcons] rebuilds a shape bottom-up, interning every node in a global
   table so that structurally identical representations become physically
   equal. Children of a probe node are always already interned, so the
   table's equality only needs to look one level deep and can compare
   children by pointer. Interning preserves the exact representation —
   record field order included — so it is invisible to printing and
   provided types; [equal]'s physical fast path is what it buys. *)

module Hnode = struct
  type nonrec t = t

  let rec eq_fields f g =
    match (f, g) with
    | [], [] -> true
    | (n1, s1) :: f, (n2, s2) :: g ->
        String.equal n1 n2 && s1 == s2 && eq_fields f g
    | _ -> false

  let rec eq_entries e f =
    match (e, f) with
    | [], [] -> true
    | e1 :: e, f1 :: f ->
        e1.shape == f1.shape && e1.mult = f1.mult && eq_entries e f
    | _ -> false

  let rec eq_labels l1 l2 =
    match (l1, l2) with
    | [], [] -> true
    | x :: l1, y :: l2 -> x == y && eq_labels l1 l2
    | _ -> false

  let equal a b =
    match (a, b) with
    | Bottom, Bottom | Null, Null -> true
    | Primitive p, Primitive q -> p = q
    | Record r1, Record r2 ->
        String.equal r1.name r2.name && eq_fields r1.fields r2.fields
    | Nullable a, Nullable b -> a == b
    | Collection e1, Collection e2 -> eq_entries e1 e2
    | Top l1, Top l2 -> eq_labels l1 l2
    | _ -> false

  (* Structural hashing with a generous node budget: a valid hash for
     the shallow equality above (shallow-equal nodes are structurally
     equal), with enough depth to separate similar record shapes. *)
  let hash (s : t) = Hashtbl.hash_param 64 512 s
end

module Htbl = Hashtbl.Make (Hnode)

let m_hcons_hits = Fsdata_obs.Metrics.counter "shape.hcons.hits"
let m_hcons_misses = Fsdata_obs.Metrics.counter "shape.hcons.misses"
let hcons_lock = Mutex.create ()
let hcons_tbl : t Htbl.t = Htbl.create 4096

let hcons_node n =
  match Htbl.find_opt hcons_tbl n with
  | Some c ->
      Fsdata_obs.Metrics.incr m_hcons_hits;
      c
  | None ->
      Fsdata_obs.Metrics.incr m_hcons_misses;
      Htbl.add hcons_tbl n n;
      n

let rec hcons_rec s =
  match s with
  | Bottom | Null | Primitive _ -> hcons_node s
  | Record { name; fields } ->
      hcons_node
        (Record { name; fields = List.map (fun (n, t) -> (n, hcons_rec t)) fields })
  | Nullable t -> hcons_node (Nullable (hcons_rec t))
  | Collection entries ->
      hcons_node
        (Collection (List.map (fun e -> { e with shape = hcons_rec e.shape }) entries))
  | Top labels -> hcons_node (Top (List.map hcons_rec labels))

let hcons s = Mutex.protect hcons_lock (fun () -> hcons_rec s)
let hcons_size () = Mutex.protect hcons_lock (fun () -> Htbl.length hcons_tbl)
let hcons_clear () = Mutex.protect hcons_lock (fun () -> Htbl.reset hcons_tbl)

let pp_primitive ppf p =
  Fmt.string ppf
    (match p with
    | Bit0 -> "bit0"
    | Bit1 -> "bit1"
    | Bit -> "bit"
    | Bool -> "bool"
    | Int -> "int"
    | Float -> "float"
    | String -> "string"
    | Date -> "date")

let rec pp ppf = function
  | Bottom -> Fmt.string ppf "\xe2\x8a\xa5"
  | Null -> Fmt.string ppf "null"
  | Primitive p -> pp_primitive ppf p
  | Record { name; fields } ->
      Fmt.pf ppf "%s {@[<hov>%a@]}" name
        Fmt.(list ~sep:(any ",@ ") pp_field)
        fields
  | Nullable s -> Fmt.pf ppf "nullable %a" pp s
  | Collection [] -> Fmt.string ppf "[\xe2\x8a\xa5]"
  | Collection [ { shape; mult = Multiplicity.Multiple } ] ->
      Fmt.pf ppf "[%a]" pp shape
  | Collection entries ->
      Fmt.pf ppf "[@[<hov>%a@]]" Fmt.(list ~sep:(any " |@ ") pp_entry) entries
  | Top [] -> Fmt.string ppf "any"
  | Top labels ->
      Fmt.pf ppf "any\xe2\x9f\xa8@[<hov>%a@]\xe2\x9f\xa9"
        Fmt.(list ~sep:(any ",@ ") pp)
        labels

and pp_field ppf (name, s) = Fmt.pf ppf "%s: %a" name pp s

and pp_entry ppf { shape; mult } = Fmt.pf ppf "%a, %a" pp shape Multiplicity.pp mult

let to_string s = Fmt.str "%a" pp s
