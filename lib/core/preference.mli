(** The preferred shape relation [s1 ⊑ s2] (Definition 1, Figure 1).

    [is_preferred s1 s2] decides whether [s1] is preferred over [s2], i.e.
    whether data of shape [s1] can safely be consumed by code generated for
    shape [s2]. The relation is the reflexive-transitive closure of:

    + [int ⊑ float] — and, from Section 6.2, [bit ⊑ int], [bit ⊑ bool]
      and [date ⊑ string];
    + [null ⊑ s] for every nullable [s] (everything except primitives and
      records);
    + [s^ ⊑ nullable s^] and nullable covariance;
    + collection covariance, extended to heterogeneous collections: each
      entry of the consumer shape must either be matched (same tag,
      preferred element shape, preferred multiplicity) or be absent with a
      multiplicity that tolerates absence ([1?] or [*]); entries of the
      input with tags unknown to the consumer are permitted (the runtime
      ignores them — the open-world reading of Section 6.4);
    + [⊥ ⊑ s] and [s ⊑ any] — labelled tops are tops regardless of their
      labels (Section 3.5);
    + record covariance and width: the consumer's fields must each be
      matched by a preferred field of the input, or be nullable when the
      input lacks them. The latter clause is the "null-field extension"
      closure of rules (8)-(9): a record without field [f] is
      observationally equal to one with [f ↦ null], because [convField]
      (Figure 6) passes [null] to the continuation for missing fields.
      This is exactly what the relative-safety statement of Section 5
      requires ("records in the input can have fewer fields ... provided
      that the sample also contains records that do not have the field").

    The relation restricted to ground shapes without labelled tops is a
    partial order (antisymmetric up to {!Shape.equal}); labelled tops are
    all equivalent to [any], so on the full algebra it is a preorder. *)

val is_preferred : Shape.t -> Shape.t -> bool

val is_preferred_primitive : Shape.primitive -> Shape.primitive -> bool
(** The primitive fragment of the relation:
    [bit ⊑ {bit,bool,int,float}], [int ⊑ {int,float}], [date ⊑ {date,string}],
    and reflexivity. *)

val equivalent : Shape.t -> Shape.t -> bool
(** Mutual preference. On top-free shapes this implies {!Shape.equal}. *)
