open Fsdata_data
module Obs_trace = Fsdata_obs.Trace
module Obs_metrics = Fsdata_obs.Metrics

type mode = [ `Paper | `Practical | `Xml ]

(* Observability (docs/OBSERVABILITY.md). The three ingest counters
   reconcile by construction: [ingest.samples_total] is bumped exactly
   when either [ingest.samples_clean] or [ingest.samples_quarantined]
   is, at every per-sample isolation boundary of the tolerant drivers
   and at the driver entry of the strict ones. For CSV the unit of
   ingestion is the row, matching what the error budget counts. *)
let m_samples = Obs_metrics.counter "infer.samples"
let m_ingest_total = Obs_metrics.counter "ingest.samples_total"
let m_ingest_clean = Obs_metrics.counter "ingest.samples_clean"
let m_ingest_quarantined = Obs_metrics.counter "ingest.samples_quarantined"

let classify_string s : Shape.t =
  match Primitive.classify s with
  | Primitive.Hint_null -> Null
  | Primitive.Hint_bit0 -> Primitive Bit0
  | Primitive.Hint_bit1 -> Primitive Bit1
  | Primitive.Hint_int -> Primitive Int
  | Primitive.Hint_float -> Primitive Float
  | Primitive.Hint_bool -> Primitive Bool
  | Primitive.Hint_date -> Primitive Date
  | Primitive.Hint_string -> Primitive String

let rec shape_of_value ?(mode : mode = `Practical) (d : Data_value.t) : Shape.t =
  match d with
  | Null -> Null
  | Bool _ -> Primitive Bool
  | Int _ -> Primitive Int
  | Float _ -> Primitive Float
  | String s -> (
      match mode with
      | `Paper -> Primitive String
      | `Practical | `Xml -> classify_string s)
  | List ds -> infer_collection ~mode ds
  | Record (name, fields) ->
      Shape.record name
        (List.map (fun (n, v) -> (n, shape_of_value ~mode v)) fields)

and infer_collection ~mode ds =
  let shapes = List.map (fun d -> shape_of_value ~mode d) ds in
  match mode with
  | `Paper ->
      (* Figure 3: S([d1; ...; dn]) = [S(d1, ..., dn)] *)
      Shape.collection (Csh.csh_all ~mode:`Core shapes)
  | (`Practical | `Xml) as mode ->
      (* Section 6.4: group element shapes by tag; per tag, join shapes
         and record the observed multiplicity. Element shapes produced by
         S are never nullable or tops, so same-tag joins preserve the tag
         and a single grouping pass suffices. *)
      let cmode = csh_mode mode in
      let groups : (Tag.t * (Shape.t * int)) list ref = ref [] in
      List.iter
        (fun s ->
          let t = Shape.tagof s in
          match List.assoc_opt t !groups with
          | Some (s0, n) ->
              groups :=
                (t, (Csh.csh ~mode:cmode s0 s, n + 1))
                :: List.remove_assoc t !groups
          | None -> groups := (t, (s, 1)) :: !groups)
        shapes;
      let pairs =
        List.rev_map (fun (_, (s, n)) -> (s, Multiplicity.of_count n)) !groups
      in
      let pairs =
        match (mode, pairs) with
        | `Xml, _ :: _ :: _ ->
            (* Section 2.2: several element kinds under one parent join
               into a single labelled-top entry — the Element type with
               optional members — rather than per-tag accessors. *)
            let shape = Csh.csh_all ~mode:cmode (List.map fst pairs) in
            (* at least two element kinds means at least two elements *)
            [ (shape, Multiplicity.Multiple) ]
        | _ -> pairs
      in
      if pairs = [] then Shape.collection Shape.Bottom else Shape.hetero pairs

and csh_mode : mode -> Csh.mode = function
  | `Paper -> `Core
  | `Practical -> `Hetero
  | `Xml -> `Xml

let shape_of_samples ?(mode : mode = `Practical) ds =
  Obs_trace.with_span "infer.samples" @@ fun () ->
  if Obs_metrics.enabled () then Obs_metrics.add m_samples (List.length ds);
  Csh.csh_all ~mode:(csh_mode mode)
    (List.map (fun d -> shape_of_value ~mode d) ds)

(* ----- Fault-tolerant inference ----- *)

type quarantined = {
  q_index : int;
  q_diagnostic : Diagnostic.t;
  q_text : string option;
}

type report = {
  shape : Shape.t;
  total : int;
  quarantined : quarantined list;
}

let sort_quarantined qs =
  List.stable_sort (fun a b -> Int.compare a.q_index b.q_index) qs

let budget_error ~budget ~total qs =
  match qs with
  | [] -> None
  | first :: _ ->
      let errors = List.length qs in
      if Diagnostic.allows budget ~errors ~total then None
      else
        Some
          (Printf.sprintf
             "error budget exceeded: %d of %d samples malformed (budget %s); \
              first: %s"
             errors total
             (Diagnostic.budget_to_string budget)
             (Diagnostic.to_string first.q_diagnostic))

let shape_of_sample ~mode ~format ~index ~parse text =
  (* Anything a sample does wrong — a parse fault, or an unexpected
     exception escaping parsing or inference — becomes a diagnostic
     attributed to that sample, never an exception for the caller. *)
  Obs_metrics.incr m_ingest_total;
  let quarantined d =
    Obs_metrics.incr m_ingest_quarantined;
    Error d
  in
  match Result.map (shape_of_value ~mode) (parse text) with
  | Ok _ as ok ->
      Obs_metrics.incr m_ingest_clean;
      Obs_metrics.incr m_samples;
      ok
  | Error d -> quarantined (Diagnostic.with_index index d)
  | exception Diagnostic.Parse_error d ->
      quarantined (Diagnostic.with_index index d)
  | exception exn ->
      quarantined
        (Diagnostic.make ~index ~format ~line:1 ~column:0
           ("unexpected error: " ^ Printexc.to_string exn))

let samples_tolerant ?(cancel = Cancel.never) ~mode ~format ~parse ~budget texts
    =
  let qs = ref [] in
  let shapes = ref [] in
  List.iteri
    (fun i t ->
      (* Polled outside {!shape_of_sample}: that function converts every
         exception into a per-sample diagnostic, which would silently
         swallow [Cancelled] as a quarantine entry. *)
      Cancel.check cancel;
      match shape_of_sample ~mode ~format ~index:i ~parse t with
      | Ok s -> shapes := s :: !shapes
      | Error d -> qs := { q_index = i; q_diagnostic = d; q_text = Some t } :: !qs)
    texts;
  let total = List.length texts in
  let qs = List.rev !qs in
  match budget_error ~budget ~total qs with
  | Some msg -> Error msg
  | None ->
      Ok
        {
          shape = Csh.csh_all ~mode:(csh_mode mode) (List.rev !shapes);
          total;
          quarantined = qs;
        }

let of_json_samples_tolerant ?cancel ?(mode : mode = `Practical) ~budget texts =
  samples_tolerant ?cancel ~mode ~format:Diagnostic.Json ~parse:Json.parse_diag
    ~budget texts

let of_xml_samples_tolerant ?cancel ?(mode : mode = `Xml) ~budget texts =
  let parse t =
    Result.map (Xml.to_data ~convert_primitives:false) (Xml.parse_diag t)
  in
  samples_tolerant ?cancel ~mode ~format:Diagnostic.Xml ~parse ~budget texts

let of_json_tolerant ?cancel ?(mode : mode = `Practical) ~budget src =
  Obs_trace.with_span "infer.stream" @@ fun () ->
  let qs = ref [] in
  let on_error (d : Diagnostic.t) ~skipped =
    Obs_metrics.incr m_ingest_total;
    Obs_metrics.incr m_ingest_quarantined;
    let index = match d.Diagnostic.index with Some i -> i | None -> 0 in
    qs := { q_index = index; q_diagnostic = d; q_text = Some skipped } :: !qs
  in
  let shape, parsed =
    Json.fold_many ?cancel ~on_error
      (fun (acc, n) ds ->
        let k = List.length ds in
        if Obs_metrics.enabled () then begin
          Obs_metrics.add m_ingest_total k;
          Obs_metrics.add m_ingest_clean k
        end;
        (Csh.csh ~mode:(csh_mode mode) acc (shape_of_samples ~mode ds), n + k))
      (Shape.Bottom, 0) src
  in
  let qs = List.rev !qs in
  let total = parsed + List.length qs in
  if total = 0 then Error "no JSON sample documents found"
  else
    match budget_error ~budget ~total qs with
    | Some msg -> Error msg
    | None -> Ok { shape; total; quarantined = qs }

let of_json_feed_tolerant ?cancel ?(mode : mode = `Practical) ~budget feed =
  Obs_trace.with_span "infer.stream" @@ fun () ->
  let qs = ref [] in
  let on_error (d : Diagnostic.t) ~skipped =
    Obs_metrics.incr m_ingest_total;
    Obs_metrics.incr m_ingest_quarantined;
    let index = match d.Diagnostic.index with Some i -> i | None -> 0 in
    qs := { q_index = index; q_diagnostic = d; q_text = Some skipped } :: !qs
  in
  let cur = Json.Cursor.create ?cancel ~on_error () in
  let acc = ref Shape.Bottom and parsed = ref 0 in
  let fold ds =
    match ds with
    | [] -> ()
    | ds ->
        let k = List.length ds in
        if Obs_metrics.enabled () then begin
          Obs_metrics.add m_ingest_total k;
          Obs_metrics.add m_ingest_clean k
        end;
        acc := Csh.csh ~mode:(csh_mode mode) !acc (shape_of_samples ~mode ds);
        parsed := !parsed + k
  in
  feed (fun fragment -> fold (Json.Cursor.feed cur fragment));
  fold (Json.Cursor.finish cur);
  let qs = List.rev !qs in
  let total = !parsed + List.length qs in
  if total = 0 then Error "no JSON sample documents found"
  else
    match budget_error ~budget ~total qs with
    | Some msg -> Error msg
    | None -> Ok { shape = !acc; total; quarantined = qs }

let of_csv_tolerant ?(cancel = Cancel.never) ?separator ?has_headers ~budget src
    =
  Obs_trace.with_span "infer.stream" @@ fun () ->
  let qs = ref [] in
  let on_error (d : Diagnostic.t) ~skipped =
    Obs_metrics.incr m_ingest_total;
    Obs_metrics.incr m_ingest_quarantined;
    let index = match d.Diagnostic.index with Some i -> i | None -> 0 in
    qs := { q_index = index; q_diagnostic = d; q_text = Some skipped } :: !qs
  in
  Cancel.check cancel;
  match Csv.parse_tolerant ?separator ?has_headers ~on_error src with
  | Error d -> Error (Diagnostic.message_of d)
  | Ok table ->
      if Obs_metrics.enabled () then begin
        let k = List.length table.Csv.rows in
        Obs_metrics.add m_ingest_total k;
        Obs_metrics.add m_ingest_clean k
      end;
      let qs = List.rev !qs in
      let total = List.length table.Csv.rows + List.length qs in
      (match budget_error ~budget ~total qs with
      | Some msg -> Error msg
      | None ->
          Ok
            {
              shape =
                shape_of_value ~mode:`Practical
                  (Csv.to_data ~convert_primitives:false table);
              total;
              quarantined = qs;
            })

(* ----- Format entry points ----- *)

let of_json_samples ?mode samples =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match Json.parse_result s with
        | Ok d -> parse (d :: acc) rest
        | Error _ as e -> e)
  in
  match parse [] samples with
  | Ok ds -> Ok (shape_of_samples ?mode ds)
  | Error e -> Error e

let of_json ?mode src =
  Obs_trace.with_span "infer.stream" @@ fun () ->
  match Json.parse_many src with
  | [] -> Error "no JSON sample documents found"
  | ds ->
      if Obs_metrics.enabled () then begin
        let k = List.length ds in
        Obs_metrics.add m_ingest_total k;
        Obs_metrics.add m_ingest_clean k
      end;
      Ok (shape_of_samples ?mode ds)
  | exception Json.Parse_error { line; column; message } ->
      Error
        (Printf.sprintf "JSON parse error at line %d, column %d: %s" line column
           message)

let of_xml_samples ?(mode : mode = `Xml) samples =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match Xml.parse_result s with
        | Ok tree ->
            (* Inference classifies the raw attribute/body strings itself,
               so keep them unconverted here. *)
            parse (Xml.to_data ~convert_primitives:false tree :: acc) rest
        | Error m -> Error m)
  in
  match parse [] samples with
  | Ok ds -> Ok (shape_of_samples ~mode ds)
  | Error e -> Error e

let of_xml ?mode src = of_xml_samples ?mode [ src ]

let of_csv ?separator ?has_headers src =
  match Csv.parse_result ?separator ?has_headers src with
  | Error _ as e -> e
  | Ok table ->
      if Obs_metrics.enabled () then begin
        let k = List.length table.Csv.rows in
        Obs_metrics.add m_ingest_total k;
        Obs_metrics.add m_ingest_clean k
      end;
      let data = Csv.to_data ~convert_primitives:false table in
      Ok (shape_of_value ~mode:`Practical data)
