open Fsdata_data
module Obs_trace = Fsdata_obs.Trace
module Obs_metrics = Fsdata_obs.Metrics

type mode = Infer.mode

(* Observability (docs/OBSERVABILITY.md): each unit of parallel work is
   an [infer.chunk] span recorded {e inside} the domain that executes it
   — including the chunk kept on the calling domain — so a trace shows
   the real overlap across tids. The final reduction is an [infer.merge]
   span on the joining domain. [par.chunk_size] summarizes how evenly
   the corpus was split; [par.domains_spawned] counts only actual
   [Domain.spawn]s, so it stays 0 on the sequential paths. *)
let m_chunks = Obs_metrics.counter "par.chunks"
let m_spawned = Obs_metrics.counter "par.domains_spawned"
let h_chunk_size = Obs_metrics.histogram "par.chunk_size"

(* Registration is idempotent by name: these are the same cells
   {!Infer} bumps, shared so the parallel drivers that bypass
   {!Infer.shape_of_sample} (the strict chunk fold, the streaming
   chunk callbacks) keep the clean + quarantined = total reconciliation
   intact. *)
let m_samples = Obs_metrics.counter "infer.samples"
let m_ingest_total = Obs_metrics.counter "ingest.samples_total"
let m_ingest_clean = Obs_metrics.counter "ingest.samples_clean"
let m_ingest_quarantined = Obs_metrics.counter "ingest.samples_quarantined"

let count_clean k =
  if Obs_metrics.enabled () then begin
    Obs_metrics.add m_ingest_total k;
    Obs_metrics.add m_ingest_clean k
  end

(* Wrap one chunk's work; runs on whichever domain executes the chunk so
   the span lands in that domain's buffer. *)
let traced_chunk ~offset ~size f =
  Obs_metrics.incr m_chunks;
  Obs_metrics.observe h_chunk_size (float_of_int size);
  if Obs_trace.enabled () then
    Obs_trace.with_span "infer.chunk"
      ~args:[ ("offset", string_of_int offset); ("size", string_of_int size) ]
      f
  else f ()

let traced_merge f = Obs_trace.with_span "infer.merge" f

let spawn f =
  Obs_metrics.incr m_spawned;
  Domain.spawn f

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* The runtime supports ~128 concurrent domains; stay well below so a
   generous --jobs never aborts the program. *)
let max_jobs = 64

let normalize_jobs = function
  | None -> min max_jobs (recommended_jobs ())
  | Some j -> max 1 (min max_jobs j)

let chunk k xs =
  if k < 1 then invalid_arg "Par_infer.chunk: k must be positive";
  let n = List.length xs in
  if n = 0 then []
  else begin
    let k = min k n in
    (* first [n mod k] chunks get one extra element *)
    let base = n / k and extra = n mod k in
    let rec take i acc xs =
      if i = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (i - 1) (x :: acc) rest
    in
    let rec go i xs =
      if i >= k then []
      else
        let size = base + if i < extra then 1 else 0 in
        let c, rest = take size [] xs in
        c :: go (i + 1) rest
    in
    go 0 xs
  end

let csh_tree ?(mode = `Hetero) shapes =
  let rec round = function
    | [] -> []
    | [ s ] -> [ s ]
    | a :: b :: rest -> Csh.csh ~mode a b :: round rest
  in
  let rec reduce = function
    | [] -> Shape.Bottom
    | [ s ] -> s
    | ss -> reduce (round ss)
  in
  reduce shapes

(* Pair each chunk with the global index of its first sample, so chunk
   workers can attribute per-sample faults (and chunk spans) to corpus
   positions. *)
let with_offsets chunks =
  let rec go off = function
    | [] -> []
    | c :: rest -> (off, c) :: go (off + List.length c) rest
  in
  go 0 chunks

(* Run [f] over every chunk, the first chunk on the current domain and
   the rest on spawned domains, and merge the chunk results with the
   balanced csh tree. Chunks keep sample order, and the tree merges
   adjacent shapes only, so order-sensitive parts of the representation
   (record field order) match the sequential left fold exactly. *)
let map_reduce_chunks ~cmode ~jobs ~of_chunk samples =
  let run (offset, c) =
    traced_chunk ~offset ~size:(List.length c) (fun () -> of_chunk c)
  in
  match with_offsets (chunk jobs samples) with
  | [] -> Shape.Bottom
  | [ oc ] -> run oc
  | first :: rest ->
      let workers = List.map (fun oc -> spawn (fun () -> run oc)) rest in
      let s0 = run first in
      let shapes = s0 :: List.map Domain.join workers in
      traced_merge (fun () -> csh_tree ~mode:cmode shapes)

let shape_of_samples ?(mode : mode = `Practical) ?jobs ds =
  (* [jobs = 1] degenerates to a single chunk on the calling domain, so
     sequential runs still produce one [infer.chunk] span and traces
     line up across --jobs settings. *)
  let jobs = normalize_jobs jobs in
  map_reduce_chunks ~cmode:(Infer.csh_mode mode) ~jobs
    ~of_chunk:(Infer.shape_of_samples ~mode) ds

(* ----- Format entry points ----- *)

(* Parse-and-infer a chunk of sample texts; stop at the chunk's first
   parse error. The per-chunk results are scanned in order afterwards,
   so the error reported for a bad corpus is the earliest one, exactly
   as in the sequential drivers of {!Infer}. An unexpected exception is
   confined to the failing sample and surfaces as an error naming its
   global index — it never propagates raw out of a worker domain. *)
let fold_chunk ~mode ~parse ~offset texts =
  let cmode = Infer.csh_mode mode in
  let unexpected i exn =
    Error
      (Printf.sprintf "sample %d: unexpected error: %s" (offset + i)
         (Printexc.to_string exn))
  in
  let rec go acc i = function
    | [] -> Ok acc
    | t :: rest -> (
        match Result.map (Infer.shape_of_value ~mode) (parse t) with
        | Ok s ->
            Obs_metrics.incr m_ingest_total;
            Obs_metrics.incr m_ingest_clean;
            Obs_metrics.incr m_samples;
            go (Csh.csh ~mode:cmode acc s) (i + 1) rest
        | Error _ as e -> e
        | exception exn -> unexpected i exn)
  in
  go Shape.Bottom 0 texts

let of_samples ~mode ~parse ~jobs texts =
  let jobs = normalize_jobs jobs in
  let cmode = Infer.csh_mode mode in
  let run (offset, c) =
    traced_chunk ~offset ~size:(List.length c) (fun () ->
        fold_chunk ~mode ~parse ~offset c)
  in
  match with_offsets (chunk jobs texts) with
  | [] -> Ok Shape.Bottom
  | [ oc ] -> run oc
  | first :: rest ->
      let workers = List.map (fun oc -> spawn (fun () -> run oc)) rest in
      let r0 = run first in
      let results = r0 :: List.map Domain.join workers in
      let rec merge acc = function
        | [] ->
            Ok (traced_merge (fun () -> csh_tree ~mode:cmode (List.rev acc)))
        | Ok s :: rest -> merge (s :: acc) rest
        | (Error _ as e) :: _ -> e
      in
      merge [] results

(* ----- Fault-tolerant entry points ----- *)

(* The tolerant chunk fold never fails: every faulty sample — malformed
   or crashing — is quarantined with a diagnostic carrying its global
   index ({!Infer.shape_of_sample} is the isolation boundary), so
   [Domain.join] below can only ever return data. *)
let fold_chunk_tolerant ?(cancel = Cancel.never) ~mode ~format ~parse ~offset
    texts =
  let cmode = Infer.csh_mode mode in
  let qs = ref [] in
  let acc = ref Shape.Bottom in
  List.iteri
    (fun i t ->
      (* Outside {!Infer.shape_of_sample}: the isolation boundary would
         otherwise swallow [Cancelled] as a quarantine diagnostic. *)
      Cancel.check cancel;
      let index = offset + i in
      match Infer.shape_of_sample ~mode ~format ~index ~parse t with
      | Ok s -> acc := Csh.csh ~mode:cmode !acc s
      | Error d ->
          qs :=
            { Infer.q_index = index; q_diagnostic = d; q_text = Some t } :: !qs)
    texts;
  (!acc, List.rev !qs)

let of_samples_tolerant ?(cancel = Cancel.never) ~mode ~format ~parse ~budget
    ~jobs texts =
  let jobs = normalize_jobs jobs in
  let cmode = Infer.csh_mode mode in
  (* The token is polled only on the coordinating domain's chunk: worker
     chunks are bounded work already in flight, and joining them below
     (even on the cancellation path) keeps every domain accounted for. *)
  let run ?cancel (offset, c) =
    traced_chunk ~offset ~size:(List.length c) (fun () ->
        fold_chunk_tolerant ?cancel ~mode ~format ~parse ~offset c)
  in
  let results =
    match with_offsets (chunk jobs texts) with
    | [] -> []
    | [ oc ] -> [ run ~cancel oc ]
    | first :: rest ->
        let workers = List.map (fun oc -> spawn (fun () -> run oc)) rest in
        let r0 =
          try run ~cancel first
          with exn ->
            List.iter (fun w -> ignore (Domain.join w)) workers;
            raise exn
        in
        r0 :: List.map Domain.join workers
  in
  let shapes = List.map fst results in
  let qs = List.concat_map snd results in
  let total = List.length texts in
  match Infer.budget_error ~budget ~total qs with
  | Some msg -> Error msg
  | None ->
      Ok
        {
          Infer.shape = traced_merge (fun () -> csh_tree ~mode:cmode shapes);
          total;
          quarantined = qs;
        }

let of_json_samples_tolerant ?cancel ?(mode : mode = `Practical) ?jobs ~budget
    texts =
  of_samples_tolerant ?cancel ~mode ~format:Diagnostic.Json
    ~parse:Json.parse_diag ~budget ~jobs texts

let of_xml_samples_tolerant ?cancel ?(mode : mode = `Xml) ?jobs ~budget texts =
  let parse t =
    Result.map (Xml.to_data ~convert_primitives:false) (Xml.parse_diag t)
  in
  of_samples_tolerant ?cancel ~mode ~format:Diagnostic.Xml ~parse ~budget ~jobs
    texts

let of_json_samples ?(mode : mode = `Practical) ?jobs texts =
  of_samples ~mode ~parse:Json.parse_result ~jobs texts

let of_xml_samples ?(mode : mode = `Xml) ?jobs texts =
  let parse t =
    match Xml.parse_result t with
    | Ok tree ->
        (* Inference classifies the raw attribute/body strings itself,
           so keep them unconverted here (as in {!Infer.of_xml_samples}). *)
        Ok (Xml.to_data ~convert_primitives:false tree)
    | Error _ as e -> e
  in
  of_samples ~mode ~parse ~jobs texts

(* Adaptive chunk granularity (ROADMAP "parallel streaming speedup is
   negative"): with the old fixed 256-document parse chunk, each worker
   hand-off carried only a few tens of kilobytes of inference work, so
   [Domain.spawn] and queue traffic dominated and [--jobs 2/4] ran
   slower than the sequential fold. Scale the chunk to the corpus and
   the worker count instead: target [chunks_per_job] hand-offs per job
   by source bytes, clamped to [[min_chunk_bytes, max_chunk_bytes]],
   with a document-count ceiling so corpora of millions of tiny
   documents still hand off bounded lists. Both caps are overridable
   ([?chunk_size] in documents, [?chunk_bytes] in source bytes);
   passing [~chunk_size] alone reproduces the fixed-granularity
   behaviour. EXPERIMENTS.md B7 records the before/after. *)
let chunks_per_job = 8

let min_chunk_bytes = 64 * 1024
let max_chunk_bytes = 8 * 1024 * 1024
let default_chunk_docs = 65536

let adaptive_granularity ~jobs ~src_bytes chunk_size chunk_bytes =
  let bytes =
    match chunk_bytes with
    | Some b -> b
    | None ->
        max min_chunk_bytes
          (min max_chunk_bytes (src_bytes / max 1 (jobs * chunks_per_job)))
  in
  let docs =
    match chunk_size with Some n -> n | None -> default_chunk_docs
  in
  (docs, bytes)

(* Streaming JSON: the parser walks the stream chunk by chunk
   ({!Json.fold_many}) and hands each parsed chunk to a worker domain
   for inference, keeping at most [jobs] chunks in flight; their shapes
   are collected in stream order and tree-merged at the end. Only the
   in-flight chunks are resident as data values. *)
let of_json ?(mode : mode = `Practical) ?jobs ?chunk_size ?chunk_bytes src =
  let jobs = normalize_jobs jobs in
  let chunk_size, chunk_bytes =
    adaptive_granularity ~jobs ~src_bytes:(String.length src) chunk_size
      chunk_bytes
  in
  let cmode = Infer.csh_mode mode in
  let infer_chunk ~offset ds =
    traced_chunk ~offset ~size:(List.length ds) (fun () ->
        Infer.shape_of_samples ~mode ds)
  in
  (* FIFO of in-flight domains, oldest first. *)
  let inflight = Queue.create () in
  let shapes = ref [] in
  let seen = ref 0 in
  let drain_one () = shapes := Domain.join (Queue.pop inflight) :: !shapes in
  let drain_all () =
    while not (Queue.is_empty inflight) do
      drain_one ()
    done
  in
  match
    Json.fold_many ~chunk_size ~chunk_bytes
      (fun () ds ->
        let offset = !seen in
        count_clean (List.length ds);
        seen := !seen + List.length ds;
        if jobs = 1 then shapes := infer_chunk ~offset ds :: !shapes
        else begin
          if Queue.length inflight >= jobs then drain_one ();
          Queue.add (spawn (fun () -> infer_chunk ~offset ds)) inflight
        end)
      () src
  with
  | () ->
      drain_all ();
      if !seen = 0 then Error "no JSON sample documents found"
      else Ok (traced_merge (fun () -> csh_tree ~mode:cmode (List.rev !shapes)))
  | exception Json.Parse_error { line; column; message } ->
      (* join stragglers so no domain outlives the call *)
      drain_all ();
      Error
        (Printf.sprintf "JSON parse error at line %d, column %d: %s" line
           column message)

(* Streaming variant of {!of_json} in recovering mode: malformed
   documents are skipped (with the parser resynchronizing at the next
   top-level boundary) and quarantined with their stream index; the
   fold itself never raises. Worker-domain inference is wrapped so a
   crash surfaces as an [Error], never as a raw exception out of
   [Domain.join]. *)
let of_json_tolerant ?cancel ?(mode : mode = `Practical) ?jobs ?chunk_size
    ?chunk_bytes ~budget src =
  let jobs = normalize_jobs jobs in
  let chunk_size, chunk_bytes =
    adaptive_granularity ~jobs ~src_bytes:(String.length src) chunk_size
      chunk_bytes
  in
  let cmode = Infer.csh_mode mode in
  let infer_chunk ~offset ds =
    traced_chunk ~offset ~size:(List.length ds) (fun () ->
        try Ok (Infer.shape_of_samples ~mode ds)
        with exn -> Error (Printexc.to_string exn))
  in
  let inflight = Queue.create () in
  let results = ref [] in
  let seen = ref 0 in
  let qs = ref [] in
  let on_error (d : Diagnostic.t) ~skipped =
    Obs_metrics.incr m_ingest_total;
    Obs_metrics.incr m_ingest_quarantined;
    let index = match d.Diagnostic.index with Some i -> i | None -> 0 in
    qs :=
      { Infer.q_index = index; q_diagnostic = d; q_text = Some skipped } :: !qs
  in
  let drain_one () = results := Domain.join (Queue.pop inflight) :: !results in
  let drain_all () =
    while not (Queue.is_empty inflight) do
      drain_one ()
    done
  in
  (* The feeder loop runs on the coordinating domain, so [cancel] trips
     there; join stragglers before re-raising so no domain outlives the
     call even when it is cut short. *)
  (try
     Json.fold_many ?cancel ~chunk_size ~chunk_bytes ~on_error
       (fun () ds ->
         let offset = !seen in
         count_clean (List.length ds);
         seen := !seen + List.length ds;
         if jobs = 1 then results := infer_chunk ~offset ds :: !results
         else begin
           if Queue.length inflight >= jobs then drain_one ();
           Queue.add (spawn (fun () -> infer_chunk ~offset ds)) inflight
         end)
       () src
   with exn ->
     drain_all ();
     raise exn);
  drain_all ();
  let qs = List.rev !qs in
  let total = !seen + List.length qs in
  if total = 0 then Error "no JSON sample documents found"
  else
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | Ok s :: rest -> collect (s :: acc) rest
      | Error msg :: _ ->
          Error (Printf.sprintf "internal error during chunk inference: %s" msg)
    in
    match collect [] (List.rev !results) with
    | Error _ as e -> e
    | Ok shapes -> (
        match Infer.budget_error ~budget ~total qs with
        | Some msg -> Error msg
        | None ->
            Ok
              {
                Infer.shape = traced_merge (fun () -> csh_tree ~mode:cmode shapes);
                total;
                quarantined = qs;
              })
