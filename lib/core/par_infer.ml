open Fsdata_data

type mode = Infer.mode

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* The runtime supports ~128 concurrent domains; stay well below so a
   generous --jobs never aborts the program. *)
let max_jobs = 64

let normalize_jobs = function
  | None -> min max_jobs (recommended_jobs ())
  | Some j -> max 1 (min max_jobs j)

let chunk k xs =
  if k < 1 then invalid_arg "Par_infer.chunk: k must be positive";
  let n = List.length xs in
  if n = 0 then []
  else begin
    let k = min k n in
    (* first [n mod k] chunks get one extra element *)
    let base = n / k and extra = n mod k in
    let rec take i acc xs =
      if i = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (i - 1) (x :: acc) rest
    in
    let rec go i xs =
      if i >= k then []
      else
        let size = base + if i < extra then 1 else 0 in
        let c, rest = take size [] xs in
        c :: go (i + 1) rest
    in
    go 0 xs
  end

let csh_tree ?(mode = `Hetero) shapes =
  let rec round = function
    | [] -> []
    | [ s ] -> [ s ]
    | a :: b :: rest -> Csh.csh ~mode a b :: round rest
  in
  let rec reduce = function
    | [] -> Shape.Bottom
    | [ s ] -> s
    | ss -> reduce (round ss)
  in
  reduce shapes

(* Run [f] over every chunk, the first chunk on the current domain and
   the rest on spawned domains, and merge the chunk results with the
   balanced csh tree. Chunks keep sample order, and the tree merges
   adjacent shapes only, so order-sensitive parts of the representation
   (record field order) match the sequential left fold exactly. *)
let map_reduce_chunks ~cmode ~jobs ~of_chunk samples =
  match chunk jobs samples with
  | [] -> Shape.Bottom
  | [ c ] -> of_chunk c
  | first :: rest ->
      let workers =
        List.map (fun c -> Domain.spawn (fun () -> of_chunk c)) rest
      in
      let s0 = of_chunk first in
      csh_tree ~mode:cmode (s0 :: List.map Domain.join workers)

let shape_of_samples ?(mode : mode = `Practical) ?jobs ds =
  let jobs = normalize_jobs jobs in
  if jobs = 1 then Infer.shape_of_samples ~mode ds
  else
    map_reduce_chunks ~cmode:(Infer.csh_mode mode) ~jobs
      ~of_chunk:(Infer.shape_of_samples ~mode) ds

(* ----- Format entry points ----- *)

(* Parse-and-infer a chunk of sample texts; stop at the chunk's first
   parse error. The per-chunk results are scanned in order afterwards,
   so the error reported for a bad corpus is the earliest one, exactly
   as in the sequential drivers of {!Infer}. *)
let fold_chunk ~mode ~parse texts =
  let rec go acc = function
    | [] -> Ok acc
    | t :: rest -> (
        match parse t with
        | Ok d -> go (Csh.csh ~mode:(Infer.csh_mode mode) acc (Infer.shape_of_value ~mode d)) rest
        | Error _ as e -> e)
  in
  go Shape.Bottom texts

let of_samples ~mode ~parse ~jobs texts =
  let jobs = normalize_jobs jobs in
  let cmode = Infer.csh_mode mode in
  match chunk jobs texts with
  | [] -> Ok Shape.Bottom
  | [ c ] -> fold_chunk ~mode ~parse c
  | first :: rest ->
      let workers =
        List.map
          (fun c -> Domain.spawn (fun () -> fold_chunk ~mode ~parse c))
          rest
      in
      let r0 = fold_chunk ~mode ~parse first in
      let results = r0 :: List.map Domain.join workers in
      let rec merge acc = function
        | [] -> Ok (csh_tree ~mode:cmode (List.rev acc))
        | Ok s :: rest -> merge (s :: acc) rest
        | (Error _ as e) :: _ -> e
      in
      merge [] results

let of_json_samples ?(mode : mode = `Practical) ?jobs texts =
  of_samples ~mode ~parse:Json.parse_result ~jobs texts

let of_xml_samples ?(mode : mode = `Xml) ?jobs texts =
  let parse t =
    match Xml.parse_result t with
    | Ok tree ->
        (* Inference classifies the raw attribute/body strings itself,
           so keep them unconverted here (as in {!Infer.of_xml_samples}). *)
        Ok (Xml.to_data ~convert_primitives:false tree)
    | Error _ as e -> e
  in
  of_samples ~mode ~parse ~jobs texts

(* Streaming JSON: the parser walks the stream chunk by chunk
   ({!Json.fold_many}) and hands each parsed chunk to a worker domain
   for inference, keeping at most [jobs] chunks in flight; their shapes
   are collected in stream order and tree-merged at the end. Only the
   in-flight chunks are resident as data values. *)
let of_json ?(mode : mode = `Practical) ?jobs ?(chunk_size = 256) src =
  let jobs = normalize_jobs jobs in
  let cmode = Infer.csh_mode mode in
  let infer_chunk ds = Infer.shape_of_samples ~mode ds in
  (* FIFO of in-flight domains, oldest first. *)
  let inflight = Queue.create () in
  let shapes = ref [] in
  let seen = ref 0 in
  let drain_one () = shapes := Domain.join (Queue.pop inflight) :: !shapes in
  let drain_all () =
    while not (Queue.is_empty inflight) do
      drain_one ()
    done
  in
  match
    Json.fold_many ~chunk_size
      (fun () ds ->
        seen := !seen + List.length ds;
        if jobs = 1 then shapes := infer_chunk ds :: !shapes
        else begin
          if Queue.length inflight >= jobs then drain_one ();
          Queue.add (Domain.spawn (fun () -> infer_chunk ds)) inflight
        end)
      () src
  with
  | () ->
      drain_all ();
      if !seen = 0 then Error "no JSON sample documents found"
      else Ok (csh_tree ~mode:cmode (List.rev !shapes))
  | exception Json.Parse_error { line; column; message } ->
      (* join stragglers so no domain outlives the call *)
      drain_all ();
      Error
        (Printf.sprintf "JSON parse error at line %d, column %d: %s" line
           column message)
