exception Parse_error of { position : int; message : string }

type state = { src : string; len : int; mutable pos : int }

let error st fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error { position = st.pos; message }))
    fmt

(* multi-byte symbols *)
let sym_bottom = "\xe2\x8a\xa5" (* ⊥ *)
let sym_langle = "\xe2\x9f\xa8" (* ⟨ *)
let sym_rangle = "\xe2\x9f\xa9" (* ⟩ *)

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.src st.pos n = s

let skip st s = st.pos <- st.pos + String.length s

let skip_ws st =
  while
    st.pos < st.len
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let is_delim_at st =
  looking_at st sym_langle || looking_at st sym_rangle
  ||
  match st.src.[st.pos] with
  | '[' | ']' | '{' | '}' | ',' | ':' | '|' | '<' | '>' | ' ' | '\t' | '\n'
  | '\r' ->
      true
  | _ -> false

(* an identifier: a maximal run of non-delimiter bytes (so •, •row and
   namespaced XML names all work) *)
let ident st =
  skip_ws st;
  let start = st.pos in
  while st.pos < st.len && not (is_delim_at st) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected an identifier";
  String.sub st.src start (st.pos - start)

let expect st c =
  skip_ws st;
  if st.pos < st.len && st.src.[st.pos] = c then st.pos <- st.pos + 1
  else error st "expected %C" c

let primitive_of_string = function
  | "bit0" -> Some Shape.Bit0
  | "bit1" -> Some Shape.Bit1
  | "bit" -> Some Shape.Bit
  | "bool" -> Some Shape.Bool
  | "int" -> Some Shape.Int
  | "float" -> Some Shape.Float
  | "string" -> Some Shape.String
  | "date" -> Some Shape.Date
  | _ -> None

let rec parse_shape st : Shape.t =
  skip_ws st;
  if looking_at st sym_bottom then begin
    skip st sym_bottom;
    Shape.Bottom
  end
  else if looking_at st "_|_" then begin
    skip st "_|_";
    Shape.Bottom
  end
  else if st.pos < st.len && st.src.[st.pos] = '[' then parse_collection st
  else if st.pos < st.len && st.src.[st.pos] = '{' then
    (* anonymous record: the JSON record name *)
    Shape.record Fsdata_data.Data_value.json_record_name (parse_fields st)
  else begin
    let name = ident st in
    match name with
    | "bot" -> Shape.Bottom
    | "null" -> Shape.Null
    | "nullable" ->
        let inner = parse_shape st in
        if Shape.is_non_nullable inner then Shape.Nullable inner
        else error st "nullable expects a primitive or record shape"
    | "any" ->
        skip_ws st;
        if looking_at st sym_langle then begin
          skip st sym_langle;
          let labels = parse_label_list st sym_rangle in
          Shape.top labels
        end
        else if st.pos < st.len && st.src.[st.pos] = '<' then begin
          st.pos <- st.pos + 1;
          let labels = parse_label_list st ">" in
          Shape.top labels
        end
        else Shape.any
    | _ -> (
        match primitive_of_string name with
        | Some p -> Shape.Primitive p
        | None ->
            (* a named record *)
            skip_ws st;
            if st.pos < st.len && st.src.[st.pos] = '{' then
              Shape.record name (parse_fields st)
            else error st "unknown shape %S" name)
  end

and parse_fields st =
  expect st '{';
  skip_ws st;
  if st.pos < st.len && st.src.[st.pos] = '}' then begin
    st.pos <- st.pos + 1;
    []
  end
  else begin
    let rec fields acc =
      let name = ident st in
      expect st ':';
      let s = parse_shape st in
      let acc = (name, s) :: acc in
      skip_ws st;
      if st.pos < st.len && st.src.[st.pos] = ',' then begin
        st.pos <- st.pos + 1;
        fields acc
      end
      else begin
        expect st '}';
        List.rev acc
      end
    in
    fields []
  end

and parse_label_list st closer =
  let rec labels acc =
    let s = parse_shape st in
    skip_ws st;
    if st.pos < st.len && st.src.[st.pos] = ',' then begin
      st.pos <- st.pos + 1;
      labels (s :: acc)
    end
    else begin
      skip_ws st;
      if looking_at st closer then begin
        skip st closer;
        List.rev (s :: acc)
      end
      else error st "expected %s or ',' in labelled top" closer
    end
  in
  labels []

and parse_mult st : Multiplicity.t =
  skip_ws st;
  if looking_at st "1?" then begin
    skip st "1?";
    Multiplicity.Optional_single
  end
  else if looking_at st "1" then begin
    skip st "1";
    Multiplicity.Single
  end
  else if looking_at st "*" then begin
    skip st "*";
    Multiplicity.Multiple
  end
  else error st "expected a multiplicity (1, 1? or *)"

and parse_collection st =
  expect st '[';
  skip_ws st;
  if st.pos < st.len && st.src.[st.pos] = ']' then begin
    st.pos <- st.pos + 1;
    Shape.collection Shape.Bottom
  end
  else begin
    let rec entries acc =
      let s = parse_shape st in
      skip_ws st;
      let mult =
        if st.pos < st.len && st.src.[st.pos] = ',' then begin
          st.pos <- st.pos + 1;
          parse_mult st
        end
        else Multiplicity.Multiple
      in
      let acc = (s, mult) :: acc in
      skip_ws st;
      if st.pos < st.len && st.src.[st.pos] = '|' then begin
        st.pos <- st.pos + 1;
        entries acc
      end
      else begin
        expect st ']';
        List.rev acc
      end
    in
    match entries [] with
    | [ (Shape.Bottom, _) ] -> Shape.collection Shape.Bottom
    | [ (s, Multiplicity.Multiple) ] -> Shape.collection s
    | pairs ->
        if List.exists (fun (s, _) -> s = Shape.Bottom) pairs then
          error st "bottom cannot appear as a collection entry"
        else Shape.hetero pairs
  end

let parse src =
  let st = { src; len = String.length src; pos = 0 } in
  let s = parse_shape st in
  skip_ws st;
  if st.pos < st.len then error st "trailing input after shape";
  s

let parse_result src =
  match parse src with
  | s -> Ok s
  | exception Parse_error { position; message } ->
      Error (Printf.sprintf "shape parse error at offset %d: %s" position message)
  | exception Invalid_argument message ->
      Error (Printf.sprintf "invalid shape: %s" message)
