(** Small-step evaluation of the Foo calculus (Figure 6).

    Reduction [L, e ~> e'] proceeds left-to-right, call-by-value, through
    the evaluation contexts of Section 4.1. Evaluation has four outcomes:

    - a value,
    - the exception [exn] of Remark 1, which propagates through any
      context ([C\[exn\] ~> exn]),
    - a stuck state — a dynamic data operation applied to data of the
      wrong shape, e.g. [convPrim(bool, 42)]; relative type safety
      (Theorem 3) says this never happens when the input's shape is
      preferred over the samples' shape,
    - divergence, cut off by the [fuel] parameter (well-typed Foo programs
      terminate — the calculus has no recursion — but the interpreter is
      defensive anyway).

    The dynamic data operations follow Figure 6, Part I:

    {v
      hasShape(s, d)                ~> true/false
      convFloat(float, i)           ~> f          (f = i)
      convFloat(float, f)           ~> f
      convPrim(p, d)                ~> d          ((p,d) in {int,i; string,s; bool,b})
      convNull(null, e)             ~> None
      convNull(d, e)                ~> Some(e d)
      convField(nu, ni, nu{..ni=di..}, e) ~> e di
      convField(nu, n', nu{..}, e)  ~> e null     (no field n')
      convElements([d1;..;dn], e)   ~> e d1 :: .. :: e dn :: nil
      convElements(null, e)         ~> nil
    v}

    plus the extensions [convBool] (0/1/booleans), [convDate] (strings in
    a recognized date format) and [convSelect] (heterogeneous collection
    member selection by runtime shape test). *)

type outcome =
  | Value of Syntax.expr
  | Exn
  | Stuck of { redex : Syntax.expr; reason : string }
  | Timeout

val step : Syntax.class_env -> Syntax.expr -> [ `Step of Syntax.expr | `Done of outcome ]
(** One reduction step. [`Done (Value v)] when the expression is already a
    value; [`Done (Stuck _)] when no rule applies. *)

val eval : ?fuel:int -> Syntax.class_env -> Syntax.expr -> outcome
(** Iterate {!step}; default fuel is 1_000_000 steps. *)

val eval_value : ?fuel:int -> Syntax.class_env -> Syntax.expr -> (Syntax.expr, string) result
(** Like {!eval} but flattening non-value outcomes into an error message;
    convenient in examples and tests. *)

val trace : ?fuel:int -> Syntax.class_env -> Syntax.expr -> Syntax.expr list * outcome
(** The full reduction sequence (for documentation and the predictability
    tests); the list contains the successive expressions, starting with
    the input. *)

val pp_outcome : Format.formatter -> outcome -> unit
