open Syntax
module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity

type value =
  | VData of Dv.t
  | VDate of Fsdata_data.Date.t
  | VNone
  | VSome of value
  | VNil
  | VCons of value * value
  | VObj of string * value list
  | VClosure of string * expr * env

and env = (string * value) list

exception Foo_exn
exception Stuck of string

let stuck fmt = Printf.ksprintf (fun m -> raise (Stuck m)) fmt

let rec equal_value a b =
  match (a, b) with
  | VData d1, VData d2 -> Dv.equal d1 d2
  | VDate d1, VDate d2 -> Fsdata_data.Date.equal d1 d2
  | VNone, VNone | VNil, VNil -> true
  | VSome x, VSome y -> equal_value x y
  | VCons (a1, a2), VCons (b1, b2) -> equal_value a1 b1 && equal_value a2 b2
  | VObj (c1, a1), VObj (c2, a2) ->
      String.equal c1 c2
      && List.length a1 = List.length a2
      && List.for_all2 equal_value a1 a2
  | VClosure (x1, e1, _), VClosure (x2, e2, _) -> x1 = x2 && e1 = e2
  | _ -> false

let rec eval classes env (e : expr) : value =
  match e with
  | EData d -> VData d
  | EDate d -> VDate d
  | EExn -> raise Foo_exn
  | EVar x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> stuck "unbound variable %s" x)
  | ELam (x, _, body) -> VClosure (x, body, env)
  | EApp (f, a) -> (
      let fv = eval classes env f in
      let av = eval classes env a in
      match fv with
      | VClosure (x, body, closure_env) ->
          eval classes ((x, av) :: closure_env) body
      | _ -> stuck "application of a non-function value")
  | EMember (e1, n) -> member classes (eval classes env e1) n
  | ENew (c, args) -> VObj (c, List.map (eval classes env) args)
  | ENone _ -> VNone
  | ESome e1 -> VSome (eval classes env e1)
  | EMatchOption (e0, x, e1, e2) -> (
      match eval classes env e0 with
      | VNone -> eval classes env e2
      | VSome v -> eval classes ((x, v) :: env) e1
      | _ -> stuck "matching a non-option value")
  | EEq (e1, e2) ->
      let v1 = eval classes env e1 in
      let v2 = eval classes env e2 in
      VData (Dv.Bool (equal_value v1 v2))
  | EIf (c, t, f) -> (
      match eval classes env c with
      | VData (Dv.Bool true) -> eval classes env t
      | VData (Dv.Bool false) -> eval classes env f
      | _ -> stuck "if on a non-boolean value")
  | ENil _ -> VNil
  | ECons (e1, e2) ->
      let h = eval classes env e1 in
      let t = eval classes env e2 in
      VCons (h, t)
  | EMatchList (e0, x1, x2, e1, e2) -> (
      match eval classes env e0 with
      | VNil -> eval classes env e2
      | VCons (h, t) -> eval classes ((x1, h) :: (x2, t) :: env) e1
      | _ -> stuck "matching a non-list value")
  | EOp op -> eval_op classes env op

and member classes obj n =
  match obj with
  | VObj (c, args) -> (
      match find_class classes c with
      | None -> stuck "unknown class %s" c
      | Some cls -> (
          match find_member cls n with
          | None -> stuck "class %s has no member %s" c n
          | Some m ->
              if List.length args <> List.length cls.ctor_params then
                stuck "constructor arity mismatch for %s" c
              else
                let env =
                  List.map2 (fun (x, _) v -> (x, v)) cls.ctor_params args
                in
                eval classes env m.member_body))
  | _ -> stuck "member access on a non-object value"

and data_of v =
  match v with VData d -> d | _ -> stuck "expected a data value"

and apply classes f (d : Dv.t) =
  match f with
  | VClosure (x, body, env) -> eval classes ((x, VData d) :: env) body
  | _ -> stuck "conversion continuation is not a function"

and eval_op classes env (op : op) : value =
  match op with
  | ConvFloat (_, e1) -> (
      match data_of (eval classes env e1) with
      | Dv.Int i -> VData (Dv.Float (float_of_int i))
      | Dv.Float _ as f -> VData f
      | _ -> stuck "convFloat on a non-numeric value")
  | ConvPrim (s, e1) -> (
      match (s, data_of (eval classes env e1)) with
      | Shape.Primitive Shape.Int, (Dv.Int _ as d)
      | Shape.Primitive Shape.String, (Dv.String _ as d)
      | Shape.Primitive Shape.Bool, (Dv.Bool _ as d) ->
          VData d
      | _ -> stuck "convPrim on a value of the wrong shape")
  | ConvBool e1 -> (
      match data_of (eval classes env e1) with
      | Dv.Bool _ as d -> VData d
      | Dv.Int 0 -> VData (Dv.Bool false)
      | Dv.Int 1 -> VData (Dv.Bool true)
      | _ -> stuck "convBool on a value that is not a boolean or 0/1")
  | ConvDate e1 -> (
      match data_of (eval classes env e1) with
      | Dv.String s -> (
          match Fsdata_data.Date.of_string s with
          | Some d -> VDate d
          | None -> stuck "convDate on a string that is not a date")
      | _ -> stuck "convDate on a non-string value")
  | ConvField (nu, nu', e1, e2) -> (
      let k = eval classes env e2 in
      match data_of (eval classes env e1) with
      | Dv.Record (name, fields) when String.equal name nu ->
          let d =
            match List.assoc_opt nu' fields with Some d -> d | None -> Dv.Null
          in
          apply classes k d
      | _ -> stuck "convField on a non-record value")
  | ConvNull (e1, e2) -> (
      let k = eval classes env e2 in
      match data_of (eval classes env e1) with
      | Dv.Null -> VNone
      | d -> VSome (apply classes k d))
  | ConvElements (e1, e2) -> (
      let k = eval classes env e2 in
      match data_of (eval classes env e1) with
      | Dv.Null -> VNil
      | Dv.List ds ->
          List.fold_right (fun d acc -> VCons (apply classes k d, acc)) ds VNil
      | _ -> stuck "convElements on a value that is not a collection or null")
  | HasShape (s, e1) ->
      VData
        (Dv.Bool
           (Fsdata_core.Shape_check.has_shape s (data_of (eval classes env e1))))
  | ConvSelect (s, mult, e1, e2) -> (
      let k = eval classes env e2 in
      let ds =
        match data_of (eval classes env e1) with
        | Dv.Null -> []
        | Dv.List ds -> ds
        | _ -> stuck "convSelect on a value that is not a collection or null"
      in
      let matches =
        List.filter (fun d -> Fsdata_core.Shape_check.has_shape s d) ds
      in
      match (mult, matches) with
      | Mult.Single, d :: _ -> apply classes k d
      | Mult.Single, [] -> stuck "convSelect: no element of the required shape"
      | Mult.Optional_single, d :: _ -> VSome (apply classes k d)
      | Mult.Optional_single, [] -> VNone
      | Mult.Multiple, ds ->
          List.fold_right (fun d acc -> VCons (apply classes k d, acc)) ds VNil)
  | IntOfFloat e1 -> (
      match data_of (eval classes env e1) with
      | Dv.Float f -> VData (Dv.Int (int_of_float f))
      | Dv.Int _ as d -> VData d
      | _ -> stuck "int(e) on a non-numeric value")

let rec of_expr_value (e : expr) : value option =
  match e with
  | EData d -> Some (VData d)
  | EDate d -> Some (VDate d)
  | ENone _ -> Some VNone
  | ESome e1 -> Option.map (fun v -> VSome v) (of_expr_value e1)
  | ENil _ -> Some VNil
  | ECons (e1, e2) -> (
      match (of_expr_value e1, of_expr_value e2) with
      | Some h, Some t -> Some (VCons (h, t))
      | _ -> None)
  | ENew (c, args) ->
      let rec go acc = function
        | [] -> Some (VObj (c, List.rev acc))
        | a :: rest -> (
            match of_expr_value a with
            | Some v -> go (v :: acc) rest
            | None -> None)
      in
      go [] args
  | ELam (x, _, body) -> Some (VClosure (x, body, []))
  | _ -> None

let rec pp ppf = function
  | VData d -> Dv.pp ppf d
  | VDate d -> Fmt.pf ppf "date(%a)" Fsdata_data.Date.pp d
  | VNone -> Fmt.string ppf "None"
  | VSome v -> Fmt.pf ppf "Some(%a)" pp v
  | VNil -> Fmt.string ppf "nil"
  | VCons (h, t) -> Fmt.pf ppf "%a :: %a" pp h pp t
  | VObj (c, args) ->
      Fmt.pf ppf "new %s(%a)" c Fmt.(list ~sep:(any ", ") pp) args
  | VClosure (x, _, _) -> Fmt.pf ppf "<closure %s>" x
