type ty =
  | TInt
  | TFloat
  | TBool
  | TString
  | TDate
  | TClass of string
  | TData
  | TArrow of ty * ty
  | TList of ty
  | TOption of ty

type expr =
  | EData of Fsdata_data.Data_value.t
  | EDate of Fsdata_data.Date.t
  | EVar of string
  | ELam of string * ty * expr
  | EApp of expr * expr
  | EMember of expr * string
  | ENew of string * expr list
  | ENone of ty
  | ESome of expr
  | EMatchOption of expr * string * expr * expr
  | EEq of expr * expr
  | EIf of expr * expr * expr
  | ENil of ty
  | ECons of expr * expr
  | EMatchList of expr * string * string * expr * expr
  | EOp of op
  | EExn

and op =
  | ConvFloat of Fsdata_core.Shape.t * expr
  | ConvPrim of Fsdata_core.Shape.t * expr
  | ConvField of string * string * expr * expr
  | ConvNull of expr * expr
  | ConvElements of expr * expr
  | HasShape of Fsdata_core.Shape.t * expr
  | ConvBool of expr
  | ConvDate of expr
  | ConvSelect of Fsdata_core.Shape.t * Fsdata_core.Multiplicity.t * expr * expr
  | IntOfFloat of expr

type member_def = { member_name : string; member_ty : ty; member_body : expr }

type class_def = {
  class_name : string;
  ctor_params : (string * ty) list;
  members : member_def list;
}

type class_env = class_def list

let find_class classes name =
  List.find_opt (fun c -> String.equal c.class_name name) classes

let find_member cls name =
  List.find_opt (fun m -> String.equal m.member_name name) cls.members

let rec is_value = function
  | EData _ | EDate _ | ENone _ | ENil _ | ELam _ -> true
  | ESome e -> is_value e
  | ECons (e1, e2) -> is_value e1 && is_value e2
  | ENew (_, args) -> List.for_all is_value args
  | _ -> false

let rec free_vars = function
  | EData _ | EDate _ | ENone _ | ENil _ | EExn -> []
  | EVar x -> [ x ]
  | ELam (x, _, e) -> List.filter (fun y -> y <> x) (free_vars e)
  | EApp (e1, e2) | EEq (e1, e2) | ECons (e1, e2) -> free_vars e1 @ free_vars e2
  | EMember (e, _) | ESome e -> free_vars e
  | ENew (_, args) -> List.concat_map free_vars args
  | EMatchOption (e, x, e1, e2) ->
      free_vars e
      @ List.filter (fun y -> y <> x) (free_vars e1)
      @ free_vars e2
  | EIf (e1, e2, e3) -> free_vars e1 @ free_vars e2 @ free_vars e3
  | EMatchList (e, x1, x2, e1, e2) ->
      free_vars e
      @ List.filter (fun y -> y <> x1 && y <> x2) (free_vars e1)
      @ free_vars e2
  | EOp op -> free_vars_op op

and free_vars_op = function
  | ConvFloat (_, e)
  | ConvPrim (_, e)
  | HasShape (_, e)
  | ConvBool e
  | ConvDate e
  | IntOfFloat e ->
      free_vars e
  | ConvField (_, _, e1, e2)
  | ConvNull (e1, e2)
  | ConvElements (e1, e2)
  | ConvSelect (_, _, e1, e2) ->
      free_vars e1 @ free_vars e2

let gensym =
  let counter = ref 0 in
  fun base ->
    incr counter;
    Printf.sprintf "%s%%%d" base !counter

let rec subst x v e =
  let s e = subst x v e in
  match e with
  | EData _ | EDate _ | ENone _ | ENil _ | EExn -> e
  | EVar y -> if String.equal x y then v else e
  | ELam (y, ty, body) ->
      if String.equal x y then e
      else if List.mem y (free_vars v) then begin
        let y' = gensym y in
        ELam (y', ty, s (subst y (EVar y') body))
      end
      else ELam (y, ty, s body)
  | EApp (e1, e2) -> EApp (s e1, s e2)
  | EMember (e1, n) -> EMember (s e1, n)
  | ENew (c, args) -> ENew (c, List.map s args)
  | ESome e1 -> ESome (s e1)
  | EMatchOption (e0, y, e1, e2) ->
      if String.equal x y then EMatchOption (s e0, y, e1, s e2)
      else if List.mem y (free_vars v) then begin
        let y' = gensym y in
        EMatchOption (s e0, y', s (subst y (EVar y') e1), s e2)
      end
      else EMatchOption (s e0, y, s e1, s e2)
  | EEq (e1, e2) -> EEq (s e1, s e2)
  | EIf (e1, e2, e3) -> EIf (s e1, s e2, s e3)
  | ECons (e1, e2) -> ECons (s e1, s e2)
  | EMatchList (e0, y1, y2, e1, e2) ->
      let bound = [ y1; y2 ] in
      if List.mem x bound then EMatchList (s e0, y1, y2, e1, s e2)
      else if List.exists (fun y -> List.mem y (free_vars v)) bound then begin
        let y1' = gensym y1 and y2' = gensym y2 in
        let e1' = subst y1 (EVar y1') (subst y2 (EVar y2') e1) in
        EMatchList (s e0, y1', y2', s e1', s e2)
      end
      else EMatchList (s e0, y1, y2, s e1, s e2)
  | EOp op -> EOp (subst_op x v op)

and subst_op x v op =
  let s e = subst x v e in
  match op with
  | ConvFloat (sh, e) -> ConvFloat (sh, s e)
  | ConvPrim (sh, e) -> ConvPrim (sh, s e)
  | ConvField (n1, n2, e1, e2) -> ConvField (n1, n2, s e1, s e2)
  | ConvNull (e1, e2) -> ConvNull (s e1, s e2)
  | ConvElements (e1, e2) -> ConvElements (s e1, s e2)
  | HasShape (sh, e) -> HasShape (sh, s e)
  | ConvBool e -> ConvBool (s e)
  | ConvDate e -> ConvDate (s e)
  | ConvSelect (sh, m, e1, e2) -> ConvSelect (sh, m, s e1, s e2)
  | IntOfFloat e -> IntOfFloat (s e)

let int_ i = EData (Fsdata_data.Data_value.Int i)
let float_ f = EData (Fsdata_data.Data_value.Float f)
let bool_ b = EData (Fsdata_data.Data_value.Bool b)
let string_ s = EData (Fsdata_data.Data_value.String s)
let null = EData Fsdata_data.Data_value.Null
let lam x ty e = ELam (x, ty, e)
let ( @@@ ) f x = EApp (f, x)

let rec ty_equal t1 t2 =
  match (t1, t2) with
  | TInt, TInt | TFloat, TFloat | TBool, TBool | TString, TString -> true
  | TDate, TDate | TData, TData -> true
  | TClass a, TClass b -> String.equal a b
  | TArrow (a1, b1), TArrow (a2, b2) -> ty_equal a1 a2 && ty_equal b1 b2
  | TList a, TList b | TOption a, TOption b -> ty_equal a b
  | _ -> false

let rec pp_ty ppf = function
  | TInt -> Fmt.string ppf "int"
  | TFloat -> Fmt.string ppf "float"
  | TBool -> Fmt.string ppf "bool"
  | TString -> Fmt.string ppf "string"
  | TDate -> Fmt.string ppf "date"
  | TClass c -> Fmt.string ppf c
  | TData -> Fmt.string ppf "Data"
  | TArrow (a, b) -> Fmt.pf ppf "(%a -> %a)" pp_ty a pp_ty b
  | TList t -> Fmt.pf ppf "list %a" pp_ty_atom t
  | TOption t -> Fmt.pf ppf "option %a" pp_ty_atom t

and pp_ty_atom ppf t =
  match t with
  | TArrow _ | TList _ | TOption _ -> Fmt.pf ppf "(%a)" pp_ty t
  | _ -> pp_ty ppf t

let rec pp_expr ppf = function
  | EData d -> Fsdata_data.Data_value.pp ppf d
  | EDate d -> Fmt.pf ppf "date(%a)" Fsdata_data.Date.pp d
  | EVar x -> Fmt.string ppf x
  | ELam (x, ty, e) -> Fmt.pf ppf "(\xce\xbb%s:%a.@ %a)" x pp_ty ty pp_expr e
  | EApp (e1, e2) -> Fmt.pf ppf "@[<hov 2>%a@ %a@]" pp_expr e1 pp_atom e2
  | EMember (e, n) -> Fmt.pf ppf "%a.%s" pp_atom e n
  | ENew (c, args) ->
      Fmt.pf ppf "new %s(@[<hov>%a@])" c
        Fmt.(list ~sep:(any ",@ ") pp_expr)
        args
  | ENone _ -> Fmt.string ppf "None"
  | ESome e -> Fmt.pf ppf "Some(%a)" pp_expr e
  | EMatchOption (e, x, e1, e2) ->
      Fmt.pf ppf "@[<hov 2>match %a with@ | Some(%s) \xe2\x86\x92 %a@ | None \xe2\x86\x92 %a@]"
        pp_expr e x pp_expr e1 pp_expr e2
  | EEq (e1, e2) -> Fmt.pf ppf "%a = %a" pp_atom e1 pp_atom e2
  | EIf (e1, e2, e3) ->
      Fmt.pf ppf "@[<hov 2>if %a@ then %a@ else %a@]" pp_expr e1 pp_expr e2
        pp_expr e3
  | ENil _ -> Fmt.string ppf "nil"
  | ECons (e1, e2) -> Fmt.pf ppf "%a :: %a" pp_atom e1 pp_expr e2
  | EMatchList (e, x1, x2, e1, e2) ->
      Fmt.pf ppf
        "@[<hov 2>match %a with@ | %s :: %s \xe2\x86\x92 %a@ | nil \xe2\x86\x92 %a@]"
        pp_expr e x1 x2 pp_expr e1 pp_expr e2
  | EOp op -> pp_op ppf op
  | EExn -> Fmt.string ppf "exn"

and pp_atom ppf e =
  match e with
  | EData _ | EVar _ | ENone _ | ENil _ | EExn | EMember _ | EDate _ ->
      pp_expr ppf e
  | _ -> Fmt.pf ppf "(%a)" pp_expr e

and pp_op ppf op =
  let shape = Fsdata_core.Shape.pp in
  match op with
  | ConvFloat (s, e) -> Fmt.pf ppf "convFloat(%a, %a)" shape s pp_expr e
  | ConvPrim (s, e) -> Fmt.pf ppf "convPrim(%a, %a)" shape s pp_expr e
  | ConvField (n1, n2, e1, e2) ->
      Fmt.pf ppf "convField(%s, %s, %a, %a)" n1 n2 pp_expr e1 pp_expr e2
  | ConvNull (e1, e2) -> Fmt.pf ppf "convNull(%a, %a)" pp_expr e1 pp_expr e2
  | ConvElements (e1, e2) ->
      Fmt.pf ppf "convElements(%a, %a)" pp_expr e1 pp_expr e2
  | HasShape (s, e) -> Fmt.pf ppf "hasShape(%a, %a)" shape s pp_expr e
  | ConvBool e -> Fmt.pf ppf "convBool(%a)" pp_expr e
  | ConvDate e -> Fmt.pf ppf "convDate(%a)" pp_expr e
  | ConvSelect (s, m, e1, e2) ->
      Fmt.pf ppf "convSelect(%a, %a, %a, %a)" shape s Fsdata_core.Multiplicity.pp
        m pp_expr e1 pp_expr e2
  | IntOfFloat e -> Fmt.pf ppf "int(%a)" pp_expr e

let pp_class ppf (c : class_def) =
  Fmt.pf ppf "@[<v 2>type %s(@[<hov>%a@]) =@ %a@]" c.class_name
    Fmt.(
      list ~sep:(any ",@ ") (fun ppf (x, ty) -> Fmt.pf ppf "%s : %a" x pp_ty ty))
    c.ctor_params
    Fmt.(
      list ~sep:(any "@ ") (fun ppf (m : member_def) ->
          Fmt.pf ppf "@[<hov 2>member %s : %a =@ %a@]" m.member_name pp_ty
            m.member_ty pp_expr m.member_body))
    c.members

let ty_to_string t = Fmt.str "%a" pp_ty t
let expr_to_string e = Fmt.str "%a" pp_expr e
