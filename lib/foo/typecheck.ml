open Syntax

type error = { message : string; expr : expr }

let pp_error ppf { message; expr } =
  Fmt.pf ppf "%s@ in @[%a@]" message pp_expr expr

let err expr fmt = Printf.ksprintf (fun message -> Error { message; expr }) fmt

let ( let* ) r f = Result.bind r f

(* The primitive type of a primitive data value, if any. *)
let prim_ty_of_data (d : Fsdata_data.Data_value.t) =
  match d with
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Bool _ -> Some TBool
  | String _ -> Some TString
  | Null | List _ | Record _ -> None

let conv_prim_ty expr (s : Fsdata_core.Shape.t) =
  match s with
  | Primitive Fsdata_core.Shape.Int -> Ok TInt
  | Primitive Fsdata_core.Shape.String -> Ok TString
  | Primitive Fsdata_core.Shape.Bool -> Ok TBool
  | _ -> err expr "convPrim expects an int, string or bool shape"

let rec synth classes gamma e =
  match e with
  | EData d -> (
      (* d : Data for every d; primitive values also have their primitive
         type, which we prefer when synthesizing. *)
      match prim_ty_of_data d with Some t -> Ok t | None -> Ok TData)
  | EDate _ -> Ok TDate
  | EVar x -> (
      match List.assoc_opt x gamma with
      | Some t -> Ok t
      | None -> err e "unbound variable %s" x)
  | ELam (x, t1, body) ->
      let* t2 = synth classes ((x, t1) :: gamma) body in
      Ok (TArrow (t1, t2))
  | EApp (e1, e2) -> (
      let* t1 = synth classes gamma e1 in
      match t1 with
      | TArrow (ta, tb) ->
          let* () = check classes gamma e2 ta in
          Ok tb
      | t -> err e "expected a function but found %s" (ty_to_string t))
  | EMember (e1, n) -> (
      let* t1 = synth classes gamma e1 in
      match t1 with
      | TClass c -> (
          match find_class classes c with
          | None -> err e "unknown class %s" c
          | Some cls -> (
              match find_member cls n with
              | Some m -> Ok m.member_ty
              | None -> err e "class %s has no member %s" c n))
      | t -> err e "member access on non-class type %s" (ty_to_string t))
  | ENew (c, args) -> (
      match find_class classes c with
      | None -> err e "unknown class %s" c
      | Some cls ->
          if List.length args <> List.length cls.ctor_params then
            err e "class %s expects %d constructor arguments, got %d" c
              (List.length cls.ctor_params) (List.length args)
          else
            let* () =
              List.fold_left2
                (fun acc arg (_, t) ->
                  let* () = acc in
                  check classes gamma arg t)
                (Ok ()) args cls.ctor_params
            in
            Ok (TClass c))
  | ENone t -> Ok (TOption t)
  | ESome e1 ->
      let* t = synth classes gamma e1 in
      Ok (TOption t)
  | EMatchOption (e0, x, e1, e2) -> (
      let* t0 = synth classes gamma e0 in
      match t0 with
      | TOption t -> synth_branches classes ((x, t) :: gamma) e1 gamma e2
      | t -> err e "matching an option against %s" (ty_to_string t))
  | EEq (e1, e2) -> (
      (* Equality at any (equal) type; exn never synthesizes, so try the
         other side when one fails. *)
      match synth classes gamma e1 with
      | Ok t ->
          let* () = check classes gamma e2 t in
          Ok TBool
      | Error _ ->
          let* t = synth classes gamma e2 in
          let* () = check classes gamma e1 t in
          Ok TBool)
  | EIf (e1, e2, e3) ->
      let* () = check classes gamma e1 TBool in
      synth_branches classes gamma e2 gamma e3
  | ENil t -> Ok (TList t)
  | ECons (e1, e2) -> (
      match synth classes gamma e1 with
      | Ok t ->
          let* () = check classes gamma e2 (TList t) in
          Ok (TList t)
      | Error _ -> (
          let* t2 = synth classes gamma e2 in
          match t2 with
          | TList t ->
              let* () = check classes gamma e1 t in
              Ok (TList t)
          | t -> err e "cons onto non-list type %s" (ty_to_string t)))
  | EMatchList (e0, x1, x2, e1, e2) -> (
      let* t0 = synth classes gamma e0 in
      match t0 with
      | TList t ->
          synth_branches classes
            ((x1, t) :: (x2, TList t) :: gamma)
            e1 gamma e2
      | t -> err e "matching a list against %s" (ty_to_string t))
  | EOp op -> synth_op classes gamma e op
  | EExn -> err e "exn has no principal type (use check)"

and synth_branches classes gamma1 e1 gamma2 e2 =
  match synth classes gamma1 e1 with
  | Ok t ->
      let* () = check classes gamma2 e2 t in
      Ok t
  | Error _ ->
      let* t = synth classes gamma2 e2 in
      let* () = check classes gamma1 e1 t in
      Ok t

and synth_op classes gamma e op =
  let data e1 = check classes gamma e1 TData in
  match op with
  | ConvFloat (s, e1) -> (
      match s with
      | Primitive Fsdata_core.Shape.Float | Primitive Fsdata_core.Shape.Int ->
          let* () = data e1 in
          Ok TFloat
      | _ -> err e "convFloat expects an int or float shape")
  | ConvPrim (s, e1) ->
      let* t = conv_prim_ty e s in
      let* () = data e1 in
      Ok t
  | ConvField (_, _, e1, e2) -> (
      let* () = data e1 in
      let* t2 = synth classes gamma e2 in
      match t2 with
      | TArrow (TData, t) -> Ok t
      | t -> err e "convField continuation must have type Data -> _, found %s" (ty_to_string t))
  | ConvNull (e1, e2) -> (
      let* () = data e1 in
      let* t2 = synth classes gamma e2 in
      match t2 with
      | TArrow (TData, t) -> Ok (TOption t)
      | t -> err e "convNull continuation must have type Data -> _, found %s" (ty_to_string t))
  | ConvElements (e1, e2) -> (
      let* () = data e1 in
      let* t2 = synth classes gamma e2 in
      match t2 with
      | TArrow (TData, t) -> Ok (TList t)
      | t ->
          err e "convElements continuation must have type Data -> _, found %s"
            (ty_to_string t))
  | HasShape (_, e1) ->
      let* () = data e1 in
      Ok TBool
  | ConvBool e1 ->
      let* () = data e1 in
      Ok TBool
  | ConvDate e1 ->
      let* () = data e1 in
      Ok TDate
  | ConvSelect (_, mult, e1, e2) -> (
      let* () = data e1 in
      let* t2 = synth classes gamma e2 in
      match t2 with
      | TArrow (TData, t) ->
          Ok
            (match mult with
            | Fsdata_core.Multiplicity.Single -> t
            | Fsdata_core.Multiplicity.Optional_single -> TOption t
            | Fsdata_core.Multiplicity.Multiple -> TList t)
      | t ->
          err e "convSelect continuation must have type Data -> _, found %s"
            (ty_to_string t))
  | IntOfFloat e1 ->
      (* Remark 1's int(e): accepts the float the shape evolved into (and
         int, making the coercion idempotent in rewritten programs). *)
      let* t = synth classes gamma e1 in
      if ty_equal t TFloat || ty_equal t TInt then Ok TInt
      else err e "int(e) expects a numeric argument, found %s" (ty_to_string t)

and check classes gamma e t =
  match e with
  | EExn -> Ok () (* exn inhabits every type; it propagates as an outcome *)
  | EData d ->
      if ty_equal t TData then Ok ()
      else (
        match prim_ty_of_data d with
        | Some tp when ty_equal t tp -> Ok ()
        | _ ->
            err e "data value does not have type %s" (ty_to_string t))
  | ENone t' ->
      if ty_equal t (TOption t') then Ok ()
      else err e "None has type %s, expected %s" (ty_to_string (TOption t')) (ty_to_string t)
  | ENil t' ->
      if ty_equal t (TList t') then Ok ()
      else err e "nil has type %s, expected %s" (ty_to_string (TList t')) (ty_to_string t)
  | ESome e1 -> (
      match t with
      | TOption t1 -> check classes gamma e1 t1
      | _ -> err e "Some(_) cannot have type %s" (ty_to_string t))
  | ECons (e1, e2) -> (
      match t with
      | TList t1 ->
          let* () = check classes gamma e1 t1 in
          check classes gamma e2 t
      | _ -> err e "cons cannot have type %s" (ty_to_string t))
  | ELam (x, t1, body) -> (
      match t with
      | TArrow (ta, tb) when ty_equal ta t1 ->
          check classes ((x, t1) :: gamma) body tb
      | _ ->
          err e "lambda of argument type %s cannot have type %s"
            (ty_to_string t1) (ty_to_string t))
  | EIf (e1, e2, e3) ->
      let* () = check classes gamma e1 TBool in
      let* () = check classes gamma e2 t in
      check classes gamma e3 t
  | EMatchOption (e0, x, e1, e2) -> (
      let* t0 = synth classes gamma e0 in
      match t0 with
      | TOption tx ->
          let* () = check classes ((x, tx) :: gamma) e1 t in
          check classes gamma e2 t
      | t0 -> err e "matching an option against %s" (ty_to_string t0))
  | EMatchList (e0, x1, x2, e1, e2) -> (
      let* t0 = synth classes gamma e0 in
      match t0 with
      | TList tx ->
          let* () = check classes ((x1, tx) :: (x2, TList tx) :: gamma) e1 t in
          check classes gamma e2 t
      | t0 -> err e "matching a list against %s" (ty_to_string t0))
  | _ ->
      let* t' = synth classes gamma e in
      if ty_equal t t' then Ok ()
      else
        err e "expression has type %s but %s was expected" (ty_to_string t')
          (ty_to_string t)

let check_class classes (cls : class_def) =
  List.fold_left
    (fun acc (m : member_def) ->
      let* () = acc in
      check classes cls.ctor_params m.member_body m.member_ty)
    (Ok ()) cls.members

let check_classes classes =
  List.fold_left
    (fun acc cls ->
      let* () = acc in
      check_class classes cls)
    (Ok ()) classes
