(** Parsing the Foo calculus concrete syntax.

    Accepts the notation {!Syntax.pp_expr}, {!Syntax.pp_ty} and
    {!Syntax.pp_class} print — so expressions, types and class
    definitions round-trip through text — plus ASCII alternatives for the
    unicode symbols ([\\] or [fun] for λ, [->] for →).

    {v
      e ::= d | x | (λx:τ. e) | e e | e.N | new C(e, ...)
          | None | Some(e) | nil | e :: e | e = e
          | if e then e else e
          | match e with | Some(x) → e | None → e
          | match e with | x :: y → e | nil → e
          | convFloat(σ, e) | convPrim(σ, e) | convField(ν, ν, e, e)
          | convNull(e, e) | convElements(e, e) | hasShape(σ, e)
          | convBool(e) | convDate(e) | convSelect(σ, ψ, e, e) | int(e)
          | exn | date(YYYY-MM-DD)
      d ::= null | true | false | i | f | "s" | [d; ...] | ν {f ↦ d, ...}
      τ ::= int | float | bool | string | date | Data | C
          | (τ -> τ) | list τ | option τ
      L ::= type C(x : τ, ...) = member N : τ = e ...
    v}

    Shapes inside the dynamic data operations use the
    {!Fsdata_core.Shape_parser} notation. Application is left-associative
    and binds tighter than [::], which binds tighter than [=]; member
    access binds tightest. *)

exception Parse_error of { position : int; message : string }

val parse_expr : string -> Syntax.expr
(** @raise Parse_error on malformed input. *)

val parse_expr_result : string -> (Syntax.expr, string) result

val parse_ty : string -> Syntax.ty
val parse_ty_result : string -> (Syntax.ty, string) result

val parse_classes : string -> Syntax.class_env
(** Parse a sequence of class definitions. *)

val parse_classes_result : string -> (Syntax.class_env, string) result
