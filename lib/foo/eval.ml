open Syntax
module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity

type outcome =
  | Value of expr
  | Exn
  | Stuck of { redex : expr; reason : string }
  | Timeout

let pp_outcome ppf = function
  | Value v -> Fmt.pf ppf "value %a" pp_expr v
  | Exn -> Fmt.string ppf "exn"
  | Stuck { redex; reason } -> Fmt.pf ppf "stuck (%s) at %a" reason pp_expr redex
  | Timeout -> Fmt.string ppf "timeout"

let stuck redex reason = `Done (Stuck { redex; reason })

(* Structural equality of values for (eq1)/(eq2). Type annotations on
   None/nil are ignored: well-typed comparisons only ever relate values of
   the same type. *)
let rec value_equal v1 v2 =
  match (v1, v2) with
  | EData d1, EData d2 -> Dv.equal d1 d2
  | EDate d1, EDate d2 -> Fsdata_data.Date.equal d1 d2
  | ENone _, ENone _ -> true
  | ESome a, ESome b -> value_equal a b
  | ENil _, ENil _ -> true
  | ECons (a1, a2), ECons (b1, b2) -> value_equal a1 b1 && value_equal a2 b2
  | ENew (c1, args1), ENew (c2, args2) ->
      String.equal c1 c2
      && List.length args1 = List.length args2
      && List.for_all2 value_equal args1 args2
  | ELam _, ELam _ -> v1 = v2
  | _ -> false

(* The result type of a closed conversion continuation, used to annotate
   None/nil produced by convNull/convElements/convSelect on empty data.
   Provider-generated continuations are closed well-typed lambdas, so this
   always succeeds on the provided code paths. *)
let continuation_result_ty classes f =
  match Typecheck.synth classes [] f with
  | Ok (TArrow (TData, t)) -> Some t
  | _ -> None

let rec step classes e : [ `Step of expr | `Done of outcome ] =
  if is_value e then `Done (Value e)
  else
    match e with
    | EExn -> `Done Exn
    | EData _ | EDate _ | ELam _ | ENone _ | ENil _ ->
        assert false (* values, handled above *)
    | EVar x -> stuck e (Printf.sprintf "unbound variable %s" x)
    | EApp (e1, e2) ->
        frame classes e1 (fun e1' -> EApp (e1', e2)) @@ fun () ->
        frame classes e2 (fun e2' -> EApp (e1, e2')) @@ fun () ->
        (match e1 with
        | ELam (x, _, body) -> `Step (subst x e2 body)
        | _ -> stuck e "application of a non-function value")
    | EMember (e1, n) ->
        frame classes e1 (fun e1' -> EMember (e1', n)) @@ fun () ->
        (match e1 with
        | ENew (c, args) -> (
            match find_class classes c with
            | None -> stuck e (Printf.sprintf "unknown class %s" c)
            | Some cls -> (
                match find_member cls n with
                | None -> stuck e (Printf.sprintf "class %s has no member %s" c n)
                | Some m ->
                    if List.length args <> List.length cls.ctor_params then
                      stuck e "constructor arity mismatch"
                    else
                      `Step
                        (List.fold_left2
                           (fun body (x, _) arg -> subst x arg body)
                           m.member_body cls.ctor_params args)))
        | _ -> stuck e "member access on a non-object value")
    | ENew (c, args) ->
        frame_list classes args (fun args' -> ENew (c, args')) @@ fun () ->
        `Done (Value e)
    | ESome e1 -> frame classes e1 (fun e1' -> ESome e1') @@ fun () -> `Done (Value e)
    | EMatchOption (e0, x, e1, e2) ->
        frame classes e0 (fun e0' -> EMatchOption (e0', x, e1, e2)) @@ fun () ->
        (match e0 with
        | ENone _ -> `Step e2
        | ESome v -> `Step (subst x v e1)
        | _ -> stuck e "matching a non-option value against option patterns")
    | EEq (e1, e2) ->
        frame classes e1 (fun e1' -> EEq (e1', e2)) @@ fun () ->
        frame classes e2 (fun e2' -> EEq (e1, e2')) @@ fun () ->
        `Step (bool_ (value_equal e1 e2))
    | EIf (e1, e2, e3) ->
        frame classes e1 (fun e1' -> EIf (e1', e2, e3)) @@ fun () ->
        (match e1 with
        | EData (Dv.Bool true) -> `Step e2
        | EData (Dv.Bool false) -> `Step e3
        | _ -> stuck e "if on a non-boolean value")
    | ECons (e1, e2) ->
        frame classes e1 (fun e1' -> ECons (e1', e2)) @@ fun () ->
        frame classes e2 (fun e2' -> ECons (e1, e2')) @@ fun () ->
        `Done (Value e)
    | EMatchList (e0, x1, x2, e1, e2) ->
        frame classes e0 (fun e0' -> EMatchList (e0', x1, x2, e1, e2))
        @@ fun () ->
        (match e0 with
        | ENil _ -> `Step e2
        | ECons (v1, v2) -> `Step (subst x1 v1 (subst x2 v2 e1))
        | _ -> stuck e "matching a non-list value against list patterns")
    | EOp op -> step_op classes e op

and step_op classes e op =
  match op with
  | ConvFloat (s, e1) ->
      frame classes e1 (fun e1' -> EOp (ConvFloat (s, e1'))) @@ fun () ->
      (match e1 with
      | EData (Dv.Int i) -> `Step (float_ (float_of_int i))
      | EData (Dv.Float _) -> `Step e1
      | _ -> stuck e "convFloat on a non-numeric value")
  | ConvPrim (s, e1) ->
      frame classes e1 (fun e1' -> EOp (ConvPrim (s, e1'))) @@ fun () ->
      (match (s, e1) with
      | Shape.Primitive Shape.Int, EData (Dv.Int _)
      | Shape.Primitive Shape.String, EData (Dv.String _)
      | Shape.Primitive Shape.Bool, EData (Dv.Bool _) ->
          `Step e1
      | _ -> stuck e "convPrim on a value of the wrong shape")
  | ConvField (nu, nu', e1, e2) ->
      frame classes e1 (fun e1' -> EOp (ConvField (nu, nu', e1', e2)))
      @@ fun () ->
      frame classes e2 (fun e2' -> EOp (ConvField (nu, nu', e1, e2')))
      @@ fun () ->
      (match e1 with
      | EData (Dv.Record (name, fields)) when String.equal name nu -> (
          match List.assoc_opt nu' fields with
          | Some d -> `Step (EApp (e2, EData d))
          | None -> `Step (EApp (e2, EData Dv.Null)))
      | _ -> stuck e "convField on a value that is not a record of the expected name")
  | ConvNull (e1, e2) ->
      frame classes e1 (fun e1' -> EOp (ConvNull (e1', e2))) @@ fun () ->
      frame classes e2 (fun e2' -> EOp (ConvNull (e1, e2'))) @@ fun () ->
      (match e1 with
      | EData Dv.Null -> (
          match continuation_result_ty classes e2 with
          | Some t -> `Step (ENone t)
          | None -> stuck e "convNull: cannot type the continuation")
      | EData _ -> `Step (ESome (EApp (e2, e1)))
      | _ -> stuck e "convNull on a non-data value")
  | ConvElements (e1, e2) ->
      frame classes e1 (fun e1' -> EOp (ConvElements (e1', e2))) @@ fun () ->
      frame classes e2 (fun e2' -> EOp (ConvElements (e1, e2'))) @@ fun () ->
      (match e1 with
      | EData (Dv.List _ | Dv.Null) -> (
          let ds = match e1 with EData (Dv.List ds) -> ds | _ -> [] in
          match continuation_result_ty classes e2 with
          | Some t ->
              `Step
                (List.fold_right
                   (fun d acc -> ECons (EApp (e2, EData d), acc))
                   ds (ENil t))
          | None -> stuck e "convElements: cannot type the continuation")
      | _ -> stuck e "convElements on a value that is not a collection or null")
  | HasShape (s, e1) ->
      frame classes e1 (fun e1' -> EOp (HasShape (s, e1'))) @@ fun () ->
      (match e1 with
      | EData d -> `Step (bool_ (Fsdata_core.Shape_check.has_shape s d))
      | _ -> stuck e "hasShape on a non-data value")
  | ConvBool e1 ->
      frame classes e1 (fun e1' -> EOp (ConvBool e1')) @@ fun () ->
      (match e1 with
      | EData (Dv.Bool _) -> `Step e1
      | EData (Dv.Int 0) -> `Step (bool_ false)
      | EData (Dv.Int 1) -> `Step (bool_ true)
      | _ -> stuck e "convBool on a value that is not a boolean or 0/1")
  | ConvDate e1 ->
      frame classes e1 (fun e1' -> EOp (ConvDate e1')) @@ fun () ->
      (match e1 with
      | EData (Dv.String s) -> (
          match Fsdata_data.Date.of_string s with
          | Some d -> `Step (EDate d)
          | None -> stuck e "convDate on a string that is not a date")
      | _ -> stuck e "convDate on a non-string value")
  | ConvSelect (s, mult, e1, e2) ->
      frame classes e1 (fun e1' -> EOp (ConvSelect (s, mult, e1', e2)))
      @@ fun () ->
      frame classes e2 (fun e2' -> EOp (ConvSelect (s, mult, e1, e2')))
      @@ fun () ->
      (match e1 with
      | EData (Dv.List _ | Dv.Null) -> (
          let ds = match e1 with EData (Dv.List ds) -> ds | _ -> [] in
          let matches =
            List.filter (fun d -> Fsdata_core.Shape_check.has_shape s d) ds
          in
          match mult with
          | Mult.Single -> (
              match matches with
              | d :: _ -> `Step (EApp (e2, EData d))
              | [] ->
                  stuck e "convSelect: no element of the required shape")
          | Mult.Optional_single -> (
              match matches with
              | d :: _ -> `Step (ESome (EApp (e2, EData d)))
              | [] -> (
                  match continuation_result_ty classes e2 with
                  | Some t -> `Step (ENone t)
                  | None -> stuck e "convSelect: cannot type the continuation"))
          | Mult.Multiple -> (
              match continuation_result_ty classes e2 with
              | Some t ->
                  `Step
                    (List.fold_right
                       (fun d acc -> ECons (EApp (e2, EData d), acc))
                       matches (ENil t))
              | None -> stuck e "convSelect: cannot type the continuation"))
      | _ -> stuck e "convSelect on a value that is not a collection or null")
  | IntOfFloat e1 ->
      frame classes e1 (fun e1' -> EOp (IntOfFloat e1')) @@ fun () ->
      (match e1 with
      | EData (Dv.Float f) -> `Step (int_ (int_of_float f))
      | EData (Dv.Int _) -> `Step e1
      | _ -> stuck e "int(e) on a non-numeric value")

and frame classes sub rebuild k =
  if is_value sub then k ()
  else
    match step classes sub with
    | `Step sub' -> `Step (rebuild sub')
    | `Done (Value _) -> k ()
    | `Done other -> `Done other

and frame_list classes subs rebuild k =
  let rec split acc = function
    | [] -> k ()
    | sub :: rest when is_value sub -> split (sub :: acc) rest
    | sub :: rest -> (
        match step classes sub with
        | `Step sub' -> `Step (rebuild (List.rev_append acc (sub' :: rest)))
        | `Done (Value _) -> split (sub :: acc) rest
        | `Done other -> `Done other)
  in
  split [] subs

let eval ?(fuel = 1_000_000) classes e =
  let rec loop fuel e =
    if fuel <= 0 then Timeout
    else
      match step classes e with
      | `Step e' -> loop (fuel - 1) e'
      | `Done outcome -> outcome
  in
  loop fuel e

let eval_value ?fuel classes e =
  match eval ?fuel classes e with
  | Value v -> Ok v
  | Exn -> Error "the program raised exn"
  | Stuck { reason; redex } ->
      Error (Fmt.str "stuck: %s at %a" reason pp_expr redex)
  | Timeout -> Error "evaluation ran out of fuel"

let trace ?(fuel = 10_000) classes e =
  let rec loop fuel acc e =
    if fuel <= 0 then (List.rev acc, Timeout)
    else
      match step classes e with
      | `Step e' -> loop (fuel - 1) (e' :: acc) e'
      | `Done outcome -> (List.rev acc, outcome)
  in
  loop fuel [ e ] e
