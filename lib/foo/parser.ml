open Syntax
module Dv = Fsdata_data.Data_value

exception Parse_error of { position : int; message : string }

type state = { src : string; len : int; mutable pos : int }

let error st fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error { position = st.pos; message }))
    fmt

(* unicode symbols used by the printers *)
let sym_lambda = "\xce\xbb" (* λ *)
let sym_arrow = "\xe2\x86\x92" (* → *)
let sym_mapsto = "\xe2\x86\xa6" (* ↦ *)

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.src st.pos n = s

let skip st s = st.pos <- st.pos + String.length s

let skip_ws st =
  while
    st.pos < st.len
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let eat st s =
  skip_ws st;
  if looking_at st s then begin
    skip st s;
    true
  end
  else false

let expect st s =
  skip_ws st;
  if looking_at st s then skip st s else error st "expected %S" s

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 0x80

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '%' || c = '\''

(* identifiers may start with a multi-byte char (the bullet of • field
   names) but must not swallow the unicode symbols *)
let symbol_at st =
  looking_at st sym_lambda || looking_at st sym_arrow || looking_at st sym_mapsto
  || looking_at st "\xe2\x9f\xa8" (* ⟨ *)
  || looking_at st "\xe2\x9f\xa9"
  || looking_at st "\xe2\x8a\xa5"

let peek_ident st =
  skip_ws st;
  if st.pos >= st.len then None
  else if symbol_at st then None
  else if not (is_ident_start st.src.[st.pos]) then None
  else begin
    let start = st.pos in
    let p = ref st.pos in
    while
      !p < st.len
      && (let st' = { st with pos = !p } in
          not (symbol_at st'))
      && is_ident_char st.src.[!p]
    do
      incr p
    done;
    Some (String.sub st.src start (!p - start), !p)
  end

let ident st =
  match peek_ident st with
  | Some (name, p) ->
      st.pos <- p;
      name
  | None -> error st "expected an identifier"

(* ----- numbers and strings (the Data_value/Json lexical forms) ----- *)

let parse_number st =
  skip_ws st;
  let start = st.pos in
  if st.pos < st.len && st.src.[st.pos] = '-' then st.pos <- st.pos + 1;
  let digits () =
    while st.pos < st.len && st.src.[st.pos] >= '0' && st.src.[st.pos] <= '9' do
      st.pos <- st.pos + 1
    done
  in
  digits ();
  let is_float = ref false in
  if st.pos < st.len && st.src.[st.pos] = '.' then begin
    is_float := true;
    st.pos <- st.pos + 1;
    digits ()
  end;
  if st.pos < st.len && (st.src.[st.pos] = 'e' || st.src.[st.pos] = 'E') then begin
    is_float := true;
    st.pos <- st.pos + 1;
    if st.pos < st.len && (st.src.[st.pos] = '+' || st.src.[st.pos] = '-') then
      st.pos <- st.pos + 1;
    digits ()
  end;
  let text = String.sub st.src start (st.pos - start) in
  if text = "" || text = "-" then error st "expected a number";
  if !is_float then Dv.Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Dv.Int i
    | None -> Dv.Float (float_of_string text)

let parse_ocaml_string st =
  (* OCaml %S escaping, as printed by Data_value.pp *)
  expect st "\"";
  let buf = Buffer.create 16 in
  let rec loop () =
    if st.pos >= st.len then error st "unterminated string literal"
    else
      match st.src.[st.pos] with
      | '"' -> st.pos <- st.pos + 1
      | '\\' ->
          st.pos <- st.pos + 1;
          if st.pos >= st.len then error st "unterminated escape";
          (match st.src.[st.pos] with
          | 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1
          | 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1
          | 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1
          | 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1
          | '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1
          | '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1
          | '\'' -> Buffer.add_char buf '\''; st.pos <- st.pos + 1
          | '0' .. '9' ->
              if st.pos + 2 < st.len then begin
                let code =
                  int_of_string (String.sub st.src st.pos 3)
                in
                Buffer.add_char buf (Char.chr code);
                st.pos <- st.pos + 3
              end
              else error st "bad decimal escape"
          | c -> error st "unknown escape \\%c" c);
          loop ()
      | c ->
          Buffer.add_char buf c;
          st.pos <- st.pos + 1;
          loop ()
  in
  (try loop () with Invalid_argument _ -> error st "bad escape");
  Buffer.contents buf

(* ----- data values (the d grammar, as printed by Data_value.pp) ----- *)

let rec parse_data st : Dv.t =
  skip_ws st;
  if st.pos >= st.len then error st "expected a data value"
  else if looking_at st "\"" then Dv.String (parse_ocaml_string st)
  else if st.src.[st.pos] = '[' then begin
    skip st "[";
    skip_ws st;
    if eat st "]" then Dv.List []
    else begin
      let rec items acc =
        let d = parse_data st in
        if eat st ";" then items (d :: acc)
        else begin
          expect st "]";
          List.rev (d :: acc)
        end
      in
      Dv.List (items [])
    end
  end
  else if st.src.[st.pos] = '-' || (st.src.[st.pos] >= '0' && st.src.[st.pos] <= '9')
  then parse_number st
  else begin
    let name = ident st in
    match name with
    | "null" -> Dv.Null
    | "true" -> Dv.Bool true
    | "false" -> Dv.Bool false
    | _ -> parse_data_record st name
  end

and parse_data_record st name =
  expect st "{";
  skip_ws st;
  if eat st "}" then Dv.Record (name, [])
  else begin
    let rec fields acc =
      let f = ident st in
      skip_ws st;
      if looking_at st sym_mapsto then skip st sym_mapsto
      else if looking_at st "|->" then skip st "|->"
      else error st "expected %s in record literal" sym_mapsto;
      let d = parse_data st in
      if eat st "," then fields ((f, d) :: acc)
      else begin
        expect st "}";
        List.rev ((f, d) :: acc)
      end
    in
    Dv.Record (name, fields [])
  end

(* ----- types ----- *)

let rec parse_ty_expr st : ty =
  let left = parse_ty_atom st in
  skip_ws st;
  if eat st "->" then TArrow (left, parse_ty_expr st)
  else if looking_at st sym_arrow then begin
    skip st sym_arrow;
    TArrow (left, parse_ty_expr st)
  end
  else left

and parse_ty_atom st : ty =
  skip_ws st;
  if eat st "(" then begin
    let t = parse_ty_expr st in
    expect st ")";
    t
  end
  else
    let name = ident st in
    match name with
    | "int" -> TInt
    | "float" -> TFloat
    | "bool" -> TBool
    | "string" -> TString
    | "date" -> TDate
    | "Data" -> TData
    | "list" -> TList (parse_ty_atom st)
    | "option" -> TOption (parse_ty_atom st)
    | c -> TClass c

(* ----- shapes inside op arguments -----

   A shape argument extends to the comma (or closing paren) at bracket
   depth zero; the substring is handed to Shape_parser. *)

let parse_shape_arg st : Fsdata_core.Shape.t =
  skip_ws st;
  let start = st.pos in
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    if st.pos >= st.len then error st "unterminated shape argument"
    else if looking_at st "\xe2\x9f\xa8" then begin incr depth; skip st "\xe2\x9f\xa8" end
    else if looking_at st "\xe2\x9f\xa9" then begin decr depth; skip st "\xe2\x9f\xa9" end
    else
      match st.src.[st.pos] with
      | '[' | '{' | '(' | '<' ->
          incr depth;
          st.pos <- st.pos + 1
      | ']' | '}' | ')' | '>' ->
          if !depth = 0 then continue := false
          else begin
            decr depth;
            st.pos <- st.pos + 1
          end
      | ',' when !depth = 0 -> continue := false
      | _ -> st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  match Fsdata_core.Shape_parser.parse_result text with
  | Ok s -> s
  | Error e -> error st "bad shape argument: %s" e

let parse_mult st : Fsdata_core.Multiplicity.t =
  skip_ws st;
  if eat st "1?" then Fsdata_core.Multiplicity.Optional_single
  else if eat st "1" then Fsdata_core.Multiplicity.Single
  else if eat st "*" then Fsdata_core.Multiplicity.Multiple
  else error st "expected a multiplicity"

(* ----- expressions ----- *)

let rec parse_expr st : expr =
  skip_ws st;
  if looking_at st sym_lambda || looking_at st "\\" then parse_lambda st
  else if looking_at st "match " || looking_at st "match\n" then parse_match st
  else if looking_at st "if " || looking_at st "if\n" then parse_if st
  else parse_eq st

and parse_lambda st =
  if looking_at st sym_lambda then skip st sym_lambda else expect st "\\";
  (* allow an optional "(" wrapping printed lambdas: the printer wraps the
     whole lambda, which parse_atom handles; here the symbol is consumed *)
  let x = ident st in
  expect st ":";
  let ty = parse_ty_expr st in
  expect st ".";
  let body = parse_expr st in
  ELam (x, ty, body)

and parse_match st =
  expect st "match";
  let scrutinee = parse_expr st in
  expect st "with";
  ignore (eat st "|");
  skip_ws st;
  if looking_at st "Some" then begin
    expect st "Some";
    expect st "(";
    let x = ident st in
    expect st ")";
    arrow st;
    let e1 = parse_expr st in
    expect st "|";
    expect st "None";
    arrow st;
    let e2 = parse_expr st in
    EMatchOption (scrutinee, x, e1, e2)
  end
  else begin
    let x1 = ident st in
    expect st "::";
    let x2 = ident st in
    arrow st;
    let e1 = parse_expr st in
    expect st "|";
    expect st "nil";
    arrow st;
    let e2 = parse_expr st in
    EMatchList (scrutinee, x1, x2, e1, e2)
  end

and arrow st =
  skip_ws st;
  if looking_at st sym_arrow then skip st sym_arrow
  else if looking_at st "->" then skip st "->"
  else error st "expected an arrow"

and parse_if st =
  expect st "if";
  let c = parse_expr st in
  expect st "then";
  let t = parse_expr st in
  expect st "else";
  let e = parse_expr st in
  EIf (c, t, e)

and parse_eq st =
  let left = parse_cons st in
  skip_ws st;
  (* '=' but not '==' and not inside '↦' contexts *)
  if st.pos < st.len && st.src.[st.pos] = '=' then begin
    st.pos <- st.pos + 1;
    EEq (left, parse_cons st)
  end
  else left

and parse_cons st =
  let left = parse_app st in
  skip_ws st;
  if looking_at st "::" then begin
    skip st "::";
    ECons (left, parse_cons st)
  end
  else left

and parse_app st =
  let head = parse_postfix st in
  let rec loop acc =
    skip_ws st;
    if st.pos >= st.len then acc
    else if starts_atom st then loop (EApp (acc, parse_postfix st))
    else acc
  in
  loop head

and starts_atom st =
  skip_ws st;
  if st.pos >= st.len then false
  else if
    looking_at st sym_arrow || looking_at st "->" || looking_at st "::"
    || looking_at st sym_mapsto
  then false
  else
    match st.src.[st.pos] with
    | '(' | '[' | '"' -> true
    | '-' | '0' .. '9' -> true
    | c when is_ident_start c || looking_at st sym_lambda -> (
        (* keywords that terminate an application *)
        match peek_ident st with
        | Some (("then" | "else" | "with" | "member" | "type" | "nil" | "None"), _)
          -> (
            match peek_ident st with
            | Some (("nil" | "None"), _) -> true
            | _ -> false)
        | Some _ -> true
        | None -> looking_at st sym_lambda)
    | _ -> false

and parse_postfix st =
  let atom = parse_atom st in
  let rec loop acc =
    skip_ws st;
    if st.pos < st.len && st.src.[st.pos] = '.' then begin
      st.pos <- st.pos + 1;
      let n = ident st in
      loop (EMember (acc, n))
    end
    else acc
  in
  loop atom

and parse_args st =
  expect st "(";
  skip_ws st;
  if eat st ")" then []
  else begin
    let rec args acc =
      let e = parse_expr st in
      if eat st "," then args (e :: acc)
      else begin
        expect st ")";
        List.rev (e :: acc)
      end
    in
    args []
  end

and parse_atom st : expr =
  skip_ws st;
  if st.pos >= st.len then error st "expected an expression"
  else if looking_at st sym_lambda || looking_at st "\\" then parse_lambda st
  else if looking_at st "\"" then EData (Dv.String (parse_ocaml_string st))
  else if st.src.[st.pos] = '(' then begin
    skip st "(";
    let e = parse_expr st in
    expect st ")";
    e
  end
  else if st.src.[st.pos] = '[' then EData (parse_data st)
  else if st.src.[st.pos] = '-' || (st.src.[st.pos] >= '0' && st.src.[st.pos] <= '9')
  then EData (parse_number st)
  else begin
    let name = ident st in
    match name with
    | "null" -> EData Dv.Null
    | "true" -> EData (Dv.Bool true)
    | "false" -> EData (Dv.Bool false)
    | "None" -> ENone (TOption TData |> fun _ -> TData)
    | "nil" -> ENil TData
    | "exn" -> EExn
    | "Some" ->
        expect st "(";
        let e = parse_expr st in
        expect st ")";
        ESome e
    | "new" ->
        let c = ident st in
        ENew (c, parse_args st)
    | "int" when (skip_ws st; looking_at st "(") ->
        expect st "(";
        let e = parse_expr st in
        expect st ")";
        EOp (IntOfFloat e)
    | "date" when (skip_ws st; looking_at st "(") ->
        expect st "(";
        skip_ws st;
        let start = st.pos in
        while st.pos < st.len && st.src.[st.pos] <> ')' do
          st.pos <- st.pos + 1
        done;
        let text = String.sub st.src start (st.pos - start) in
        expect st ")";
        (match Fsdata_data.Date.of_string text with
        | Some d -> EDate d
        | None -> error st "invalid date literal %S" text)
    | "convFloat" -> op2_shape st (fun s e -> ConvFloat (s, e))
    | "convPrim" -> op2_shape st (fun s e -> ConvPrim (s, e))
    | "hasShape" -> op2_shape st (fun s e -> HasShape (s, e))
    | "convBool" ->
        expect st "(";
        let e = parse_expr st in
        expect st ")";
        EOp (ConvBool e)
    | "convDate" ->
        expect st "(";
        let e = parse_expr st in
        expect st ")";
        EOp (ConvDate e)
    | "convNull" ->
        expect st "(";
        let e1 = parse_expr st in
        expect st ",";
        let e2 = parse_expr st in
        expect st ")";
        EOp (ConvNull (e1, e2))
    | "convElements" ->
        expect st "(";
        let e1 = parse_expr st in
        expect st ",";
        let e2 = parse_expr st in
        expect st ")";
        EOp (ConvElements (e1, e2))
    | "convField" ->
        expect st "(";
        let n1 = ident st in
        expect st ",";
        let n2 = ident st in
        expect st ",";
        let e1 = parse_expr st in
        expect st ",";
        let e2 = parse_expr st in
        expect st ")";
        EOp (ConvField (n1, n2, e1, e2))
    | "convSelect" ->
        expect st "(";
        let s = parse_shape_arg st in
        expect st ",";
        let m = parse_mult st in
        expect st ",";
        let e1 = parse_expr st in
        expect st ",";
        let e2 = parse_expr st in
        expect st ")";
        EOp (ConvSelect (s, m, e1, e2))
    | _ ->
        (* a record data literal, or a variable *)
        skip_ws st;
        if st.pos < st.len && st.src.[st.pos] = '{' then
          EData (parse_data_record st name)
        else EVar name
  end

and op2_shape st build =
  expect st "(";
  let s = parse_shape_arg st in
  expect st ",";
  let e = parse_expr st in
  expect st ")";
  EOp (build s e)

(* ----- classes ----- *)

let parse_class st : class_def =
  expect st "type";
  let class_name = ident st in
  expect st "(";
  skip_ws st;
  let ctor_params =
    if eat st ")" then []
    else begin
      let rec params acc =
        let x = ident st in
        expect st ":";
        let t = parse_ty_expr st in
        if eat st "," then params ((x, t) :: acc)
        else begin
          expect st ")";
          List.rev ((x, t) :: acc)
        end
      in
      params []
    end
  in
  expect st "=";
  let rec members acc =
    skip_ws st;
    if looking_at st "member" then begin
      skip st "member";
      let member_name = ident st in
      expect st ":";
      let member_ty = parse_ty_expr st in
      expect st "=";
      let member_body = parse_expr st in
      members ({ member_name; member_ty; member_body } :: acc)
    end
    else List.rev acc
  in
  { class_name; ctor_params; members = members [] }

let wrap parse to_msg src =
  let st = { src; len = String.length src; pos = 0 } in
  let v = parse st in
  skip_ws st;
  if st.pos < st.len then error st "trailing input";
  ignore to_msg;
  v

let parse_expr src = wrap parse_expr () src
let parse_ty src = wrap parse_ty_expr () src

let parse_classes src =
  let st = { src; len = String.length src; pos = 0 } in
  let rec loop acc =
    skip_ws st;
    if st.pos >= st.len then List.rev acc else loop (parse_class st :: acc)
  in
  loop []

let result_of f src =
  match f src with
  | v -> Ok v
  | exception Parse_error { position; message } ->
      Error (Printf.sprintf "parse error at offset %d: %s" position message)

let parse_expr_result src = result_of parse_expr src
let parse_ty_result src = result_of parse_ty src
let parse_classes_result src = result_of parse_classes src
