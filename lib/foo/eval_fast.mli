(** A big-step, environment-based evaluator for the Foo calculus.

    {!Eval} implements Figure 6 literally — substitution-based small-step
    reduction — which is the right artifact for the metatheory (traces,
    preservation checks) but pays a heavy cost per member access. This
    module is the production evaluator: closures and environments, no
    substitution, big-step. It is observationally equivalent to {!Eval}
    on well-typed programs (property-tested in [test/test_eval_fast.ml]):
    both produce the same value, both raise/propagate [exn] the same way,
    and both get stuck on the same inputs.

    The benchmark group [access] compares the two (and the generated
    code), quantifying the cost of running the formal semantics directly. *)

type value =
  | VData of Fsdata_data.Data_value.t
  | VDate of Fsdata_data.Date.t
  | VNone
  | VSome of value
  | VNil
  | VCons of value * value
  | VObj of string * value list  (** a constructed object [new C(v...)] *)
  | VClosure of string * Syntax.expr * env  (** λ with its environment *)

and env = (string * value) list

exception Foo_exn
(** The [exn] outcome of Remark 1. *)

exception Stuck of string
(** A stuck state — a dynamic data operation applied to data of the wrong
    shape. *)

val eval : Syntax.class_env -> env -> Syntax.expr -> value
(** @raise Foo_exn / Stuck accordingly. Non-terminating programs do not
    terminate (the calculus has no recursion, so well-typed programs
    cannot loop). *)

val member : Syntax.class_env -> value -> string -> value
(** Evaluate a member of a constructed object. *)

val of_expr_value : Syntax.expr -> value option
(** Convert a closed value expression (as produced by the small-step
    evaluator) to a big-step value; [None] if the expression is not a
    value. Lambdas close over the empty environment. *)

val equal_value : value -> value -> bool
(** Structural equality; closures compare by code. *)

val pp : Format.formatter -> value -> unit
