(** The Foo calculus (Figure 5) — a simply-typed subset of F# with
    classes, options, lists and the dynamic data operations of the F# Data
    runtime.

    {v
      tau = int | float | bool | string | C | Data
          | tau1 -> tau2 | list tau | option tau
      L   = type C(x:tau) = M ...
      M   = member N : tau = e
      v   = d | None | Some v | new C(v) | v1 :: v2 | nil | lam x.e
      op  = convFloat | convPrim | convField | convNull
          | convElements | hasShape
    v}

    Extensions beyond Figure 5, each motivated by the paper's text:

    - [Exn] and [IntOfFloat] — Section 6.5 (Remark 1) assumes the calculus
      "also contains an exn value ... and a conversion function int";
    - [TDate], [EDate] and [ConvDate] — the date primitive of Section 6.2;
    - [ConvBool] — the bit shape of Section 6.2 provides booleans from 0/1
      values;
    - [ConvSelect] — the tag-selecting accessor for heterogeneous
      collections of Section 6.4 ("analogous to the handling of labelled
      top types").

    Primitive data values double as Foo primitive values: the Foo integer
    [42] is [EData (Int 42)], exactly as in the paper where [v = d | ...]
    and [i : int] as well as [i : Data]. *)

type ty =
  | TInt
  | TFloat
  | TBool
  | TString
  | TDate
  | TClass of string
  | TData
  | TArrow of ty * ty
  | TList of ty
  | TOption of ty

type expr =
  | EData of Fsdata_data.Data_value.t  (** d — both data and primitive values *)
  | EDate of Fsdata_data.Date.t  (** a parsed date value (extension) *)
  | EVar of string
  | ELam of string * ty * expr  (** lam x:tau. e — argument annotated for type checking *)
  | EApp of expr * expr
  | EMember of expr * string  (** e.N *)
  | ENew of string * expr list  (** new C(e...) *)
  | ENone of ty  (** None, annotated with the element type *)
  | ESome of expr
  | EMatchOption of expr * string * expr * expr
      (** [match e with Some x -> e1 | None -> e2] *)
  | EEq of expr * expr
  | EIf of expr * expr * expr
  | ENil of ty  (** nil, annotated with the element type *)
  | ECons of expr * expr
  | EMatchList of expr * string * string * expr * expr
      (** [match e with x1 :: x2 -> e1 | nil -> e2] *)
  | EOp of op
  | EExn  (** a runtime exception that propagates through any context *)

and op =
  | ConvFloat of Fsdata_core.Shape.t * expr
  | ConvPrim of Fsdata_core.Shape.t * expr
      (** the shape must be one of int, string, bool *)
  | ConvField of string * string * expr * expr
      (** [ConvField (nu, nu', record, continuation)] *)
  | ConvNull of expr * expr
  | ConvElements of expr * expr
  | HasShape of Fsdata_core.Shape.t * expr
  | ConvBool of expr  (** bool from true/false/0/1 (bit support) *)
  | ConvDate of expr  (** date from a recognized date string *)
  | ConvSelect of Fsdata_core.Shape.t * Fsdata_core.Multiplicity.t * expr * expr
      (** [ConvSelect (shape, mult, collection, continuation)]: convert the
          elements of the collection that pass [hasShape shape] with the
          continuation; return them as a value, an option or a list
          according to the multiplicity *)
  | IntOfFloat of expr  (** Remark 1's [int(e)] coercion *)

type member_def = { member_name : string; member_ty : ty; member_body : expr }

type class_def = {
  class_name : string;
  ctor_params : (string * ty) list;
  members : member_def list;
}

type class_env = class_def list

val find_class : class_env -> string -> class_def option
val find_member : class_def -> string -> member_def option

val is_value : expr -> bool
(** The value grammar [v]: data, dates, None/Some v, nil/cons of values,
    fully applied constructors of values, and lambdas. [Exn] is not a
    value; it is a distinguished final outcome. *)

val subst : string -> expr -> expr -> expr
(** [subst x v e] is e[x <- v], capture-avoiding (binders are renamed when
    they would capture a free variable of [v]). *)

val free_vars : expr -> string list

(** Convenience constructors used by the provider and tests. *)

val int_ : int -> expr
val float_ : float -> expr
val bool_ : bool -> expr
val string_ : string -> expr
val null : expr
val lam : string -> ty -> expr -> expr
val ( @@@ ) : expr -> expr -> expr
(** Application. *)

val pp_ty : Format.formatter -> ty -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_class : Format.formatter -> class_def -> unit
val ty_to_string : ty -> string
val expr_to_string : expr -> string
val ty_equal : ty -> ty -> bool
