(** Cooperative cancellation for long-running ingestion drivers.

    A token is just a cheap polling function; drivers that loop over
    documents or rows call {!check} between units of work and abandon
    the run with {!Cancelled} once the token trips. The serve layer
    builds tokens from per-request deadlines ([Fsdata_serve.Deadline])
    so a slow or adversarial request is cut off mid-parse instead of
    pinning a worker; tests build them from plain flags.

    Tokens must be fast (they are polled per document) and must never
    raise themselves — all control flow goes through {!check}. *)

type t = unit -> bool
(** [true] once the computation should stop. Must be cheap and
    domain-safe: tokens are polled from ingestion loops that may run on
    any domain. *)

exception Cancelled
(** Raised by {!check}. Escapes the ingestion drivers as-is — callers
    that installed a token are expected to catch it (the serve layer
    maps it to a 408/504 response). *)

val never : t
(** The token that never trips: the default everywhere, costing one
    indirect call per poll. *)

val of_flag : bool Atomic.t -> t
(** Trips once the flag is set. *)

val check : t -> unit
(** [check c] raises {!Cancelled} iff [c ()]. *)
