(** XML parsing and the XML-to-data mapping of Section 6.2.

    The parser is a self-contained non-validating XML parser covering the
    subset needed for data interchange: elements, attributes, character
    data, CDATA sections, comments, processing instructions, an optional
    XML declaration and DOCTYPE, and the predefined plus numeric character
    entities. Namespaces are kept as literal prefixes in names (the paper's
    open-world discussion notes that foreign-namespace elements simply
    appear as unknown elements).

    The data mapping follows Section 6.2: an element becomes a record named
    after the element; each attribute becomes a field; the element body
    becomes a field named {!Data_value.body_field} (printed [•]) holding
    either the collection of child-element records, or the inferred
    primitive value of the text content, or nothing for an empty element.
    Text appearing in mixed content (next to child elements) is not exposed
    through the provided types (Section 6.3) and is dropped here. *)

type tree = {
  name : string;
  attributes : (string * string) list;
  children : node list;
}

and node = Element of tree | Text of string | Cdata of string

exception Parse_error of { line : int; column : int; message : string }
(** Thin compatibility wrapper: the parser reports faults as structured
    {!Diagnostic.t}s and converts them to this legacy exception at the
    public boundary. *)

val parse : string -> tree
(** Parse a complete document; returns the root element.
    @raise Parse_error on malformed input. *)

val parse_diag : string -> (tree, Diagnostic.t) result
(** Like {!parse} but returning the structured diagnostic. *)

val parse_result : string -> (tree, string) result

val to_data : ?convert_primitives:bool -> tree -> Data_value.t
(** Map an element tree to a data value. When [convert_primitives] is true
    (the default), attribute values and text bodies are converted with
    {!Primitive.to_value} so that e.g. [id="1"] becomes the integer [1] as
    in the paper's example
    [root {id ↦ 1, • ↦ [item {• ↦ "Hello!"}]}]. *)

val text_content : tree -> string
(** Concatenated character data of an element (entity-decoded), including
    CDATA, ignoring child markup. *)

val to_string : ?indent:int -> tree -> string
(** Serialize back to XML, escaping as needed. *)

val pp : Format.formatter -> tree -> unit
