(** Structured parse/ingestion diagnostics.

    Real-world corpora are messy — the paper's whole premise is that
    shapes are inferred from {e representative} samples precisely because
    documents deviate from any schema — so a production ingestion
    pipeline must be able to say exactly {e which} document broke,
    {e where}, and {e why}, and (under an error budget) keep going.

    This module is the one error currency shared by the [Json], [Xml]
    and [Csv] parsers and by the tolerant inference drivers in
    [Fsdata_core.Infer] / [Fsdata_core.Par_infer]. The three legacy
    per-format [Parse_error] exceptions still exist as thin compatibility
    wrappers around a diagnostic; new code should consume diagnostics. *)

type format = Json | Xml | Csv

type severity = Error | Warning

type t = {
  format : format;
  line : int;  (** 1-based line of the error; 0 when unknown *)
  column : int;  (** 1-based column of the error; 0 when unknown *)
  index : int option;
      (** 0-based global index of the offending document/sample within
          the corpus, when the error arose while ingesting a corpus *)
  message : string;
  severity : severity;
}

exception Parse_error of t
(** The exception the parsers raise internally. The per-format public
    entry points convert it to their legacy exception ([Json.Parse_error]
    etc.) so existing handlers keep working; the [*_diag] entry points
    and the tolerant drivers hand the diagnostic over directly. *)

val make :
  ?index:int -> ?severity:severity -> format:format -> line:int -> column:int
  -> string -> t

val error : format:format -> line:int -> column:int
  -> ('a, unit, string, 'b) format4 -> 'a
(** [error ~format ~line ~column fmt ...] raises {!Parse_error} with the
    formatted message. *)

val with_index : int -> t -> t
(** Attribute the diagnostic to a global sample index. *)

val format_name : format -> string
(** ["json"], ["xml"] or ["csv"]. *)

val format_label : format -> string
(** ["JSON"], ["XML"] or ["CSV"] — the spelling the legacy error
    messages use. *)

val severity_name : severity -> string

val to_string : t -> string
(** The legacy one-line rendering, e.g.
    ["JSON parse error at line 3, column 10: unterminated string"]. A
    known sample index is appended as [" (document 7)"]. *)

val message_of : t -> string
(** {!to_string} without the index suffix — byte-identical to what the
    strict pipeline printed before diagnostics existed. *)

val to_json : t -> Data_value.t
(** A machine-readable rendering (a record with [format], [index],
    [line], [column], [severity], [message] fields) for quarantine
    reports. *)

val pp : Format.formatter -> t -> unit

(** {1 Error budgets}

    How many malformed samples an ingestion run may quarantine before it
    fails as a whole. [Strict] (the default everywhere) refuses the
    first fault, exactly as the pre-diagnostic pipeline did. *)

type budget =
  | Strict  (** fail on the first malformed sample (the default) *)
  | Count of int  (** tolerate up to N malformed samples *)
  | Percent of float  (** tolerate up to N% of the corpus, 0 <= N <= 100 *)

val budget_of_string : string -> (budget, string) result
(** ["0"] is [Strict]; ["N"] is [Count N]; ["N%"] is [Percent N]. *)

val budget_to_string : budget -> string

val allows : budget -> errors:int -> total:int -> bool
(** Is [errors] quarantined samples out of [total] seen within budget?
    [Percent p] allows [errors <= p/100 * total]. *)
