type table = { headers : string list; rows : string list list }

exception Parse_error of { line : int; message : string }

(* Faults are reported as structured {!Diagnostic.t}s carrying both the
   line and the column (historically CSV errors carried only a line);
   the legacy exception above is the thin compatibility wrapper the
   public entry points convert to. *)
let reraise_legacy (d : Diagnostic.t) =
  raise (Parse_error { line = d.line; message = d.message })

let error ~line ~column fmt =
  Diagnostic.error ~format:Diagnostic.Csv ~line ~column fmt

(* A cell together with the stream position of its first character, so
   later structural errors (arity mismatches) can point at the offending
   cell even when earlier cells contained embedded newlines. *)
type cell = { cline : int; ccol : int; text : string }

(* Split the input into rows of positioned cells, honouring RFC 4180
   quoting. Row and cell line numbers are exact: quoted cells may span
   lines and the bookkeeping follows them. *)
let split_rows ~separator src =
  let len = String.length src in
  let rows = ref [] in
  let cells = ref [] in
  let buf = Buffer.create 16 in
  let line = ref 1 in
  let bol = ref 0 in
  let pos = ref 0 in
  let row_nonempty = ref false in
  let cell_line = ref 1 in
  let cell_col = ref 1 in
  let mark_cell_start () =
    cell_line := !line;
    cell_col := !pos - !bol + 1
  in
  let flush_cell () =
    cells := { cline = !cell_line; ccol = !cell_col; text = Buffer.contents buf } :: !cells;
    Buffer.clear buf
  in
  let flush_row () =
    flush_cell ();
    (* A completely empty line is skipped rather than read as a row with a
       single empty cell. *)
    (match !cells with
    | [ { text = ""; _ } ] when not !row_nonempty -> ()
    | cs -> rows := List.rev cs :: !rows);
    cells := [];
    row_nonempty := false
  in
  while !pos < len do
    let c = src.[!pos] in
    if c = '"' then begin
      row_nonempty := true;
      (* remember where the quote opened: that is where an unterminated
         quoted cell goes wrong, not the end of the input *)
      let qline = !line and qcol = !pos - !bol + 1 in
      incr pos;
      let closed = ref false in
      while not !closed do
        if !pos >= len then error ~line:qline ~column:qcol "unterminated quoted cell"
        else begin
          let c = src.[!pos] in
          if c = '"' then
            if !pos + 1 < len && src.[!pos + 1] = '"' then begin
              Buffer.add_char buf '"';
              pos := !pos + 2
            end
            else begin
              closed := true;
              incr pos
            end
          else begin
            if c = '\n' then begin
              incr line;
              bol := !pos + 1
            end;
            Buffer.add_char buf c;
            incr pos
          end
        end
      done
    end
    else if c = separator then begin
      row_nonempty := true;
      flush_cell ();
      incr pos;
      mark_cell_start ()
    end
    else if c = '\r' && !pos + 1 < len && src.[!pos + 1] = '\n' then begin
      flush_row ();
      incr line;
      pos := !pos + 2;
      bol := !pos;
      mark_cell_start ()
    end
    else if c = '\n' || c = '\r' then begin
      flush_row ();
      incr line;
      incr pos;
      bol := !pos;
      mark_cell_start ()
    end
    else begin
      row_nonempty := true;
      Buffer.add_char buf c;
      incr pos
    end
  done;
  if Buffer.length buf > 0 || !cells <> [] then flush_row ();
  List.rev !rows

let default_header i = Printf.sprintf "Column%d" (i + 1)

let cell_texts row = List.map (fun c -> c.text) row

(* Shared frame: split, name the columns, then hand each positioned data
   row to [on_row], which normalizes it to the header width or deals
   with an arity fault its own way. *)
(* Observability: every public parse entry funnels through
   {!parse_rows}, so counting here covers strict, diagnostic and
   tolerant parsing alike (docs/OBSERVABILITY.md). *)
let m_docs = Fsdata_obs.Metrics.counter "parse.csv.documents"
let m_bytes = Fsdata_obs.Metrics.counter "parse.csv.bytes"
let m_ns = Fsdata_obs.Metrics.counter "parse.csv.ns"

let parse_rows ?(separator = ',') ?(has_headers = true) ~on_row src =
  Fsdata_obs.Trace.with_span "parse.csv" @@ fun () ->
  Fsdata_obs.Metrics.incr m_docs;
  Fsdata_obs.Metrics.add m_bytes (String.length src);
  Fsdata_obs.Metrics.time m_ns @@ fun () ->
  match split_rows ~separator src with
  | [] -> { headers = []; rows = [] }
  | first :: rest ->
      let headers, data_rows =
        if has_headers then
          ( List.mapi
              (fun i h ->
                if String.trim h.text = "" then default_header i
                else String.trim h.text)
              first,
            rest )
        else (List.mapi (fun i _ -> default_header i) first, first :: rest)
      in
      let width = List.length headers in
      let index = ref (-1) in
      let rows =
        List.filter_map
          (fun row ->
            incr index;
            let n = List.length row in
            if n > width then on_row ~index:!index ~width ~n row
            else if n < width then
              Some (cell_texts row @ List.init (width - n) (fun _ -> ""))
            else Some (cell_texts row))
          data_rows
      in
      { headers; rows }

let arity_error ~width ~n row =
  (* point at the first cell beyond the header width *)
  let offending = List.nth row width in
  error ~line:offending.cline ~column:offending.ccol
    "row has %d cells but the header has %d columns" n width

let parse ?separator ?has_headers src =
  try
    parse_rows ?separator ?has_headers
      ~on_row:(fun ~index:_ ~width ~n row -> arity_error ~width ~n row)
      src
  with Diagnostic.Parse_error d -> reraise_legacy d

let parse_diag ?separator ?has_headers src =
  match
    parse_rows ?separator ?has_headers
      ~on_row:(fun ~index:_ ~width ~n row -> arity_error ~width ~n row)
      src
  with
  | t -> Ok t
  | exception Diagnostic.Parse_error d -> Error d

let parse_result ?separator ?has_headers src =
  match parse_diag ?separator ?has_headers src with
  | Ok t -> Ok t
  | Error d -> Error (Diagnostic.message_of d)

let needs_quoting ~separator s =
  String.exists (fun c -> c = separator || c = '"' || c = '\n' || c = '\r') s

let quote_cell ~separator s =
  if needs_quoting ~separator s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let parse_tolerant ?separator ?has_headers ?(on_error = fun _ ~skipped:_ -> ())
    src =
  let sep = match separator with Some c -> c | None -> ',' in
  match
    parse_rows ?separator ?has_headers
      ~on_row:(fun ~index ~width ~n row ->
        (* a ragged row is a per-sample fault: quarantine it and keep
           the rest of the table *)
        let offending = List.nth row width in
        let d =
          Diagnostic.make ~index ~format:Diagnostic.Csv ~line:offending.cline
            ~column:offending.ccol
            (Printf.sprintf "row has %d cells but the header has %d columns" n
               width)
        in
        let skipped =
          String.concat (String.make 1 sep)
            (List.map (fun c -> quote_cell ~separator:sep c.text) row)
        in
        on_error d ~skipped;
        None)
      src
  with
  | t -> Ok t
  | exception Diagnostic.Parse_error d -> Error d

let row_to_data ?(convert_primitives = true) table row =
  (* Unquoted cells keep the whitespace around separators; conversion
     normalizes it away, matching how classification trims literals. *)
  let conv s =
    if convert_primitives then fst (Primitive.to_value (String.trim s))
    else Data_value.String s
  in
  Data_value.Record
    (Data_value.csv_record_name, List.map2 (fun h c -> (h, conv c)) table.headers row)

let to_data ?convert_primitives table =
  Data_value.List (List.map (row_to_data ?convert_primitives table) table.rows)

let to_string ?(separator = ',') table =
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_char buf separator;
        Buffer.add_string buf (quote_cell ~separator cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row table.headers;
  List.iter emit_row table.rows;
  Buffer.contents buf
