type table = { headers : string list; rows : string list list }

exception Parse_error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* Split the input into rows of raw cells, honouring RFC 4180 quoting. *)
let split_rows ~separator src =
  let len = String.length src in
  let rows = ref [] in
  let cells = ref [] in
  let buf = Buffer.create 16 in
  let line = ref 1 in
  let pos = ref 0 in
  let row_nonempty = ref false in
  let flush_cell () =
    cells := Buffer.contents buf :: !cells;
    Buffer.clear buf
  in
  let flush_row () =
    flush_cell ();
    (* A completely empty line is skipped rather than read as a row with a
       single empty cell. *)
    (match !cells with
    | [ "" ] when not !row_nonempty -> ()
    | cs -> rows := List.rev cs :: !rows);
    cells := [];
    row_nonempty := false
  in
  while !pos < len do
    let c = src.[!pos] in
    if c = '"' then begin
      row_nonempty := true;
      incr pos;
      let closed = ref false in
      while not !closed do
        if !pos >= len then error !line "unterminated quoted cell"
        else begin
          let c = src.[!pos] in
          if c = '"' then
            if !pos + 1 < len && src.[!pos + 1] = '"' then begin
              Buffer.add_char buf '"';
              pos := !pos + 2
            end
            else begin
              closed := true;
              incr pos
            end
          else begin
            if c = '\n' then incr line;
            Buffer.add_char buf c;
            incr pos
          end
        end
      done
    end
    else if c = separator then begin
      row_nonempty := true;
      flush_cell ();
      incr pos
    end
    else if c = '\r' && !pos + 1 < len && src.[!pos + 1] = '\n' then begin
      flush_row ();
      incr line;
      pos := !pos + 2
    end
    else if c = '\n' || c = '\r' then begin
      flush_row ();
      incr line;
      incr pos
    end
    else begin
      row_nonempty := true;
      Buffer.add_char buf c;
      incr pos
    end
  done;
  if Buffer.length buf > 0 || !cells <> [] then flush_row ();
  List.rev !rows

let default_header i = Printf.sprintf "Column%d" (i + 1)

let parse ?(separator = ',') ?(has_headers = true) src =
  match split_rows ~separator src with
  | [] -> { headers = []; rows = [] }
  | first :: rest ->
      let headers, data_rows =
        if has_headers then
          ( List.mapi
              (fun i h -> if String.trim h = "" then default_header i else String.trim h)
              first,
            rest )
        else (List.mapi (fun i _ -> default_header i) first, first :: rest)
      in
      let width = List.length headers in
      let rows =
        List.mapi
          (fun i row ->
            let n = List.length row in
            if n > width then
              error
                (i + if has_headers then 2 else 1)
                "row has %d cells but the header has %d columns" n width
            else if n < width then
              row @ List.init (width - n) (fun _ -> "")
            else row)
          data_rows
      in
      { headers; rows }

let parse_result ?separator ?has_headers src =
  match parse ?separator ?has_headers src with
  | t -> Ok t
  | exception Parse_error { line; message } ->
      Error (Printf.sprintf "CSV parse error at line %d: %s" line message)

let row_to_data ?(convert_primitives = true) table row =
  (* Unquoted cells keep the whitespace around separators; conversion
     normalizes it away, matching how classification trims literals. *)
  let conv s =
    if convert_primitives then fst (Primitive.to_value (String.trim s))
    else Data_value.String s
  in
  Data_value.Record
    (Data_value.csv_record_name, List.map2 (fun h c -> (h, conv c)) table.headers row)

let to_data ?convert_primitives table =
  Data_value.List (List.map (row_to_data ?convert_primitives table) table.rows)

let needs_quoting ~separator s =
  String.exists (fun c -> c = separator || c = '"' || c = '\n' || c = '\r') s

let quote_cell ~separator s =
  if needs_quoting ~separator s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_string ?(separator = ',') table =
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_char buf separator;
        Buffer.add_string buf (quote_cell ~separator cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row table.headers;
  List.iter emit_row table.rows;
  Buffer.contents buf
