(* A pragmatic tag-soup parser: tokenize into tags/text/comments, then
   build a tree with a recovery stack. *)

type token =
  | Open of string * (string * string) list * bool (* name, attrs, self-closing *)
  | Close of string
  | Text of string

let void_elements =
  [ "area"; "base"; "br"; "col"; "embed"; "hr"; "img"; "input"; "link";
    "meta"; "param"; "source"; "track"; "wbr" ]

let raw_text_elements = [ "script"; "style" ]

(* entity decoding reuses the XML entity table, leniently: unknown
   entities are kept verbatim *)
let decode_entities s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | Some j when j - !i <= 10 -> (
          let name = String.sub s (!i + 1) (j - !i - 1) in
          let known =
            match name with
            | "amp" -> Some "&"
            | "lt" -> Some "<"
            | "gt" -> Some ">"
            | "quot" -> Some "\""
            | "apos" -> Some "'"
            | "nbsp" -> Some " "
            | _ ->
                if String.length name > 1 && name.[0] = '#' then
                  let num =
                    if name.[1] = 'x' || name.[1] = 'X' then
                      int_of_string_opt
                        ("0x" ^ String.sub name 2 (String.length name - 2))
                    else int_of_string_opt (String.sub name 1 (String.length name - 1))
                  in
                  match num with
                  | Some u when u > 0 && u < 128 -> Some (String.make 1 (Char.chr u))
                  | Some _ -> Some "?" (* out-of-ASCII references degrade *)
                  | None -> None
                else None
          in
          match known with
          | Some repl ->
              Buffer.add_string buf repl;
              i := j + 1
          | None ->
              Buffer.add_char buf '&';
              incr i)
      | _ ->
          Buffer.add_char buf '&';
          incr i
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = ':'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let text_buf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      tokens := Text (Buffer.contents text_buf) :: !tokens;
      Buffer.clear text_buf
    end
  in
  let i = ref 0 in
  let read_name () =
    let start = !i in
    while !i < n && is_name_char src.[!i] do incr i done;
    String.lowercase_ascii (String.sub src start (!i - start))
  in
  let skip_ws () =
    while
      !i < n && (match src.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do incr i done
  in
  let read_until sub =
    (* advance past the next occurrence of [sub]; to end of input if absent *)
    let rec find k =
      if k + String.length sub > n then n
      else if String.sub src k (String.length sub) = sub then k + String.length sub
      else find (k + 1)
    in
    i := find !i
  in
  while !i < n do
    if src.[!i] = '<' then begin
      if !i + 3 < n && String.sub src !i 4 = "<!--" then begin
        flush_text ();
        i := !i + 4;
        read_until "-->"
      end
      else if !i + 1 < n && (src.[!i + 1] = '!' || src.[!i + 1] = '?') then begin
        (* doctype / processing instruction: skip to '>' *)
        flush_text ();
        read_until ">"
      end
      else if !i + 1 < n && src.[!i + 1] = '/' then begin
        flush_text ();
        i := !i + 2;
        let name = read_name () in
        read_until ">";
        if name <> "" then tokens := Close name :: !tokens
      end
      else if !i + 1 < n && is_name_char src.[!i + 1] then begin
        flush_text ();
        incr i;
        let name = read_name () in
        (* attributes *)
        let attrs = ref [] in
        let self = ref false in
        let stop = ref false in
        while not !stop do
          skip_ws ();
          if !i >= n then stop := true
          else
            match src.[!i] with
            | '>' ->
                incr i;
                stop := true
            | '/' ->
                incr i;
                self := true
            | c when is_name_char c ->
                let attr = read_name () in
                skip_ws ();
                let value =
                  if !i < n && src.[!i] = '=' then begin
                    incr i;
                    skip_ws ();
                    if !i < n && (src.[!i] = '"' || src.[!i] = '\'') then begin
                      let q = src.[!i] in
                      incr i;
                      let start = !i in
                      while !i < n && src.[!i] <> q do incr i done;
                      let v = String.sub src start (!i - start) in
                      if !i < n then incr i;
                      v
                    end
                    else begin
                      let start = !i in
                      while
                        !i < n
                        && (match src.[!i] with
                           | ' ' | '\t' | '\n' | '\r' | '>' | '/' -> false
                           | _ -> true)
                      do incr i done;
                      String.sub src start (!i - start)
                    end
                  end
                  else "" (* boolean attribute *)
                in
                if not (List.mem_assoc attr !attrs) then
                  attrs := (attr, decode_entities value) :: !attrs
            | _ -> incr i (* stray character inside a tag: skip *)
        done;
        let attrs = List.rev !attrs in
        if List.mem name raw_text_elements && not !self then begin
          (* swallow raw text up to the matching close tag *)
          tokens := Open (name, attrs, false) :: !tokens;
          read_until ("</" ^ name);
          read_until ">";
          tokens := Close name :: !tokens
        end
        else
          tokens :=
            Open (name, attrs, !self || List.mem name void_elements) :: !tokens
      end
      else begin
        (* a lone '<': literal text *)
        Buffer.add_char text_buf '<';
        incr i
      end
    end
    else begin
      Buffer.add_char text_buf src.[!i];
      incr i
    end
  done;
  flush_text ();
  List.rev !tokens

(* tree building with recovery: an unmatched close tag pops the stack up
   to the matching open element if one exists, otherwise it is dropped. *)
let parse src : Xml.tree =
  let make name attributes children : Xml.tree =
    { Xml.name; attributes; children = List.rev children }
  in
  (* stack of (name, attrs, reversed children) *)
  let stack : (string * (string * string) list * Xml.node list) list ref =
    ref [ ("#root", [], []) ]
  in
  let push_node node =
    match !stack with
    | (name, attrs, children) :: rest ->
        stack := (name, attrs, node :: children) :: rest
    | [] -> assert false
  in
  let close_one () =
    match !stack with
    | (name, attrs, children) :: rest ->
        stack := rest;
        push_node (Xml.Element (make name attrs children))
    | [] -> assert false
  in
  List.iter
    (fun token ->
      match token with
      | Text t ->
          let decoded = decode_entities t in
          if String.trim decoded <> "" then push_node (Xml.Text decoded)
      | Open (name, attrs, true) -> push_node (Xml.Element (make name attrs []))
      | Open (name, attrs, false) -> stack := (name, attrs, []) :: !stack
      | Close name ->
          if List.exists (fun (n, _, _) -> n = name) !stack then begin
            while (match !stack with (n, _, _) :: _ -> n <> name | [] -> false) do
              close_one ()
            done;
            close_one ()
          end
          (* else: stray close tag, dropped *))
    (tokenize src);
  (* close everything still open *)
  while List.length !stack > 1 do
    close_one ()
  done;
  let root_children =
    match !stack with [ (_, _, children) ] -> List.rev children | _ -> []
  in
  (* root at <html> if present, else wrap in a synthetic body *)
  match
    List.find_map
      (function
        | Xml.Element e when e.Xml.name = "html" -> Some e
        | _ -> None)
      root_children
  with
  | Some html -> html
  | None -> { Xml.name = "body"; attributes = []; children = root_children }

(* ----- table extraction ----- *)

type table = { caption : string option; id : string option; table : Csv.table }

let cell_text (e : Xml.tree) = String.trim (Xml.text_content e)

let rec find_elements name (e : Xml.tree) : Xml.tree list =
  let here = if e.Xml.name = name then [ e ] else [] in
  here
  @ List.concat_map
      (function Xml.Element c -> find_elements name c | _ -> [])
      e.Xml.children

let child_elements name (e : Xml.tree) =
  (* descendant rows/cells that are not inside a *nested* table *)
  let rec go (e : Xml.tree) =
    List.concat_map
      (function
        | Xml.Element c when c.Xml.name = name -> [ c ]
        | Xml.Element c when c.Xml.name = "table" -> []
        | Xml.Element c -> go c
        | _ -> [])
      e.Xml.children
  in
  go e

let extract_table (t : Xml.tree) : table =
  let rows = child_elements "tr" t in
  let cells row =
    List.filter_map
      (function
        | Xml.Element c when c.Xml.name = "td" || c.Xml.name = "th" -> Some c
        | _ -> None)
      row.Xml.children
  in
  let is_header_row row =
    let cs = cells row in
    cs <> [] && List.for_all (fun (c : Xml.tree) -> c.Xml.name = "th") cs
  in
  let headers, data_rows =
    match rows with
    | first :: rest when is_header_row first ->
        (List.map cell_text (cells first), rest)
    | first :: rest ->
        (* no <th> header: use the first row's text, like the HtmlProvider *)
        (List.map cell_text (cells first), rest)
    | [] -> ([], [])
  in
  let width = List.length headers in
  let pad row =
    let row = List.map cell_text (cells row) in
    let n = List.length row in
    if n >= width then List.filteri (fun i _ -> i < width) row
    else row @ List.init (width - n) (fun _ -> "")
  in
  let headers =
    List.mapi
      (fun i h -> if String.trim h = "" then Printf.sprintf "Column%d" (i + 1) else h)
      headers
  in
  {
    caption =
      (match find_elements "caption" t with
      | c :: _ -> Some (cell_text c)
      | [] -> None);
    id = List.assoc_opt "id" t.Xml.attributes;
    table = { Csv.headers; rows = List.map pad data_rows };
  }

let tables tree = List.map extract_table (find_elements "table" tree)
let tables_of_string s = tables (parse s)
