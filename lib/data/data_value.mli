(** First-order structured data values.

    This is the universal data representation [d] of the paper (Section 3.4):

    {v
      d = i | f | s | true | false | null
        | [d1; ...; dn] | nu {nu1 |-> d1, ..., nun |-> dn}
    v}

    JSON, XML and CSV documents are all mapped into this single
    representation before shape inference runs:

    - JSON objects become records named {!json_record_name};
    - XML elements become records named after the element, with attributes
      as fields and the element body stored under the {!body_field} field
      (Section 6.2 of the paper);
    - CSV rows become records named {!csv_record_name} with one field per
      column, and a CSV file is a collection of row records. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Record of string * (string * t) list
      (** [Record (name, fields)]. Field order is preserved as parsed, but
          two records are considered equal up to field reordering, matching
          the paper's "we assume that record fields can be freely
          reordered". Duplicate field names are not allowed. *)

val json_record_name : string
(** The name used for records arising from JSON objects. The paper writes
    this name as the bullet [•]; we use the literal UTF-8 bullet so that
    printed shapes look like the paper's notation. *)

val csv_record_name : string
(** The name used for records arising from CSV rows ("unnamed records" in
    Section 6.2). *)

val body_field : string
(** The special field name holding the body of an XML element
    (Section 6.2). Printed as [•]. *)

val equal : t -> t -> bool
(** Structural equality, treating record fields as unordered (the paper
    assumes fields can be freely reordered). *)

val compare : t -> t -> int
(** A total order consistent with {!equal}. *)

val record : string -> (string * t) list -> t
(** [record name fields] builds a record, raising [Invalid_argument] on
    duplicate field names. *)

val record_field : string -> t -> t option
(** [record_field name d] looks up field [name] if [d] is a record. *)

val is_primitive : t -> bool
(** True for null, booleans, numbers and strings. *)

val pp : Format.formatter -> t -> unit
(** Paper-style printer: records as [nu {f1 |-> d1, ...}], lists in square
    brackets. *)

val to_string : t -> string

val size : t -> int
(** Total number of nodes (primitives, list and record nodes), used by
    benchmarks to report throughput per node. *)

val depth : t -> int
(** Maximum nesting depth; a primitive has depth 1. *)
