(** JSON parsing and printing.

    A self-contained RFC 8259 parser producing {!Data_value.t}. JSON
    objects become records named {!Data_value.json_record_name} (the
    paper's [•]); arrays become lists; numbers become [Int] when they are
    written without fraction/exponent and fit a native [int], and [Float]
    otherwise — this distinction is what lets shape inference prefer [int]
    over [float] (rule (1) of the preferred shape relation).

    The parser reports errors with line/column positions, handles the full
    escape syntax including [\uXXXX] surrogate pairs (decoded to UTF-8),
    and rejects trailing garbage. Duplicate object keys keep the last
    binding, matching common JSON library behaviour. *)

exception Parse_error of { line : int; column : int; message : string }
(** Thin compatibility wrapper: the parser reports faults as structured
    {!Diagnostic.t}s (format, position, message) and the public entry
    points convert them to this legacy exception. *)

val parse : string -> Data_value.t
(** @raise Parse_error on malformed input. *)

val parse_diag : string -> (Data_value.t, Diagnostic.t) result
(** Like {!parse} but returning the structured diagnostic. *)

val parse_result : string -> (Data_value.t, string) result
(** Like {!parse} but returning the formatted error message. *)

val parse_many : string -> Data_value.t list
(** Parse a stream of whitespace-separated JSON documents (as used when a
    sample file contains several samples). *)

val fold_many :
  ?cancel:Cancel.t ->
  ?chunk_size:int ->
  ?chunk_bytes:int ->
  ?on_error:(Diagnostic.t -> skipped:string -> unit) ->
  ('acc -> Data_value.t list -> 'acc) ->
  'acc ->
  string ->
  'acc
(** Chunked driver over a stream of whitespace-separated JSON documents:
    parse up to [chunk_size] documents (default 256), hand them to the
    fold function, and continue, so the caller can process (or ship to
    another domain) a bounded batch at a time instead of materializing
    the whole corpus. With [chunk_bytes] a chunk is also cut once it has
    consumed at least that many source bytes, whichever cap fills first —
    callers that want large chunks measured in documents stay safe on
    corpora of huge documents. Positions in {!Parse_error} are relative
    to the whole stream. [parse_many] is [fold_many] collecting every
    chunk. Raises [Invalid_argument] when [chunk_size < 1] or
    [chunk_bytes < 1].

    With [on_error] the driver runs in {e recovering} mode: a malformed
    document is skipped instead of aborting the stream. The handler
    receives the diagnostic — carrying the document's 0-based stream
    index — and the skipped raw text; the parser then resynchronizes at
    the next top-level document boundary (the closing bracket that
    re-balances the corrupt document, or failing that the next line
    starting with ['{'] or ['[']) and continues. Without [on_error] the
    first fault raises {!Parse_error}, exactly as before.

    [cancel] is polled before each document; when it trips the driver
    raises {!Cancel.Cancelled} immediately, without consuming further
    input or invoking the fold function again. *)

(** Incremental parsing of a document stream fed in arbitrary string
    fragments (e.g. fixed-size file reads). The cursor retains at most
    one partial document between feeds; error positions are relative to
    the whole stream fed so far, not the current fragment. *)
module Cursor : sig
  type t

  val create :
    ?cancel:Cancel.t ->
    ?on_error:(Diagnostic.t -> skipped:string -> unit) ->
    unit ->
    t
  (** With [on_error], the cursor runs in recovering mode: a
      definitely-malformed document whose recovery boundary lies within
      the input fed so far is skipped and reported to the handler (with
      its stream-global document index and raw text) instead of raising;
      a fault whose document might still be completed by future input is
      held back until more input or {!finish} decides. [cancel] is
      polled before each document inside {!feed} and {!finish}; when it
      trips, {!Cancel.Cancelled} is raised. *)

  val feed : t -> string -> Data_value.t list
  (** Parse as many complete documents as the input fed so far allows
      and return them in stream order. A trailing document that may
      still be incomplete — a truncated document, or a top-level number
      ending exactly at the fragment boundary, since its digits could
      continue in the next fragment — is retained for the next [feed]
      or {!finish}.
      @raise Parse_error on definitely-malformed input (strict cursors
      only), with line and column relative to the whole stream. *)

  val finish : t -> Data_value.t list
  (** Signal end of stream: parse and return the retained tail (empty
      if there is none), resetting the cursor. In recovering mode every
      remaining fault is definite: it is reported and skipped.
      @raise Parse_error if the tail is an incomplete document (strict
      cursors only), with stream-global positions. *)
end

(** Raw access to the parser's lexing machinery, for shape-specialized
    parser compilation ([Fsdata_core.Shape_compile]). A compiled decoder
    drives the same mutable state, token readers and resynchronization
    as the generic parser, so its error positions (via
    [Diagnostic.Parse_error]) and recovery boundaries are identical to
    the interpreted path by construction. Not a stable public API:
    intended for in-tree consumers. *)
module Raw : sig
  type state
  (** Mutable scan state over one source string: position, line
      bookkeeping and nesting depth. *)

  type mark
  (** Immutable snapshot of a position (offset, line, line start), used
      to rewind to a document start for fallback re-parsing. *)

  val make : string -> state
  val mark : state -> mark

  val reset : state -> mark -> unit
  (** Rewind to [mark] and clear the nesting depth (a failed descent may
      have left it non-zero). *)

  val offset : state -> int
  val offset_of_mark : mark -> int
  val source : state -> string
  val at_eof : state -> bool

  val peek_char : state -> char
  (** Non-allocating [peek]: the next character, or ['\000'] at end of
      input (a literal NUL in the source is a control character and
      errors on any path that could consume it). *)

  val lit : state -> string -> bool
  (** [lit st s] consumes the source bytes at the cursor when they are
      exactly [s] and returns [true]; otherwise leaves the cursor
      untouched. [s] must not contain newlines (no line bookkeeping).
      Lets a compiled record decoder match an expected ["key"] without
      decoding or allocating. *)

  val peek : state -> char option
  val advance : state -> unit
  val skip_ws : state -> unit

  val expect : state -> char -> unit
  (** @raise Diagnostic.Parse_error when the next character differs. *)

  val parse_string : state -> string
  (** Scan a JSON string literal (opening quote included), decoding the
      full escape syntax. @raise Diagnostic.Parse_error on faults. *)

  val parse_number : state -> Data_value.t
  (** Scan a JSON number: [Int] when written without fraction/exponent
      and it fits a native [int], else [Float].
      @raise Diagnostic.Parse_error on faults. *)

  val parse_value : state -> Data_value.t
  (** The generic recursive-descent parser, from the current position.
      @raise Diagnostic.Parse_error on faults. *)

  val resync : state -> start:int -> bool
  (** Advance past a malformed document (whose text began at [start]) to
      the most plausible next top-level document boundary; see
      {!fold_many}'s recovering mode. Returns [false] when the rest of
      the input was consumed instead. *)

  val fail : state -> string -> 'a
  (** Raise [Diagnostic.Parse_error] at the current position with the
      given message — the same diagnostic shape the parser itself
      raises. *)
end

val to_string : ?indent:int -> Data_value.t -> string
(** Print a data value as JSON. With [indent] (spaces per level) the output
    is pretty-printed; default is compact. Record names are not printed
    (JSON objects are anonymous); XML-derived values therefore lose their
    element names when printed as JSON. *)

val pp : Format.formatter -> Data_value.t -> unit
(** Compact JSON printer usable with [%a]. *)
