(** JSON parsing and printing.

    A self-contained RFC 8259 parser producing {!Data_value.t}. JSON
    objects become records named {!Data_value.json_record_name} (the
    paper's [•]); arrays become lists; numbers become [Int] when they are
    written without fraction/exponent and fit a native [int], and [Float]
    otherwise — this distinction is what lets shape inference prefer [int]
    over [float] (rule (1) of the preferred shape relation).

    The parser reports errors with line/column positions, handles the full
    escape syntax including [\uXXXX] surrogate pairs (decoded to UTF-8),
    and rejects trailing garbage. Duplicate object keys keep the last
    binding, matching common JSON library behaviour. *)

exception Parse_error of { line : int; column : int; message : string }

val parse : string -> Data_value.t
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (Data_value.t, string) result
(** Like {!parse} but returning the formatted error message. *)

val parse_many : string -> Data_value.t list
(** Parse a stream of whitespace-separated JSON documents (as used when a
    sample file contains several samples). *)

val to_string : ?indent:int -> Data_value.t -> string
(** Print a data value as JSON. With [indent] (spaces per level) the output
    is pretty-printed; default is compact. Record names are not printed
    (JSON objects are anonymous); XML-derived values therefore lose their
    element names when printed as JSON. *)

val pp : Format.formatter -> Data_value.t -> unit
(** Compact JSON printer usable with [%a]. *)
