type format = Json | Xml | Csv

type severity = Error | Warning

type t = {
  format : format;
  line : int;
  column : int;
  index : int option;
  message : string;
  severity : severity;
}

exception Parse_error of t

let make ?index ?(severity = Error) ~format ~line ~column message =
  { format; line; column; index; message; severity }

let error ~format ~line ~column fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error (make ~format ~line ~column message)))
    fmt

let with_index index d = { d with index = Some index }

let format_name = function Json -> "json" | Xml -> "xml" | Csv -> "csv"
let format_label = function Json -> "JSON" | Xml -> "XML" | Csv -> "CSV"
let severity_name = function Error -> "error" | Warning -> "warning"

(* The column is omitted when unknown (0) so the rendering degrades to
   the historical line-only CSV message shape. *)
let message_of d =
  if d.column > 0 then
    Printf.sprintf "%s parse error at line %d, column %d: %s"
      (format_label d.format) d.line d.column d.message
  else
    Printf.sprintf "%s parse error at line %d: %s" (format_label d.format)
      d.line d.message

let to_string d =
  match d.index with
  | None -> message_of d
  | Some i -> Printf.sprintf "%s (document %d)" (message_of d) i

let to_json d =
  let base =
    [
      ("format", Data_value.String (format_name d.format));
      ("line", Data_value.Int d.line);
      ("column", Data_value.Int d.column);
      ("severity", Data_value.String (severity_name d.severity));
      ("message", Data_value.String d.message);
    ]
  in
  let fields =
    match d.index with
    | None -> base
    | Some i -> ("index", Data_value.Int i) :: base
  in
  Data_value.Record (Data_value.json_record_name, fields)

let pp ppf d = Format.pp_print_string ppf (to_string d)

type budget = Strict | Count of int | Percent of float

let budget_of_string s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then Result.Error "empty error budget"
  else if s.[len - 1] = '%' then
    match float_of_string_opt (String.sub s 0 (len - 1)) with
    | Some p when p >= 0. && p <= 100. -> Result.Ok (Percent p)
    | Some _ -> Result.Error "error budget percentage must be between 0 and 100"
    | None -> Result.Error (Printf.sprintf "invalid error budget %S" s)
  else
    match int_of_string_opt s with
    | Some 0 -> Result.Ok Strict
    | Some n when n > 0 -> Result.Ok (Count n)
    | Some _ -> Result.Error "error budget must be non-negative"
    | None ->
        Result.Error
          (Printf.sprintf "invalid error budget %S (expected N or N%%)" s)

let budget_to_string = function
  | Strict -> "0"
  | Count n -> string_of_int n
  | Percent p ->
      if Float.is_integer p then Printf.sprintf "%.0f%%" p
      else Printf.sprintf "%g%%" p

let allows budget ~errors ~total =
  match budget with
  | Strict -> errors = 0
  | Count n -> errors <= n
  | Percent p -> float_of_int errors <= p /. 100. *. float_of_int total
