(** Lenient HTML parsing and table extraction.

    Footnote 10 of the paper: "The same mechanism has later been used by
    the HTML type provider, which provides similarly easy access to data
    in HTML tables and lists." This module supplies the substrate: a
    tag-soup parser tolerant of real-world HTML — case-insensitive tag
    names, unquoted attributes, void elements ([<br>], [<img>], ...),
    unclosed elements recovered by stack unwinding, raw-text [<script>]
    and [<style>] contents — producing the same {!Xml.tree} type as the
    XML parser, plus extraction of [<table>]s into {!Csv.table}s so the
    CSV inference of Section 6.2 applies to them unchanged.

    The parser never fails on text input: tag soup degrades to text or
    gets dropped, as browsers do. *)

val parse : string -> Xml.tree
(** Parse an HTML document. The result is rooted at the [<html>] element
    if present, otherwise at a synthetic [body] element wrapping the
    top-level nodes. Tag and attribute names are lowercased. *)

type table = {
  caption : string option;  (** [<caption>], if present *)
  id : string option;  (** the [id] attribute, if present *)
  table : Csv.table;
      (** headers from [<th>] cells (or the first row when there are
          none, as the HtmlProvider does); cell text is concatenated,
          entity-decoded and trimmed *)
}

val tables : Xml.tree -> table list
(** All tables in document order, including nested ones. Ragged rows are
    padded to the header width; rows longer than the header are
    truncated (tag soup again). *)

val tables_of_string : string -> table list
(** [tables_of_string s] = [tables (parse s)]. *)
