type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Record of string * (string * t) list

let json_record_name = "\xe2\x80\xa2" (* UTF-8 bullet, the paper's • *)
let csv_record_name = "\xe2\x80\xa2row"
let body_field = "\xe2\x80\xa2"

let sort_fields fields =
  List.sort (fun (a, _) (b, _) -> String.compare a b) fields

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float x, Float y -> Float.compare x y
  | Float _, _ -> -1
  | _, Float _ -> 1
  | String x, String y -> String.compare x y
  | String _, _ -> -1
  | _, String _ -> 1
  | List xs, List ys -> compare_lists xs ys
  | List _, _ -> -1
  | _, List _ -> 1
  | Record (n1, f1), Record (n2, f2) -> (
      match String.compare n1 n2 with
      | 0 -> compare_fields (sort_fields f1) (sort_fields f2)
      | c -> c)

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys -> ( match compare x y with 0 -> compare_lists xs ys | c -> c)

and compare_fields fs gs =
  match (fs, gs) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (n1, v1) :: fs, (n2, v2) :: gs -> (
      match String.compare n1 n2 with
      | 0 -> ( match compare v1 v2 with 0 -> compare_fields fs gs | c -> c)
      | c -> c)

let equal a b = compare a b = 0

let record name fields =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Data_value.record: duplicate field %S" n)
      else Hashtbl.add seen n ())
    fields;
  Record (name, fields)

let record_field name = function
  | Record (_, fields) -> List.assoc_opt name fields
  | _ -> None

let is_primitive = function
  | Null | Bool _ | Int _ | Float _ | String _ -> true
  | List _ | Record _ -> false

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f ->
      (* Keep a trailing ".0" so floats are visually distinct from ints. *)
      if Float.is_integer f && Float.abs f < 1e16 then Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%.12g" f
  | String s -> Fmt.pf ppf "%S" s
  | List ds -> Fmt.pf ppf "[@[<hov>%a@]]" Fmt.(list ~sep:(any ";@ ") pp) ds
  | Record (name, fields) ->
      Fmt.pf ppf "%s {@[<hov>%a@]}" name
        Fmt.(list ~sep:(any ",@ ") pp_field)
        fields

and pp_field ppf (name, d) = Fmt.pf ppf "%s \xe2\x86\xa6 %a" name pp d

let to_string d = Fmt.str "%a" pp d

let rec size = function
  | Null | Bool _ | Int _ | Float _ | String _ -> 1
  | List ds -> 1 + List.fold_left (fun acc d -> acc + size d) 0 ds
  | Record (_, fields) ->
      1 + List.fold_left (fun acc (_, d) -> acc + size d) 0 fields

let rec depth = function
  | Null | Bool _ | Int _ | Float _ | String _ -> 1
  | List ds -> 1 + List.fold_left (fun acc d -> max acc (depth d)) 0 ds
  | Record (_, fields) ->
      1 + List.fold_left (fun acc (_, d) -> max acc (depth d)) 0 fields
