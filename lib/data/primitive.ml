type hint =
  | Hint_bit0
  | Hint_bit1
  | Hint_bool
  | Hint_int
  | Hint_float
  | Hint_date
  | Hint_string
  | Hint_null

let missing_markers = [ ""; "#N/A"; "NA"; "N/A"; ":"; "-" ]

let is_missing s = List.mem (String.trim s) missing_markers

let parse_int s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then None
  else
    let start = if s.[0] = '-' || s.[0] = '+' then 1 else 0 in
    if n = start then None
    else
      let ok = ref true in
      for i = start to n - 1 do
        if not (s.[i] >= '0' && s.[i] <= '9') then ok := false
      done;
      if not !ok then None else int_of_string_opt s

let parse_float s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then None
  else
    (* Accept: [sign] digits [. digits] [(e|E) [sign] digits]
       with at least one digit somewhere around the point. *)
    let i = ref (if s.[0] = '-' || s.[0] = '+' then 1 else 0) in
    let digits_from j =
      let k = ref j in
      while !k < n && s.[!k] >= '0' && s.[!k] <= '9' do incr k done;
      !k
    in
    let int_end = digits_from !i in
    let saw_int = int_end > !i in
    let frac_end, saw_frac =
      if int_end < n && s.[int_end] = '.' then
        let e = digits_from (int_end + 1) in
        (e, e > int_end + 1)
      else (int_end, false)
    in
    let pos_after_exp =
      if frac_end < n && (s.[frac_end] = 'e' || s.[frac_end] = 'E') then begin
        let j =
          if frac_end + 1 < n && (s.[frac_end + 1] = '-' || s.[frac_end + 1] = '+')
          then frac_end + 2
          else frac_end + 1
        in
        let e = digits_from j in
        if e > j then Some e else None
      end
      else Some frac_end
    in
    match pos_after_exp with
    | Some e when e = n && (saw_int || saw_frac) -> float_of_string_opt s
    | _ -> None

let parse_bool s =
  match String.lowercase_ascii (String.trim s) with
  | "true" | "yes" -> Some true
  | "false" | "no" -> Some false
  | _ -> None

let classify s =
  let t = String.trim s in
  if is_missing t then Hint_null
  else if t = "0" then Hint_bit0
  else if t = "1" then Hint_bit1
  else
    match parse_int t with
    | Some _ -> Hint_int
    | None -> (
        match parse_float t with
        | Some _ -> Hint_float
        | None -> (
            match parse_bool t with
            | Some _ -> Hint_bool
            | None -> if Date.is_date t then Hint_date else Hint_string))

let to_value s =
  let t = String.trim s in
  match classify s with
  | Hint_null -> (Data_value.Null, Hint_null)
  | Hint_bit0 -> (Data_value.Int 0, Hint_bit0)
  | Hint_bit1 -> (Data_value.Int 1, Hint_bit1)
  | Hint_int -> (
      match parse_int t with
      | Some i -> (Data_value.Int i, Hint_int)
      | None -> assert false)
  | Hint_float -> (
      match parse_float t with
      | Some f -> (Data_value.Float f, Hint_float)
      | None -> assert false)
  | Hint_bool -> (
      match parse_bool t with
      | Some b -> (Data_value.Bool b, Hint_bool)
      | None -> assert false)
  | Hint_date -> (Data_value.String s, Hint_date)
  | Hint_string -> (Data_value.String s, Hint_string)

let rec normalize (d : Data_value.t) : Data_value.t =
  match d with
  | String s -> fst (to_value s)
  | List ds -> List (List.map normalize ds)
  | Record (name, fields) ->
      Record (name, List.map (fun (k, v) -> (k, normalize v)) fields)
  | Null | Bool _ | Int _ | Float _ -> d
