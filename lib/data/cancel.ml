type t = unit -> bool

exception Cancelled

let never : t = fun () -> false
let of_flag flag : t = fun () -> Atomic.get flag
let check (c : t) = if c () then raise Cancelled
