(** CSV parsing and the CSV-to-data mapping of Section 6.2.

    "We treat CSV files as lists of records (with a field for each column)
    and so CSV is handled directly by our inference algorithm."

    The parser implements RFC 4180 quoting (double quotes, escaped quotes
    by doubling, embedded separators and newlines inside quotes), accepts
    both LF and CRLF line endings, a configurable separator, and an
    optional header row (the default; without headers, columns are named
    [Column1..ColumnN] as F# Data does).

    Each row becomes an unnamed record ({!Data_value.csv_record_name});
    cell values are converted with {!Primitive.to_value} by default, so
    ["#N/A"] becomes null, ["0"] the integer 0 and so on, and the whole
    file becomes a collection of rows. *)

type table = {
  headers : string list;
  rows : string list list;  (** raw cells, one list per row, padded/truncated to the header width *)
}

exception Parse_error of { line : int; message : string }
(** Thin compatibility wrapper: the parser reports faults as structured
    {!Diagnostic.t}s carrying both line and column (the column points at
    the opening quote of an unterminated cell, or at the first cell
    beyond the header width for an arity mismatch) and the public entry
    points convert them to this historical line-only exception. *)

val parse : ?separator:char -> ?has_headers:bool -> string -> table
(** @raise Parse_error on unterminated quoted cells or inconsistent input.
    Rows shorter than the header are padded with empty cells; longer rows
    are an error. An entirely empty input yields an empty table. *)

val parse_diag :
  ?separator:char -> ?has_headers:bool -> string -> (table, Diagnostic.t) result
(** Like {!parse} but returning the structured diagnostic, including the
    offending column. *)

val parse_result : ?separator:char -> ?has_headers:bool -> string -> (table, string) result

val parse_tolerant :
  ?separator:char ->
  ?has_headers:bool ->
  ?on_error:(Diagnostic.t -> skipped:string -> unit) ->
  string ->
  (table, Diagnostic.t) result
(** Like {!parse_diag} but rows with more cells than the header are
    quarantined instead of fatal: each is reported to [on_error] — the
    diagnostic's [index] is the row's 0-based position among the data
    rows and [skipped] is the row re-serialized in CSV syntax — and
    dropped from the resulting table. Structural faults (unterminated
    quoted cells) remain fatal and are returned as [Error]. *)

val to_data : ?convert_primitives:bool -> table -> Data_value.t
(** The collection-of-row-records view used for shape inference. *)

val row_to_data : ?convert_primitives:bool -> table -> string list -> Data_value.t
(** Convert one raw row to a record using the table's headers. *)

val to_string : ?separator:char -> table -> string
(** Serialize, quoting cells that contain the separator, quotes or
    newlines. *)
