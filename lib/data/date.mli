(** Date and time parsing for primitive-value inference.

    Section 6.2 of the paper notes that CSV (and XML attribute) literals
    carry no type information, so the library infers the shapes of
    primitive values, including dates: ["2012-05-01"] is a date, ["May 3"]
    is a date, but ["3 kveten"] (a Czech month name) is not, so a column
    mixing it with ISO dates is inferred as [string].

    F# Data delegates to .NET's invariant-culture [DateTime.TryParse]; this
    module implements a comparable recognizer covering the formats that the
    paper's examples rely on plus the common interchange formats. *)

type t = {
  year : int;
  month : int;  (** 1..12 *)
  day : int;  (** 1..31, validated against month/year *)
  hour : int;  (** 0..23 *)
  minute : int;
  second : int;
}

val equal : t -> t -> bool
val compare : t -> t -> int

val make : ?hour:int -> ?minute:int -> ?second:int -> int -> int -> int -> t option
(** [make y m d] validates the calendar date (including leap years) and the
    optional time-of-day components. *)

val of_string : string -> t option
(** Recognized formats (all with an optional [" HH:MM"] or [" HH:MM:SS"]
    time suffix, and ISO also with a ['T'] separator and optional
    [Z]/offset):

    - ISO 8601: ["2012-05-01"], ["2012-05-01T13:45:30Z"]
    - Slashed: ["2012/05/01"], ["05/01/2012"] (month first, invariant
      culture), ["01/05/2012"] when the first component cannot be a month
    - Month names: ["May 3"], ["May 3, 2012"], ["3 May 2012"],
      ["3 January"], with full or three-letter English month names

    Returns [None] for anything else; notably bare numbers are not dates,
    so numeric columns never collapse into dates. *)

val is_date : string -> bool
(** [is_date s] is [of_string s <> None]. *)

val to_iso8601 : t -> string
(** Canonical printing: ["YYYY-MM-DD"] when the time is midnight, otherwise
    ["YYYY-MM-DDTHH:MM:SS"]. *)

val pp : Format.formatter -> t -> unit
