type t = {
  year : int;
  month : int;
  day : int;
  hour : int;
  minute : int;
  second : int;
}

let equal a b = a = b

let compare a b =
  Stdlib.compare
    (a.year, a.month, a.day, a.hour, a.minute, a.second)
    (b.year, b.month, b.day, b.hour, b.minute, b.second)

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year y then 29 else 28
  | _ -> 0

let make ?(hour = 0) ?(minute = 0) ?(second = 0) year month day =
  if
    year >= 1 && year <= 9999
    && month >= 1 && month <= 12
    && day >= 1
    && day <= days_in_month year month
    && hour >= 0 && hour <= 23
    && minute >= 0 && minute <= 59
    && second >= 0 && second <= 59
  then Some { year; month; day; hour; minute; second }
  else None

(* --- A small hand-rolled scanner; we avoid regexes so that the accepted
   language is exactly what this module documents. --- *)

let month_names =
  [
    ("january", 1); ("jan", 1);
    ("february", 2); ("feb", 2);
    ("march", 3); ("mar", 3);
    ("april", 4); ("apr", 4);
    ("may", 5);
    ("june", 6); ("jun", 6);
    ("july", 7); ("jul", 7);
    ("august", 8); ("aug", 8);
    ("september", 9); ("sep", 9);
    ("october", 10); ("oct", 10);
    ("november", 11); ("nov", 11);
    ("december", 12); ("dec", 12);
  ]

let month_of_name s = List.assoc_opt (String.lowercase_ascii s) month_names

type token = Num of int * int (* value, digit count *) | Word of string | Sep of char

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let ok = ref true in
  while !i < n && !ok do
    let c = s.[!i] in
    if c = ' ' then incr i
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
      let digits = !i - start in
      if digits > 4 then ok := false
      else toks := Num (int_of_string (String.sub s start digits), digits) :: !toks
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then begin
      let start = !i in
      while
        !i < n
        && ((s.[!i] >= 'a' && s.[!i] <= 'z') || (s.[!i] >= 'A' && s.[!i] <= 'Z'))
      do incr i done;
      toks := Word (String.sub s start (!i - start)) :: !toks
    end
    else if c = '-' || c = '/' || c = ':' || c = ',' || c = '.' || c = '+' then begin
      toks := Sep c :: !toks;
      incr i
    end
    else ok := false
  done;
  if !ok then Some (List.rev !toks) else None

(* Parse an optional time suffix: already-tokenized tail of the form
   [Num h; Sep ':'; Num m (; Sep ':'; Num s)] possibly followed by an ISO
   zone designator [Word "Z"] or [Sep '+'; Num _; Sep ':'; Num _]. The zone
   is recognized and discarded: inference only needs to know the literal is
   a date, not its absolute instant. *)
let parse_time = function
  | [] -> Some (0, 0, 0)
  | Num (h, _) :: Sep ':' :: Num (m, _) :: rest -> (
      let finish rest s =
        match rest with
        | [] | [ Word ("Z" | "z") ] -> Some s
        | Sep ('+' | '-') :: Num (_, _) :: Sep ':' :: Num (_, _) :: [] -> Some s
        | _ -> None
      in
      match rest with
      | Sep ':' :: Num (s, _) :: rest -> (
          (* allow fractional seconds: .123 *)
          match rest with
          | Sep '.' :: Num (_, _) :: rest ->
              Option.map (fun s -> (h, m, s)) (finish rest s)
          | _ -> Option.map (fun s -> (h, m, s)) (finish rest s))
      | rest -> Option.map (fun s -> (h, m, s)) (finish rest 0))
  | _ -> None

let build y m d rest =
  match parse_time rest with
  | None -> None
  | Some (hh, mm, ss) -> make ~hour:hh ~minute:mm ~second:ss y m d

let current_year = 2016
(* Year-less dates ("May 3") need *a* year for calendar validation; F# Data
   uses the current year. We pin the paper's year so behaviour is
   deterministic. Only validity (e.g. Feb 29) depends on it. *)

let of_string s =
  let s = String.trim s in
  if String.length s < 3 || String.length s > 40 then None
  else
    match tokenize s with
    | None -> None
    | Some toks -> (
        match toks with
        (* ISO: yyyy-mm-dd, with optional T or space before the time. *)
        | Num (y, 4) :: Sep '-' :: Num (m, _) :: Sep '-' :: Num (d, _) :: rest -> (
            match rest with
            | Word ("T" | "t") :: rest | rest -> build y m d rest)
        (* yyyy/mm/dd *)
        | Num (y, 4) :: Sep '/' :: Num (m, _) :: Sep '/' :: Num (d, _) :: rest ->
            build y m d rest
        (* mm/dd/yyyy (invariant culture), falling back to dd/mm/yyyy when
           the first number cannot be a month. *)
        | Num (a, _) :: Sep '/' :: Num (b, _) :: Sep '/' :: Num (y, 4) :: rest ->
            if a <= 12 then build y a b rest else build y b a rest
        (* May 3 | May 3, 2012 *)
        | Word w :: Num (d, dd) :: rest when dd <= 2 -> (
            match month_of_name w with
            | None -> None
            | Some m -> (
                match rest with
                | Sep ',' :: Num (y, 4) :: rest | Num (y, 4) :: rest ->
                    build y m d rest
                | rest -> build current_year m d rest))
        (* 3 May | 3 May 2012 *)
        | Num (d, dd) :: Word w :: rest when dd <= 2 -> (
            match month_of_name w with
            | None -> None
            | Some m -> (
                match rest with
                | Sep ',' :: Num (y, 4) :: rest | Num (y, 4) :: rest ->
                    build y m d rest
                | rest -> build current_year m d rest))
        | _ -> None)

let is_date s = of_string s <> None

let to_iso8601 t =
  if t.hour = 0 && t.minute = 0 && t.second = 0 then
    Printf.sprintf "%04d-%02d-%02d" t.year t.month t.day
  else
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" t.year t.month t.day t.hour
      t.minute t.second

let pp ppf t = Fmt.string ppf (to_iso8601 t)
