(** Inference of primitive values from unityped literals.

    JSON distinguishes numbers, strings and booleans syntactically, but CSV
    literals (and XML attribute/body text) are bare strings. Section 6.2 of
    the paper describes how F# Data infers the shapes of such primitive
    values:

    - ["0"] and ["1"] support both [int] and [bool] readings; the paper
      introduces a [bit] shape preferred below both,
    - ["#N/A"] (and friends) denote missing values and are treated as null,
    - date literals in supported formats are recognized as dates,
    - anything else numeric is an [int] or [float], and the fallback is
      [string].

    This module classifies a literal and converts it into a typed
    {!Data_value.t} plus an inference hint. The hint distinguishes cases
    that the data value alone cannot carry (e.g. [Int 1] parsed from JSON is
    a plain int, while ["1"] in a CSV cell is a bit; ["2012-05-01"] is a
    string value but carries a date hint). *)

type hint =
  | Hint_bit0  (** the literal "0": readable as the int 0 or as false *)
  | Hint_bit1  (** the literal "1": readable as the int 1 or as true *)
  | Hint_bool
  | Hint_int
  | Hint_float
  | Hint_date
  | Hint_string
  | Hint_null  (** empty cell or a missing-value marker such as "#N/A" *)

val missing_markers : string list
(** Literals treated as missing values: [""], ["#N/A"], ["NA"], ["N/A"],
    [":"], ["-"] are the markers F# Data's CsvInference recognizes. *)

val classify : string -> hint
(** [classify s] returns the most specific reading of the literal [s]. The
    priority order is: missing marker, bit0/bit1, int, float, bool, date,
    string. Keeping bit0 and bit1 apart is what lets a lone ["1"] provide
    an [int] (the [id="1"] attribute of Section 6.3) while a column mixing
    0s and 1s provides a [bool] (the [Autofilled] column of Section 6.2):
    their join is the [bit] shape, which maps to [bool]. *)

val to_value : string -> Data_value.t * hint
(** [to_value s] converts the literal to a data value together with its
    hint: bits and ints become [Int], floats become [Float], booleans
    become [Bool], missing markers become [Null], and dates stay [String]
    (the shape layer records their date-ness through the hint). *)

val parse_int : string -> int option
(** Strict integer syntax: optional sign, decimal digits, no leading or
    trailing junk, fits in a native [int]. Accepts surrounding whitespace. *)

val parse_float : string -> float option
(** Strict decimal float syntax including scientific notation; rejects
    ["nan"]/["inf"] spellings (those read as strings, matching F# Data's
    invariant-culture parsing of data files). *)

val parse_bool : string -> bool option
(** ["true"]/["false"] (any case), ["yes"]/["no"]. *)

val normalize : Data_value.t -> Data_value.t
(** Recursively replace string leaves by their {!to_value} conversion:
    ["35.14229"] becomes the float, ["2012"] the int, missing-value markers
    become null; date strings and other strings are left alone. This aligns
    runtime documents with shapes inferred in practical mode (the paper's
    World Bank example reads the string ["35.14229"] through a
    [Value : option float] member). *)
