type tree = {
  name : string;
  attributes : (string * string) list;
  children : node list;
}

and node = Element of tree | Text of string | Cdata of string

exception Parse_error of { line : int; column : int; message : string }

(* The parser reports faults as structured {!Diagnostic.t}s; the legacy
   exception above is the thin compatibility wrapper the public entry
   points convert to. *)
let reraise_legacy (d : Diagnostic.t) =
  raise (Parse_error { line = d.line; column = d.column; message = d.message })

type state = {
  src : string;
  len : int;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;
  mutable depth : int;
}

(* bound element nesting so adversarial inputs cannot overflow the stack *)
let max_depth = 10_000

let make_state src =
  { src; len = String.length src; pos = 0; line = 1; bol = 0; depth = 0 }

let error st fmt =
  Diagnostic.error ~format:Diagnostic.Xml ~line:st.line
    ~column:(st.pos - st.bol + 1) fmt

let peek st = if st.pos < st.len then Some st.src.[st.pos] else None
let peek_at st off = if st.pos + off < st.len then Some st.src.[st.pos + off] else None

let advance st =
  (if st.pos < st.len && st.src.[st.pos] = '\n' then begin
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   end);
  st.pos <- st.pos + 1

let advance_n st n = for _ = 1 to n do advance st done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.src st.pos n = s

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  match peek st with
  | Some c when is_name_start c ->
      let start = st.pos in
      while (match peek st with Some c -> is_name_char c | None -> false) do
        advance st
      done;
      String.sub st.src start (st.pos - start)
  | Some c -> error st "expected a name but found %C" c
  | None -> error st "expected a name but found end of input"

(* Decode a character or entity reference starting at '&'. *)
let parse_entity st buf =
  advance st (* '&' *);
  let start = st.pos in
  while (match peek st with Some ';' | None -> false | Some _ -> true) do
    advance st
  done;
  if peek st <> Some ';' then error st "unterminated entity reference";
  let name = String.sub st.src start (st.pos - start) in
  advance st (* ';' *);
  let add_scalar u =
    (* Reuse the JSON module's UTF-8 encoder would create a cycle of
       convenience only; inline the encoding here. *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  match name with
  | "amp" -> Buffer.add_char buf '&'
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "quot" -> Buffer.add_char buf '"'
  | "apos" -> Buffer.add_char buf '\''
  | _ ->
      if String.length name > 1 && name.[0] = '#' then begin
        let num =
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string_opt ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string_opt (String.sub name 1 (String.length name - 1))
        in
        match num with
        | Some u when u > 0 && u <= 0x10FFFF -> add_scalar u
        | _ -> error st "invalid character reference &%s;" name
      end
      else error st "unknown entity &%s;" name

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
        advance st;
        q
    | _ -> error st "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' ->
        parse_entity st buf;
        loop ()
    | Some '<' -> error st "'<' is not allowed in attribute values"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let skip_comment st =
  advance_n st 4 (* <!-- *);
  let rec loop () =
    if looking_at st "-->" then advance_n st 3
    else if st.pos >= st.len then error st "unterminated comment"
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_pi st =
  advance_n st 2 (* <? *);
  let rec loop () =
    if looking_at st "?>" then advance_n st 2
    else if st.pos >= st.len then error st "unterminated processing instruction"
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_doctype st =
  (* Skip <!DOCTYPE ...>, handling nested [...] internal subsets. *)
  advance_n st 2 (* "<!" *);
  let depth = ref 1 in
  let in_subset = ref false in
  while !depth > 0 do
    match peek st with
    | None -> error st "unterminated DOCTYPE"
    | Some '[' ->
        in_subset := true;
        advance st
    | Some ']' ->
        in_subset := false;
        advance st
    | Some '<' ->
        if not !in_subset then incr depth;
        advance st
    | Some '>' ->
        if not !in_subset then decr depth;
        advance st
    | Some _ -> advance st
  done

let parse_cdata st =
  advance_n st 9 (* <![CDATA[ *);
  let start = st.pos in
  let rec loop () =
    if looking_at st "]]>" then begin
      let s = String.sub st.src start (st.pos - start) in
      advance_n st 3;
      s
    end
    else if st.pos >= st.len then error st "unterminated CDATA section"
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let rec parse_element st =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then
    error st "elements nested deeper than %d levels" max_depth;
  advance st (* '<' *);
  let name = parse_name st in
  let rec attrs acc =
    skip_ws st;
    match peek st with
    | Some '/' | Some '>' -> List.rev acc
    | Some c when is_name_start c ->
        let attr_name = parse_name st in
        skip_ws st;
        (match peek st with
        | Some '=' -> advance st
        | _ -> error st "expected '=' after attribute name %s" attr_name);
        skip_ws st;
        let value = parse_attr_value st in
        if List.mem_assoc attr_name acc then
          error st "duplicate attribute %s" attr_name;
        attrs ((attr_name, value) :: acc)
    | Some c -> error st "unexpected character %C in element tag" c
    | None -> error st "unterminated element tag"
  in
  let attributes = attrs [] in
  match peek st with
  | Some '/' ->
      advance st;
      (match peek st with
      | Some '>' -> advance st
      | _ -> error st "expected '>' after '/'");
      st.depth <- st.depth - 1;
      { name; attributes; children = [] }
  | Some '>' ->
      advance st;
      let children = parse_content st name in
      st.depth <- st.depth - 1;
      { name; attributes; children }
  | _ -> error st "malformed element tag"

and parse_content st element_name =
  let nodes = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if String.trim s <> "" then nodes := Text s :: !nodes
    end
  in
  let rec loop () =
    if st.pos >= st.len then error st "unterminated element <%s>" element_name
    else if looking_at st "</" then begin
      flush_text ();
      advance_n st 2;
      let close = parse_name st in
      if close <> element_name then
        error st "mismatched closing tag </%s> for <%s>" close element_name;
      skip_ws st;
      match peek st with
      | Some '>' -> advance st
      | _ -> error st "expected '>' in closing tag"
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      skip_comment st;
      loop ()
    end
    else if looking_at st "<![CDATA[" then begin
      flush_text ();
      nodes := Cdata (parse_cdata st) :: !nodes;
      loop ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      skip_pi st;
      loop ()
    end
    else if peek st = Some '<' then begin
      flush_text ();
      (match peek_at st 1 with
      | Some c when is_name_start c -> nodes := Element (parse_element st) :: !nodes
      | _ -> error st "unexpected markup");
      loop ()
    end
    else if peek st = Some '&' then begin
      parse_entity st buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (match peek st with Some c -> c | None -> assert false);
      advance st;
      loop ()
    end
  in
  loop ();
  List.rev !nodes

let parse_prolog st =
  let rec loop () =
    skip_ws st;
    if looking_at st "<?" then begin
      skip_pi st;
      loop ()
    end
    else if looking_at st "<!--" then begin
      skip_comment st;
      loop ()
    end
    else if looking_at st "<!" then begin
      skip_doctype st;
      loop ()
    end
  in
  loop ()

(* Observability: both {!parse} and {!parse_diag} (which calls {!parse})
   are counted once per document here (docs/OBSERVABILITY.md). *)
let m_docs = Fsdata_obs.Metrics.counter "parse.xml.documents"
let m_bytes = Fsdata_obs.Metrics.counter "parse.xml.bytes"
let m_ns = Fsdata_obs.Metrics.counter "parse.xml.ns"

let parse s =
  Fsdata_obs.Trace.with_span "parse.xml" @@ fun () ->
  Fsdata_obs.Metrics.incr m_docs;
  Fsdata_obs.Metrics.add m_bytes (String.length s);
  Fsdata_obs.Metrics.time m_ns @@ fun () ->
  try
    let st = make_state s in
    parse_prolog st;
    skip_ws st;
    if peek st <> Some '<' then error st "expected root element";
    let root = parse_element st in
    (* trailing comments/PIs/whitespace are allowed *)
    let rec trailer () =
      skip_ws st;
      if looking_at st "<!--" then begin
        skip_comment st;
        trailer ()
      end
      else if looking_at st "<?" then begin
        skip_pi st;
        trailer ()
      end
      else if st.pos < st.len then error st "trailing content after root element"
    in
    trailer ();
    root
  with Diagnostic.Parse_error d -> reraise_legacy d

let parse_diag s =
  match parse s with
  | v -> Ok v
  | exception Parse_error { line; column; message } ->
      Error (Diagnostic.make ~format:Diagnostic.Xml ~line ~column message)

let parse_result s =
  match parse_diag s with
  | Ok v -> Ok v
  | Error d -> Error (Diagnostic.message_of d)

let text_content tree =
  let buf = Buffer.create 16 in
  let rec go node =
    match node with
    | Text s -> Buffer.add_string buf s
    | Cdata s -> Buffer.add_string buf s
    | Element t -> List.iter go t.children
  in
  List.iter go tree.children;
  Buffer.contents buf

let to_data ?(convert_primitives = true) tree =
  let conv s =
    if convert_primitives then fst (Primitive.to_value s) else Data_value.String s
  in
  let rec element t =
    let attrs = List.map (fun (k, v) -> (k, conv v)) t.attributes in
    let child_elements =
      List.filter_map (function Element e -> Some e | _ -> None) t.children
    in
    let body =
      match child_elements with
      | [] ->
          let text = String.trim (text_content t) in
          if text = "" then [] else [ (Data_value.body_field, conv text) ]
      | elements ->
          (* Mixed-content text is dropped (Section 6.3: raw XElement access
             is the escape hatch in F# Data; we expose [text_content]). *)
          [ (Data_value.body_field, Data_value.List (List.map element elements)) ]
    in
    Data_value.Record (t.name, attrs @ body)
  in
  element tree

(* ----- Serialization ----- *)

let escape_text buf s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s

let escape_attr buf s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let to_string ?indent tree =
  let buf = Buffer.create 256 in
  let pad level =
    match indent with
    | None -> ()
    | Some n ->
        if Buffer.length buf > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * level) ' ')
  in
  let rec element level t =
    pad level;
    Buffer.add_char buf '<';
    Buffer.add_string buf t.name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape_attr buf v;
        Buffer.add_char buf '"')
      t.attributes;
    match t.children with
    | [] -> Buffer.add_string buf "/>"
    | children ->
        Buffer.add_char buf '>';
        let has_elements =
          List.exists (function Element _ -> true | _ -> false) children
        in
        List.iter
          (fun node ->
            match node with
            | Text s -> escape_text buf s
            | Cdata s ->
                Buffer.add_string buf "<![CDATA[";
                Buffer.add_string buf s;
                Buffer.add_string buf "]]>"
            | Element e -> element (level + 1) e)
          children;
        if has_elements then pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf t.name;
        Buffer.add_char buf '>'
  in
  element 0 tree;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string t)
