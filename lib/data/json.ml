exception Parse_error of { line : int; column : int; message : string }

(* Observability (docs/OBSERVABILITY.md): document counts, input bytes and
   parse nanoseconds per format. Registered at module initialization so
   the exported key set does not depend on which paths a run exercises;
   recording costs one branch until enabled. *)
let m_docs = Fsdata_obs.Metrics.counter "parse.json.documents"
let m_bytes = Fsdata_obs.Metrics.counter "parse.json.bytes"
let m_ns = Fsdata_obs.Metrics.counter "parse.json.ns"

(* The parser reports errors as structured {!Diagnostic.t}s; this legacy
   exception is a thin compatibility wrapper the public entry points
   convert to, so pre-diagnostic handlers keep working unchanged. *)
let reraise_legacy (d : Diagnostic.t) =
  raise (Parse_error { line = d.line; column = d.column; message = d.message })

let legacy f = try f () with Diagnostic.Parse_error d -> reraise_legacy d

type state = {
  src : string;
  len : int;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
  mutable depth : int; (* current nesting depth, bounded by [max_depth] *)
}

(* The parser is recursive-descent; bounding the nesting keeps adversarial
   inputs from overflowing the OCaml stack. 10_000 levels is far beyond
   any data document and well within the default stack. *)
let max_depth = 10_000

let make_state src =
  { src; len = String.length src; pos = 0; line = 1; bol = 0; depth = 0 }

let error st fmt =
  Diagnostic.error ~format:Diagnostic.Json ~line:st.line
    ~column:(st.pos - st.bol + 1) fmt

let enter st =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then
    error st "nesting deeper than %d levels" max_depth

let leave st = st.depth <- st.depth - 1

let peek st = if st.pos < st.len then Some st.src.[st.pos] else None

let advance st =
  (if st.pos < st.len && st.src.[st.pos] = '\n' then begin
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   end);
  st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st "expected %C but found %C" c c'
  | None -> error st "expected %C but found end of input" c

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error st "invalid hexadecimal digit %C in \\u escape" c

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
        v := (!v * 16) + hex_digit st c;
        advance st
    | None -> error st "unterminated \\u escape"
  done;
  !v

(* Slow path: decode escape sequences through a buffer. The cursor is
   just past the opening quote. *)
let parse_string_slow st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape sequence"
        | Some c -> (
            advance st;
            match c with
            | '"' -> Buffer.add_char buf '"'; loop ()
            | '\\' -> Buffer.add_char buf '\\'; loop ()
            | '/' -> Buffer.add_char buf '/'; loop ()
            | 'b' -> Buffer.add_char buf '\b'; loop ()
            | 'f' -> Buffer.add_char buf '\012'; loop ()
            | 'n' -> Buffer.add_char buf '\n'; loop ()
            | 'r' -> Buffer.add_char buf '\r'; loop ()
            | 't' -> Buffer.add_char buf '\t'; loop ()
            | 'u' ->
                let u = parse_hex4 st in
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* high surrogate: require a low surrogate escape next *)
                  if peek st = Some '\\' then begin
                    advance st;
                    if peek st = Some 'u' then begin
                      advance st;
                      let lo = parse_hex4 st in
                      if lo >= 0xDC00 && lo <= 0xDFFF then
                        add_utf8 buf
                          (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                      else error st "invalid low surrogate \\u%04X" lo
                    end
                    else error st "expected \\u escape after high surrogate"
                  end
                  else error st "expected \\u escape after high surrogate"
                end
                else if u >= 0xDC00 && u <= 0xDFFF then
                  error st "unexpected low surrogate \\u%04X" u
                else add_utf8 buf u;
                loop ()
            | c -> error st "invalid escape character %C" c))
    | Some c when Char.code c < 0x20 ->
        error st "unescaped control character %C in string" c
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_string st =
  expect st '"';
  (* Fast path: a literal without escapes or control characters decodes
     to a substring of the source. Nothing in the scanned run can be a
     newline (those are control characters), so no line bookkeeping. *)
  let src = st.src and len = st.len in
  let start = st.pos in
  let i = ref start in
  let stop = ref '\000' in
  while
    !i < len
    &&
    let c = String.unsafe_get src !i in
    if c = '"' || c = '\\' || Char.code c < 0x20 then begin
      stop := c;
      false
    end
    else true
  do
    incr i
  done;
  if !stop = '"' then begin
    st.pos <- !i + 1;
    String.sub src start (!i - start)
  end
  else parse_string_slow st

let parse_number st =
  (* Index-scanned for speed: none of the scanned characters can be a
     newline, so no line bookkeeping until the position is committed. *)
  let src = st.src and len = st.len in
  let start = st.pos in
  let i = ref start in
  let neg = !i < len && String.unsafe_get src !i = '-' in
  if neg then incr i;
  let is_digit j = j < len && src.[j] >= '0' && src.[j] <= '9' in
  let is_float = ref false in
  (* integer part: a lone '0', or a run starting with a nonzero digit *)
  (match if !i < len then String.unsafe_get src !i else '\000' with
  | '0' -> incr i
  | '1' .. '9' -> while is_digit !i do incr i done
  | _ ->
      st.pos <- !i;
      error st "invalid number");
  if !i < len && String.unsafe_get src !i = '.' then begin
    is_float := true;
    incr i;
    let d0 = !i in
    while is_digit !i do incr i done;
    if !i = d0 then begin
      st.pos <- !i;
      error st "expected digits after decimal point"
    end
  end;
  if !i < len && (src.[!i] = 'e' || src.[!i] = 'E') then begin
    is_float := true;
    incr i;
    if !i < len && (src.[!i] = '+' || src.[!i] = '-') then incr i;
    let d0 = !i in
    while is_digit !i do incr i done;
    if !i = d0 then begin
      st.pos <- !i;
      error st "expected digits in exponent"
    end
  end;
  let stop = !i in
  st.pos <- stop;
  if !is_float then
    Data_value.Float (float_of_string (String.sub src start (stop - start)))
  else begin
    let dig0 = if neg then start + 1 else start in
    if stop - dig0 <= 18 then begin
      (* at most 18 digits always fits a native int: accumulate without
         the substring + int_of_string round-trip *)
      let acc = ref 0 in
      for j = dig0 to stop - 1 do
        acc := (!acc * 10) + (Char.code (String.unsafe_get src j) - 48)
      done;
      Data_value.Int (if neg then - !acc else !acc)
    end
    else
      let text = String.sub src start (stop - start) in
      match int_of_string_opt text with
      | Some v -> Data_value.Int v
      | None -> Data_value.Float (float_of_string text)
  end

let parse_literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> Data_value.String (parse_string st)
  | Some 't' -> parse_literal st "true" (Data_value.Bool true)
  | Some 'f' -> parse_literal st "false" (Data_value.Bool false)
  | Some 'n' -> parse_literal st "null" Data_value.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st "unexpected character %C" c

and parse_object st =
  enter st;
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    leave st;
    Data_value.Record (Data_value.json_record_name, [])
  end
  else begin
    let fields = ref [] in
    let rec members () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      (* last binding wins on duplicate keys *)
      fields := (key, v) :: List.remove_assoc key !fields;
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ()
      | Some '}' -> advance st
      | Some c -> error st "expected ',' or '}' in object but found %C" c
      | None -> error st "unterminated object"
    in
    members ();
    leave st;
    Data_value.Record (Data_value.json_record_name, List.rev !fields)
  end

and parse_array st =
  enter st;
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    leave st;
    Data_value.List []
  end
  else begin
    let items = ref [] in
    let rec elements () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          skip_ws st;
          elements ()
      | Some ']' -> advance st
      | Some c -> error st "expected ',' or ']' in array but found %C" c
      | None -> error st "unterminated array"
    in
    elements ();
    leave st;
    Data_value.List (List.rev !items)
  end

let parse s =
  Fsdata_obs.Trace.with_span "parse.json" @@ fun () ->
  Fsdata_obs.Metrics.incr m_docs;
  Fsdata_obs.Metrics.add m_bytes (String.length s);
  Fsdata_obs.Metrics.time m_ns @@ fun () ->
  legacy (fun () ->
      let st = make_state s in
      let v = parse_value st in
      skip_ws st;
      (match peek st with
      | Some c -> error st "trailing content after JSON value: %C" c
      | None -> ());
      v)

let parse_diag s =
  match parse s with
  | v -> Ok v
  | exception Parse_error { line; column; message } ->
      Error (Diagnostic.make ~format:Diagnostic.Json ~line ~column message)

let parse_result s =
  match parse_diag s with
  | Ok v -> Ok v
  | Error d -> Error (Diagnostic.message_of d)

(* Resynchronize after a malformed document starting at [start]: advance
   the state to the most plausible start of the next top-level document,
   so one corrupt document does not consume the rest of the stream. Two
   boundary rules, checked per character:

   - structural: a '}' or ']' outside any string literal that returns
     the bracket depth (seeded by rescanning from [start]) to zero
     closes the document — this recovers balanced-but-invalid documents
     like [{"a": tru}] in full;
   - line-based: a newline whose very next character is '{' or '[' (a
     document opener at column 1) starts a fresh document — the
     newline-delimited-corpus fallback for truncated documents whose
     brackets never re-balance.

   Returns [true] when a boundary was found and [false] when the rest of
   the input was consumed (the corrupt document was the last one). The
   scan advances through {!advance} so line/bol bookkeeping — and hence
   the positions of later diagnostics — stays exact. *)
let resync st ~start =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let scan c =
    if !in_str then begin
      if !esc then esc := false
      else if c = '\\' then esc := true
      else if c = '"' then in_str := false
    end
    else
      match c with
      | '"' -> in_str := true
      | '{' | '[' -> incr depth
      | '}' | ']' -> decr depth
      | _ -> ()
  in
  for i = start to min st.pos st.len - 1 do
    scan st.src.[i]
  done;
  let found = ref false in
  while (not !found) && st.pos < st.len do
    let c = st.src.[st.pos] in
    if
      c = '\n' && st.pos + 1 < st.len
      && (st.src.[st.pos + 1] = '{' || st.src.[st.pos + 1] = '[')
    then begin
      advance st;
      found := true
    end
    else begin
      scan c;
      advance st;
      if (c = '}' || c = ']') && (not !in_str) && !depth <= 0 then found := true
    end
  done;
  !found

let fold_many ?(cancel = Cancel.never) ?(chunk_size = 256) ?chunk_bytes ?on_error
    f acc s =
  if chunk_size < 1 then invalid_arg "Json.fold_many: chunk_size must be positive";
  let byte_cap =
    match chunk_bytes with
    | None -> max_int
    | Some b ->
        if b < 1 then invalid_arg "Json.fold_many: chunk_bytes must be positive"
        else b
  in
  let st = make_state s in
  let rec loop acc chunk n bytes idx =
    skip_ws st;
    if st.pos >= st.len then if n = 0 then acc else f acc (List.rev chunk)
    else begin
      Cancel.check cancel;
      let mark = st.pos in
      match Fsdata_obs.Metrics.time m_ns (fun () -> parse_value st) with
      | v ->
          Fsdata_obs.Metrics.incr m_docs;
          Fsdata_obs.Metrics.add m_bytes (st.pos - mark);
          let bytes = bytes + (st.pos - mark) in
          (* cut the chunk at whichever cap fills first: the document
             count, or the consumed source bytes (so huge documents keep
             chunk residency bounded) *)
          if n + 1 >= chunk_size || bytes >= byte_cap then
            loop (f acc (List.rev (v :: chunk))) [] 0 0 (idx + 1)
          else loop acc (v :: chunk) (n + 1) bytes (idx + 1)
      | exception Diagnostic.Parse_error d -> (
          match on_error with
          | None -> reraise_legacy d
          | Some handler ->
              (* skip the malformed document, report it with its global
                 index and raw text, and keep going *)
              ignore (resync st ~start:mark);
              let skipped = String.trim (String.sub s mark (st.pos - mark)) in
              handler (Diagnostic.with_index idx d) ~skipped;
              loop acc chunk n bytes (idx + 1))
    end
  in
  loop acc [] 0 0 0

let parse_many s =
  List.rev (fold_many (fun acc c -> List.rev_append c acc) [] s)

(* Incremental parsing of a document stream fed in arbitrary string
   fragments. The cursor keeps the unconsumed tail (at most one partial
   document) and the stream-global line/beginning-of-line of its start,
   so a state seeded from it reports error positions relative to the
   whole stream, not the fragment being parsed: [st.bol] may be
   negative when the current line began before the retained tail, and
   the column arithmetic [st.pos - st.bol + 1] is translation-invariant
   so it keeps working. A partial document is re-parsed from its start
   each time more input arrives — quadratic in the worst case, but
   sample documents are small compared to read buffers. *)
module Cursor = struct
  type t = {
    mutable pending : string; (* unconsumed tail, starting at a document start *)
    mutable line : int; (* stream line of the start of [pending] *)
    mutable bol : int; (* line-start offset relative to [pending]'s start, <= 0 *)
    mutable seen : int; (* documents consumed so far, parsed or skipped *)
    on_error : (Diagnostic.t -> skipped:string -> unit) option;
    cancel : Cancel.t;
  }

  let create ?(cancel = Cancel.never) ?on_error () =
    { pending = ""; line = 1; bol = 0; seen = 0; on_error; cancel }

  let seeded_state cur buf =
    let st = make_state buf in
    st.line <- cur.line;
    st.bol <- cur.bol;
    st

  let feed cur fragment =
    let buf = if cur.pending = "" then fragment else cur.pending ^ fragment in
    let st = seeded_state cur buf in
    let docs = ref [] in
    let retain mark mark_line mark_bol =
      cur.pending <- String.sub buf mark (String.length buf - mark);
      cur.line <- mark_line;
      cur.bol <- mark_bol - mark
    in
    let rec loop () =
      skip_ws st;
      if st.pos >= st.len then begin
        cur.pending <- "";
        cur.line <- st.line;
        cur.bol <- st.bol - st.len
      end
      else begin
        Cancel.check cur.cancel;
        let mark = st.pos and mark_line = st.line and mark_bol = st.bol in
        match parse_value st with
        | v ->
            (* A top-level number ending exactly at the fragment boundary
               could still grow in the next fragment ("12" + "34"), so
               hold it back until more input (or {!finish}) decides. Any
               other document ends on a closing delimiter or a complete
               keyword and cannot extend. *)
            let could_grow =
              match v with
              | Data_value.Int _ | Data_value.Float _ -> st.pos >= st.len
              | _ -> false
            in
            if could_grow then retain mark mark_line mark_bol
            else begin
              docs := v :: !docs;
              cur.seen <- cur.seen + 1;
              loop ()
            end
        | exception Diagnostic.Parse_error _ when st.pos >= st.len ->
            (* ran off the end of the buffer: incomplete document *)
            retain mark mark_line mark_bol
        | exception Diagnostic.Parse_error d -> (
            match cur.on_error with
            | None -> reraise_legacy d
            | Some handler ->
                if resync st ~start:mark then begin
                  (* the corrupt document ends within this buffer: commit
                     the skip and report it *)
                  let skipped =
                    String.trim (String.sub buf mark (st.pos - mark))
                  in
                  handler (Diagnostic.with_index cur.seen d) ~skipped;
                  cur.seen <- cur.seen + 1;
                  loop ()
                end
                else
                  (* no boundary in sight yet — the document (and its
                     recovery point) may continue in the next fragment,
                     so hold judgement and re-parse with more input *)
                  retain mark mark_line mark_bol)
      end
    in
    loop ();
    List.rev !docs

  let finish cur =
    if cur.pending = "" then []
    else begin
      let st = seeded_state cur cur.pending in
      let docs = ref [] in
      let rec loop () =
        skip_ws st;
        if st.pos < st.len then begin
          Cancel.check cur.cancel;
          let mark = st.pos in
          match parse_value st with
          | v ->
              docs := v :: !docs;
              cur.seen <- cur.seen + 1;
              loop ()
          | exception Diagnostic.Parse_error d -> (
              match cur.on_error with
              | None -> reraise_legacy d
              | Some handler ->
                  (* end of stream: every remaining fault is definite *)
                  ignore (resync st ~start:mark);
                  let skipped =
                    String.trim
                      (String.sub cur.pending mark (st.pos - mark))
                  in
                  handler (Diagnostic.with_index cur.seen d) ~skipped;
                  cur.seen <- cur.seen + 1;
                  loop ())
        end
      in
      loop ();
      cur.pending <- "";
      cur.line <- 1;
      cur.bol <- 0;
      List.rev !docs
    end
end

(* Raw lexer access for shape-specialized parser compilation
   (lib/core/shape_compile). Compiled decoders drive the same state,
   token readers, error reporting and resynchronization as the generic
   parser, so their diagnostics and recovery boundaries are identical by
   construction. *)
module Raw = struct
  type nonrec state = state
  type mark = { m_pos : int; m_line : int; m_bol : int }

  let make = make_state
  let mark st = { m_pos = st.pos; m_line = st.line; m_bol = st.bol }

  let reset st m =
    st.pos <- m.m_pos;
    st.line <- m.m_line;
    st.bol <- m.m_bol;
    st.depth <- 0

  let offset st = st.pos
  let offset_of_mark m = m.m_pos
  let source st = st.src
  let at_eof st = st.pos >= st.len

  (* Non-allocating peek for decoder hot loops: [peek] boxes its option
     on every call. NUL doubles as the end-of-input sentinel; a literal
     NUL byte in the source is a control character and errors on every
     path that could consume it. *)
  let peek_char st =
    if st.pos >= st.len then '\000' else String.unsafe_get st.src st.pos

  (* Zero-allocation literal match: when the source bytes at the cursor
     are exactly [s], consume them and return true; otherwise leave the
     cursor untouched. [s] must not contain newlines (no line
     bookkeeping). Used by compiled record decoders to match an expected
     ["key"] without decoding it. *)
  let lit st s =
    let n = String.length s in
    st.pos + n <= st.len
    && begin
         let i = ref 0 in
         while
           !i < n
           && String.unsafe_get st.src (st.pos + !i) = String.unsafe_get s !i
         do
           incr i
         done;
         if !i = n then begin
           st.pos <- st.pos + n;
           true
         end
         else false
       end
  let peek = peek
  let advance = advance
  let skip_ws = skip_ws
  let expect = expect
  let parse_string = parse_string
  let parse_number = parse_number
  let parse_value = parse_value
  let resync = resync
  let fail st msg = error st "%s" msg
end

(* ----- Printing ----- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_json f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e16 then
    (* JSON has no NaN; print NaN as 0 like many serializers reject — we
       choose to fail loudly instead. *)
    if Float.is_nan f then invalid_arg "Json.to_string: cannot print NaN"
    else Printf.sprintf "%.1f" f
  else if Float.is_integer f then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s

let to_string ?indent d =
  let buf = Buffer.create 256 in
  let newline_and_pad level =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * level) ' ')
  in
  let rec go level (d : Data_value.t) =
    match d with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_json f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            newline_and_pad (level + 1);
            go (level + 1) item)
          items;
        newline_and_pad level;
        Buffer.add_char buf ']'
    | Record (_, []) -> Buffer.add_string buf "{}"
    | Record (_, fields) ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            newline_and_pad (level + 1);
            escape_string buf k;
            Buffer.add_char buf ':';
            if indent <> None then Buffer.add_char buf ' ';
            go (level + 1) v)
          fields;
        newline_and_pad level;
        Buffer.add_char buf '}'
  in
  go 0 d;
  Buffer.contents buf

let pp ppf d = Fmt.string ppf (to_string d)
